// Closed-loop serving-QoS load harness: one serve::Server under an
// SNB-style mixed workload — interactive clients cycling three query
// templates, a batch client pushing SubmitBatch work down the batch
// lane, a background client on a zero-weight scavenger lane, and a
// writer applying WriteBatch inserts live — measured against a solo
// (zero-contention) baseline on the same server. Reports p50/p95/p99
// latency, throughput, and rejection/deadline rates per phase. Gates,
// each a hard failure for CI's Release leg:
//
//   1. single-flight planning: 16 concurrent cold misses for one
//      canonical key on a fresh server cost exactly 1 plan build
//      (ServerStats::plan_builds == 1, every other request joins the
//      flight or hits the cache the build filled), and all 16 agree
//      on the count;
//   2. QoS under load: the mixed-load interactive p99 stays within a
//      fixed multiple of the solo p99 (floored, so a very fast solo
//      baseline cannot make the gate vacuous) — weighted lanes plus
//      backpressure must keep interactive latency bounded while batch
//      work, background work, and live writes compete for the box;
//   3. sanity: every request completes ok or with the two sanctioned
//      QoS errors (DeadlineExceeded / ResourceExhausted), and solo
//      counts per template are identical across repetitions (no
//      writes happen in the solo phase).
//
// Emits BENCH_serve_load.json (CI uploads it) so the serving-latency
// trajectory is recorded per run. Scale knobs: ADJ_BENCH_SCALE.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "serve/server.h"
#include "storage/write_batch.h"

namespace adj::bench {
namespace {

constexpr char kTriangle[] = "G(a,b) G(b,c) G(a,c)";
constexpr char kPath[] = "G(a,b) G(b,c)";
constexpr char kSquare[] = "G(a,b) G(b,c) G(c,d) G(d,a)";
const char* const kTemplates[] = {kTriangle, kPath, kSquare};

constexpr int kColdClients = 16;    // gate 1 fan-in
constexpr int kSoloOps = 60;        // solo baseline ops (template-cycled)
constexpr int kInteractive = 6;     // mixed-phase closed-loop clients
constexpr int kOpsPerClient = 30;   // ops per interactive client
constexpr int kBatchRounds = 8;     // SubmitBatch calls by the batch client
constexpr int kBatchSize = 4;       // kPath queries per batch
constexpr int kBackgroundOps = 8;   // zero-weight-lane submissions
constexpr int kWriteBatches = 10;   // live WriteBatch applies
// Gate 2: mixed p99 <= kMaxP99Multiple * max(solo p99, kSoloFloor).
// Generous on purpose — this box is small and the mixed phase runs
// ~9 threads against it — but a fairness or single-flight regression
// shows up as seconds of queueing, far past this bound.
constexpr double kMaxP99Multiple = 50.0;
constexpr double kSoloFloor = 0.005;  // 5ms: keeps the gate non-vacuous
constexpr Value kWriteBase = 2'000'000'000;

serve::ServerOptions LoadOptions() {
  serve::ServerOptions opts;
  opts.worker_threads = 4;
  opts.queue_capacity = 64;
  opts.cache_capacity = 16;
  opts.lanes = {{"interactive", 3, 0}, {"batch", 1, 0}, {"background", 0, 16}};
  opts.engine.cluster.num_servers = ServersFromEnv();
  opts.engine.num_samples = 200;
  return opts;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = size_t(q * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Per-client tally for the closed-loop phases.
struct ClientTally {
  std::vector<double> latencies;  // seconds, ok requests only
  uint64_t ok = 0;
  uint64_t deadline_expired = 0;
  uint64_t rejected = 0;
  uint64_t other_errors = 0;  // anything outside the QoS contract
};

void RecordResult(const api::Result& r, double seconds, ClientTally* tally) {
  if (r.ok()) {
    ++tally->ok;
    tally->latencies.push_back(seconds);
  } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
    ++tally->deadline_expired;
  } else if (r.status().code() == StatusCode::kResourceExhausted) {
    ++tally->rejected;
  } else {
    std::fprintf(stderr, "FAIL: unexpected request error: %s\n",
                 r.status().ToString().c_str());
    ++tally->other_errors;
  }
}

int Run() {
  const double scale = ScaleFromEnv(0.2);
  PrintHeader("serve load: QoS under closed-loop mixed load (WB scale " +
              Num(scale) + ")");
  int failures = 0;

  // -------------------------------------------------------------------
  // Phase 1 — single-flight gate: 16 threads, one cold key, fresh
  // server. Exactly one Prepare may run.
  // -------------------------------------------------------------------
  uint64_t cold_builds = 0, cold_waits = 0;
  {
    StatusOr<api::Database> opened = api::Database::OpenBuiltin("WB", scale);
    ADJ_CHECK(opened.ok()) << opened.status();
    serve::Server server(std::move(opened.value()), LoadOptions());

    std::vector<std::thread> clients;
    std::vector<uint64_t> counts(kColdClients, 0);
    std::atomic<int> errors{0};
    for (int t = 0; t < kColdClients; ++t) {
      clients.emplace_back([&, t] {
        api::Result r = server.Execute(kTriangle);
        if (!r.ok()) {
          errors.fetch_add(1);
        } else {
          counts[size_t(t)] = r.count();
        }
      });
    }
    for (std::thread& t : clients) t.join();

    serve::ServerStats stats = server.stats();
    cold_builds = stats.plan_builds;
    cold_waits = stats.plan_waits;
    std::printf("cold fan-in: %d clients -> plan_builds=%llu plan_waits=%llu "
                "cache_hits=%llu errors=%d\n",
                kColdClients, static_cast<unsigned long long>(cold_builds),
                static_cast<unsigned long long>(cold_waits),
                static_cast<unsigned long long>(stats.cache.hits),
                errors.load());
    if (errors.load() != 0) {
      std::fprintf(stderr, "FAIL: %d of %d cold-miss requests errored\n",
                   errors.load(), kColdClients);
      ++failures;
    }
    if (cold_builds != 1) {
      std::fprintf(stderr,
                   "FAIL: single-flight: %llu plan builds for %d concurrent "
                   "cold misses of one key (want exactly 1)\n",
                   static_cast<unsigned long long>(cold_builds), kColdClients);
      ++failures;
    }
    for (int t = 1; t < kColdClients; ++t) {
      if (counts[size_t(t)] != counts[0]) {
        std::fprintf(stderr, "FAIL: cold client %d count %llu != %llu\n", t,
                     static_cast<unsigned long long>(counts[size_t(t)]),
                     static_cast<unsigned long long>(counts[0]));
        ++failures;
        break;
      }
    }
  }

  // -------------------------------------------------------------------
  // Phase 2 — solo baseline: one client, no competition, warm plans.
  // -------------------------------------------------------------------
  StatusOr<api::Database> opened = api::Database::OpenBuiltin("WB", scale);
  ADJ_CHECK(opened.ok()) << opened.status();
  serve::Server server(std::move(opened.value()), LoadOptions());
  for (const char* text : kTemplates) {  // warm every template's plan
    api::Result r = server.Execute(text);
    ADJ_CHECK(r.ok()) << r.status();
  }

  ClientTally solo;
  uint64_t solo_counts[3] = {0, 0, 0};
  bool solo_counts_stable = true;
  {
    WallTimer phase;
    for (int i = 0; i < kSoloOps; ++i) {
      const int which = i % 3;
      WallTimer op;
      api::Result r = server.Execute(kTemplates[which]);
      RecordResult(r, op.Seconds(), &solo);
      if (r.ok()) {
        if (solo_counts[which] == 0) {
          solo_counts[which] = r.count();
        } else if (solo_counts[which] != r.count()) {
          solo_counts_stable = false;
        }
      }
    }
    const double solo_wall = phase.Seconds();
    std::printf("solo: %llu ops in %.3fs (%.1f qps)\n",
                static_cast<unsigned long long>(solo.ok), solo_wall,
                double(solo.ok) / solo_wall);
  }
  if (!solo_counts_stable) {
    std::fprintf(stderr,
                 "FAIL: solo counts drifted across repetitions with no "
                 "writes applied\n");
    ++failures;
  }
  const double solo_p50 = Percentile(solo.latencies, 0.50);
  const double solo_p95 = Percentile(solo.latencies, 0.95);
  const double solo_p99 = Percentile(solo.latencies, 0.99);

  // -------------------------------------------------------------------
  // Phase 3 — mixed load on the same (warm) server: interactive
  // clients vs. batch lane vs. background lane vs. live writes.
  // -------------------------------------------------------------------
  std::vector<ClientTally> tallies(kInteractive);
  uint64_t batch_ok = 0, batch_errors = 0, background_ok = 0;
  std::atomic<int> writer_failures{0};
  double mixed_wall = 0.0;
  {
    WallTimer phase;
    std::vector<std::thread> threads;
    // Interactive clients: closed loop, template-cycled; every 10th op
    // carries a quarter-second deadline as a live QoS probe.
    for (int c = 0; c < kInteractive; ++c) {
      threads.emplace_back([&, c] {
        ClientTally& tally = tallies[size_t(c)];
        for (int i = 0; i < kOpsPerClient; ++i) {
          serve::RequestOptions ropts;
          if (i % 10 == 9) ropts.deadline_seconds = 0.25;
          WallTimer op;
          api::Result r = server.Execute(kTemplates[(c + i) % 3], ropts);
          RecordResult(r, op.Seconds(), &tally);
        }
      });
    }
    // Batch client: all-or-nothing admission onto the batch lane.
    threads.emplace_back([&] {
      for (int round = 0; round < kBatchRounds; ++round) {
        std::vector<std::string> texts(kBatchSize, kPath);
        serve::RequestOptions ropts;
        ropts.lane = 1;
        auto batch = server.SubmitBatch(texts, ropts);
        if (!batch.ok()) {
          // Backpressure is a sanctioned answer for bulk work.
          if (batch.status().code() != StatusCode::kResourceExhausted) {
            ++batch_errors;
          }
          continue;
        }
        for (std::future<api::Result>& f : *batch) {
          api::Result r = f.get();
          if (r.ok()) {
            ++batch_ok;
          } else if (r.status().code() != StatusCode::kDeadlineExceeded) {
            ++batch_errors;
          }
        }
      }
    });
    // Background client: zero-weight scavenger lane — served only when
    // the weighted lanes are idle, but must still complete by drain.
    threads.emplace_back([&] {
      std::vector<std::future<api::Result>> pending;
      for (int i = 0; i < kBackgroundOps; ++i) {
        serve::RequestOptions ropts;
        ropts.lane = 2;
        auto submitted = server.Submit(kPath, ropts);
        if (submitted.ok()) pending.push_back(std::move(*submitted));
      }
      for (std::future<api::Result>& f : pending) {
        if (f.get().ok()) ++background_ok;
      }
    });
    // Writer: live WriteBatch applies — no Pause/Drain choreography.
    threads.emplace_back([&] {
      for (int i = 0; i < kWriteBatches; ++i) {
        const Value v = kWriteBase + Value(2 * i);
        storage::WriteBatch batch;
        batch.Insert("G", {v, v + 1});
        batch.Insert("G", {v + 1, v + 2});
        if (!server.Apply(batch).ok()) writer_failures.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    for (std::thread& t : threads) t.join();
    mixed_wall = phase.Seconds();
  }

  ClientTally mixed;
  for (const ClientTally& t : tallies) {
    mixed.latencies.insert(mixed.latencies.end(), t.latencies.begin(),
                           t.latencies.end());
    mixed.ok += t.ok;
    mixed.deadline_expired += t.deadline_expired;
    mixed.rejected += t.rejected;
    mixed.other_errors += t.other_errors;
  }
  const double mixed_p50 = Percentile(mixed.latencies, 0.50);
  const double mixed_p95 = Percentile(mixed.latencies, 0.95);
  const double mixed_p99 = Percentile(mixed.latencies, 0.99);
  const double mixed_qps = mixed_wall > 0 ? double(mixed.ok) / mixed_wall : 0;
  const uint64_t issued = uint64_t(kInteractive) * uint64_t(kOpsPerClient);
  const double reject_rate = double(mixed.rejected) / double(issued);
  const double deadline_rate = double(mixed.deadline_expired) / double(issued);
  const double p99_gate = kMaxP99Multiple * std::max(solo_p99, kSoloFloor);

  serve::ServerStats stats = server.stats();
  std::printf("solo : p50=%.4fs p95=%.4fs p99=%.4fs (%llu ops)\n", solo_p50,
              solo_p95, solo_p99, static_cast<unsigned long long>(solo.ok));
  std::printf("mixed: p50=%.4fs p95=%.4fs p99=%.4fs (%llu ops, %.1f qps, "
              "reject=%.1f%% deadline=%.1f%%)\n",
              mixed_p50, mixed_p95, mixed_p99,
              static_cast<unsigned long long>(mixed.ok), mixed_qps,
              100 * reject_rate, 100 * deadline_rate);
  std::printf("mixed: batch_ok=%llu background_ok=%llu writes=%llu "
              "reprepared=%llu plan_builds=%llu expired(queue=%llu "
              "planning=%llu)\n",
              static_cast<unsigned long long>(batch_ok),
              static_cast<unsigned long long>(background_ok),
              static_cast<unsigned long long>(stats.writes_applied),
              static_cast<unsigned long long>(stats.reprepared),
              static_cast<unsigned long long>(stats.plan_builds),
              static_cast<unsigned long long>(stats.expired_in_queue),
              static_cast<unsigned long long>(stats.expired_planning));
  for (const serve::LaneStats& lane : stats.lanes) {
    std::printf("lane %-12s accepted=%llu rejected=%llu served=%llu "
                "failed=%llu\n",
                lane.name.c_str(),
                static_cast<unsigned long long>(lane.accepted),
                static_cast<unsigned long long>(lane.rejected),
                static_cast<unsigned long long>(lane.served),
                static_cast<unsigned long long>(lane.failed));
  }

  // Gate 2: mixed p99 within the fixed multiple of the solo baseline.
  if (mixed_p99 > p99_gate) {
    std::fprintf(stderr,
                 "FAIL: mixed-load p99 %.4fs > %.1fx solo p99 gate %.4fs\n",
                 mixed_p99, kMaxP99Multiple, p99_gate);
    ++failures;
  }
  // Gate 3: nothing outside the QoS contract, and the mix completed.
  if (mixed.other_errors != 0 || batch_errors != 0 ||
      writer_failures.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: contract violations: interactive=%llu batch=%llu "
                 "writer=%d\n",
                 static_cast<unsigned long long>(mixed.other_errors),
                 static_cast<unsigned long long>(batch_errors),
                 writer_failures.load());
    ++failures;
  }
  if (mixed.ok == 0 || background_ok == 0) {
    std::fprintf(stderr,
                 "FAIL: starved: interactive_ok=%llu background_ok=%llu — "
                 "every lane must make progress under mixed load\n",
                 static_cast<unsigned long long>(mixed.ok),
                 static_cast<unsigned long long>(background_ok));
    ++failures;
  }
  if (stats.writes_applied != uint64_t(kWriteBatches)) {
    std::fprintf(stderr, "FAIL: %llu of %d live writes applied\n",
                 static_cast<unsigned long long>(stats.writes_applied),
                 kWriteBatches);
    ++failures;
  }

  FILE* json = std::fopen("BENCH_serve_load.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"serve_load\",\n"
        "  \"dataset\": \"WB\",\n"
        "  \"scale\": %.4f,\n"
        "  \"cold_clients\": %d,\n"
        "  \"cold_plan_builds\": %llu,\n"
        "  \"cold_plan_waits\": %llu,\n"
        "  \"solo_p50_seconds\": %.6f,\n"
        "  \"solo_p95_seconds\": %.6f,\n"
        "  \"solo_p99_seconds\": %.6f,\n"
        "  \"mixed_p50_seconds\": %.6f,\n"
        "  \"mixed_p95_seconds\": %.6f,\n"
        "  \"mixed_p99_seconds\": %.6f,\n"
        "  \"mixed_p99_gate_seconds\": %.6f,\n"
        "  \"mixed_throughput_qps\": %.2f,\n"
        "  \"mixed_interactive_ok\": %llu,\n"
        "  \"mixed_reject_rate\": %.4f,\n"
        "  \"mixed_deadline_rate\": %.4f,\n"
        "  \"batch_ok\": %llu,\n"
        "  \"background_ok\": %llu,\n"
        "  \"writes_applied\": %llu,\n"
        "  \"reprepared\": %llu,\n"
        "  \"expired_in_queue\": %llu,\n"
        "  \"expired_planning\": %llu\n"
        "}\n",
        scale, kColdClients, static_cast<unsigned long long>(cold_builds),
        static_cast<unsigned long long>(cold_waits), solo_p50, solo_p95,
        solo_p99, mixed_p50, mixed_p95, mixed_p99, p99_gate, mixed_qps,
        static_cast<unsigned long long>(mixed.ok), reject_rate, deadline_rate,
        static_cast<unsigned long long>(batch_ok),
        static_cast<unsigned long long>(background_ok),
        static_cast<unsigned long long>(stats.writes_applied),
        static_cast<unsigned long long>(stats.reprepared),
        static_cast<unsigned long long>(stats.expired_in_queue),
        static_cast<unsigned long long>(stats.expired_planning));
    std::fclose(json);
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adj::bench

int main() { return adj::bench::Run(); }
