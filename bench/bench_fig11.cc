// Reproduces Fig. 11: ADJ's speed-up factor on LJ for Q1–Q6 as the
// worker count grows from 1 to 28. Speed-up = Total(1 worker) /
// Total(N workers). Computation is the measured per-server makespan
// (stragglers included — Q5's skew limits its scalability exactly as
// in the paper); communication and per-stage overhead come from the
// network model.
#include "bench/bench_util.h"
#include "common/logging.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  const storage::Catalog& db = data.Get("LJ");
  core::Engine engine(&db);

  const std::vector<int> workers = {1, 2, 4, 7, 14, 21, 28};
  PrintHeader("Fig 11: ADJ speed-up factor vs workers (LJ)");
  std::printf("%-6s", "query");
  for (int w : workers) std::printf(" %8s", ("N=" + std::to_string(w)).c_str());
  std::printf("\n");

  for (int qi : {1, 2, 3, 4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    double base = 0.0;
    std::printf("%-6s", query::BenchmarkQueryName(qi).c_str());
    for (int w : workers) {
      core::EngineOptions opts = BenchOptions(w);
      opts.cluster.num_servers = w;
      auto report = engine.Run(*q, core::Strategy::kCoOpt, opts);
      if (!report.ok() || !report->ok()) {
        std::printf(" %8s", "FAIL");
        continue;
      }
      // The paper's wall-clock excludes startup/loading; our total is
      // comm + comp + pre + overhead (optimization excluded so the
      // speed-up reflects execution scaling, like the paper's Fig. 11).
      const double t = report->precompute_s + report->comm_s +
                       report->comp_s + report->overhead_s;
      if (w == 1) base = t;
      std::printf(" %8.2f", base > 0 && t > 0 ? base / t : 0.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): near-linear speed-up for Q2/Q3/Q4/Q6; Q1 "
      "limited by per-stage overhead; Q5 limited by skew stragglers.\n");
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
