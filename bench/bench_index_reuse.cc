// Prepared-query index-reuse smoke: prepare once, run twice, and
// assert the warm (second) run is at least 5x faster than the cold
// (first) run. The first run pays every index build — shard routing,
// per-server sorts, Trie::Build — while the second binds and shuffles
// purely out of the shared IndexCache and builds zero tries. The
// workload is the serving hot path the index layer exists for: a
// selective prepared query re-executed against stable data. Exits
// non-zero on any violation, so CI's Release leg catches a regression
// of the reuse path, and emits BENCH_index_reuse.json so the perf
// trajectory is recorded per run.
//
// Scale knobs: ADJ_BENCH_SCALE / ADJ_BENCH_SERVERS (bench_util.h).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"

namespace adj::bench {
namespace {

// A non-hub vertex: the warm run is then a genuinely small probe (the
// serving point-lookup), while the cold run still builds the full
// unselected atom's shard tries.
constexpr char kQuery[] = "G(a,b) G(b,c) G(a,c) | a=300";
constexpr double kMinSpeedup = 5.0;

int Run() {
  // Default above bench_util's 0.2: the gate needs the cold run's index
  // builds well clear of timer noise.
  const double scale = ScaleFromEnv(4.0);
  StatusOr<api::Database> db = api::Database::OpenBuiltin("WB", scale);
  ADJ_CHECK(db.ok()) << db.status();
  api::Session session = db->OpenSession();
  session.options().cluster.num_servers = ServersFromEnv();

  WallTimer prepare_timer;
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kQuery);
  ADJ_CHECK(prepared.ok()) << prepared.status();
  const double prepare_s = prepare_timer.Seconds();
  WallTimer cold_timer;
  api::Result cold = prepared->Run();
  ADJ_CHECK(cold.ok()) << cold.status();
  const double cold_s = cold_timer.Seconds();

  // Best of three warm runs: the smoke gates on reuse, not on
  // scheduler noise.
  double warm_s = 0.0;
  api::Result warm;
  for (int i = 0; i < 3; ++i) {
    WallTimer warm_timer;
    warm = prepared->Run();
    const double s = warm_timer.Seconds();
    if (i == 0 || s < warm_s) warm_s = s;
    ADJ_CHECK(warm.ok()) << warm.status();
  }
  const double speedup = warm_s > 0 ? cold_s / warm_s : kMinSpeedup * 10;

  std::printf(
      "index-reuse smoke: out=%llu prepare=%.4fs cold=%.4fs warm=%.4fs "
      "speedup=%.1fx builds(cold=%llu warm=%llu) pinned=%llu bytes\n",
      static_cast<unsigned long long>(warm.count()), prepare_s, cold_s,
      warm_s, speedup,
      static_cast<unsigned long long>(cold.index_builds()),
      static_cast<unsigned long long>(warm.index_builds()),
      static_cast<unsigned long long>(prepared->resident_bytes()));

  FILE* json = std::fopen("BENCH_index_reuse.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"index_reuse\",\n"
                 "  \"query\": \"%s\",\n"
                 "  \"dataset\": \"WB\",\n"
                 "  \"scale\": %.4f,\n"
                 "  \"prepare_seconds\": %.6f,\n"
                 "  \"output_count\": %llu,\n"
                 "  \"cold_seconds\": %.6f,\n"
                 "  \"warm_seconds\": %.6f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"index_builds_cold\": %llu,\n"
                 "  \"index_builds_warm\": %llu,\n"
                 "  \"index_reused_warm\": %llu,\n"
                 "  \"pinned_index_bytes\": %llu\n"
                 "}\n",
                 kQuery, scale, prepare_s,
                 static_cast<unsigned long long>(warm.count()), cold_s,
                 warm_s, speedup,
                 static_cast<unsigned long long>(cold.index_builds()),
                 static_cast<unsigned long long>(warm.index_builds()),
                 static_cast<unsigned long long>(warm.index_reused()),
                 static_cast<unsigned long long>(prepared->resident_bytes()));
    std::fclose(json);
  }

  int failures = 0;
  if (warm.index_builds() != 0) {
    std::fprintf(stderr, "FAIL: warm run built %llu indexes (want 0)\n",
                 static_cast<unsigned long long>(warm.index_builds()));
    ++failures;
  }
  if (warm.count() != cold.count()) {
    std::fprintf(stderr, "FAIL: warm count %llu != cold count %llu\n",
                 static_cast<unsigned long long>(warm.count()),
                 static_cast<unsigned long long>(cold.count()));
    ++failures;
  }
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: warm speedup %.1fx < %.1fx\n", speedup,
                 kMinSpeedup);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adj::bench

int main() { return adj::bench::Run(); }
