// Compressed-trie smoke: what block-compressed index storage buys and
// what it costs, end to end on the WB builtin. Two databases over the
// same dataset — one with IndexCache trie compression disabled (raw
// baseline), one with the default-on compression — prepare and run the
// same triangle query. Gates, each a hard failure for CI's Release
// leg:
//
//   1. Size — the trie bytes resident in the compressed cache must be
//      <= 0.6x the raw cache's trie bytes (the block codec must
//      actually earn its keep on a real skewed graph), and the
//      compressed run must report nonzero compressed_bytes /
//      blocks_decoded while the raw run reports zero.
//   2. Speed — the warm prepared run over compressed tries must stay
//      within 1.15x of the raw-trie run: intersecting directly on
//      compressed runs (skip-table galloping + per-block decode into
//      executor scratch) is allowed to cost a little, not a lot.
//   3. Answers agree.
//
// Emits BENCH_compressed.json so the size/speed trade-off is recorded
// per run. Scale knob: ADJ_BENCH_SCALE (bench_util.h).
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "storage/trie.h"

namespace adj::bench {
namespace {

constexpr char kQuery[] = "G(a,b) G(b,c) G(a,c)";
constexpr double kMaxTrieByteRatio = 0.6;  // compressed / raw
constexpr double kMaxRunRatio = 1.15;      // compressed / raw, warm

/// Total resident bytes of the distinct tries in a catalog's index
/// cache (payloads can share a trie; count each once).
uint64_t TrieResidentBytes(const storage::Catalog& catalog) {
  uint64_t bytes = 0;
  std::set<const storage::Trie*> seen;
  for (const storage::IndexCache::ExportedPayload& p :
       catalog.index_cache().ExportPermutedIndexes()) {
    if (p.trie != nullptr && seen.insert(p.trie.get()).second) {
      bytes += p.trie->ResidentBytes();
    }
  }
  return bytes;
}

struct PreparedRun {
  api::Database db;
  std::unique_ptr<api::Session> session;
  std::unique_ptr<api::PreparedQuery> prepared;
  double best_run_s = 0.0;
  uint64_t count = 0;
  uint64_t compressed_bytes = 0;
  uint64_t blocks_decoded = 0;
};

/// Opens WB, prepares the triangle with trie compression on or off,
/// and times the best-of-5 warm prepared run.
PreparedRun Prepare(double scale, bool compress) {
  PreparedRun out;
  StatusOr<api::Database> db = api::Database::OpenBuiltin("WB", scale);
  ADJ_CHECK(db.ok()) << db.status();
  out.db = std::move(*db);
  out.db.catalog().index_cache().set_compress_tries(compress);
  out.session = std::make_unique<api::Session>(out.db.OpenSession());
  out.session->options().cluster.num_servers = 1;
  StatusOr<api::PreparedQuery> prepared = out.session->Prepare(kQuery);
  ADJ_CHECK(prepared.ok()) << prepared.status();
  out.prepared = std::make_unique<api::PreparedQuery>(std::move(*prepared));

  for (int r = 0; r < 5; ++r) {
    WallTimer t;
    api::Result res = out.prepared->Run();
    const double s = t.Seconds();
    ADJ_CHECK(res.ok()) << res.status();
    if (r == 0 || s < out.best_run_s) out.best_run_s = s;
    out.count = res.count();
    out.compressed_bytes = res.compressed_bytes();
    out.blocks_decoded = res.blocks_decoded();
  }
  return out;
}

int Run() {
  // Default above bench_util's 0.2: the 1.15x run gate needs the join
  // well clear of timer noise, and the 0.6x size gate needs levels
  // past the compressor's min-size threshold.
  const double scale = ScaleFromEnv(4.0);
  int failures = 0;

  PreparedRun raw = Prepare(scale, /*compress=*/false);
  PreparedRun comp = Prepare(scale, /*compress=*/true);

  const uint64_t raw_trie_bytes = TrieResidentBytes(raw.db.catalog());
  const uint64_t comp_trie_bytes = TrieResidentBytes(comp.db.catalog());
  const double byte_ratio =
      raw_trie_bytes > 0
          ? static_cast<double>(comp_trie_bytes) / raw_trie_bytes
          : 1.0;
  const double run_ratio =
      raw.best_run_s > 0 ? comp.best_run_s / raw.best_run_s : 1.0;

  std::printf(
      "compressed smoke: out=%llu trie_bytes(raw=%llu compressed=%llu "
      "ratio=%.3f) run(raw=%.4fs compressed=%.4fs ratio=%.3f) "
      "report(bytes=%llu blocks=%llu)\n",
      static_cast<unsigned long long>(comp.count),
      static_cast<unsigned long long>(raw_trie_bytes),
      static_cast<unsigned long long>(comp_trie_bytes), byte_ratio,
      raw.best_run_s, comp.best_run_s, run_ratio,
      static_cast<unsigned long long>(comp.compressed_bytes),
      static_cast<unsigned long long>(comp.blocks_decoded));

  FILE* json = std::fopen("BENCH_compressed.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"compressed\",\n"
                 "  \"query\": \"%s\",\n"
                 "  \"dataset\": \"WB\",\n"
                 "  \"scale\": %.4f,\n"
                 "  \"output_count\": %llu,\n"
                 "  \"raw_trie_bytes\": %llu,\n"
                 "  \"compressed_trie_bytes\": %llu,\n"
                 "  \"trie_byte_ratio\": %.4f,\n"
                 "  \"raw_run_seconds\": %.6f,\n"
                 "  \"compressed_run_seconds\": %.6f,\n"
                 "  \"run_ratio\": %.4f,\n"
                 "  \"compressed_bytes_reported\": %llu,\n"
                 "  \"blocks_decoded\": %llu\n"
                 "}\n",
                 kQuery, scale,
                 static_cast<unsigned long long>(comp.count),
                 static_cast<unsigned long long>(raw_trie_bytes),
                 static_cast<unsigned long long>(comp_trie_bytes),
                 byte_ratio, raw.best_run_s, comp.best_run_s, run_ratio,
                 static_cast<unsigned long long>(comp.compressed_bytes),
                 static_cast<unsigned long long>(comp.blocks_decoded));
    std::fclose(json);
  }

  if (byte_ratio > kMaxTrieByteRatio) {
    std::fprintf(stderr,
                 "FAIL: compressed trie bytes %.3fx of raw (> %.2f)\n",
                 byte_ratio, kMaxTrieByteRatio);
    ++failures;
  }
  if (run_ratio > kMaxRunRatio) {
    std::fprintf(stderr, "FAIL: compressed run %.3fx of raw (> %.2f)\n",
                 run_ratio, kMaxRunRatio);
    ++failures;
  }
  if (comp.count != raw.count) {
    std::fprintf(stderr, "FAIL: compressed count %llu != raw %llu\n",
                 static_cast<unsigned long long>(comp.count),
                 static_cast<unsigned long long>(raw.count));
    ++failures;
  }
  if (comp.compressed_bytes == 0 || comp.blocks_decoded == 0) {
    std::fprintf(stderr,
                 "FAIL: compressed run reported bytes=%llu blocks=%llu "
                 "(want both nonzero)\n",
                 static_cast<unsigned long long>(comp.compressed_bytes),
                 static_cast<unsigned long long>(comp.blocks_decoded));
    ++failures;
  }
  if (raw.compressed_bytes != 0 || raw.blocks_decoded != 0) {
    std::fprintf(stderr,
                 "FAIL: raw run reported bytes=%llu blocks=%llu "
                 "(want both zero)\n",
                 static_cast<unsigned long long>(raw.compressed_bytes),
                 static_cast<unsigned long long>(raw.blocks_decoded));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adj::bench

int main() { return adj::bench::Run(); }
