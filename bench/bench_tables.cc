// Reproduces Tables II–IV: co-optimization (ADJ) vs communication-
// first (HCubeJ) on AS / LJ / OK with Q4–Q6, broken into
// Optimization / Pre-Computing / Communication / Computation / Total.
// Pass --exhaustive to ablate Alg. 2 against the exhaustive planner.
#include <cstring>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace adj::bench {
namespace {

void Run(bool exhaustive) {
  DatasetCache data(ScaleFromEnv());
  const int servers = ServersFromEnv();

  for (const std::string& name : {std::string("AS"), std::string("LJ"),
                                  std::string("OK")}) {
    PrintHeader("Table II-IV (" + name + "): Co-Optimization vs "
                "Communication-First, seconds" +
                (exhaustive ? " [exhaustive planner]" : ""));
    std::printf("%-5s | %9s %9s %9s %9s %9s | %9s %9s %9s %9s\n", "query",
                "Opt", "Pre", "Comm", "Comp", "Total", "Opt", "Comm", "Comp",
                "Total");
    api::Session session = data.GetDb(name).OpenSession();
    session.options() = BenchOptions(servers);
    session.options().use_exhaustive_planner = exhaustive;
    for (int qi : {4, 5, 6}) {
      auto q = query::MakeBenchmarkQuery(qi);
      ADJ_CHECK(q.ok());

      api::Result coopt = session.Run(*q, "ADJ");
      api::Result comm_first = session.Run(*q, "HCubeJ");

      auto cell = [](bool ok, double v) {
        return ok ? Num(v) : std::string("FAIL");
      };
      const bool co_ok = coopt.ok();
      const bool cf_ok = comm_first.ok();
      std::printf(
          "%-5s | %9s %9s %9s %9s %9s | %9s %9s %9s %9s\n",
          query::BenchmarkQueryName(qi).c_str(),
          cell(co_ok, coopt.optimize_seconds()).c_str(),
          cell(co_ok, coopt.precompute_seconds()).c_str(),
          cell(co_ok, coopt.communication_seconds()).c_str(),
          cell(co_ok, coopt.computation_seconds()).c_str(),
          cell(co_ok, coopt.total_seconds()).c_str(),
          cell(cf_ok, comm_first.optimize_seconds()).c_str(),
          cell(cf_ok, comm_first.communication_seconds()).c_str(),
          cell(cf_ok, comm_first.computation_seconds()).c_str(),
          cell(cf_ok, comm_first.total_seconds()).c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper): Co-Opt pays small Opt+Pre+Comm overheads "
      "and slashes Comp; Comm-First Comp dominates or times out.\n");
}

}  // namespace
}  // namespace adj::bench

int main(int argc, char** argv) {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  bool exhaustive = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--exhaustive") == 0) exhaustive = true;
  }
  adj::bench::Run(exhaustive);
  return 0;
}
