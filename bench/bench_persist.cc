// Warm-restart persistence smoke: the same dataset brought to
// serving-ready twice — cold (parse the text edge list, then build
// every permuted index trie during Prepare) and warm (Database::Open
// an mmap snapshot, whose arrays the relations and tries view in
// place). Gates, each a hard failure for CI's Release leg:
//
//   1. warm Open is >= 10x faster than the cold edge-list rebuild
//      (load + prepare) it replaces,
//   2. the warm Prepare builds zero indexes — every binding resolves
//      to a snapshot-mapped artifact,
//   3. the first warm run reports index_builds == 0 and a nonzero
//      index_mmap_loaded count, with the same answer as the cold run.
//   4. the v3 snapshot of the same catalog is smaller than the v2 one:
//      v3 stores each trie level once in its execution form (raw or
//      block-compressed) where v2 stored raw levels plus a compressed
//      mirror — dropping the dual encoding must show up on disk.
//
// The warm path maps the v3 file, so gates 2 and 3 also prove that
// compressed trie levels load with zero re-encode and zero builds
// (the index cache compresses tries by default).
//
// Emits BENCH_persist.json so the restart-latency trajectory is
// recorded per run. Scale knobs: ADJ_BENCH_SCALE (bench_util.h).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "persist/snapshot.h"
#include "storage/edge_list_io.h"

namespace adj::bench {
namespace {

constexpr char kQuery[] = "G(a,b) G(b,c) G(a,c)";
constexpr double kMinSpeedup = 10.0;

int Run() {
  // Default above bench_util's 0.2: the gate needs the cold rebuild
  // well clear of timer noise.
  const double scale = ScaleFromEnv(4.0);
  const std::string edges_path = "bench_persist_edges.txt";
  const std::string snap_path = "bench_persist.adjsnap";
  const std::string snap_v2_path = "bench_persist_v2.adjsnap";
  uint64_t v3_file_bytes = 0;
  uint64_t v2_file_bytes = 0;
  uint64_t v3_compressed_levels = 0;

  // Stage 0: author the two on-disk inputs from one WB instance — the
  // text edge list the cold path parses, and the snapshot the warm
  // path maps. A single-server session warms the index cache first so
  // the snapshot carries the query's permuted rows + tries.
  {
    StatusOr<api::Database> db = api::Database::OpenBuiltin("WB", scale);
    ADJ_CHECK(db.ok()) << db.status();
    StatusOr<const storage::Relation*> g = db->catalog().Get("G");
    ADJ_CHECK(g.ok()) << g.status();
    Status saved_edges = storage::SaveEdgeList(**g, edges_path);
    ADJ_CHECK(saved_edges.ok()) << saved_edges;

    api::Session session = db->OpenSession();
    session.options().cluster.num_servers = 1;
    StatusOr<api::PreparedQuery> prepared = session.Prepare(kQuery);
    ADJ_CHECK(prepared.ok()) << prepared.status();
    api::Result r = prepared->Run();
    ADJ_CHECK(r.ok()) << r.status();
    // Write both snapshot versions of the same warmed catalog: v3 is
    // what the warm path opens; v2 exists only so gate 4 can measure
    // what dropping the dual trie encoding saves.
    StatusOr<persist::WriteStats> v3_stats = persist::SnapshotWriter::Write(
        db->catalog(), snap_path, {.version = persist::kVersion});
    ADJ_CHECK(v3_stats.ok()) << v3_stats.status();
    v3_file_bytes = v3_stats->file_bytes;
    v3_compressed_levels = v3_stats->compressed_levels;
    StatusOr<persist::WriteStats> v2_stats = persist::SnapshotWriter::Write(
        db->catalog(), snap_v2_path, {.version = persist::kMinVersion});
    ADJ_CHECK(v2_stats.ok()) << v2_stats.status();
    v2_file_bytes = v2_stats->file_bytes;
  }

  // Cold restart: parse the edge list, then Prepare — which builds
  // every permuted index from scratch.
  WallTimer cold_load_timer;
  api::Database cold_db;
  Status loaded = cold_db.LoadEdgeList(edges_path);
  ADJ_CHECK(loaded.ok()) << loaded;
  const double cold_load_s = cold_load_timer.Seconds();
  api::Session cold_session = cold_db.OpenSession();
  cold_session.options().cluster.num_servers = 1;
  WallTimer cold_prepare_timer;
  StatusOr<api::PreparedQuery> cold_prepared = cold_session.Prepare(kQuery);
  ADJ_CHECK(cold_prepared.ok()) << cold_prepared.status();
  const double cold_prepare_s = cold_prepare_timer.Seconds();
  api::Result cold = cold_prepared->Run();
  ADJ_CHECK(cold.ok()) << cold.status();
  const double cold_s = cold_load_s + cold_prepare_s;

  // Warm restart: map the snapshot. Open itself is the whole rebuild
  // replacement — relations and tries serve from the mapped file.
  WallTimer open_timer;
  api::Database warm_db;
  Status opened = warm_db.Open(snap_path);
  ADJ_CHECK(opened.ok()) << opened;
  const double open_s = open_timer.Seconds();

  api::Session warm_session = warm_db.OpenSession();
  warm_session.options().cluster.num_servers = 1;
  const uint64_t builds_before = warm_db.catalog().index_cache().stats().builds;
  WallTimer warm_prepare_timer;
  StatusOr<api::PreparedQuery> warm_prepared = warm_session.Prepare(kQuery);
  ADJ_CHECK(warm_prepared.ok()) << warm_prepared.status();
  const double warm_prepare_s = warm_prepare_timer.Seconds();
  const uint64_t prepare_builds =
      warm_db.catalog().index_cache().stats().builds - builds_before;
  api::Result warm = warm_prepared->Run();
  ADJ_CHECK(warm.ok()) << warm.status();

  const double speedup = open_s > 0 ? cold_s / open_s : kMinSpeedup * 10;
  std::printf(
      "persist smoke: out=%llu cold(load=%.4fs prepare=%.4fs)=%.4fs "
      "open=%.4fs speedup=%.1fx warm(prepare=%.4fs builds=%llu) "
      "run(builds=%llu mmap=%llu)\n",
      static_cast<unsigned long long>(warm.count()), cold_load_s,
      cold_prepare_s, cold_s, open_s, speedup, warm_prepare_s,
      static_cast<unsigned long long>(prepare_builds),
      static_cast<unsigned long long>(warm.index_builds()),
      static_cast<unsigned long long>(warm.index_mmap_loaded()));
  std::printf(
      "snapshot size: v3=%llu v2=%llu bytes (%.1f%% smaller, "
      "%llu compressed levels)\n",
      static_cast<unsigned long long>(v3_file_bytes),
      static_cast<unsigned long long>(v2_file_bytes),
      v2_file_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(v3_file_bytes) /
                               static_cast<double>(v2_file_bytes))
          : 0.0,
      static_cast<unsigned long long>(v3_compressed_levels));

  FILE* json = std::fopen("BENCH_persist.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"persist\",\n"
                 "  \"query\": \"%s\",\n"
                 "  \"dataset\": \"WB\",\n"
                 "  \"scale\": %.4f,\n"
                 "  \"output_count\": %llu,\n"
                 "  \"cold_load_seconds\": %.6f,\n"
                 "  \"cold_prepare_seconds\": %.6f,\n"
                 "  \"open_seconds\": %.6f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"warm_prepare_seconds\": %.6f,\n"
                 "  \"warm_prepare_builds\": %llu,\n"
                 "  \"warm_run_index_builds\": %llu,\n"
                 "  \"warm_run_index_mmap\": %llu,\n"
                 "  \"v3_file_bytes\": %llu,\n"
                 "  \"v2_file_bytes\": %llu,\n"
                 "  \"v3_compressed_levels\": %llu\n"
                 "}\n",
                 kQuery, scale,
                 static_cast<unsigned long long>(warm.count()), cold_load_s,
                 cold_prepare_s, open_s, speedup, warm_prepare_s,
                 static_cast<unsigned long long>(prepare_builds),
                 static_cast<unsigned long long>(warm.index_builds()),
                 static_cast<unsigned long long>(warm.index_mmap_loaded()),
                 static_cast<unsigned long long>(v3_file_bytes),
                 static_cast<unsigned long long>(v2_file_bytes),
                 static_cast<unsigned long long>(v3_compressed_levels));
    std::fclose(json);
  }

  int failures = 0;
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: warm open speedup %.1fx < %.1fx\n", speedup,
                 kMinSpeedup);
    ++failures;
  }
  if (prepare_builds != 0) {
    std::fprintf(stderr, "FAIL: warm prepare built %llu indexes (want 0)\n",
                 static_cast<unsigned long long>(prepare_builds));
    ++failures;
  }
  if (warm.index_builds() != 0) {
    std::fprintf(stderr, "FAIL: warm run built %llu indexes (want 0)\n",
                 static_cast<unsigned long long>(warm.index_builds()));
    ++failures;
  }
  if (warm.index_mmap_loaded() == 0) {
    std::fprintf(stderr, "FAIL: warm run reported no mmap-loaded indexes\n");
    ++failures;
  }
  if (warm.count() != cold.count()) {
    std::fprintf(stderr, "FAIL: warm count %llu != cold count %llu\n",
                 static_cast<unsigned long long>(warm.count()),
                 static_cast<unsigned long long>(cold.count()));
    ++failures;
  }
  if (v3_file_bytes >= v2_file_bytes) {
    std::fprintf(stderr,
                 "FAIL: v3 snapshot %llu bytes >= v2 %llu (dropping the "
                 "dual trie encoding must shrink the file)\n",
                 static_cast<unsigned long long>(v3_file_bytes),
                 static_cast<unsigned long long>(v2_file_bytes));
    ++failures;
  }
  std::remove(edges_path.c_str());
  std::remove(snap_path.c_str());
  std::remove(snap_v2_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adj::bench

int main() { return adj::bench::Run(); }
