// Reproduces Fig. 12 (and Table I): the cross-method comparison.
//  (a)-(c): Q1/Q2/Q3 across all six datasets;
//  (d)-(f): AS/LJ/OK across Q1..Q6;
// for the five methods SparkSQL, BigJoin, HCubeJ, HCubeJ+Cache, ADJ.
// Failed runs (memory/time emulation) print FAIL, matching the paper's
// missing bars / frame-top bars.
#include <cstring>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace adj::bench {
namespace {

// Column order is core::AllStrategies(): SparkSQL, BigJoin, HCubeJ,
// HCubeJ+Cache, ADJ — the paper's multi-round-to-ADJ ordering.
std::string OneCell(core::Engine& engine, const query::Query& q,
                    core::Strategy s, core::EngineOptions opts) {
  // Fig. 12 compares systems as published: HCubeJ / HCubeJ+Cache /
  // BigJoin use the original record-at-a-time (Push) HCube shuffle;
  // ADJ uses its optimized Merge implementation (Sec. V).
  opts.hcube_variant = (s == core::Strategy::kCoOpt)
                           ? dist::HCubeVariant::kMerge
                           : dist::HCubeVariant::kPush;
  auto report = engine.Run(q, s, opts);
  if (!report.ok() || !report->ok()) return "FAIL";
  return Num(report->TotalSeconds());
}

void PrintTable1(DatasetCache& data) {
  PrintHeader("Table I: datasets (synthetic stand-ins at bench scale)");
  for (const std::string& name : AllDatasets()) {
    auto rel = data.Get(name).Get("G");
    ADJ_CHECK(rel.ok());
    std::printf("%s\n", dataset::DescribeDataset(name, **rel).c_str());
  }
}

void Run(bool table1_only) {
  DatasetCache data(ScaleFromEnv());
  const int servers = ServersFromEnv();
  PrintTable1(data);
  if (table1_only) return;
  core::EngineOptions opts = BenchOptions(servers);

  // (a)-(c): vary dataset.
  for (int qi : {1, 2, 3}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    PrintHeader("Fig 12(" + std::string(1, char('a' + qi - 1)) + "): " +
                query::BenchmarkQueryName(qi) + " across datasets, total s");
    std::printf("%-5s %10s %10s %10s %12s %10s\n", "data", "SparkSQL",
                "BigJoin", "HCubeJ", "HCubeJ+C", "ADJ");
    for (const std::string& name : AllDatasets()) {
      const storage::Catalog& db = data.Get(name);
      core::Engine engine(&db);
      std::printf("%-5s", name.c_str());
      int width[5] = {10, 10, 10, 12, 10};
      for (int m = 0; m < 5; ++m) {
        std::printf(" %*s", width[m],
                    OneCell(engine, *q, core::AllStrategies()[size_t(m)], opts).c_str());
      }
      std::printf("\n");
    }
  }

  // (d)-(f): vary query.
  const char* panels[3] = {"d", "e", "f"};
  const std::string fixed[3] = {"AS", "LJ", "OK"};
  for (int p = 0; p < 3; ++p) {
    PrintHeader("Fig 12(" + std::string(panels[p]) + "): dataset " +
                fixed[p] + " across queries, total s");
    std::printf("%-5s %10s %10s %10s %12s %10s\n", "query", "SparkSQL",
                "BigJoin", "HCubeJ", "HCubeJ+C", "ADJ");
    const storage::Catalog& db = data.Get(fixed[p]);
    core::Engine engine(&db);
    for (int qi : {1, 2, 3, 4, 5, 6}) {
      auto q = query::MakeBenchmarkQuery(qi);
      std::printf("%-5s", query::BenchmarkQueryName(qi).c_str());
      int width[5] = {10, 10, 10, 12, 10};
      for (int m = 0; m < 5; ++m) {
        std::printf(" %*s", width[m],
                    OneCell(engine, *q, core::AllStrategies()[size_t(m)], opts).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper): SparkSQL only survives Q1; BigJoin only "
      "Q1/Q2; one-round methods handle everything; ADJ leads overall.\n");
}

}  // namespace
}  // namespace adj::bench

int main(int argc, char** argv) {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  bool table1_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--table1") == 0) table1_only = true;
  }
  adj::bench::Run(table1_only);
  return 0;
}
