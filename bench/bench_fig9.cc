// Reproduces Fig. 9: the three HCube implementations (Push / Pull /
// Merge) compared on communication cost and computation (local index
// construction) cost, on Q2 over every dataset.
#include "bench/bench_util.h"
#include "common/logging.h"
#include "dist/hcube.h"
#include "exec/hcubej.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  const int servers = ServersFromEnv();
  auto q = query::MakeBenchmarkQuery(2);
  ADJ_CHECK(q.ok());
  query::AttributeOrder order;
  for (int a = 0; a < q->num_attrs(); ++a) order.push_back(a);

  PrintHeader("Fig 9(a): HCube communication seconds (Q2)");
  std::printf("%-5s %12s %12s %12s\n", "data", "Push", "Pull", "Merge");
  struct Row {
    double comm[3];
    double comp[3];
  };
  std::vector<Row> rows;
  for (const std::string& name : AllDatasets()) {
    const storage::Catalog& db = data.Get(name);
    Row row{};
    const dist::HCubeVariant variants[3] = {dist::HCubeVariant::kPush,
                                            dist::HCubeVariant::kPull,
                                            dist::HCubeVariant::kMerge};
    for (int v = 0; v < 3; ++v) {
      dist::ClusterConfig cfg;
      cfg.num_servers = servers;
      dist::Cluster cluster(cfg);
      exec::HCubeJParams params;
      params.variant = variants[v];
      auto bound = exec::BindAtomsForOrder(*q, db, order);
      ADJ_CHECK(bound.ok());
      std::vector<dist::HCubeInput> inputs;
      for (const auto& b : *bound) inputs.push_back({&b.rel(), b.attrs});
      // Shares: same for all variants so only the implementation varies.
      dist::ShareVector share;
      share.p.assign(size_t(q->num_attrs()), 1);
      share.p[0] = 2;
      share.p[1] = 2;
      auto result = dist::HCubeShuffle(inputs, share, variants[v], &cluster);
      ADJ_CHECK(result.ok()) << result.status();
      row.comm[v] = result->comm.seconds;
      row.comp[v] = result->build_seconds_max;
    }
    rows.push_back(row);
    std::printf("%-5s %12s %12s %12s\n", name.c_str(), Num(row.comm[0]).c_str(),
                Num(row.comm[1]).c_str(), Num(row.comm[2]).c_str());
  }

  PrintHeader("Fig 9(b): HCube computation seconds — local index build (Q2)");
  std::printf("%-5s %12s %12s %12s\n", "data", "Push", "Pull", "Merge");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-5s %12s %12s %12s\n", AllDatasets()[i].c_str(),
                Num(rows[i].comp[0]).c_str(), Num(rows[i].comp[1]).c_str(),
                Num(rows[i].comp[2]).c_str());
  }
  std::printf(
      "\nExpected shape (paper): Pull/Merge shuffle 1-2 orders of magnitude "
      "cheaper than Push; Merge builds local tries fastest.\n");
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
