// Reproduces Fig. 6: the share of intermediate tuples generated while
// extending the last traversed hypertree node, the second-to-last
// node, and the rest, for Q5/Q6 over all datasets. This validates the
// heuristic behind Alg. 2 (the last nodes dominate computation).
#include <algorithm>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "ghd/decomposition.h"
#include "wcoj/leapfrog.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  PrintHeader("Fig 6: % of intermediate tuples per traversed node");
  std::printf("%-6s %-5s %10s %10s %10s\n", "query", "data", "(n)th",
              "(n-1)th", "rest");
  for (int qi : {5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    auto decomp = ghd::FindOptimalGhd(*q);
    ADJ_CHECK(decomp.ok());
    // A valid order under the decomposition (first one enumerated).
    auto orders = ghd::ValidAttributeOrders(*decomp, *q);
    ADJ_CHECK(!orders.empty());
    const query::AttributeOrder order = orders.front();
    const std::vector<int> segments =
        ghd::OrderBagSegments(*decomp, *q, order);
    ADJ_CHECK(!segments.empty());

    for (const std::string& name : AllDatasets()) {
      const storage::Catalog& db = data.Get(name);
      const std::vector<int> rank = query::RankOf(order, q->num_attrs());
      std::vector<wcoj::PreparedRelation> prepared;
      std::vector<wcoj::JoinInput> inputs;
      for (const query::Atom& atom : q->atoms()) {
        auto prep = wcoj::PrepareRelation(**db.Get(atom.relation),
                                          atom.schema.attrs(), rank);
        ADJ_CHECK(prep.ok());
        prepared.push_back(std::move(prep.value()));
      }
      for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
      wcoj::JoinStats stats;
      wcoj::JoinLimits limits;
      limits.max_extensions = 300'000'000;
      auto count = wcoj::LeapfrogJoin(inputs, order, nullptr, &stats, limits);
      if (!count.ok() && count.status().code() != StatusCode::kOk) {
        // Capped runs still report the distribution of what was done.
      }
      // Aggregate level counts into bag segments.
      std::vector<double> per_node;
      size_t level = 0;
      for (int seg : segments) {
        double sum = 0;
        for (int s = 0; s < seg; ++s, ++level) {
          if (level < stats.tuples_at_level.size()) {
            sum += double(stats.tuples_at_level[level]);
          }
        }
        per_node.push_back(sum);
      }
      double total = 0;
      for (double v : per_node) total += v;
      if (total <= 0) total = 1;
      const size_t k = per_node.size();
      const double nth = per_node[k - 1] / total;
      const double n1th = k >= 2 ? per_node[k - 2] / total : 0.0;
      const double rest = std::max(0.0, 1.0 - nth - n1th);
      std::printf("%-6s %-5s %9.1f%% %9.1f%% %9.1f%%\n",
                  query::BenchmarkQueryName(qi).c_str(), name.c_str(),
                  100 * nth, 100 * n1th, 100 * rest);
    }
  }
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
