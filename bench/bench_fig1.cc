// Reproduces Fig. 1 of the paper:
//  (a) One-round (HCubeJ) vs multi-round (SparkSQL, BigJoin) joins on
//      Q5/Q6 over LJ, compared by the number of shuffled tuples.
//  (b) Communication-first (HCubeJ) vs co-optimization (ADJ) cost
//      breakdown: Comm / Comp / Pre+Comm.
#include "bench/bench_util.h"
#include "common/logging.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  const int servers = ServersFromEnv();
  api::Session session = data.GetDb("LJ").OpenSession();
  session.options() = BenchOptions(servers);

  PrintHeader("Fig 1(a): shuffled tuples, one-round vs multi-round (LJ)");
  std::printf("%-6s %16s %16s %16s\n", "query", "SparkSQL", "BigJoin",
              "HCubeJ(1-round)");
  for (int qi : {5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    std::string cells[3];
    const char* strategies[3] = {"SparkSQL", "BigJoin", "HCubeJ"};
    for (int s = 0; s < 3; ++s) {
      api::Result r = session.Run(*q, strategies[s]);
      if (r.ok()) {
        cells[s] = std::to_string(r.report().comm.tuple_copies);
      } else if (!r.strategy().empty()) {
        // The run started and failed; count what was shuffled before
        // the failure — the paper's point is precisely that
        // multi-round methods explode.
        cells[s] = std::to_string(r.report().comm.tuple_copies) + " (FAIL)";
      } else {
        cells[s] = "FAIL";
      }
    }
    std::printf("%-6s %16s %16s %16s\n",
                query::BenchmarkQueryName(qi).c_str(), cells[0].c_str(),
                cells[1].c_str(), cells[2].c_str());
  }

  PrintHeader("Fig 1(b): Comm-First vs Co-Opt cost breakdown (LJ), seconds");
  std::printf("%-6s %-12s %10s %10s %10s %10s\n", "query", "strategy",
              "Comm", "Comp", "Pre+Opt", "Total");
  for (int qi : {5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    for (const char* s : {"HCubeJ", "ADJ"}) {
      api::Result r = session.Run(*q, s);
      if (!r.ok()) {
        std::printf("%-6s %-12s %10s\n", query::BenchmarkQueryName(qi).c_str(),
                    s, "FAIL");
        continue;
      }
      std::printf("%-6s %-12s %10s %10s %10s %10s\n",
                  query::BenchmarkQueryName(qi).c_str(), s,
                  Num(r.communication_seconds()).c_str(),
                  Num(r.computation_seconds()).c_str(),
                  Num(r.precompute_seconds() + r.optimize_seconds()).c_str(),
                  Num(r.total_seconds()).c_str());
    }
  }
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
