// Reproduces Fig. 1 of the paper:
//  (a) One-round (HCubeJ) vs multi-round (SparkSQL, BigJoin) joins on
//      Q5/Q6 over LJ, compared by the number of shuffled tuples.
//  (b) Communication-first (HCubeJ) vs co-optimization (ADJ) cost
//      breakdown: Comm / Comp / Pre+Comm.
#include "bench/bench_util.h"
#include "common/logging.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  const int servers = ServersFromEnv();
  const storage::Catalog& db = data.Get("LJ");
  core::Engine engine(&db);
  core::EngineOptions opts = BenchOptions(servers);

  PrintHeader("Fig 1(a): shuffled tuples, one-round vs multi-round (LJ)");
  std::printf("%-6s %16s %16s %16s\n", "query", "SparkSQL", "BigJoin",
              "HCubeJ(1-round)");
  for (int qi : {5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    std::string cells[3];
    const core::Strategy strategies[3] = {core::Strategy::kBinaryJoin,
                                          core::Strategy::kBigJoin,
                                          core::Strategy::kCommFirst};
    for (int s = 0; s < 3; ++s) {
      auto report = engine.Run(*q, strategies[s], opts);
      if (report.ok() && report->ok()) {
        cells[s] = std::to_string(report->comm.tuple_copies);
      } else {
        // Count what was shuffled before the failure — the paper's
        // point is precisely that multi-round methods explode.
        cells[s] = report.ok()
                       ? std::to_string(report->comm.tuple_copies) + " (FAIL)"
                       : "FAIL";
      }
    }
    std::printf("%-6s %16s %16s %16s\n",
                query::BenchmarkQueryName(qi).c_str(), cells[0].c_str(),
                cells[1].c_str(), cells[2].c_str());
  }

  PrintHeader("Fig 1(b): Comm-First vs Co-Opt cost breakdown (LJ), seconds");
  std::printf("%-6s %-12s %10s %10s %10s %10s\n", "query", "strategy",
              "Comm", "Comp", "Pre+Opt", "Total");
  for (int qi : {5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    for (core::Strategy s :
         {core::Strategy::kCommFirst, core::Strategy::kCoOpt}) {
      auto report = engine.Run(*q, s, opts);
      if (!report.ok() || !report->ok()) {
        std::printf("%-6s %-12s %10s\n", query::BenchmarkQueryName(qi).c_str(),
                    core::StrategyName(s), "FAIL");
        continue;
      }
      std::printf("%-6s %-12s %10s %10s %10s %10s\n",
                  query::BenchmarkQueryName(qi).c_str(), core::StrategyName(s),
                  Num(report->comm_s).c_str(), Num(report->comp_s).c_str(),
                  Num(report->precompute_s + report->optimize_s).c_str(),
                  Num(report->TotalSeconds()).c_str());
    }
  }
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
