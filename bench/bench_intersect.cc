// Intersection-kernel smoke: three gates on the leapfrog hot path.
//
//  1. Kernel ratio — the dispatched SIMD 2-way kernel must beat the
//     scalar galloping baseline by >= 1.5x on the leapfrog Descend
//     shape: a sparse probe side against a dense value run, where the
//     block compare retires a vector's worth of the dense side per
//     instruction. Skipped (and recorded as such) when the CPU offers
//     no SIMD kernel. A second shape gates the dense similar-size
//     all-pairs kernel: both sides dense and equal-length, where the
//     shuffle-compare variant must beat scalar by >= 1.2x.
//  2. Allocation-free joins — the number of heap allocations during a
//     LeapfrogJoin must not depend on data size: a join over a 10x
//     larger graph must allocate exactly as many times (the fixed
//     arena + executor setup), and few times in absolute terms. This
//     is what "allocation-free hot path" means observably: per-tuple
//     work costs zero heap traffic.
//  3. End-to-end parity — the dispatched kernel must not make the full
//     triangle join slower than forced-scalar (small tolerance for
//     timer noise).
//
// Allocations are counted by overriding global operator new/delete in
// this binary. Exits non-zero on any violation so CI's Release leg
// catches a regression; emits BENCH_intersect.json for the record.
//
// Scale knob: ADJ_BENCH_SCALE (bench_util.h) multiplies the workload.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "wcoj/intersect.h"
#include "wcoj/leapfrog.h"

namespace {

std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace adj::bench {
namespace {

using wcoj::intersect::ActiveKernel;
using wcoj::intersect::Kernel;
using wcoj::intersect::KernelName;
using wcoj::intersect::KernelStats;
using wcoj::intersect::SetKernel;

constexpr double kMinKernelRatio = 1.5;
constexpr double kMinDenseRatio = 1.2;  // all-pairs kernel vs scalar
constexpr double kMaxE2eRatio = 1.10;  // dispatched / scalar, warm

/// Strictly increasing values with ~1/(1 + max_gap/2) density — gap
/// walk, no set churn.
std::vector<Value> GapWalk(Rng& rng, size_t count, uint64_t max_gap) {
  std::vector<Value> v(count);
  Value cur = 0;
  for (size_t i = 0; i < count; ++i) {
    cur += static_cast<Value>(1 + rng.Uniform(max_gap));
    v[i] = cur;
  }
  return v;
}

/// Min-of-reps wall time for one fixed 2-way kernel over (a, b).
double TimeKernel(Kernel k, const std::vector<Value>& a,
                  const std::vector<Value>& b, std::vector<Value>* out,
                  int reps, size_t* result_size) {
  KernelStats stats;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    size_t n = 0;
    switch (k) {
      case Kernel::kScalar:
        n = Intersect2Scalar(a, b, out->data(), nullptr, 1, nullptr, 1,
                             &stats);
        break;
      case Kernel::kSse42:
        n = Intersect2Sse42(a, b, out->data(), nullptr, 1, nullptr, 1,
                            &stats);
        break;
      case Kernel::kAvx2:
        n = Intersect2Avx2(a, b, out->data(), nullptr, 1, nullptr, 1,
                           &stats);
        break;
      default:
        break;
    }
    const double s = t.Seconds();
    if (r == 0 || s < best) best = s;
    *result_size = n;
  }
  return best;
}

/// A random graph as a sorted-unique binary relation.
storage::Relation RandomGraph(Rng& rng, uint64_t edges, uint64_t vertices) {
  storage::Relation g(storage::Schema({0, 1}));
  g.Reserve(edges);
  for (uint64_t e = 0; e < edges; ++e) {
    g.Append({static_cast<Value>(rng.Uniform(vertices)),
              static_cast<Value>(rng.Uniform(vertices))});
  }
  g.SortAndDedup();
  return g;
}

struct JoinRun {
  uint64_t count = 0;
  uint64_t allocs = 0;
  double seconds = 0.0;
};

/// One count-only triangle LeapfrogJoin over prepared tries, with the
/// heap-allocation count of the join call itself.
JoinRun RunTriangle(const wcoj::PreparedRelation& ab,
                    const wcoj::PreparedRelation& bc,
                    const wcoj::PreparedRelation& ac) {
  std::vector<wcoj::JoinInput> inputs = {{&ab.trie, ab.attrs},
                                         {&bc.trie, bc.attrs},
                                         {&ac.trie, ac.attrs}};
  query::AttributeOrder order{0, 1, 2};
  JoinRun run;
  wcoj::JoinStats stats;
  const uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  WallTimer t;
  StatusOr<uint64_t> count =
      wcoj::LeapfrogJoin(inputs, order, nullptr, &stats);
  run.seconds = t.Seconds();
  run.allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  ADJ_CHECK(count.ok()) << count.status();
  run.count = *count;
  return run;
}

int Run() {
  const double scale = ScaleFromEnv(1.0);
  int failures = 0;

  // ---- Gate 1: SIMD kernel vs scalar on the Descend-shaped 2-way
  // intersection: sparse probes (avg gap ~4.5) against a dense run.
  Rng rng(42);
  const size_t set_size = static_cast<size_t>(1'000'000 * scale);
  const std::vector<Value> a = GapWalk(rng, set_size / 8, 8);
  const std::vector<Value> b = GapWalk(rng, set_size, 1);
  std::vector<Value> out(set_size);
  const int reps = 9;
  size_t n_scalar = 0, n_simd = 0;
  const double scalar_s =
      TimeKernel(Kernel::kScalar, a, b, &out, reps, &n_scalar);
  const Kernel simd = ActiveKernel();
  const bool have_simd = simd != Kernel::kScalar;
  double simd_s = 0.0;
  double kernel_ratio = 0.0;
  if (have_simd) {
    simd_s = TimeKernel(simd, a, b, &out, reps, &n_simd);
    kernel_ratio = simd_s > 0 ? scalar_s / simd_s : kMinKernelRatio * 10;
    if (n_simd != n_scalar) {
      std::fprintf(stderr, "FAIL: SIMD result size %zu != scalar %zu\n",
                   n_simd, n_scalar);
      ++failures;
    }
    if (kernel_ratio < kMinKernelRatio) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx < %.1fx over scalar\n",
                   KernelName(simd), kernel_ratio, kMinKernelRatio);
      ++failures;
    }
  }
  std::printf("kernel: %s n=%zu common=%zu scalar=%.4fs simd=%.4fs "
              "ratio=%.2fx\n",
              KernelName(simd), set_size, n_scalar, scalar_s, simd_s,
              kernel_ratio);

  // ---- Gate 1b: the dense similar-size shape, where block-compare
  // merging only ties scalar (one probe retired per compare). Both
  // sides dense (avg gap 1.5) and equal-length, values-only — the
  // conditions under which Intersect2 dispatches the all-pairs
  // shuffle kernel. It must beat scalar by >= 1.2x.
  Rng dense_rng(43);
  const size_t dense_size = static_cast<size_t>(1'000'000 * scale);
  const std::vector<Value> da = GapWalk(dense_rng, dense_size, 2);
  const std::vector<Value> db = GapWalk(dense_rng, dense_size, 2);
  std::vector<Value> dense_out(dense_size);
  size_t n_dense_scalar = 0, n_dense_auto = 0;
  const double dense_scalar_s =
      TimeKernel(Kernel::kScalar, da, db, &dense_out, reps, &n_dense_scalar);
  double dense_auto_s = 0.0;
  double dense_ratio = 0.0;
  if (have_simd) {
    // Values-only dispatched call: Intersect2 selects the dense
    // all-pairs kernel (TimeKernel's fixed variants would not).
    KernelStats dense_stats;
    for (int r = 0; r < reps; ++r) {
      WallTimer t;
      n_dense_auto = Intersect2(da, db, dense_out.data(), nullptr, 1,
                                nullptr, 1, &dense_stats);
      const double s = t.Seconds();
      if (r == 0 || s < dense_auto_s) dense_auto_s = s;
    }
    dense_ratio = dense_auto_s > 0 ? dense_scalar_s / dense_auto_s
                                   : kMinDenseRatio * 10;
    if (n_dense_auto != n_dense_scalar) {
      std::fprintf(stderr, "FAIL: dense result size %zu != scalar %zu\n",
                   n_dense_auto, n_dense_scalar);
      ++failures;
    }
    if (dense_ratio < kMinDenseRatio) {
      std::fprintf(stderr,
                   "FAIL: dense all-pairs speedup %.2fx < %.1fx over "
                   "scalar\n",
                   dense_ratio, kMinDenseRatio);
      ++failures;
    }
  }
  std::printf("dense: n=%zu common=%zu scalar=%.4fs dispatched=%.4fs "
              "ratio=%.2fx\n",
              dense_size, n_dense_scalar, dense_scalar_s, dense_auto_s,
              dense_ratio);

  // ---- Gate 2: join allocation count is workload-independent.
  Rng graph_rng(7);
  const uint64_t small_edges = static_cast<uint64_t>(30'000 * scale);
  const uint64_t big_edges = small_edges * 10;
  const storage::Relation small_g =
      RandomGraph(graph_rng, small_edges, small_edges / 15);
  const storage::Relation big_g =
      RandomGraph(graph_rng, big_edges, big_edges / 15);
  auto prep = [](const storage::Relation& g, std::vector<AttrId> attrs) {
    StatusOr<wcoj::PreparedRelation> p =
        wcoj::PrepareRelation(g, attrs, {0, 1, 2});
    ADJ_CHECK(p.ok()) << p.status();
    return std::move(p.value());
  };
  const wcoj::PreparedRelation s_ab = prep(small_g, {0, 1});
  const wcoj::PreparedRelation s_bc = prep(small_g, {1, 2});
  const wcoj::PreparedRelation s_ac = prep(small_g, {0, 2});
  const wcoj::PreparedRelation b_ab = prep(big_g, {0, 1});
  const wcoj::PreparedRelation b_bc = prep(big_g, {1, 2});
  const wcoj::PreparedRelation b_ac = prep(big_g, {0, 2});

  RunTriangle(s_ab, s_bc, s_ac);  // warm-up: malloc arenas, page in
  const JoinRun small_run = RunTriangle(s_ab, s_bc, s_ac);
  const JoinRun big_run = RunTriangle(b_ab, b_bc, b_ac);
  std::printf("allocs: small(%llu edges)=%llu big(%llu edges)=%llu "
              "triangles(small=%llu big=%llu)\n",
              static_cast<unsigned long long>(small_g.size()),
              static_cast<unsigned long long>(small_run.allocs),
              static_cast<unsigned long long>(big_g.size()),
              static_cast<unsigned long long>(big_run.allocs),
              static_cast<unsigned long long>(small_run.count),
              static_cast<unsigned long long>(big_run.count));
  if (small_run.allocs != big_run.allocs) {
    std::fprintf(stderr,
                 "FAIL: join allocation count scales with data "
                 "(%llu vs %llu on 10x edges)\n",
                 static_cast<unsigned long long>(small_run.allocs),
                 static_cast<unsigned long long>(big_run.allocs));
    ++failures;
  }
  if (big_run.allocs > 64) {
    std::fprintf(stderr, "FAIL: join performed %llu allocations (want <=64)\n",
                 static_cast<unsigned long long>(big_run.allocs));
    ++failures;
  }

  // ---- Gate 3: dispatched warm join no slower than forced scalar.
  auto best_of = [&](int n) {
    JoinRun best = RunTriangle(b_ab, b_bc, b_ac);
    for (int i = 1; i < n; ++i) {
      const JoinRun r = RunTriangle(b_ab, b_bc, b_ac);
      if (r.seconds < best.seconds) best = r;
    }
    return best;
  };
  SetKernel(Kernel::kScalar);
  const JoinRun scalar_join = best_of(5);
  SetKernel(Kernel::kAuto);
  const JoinRun auto_join = best_of(5);
  const double e2e_ratio = scalar_join.seconds > 0
                               ? auto_join.seconds / scalar_join.seconds
                               : 1.0;
  std::printf("e2e: scalar=%.4fs dispatched=%.4fs ratio=%.2f "
              "(gate <= %.2f)\n",
              scalar_join.seconds, auto_join.seconds, e2e_ratio,
              kMaxE2eRatio);
  if (auto_join.count != scalar_join.count) {
    std::fprintf(stderr, "FAIL: dispatched count %llu != scalar %llu\n",
                 static_cast<unsigned long long>(auto_join.count),
                 static_cast<unsigned long long>(scalar_join.count));
    ++failures;
  }
  if (have_simd && e2e_ratio > kMaxE2eRatio) {
    std::fprintf(stderr, "FAIL: dispatched join %.2fx of scalar (> %.2f)\n",
                 e2e_ratio, kMaxE2eRatio);
    ++failures;
  }

  FILE* json = std::fopen("BENCH_intersect.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"intersect\",\n"
                 "  \"scale\": %.4f,\n"
                 "  \"kernel\": \"%s\",\n"
                 "  \"set_size\": %zu,\n"
                 "  \"scalar_seconds\": %.6f,\n"
                 "  \"simd_seconds\": %.6f,\n"
                 "  \"kernel_ratio\": %.2f,\n"
                 "  \"dense_scalar_seconds\": %.6f,\n"
                 "  \"dense_dispatched_seconds\": %.6f,\n"
                 "  \"dense_ratio\": %.2f,\n"
                 "  \"join_allocs_small\": %llu,\n"
                 "  \"join_allocs_big\": %llu,\n"
                 "  \"e2e_scalar_seconds\": %.6f,\n"
                 "  \"e2e_dispatched_seconds\": %.6f,\n"
                 "  \"e2e_ratio\": %.3f\n"
                 "}\n",
                 scale, KernelName(simd), set_size, scalar_s, simd_s,
                 kernel_ratio, dense_scalar_s, dense_auto_s, dense_ratio,
                 static_cast<unsigned long long>(small_run.allocs),
                 static_cast<unsigned long long>(big_run.allocs),
                 scalar_join.seconds, auto_join.seconds, e2e_ratio);
    std::fclose(json);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adj::bench

int main() { return adj::bench::Run(); }
