// Reproduces Fig. 8: effectiveness of attribute-order pruning.
// For Q4–Q6 over every dataset we score ALL n! attribute orders by the
// number of intermediate tuples Leapfrog generates and report:
//   Invalid-Max      worst order among the invalid ones,
//   Valid-Max        worst order among the hypertree-valid ones,
//   All-Selected     the order the comm-first baseline picks from all
//                    orders (sketch-scored, as in HCubeJ [11]),
//   Valid-Selected   the order ADJ picks from valid orders.
// Intermediate counts are estimated by pinned-first-attribute sampling
// (exact enumeration over 120 orders x 18 test cases would take hours;
// the sampling estimator is unbiased and the orders are ranked by
// orders of magnitude).
#include <algorithm>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "ghd/decomposition.h"
#include "sampling/sampler.h"

namespace adj::bench {
namespace {

/// Estimated intermediate tuples (sum over non-final levels) of
/// Leapfrog under `order`.
double EstimateIntermediates(const query::Query& q,
                             const storage::Catalog& db,
                             const query::AttributeOrder& order) {
  sampling::SamplerOptions opts;
  opts.num_samples = 48;
  opts.seed = 7;
  opts.per_sample_limits.max_extensions = 100'000;
  auto est = sampling::SampleCardinality(q, db, order, opts);
  if (!est.ok()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i + 1 < est->est_tuples_at_level.size(); ++i) {
    sum += est->est_tuples_at_level[i];
  }
  return sum;
}

void Run() {
  // This bench scores every one of the n! orders 18 times; run the
  // datasets at half the global bench scale to keep the sweep to
  // minutes (ranking is preserved — the gaps are orders of magnitude).
  DatasetCache data(ScaleFromEnv() * 0.5);
  const int servers = ServersFromEnv();
  PrintHeader(
      "Fig 8: attribute-order pruning (estimated intermediate tuples)");
  std::printf("%-5s %-5s %14s %14s %14s %14s\n", "query", "data",
              "Invalid-Max", "Valid-Max", "All-Selected", "Valid-Selected");
  for (int qi : {4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    auto decomp = ghd::FindOptimalGhd(*q);
    ADJ_CHECK(decomp.ok());

    for (const std::string& name : AllDatasets()) {
      const storage::Catalog& db = data.Get(name);
      core::Engine engine(&db);

      double invalid_max = 0.0, valid_max = 0.0;
      for (const query::AttributeOrder& order :
           query::AllOrders(q->AllAttrs())) {
        const double inter = EstimateIntermediates(*q, db, order);
        if (ghd::IsValidOrder(*decomp, *q, order)) {
          valid_max = std::max(valid_max, inter);
        } else {
          invalid_max = std::max(invalid_max, inter);
        }
      }
      // All-Selected: comm-first baseline order (scored over all).
      auto all_selected = engine.SelectCommFirstOrder(*q);
      ADJ_CHECK(all_selected.ok());
      const double all_sel = EstimateIntermediates(*q, db, *all_selected);
      // Valid-Selected: ADJ's planned order.
      core::EngineOptions opts = BenchOptions(servers);
      opts.num_samples = 200;
      auto planned = engine.Plan(*q, opts);
      ADJ_CHECK(planned.ok()) << planned.status();
      const double valid_sel =
          EstimateIntermediates(*q, db, planned->plan.order);

      std::printf("%-5s %-5s %14s %14s %14s %14s\n",
                  query::BenchmarkQueryName(qi).c_str(), name.c_str(),
                  Num(invalid_max).c_str(), Num(valid_max).c_str(),
                  Num(all_sel).c_str(), Num(valid_sel).c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper): Valid-Max <= Invalid-Max and "
      "Valid-Selected <= All-Selected across test cases.\n");
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
