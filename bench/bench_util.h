#ifndef ADJ_BENCH_BENCH_UTIL_H_
#define ADJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "api/api.h"
#include "common/logging.h"
#include "core/engine.h"
#include "dataset/builtin.h"
#include "query/queries.h"
#include "storage/catalog.h"

namespace adj::bench {

/// All benches run the paper's workloads at a laptop scale factor.
/// Override with ADJ_BENCH_SCALE (multiplies every dataset's edge
/// budget) and ADJ_BENCH_SERVERS.
inline double ScaleFromEnv(double def = 0.2) {
  const char* s = std::getenv("ADJ_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : def;
}

inline int ServersFromEnv(int def = 4) {
  const char* s = std::getenv("ADJ_BENCH_SERVERS");
  return s != nullptr ? std::atoi(s) : def;
}

/// Loads (and caches) a builtin dataset at the bench scale, as an
/// api::Database (relation "G").
class DatasetCache {
 public:
  explicit DatasetCache(double scale) : scale_(scale) {}

  const api::Database& GetDb(const std::string& name) {
    auto it = dbs_.find(name);
    if (it != dbs_.end()) return it->second;
    StatusOr<api::Database> db = api::Database::OpenBuiltin(name, scale_);
    ADJ_CHECK(db.ok()) << db.status();
    return dbs_.emplace(name, std::move(db.value())).first->second;
  }

  /// Raw catalog view, for benches that drive core::Engine directly.
  const storage::Catalog& Get(const std::string& name) {
    return GetDb(name).catalog();
  }

  double scale() const { return scale_; }

 private:
  double scale_;
  std::map<std::string, api::Database> dbs_;
};

/// Engine options used across benches: failure emulation thresholds
/// stand in for the paper's memory-overflow / 12-hour-timeout events,
/// scaled to this machine.
inline core::EngineOptions BenchOptions(int servers) {
  core::EngineOptions opts;
  opts.cluster.num_servers = servers;
  opts.cluster.memory_per_server_bytes = 512ull << 20;
  opts.num_samples = 400;
  // The paper's 12-hour timeout scales to ~40s at our ~1/1100 data
  // scale. Leapfrog streams results, so it is bounded by time; the
  // materializing baselines (SparkSQL, BigJoin) are bounded by rows —
  // the paper's memory-overflow failure mode.
  opts.limits.max_extensions = 4'000'000'000ull;
  opts.limits.max_seconds = 30.0;
  opts.limits.max_materialized_rows = 10'000'000;
  return opts;
}

inline const std::vector<std::string>& AllDatasets() {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{"WB", "AS", "WT", "LJ", "EN", "OK"};
  return *kNames;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// "1.23e+04" style compact cell.
inline std::string Num(double v) {
  char buf[32];
  if (v >= 1e5 || (v > 0 && v < 1e-2)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace adj::bench

#endif  // ADJ_BENCH_BENCH_UTIL_H_
