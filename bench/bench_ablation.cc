// Ablations for the design choices DESIGN.md calls out:
//  1. Alg. 2 (greedy reverse) vs the exhaustive planner: estimated
//     plan cost and planning time.
//  2. Pre-computation on/off at a fixed order: measured totals.
//  3. Sampling budget sensitivity of the chosen plan.
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  const int servers = ServersFromEnv();

  PrintHeader("Ablation 1: Alg.2 vs exhaustive planner (LJ)");
  std::printf("%-6s %14s %14s %12s %12s\n", "query", "Alg2 est(s)",
              "Exh est(s)", "Alg2 plan(s)", "Exh plan(s)");
  const storage::Catalog& db = data.Get("LJ");
  core::Engine engine(&db);
  for (int qi : {2, 4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    core::EngineOptions opts = BenchOptions(servers);

    WallTimer t1;
    auto greedy = engine.Plan(*q, opts);
    const double greedy_s = t1.Seconds();
    opts.use_exhaustive_planner = true;
    WallTimer t2;
    auto exhaustive = engine.Plan(*q, opts);
    const double exhaustive_s = t2.Seconds();
    if (!greedy.ok() || !exhaustive.ok()) {
      std::printf("%-6s planning failed\n",
                  query::BenchmarkQueryName(qi).c_str());
      continue;
    }
    std::printf("%-6s %14s %14s %12s %12s\n",
                query::BenchmarkQueryName(qi).c_str(),
                Num(greedy->plan.EstTotal()).c_str(),
                Num(exhaustive->plan.EstTotal()).c_str(),
                Num(greedy_s).c_str(), Num(exhaustive_s).c_str());
  }

  PrintHeader("Ablation 2: pre-computation on/off (LJ, measured totals)");
  std::printf("%-6s %14s %14s\n", "query", "ADJ(co-opt)", "HCubeJ(no-pre)");
  for (int qi : {4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    core::EngineOptions opts = BenchOptions(servers);
    auto with_pre = engine.Run(*q, core::Strategy::kCoOpt, opts);
    auto without = engine.Run(*q, core::Strategy::kCommFirst, opts);
    auto cell = [](const StatusOr<exec::RunReport>& r) {
      return (r.ok() && r->ok()) ? Num(r->TotalSeconds())
                                 : std::string("FAIL");
    };
    std::printf("%-6s %14s %14s\n", query::BenchmarkQueryName(qi).c_str(),
                cell(with_pre).c_str(), cell(without).c_str());
  }

  PrintHeader("Ablation 3: sampling budget vs chosen plan (LJ, Q5)");
  std::printf("%10s %16s %22s\n", "samples", "est total(s)", "plan");
  auto q5 = query::MakeBenchmarkQuery(5);
  for (uint64_t k : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
    core::EngineOptions opts = BenchOptions(servers);
    opts.num_samples = k;
    auto planned = engine.Plan(*q5, opts);
    if (!planned.ok()) {
      std::printf("%10llu planning failed\n",
                  static_cast<unsigned long long>(k));
      continue;
    }
    std::printf("%10llu %16s   %s\n", static_cast<unsigned long long>(k),
                Num(planned->plan.EstTotal()).c_str(),
                planned->plan.ToString(*q5).c_str());
  }
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
