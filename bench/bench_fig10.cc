// Reproduces Fig. 10: cost and accuracy of the sampling-based
// cardinality estimator on LJ with Q4/Q5/Q6, sweeping the sampling
// budget. Reports aggregated sampling time and the paper's accuracy
// metric D = max(est, truth) / min(est, truth).
#include <algorithm>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "sampling/sampler.h"
#include "wcoj/leapfrog.h"

namespace adj::bench {
namespace {

void Run() {
  DatasetCache data(ScaleFromEnv());
  const storage::Catalog& db = data.Get("LJ");

  // Ground truth per query via one sequential Leapfrog.
  PrintHeader("Fig 10: sampling cost and accuracy (LJ)");
  std::printf("%-6s %10s %12s %12s %10s\n", "query", "samples", "time(s)",
              "estimate", "D");
  for (int qi : {4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    ADJ_CHECK(q.ok());
    query::AttributeOrder order;
    for (int a = 0; a < q->num_attrs(); ++a) order.push_back(a);
    const std::vector<int> rank = query::RankOf(order, q->num_attrs());
    std::vector<wcoj::PreparedRelation> prepared;
    std::vector<wcoj::JoinInput> inputs;
    for (const query::Atom& atom : q->atoms()) {
      auto prep = wcoj::PrepareRelation(**db.Get(atom.relation),
                                        atom.schema.attrs(), rank);
      ADJ_CHECK(prep.ok());
      prepared.push_back(std::move(prep.value()));
    }
    for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
    auto truth = wcoj::LeapfrogJoin(inputs, order, nullptr, nullptr);
    ADJ_CHECK(truth.ok()) << truth.status();
    const double truth_count = std::max<double>(1.0, double(*truth));

    // Paper sweeps 10^3..10^7 at ~1100x our data scale; we sweep
    // 10^1..10^4 (10^4 already exceeds |val(A)| here, i.e. full
    // convergence; larger budgets only re-sample the same values).
    for (uint64_t k :
         {10ull, 30ull, 100ull, 300ull, 1000ull, 3000ull, 10000ull}) {
      sampling::SamplerOptions opts;
      opts.num_samples = k;
      opts.seed = 17;
      auto est = sampling::SampleCardinality(*q, db, order, opts);
      ADJ_CHECK(est.ok()) << est.status();
      const double e = std::max(1.0, est->cardinality);
      const double d =
          std::max(e, truth_count) / std::min(e, truth_count);
      std::printf("%-6s %10llu %12s %12s %10.3f\n",
                  query::BenchmarkQueryName(qi).c_str(),
                  static_cast<unsigned long long>(k),
                  Num(est->seconds + est->comm.seconds).c_str(),
                  Num(e).c_str(), d);
    }
  }
  std::printf(
      "\nExpected shape (paper): D converges to ~1 beyond ~10^{2-3} samples "
      "at this scale; sampling time flat until the budget dominates.\n");
}

}  // namespace
}  // namespace adj::bench

int main() {
  adj::SetLogLevel(adj::LogLevel::kWarning);
  adj::bench::Run();
  return 0;
}
