// Incremental-update smoke: the same stale-plan refresh done two ways
// on a warmed triangle query — the delta path (a one-tuple WriteBatch
// lands on the relation's chain; Reprepare patches the cached indexes)
// versus the full-invalidate path (Create replaces the relation with
// identical rows under a new identity, forcing every index rebuild).
// Timed: Apply + Reprepare — the write-to-ready latency, which is the
// cost the delta machinery exists to shrink. The rerun after each
// refresh executes the identical join in both paths, so it is asserted
// for correctness but kept out of the ratio. Gates, each a hard
// failure for CI's Release leg:
//
//   1. the point-write refresh is >= 5x faster than the
//      full-invalidate refresh (min over kRounds each, same rows),
//   2. the delta refresh + rerun builds zero indexes — every binding
//      is served by delta-patching the pre-write artifacts
//      (index_patched > 0), while the full refresh demonstrably pays
//      rebuilds (cache build counter advances),
//   3. a write to a relation the prepared query does not read touches
//      zero indexes: the plan stays fresh and the rerun does zero
//      builds and zero delta-row merges.
//
// Emits BENCH_updates.json so the write-path latency trajectory is
// recorded per run. Scale knobs: ADJ_BENCH_SCALE (bench_util.h).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "storage/write_batch.h"

namespace adj::bench {
namespace {

constexpr char kQuery[] = "G(a,b) G(b,c) G(a,c)";
constexpr double kMinSpeedup = 5.0;
constexpr int kRounds = 3;
// Fresh vertex ids, far above any WB node: each probe edge is a
// guaranteed-new tuple that closes no triangle, so the output count is
// invariant across rounds and both refresh paths must agree on it.
constexpr Value kProbeBase = 2'000'000'000;

int Run() {
  // Default above bench_util's 0.2: the >=5x gate needs the full
  // rebuild well clear of timer noise.
  const double scale = ScaleFromEnv(16.0);
  StatusOr<api::Database> opened = api::Database::OpenBuiltin("WB", scale);
  ADJ_CHECK(opened.ok()) << opened.status();
  api::Database db = std::move(opened.value());
  // A bystander relation the query never reads, for gate 3.
  Status h = db.LoadBuiltin("AS", 0.1, "H");
  ADJ_CHECK(h.ok()) << h;

  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 1;
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kQuery);
  ADJ_CHECK(prepared.ok()) << prepared.status();
  api::Result warm = prepared->Run();
  ADJ_CHECK(warm.ok()) << warm.status();

  // Delta path: one probe insert per round, then Apply + Reprepare
  // (timed) and a rerun (asserted). The rebind must resolve every
  // bound-atom index by patching the cached artifacts: the run report
  // must show zero index builds. (The cache-wide build counter is NOT
  // the gate here — at one server the run layer re-derives its shard
  // wrapper as a zero-cost alias of the pinned index under the new
  // relation identity, which registers as a cache entry but does no
  // index work and is deliberately kept out of the report counter.)
  double delta_s = 1e30;
  uint64_t delta_count = 0, delta_patched = 0, delta_rows = 0;
  for (int round = 0; round < kRounds; ++round) {
    const Value v = kProbeBase + Value(2 * round);
    storage::WriteBatch point;
    point.Insert("G", {v, v + 1});

    WallTimer timer;
    Status applied = db.Apply(point);
    ADJ_CHECK(applied.ok()) << applied;
    StatusOr<api::PreparedQuery> refreshed = session.Reprepare(*prepared);
    ADJ_CHECK(refreshed.ok()) << refreshed.status();
    delta_s = std::min(delta_s, timer.Seconds());

    api::Result r = refreshed->Run();
    ADJ_CHECK(r.ok()) << r.status();
    prepared = std::move(refreshed);
    if (r.index_builds() != 0) {
      std::fprintf(stderr, "FAIL: delta rerun built %llu indexes (want 0)\n",
                   static_cast<unsigned long long>(r.index_builds()));
      return 1;
    }
    delta_count = r.count();
    delta_patched = r.index_patched();
    delta_rows = r.delta_rows_merged();
  }

  // Full-invalidate path: replace G with a detached copy of its own
  // merged rows. Same content, new identity — every cached index and
  // the prepared plan go stale, and the refresh pays full rebuilds.
  double full_s = 1e30;
  uint64_t full_count = 0, full_builds = 0;
  for (int round = 0; round < kRounds; ++round) {
    StatusOr<const storage::Relation*> g = db.catalog().Get("G");
    ADJ_CHECK(g.ok()) << g.status();
    storage::Relation copy = **g;
    copy.mutable_raw();  // detach: own the rows, drop payload identity
    storage::WriteBatch replace;
    replace.Create("G", std::move(copy));
    const uint64_t builds = db.catalog().index_cache().stats().builds;

    WallTimer timer;
    Status applied = db.Apply(replace);
    ADJ_CHECK(applied.ok()) << applied;
    StatusOr<api::PreparedQuery> refreshed = session.Reprepare(*prepared);
    ADJ_CHECK(refreshed.ok()) << refreshed.status();
    full_s = std::min(full_s, timer.Seconds());

    api::Result r = refreshed->Run();
    ADJ_CHECK(r.ok()) << r.status();
    prepared = std::move(refreshed);
    full_count = r.count();
    full_builds = db.catalog().index_cache().stats().builds - builds;
  }

  // Gate 3: a write to H must not disturb anything the G plan binds.
  const uint64_t builds_before = db.catalog().index_cache().stats().builds;
  const uint64_t merged_before =
      db.catalog().index_cache().stats().delta_rows_merged;
  storage::WriteBatch bystander;
  bystander.Insert("H", {kProbeBase, kProbeBase + 1});
  Status applied = db.Apply(bystander);
  ADJ_CHECK(applied.ok()) << applied;
  const bool still_fresh = session.IsFresh(*prepared);
  api::Result untouched = prepared->Run();
  ADJ_CHECK(untouched.ok()) << untouched.status();
  const uint64_t untouched_builds =
      db.catalog().index_cache().stats().builds - builds_before;
  const uint64_t untouched_merges =
      db.catalog().index_cache().stats().delta_rows_merged - merged_before;

  const double speedup = delta_s > 0 ? full_s / delta_s : kMinSpeedup * 10;
  std::printf(
      "updates smoke: out=%llu delta=%.4fs (patched=%llu rows=%llu) "
      "full=%.4fs (builds=%llu) speedup=%.1fx "
      "bystander(fresh=%d builds=%llu merges=%llu)\n",
      static_cast<unsigned long long>(delta_count), delta_s,
      static_cast<unsigned long long>(delta_patched),
      static_cast<unsigned long long>(delta_rows), full_s,
      static_cast<unsigned long long>(full_builds), speedup,
      int(still_fresh), static_cast<unsigned long long>(untouched_builds),
      static_cast<unsigned long long>(untouched_merges));

  FILE* json = std::fopen("BENCH_updates.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"updates\",\n"
                 "  \"query\": \"%s\",\n"
                 "  \"dataset\": \"WB\",\n"
                 "  \"scale\": %.4f,\n"
                 "  \"output_count\": %llu,\n"
                 "  \"delta_refresh_seconds\": %.6f,\n"
                 "  \"full_refresh_seconds\": %.6f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"delta_run_index_patched\": %llu,\n"
                 "  \"delta_run_rows_merged\": %llu,\n"
                 "  \"full_run_index_builds\": %llu,\n"
                 "  \"bystander_write_index_builds\": %llu,\n"
                 "  \"bystander_write_rows_merged\": %llu\n"
                 "}\n",
                 kQuery, scale, static_cast<unsigned long long>(delta_count),
                 delta_s, full_s, speedup,
                 static_cast<unsigned long long>(delta_patched),
                 static_cast<unsigned long long>(delta_rows),
                 static_cast<unsigned long long>(full_builds),
                 static_cast<unsigned long long>(untouched_builds),
                 static_cast<unsigned long long>(untouched_merges));
    std::fclose(json);
  }

  int failures = 0;
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: delta refresh speedup %.1fx < %.1fx\n",
                 speedup, kMinSpeedup);
    ++failures;
  }
  if (delta_patched == 0) {
    std::fprintf(stderr, "FAIL: delta rerun reported no patched bindings\n");
    ++failures;
  }
  if (full_builds == 0) {
    std::fprintf(stderr,
                 "FAIL: full-invalidate refresh rebuilt nothing — the "
                 "baseline is not measuring rebuild cost\n");
    ++failures;
  }
  if (full_count != delta_count) {
    std::fprintf(stderr, "FAIL: full count %llu != delta count %llu\n",
                 static_cast<unsigned long long>(full_count),
                 static_cast<unsigned long long>(delta_count));
    ++failures;
  }
  if (!still_fresh) {
    std::fprintf(stderr, "FAIL: write to H staled the plan over G\n");
    ++failures;
  }
  if (untouched_builds != 0 || untouched_merges != 0) {
    std::fprintf(stderr,
                 "FAIL: write to H cost the G rerun %llu builds, "
                 "%llu merged rows (want 0/0)\n",
                 static_cast<unsigned long long>(untouched_builds),
                 static_cast<unsigned long long>(untouched_merges));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adj::bench

int main() { return adj::bench::Run(); }
