// Micro-benchmarks (google-benchmark) for the hot primitives: trie
// build, trie seek, k-way leapfrog intersection, sequential Leapfrog,
// and the HCube shuffle. These are the constants (alpha, beta) the
// cost model of Sec. III-B is calibrated from.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/cluster.h"
#include "storage/catalog.h"
#include "dist/hcube.h"
#include "query/queries.h"
#include "wcoj/leapfrog.h"

namespace adj {
namespace {

storage::Relation MakeGraph(int64_t edges) {
  Rng rng(uint64_t(edges) * 7919);
  return dataset::ZipfGraph(std::max<uint64_t>(64, uint64_t(edges) / 8),
                            uint64_t(edges), 0.8, rng);
}

void BM_TrieBuild(benchmark::State& state) {
  storage::Relation rel = MakeGraph(state.range(0));
  for (auto _ : state) {
    storage::Trie t = storage::Trie::Build(rel);
    benchmark::DoNotOptimize(t.NumTuples());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(rel.size()));
}
BENCHMARK(BM_TrieBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_TrieSeek(benchmark::State& state) {
  storage::Relation rel = MakeGraph(state.range(0));
  storage::Trie trie = storage::Trie::Build(rel);
  Rng rng(3);
  const storage::Trie::Range root = trie.RootRange();
  for (auto _ : state) {
    Value v = Value(rng.Next32() % (root.hi + 1));
    benchmark::DoNotOptimize(trie.SeekInRange(0, root, v));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_TrieSeek)->Arg(1 << 12)->Arg(1 << 17);

void BM_LeapfrogTriangle(benchmark::State& state) {
  storage::Catalog db;
  db.Put("G", MakeGraph(state.range(0)));
  auto q = query::MakeBenchmarkQuery(1);
  query::AttributeOrder order = {0, 1, 2};
  const std::vector<int> rank = query::RankOf(order, 3);
  std::vector<wcoj::PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(*wcoj::PrepareRelation(**db.Get(atom.relation),
                                              atom.schema.attrs(), rank));
  }
  std::vector<wcoj::JoinInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
  uint64_t out = 0;
  for (auto _ : state) {
    wcoj::JoinStats stats;
    auto count = wcoj::LeapfrogJoin(inputs, order, nullptr, &stats);
    out = count.ok() ? *count : 0;
    benchmark::DoNotOptimize(out);
    state.counters["extensions_per_s"] = benchmark::Counter(
        double(stats.extensions), benchmark::Counter::kIsRate);
  }
  state.counters["triangles"] = double(out);
}
BENCHMARK(BM_LeapfrogTriangle)->Arg(1 << 13)->Arg(1 << 15);

void BM_CachedLeapfrogTriangle(benchmark::State& state) {
  storage::Catalog db;
  db.Put("G", MakeGraph(state.range(0)));
  auto q = query::MakeBenchmarkQuery(1);
  query::AttributeOrder order = {0, 1, 2};
  const std::vector<int> rank = query::RankOf(order, 3);
  std::vector<wcoj::PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(*wcoj::PrepareRelation(**db.Get(atom.relation),
                                              atom.schema.attrs(), rank));
  }
  std::vector<wcoj::JoinInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
  for (auto _ : state) {
    wcoj::IntersectionCache cache(1 << 22);
    auto count =
        wcoj::LeapfrogJoin(inputs, order, nullptr, nullptr, {}, {}, &cache);
    benchmark::DoNotOptimize(count.ok() ? *count : 0);
  }
}
BENCHMARK(BM_CachedLeapfrogTriangle)->Arg(1 << 13)->Arg(1 << 15);

void BM_HCubeShuffle(benchmark::State& state) {
  storage::Catalog db;
  db.Put("G", MakeGraph(1 << 15));
  auto q = query::MakeBenchmarkQuery(1);
  query::AttributeOrder order = {0, 1, 2};
  const std::vector<int> rank = query::RankOf(order, 3);
  std::vector<wcoj::PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(*wcoj::PrepareRelation(**db.Get(atom.relation),
                                              atom.schema.attrs(), rank));
  }
  std::vector<dist::HCubeInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.rel, p.attrs});
  const auto variant = static_cast<dist::HCubeVariant>(state.range(0));
  dist::ShareVector share{{2, 2, 1}};
  for (auto _ : state) {
    dist::ClusterConfig cfg;
    cfg.num_servers = 4;
    dist::Cluster cluster(cfg);
    auto result = dist::HCubeShuffle(inputs, share, variant, &cluster);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_HCubeShuffle)
    ->Arg(int(dist::HCubeVariant::kPush))
    ->Arg(int(dist::HCubeVariant::kPull))
    ->Arg(int(dist::HCubeVariant::kMerge));

}  // namespace
}  // namespace adj

BENCHMARK_MAIN();
