#!/usr/bin/env bash
# Checks that every relative markdown link in README.md and docs/
# resolves to an existing file (anchors are stripped; external
# http(s)/mailto links are skipped — no network access). Run from the
# repo root; CI and the `markdown_links` ctest share it.
set -euo pipefail

cd "$(dirname "$0")/.."

FILES=(README.md)
while IFS= read -r f; do FILES+=("$f"); done < <(find docs -name '*.md' 2>/dev/null | sort)

errors=0
for file in "${FILES[@]}"; do
  # Extract the (target) of every [text](target) markdown link.
  # grep exits 1 on zero matches — a file with no links is fine.
  links=$(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\((.*)\)$/\1/' || true)
  while IFS= read -r link; do
    [ -z "$link" ] && continue
    case "$link" in
      http://*|https://*|mailto:*) continue ;;  # external: not fetched
      '#'*) continue ;;                         # same-file anchor
    esac
    target="${link%%#*}"                        # strip anchor
    # Relative to the linking file's directory.
    base="$(dirname "$file")"
    if [ ! -e "$base/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK: $file -> $link" >&2
      errors=$((errors + 1))
    fi
  done <<< "$links"
done

if [ "$errors" -gt 0 ]; then
  echo "$errors broken markdown link(s)" >&2
  exit 1
fi
echo "markdown links OK (${#FILES[@]} file(s) checked)"
