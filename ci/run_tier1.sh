#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite.
# Mirrors the command pinned in ROADMAP.md; CI and local runs share it.
# Environment knobs:
#   CMAKE_BUILD_TYPE  build type (CI runs Debug + Release + sanitizer
#                     legs); unset, CMakeLists.txt's RelWithDebInfo
#                     default applies.
#   SANITIZE          comma-separated sanitizer list passed through as
#                     -DADJ_SANITIZE (e.g. "address,undefined" or
#                     "thread" — TSan is incompatible with ASan, so it
#                     gets its own leg).
#   BUILD_TARGETS     space-separated cmake targets to build instead of
#                     everything (the TSan leg builds only the
#                     concurrency-heavy serve/dist targets).
#   CTEST_FILTER      regex passed to ctest -R to run a subset.
#   BUILD_DIR, JOBS   build directory and parallelism.
# ccache is picked up automatically when installed (CI caches it).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${CMAKE_BUILD_TYPE:-}"
SANITIZE="${SANITIZE:-}"
BUILD_TARGETS="${BUILD_TARGETS:-}"
CTEST_FILTER="${CTEST_FILTER:-}"

LAUNCHER=""
if command -v ccache > /dev/null 2>&1; then
  LAUNCHER=ccache
fi

# ADJ_SANITIZE is passed unconditionally (empty included) so a reused
# build dir cannot keep a stale cached sanitizer setting.
cmake -B "${BUILD_DIR}" -S . \
  ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="${BUILD_TYPE}"} \
  -DADJ_SANITIZE="${SANITIZE}" \
  ${LAUNCHER:+-DCMAKE_CXX_COMPILER_LAUNCHER="${LAUNCHER}"}
# shellcheck disable=SC2086  # BUILD_TARGETS is a deliberate word list
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  ${BUILD_TARGETS:+--target ${BUILD_TARGETS}}
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
  ${CTEST_FILTER:+-R "${CTEST_FILTER}"}
