#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite.
# Mirrors the command pinned in ROADMAP.md; CI and local runs share it.
# CMAKE_BUILD_TYPE overrides the build type (CI runs Debug + Release);
# unset, CMakeLists.txt's RelWithDebInfo default applies.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${CMAKE_BUILD_TYPE:-}"

cmake -B "${BUILD_DIR}" -S . \
  ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="${BUILD_TYPE}"}
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
