#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite.
# Mirrors the command pinned in ROADMAP.md; CI and local runs share it.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
