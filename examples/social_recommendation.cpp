// Social-network link analysis: finds "diamond" friend-of-friend
// structures used as discriminative features for recommendation (the
// statistical-relational-learning use case the paper's introduction
// cites). Demonstrates the planning API: inspecting the GHD, the
// chosen traversal, the pre-computed candidate relations, and the
// estimated cost breakdown before executing.
//
//   $ ./build/examples/social_recommendation
#include <cstdio>

#include "core/engine.h"
#include "dataset/generators.h"
#include "ghd/decomposition.h"
#include "query/query.h"

int main() {
  using namespace adj;

  // A skewed "who-follows-whom" graph.
  Rng rng(7);
  storage::Catalog db;
  db.Put("Follows", dataset::ZipfGraph(4000, 40000, 0.85, rng));

  // Diamond pattern with a chord: users a,b,c,d where a follows b and
  // c, both follow d, and b also follows c — a strong triadic-closure
  // feature for recommending d to a.
  StatusOr<query::Query> q = query::Query::Parse(
      "Follows(a,b) Follows(a,c) Follows(b,d) Follows(c,d) Follows(b,c)");
  if (!q.ok()) return 1;
  std::printf("pattern: %s\n\n", q->ToString().c_str());

  // Inspect the hypertree decomposition driving the plan.
  StatusOr<ghd::Decomposition> decomp = ghd::FindOptimalGhd(*q);
  if (!decomp.ok()) return 1;
  std::printf("optimal GHD: %s\n", decomp->ToString(*q).c_str());

  core::Engine engine(&db);
  core::EngineOptions options;
  options.cluster.num_servers = 7;
  options.num_samples = 1000;

  // Planning only: what would ADJ pre-compute, and at what cost?
  StatusOr<core::PlanResult> planned = engine.Plan(*q, options);
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", planned->explanation.c_str());
  std::printf("planning took %.3fs (incl. sampling)\n\n",
              planned->optimize_s);

  // Execute and compare against the communication-first baseline.
  for (core::Strategy s :
       {core::Strategy::kCoOpt, core::Strategy::kCommFirst}) {
    StatusOr<exec::RunReport> r = engine.Run(*q, s, options);
    if (!r.ok()) return 1;
    std::printf("%s\n", r->ToString().c_str());
  }
  return 0;
}
