// Social-network link analysis: finds "diamond" friend-of-friend
// structures used as discriminative features for recommendation (the
// statistical-relational-learning use case the paper's introduction
// cites). Demonstrates the prepared-query API: inspect the plan — the
// GHD, the chosen traversal, the pre-computed candidate relations, and
// the estimated cost breakdown — before paying for execution, then
// execute the cached plan.
//
//   $ ./build/examples/social_recommendation
#include <cstdio>

#include "api/api.h"
#include "dataset/generators.h"

int main() {
  using namespace adj;

  // A skewed "who-follows-whom" graph.
  Rng rng(7);
  api::Database db;
  db.AddRelation("Follows", dataset::ZipfGraph(4000, 40000, 0.85, rng));

  // Diamond pattern with a chord: users a,b,c,d where a follows b and
  // c, both follow d, and b also follows c — a strong triadic-closure
  // feature for recommending d to a.
  const char* kPattern =
      "Follows(a,b) Follows(a,c) Follows(b,d) Follows(c,d) Follows(b,c)";

  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 7;
  session.options().num_samples = 1000;

  // Planning only: what would ADJ pre-compute, and at what cost?
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kPattern);
  if (!prepared.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("pattern: %s\n\n", prepared->query().ToString().c_str());
  std::printf("%s", prepared->explanation().c_str());
  std::printf("planning took %.3fs (incl. sampling)\n\n",
              prepared->planning_seconds());

  // Execute the cached plan, then compare against the
  // communication-first baseline.
  api::Result adj_run = prepared->Run();
  if (!adj_run.ok()) {
    std::fprintf(stderr, "ADJ run failed: %s\n",
                 adj_run.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", adj_run.report().ToString().c_str());

  api::Result comm_first = session.Run(kPattern, "HCubeJ");
  if (!comm_first.ok()) {
    std::fprintf(stderr, "HCubeJ run failed: %s\n",
                 comm_first.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", comm_first.report().ToString().c_str());
  return 0;
}
