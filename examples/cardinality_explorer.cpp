// Cardinality-estimation explorer: contrasts the paper's
// sampling-based estimator (Sec. IV) with a classic sketch estimator
// on progressively more cyclic queries, reporting the accuracy metric
// D = max(est, truth) / min(est, truth) and the Chernoff–Hoeffding
// sample-size bound of Lemma 2.
//
//   $ ./build/examples/cardinality_explorer
#include <algorithm>
#include <cstdio>

#include "dataset/generators.h"
#include "query/query.h"
#include "sampling/sampler.h"
#include "sampling/sketch_estimator.h"
#include "wcoj/naive_join.h"

namespace {

double DMetric(double est, double truth) {
  est = std::max(est, 1.0);
  truth = std::max(truth, 1.0);
  return std::max(est, truth) / std::min(est, truth);
}

}  // namespace

int main() {
  using namespace adj;

  Rng rng(99);
  storage::Catalog db;
  storage::WriteBatch setup;
  setup.Create("G", dataset::ZipfGraph(1500, 20000, 0.9, rng));
  if (!db.Apply(setup).ok()) return 1;

  const char* queries[] = {
      "G(a,b) G(b,c)",                         // path (easy)
      "G(a,b) G(b,c) G(a,c)",                  // triangle (cyclic)
      "G(a,b) G(b,c) G(c,d) G(d,a)",           // 4-cycle
      "G(a,b) G(b,c) G(c,d) G(d,a) G(a,c) G(b,d)",  // 4-clique
  };

  std::printf("Chernoff-Hoeffding (Lemma 2): p=0.05, delta=0.05 needs k=%llu "
              "samples\n\n",
              static_cast<unsigned long long>(
                  sampling::ChernoffSampleCount(0.05, 0.05)));
  std::printf("%-42s %12s %10s %10s\n", "query", "true |T|", "D(sample)",
              "D(sketch)");
  for (const char* text : queries) {
    StatusOr<query::Query> q = query::Query::Parse(text);
    if (!q.ok()) return 1;
    StatusOr<storage::Relation> truth = wcoj::NaiveJoin(*q, db);
    if (!truth.ok()) return 1;

    // Sampling estimate under the ascending order.
    query::AttributeOrder order;
    for (int a = 0; a < q->num_attrs(); ++a) order.push_back(a);
    sampling::SamplerOptions opts;
    opts.num_samples = 2000;
    StatusOr<sampling::SampleEstimate> sample =
        sampling::SampleCardinality(*q, db, order, opts);
    if (!sample.ok()) return 1;

    // Sketch estimate.
    StatusOr<sampling::SketchEstimator> sketch =
        sampling::SketchEstimator::Build(*q, db);
    if (!sketch.ok()) return 1;
    const AtomMask all = (AtomMask(1) << q->num_atoms()) - 1;

    std::printf("%-42s %12llu %10.2f %10.2f\n", text,
                static_cast<unsigned long long>(truth->size()),
                DMetric(sample->cardinality, double(truth->size())),
                DMetric(sketch->EstimateJoin(all), double(truth->size())));
  }
  std::printf("\nTakeaway (Sec. IV): sampling stays near D=1 while the "
              "sketch drifts by orders of magnitude as cycles appear.\n");
  return 0;
}
