// Triangle census: the classic subgraph-analytics workload the
// paper's introduction motivates. Counts directed triangles on every
// builtin dataset, compares all five execution strategies, and prints
// per-strategy cost breakdowns — a miniature Fig. 12(a).
//
//   $ ./build/examples/triangle_census [scale]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "dataset/builtin.h"
#include "query/queries.h"

int main(int argc, char** argv) {
  using namespace adj;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  StatusOr<query::Query> q = query::MakeBenchmarkQuery(1);  // triangle
  if (!q.ok()) return 1;

  std::printf("%-5s %12s | %-12s %10s %10s %10s\n", "data", "triangles",
              "method", "comm(s)", "comp(s)", "total(s)");
  for (const dataset::BuiltinSpec& spec : dataset::BuiltinSpecs()) {
    StatusOr<storage::Relation> rel = dataset::MakeBuiltin(spec.name, scale);
    if (!rel.ok()) continue;
    storage::Catalog db;
    db.Put("G", std::move(rel.value()));
    core::Engine engine(&db);
    core::EngineOptions options;
    options.cluster.num_servers = 4;
    options.num_samples = 200;
    options.limits.max_seconds = 60;

    bool first = true;
    for (core::Strategy s :
         {core::Strategy::kCoOpt, core::Strategy::kCommFirst,
          core::Strategy::kCachedCommFirst, core::Strategy::kBinaryJoin,
          core::Strategy::kBigJoin}) {
      StatusOr<exec::RunReport> r = engine.Run(*q, s, options);
      if (!r.ok() || !r->ok()) {
        std::printf("%-5s %12s | %-12s %10s\n",
                    first ? spec.name.c_str() : "", "", core::StrategyName(s),
                    "FAIL");
        first = false;
        continue;
      }
      char count_cell[24] = "";
      if (first) {
        std::snprintf(count_cell, sizeof(count_cell), "%llu",
                      static_cast<unsigned long long>(r->output_count));
      }
      std::printf("%-5s %12s | %-12s %10.3f %10.3f %10.3f\n",
                  first ? spec.name.c_str() : "", count_cell,
                  core::StrategyName(s), r->comm_s, r->comp_s,
                  r->TotalSeconds());
      first = false;
    }
  }
  return 0;
}
