// Triangle census: the classic subgraph-analytics workload the
// paper's introduction motivates. Counts directed triangles on every
// builtin dataset, compares all five execution strategies through the
// session facade, and prints per-strategy cost breakdowns — a
// miniature Fig. 12(a).
//
//   $ ./build/examples/triangle_census [scale]
#include <cstdio>
#include <cstdlib>

#include "api/api.h"
#include "dataset/builtin.h"
#include "query/queries.h"

int main(int argc, char** argv) {
  using namespace adj;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  StatusOr<query::Query> q = query::MakeBenchmarkQuery(1);  // triangle
  if (!q.ok()) {
    std::fprintf(stderr, "query error: %s\n", q.status().ToString().c_str());
    return 1;
  }

  std::printf("%-5s %12s | %-12s %10s %10s %10s\n", "data", "triangles",
              "method", "comm(s)", "comp(s)", "total(s)");
  for (const dataset::BuiltinSpec& spec : dataset::BuiltinSpecs()) {
    StatusOr<api::Database> db = api::Database::OpenBuiltin(spec.name, scale);
    if (!db.ok()) {
      std::fprintf(stderr, "dataset %s: %s\n", spec.name.c_str(),
                   db.status().ToString().c_str());
      continue;
    }
    api::Session session = db->OpenSession();
    session.options().cluster.num_servers = 4;
    session.options().num_samples = 200;
    session.options().limits.max_seconds = 60;

    bool name_printed = false, count_printed = false;
    for (core::Strategy s : core::AllStrategies()) {
      api::Result r = session.Run(*q, core::StrategyName(s));
      const char* name_cell = name_printed ? "" : spec.name.c_str();
      name_printed = true;
      if (!r.ok()) {
        std::printf("%-5s %12s | %-12s %10s\n", name_cell, "",
                    core::StrategyName(s), "FAIL");
        continue;
      }
      char count_cell[24] = "";
      if (!count_printed) {
        std::snprintf(count_cell, sizeof(count_cell), "%llu",
                      static_cast<unsigned long long>(r.count()));
        count_printed = true;
      }
      std::printf("%-5s %12s | %-12s %10.3f %10.3f %10.3f\n", name_cell,
                  count_cell, core::StrategyName(s), r.communication_seconds(),
                  r.computation_seconds(), r.total_seconds());
    }
  }
  return 0;
}
