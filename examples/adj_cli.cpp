// adj_cli: run an arbitrary (SPJ) join query from the command line,
// against a real SNAP edge list or a synthetic graph.
//
//   adj_cli [options] "G(a,b) G(b,c) G(a,c) | a=5 | b,c"
//     --graph PATH      load a SNAP edge list as relation G
//     --dataset NAME    use a builtin stand-in (WB/AS/WT/LJ/EN/OK)
//     --scale S         builtin dataset scale (default 0.2)
//     --load PATH       open a snapshot (relations + warm indexes)
//                       instead of loading a dataset
//     --save PATH       after the query runs, snapshot the catalog —
//                       including the indexes the query just warmed —
//                       so the next `adj_cli --load PATH` starts warm
//     --insert R:a,b    queue a tuple insert into relation R; repeat
//                       freely — all queued writes are applied as ONE
//                       atomic storage::WriteBatch before the query,
//                       extending R's delta chain (cached/mapped
//                       indexes are delta-patched, not rebuilt)
//     --remove R:a,b    queue a tombstone, same batch semantics
//     --servers N       simulated servers (default 4)
//     --strategy NAME   any registered strategy (default ADJ); the cli
//                       itself registers "Yannakakis" at startup to
//                       demonstrate the open StrategyRegistry
//     --explain         print ADJ's plan (hypertree, traversal, costs)
//
// Examples:
//   adj_cli "G(a,b) G(b,c) G(a,c)"
//   adj_cli --dataset LJ --strategy HCubeJ "G(a,b) G(b,c) G(c,a)"
//   adj_cli --strategy Yannakakis "G(a,b) G(b,c) G(a,c)"
//   adj_cli --graph my.txt "G(a,b) G(b,c) | a=7 | c"
#include <cstdio>
#include <cstdlib>
#include <vector>
#include <cstring>
#include <string>

#include "api/api.h"
#include "common/timer.h"
#include "core/spj.h"
#include "core/strategy_registry.h"
#include "dataset/builtin.h"
#include "exec/yannakakis.h"

namespace {

// A strategy the core library does not know about, plugged in at
// startup: Yannakakis' acyclic-query evaluator as a single-server
// oracle run. Selectable via --strategy Yannakakis like the builtin
// five — no core::Strategy change involved.
adj::Status RegisterYannakakisStrategy() {
  using namespace adj;
  return core::StrategyRegistry::Global().Register(
      "Yannakakis",
      [](core::Engine& engine, const query::Query& q,
         const core::EngineOptions& options) -> StatusOr<exec::RunReport> {
        WallTimer timer;
        exec::YannakakisStats stats;
        StatusOr<storage::Relation> joined = exec::YannakakisJoinAuto(
            q, engine.db(), &stats, options.limits.max_materialized_rows);
        exec::RunReport report;
        report.method = "Yannakakis";
        if (!joined.ok()) {
          report.status = joined.status();
          return report;
        }
        report.output_count = joined->size();
        report.comp_s = timer.Seconds();
        report.extensions = stats.intermediate_tuples;
        return report;
      });
}

std::string KnownStrategies() {
  std::string out;
  for (const std::string& name :
       adj::core::StrategyRegistry::Global().Names()) {
    if (!out.empty()) out += " | ";
    out += name;
  }
  return out;
}

// Parses "R:v1,v2,..." (as taken by --insert / --remove) into a
// relation name and tuple. Returns false on malformed specs.
bool ParseTupleSpec(const std::string& spec, std::string* relation,
                    std::vector<adj::Value>* tuple) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  *relation = spec.substr(0, colon);
  tuple->clear();
  size_t pos = colon + 1;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma == pos) return false;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(spec.c_str() + pos, &end, 10);
    if (end != spec.c_str() + comma) return false;
    tuple->push_back(static_cast<adj::Value>(v));
    pos = comma + 1;
  }
  return !tuple->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adj;
  Status registered = RegisterYannakakisStrategy();
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 2;
  }

  std::string graph_path, dataset_name = "AS", query_text;
  std::string load_path, save_path;
  std::string strategy = "ADJ";
  double scale = 0.2;
  int servers = 4;
  bool explain = false;
  storage::WriteBatch writes;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--graph") {
      graph_path = next();
    } else if (arg == "--insert" || arg == "--remove") {
      std::string relation;
      std::vector<Value> tuple;
      if (!ParseTupleSpec(next(), &relation, &tuple)) {
        std::fprintf(stderr, "%s expects R:v1,v2,...\n", arg.c_str());
        return 2;
      }
      if (arg == "--insert") {
        writes.Insert(std::move(relation), std::move(tuple));
      } else {
        writes.Delete(std::move(relation), std::move(tuple));
      }
    } else if (arg == "--load") {
      load_path = next();
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--dataset") {
      dataset_name = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--servers") {
      servers = std::atoi(next());
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--strategy") {
      strategy = next();
      if (!core::StrategyRegistry::Global().Contains(strategy)) {
        std::fprintf(stderr, "unknown strategy: %s (known: %s)\n",
                     strategy.c_str(), KnownStrategies().c_str());
        return 2;
      }
    } else {
      query_text = arg;
    }
  }
  if (query_text.empty()) {
    std::fprintf(stderr,
                 "usage: adj_cli [options] \"G(a,b) G(b,c) ...\"\n"
                 "  --strategy %s\n",
                 KnownStrategies().c_str());
    return 2;
  }

  StatusOr<core::SpjQuery> spj = core::ParseSpj(query_text);
  if (!spj.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spj.status().ToString().c_str());
    return 2;
  }

  api::Database db;
  if (!load_path.empty()) {
    Status opened = db.Open(load_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "snapshot error: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    std::printf("opened snapshot %s: %llu tuples, warm indexes mapped\n",
                load_path.c_str(),
                static_cast<unsigned long long>(db.total_tuples()));
  } else if (!graph_path.empty()) {
    Status loaded = db.LoadEdgeList(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load error: %s\n", loaded.ToString().c_str());
      return 1;
    }
    std::printf("loaded %llu edges from %s\n",
                static_cast<unsigned long long>(db.total_tuples()),
                graph_path.c_str());
  } else {
    Status loaded = db.LoadBuiltin(dataset_name, scale);
    if (!loaded.ok()) {
      std::fprintf(stderr, "dataset error: %s\n", loaded.ToString().c_str());
      return 1;
    }
    // LoadBuiltin just registered "G", so the lookup cannot fail; the
    // guard only keeps the deref honest.
    StatusOr<const storage::Relation*> g = db.catalog().Get("G");
    if (g.ok()) {
      std::printf("%s\n",
                  dataset::DescribeDataset(dataset_name, **g).c_str());
    }
  }

  if (!writes.empty()) {
    // One atomic batch: a validation failure (unknown relation, arity
    // mismatch) applies nothing. Tuple writes extend the targets'
    // delta chains; snapshot-mapped bases stay mapped.
    const size_t ops = writes.size();
    Status applied = db.Apply(writes);
    if (!applied.ok()) {
      std::fprintf(stderr, "write error: %s\n", applied.ToString().c_str());
      return 1;
    }
    std::printf("applied %llu write op(s)",
                static_cast<unsigned long long>(ops));
    for (const std::string& name : writes.TouchedNames()) {
      std::printf("  %s@v%llu", name.c_str(),
                  static_cast<unsigned long long>(db.relation_version(name)));
    }
    std::printf("\n");
  }

  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = servers;
  session.options().num_samples = 500;
  session.set_default_strategy(strategy);

  std::printf("query: %s\nstrategy: %s, servers: %d\n\n",
              spj->ToString().c_str(), strategy.c_str(), servers);
  api::Result result;
  bool ran = false;
  if (explain) {
    StatusOr<api::PreparedQuery> prepared = session.Prepare(query_text);
    if (prepared.ok()) {
      std::printf("%s\n", prepared->explanation().c_str());
      if (strategy == "ADJ") {
        // The explained plan is the one ADJ would run — execute it
        // instead of planning the same query a second time.
        result = prepared->Run();
        ran = true;
      }
    } else {
      // Projecting queries can't be prepared; explain the join body
      // directly instead.
      core::Engine engine(&db.catalog());
      StatusOr<core::PlanResult> planned =
          engine.Plan(spj->join, session.options());
      if (planned.ok()) {
        std::printf("%s\n", planned->explanation.c_str());
      } else {
        std::printf("explain unavailable: %s\n",
                    planned.status().ToString().c_str());
      }
    }
  }
  if (!ran) result = session.Run(query_text);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result.report().ToString().c_str());
  if (!result.report().plan_description.empty()) {
    std::printf("plan: %s\n", result.report().plan_description.c_str());
  }
  std::printf("result count: %llu",
              static_cast<unsigned long long>(result.count()));
  if (spj->projection != 0) std::printf(" (distinct projected)");
  if (result.selection_filtered() > 0) {
    std::printf("  [selection push-down removed %llu tuples]",
                static_cast<unsigned long long>(result.selection_filtered()));
  }
  if (result.index_mmap_loaded() > 0) {
    std::printf("  [%llu bindings served by snapshot-mapped indexes]",
                static_cast<unsigned long long>(result.index_mmap_loaded()));
  }
  if (result.index_patched() > 0) {
    std::printf("  [%llu bindings delta-patched, %llu delta rows merged]",
                static_cast<unsigned long long>(result.index_patched()),
                static_cast<unsigned long long>(result.delta_rows_merged()));
  }
  std::printf("\n");
  if (!save_path.empty()) {
    // Saved after the run on purpose: the snapshot carries the index
    // artifacts this query just built, so reopening starts warm.
    Status saved = db.Save(save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save error: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("saved snapshot to %s\n", save_path.c_str());
  }
  return 0;
}
