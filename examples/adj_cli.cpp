// adj_cli: run an arbitrary (SPJ) join query from the command line,
// against a real SNAP edge list or a synthetic graph.
//
//   adj_cli [options] "G(a,b) G(b,c) G(a,c) | a=5 | b,c"
//     --graph PATH      load a SNAP edge list as relation G
//     --dataset NAME    use a builtin stand-in (WB/AS/WT/LJ/EN/OK)
//     --scale S         builtin dataset scale (default 0.2)
//     --servers N       simulated servers (default 4)
//     --strategy NAME   ADJ | HCubeJ | HCubeJ+Cache | SparkSQL | BigJoin
//     --explain         print ADJ's plan (hypertree, traversal, costs)
//
// Examples:
//   adj_cli "G(a,b) G(b,c) G(a,c)"
//   adj_cli --dataset LJ --strategy HCubeJ "G(a,b) G(b,c) G(c,a)"
//   adj_cli --graph my.txt "G(a,b) G(b,c) | a=7 | c"
#include <cstdio>
#include <cstring>
#include <string>

#include "core/spj.h"
#include "dataset/builtin.h"
#include "storage/edge_list_io.h"

namespace {

adj::StatusOr<adj::core::Strategy> ParseStrategy(const std::string& name) {
  using adj::core::Strategy;
  if (name == "ADJ") return Strategy::kCoOpt;
  if (name == "HCubeJ") return Strategy::kCommFirst;
  if (name == "HCubeJ+Cache") return Strategy::kCachedCommFirst;
  if (name == "SparkSQL") return Strategy::kBinaryJoin;
  if (name == "BigJoin") return Strategy::kBigJoin;
  return adj::Status::InvalidArgument("unknown strategy: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adj;
  std::string graph_path, dataset_name = "AS", query_text;
  double scale = 0.2;
  int servers = 4;
  bool explain = false;
  core::Strategy strategy = core::Strategy::kCoOpt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--graph") {
      graph_path = next();
    } else if (arg == "--dataset") {
      dataset_name = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--servers") {
      servers = std::atoi(next());
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--strategy") {
      StatusOr<core::Strategy> s = ParseStrategy(next());
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
        return 2;
      }
      strategy = *s;
    } else {
      query_text = arg;
    }
  }
  if (query_text.empty()) {
    std::fprintf(stderr, "usage: adj_cli [options] \"G(a,b) G(b,c) ...\"\n");
    return 2;
  }

  StatusOr<core::SpjQuery> spj = core::ParseSpj(query_text);
  if (!spj.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spj.status().ToString().c_str());
    return 2;
  }

  storage::Catalog db;
  if (!graph_path.empty()) {
    StatusOr<storage::Relation> g = storage::LoadEdgeList(graph_path);
    if (!g.ok()) {
      std::fprintf(stderr, "load error: %s\n", g.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %llu edges from %s\n",
                static_cast<unsigned long long>(g->size()),
                graph_path.c_str());
    db.Put("G", std::move(g.value()));
  } else {
    StatusOr<storage::Relation> g =
        dataset::MakeBuiltin(dataset_name, scale);
    if (!g.ok()) {
      std::fprintf(stderr, "dataset error: %s\n",
                   g.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                dataset::DescribeDataset(dataset_name, *g).c_str());
    db.Put("G", std::move(g.value()));
  }

  core::EngineOptions options;
  options.cluster.num_servers = servers;
  options.num_samples = 500;

  std::printf("query: %s\nstrategy: %s, servers: %d\n\n",
              spj->ToString().c_str(), core::StrategyName(strategy),
              servers);
  if (explain) {
    core::Engine engine(&db);
    StatusOr<core::PlanResult> planned = engine.Plan(spj->join, options);
    if (planned.ok()) {
      std::printf("%s\n", planned->explanation.c_str());
    } else {
      std::printf("explain unavailable: %s\n",
                  planned.status().ToString().c_str());
    }
  }
  StatusOr<core::SpjResult> result = core::RunSpj(db, *spj, strategy,
                                                  options);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->report.ToString().c_str());
  if (!result->report.plan_description.empty()) {
    std::printf("plan: %s\n", result->report.plan_description.c_str());
  }
  std::printf("result count: %llu",
              static_cast<unsigned long long>(result->projected_count));
  if (spj->projection != 0) std::printf(" (distinct projected)");
  if (result->pushed_down_filtered > 0) {
    std::printf("  [selection push-down removed %llu tuples]",
                static_cast<unsigned long long>(
                    result->pushed_down_filtered));
  }
  std::printf("\n");
  return result->report.ok() ? 0 : 1;
}
