// serve_demo: the async serving layer end-to-end — one serve::Server
// owning one database, driven through every serving behavior:
//
//   1. cache miss → hit (the second request for a query text reports
//      optimize_s = precompute_s = 0),
//   2. batch + single admission interleaving on the worker pool,
//   3. a live write through Server::Apply → the touched relation's
//      version bumps → the cached plan over it is refreshed in place
//      (Reprepare, no re-planning, no stale results),
//   4. a deadline too tight to meet → DeadlineExceeded,
//   5. an admission queue at capacity → ResourceExhausted backpressure.
//
// The transcript this prints is the one docs/SERVING.md walks through.
//
//   $ ./build/examples/serve_demo
#include <cstdio>
#include <utility>
#include <vector>

#include "dataset/generators.h"
#include "serve/serve.h"

using namespace adj;

namespace {

void Show(const char* tag, const api::Result& r) {
  std::printf("  [%s] %s\n", tag, r.ToString().c_str());
}

}  // namespace

int main() {
  // A database: one synthetic scale-free edge relation "G".
  Rng rng(2024);
  api::Database db;
  dataset::RmatParams params;
  params.scale = 11;
  db.AddRelation("G", dataset::Rmat(params, 12000, rng));

  serve::ServerOptions options;
  options.worker_threads = 4;
  options.queue_capacity = 8;
  options.cache_capacity = 4;
  options.engine.cluster.num_servers = 4;
  options.engine.num_samples = 300;
  serve::Server server(std::move(db), options);

  const char* kTriangle = "G(a,b) G(b,c) G(a,c)";
  const char* kPath = "G(a,b) G(b,c)";

  // 1. Plan-once/execute-many: request #1 misses the cache and pays
  //    planning + pre-computation; request #2 — note the extra
  //    whitespace, normalization maps it to the same key — hits and
  //    reports opt = pre = 0.
  std::printf("-- cache miss, then hit --\n");
  Show("miss", server.Execute(kTriangle));
  Show("hit ", server.Execute("G(a,b)  G(b,c)   G(a,c)"));

  // 2. Concurrent admission: a batch plus singles, interleaved fairly
  //    on the worker pool; futures align with the submitted order.
  std::printf("-- batch + single admission --\n");
  auto batch = server.SubmitBatch({kPath, kTriangle, kPath});
  auto single = server.Submit(kTriangle);
  if (!batch.ok() || !single.ok()) {
    std::fprintf(stderr, "admission failed unexpectedly\n");
    return 1;
  }
  for (auto& f : *batch) Show("batch", f.get());
  Show("single", single->get());

  // 3. Live writes: Server::Apply needs no Pause/Drain — a
  //    reader/writer lock serializes the batch against in-flight
  //    requests. Replacing "G" bumps its per-relation version, so the
  //    cached triangle plan over it is refreshed rather than served
  //    stale — the count reflects the new graph — while plans over
  //    untouched relations would keep hitting.
  std::printf("-- live write invalidates exactly the touched plans --\n");
  Rng rng2(7);
  storage::WriteBatch reload;
  reload.Create("G", dataset::Rmat(params, 9000, rng2));
  if (!server.Apply(reload).ok()) {
    std::fprintf(stderr, "write failed unexpectedly\n");
    return 1;
  }
  api::Result fresh = server.Execute(kTriangle);
  Show("fresh", fresh);
  serve::ServerStats stats = server.stats();
  std::printf(
      "  cache: %llu hits, %llu misses, %llu invalidations; "
      "%llu writes applied\n",
      (unsigned long long)stats.cache.hits,
      (unsigned long long)stats.cache.misses,
      (unsigned long long)stats.cache.invalidations,
      (unsigned long long)stats.writes_applied);

  // 4. Deadlines: a budget no join can meet — the request completes
  //    with DeadlineExceeded (a per-request wcoj::JoinLimits cap), a
  //    distinct error from backpressure.
  std::printf("-- deadline exceeded --\n");
  api::Result late =
      server.Execute("G(a,b) G(b,c) G(c,d) G(d,a)", {.deadline_seconds = 1e-9});
  Show("late", late);

  // 5. Backpressure: pause dequeuing, fill the admission queue, and
  //    watch the next submit bounce with ResourceExhausted.
  std::printf("-- queue-full backpressure --\n");
  server.Pause();
  std::vector<std::future<api::Result>> queued;
  while (true) {
    auto f = server.Submit(kPath);
    if (!f.ok()) {
      std::printf("  rejected after %zu queued: %s\n", queued.size(),
                  f.status().ToString().c_str());
      break;
    }
    queued.push_back(std::move(f.value()));
  }
  server.Resume();
  for (auto& f : queued) f.get();  // all admitted requests complete

  // 6. Warm restart: snapshot the serving database — relations plus
  //    the index artifacts the queries above built — then stand up a
  //    second server over the reopened file. Its first answer binds
  //    snapshot-mapped indexes instead of rebuilding them, and the
  //    result reports that provenance.
  std::printf("-- warm restart from snapshot --\n");
  server.Drain();
  const char* kSnap = "serve_demo.adjsnap";
  Status saved = server.database().Save(kSnap);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  api::Database reopened;
  Status opened = reopened.Open(kSnap);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.ToString().c_str());
    return 1;
  }
  serve::Server restarted(std::move(reopened), options);
  api::Result warm = restarted.Execute(kTriangle);
  Show("warm", warm);
  std::printf("  %llu bindings served by snapshot-mapped indexes\n",
              (unsigned long long)warm.index_mmap_loaded());
  std::remove(kSnap);

  stats = server.stats();
  std::printf(
      "-- totals: accepted=%llu rejected=%llu served=%llu failed=%llu --\n",
      (unsigned long long)stats.accepted, (unsigned long long)stats.rejected,
      (unsigned long long)stats.served, (unsigned long long)stats.failed);

  // The demo asserts its own invariants so CI can run it as a smoke
  // test: a rejection occurred, the deadline tripped, the cache hit.
  if (stats.rejected == 0 || stats.cache.hits == 0 ||
      stats.cache.invalidations == 0 ||
      late.status().code() != StatusCode::kDeadlineExceeded) {
    std::fprintf(stderr, "serving invariants not met\n");
    return 1;
  }
  // And the warm-restart ones: same answer as the live server, with
  // the indexes demonstrably coming from the snapshot.
  if (!warm.ok() || warm.count() != fresh.count() ||
      warm.index_mmap_loaded() == 0) {
    std::fprintf(stderr, "warm-restart invariants not met\n");
    return 1;
  }
  return 0;
}
