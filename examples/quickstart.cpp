// Quickstart: open a database, open a session, and serve queries —
// the minimal end-to-end use of the public api:: facade.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "api/api.h"
#include "dataset/generators.h"

int main() {
  using namespace adj;

  // 1. A database: one edge relation "G" (a synthetic scale-free
  //    graph; Database::LoadEdgeList plugs in real SNAP data).
  Rng rng(2024);
  api::Database db;
  dataset::RmatParams params;
  params.scale = 12;
  db.AddRelation("G", dataset::Rmat(params, 30000, rng));

  // 2. A session over a simulated 4-server cluster. Options are
  //    per-session — each client tunes its own cluster and budgets.
  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 4;
  session.options().num_samples = 500;

  // 3. The paper's Q5 — a 5-cycle with two chords — under ADJ
  //    co-optimization and the communication-first baseline, selected
  //    by strategy name.
  const char* kQ5 = "G(a,b) G(b,c) G(c,d) G(d,e) G(e,a) G(b,e) G(b,d)";
  std::printf("query: %s\n", kQ5);
  for (const char* strategy : {"ADJ", "HCubeJ"}) {
    api::Result r = session.Run(kQ5, strategy);
    if (!r.ok()) {
      std::fprintf(stderr, "run error (%s): %s\n", strategy,
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", r.ToString().c_str());
  }

  // 4. The serving pattern: plan once, execute many times. The second
  //    run reuses the cached plan, so its optimize cost is zero.
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kQ5);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare error: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  for (int run = 1; run <= 2; ++run) {
    api::Result r = prepared->Run();
    if (!r.ok()) {
      std::fprintf(stderr, "prepared run error: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("prepared run %d: count=%llu opt=%.3fs total=%.3fs\n", run,
                static_cast<unsigned long long>(r.count()),
                r.optimize_seconds(), r.total_seconds());
  }
  return 0;
}
