// Quickstart: load a graph, declare a cyclic join query, and run it
// with ADJ's co-optimizing engine — the minimal end-to-end use of the
// public API.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "dataset/generators.h"
#include "query/query.h"

int main() {
  using namespace adj;

  // 1. A database: one edge relation "G" (a synthetic scale-free
  //    graph; swap in your own storage::Relation to use real data).
  Rng rng(2024);
  storage::Catalog db;
  dataset::RmatParams params;
  params.scale = 12;
  db.Put("G", dataset::Rmat(params, 30000, rng));

  // 2. A query: the paper's Q5 — a 5-cycle with two chords, written
  //    exactly as in the paper.
  StatusOr<query::Query> q = query::Query::Parse(
      "G(a,b) G(b,c) G(c,d) G(d,e) G(e,a) G(b,e) G(b,d)");
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", q->ToString().c_str());

  // 3. An engine over a simulated 4-server cluster.
  core::Engine engine(&db);
  core::EngineOptions options;
  options.cluster.num_servers = 4;
  options.num_samples = 500;

  // 4. Run with co-optimization (ADJ) and with the communication-first
  //    baseline, and compare.
  for (core::Strategy s :
       {core::Strategy::kCoOpt, core::Strategy::kCommFirst}) {
    StatusOr<exec::RunReport> report = engine.Run(*q, s, options);
    if (!report.ok()) {
      std::fprintf(stderr, "run error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->ToString().c_str());
    if (s == core::Strategy::kCoOpt) {
      std::printf("  plan: %s\n", report->plan_description.c_str());
    }
  }
  return 0;
}
