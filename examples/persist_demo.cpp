// persist_demo: the warm-restart lifecycle end to end — build a
// database, warm its index cache with a prepared query, Save() a
// snapshot, reopen it in a fresh Database, and answer the same query
// with every index mmap-loaded from the file (zero builds).
//
//   $ ./build/examples/persist_demo [snapshot-path]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/api.h"
#include "common/timer.h"

namespace {

int Fail(const char* what, const adj::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adj;
  const std::string path =
      argc > 1 ? argv[1] : "persist_demo.adjsnap";
  const char* kTriangle = "G(a,b) G(b,c) G(a,c)";

  // 1. Build: a builtin dataset, a single-server session, and one
  //    prepared query — preparing pins the permuted rows + tries in
  //    the catalog's index cache, which is exactly what Save()
  //    persists alongside the relations.
  api::Database db;
  Status loaded = db.LoadBuiltin("AS", 0.3);
  if (!loaded.ok()) return Fail("load", loaded);

  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 1;
  session.options().num_samples = 300;
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kTriangle);
  if (!prepared.ok()) return Fail("prepare", prepared.status());
  api::Result before = prepared->Run();
  if (!before.ok()) return Fail("run (before save)", before.status());
  std::printf("in-memory:  %s\n", before.ToString().c_str());

  // 2. Save: relations + every resident index artifact, raw
  //    (mmap-able) and compressed, checksummed, written atomically.
  Status saved = db.Save(path);
  if (!saved.ok()) return Fail("save", saved);
  std::printf("saved snapshot: %s\n", path.c_str());

  // 3. Reopen into a *fresh* Database — this is the restarted
  //    process. Open maps the file; relations and tries view the
  //    mapped bytes in place, so there is nothing to parse or build.
  WallTimer open_timer;
  api::Database restarted;
  Status opened = restarted.Open(path);
  if (!opened.ok()) return Fail("open", opened);
  std::printf("reopened in %.3fs (generation=%llu)\n", open_timer.Seconds(),
              static_cast<unsigned long long>(restarted.generation()));

  // 4. The same prepared query, warm from byte one: the deterministic
  //    planner picks the same permutations, so every binding resolves
  //    to an mmap-loaded index. The run must build nothing.
  api::Session warm = restarted.OpenSession();
  warm.options().cluster.num_servers = 1;
  warm.options().num_samples = 300;
  StatusOr<api::PreparedQuery> reprepared = warm.Prepare(kTriangle);
  if (!reprepared.ok()) return Fail("prepare (warm)", reprepared.status());
  api::Result after = reprepared->Run();
  if (!after.ok()) return Fail("run (after open)", after.status());
  std::printf("warm-open:  %s\n", after.ToString().c_str());

  // The smoke assertions CI relies on: identical answers, zero index
  // builds on the warm run, and mmap provenance actually reported.
  if (after.count() != before.count()) {
    std::fprintf(stderr, "FAIL: warm count %llu != in-memory count %llu\n",
                 static_cast<unsigned long long>(after.count()),
                 static_cast<unsigned long long>(before.count()));
    return 1;
  }
  if (after.index_builds() != 0) {
    std::fprintf(stderr, "FAIL: warm run built %llu indexes (want 0)\n",
                 static_cast<unsigned long long>(after.index_builds()));
    return 1;
  }
  if (after.index_mmap_loaded() == 0) {
    std::fprintf(stderr, "FAIL: warm run reported no mmap-loaded indexes\n");
    return 1;
  }
  std::printf(
      "warm run: count matches, %llu bindings served mmap-loaded, "
      "0 indexes built\n",
      static_cast<unsigned long long>(after.index_mmap_loaded()));
  std::remove(path.c_str());
  return 0;
}
