// Persistence subsystem tests: snapshot round trips (relations, name
// aliases, warm index payloads, mapped tries), the corrupt-file error
// paths (truncation, bit flips, wrong magic/version/endianness/value
// width — every one a clean Status, never a crash; this file runs
// under the ASan/UBSan CI leg), budget-bounded adoption, and the
// randomized save→open→every-strategy equivalence property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.h"
#include "common/rng.h"
#include "core/engine.h"
#include "persist/snapshot.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/trie.h"
#include "wcoj/naive_join.h"

namespace adj {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
}

/// A small catalog with deliberately unsorted rows (the dictionary
/// codec must not assume canonical order) and an alias name sharing
/// the physical relation.
storage::Catalog MakeCatalog() {
  storage::Catalog db;
  storage::Relation edges((storage::Schema({0, 1})));
  edges.Append({5, 1});
  edges.Append({2, 9});
  edges.Append({2, 3});
  edges.Append({7, 7});
  db.Put("E", std::move(edges));
  EXPECT_TRUE(db.Alias("E2", "E").ok());
  storage::Relation triple((storage::Schema({0, 1, 2})));
  triple.Append({1, 2, 3});
  triple.Append({1, 2, 4});
  db.Put("T", std::move(triple));
  return db;
}

/// A warmed api::Database: builtin graph, one prepared triangle query
/// executed once on a single server, so the index cache holds the
/// permuted rows, tries, and labeled bindings Save() persists.
api::Database MakeWarmDatabase(uint64_t* count) {
  api::Database db;
  EXPECT_TRUE(db.LoadBuiltin("AS", 0.15).ok());
  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 1;
  session.options().num_samples = 64;
  // Pin the cost model: on instrumented (sanitizer) builds the
  // measured seek rate can flip the plan to precompute, whose
  // materialized bag is heap-built — the warm-restart assertions
  // below need the plan to bind the base tries deterministically.
  session.options().beta_precomputed_override = 4e6;
  session.options().beta_raw_override = 4e6;
  StatusOr<api::PreparedQuery> prepared =
      session.Prepare("G(a,b) G(b,c) G(a,c)");
  EXPECT_TRUE(prepared.ok()) << prepared.status();
  api::Result r = prepared->Run();
  EXPECT_TRUE(r.ok()) << r.status();
  if (count != nullptr) *count = r.count();
  return db;
}

TEST(SnapshotRoundTrip, RelationsNamesAndAliases) {
  const std::string path = TempPath("roundtrip.adjsnap");
  storage::Catalog db = MakeCatalog();
  StatusOr<persist::WriteStats> written =
      persist::SnapshotWriter::Write(db, path);
  ASSERT_TRUE(written.ok()) << written.status();
  EXPECT_EQ(written->relations, 2u);  // E/E2 share one physical
  EXPECT_EQ(written->names, 3u);

  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  storage::Catalog loaded;
  StatusOr<persist::SnapshotReader::LoadStats> stats =
      reader->LoadInto(&loaded);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->names, 3u);

  for (const std::string& name : db.Names()) {
    StatusOr<const storage::Relation*> want = db.Get(name);
    StatusOr<const storage::Relation*> got = loaded.Get(name);
    ASSERT_TRUE(want.ok() && got.ok()) << name;
    EXPECT_EQ((*want)->schema().ToString(), (*got)->schema().ToString());
    EXPECT_TRUE(std::ranges::equal((*want)->raw(), (*got)->raw())) << name;
  }
  // The alias still shares its physical relation after the round trip.
  StatusOr<std::shared_ptr<const storage::Relation>> e = loaded.GetShared("E");
  StatusOr<std::shared_ptr<const storage::Relation>> e2 =
      loaded.GetShared("E2");
  ASSERT_TRUE(e.ok() && e2.ok());
  EXPECT_EQ((*e)->RowsIdentity(), (*e2)->RowsIdentity());
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, EmptyCatalog) {
  const std::string path = TempPath("empty.adjsnap");
  storage::Catalog db;
  ASSERT_TRUE(persist::SnapshotWriter::Write(db, path).ok());
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_TRUE(reader->Verify().ok());
  storage::Catalog loaded;
  StatusOr<persist::SnapshotReader::LoadStats> stats =
      reader->LoadInto(&loaded);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(loaded.Names().empty());
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, WarmIndexesServeMmapLoaded) {
  const std::string path = TempPath("warm.adjsnap");
  uint64_t in_memory_count = 0;
  api::Database db = MakeWarmDatabase(&in_memory_count);
  ASSERT_TRUE(db.Save(path).ok());

  api::Database restarted;
  const uint64_t gen_before = restarted.generation();
  ASSERT_TRUE(restarted.Open(path).ok());
  EXPECT_GT(restarted.generation(), gen_before);
  EXPECT_GT(restarted.catalog().index_cache().stats().mmap_entries, 0u);

  api::Session session = restarted.OpenSession();
  session.options().cluster.num_servers = 1;
  session.options().num_samples = 64;
  session.options().beta_precomputed_override = 4e6;
  session.options().beta_raw_override = 4e6;
  StatusOr<api::PreparedQuery> prepared =
      session.Prepare("G(a,b) G(b,c) G(a,c)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  api::Result r = prepared->Run();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.count(), in_memory_count);
  EXPECT_EQ(r.index_builds(), 0u);
  EXPECT_GT(r.index_mmap_loaded(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, MappedTriesAgreeWithBuild) {
  const std::string path = TempPath("tries.adjsnap");
  api::Database db = MakeWarmDatabase(nullptr);
  ASSERT_TRUE(db.Save(path).ok());

  api::Database restarted;
  ASSERT_TRUE(restarted.Open(path).ok());
  std::vector<storage::IndexCache::ExportedPayload> payloads =
      restarted.catalog().index_cache().ExportPermutedIndexes();
  ASSERT_FALSE(payloads.empty());
  size_t tries = 0;
  for (const auto& payload : payloads) {
    if (payload.trie == nullptr) continue;
    ++tries;
    EXPECT_TRUE(payload.trie->mmap_backed());
    ASSERT_NE(payload.rows, nullptr);
    // The mapped spans must describe exactly the trie a fresh build
    // over the same canonical rows produces — array for array.
    storage::Trie built = storage::Trie::Build(*payload.rows);
    EXPECT_EQ(payload.trie->NumTuples(), built.NumTuples());
    const int depth = payload.rows->arity();
    for (int level = 0; level < depth; ++level) {
      // Levels may be stored block-compressed (snapshot v3 maps them
      // in place); decoded content must match the fresh build exactly.
      std::vector<Value> mapped_vals;
      std::vector<Value> built_vals;
      payload.trie->DecodeLevelInto(level, &mapped_vals);
      built.DecodeLevelInto(level, &built_vals);
      EXPECT_TRUE(mapped_vals == built_vals) << "values, level " << level;
      if (level + 1 < depth) {
        EXPECT_TRUE(std::ranges::equal(payload.trie->ChildBeginSpan(level),
                                       built.ChildBeginSpan(level)))
            << "child offsets, level " << level;
      }
    }
  }
  EXPECT_GT(tries, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, LegacyV2WriteRoundTrips) {
  const std::string path = TempPath("legacy_v2.adjsnap");
  uint64_t in_memory_count = 0;
  api::Database db = MakeWarmDatabase(&in_memory_count);

  // Explicit v2 write: raw levels + compressed mirror, no
  // block-compressed trie segments (compressed tries re-materialize
  // raw to fit the old format).
  StatusOr<persist::WriteStats> stats =
      persist::SnapshotWriter::Write(db.catalog(), path,
                                     {.version = persist::kMinVersion});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->compressed_levels, 0u);
  EXPECT_GT(stats->tries, 0u);

  api::Database restarted;
  ASSERT_TRUE(restarted.Open(path).ok());
  api::Session session = restarted.OpenSession();
  session.options().cluster.num_servers = 1;
  session.options().num_samples = 64;
  api::Result r = session.Run("G(a,b) G(b,c) G(a,c)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.count(), in_memory_count);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, DeepVerifyPasses) {
  const std::string path = TempPath("verify.adjsnap");
  api::Database db = MakeWarmDatabase(nullptr);
  ASSERT_TRUE(db.Save(path).ok());
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  EXPECT_TRUE(reader->Verify().ok());
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, BudgetBoundedAdoption) {
  const std::string path = TempPath("budget.adjsnap");
  uint64_t in_memory_count = 0;
  api::Database db = MakeWarmDatabase(&in_memory_count);
  ASSERT_TRUE(db.Save(path).ok());

  // A budget far below the payload sizes: adoption must respect it
  // (evicting coldest-first) and the catalog must still answer
  // correctly — indexes rebuild on demand.
  api::Database restarted;
  restarted.catalog().index_cache().set_budget_bytes(1024);
  ASSERT_TRUE(restarted.Open(path).ok());
  EXPECT_LE(restarted.catalog().index_cache().stats().resident_bytes, 1024u);

  api::Session session = restarted.OpenSession();
  session.options().cluster.num_servers = 1;
  session.options().num_samples = 64;
  api::Result r = session.Run("G(a,b) G(b,c) G(a,c)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.count(), in_memory_count);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corrupt-file paths. Every mutation must produce a Status error from
// Open / VerifyChecksums / Database::Open — and a failed Database::Open
// must leave the target catalog untouched.

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.adjsnap");
    storage::Catalog db = MakeCatalog();
    ASSERT_TRUE(persist::SnapshotWriter::Write(db, path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GE(bytes_.size(), persist::kHeaderSize + persist::kFooterSize);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Expects that the file at path_ (already mutated) fails cleanly:
  /// either Open itself errors, or checksum verification does.
  void ExpectRejected(const std::string& what) {
    StatusOr<persist::SnapshotReader> reader =
        persist::SnapshotReader::Open(path_);
    if (reader.ok()) {
      EXPECT_FALSE(reader->VerifyChecksums().ok()) << what;
    } else {
      EXPECT_FALSE(reader.status().ok()) << what;
    }
    // The api-level Open (which always verifies) must reject too, and
    // must not disturb the database it was called on.
    api::Database db;
    storage::Relation keep((storage::Schema({0, 1})));
    keep.Append({1, 2});
    db.AddRelation("KEEP", std::move(keep));
    const uint64_t gen = db.generation();
    EXPECT_FALSE(db.Open(path_).ok()) << what;
    EXPECT_EQ(db.generation(), gen) << what;
    EXPECT_EQ(db.relation_names(), std::vector<std::string>{"KEEP"}) << what;
  }

  std::string path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncatedAtEveryRegion) {
  for (size_t keep :
       {size_t(0), size_t(1), persist::kHeaderSize - 1, persist::kHeaderSize,
        bytes_.size() / 2, bytes_.size() - persist::kFooterSize,
        bytes_.size() - 1}) {
    std::vector<uint8_t> cut(bytes_.begin(),
                             bytes_.begin() + std::ptrdiff_t(keep));
    WriteFile(path_, cut);
    ExpectRejected("truncated to " + std::to_string(keep) + " bytes");
  }
}

TEST_F(SnapshotCorruptionTest, FlippedByteInEverySegment) {
  // Locate the real segments first (bytes between them are alignment
  // padding no reader ever consumes), then flip one byte in each.
  StatusOr<persist::SnapshotReader> pristine =
      persist::SnapshotReader::Open(path_);
  ASSERT_TRUE(pristine.ok()) << pristine.status();
  for (const persist::SegmentInfo& seg : pristine->segments()) {
    if (seg.size == 0) continue;
    std::vector<uint8_t> mutated = bytes_;
    mutated[seg.offset + seg.size / 2] ^= 0x40;
    WriteFile(path_, mutated);
    ExpectRejected("flipped byte in segment at offset " +
                   std::to_string(seg.offset));
  }
}

TEST_F(SnapshotCorruptionTest, FlippedTocChecksumByte) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[mutated.size() - persist::kFooterSize + 16] ^= 0x01;
  WriteFile(path_, mutated);
  ExpectRejected("flipped TOC checksum");
}

TEST_F(SnapshotCorruptionTest, WrongMagic) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[0] = 'X';
  WriteFile(path_, mutated);
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("magic"), std::string::npos);
  ExpectRejected("wrong magic");
}

TEST_F(SnapshotCorruptionTest, WrongVersion) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[8] = 0x7F;  // version field
  WriteFile(path_, mutated);
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("version"), std::string::npos);
  ExpectRejected("wrong version");
}

TEST_F(SnapshotCorruptionTest, ForeignEndianness) {
  std::vector<uint8_t> mutated = bytes_;
  std::reverse(mutated.begin() + 12, mutated.begin() + 16);  // endian tag
  WriteFile(path_, mutated);
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("endian"), std::string::npos);
  ExpectRejected("foreign endianness");
}

TEST_F(SnapshotCorruptionTest, WrongValueWidth) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[16] = uint8_t(mutated[16] * 2);  // value-size field
  WriteFile(path_, mutated);
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path_);
  ASSERT_FALSE(reader.ok());
  ExpectRejected("wrong value width");
}

TEST_F(SnapshotCorruptionTest, MissingAndEmptyFiles) {
  api::Database db;
  EXPECT_FALSE(db.Open(TempPath("does_not_exist.adjsnap")).ok());
  WriteFile(path_, {});
  ExpectRejected("empty file");
}

// ---------------------------------------------------------------------------
// Randomized property: save → open → every strategy answers exactly
// like the NaiveJoin oracle over the original in-memory catalog.

struct RandomCase {
  query::Query query;
  storage::Catalog db;
};

RandomCase MakeRandomCase(uint64_t seed) {
  Rng rng(seed);
  const int num_attrs = 3 + int(rng.Uniform(2));  // 3..4
  const int num_atoms = 2 + int(rng.Uniform(3));  // 2..4

  RandomCase out;
  std::vector<query::Atom> atoms;
  AttrMask covered = 0;
  for (int i = 0; i < num_atoms; ++i) {
    const int arity = 2 + int(rng.Uniform(2));  // 2..3
    std::vector<AttrId> attrs;
    if (covered != 0) {
      std::vector<AttrId> pool;
      for (int a = 0; a < num_attrs; ++a) {
        if (covered & (AttrMask(1) << a)) pool.push_back(a);
      }
      attrs.push_back(pool[rng.Uniform(pool.size())]);
    }
    while (int(attrs.size()) < arity) {
      AttrId a = AttrId(rng.Uniform(uint64_t(num_attrs)));
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        attrs.push_back(a);
      }
    }
    for (AttrId a : attrs) covered |= (AttrMask(1) << a);

    const std::string name = "R" + std::to_string(i);
    storage::Relation rel(
        (storage::Schema(std::vector<AttrId>(attrs.begin(), attrs.end()))));
    const uint64_t rows = 30 + rng.Uniform(90);
    const uint64_t domain = 5 + rng.Uniform(12);
    for (uint64_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < attrs.size(); ++c) {
        row.push_back(Value(rng.Uniform(domain)));
      }
      rel.Append(row);
    }
    rel.SortAndDedup();
    out.db.Put(name, std::move(rel));
    atoms.push_back(query::Atom{name, storage::Schema(attrs)});
  }
  std::vector<std::string> used_names;
  std::vector<query::Atom> remapped;
  std::vector<AttrId> remap(size_t(num_attrs), -1);
  for (int a = 0; a < num_attrs; ++a) {
    if (covered & (AttrMask(1) << a)) {
      remap[size_t(a)] = AttrId(used_names.size());
      used_names.push_back(std::string(1, char('a' + a)));
    }
  }
  for (query::Atom& atom : atoms) {
    std::vector<AttrId> attrs;
    for (AttrId a : atom.schema.attrs()) attrs.push_back(remap[size_t(a)]);
    remapped.push_back(query::Atom{atom.relation, storage::Schema(attrs)});
  }
  out.query = query::Query::Make(used_names, remapped);
  return out;
}

class SnapshotPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotPropertyTest, ReopenedCatalogMatchesOracleOnAllStrategies) {
  RandomCase c = MakeRandomCase(uint64_t(GetParam()) * 104729 + 7);
  auto naive = wcoj::NaiveJoin(c.query, c.db, 5'000'000);
  ASSERT_TRUE(naive.ok()) << naive.status();
  const uint64_t truth = naive->size();

  const std::string path =
      TempPath("property_" + std::to_string(GetParam()) + ".adjsnap");
  ASSERT_TRUE(persist::SnapshotWriter::Write(c.db, path).ok());
  StatusOr<persist::SnapshotReader> reader =
      persist::SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_TRUE(reader->Verify().ok());
  storage::Catalog loaded;
  ASSERT_TRUE(reader->LoadInto(&loaded).ok());

  core::Engine engine(&loaded);
  core::EngineOptions opts;
  opts.cluster.num_servers = 3;
  opts.num_samples = 32;
  for (core::Strategy s :
       {core::Strategy::kCommFirst, core::Strategy::kCachedCommFirst,
        core::Strategy::kBinaryJoin, core::Strategy::kBigJoin,
        core::Strategy::kCoOpt}) {
    auto report = engine.Run(c.query, s, opts);
    ASSERT_TRUE(report.ok())
        << core::StrategyName(s) << ": " << report.status();
    ASSERT_TRUE(report->ok())
        << core::StrategyName(s) << ": " << report->status;
    EXPECT_EQ(report->output_count, truth)
        << core::StrategyName(s) << " on " << c.query.ToString();
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace adj
