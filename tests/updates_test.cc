// Delta-aware update coverage: WriteBatch/Apply semantics (atomicity,
// per-name versions, compaction, tombstones of delta rows), the
// MergeDeltaRows / ComposeDelta kernels against set oracles, snapshot
// round-trips of written-to catalogs, and the randomized mixed
// read/write property suite — interleaved batches and prepared runs
// across all five strategies must match a rebuild-from-scratch oracle
// after every write. Runs under the ASan/UBSan leg like every test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/api.h"
#include "common/rng.h"
#include "core/spj.h"
#include "dataset/generators.h"
#include "storage/catalog.h"
#include "storage/trie.h"
#include "storage/write_batch.h"
#include "wcoj/naive_join.h"

namespace adj {
namespace {

using storage::Catalog;
using storage::DeltaBatch;
using storage::Relation;
using storage::Schema;
using storage::WriteBatch;

using Edge = std::pair<Value, Value>;

Schema EdgeSchema() { return Schema({0, 1}); }

Relation FromEdges(const std::set<Edge>& edges) {
  Relation rel(EdgeSchema());
  for (const auto& [a, b] : edges) rel.Append({a, b});
  return rel;
}

std::set<Edge> ToEdges(const Relation& rel) {
  std::set<Edge> out;
  for (uint64_t i = 0; i < rel.size(); ++i) {
    out.emplace(rel.Row(i)[0], rel.Row(i)[1]);
  }
  return out;
}

/// Ground truth for a query over an explicit edge set: a fresh catalog
/// built from scratch (no deltas, no caches) plus the naive evaluator.
uint64_t RebuildOracle(const std::set<Edge>& edges, const std::string& text) {
  Catalog db;
  db.Put("G", FromEdges(edges));
  StatusOr<core::SpjQuery> spj = core::ParseSpj(text);
  EXPECT_TRUE(spj.ok()) << spj.status();
  StatusOr<Relation> joined = wcoj::NaiveJoin(spj->join, db);
  EXPECT_TRUE(joined.ok()) << joined.status();
  return joined.ok() ? joined->size() : 0;
}

// ---------------------------------------------------------------------------
// WriteBatch / Catalog::Apply semantics

TEST(WriteBatchTest, ApplyIsAtomic) {
  Catalog db;
  db.Put("G", FromEdges({{1, 2}, {2, 3}}));
  const uint64_t version = db.VersionOf("G");
  const uint64_t generation = db.generation();

  // Valid prefix + invalid tail: nothing may stick.
  WriteBatch batch;
  batch.Insert("G", {7, 8});
  batch.Insert("G", {9});  // arity mismatch
  EXPECT_FALSE(db.Apply(batch).ok());
  EXPECT_EQ(db.VersionOf("G"), version);
  EXPECT_EQ(db.generation(), generation);
  EXPECT_EQ(ToEdges(**db.Get("G")), (std::set<Edge>{{1, 2}, {2, 3}}));

  WriteBatch missing;
  missing.Insert("NoSuch", {1, 2});
  EXPECT_FALSE(db.Apply(missing).ok());
  EXPECT_EQ(db.generation(), generation);
}

TEST(WriteBatchTest, VersionsBumpOnlyWrittenNames) {
  Catalog db;
  db.Put("G", FromEdges({{1, 2}}));
  db.Put("H", FromEdges({{3, 4}}));
  const uint64_t g_version = db.VersionOf("G");
  const uint64_t h_version = db.VersionOf("H");

  WriteBatch batch;
  batch.Insert("H", {5, 6});
  ASSERT_TRUE(db.Apply(batch).ok());
  EXPECT_EQ(db.VersionOf("G"), g_version);
  EXPECT_GT(db.VersionOf("H"), h_version);
  EXPECT_EQ(db.VersionOf("absent"), 0u);
}

TEST(WriteBatchTest, ContentNoOpWriteKeepsVersion) {
  Catalog db;
  db.Put("G", FromEdges({{1, 2}, {2, 3}}));
  const uint64_t version = db.VersionOf("G");

  // Inserting a present tuple and deleting an absent one change no
  // content; the relation must still read as unwritten so caches over
  // it stay fresh.
  WriteBatch batch;
  batch.Insert("G", {1, 2});
  batch.Delete("G", {100, 200});
  ASSERT_TRUE(db.Apply(batch).ok());
  EXPECT_EQ(db.VersionOf("G"), version);
  EXPECT_EQ(ToEdges(**db.Get("G")), (std::set<Edge>{{1, 2}, {2, 3}}));
}

TEST(WriteBatchTest, DeltaChainCompactsAtThreshold) {
  Catalog db;
  db.set_delta_compact_threshold(4);
  db.Put("G", FromEdges({{1, 1}}));

  // Below the threshold the chain is pending; crossing it folds the
  // chain into a new base.
  WriteBatch first;
  first.Insert("G", {2, 2});
  first.Insert("G", {3, 3});
  ASSERT_TRUE(db.Apply(first).ok());
  StatusOr<Catalog::EntryState> mid = db.Inspect("G");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->deltas.size(), 1u);
  EXPECT_NE(mid->base.get(), mid->effective.get());

  WriteBatch second;
  second.Insert("G", {4, 4});
  second.Delete("G", {1, 1});
  ASSERT_TRUE(db.Apply(second).ok());
  StatusOr<Catalog::EntryState> folded = db.Inspect("G");
  ASSERT_TRUE(folded.ok());
  EXPECT_TRUE(folded->deltas.empty());
  EXPECT_EQ(folded->base.get(), folded->effective.get());
  EXPECT_EQ(ToEdges(**db.Get("G")),
            (std::set<Edge>{{2, 2}, {3, 3}, {4, 4}}));
}

TEST(WriteBatchTest, TombstoneOfADeltaRow) {
  Catalog db;
  db.Put("G", FromEdges({{1, 2}}));

  // {5,6} only ever exists as a delta insert; the later tombstone must
  // cancel it out of the *chain*, not just the base.
  WriteBatch add;
  add.Insert("G", {5, 6});
  ASSERT_TRUE(db.Apply(add).ok());
  EXPECT_EQ(ToEdges(**db.Get("G")), (std::set<Edge>{{1, 2}, {5, 6}}));

  WriteBatch del;
  del.Delete("G", {5, 6});
  ASSERT_TRUE(db.Apply(del).ok());
  EXPECT_EQ(ToEdges(**db.Get("G")), (std::set<Edge>{{1, 2}}));

  // And the reverse order inside ONE batch: insert-then-tombstone of
  // the same tuple coalesces to a no-op for that tuple.
  WriteBatch both;
  both.Insert("G", {7, 8});
  both.Delete("G", {7, 8});
  ASSERT_TRUE(db.Apply(both).ok());
  EXPECT_EQ(ToEdges(**db.Get("G")), (std::set<Edge>{{1, 2}}));
}

// ---------------------------------------------------------------------------
// Merge kernels against set oracles

TEST(MergeDeltaRowsTest, MatchesSetOracleOnRandomInputs) {
  Rng rng(12021);
  for (int round = 0; round < 50; ++round) {
    const int arity = 1 + int(rng.Uniform(3));
    auto random_rel = [&](uint64_t rows) {
      Relation rel(Schema([&] {
        std::vector<AttrId> attrs(arity);
        for (int i = 0; i < arity; ++i) attrs[i] = i;
        return attrs;
      }()));
      for (uint64_t r = 0; r < rows; ++r) {
        std::vector<Value> tuple(arity);
        for (int c = 0; c < arity; ++c) tuple[c] = Value(rng.Uniform(12));
        rel.Append(tuple);
      }
      rel.SortAndDedup();
      return rel;
    };
    Relation base = random_rel(rng.Uniform(60));
    Relation inserts = random_rel(rng.Uniform(10));
    Relation deletes = random_rel(rng.Uniform(10));
    // Keep the two delta sides disjoint, as Catalog::Apply guarantees.
    {
      std::vector<Value> kept;
      for (uint64_t i = 0; i < deletes.size(); ++i) {
        std::span<const Value> row = deletes.Row(i);
        bool inserted = false;
        for (uint64_t j = 0; j < inserts.size(); ++j) {
          if (std::equal(row.begin(), row.end(), inserts.Row(j).begin())) {
            inserted = true;
            break;
          }
        }
        if (!inserted) kept.insert(kept.end(), row.begin(), row.end());
      }
      deletes.mutable_raw() = std::move(kept);
    }

    std::vector<Value> merged;
    storage::MergeDeltaRows(base.raw(), arity, inserts.raw(), deletes.raw(),
                            &merged);

    std::set<std::vector<Value>> oracle;
    auto rows_of = [&](const Relation& rel) {
      std::set<std::vector<Value>> out;
      for (uint64_t i = 0; i < rel.size(); ++i) {
        out.emplace(rel.Row(i).begin(), rel.Row(i).end());
      }
      return out;
    };
    oracle = rows_of(base);
    for (const auto& row : rows_of(deletes)) oracle.erase(row);
    for (const auto& row : rows_of(inserts)) oracle.insert(row);

    std::vector<Value> expect;
    for (const auto& row : oracle) {
      expect.insert(expect.end(), row.begin(), row.end());
    }
    EXPECT_EQ(merged, expect) << "round " << round << " arity " << arity;
  }
}

TEST(TriePatchTest, MatchesScratchBuildOnRandomDeltas) {
  Rng rng(4242);
  for (int round = 0; round < 80; ++round) {
    const int arity = 1 + int(rng.Uniform(3));
    std::vector<AttrId> attrs(arity);
    for (int i = 0; i < arity; ++i) attrs[i] = i;
    const Schema schema(attrs);
    auto random_row = [&](uint64_t domain) {
      std::vector<Value> row(arity);
      for (int c = 0; c < arity; ++c) row[c] = Value(rng.Uniform(domain));
      return row;
    };

    Relation base(schema);
    const uint64_t rows = rng.Uniform(80);
    for (uint64_t r = 0; r < rows; ++r) base.Append(random_row(9));
    base.SortAndDedup();

    // Deletes: a sample of real rows plus a couple of dangling ones
    // (absent rows -- PatchFrom must treat them as no-ops, matching
    // MergeDeltaRows). Inserts: random rows outside the delete set.
    Relation deletes(schema);
    for (uint64_t r = 0; r < base.size(); ++r) {
      if (rng.Uniform(4) == 0) {
        std::span<const Value> row = base.Row(r);
        deletes.Append(std::vector<Value>(row.begin(), row.end()));
      }
    }
    for (int i = 0; i < 2; ++i) deletes.Append(random_row(14));
    deletes.SortAndDedup();
    auto contains = [&](const Relation& rel, std::span<const Value> row) {
      for (uint64_t r = 0; r < rel.size(); ++r) {
        if (std::equal(row.begin(), row.end(), rel.Row(r).begin())) {
          return true;
        }
      }
      return false;
    };
    Relation inserts(schema);
    for (uint64_t i = rng.Uniform(12); i > 0; --i) {
      std::vector<Value> row = random_row(12);
      if (!contains(deletes, row)) inserts.Append(row);
    }
    inserts.SortAndDedup();

    std::vector<Value> merged_raw;
    storage::MergeDeltaRows(base.raw(), arity, inserts.raw(), deletes.raw(),
                            &merged_raw);
    Relation merged(schema);
    merged.mutable_raw() = std::move(merged_raw);

    const storage::Trie patched =
        storage::Trie::PatchFrom(storage::Trie::Build(base), inserts, deletes);
    const storage::Trie built = storage::Trie::Build(merged);
    ASSERT_EQ(patched.arity(), built.arity()) << "round " << round;
    ASSERT_EQ(patched.NumTuples(), built.NumTuples()) << "round " << round;
    for (int l = 0; l < built.arity(); ++l) {
      const auto pv = patched.LevelSpan(l), bv = built.LevelSpan(l);
      ASSERT_TRUE(std::equal(pv.begin(), pv.end(), bv.begin(), bv.end()))
          << "values differ at level " << l << " round " << round;
      const auto pk = patched.ChildBeginSpan(l), bk = built.ChildBeginSpan(l);
      ASSERT_TRUE(std::equal(pk.begin(), pk.end(), bk.begin(), bk.end()))
          << "child offsets differ at level " << l << " round " << round;
      EXPECT_EQ(patched.MaxRangeWidth(l), built.MaxRangeWidth(l))
          << "width differs at level " << l << " round " << round;
    }
  }
}

TEST(ComposeDeltaTest, CompositionEqualsSequentialApplication) {
  Rng rng(777);
  for (int round = 0; round < 30; ++round) {
    Catalog sequential;
    sequential.Put("G", dataset::ErdosRenyi(12, 30, rng));
    const std::set<Edge> start = ToEdges(**sequential.Get("G"));

    auto random_batch = [&] {
      WriteBatch batch;
      for (int i = 0; i < 4; ++i) {
        Value a = Value(rng.Uniform(12)), b = Value(rng.Uniform(12));
        if (rng.Uniform(2) == 0) {
          batch.Insert("G", {a, b});
        } else {
          batch.Delete("G", {a, b});
        }
      }
      return batch;
    };
    WriteBatch first = random_batch();
    WriteBatch second = random_batch();
    ASSERT_TRUE(sequential.Apply(first).ok());
    ASSERT_TRUE(sequential.Apply(second).ok());

    // ComposeDelta is exercised through the catalog: two chained
    // batches against one relation produce the same content as the
    // composed net delta the index cache patches with (checked against
    // the sequential result via a third, batch-merged application).
    Catalog merged;
    merged.Put("G", FromEdges(start));
    ASSERT_TRUE(merged.Apply(first).ok());
    ASSERT_TRUE(merged.Apply(second).ok());
    EXPECT_EQ(ToEdges(**merged.Get("G")), ToEdges(**sequential.Get("G")));

    // And the kernel directly: compose two random DeltaBatches, apply
    // once, compare with applying them one after the other.
    auto delta_of = [&](int rows) {
      DeltaBatch d;
      d.inserts = Relation(EdgeSchema());
      d.deletes = Relation(EdgeSchema());
      for (int i = 0; i < rows; ++i) {
        Value a = Value(rng.Uniform(10)), b = Value(rng.Uniform(10));
        if (rng.Uniform(2) == 0) {
          d.inserts.Append({a, b});
        } else {
          d.deletes.Append({a, b});
        }
      }
      d.inserts.SortAndDedup();
      d.deletes.SortAndDedup();
      // Disjoint sides, as the catalog maintains.
      std::set<Edge> ins = ToEdges(d.inserts);
      Relation deletes(EdgeSchema());
      for (const auto& [a, b] : ToEdges(d.deletes)) {
        if (ins.find({a, b}) == ins.end()) deletes.Append({a, b});
      }
      d.deletes = std::move(deletes);
      return d;
    };
    DeltaBatch a = delta_of(3 + int(rng.Uniform(4)));
    DeltaBatch b = delta_of(3 + int(rng.Uniform(4)));
    Relation base = FromEdges(start);
    base.SortAndDedup();

    std::vector<Value> step1, step2;
    storage::MergeDeltaRows(base.raw(), 2, a.inserts.raw(), a.deletes.raw(),
                            &step1);
    storage::MergeDeltaRows(step1, 2, b.inserts.raw(), b.deletes.raw(),
                            &step2);

    DeltaBatch net = storage::ComposeDelta(a, b);
    std::vector<Value> direct;
    storage::MergeDeltaRows(base.raw(), 2, net.inserts.raw(),
                            net.deletes.raw(), &direct);
    EXPECT_EQ(direct, step2) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Snapshot round-trip of a written-to catalog (format v2)

TEST(UpdatesSnapshotTest, SaveOpenRoundTripsPendingDeltaChain) {
  const std::string path = ::testing::TempDir() + "/updates_chain.snap";
  Rng rng(5);
  std::set<Edge> expect;
  {
    api::Database db;
    db.AddRelation("G", dataset::ErdosRenyi(20, 60, rng));
    db.set_delta_compact_threshold(1 << 20);  // keep the chain
    storage::WriteBatch batch;
    batch.Insert("G", {100, 101});
    batch.Insert("G", {101, 102});
    ASSERT_TRUE(db.Apply(batch).ok());
    storage::WriteBatch more;
    more.Insert("G", {102, 103});
    more.Delete("G", {100, 101});
    ASSERT_TRUE(db.Apply(more).ok());
    StatusOr<Catalog::EntryState> state = db.catalog().Inspect("G");
    ASSERT_TRUE(state.ok());
    ASSERT_EQ(state->deltas.size(), 2u);  // the chain is really pending
    expect = ToEdges(**db.catalog().Get("G"));
    ASSERT_TRUE(db.Save(path).ok());
  }
  {
    api::Database db;
    ASSERT_TRUE(db.Open(path).ok());
    // Content round-trips AND the chain survives as a chain: the base
    // stays the mmap-backed pre-write relation, the delta rows ride on
    // the heap.
    EXPECT_EQ(ToEdges(**db.catalog().Get("G")), expect);
    StatusOr<Catalog::EntryState> state = db.catalog().Inspect("G");
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state->deltas.size(), 2u);
    EXPECT_NE(state->base.get(), state->effective.get());
    EXPECT_TRUE(state->base->is_alias());  // views the mapped file
    // And queries over the restored entry agree with the oracle.
    api::Session session = db.OpenSession();
    session.options().num_samples = 64;
    api::Result result = session.Run("G(a,b) G(b,c)");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result.count(), RebuildOracle(expect, "G(a,b) G(b,c)"));
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Randomized mixed read/write property suite

constexpr const char* kStrategies[] = {"ADJ", "HCubeJ", "HCubeJ+Cache",
                                       "SparkSQL", "BigJoin"};

TEST(UpdatePropertyTest, MixedReadsAndWritesMatchRebuildOracle) {
  Rng rng(20260808);
  api::Database db;
  db.AddRelation("G", dataset::ErdosRenyi(25, 90, rng));
  // A small threshold so the rounds below cross compaction boundaries
  // mid-stream, not just at the end.
  db.set_delta_compact_threshold(8);
  std::set<Edge> mirror = ToEdges(**db.catalog().Get("G"));

  api::Session session = db.OpenSession();
  session.options().num_samples = 64;
  session.options().cluster.num_servers = 2;

  const std::string kPath = "G(a,b) G(b,c)";
  const std::string kTriangle = "G(a,b) G(b,c) G(a,c)";
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kPath);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  for (int round = 0; round < 6; ++round) {
    // A random batch: mostly fresh inserts, some tombstones — biased
    // toward rows added by *earlier* batches so tombstone-of-delta-row
    // paths run every round.
    WriteBatch batch;
    const int ops = 1 + int(rng.Uniform(5));
    for (int i = 0; i < ops; ++i) {
      const uint64_t kind = rng.Uniform(3);
      if (kind < 2 || mirror.empty()) {
        const Value a = Value(rng.Uniform(25) + (round + 1) * 100);
        const Value b = Value(rng.Uniform(25) + (round + 1) * 100);
        batch.Insert("G", {a, b});
        mirror.insert({a, b});
      } else {
        auto victim = mirror.begin();
        std::advance(victim, rng.Uniform(mirror.size()));
        batch.Delete("G", {victim->first, victim->second});
        mirror.erase(victim);
      }
    }
    ASSERT_TRUE(db.Apply(batch).ok());
    ASSERT_EQ(ToEdges(**db.catalog().Get("G")), mirror)
        << "round " << round;

    // Rebuild-from-scratch oracle after every write...
    const uint64_t path_oracle = RebuildOracle(mirror, kPath);
    const uint64_t triangle_oracle = RebuildOracle(mirror, kTriangle);

    // ...against all five strategies (cold session runs)...
    for (const char* strategy : kStrategies) {
      api::Result r = session.Run(kPath, strategy);
      ASSERT_TRUE(r.ok()) << strategy << ": " << r.status();
      EXPECT_EQ(r.count(), path_oracle)
          << strategy << " diverged at round " << round;
    }
    api::Result triangle = session.Run(kTriangle);
    ASSERT_TRUE(triangle.ok()) << triangle.status();
    EXPECT_EQ(triangle.count(), triangle_oracle) << "round " << round;

    // ...and against the delta-refreshed prepared query (merge-on-read
    // instead of re-plan: the staleness check + Reprepare is exactly
    // what serve::Server does between writes).
    EXPECT_FALSE(session.IsFresh(*prepared));
    StatusOr<api::PreparedQuery> refreshed = session.Reprepare(*prepared);
    ASSERT_TRUE(refreshed.ok()) << refreshed.status();
    prepared = std::move(refreshed);
    api::Result via_prepared = prepared->Run();
    ASSERT_TRUE(via_prepared.ok()) << via_prepared.status();
    EXPECT_EQ(via_prepared.count(), path_oracle)
        << "prepared rerun diverged at round " << round;
    EXPECT_TRUE(session.IsFresh(*prepared));
    EXPECT_EQ(via_prepared.index_builds(), 0u)
        << "a delta refresh must patch, not rebuild, at round " << round;
  }
}

}  // namespace
}  // namespace adj
