#include <algorithm>
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "dataset/builtin.h"
#include "dataset/generators.h"

namespace adj::dataset {
namespace {

TEST(GeneratorsTest, ErdosRenyiBasicProperties) {
  Rng rng(1);
  storage::Relation r = ErdosRenyi(100, 500, rng);
  EXPECT_TRUE(r.IsSortedUnique());
  EXPECT_GT(r.size(), 400u);  // a few duplicates may collapse
  EXPECT_LE(r.size(), 500u);
  for (uint64_t i = 0; i < r.size(); ++i) {
    EXPECT_LT(r.At(i, 0), 100u);
    EXPECT_LT(r.At(i, 1), 100u);
    EXPECT_NE(r.At(i, 0), r.At(i, 1));  // no self loops
  }
}

TEST(GeneratorsTest, GeneratorsAreDeterministic) {
  Rng a(7), b(7);
  storage::Relation ra = ErdosRenyi(50, 200, a);
  storage::Relation rb = ErdosRenyi(50, 200, b);
  EXPECT_TRUE(std::ranges::equal(ra.raw(), rb.raw()));
}

TEST(GeneratorsTest, RmatSkewedDegrees) {
  Rng rng(3);
  RmatParams params;
  params.scale = 10;
  storage::Relation r = Rmat(params, 20000, rng);
  EXPECT_TRUE(r.IsSortedUnique());
  // Heavy tail: the max out-degree should far exceed the average.
  std::map<Value, int> degree;
  for (uint64_t i = 0; i < r.size(); ++i) ++degree[r.At(i, 0)];
  int max_deg = 0;
  for (const auto& [v, d] : degree) max_deg = std::max(max_deg, d);
  const double avg = double(r.size()) / double(degree.size());
  EXPECT_GT(max_deg, 10 * avg);
}

TEST(GeneratorsTest, ZipfGraphRespectsDomain) {
  Rng rng(5);
  storage::Relation r = ZipfGraph(64, 1000, 0.9, rng);
  for (uint64_t i = 0; i < r.size(); ++i) {
    EXPECT_LT(r.At(i, 0), 64u);
    EXPECT_LT(r.At(i, 1), 64u);
  }
}

TEST(GeneratorsTest, CompleteGraphSize) {
  storage::Relation r = CompleteGraph(6);
  EXPECT_EQ(r.size(), 30u);  // n(n-1) directed edges
  EXPECT_TRUE(r.IsSortedUnique());
}

TEST(GeneratorsTest, CycleGraph) {
  storage::Relation r = CycleGraph(5);
  EXPECT_EQ(r.size(), 5u);
}

TEST(GeneratorsTest, PathGraph) {
  storage::Relation r = PathGraph(5);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.At(0, 0), 0u);
  EXPECT_EQ(r.At(3, 1), 4u);
}

TEST(GeneratorsTest, SymmetrizeDoublesDirectedEdges) {
  storage::Relation path = PathGraph(4);
  storage::Relation sym = Symmetrize(path);
  EXPECT_EQ(sym.size(), 6u);  // 3 edges both ways, no overlaps
}

TEST(BuiltinTest, AllSpecsGenerate) {
  for (const BuiltinSpec& spec : BuiltinSpecs()) {
    auto rel = MakeBuiltin(spec.name, 0.05);
    ASSERT_TRUE(rel.ok()) << spec.name;
    EXPECT_GT(rel->size(), 100u) << spec.name;
    EXPECT_TRUE(rel->IsSortedUnique());
  }
}

TEST(BuiltinTest, SizeOrderingMatchesPaper) {
  // WB < AS < WT < LJ < EN < OK (Table I ordering).
  uint64_t prev = 0;
  for (const BuiltinSpec& spec : BuiltinSpecs()) {
    auto rel = MakeBuiltin(spec.name, 0.2);
    ASSERT_TRUE(rel.ok());
    EXPECT_GT(rel->size(), prev) << spec.name;
    prev = rel->size();
  }
}

TEST(BuiltinTest, UnknownNameFails) {
  EXPECT_FALSE(MakeBuiltin("NOPE").ok());
}

TEST(BuiltinTest, DatasetsAreReproducible) {
  auto a = MakeBuiltin("WB", 0.05);
  auto b = MakeBuiltin("WB", 0.05);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(std::ranges::equal(a->raw(), b->raw()));
}

TEST(BuiltinTest, DescribeMentionsNameAndSize) {
  auto rel = MakeBuiltin("WB", 0.05);
  ASSERT_TRUE(rel.ok());
  std::string d = DescribeDataset("WB", *rel);
  EXPECT_NE(d.find("WB"), std::string::npos);
  EXPECT_NE(d.find("|R|="), std::string::npos);
}

}  // namespace
}  // namespace adj::dataset
