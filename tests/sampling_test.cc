#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dataset/generators.h"
#include "query/queries.h"
#include "sampling/sampler.h"
#include "sampling/sketch_estimator.h"
#include "wcoj/naive_join.h"

namespace adj::sampling {
namespace {

using query::Query;

TEST(ChernoffTest, SampleCountFormula) {
  // k = ceil(0.5 p^-2 ln(2/delta)).
  EXPECT_EQ(ChernoffSampleCount(0.1, 0.05),
            uint64_t(std::ceil(0.5 * 100 * std::log(40.0))));
  EXPECT_GE(ChernoffSampleCount(0.01, 0.01), 10000u);
  EXPECT_EQ(ChernoffSampleCount(0, 0.5), 1u);
}

TEST(SamplerTest, ExactOnCompleteGraphTriangles) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(8));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  SamplerOptions opts;
  opts.num_samples = 64;
  auto est = SampleCardinality(*q, db, {0, 1, 2}, opts);
  ASSERT_TRUE(est.ok());
  // Complete graph is perfectly symmetric: every sampled value yields
  // the same count, so the estimate is exact: 8*7*6 = 336.
  EXPECT_EQ(est->val_a_size, 8u);
  EXPECT_NEAR(est->cardinality, 336.0, 1e-9);
}

TEST(SamplerTest, ConvergesWithMoreSamples) {
  Rng rng(11);
  storage::Catalog db;
  db.Put("G", dataset::ZipfGraph(200, 3000, 0.8, rng));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  const double truth = double(naive->size());
  ASSERT_GT(truth, 0);

  auto run = [&](uint64_t k) {
    SamplerOptions opts;
    opts.num_samples = k;
    opts.seed = 5;
    auto est = SampleCardinality(*q, db, {0, 1, 2}, opts);
    EXPECT_TRUE(est.ok());
    const double d = std::max(est->cardinality, truth) /
                     std::max(1.0, std::min(est->cardinality, truth));
    return d;
  };
  const double d_small = run(8);
  const double d_large = run(4096);
  // The paper's D metric converges toward 1 as samples grow.
  EXPECT_LT(d_large, 1.35);
  EXPECT_LE(d_large, d_small * 1.5 + 0.5);
}

TEST(SamplerTest, PerLevelEstimatesScaleWithSamples) {
  Rng rng(13);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(100, 800, rng));
  auto q = Query::Parse("G(a,b) G(b,c)");
  SamplerOptions opts;
  opts.num_samples = 512;
  auto est = SampleCardinality(*q, db, {0, 1, 2}, opts);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->est_tuples_at_level.size(), 3u);
  // Level-0 estimate approximates |val(A)| (each sample emits <= 1
  // binding at level 0 and val(a) values all join something or not).
  EXPECT_GT(est->est_tuples_at_level[0], 0.0);
  // Deepest level estimate equals the cardinality estimate.
  EXPECT_NEAR(est->est_tuples_at_level[2], est->cardinality, 1e-6);
}

TEST(SamplerTest, DistributedAccountingPresent) {
  Rng rng(17);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(100, 800, rng));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  SamplerOptions opts;
  opts.num_samples = 32;
  opts.distributed = true;
  auto est = SampleCardinality(*q, db, {0, 1, 2}, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->comm.tuple_copies, 0u);
  EXPECT_GT(est->comm.seconds, 0.0);
  // The reduced database can not exceed 1 projection + full relation
  // per atom.
  uint64_t upper = 0;
  for (int i = 0; i < q->num_atoms(); ++i) {
    upper += 2 * (*db.Get("G"))->size();
  }
  EXPECT_LE(est->comm.tuple_copies, upper);
}

TEST(SamplerTest, SemijoinReductionShrinksComm) {
  // With few samples, relations containing A shrink a lot.
  Rng rng(19);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(500, 4000, rng));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  SamplerOptions small_opts;
  small_opts.num_samples = 4;
  small_opts.seed = 1;
  auto small = SampleCardinality(*q, db, {0, 1, 2}, small_opts);
  SamplerOptions big_opts;
  big_opts.num_samples = 2048;
  big_opts.seed = 1;
  auto big = SampleCardinality(*q, db, {0, 1, 2}, big_opts);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_LT(small->comm.tuple_copies, big->comm.tuple_copies);
}

TEST(SamplerTest, EmptyJoinEstimatesZero) {
  storage::Catalog db;
  storage::Relation g(storage::Schema({0, 1}));
  g.Append({1, 2});  // no triangle possible
  db.Put("G", std::move(g));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  SamplerOptions opts;
  opts.num_samples = 16;
  auto est = SampleCardinality(*q, db, {0, 1, 2}, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->cardinality, 0.0);
}

TEST(SamplerTest, BetaMeasured) {
  Rng rng(23);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(200, 2000, rng));
  auto q = Query::Parse("G(a,b) G(b,c)");
  SamplerOptions opts;
  opts.num_samples = 512;
  auto est = SampleCardinality(*q, db, {0, 1, 2}, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->beta_extensions_per_s, 0.0);
}

TEST(SketchTest, SingleAtomIsExact) {
  Rng rng(29);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(50, 300, rng));
  auto q = Query::Parse("G(a,b) G(b,c)");
  auto sketch = SketchEstimator::Build(*q, db);
  ASSERT_TRUE(sketch.ok());
  EXPECT_DOUBLE_EQ(sketch->EstimateJoin(0b01),
                   double((*db.Get("G"))->size()));
}

TEST(SketchTest, TwoWayJoinUsesContainment) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(10));
  auto q = Query::Parse("G(a,b) G(b,c)");
  auto sketch = SketchEstimator::Build(*q, db);
  ASSERT_TRUE(sketch.ok());
  // |G|=90, V(b)=10 on both sides: est = 90*90/10 = 810.
  // True: for each (a,b): 9 extensions => 810. Exact here.
  EXPECT_NEAR(sketch->EstimateJoin(0b11), 810.0, 1e-9);
}

TEST(SketchTest, SamplingBeatsSketchOnCyclicJoin) {
  // Sec. IV's motivation: sketch error on cyclic joins is much larger
  // than sampling error.
  Rng rng(31);
  storage::Catalog db;
  db.Put("G", dataset::ZipfGraph(150, 2500, 0.9, rng));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  const double truth = std::max(1.0, double(naive->size()));

  auto sketch = SketchEstimator::Build(*q, db);
  ASSERT_TRUE(sketch.ok());
  const double sketch_est = std::max(1.0, sketch->EstimateJoin(0b111));
  const double sketch_d =
      std::max(sketch_est, truth) / std::min(sketch_est, truth);

  SamplerOptions opts;
  opts.num_samples = 2048;
  auto sample = SampleCardinality(*q, db, {0, 1, 2}, opts);
  ASSERT_TRUE(sample.ok());
  const double sample_est = std::max(1.0, sample->cardinality);
  const double sample_d =
      std::max(sample_est, truth) / std::min(sample_est, truth);

  EXPECT_LT(sample_d, sketch_d);
}

TEST(SketchTest, EstimateBindingsSelectsContainedAtoms) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(6));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  auto sketch = SketchEstimator::Build(*q, db);
  ASSERT_TRUE(sketch.ok());
  // attrs {a,b}: only atom 0 contained.
  EXPECT_DOUBLE_EQ(sketch->EstimateBindings(0b011),
                   double((*db.Get("G"))->size()));
  // No atoms inside {a}: neutral 1.0.
  EXPECT_DOUBLE_EQ(sketch->EstimateBindings(0b001), 1.0);
}

}  // namespace
}  // namespace adj::sampling
