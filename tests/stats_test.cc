#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dataset/stats.h"

namespace adj::dataset {
namespace {

TEST(GraphStatsTest, PathGraphBasics) {
  storage::Relation path = PathGraph(10);
  GraphStats stats = ComputeGraphStats(path);
  EXPECT_EQ(stats.num_edges, 9u);
  EXPECT_EQ(stats.num_nodes, 10u);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.max_in_degree, 1u);
}

TEST(GraphStatsTest, CompleteGraphDegrees) {
  storage::Relation k = CompleteGraph(8);
  GraphStats stats = ComputeGraphStats(k);
  EXPECT_EQ(stats.num_nodes, 8u);
  EXPECT_EQ(stats.max_out_degree, 7u);
  EXPECT_EQ(stats.max_in_degree, 7u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 7.0);
}

TEST(GraphStatsTest, EmptyGraph) {
  storage::Relation empty(storage::Schema({0, 1}));
  GraphStats stats = ComputeGraphStats(empty);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_EQ(stats.num_nodes, 0u);
}

TEST(GraphStatsTest, RmatIsMoreSkewedThanUniform) {
  Rng rng1(3), rng2(3);
  RmatParams params;
  params.scale = 11;
  storage::Relation rmat = Rmat(params, 20000, rng1);
  storage::Relation uniform = ErdosRenyi(1 << 11, 20000, rng2);
  GraphStats rs = ComputeGraphStats(rmat);
  GraphStats us = ComputeGraphStats(uniform);
  EXPECT_GT(rs.top1pct_out_share, us.top1pct_out_share * 2);
  EXPECT_GT(rs.max_out_degree, us.max_out_degree);
}

TEST(GraphStatsTest, ToStringMentionsFields) {
  storage::Relation path = PathGraph(5);
  std::string s = ComputeGraphStats(path).ToString();
  EXPECT_NE(s.find("edges="), std::string::npos);
  EXPECT_NE(s.find("skew="), std::string::npos);
}

TEST(DegreeHistogramTest, CountsNodesPerDegree) {
  // Star: one node with out-degree 4, others 0 out-edges.
  storage::Relation star(storage::Schema({0, 1}));
  for (Value v = 1; v <= 4; ++v) star.Append({0, v});
  auto hist = OutDegreeHistogram(star, 8);
  EXPECT_EQ(hist[4], 1u);
  uint64_t total = 0;
  for (uint64_t h : hist) total += h;
  EXPECT_EQ(total, 1u);  // only nodes with out-edges are counted
}

TEST(DegreeHistogramTest, ClampsHugeDegrees) {
  storage::Relation star(storage::Schema({0, 1}));
  for (Value v = 1; v <= 100; ++v) star.Append({0, v});
  auto hist = OutDegreeHistogram(star, 8);
  EXPECT_EQ(hist[8], 1u);
}

}  // namespace
}  // namespace adj::dataset
