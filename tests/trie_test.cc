#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "storage/relation.h"
#include "storage/trie.h"

namespace adj::storage {
namespace {

Relation MakeRel(std::initializer_list<std::initializer_list<Value>> rows,
                 int arity) {
  std::vector<AttrId> attrs;
  for (int i = 0; i < arity; ++i) attrs.push_back(i);
  Relation r((Schema(attrs)));
  for (const auto& row : rows) r.Append(row);
  r.SortAndDedup();
  return r;
}

TEST(TrieTest, BuildsPaperExample) {
  // R1(a,b,c) from Fig. 2: {(1,2,2),(1,2,1),(2,1,1),(2,1,4)}.
  Relation r = MakeRel({{1, 2, 2}, {1, 2, 1}, {2, 1, 1}, {2, 1, 4}}, 3);
  Trie t = Trie::Build(r);
  EXPECT_EQ(t.arity(), 3);
  EXPECT_EQ(t.NumTuples(), 4u);
  // Level 0: {1, 2}.
  ASSERT_EQ(t.values(0).size(), 2u);
  EXPECT_EQ(t.values(0)[0], 1u);
  EXPECT_EQ(t.values(0)[1], 2u);
  // Children of 1 at level 1: {2}; children of 2: {1}.
  Trie::Range c1 = t.ChildRange(0, 0);
  EXPECT_EQ(c1.size(), 1u);
  EXPECT_EQ(t.ValueAt(1, c1.lo), 2u);
  Trie::Range c2 = t.ChildRange(0, 1);
  EXPECT_EQ(c2.size(), 1u);
  EXPECT_EQ(t.ValueAt(1, c2.lo), 1u);
  // Leaves under (1,2): {1,2}; under (2,1): {1,4}.
  Trie::Range l1 = t.ChildRange(1, c1.lo);
  ASSERT_EQ(l1.size(), 2u);
  EXPECT_EQ(t.ValueAt(2, l1.lo), 1u);
  EXPECT_EQ(t.ValueAt(2, l1.lo + 1), 2u);
}

TEST(TrieTest, EmptyRelation) {
  Relation r = MakeRel({}, 2);
  Trie t = Trie::Build(r);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.NumTuples(), 0u);
  EXPECT_EQ(t.RootRange().size(), 0u);
}

TEST(TrieTest, SingleColumn) {
  Relation r = MakeRel({{5}, {2}, {9}}, 1);
  Trie t = Trie::Build(r);
  EXPECT_EQ(t.arity(), 1);
  ASSERT_EQ(t.values(0).size(), 3u);
  EXPECT_EQ(t.values(0)[0], 2u);
  EXPECT_EQ(t.values(0)[2], 9u);
}

TEST(TrieTest, SeekFindsLowerBound) {
  Relation r = MakeRel({{2}, {4}, {8}, {16}}, 1);
  Trie t = Trie::Build(r);
  Trie::Range root = t.RootRange();
  EXPECT_EQ(t.ValueAt(0, t.SeekInRange(0, root, 0)), 2u);
  EXPECT_EQ(t.ValueAt(0, t.SeekInRange(0, root, 3)), 4u);
  EXPECT_EQ(t.ValueAt(0, t.SeekInRange(0, root, 4)), 4u);
  EXPECT_EQ(t.ValueAt(0, t.SeekInRange(0, root, 9)), 16u);
  EXPECT_EQ(t.SeekInRange(0, root, 17), root.hi);
}

TEST(TrieTest, SeekRespectsSubRange) {
  Relation r = MakeRel({{1}, {3}, {5}, {7}, {9}}, 1);
  Trie t = Trie::Build(r);
  Trie::Range sub{1, 4};  // values {3,5,7}
  EXPECT_EQ(t.SeekInRange(0, sub, 0), 1u);
  EXPECT_EQ(t.SeekInRange(0, sub, 6), 3u);
  EXPECT_EQ(t.SeekInRange(0, sub, 8), 4u);  // == sub.hi
}

TEST(TrieTest, FindExact) {
  Relation r = MakeRel({{2}, {4}, {8}}, 1);
  Trie t = Trie::Build(r);
  Trie::Range root = t.RootRange();
  EXPECT_EQ(t.FindInRange(0, root, 4), 1u);
  EXPECT_EQ(t.FindInRange(0, root, 5), root.hi);
}

TEST(TrieTest, NumTuplesMatchesRelation) {
  Rng rng(5);
  Relation r(Schema({0, 1}));
  for (int i = 0; i < 300; ++i) {
    r.Append({Value(rng.Uniform(20)), Value(rng.Uniform(20))});
  }
  r.SortAndDedup();
  Trie t = Trie::Build(r);
  EXPECT_EQ(t.NumTuples(), r.size());
  EXPECT_EQ(t.values(0).size(), r.DistinctColumn(0).size());
}

/// Property sweep: for random relations of several arities, walking
/// the trie enumerates exactly the relation's rows, in order.
class TrieRoundTripTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

void WalkTrie(const Trie& t, int level, Trie::Range range,
              std::vector<Value>& prefix,
              std::vector<std::vector<Value>>& out) {
  for (uint32_t i = range.lo; i < range.hi; ++i) {
    prefix.push_back(t.ValueAt(level, i));
    if (level + 1 == t.arity()) {
      out.push_back(prefix);
    } else {
      WalkTrie(t, level + 1, t.ChildRange(level, i), prefix, out);
    }
    prefix.pop_back();
  }
}

TEST_P(TrieRoundTripTest, EnumeratesExactlyTheRelation) {
  const int arity = std::get<0>(GetParam());
  const int domain = std::get<1>(GetParam());
  Rng rng(uint64_t(arity * 1000 + domain));
  std::vector<AttrId> attrs;
  for (int i = 0; i < arity; ++i) attrs.push_back(i);
  Relation r((Schema(attrs)));
  for (int i = 0; i < 400; ++i) {
    std::vector<Value> row;
    for (int c = 0; c < arity; ++c) row.push_back(Value(rng.Uniform(domain)));
    r.Append(row);
  }
  r.SortAndDedup();
  Trie t = Trie::Build(r);
  std::vector<std::vector<Value>> walked;
  std::vector<Value> prefix;
  WalkTrie(t, 0, t.RootRange(), prefix, walked);
  ASSERT_EQ(walked.size(), r.size());
  for (uint64_t i = 0; i < r.size(); ++i) {
    for (int c = 0; c < arity; ++c) {
      EXPECT_EQ(walked[i][size_t(c)], r.At(i, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrieRoundTripTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(3, 8, 64)));

/// Property: SeekInRange agrees with std::lower_bound on random data.
class TrieSeekTest : public ::testing::TestWithParam<int> {};

TEST_P(TrieSeekTest, MatchesLowerBound) {
  Rng rng{uint64_t(GetParam())};
  Relation r(Schema({0}));
  for (int i = 0; i < 1000; ++i) r.Append({Value(rng.Uniform(5000))});
  r.SortAndDedup();
  Trie t = Trie::Build(r);
  std::span<const Value> vals = t.values(0);
  for (int probe = 0; probe < 500; ++probe) {
    uint32_t lo = uint32_t(rng.Uniform(vals.size()));
    uint32_t hi = lo + uint32_t(rng.Uniform(vals.size() - lo + 1));
    Value v = Value(rng.Uniform(5200));
    uint32_t got = t.SeekInRange(0, {lo, hi}, v);
    uint32_t want = uint32_t(
        std::lower_bound(vals.begin() + lo, vals.begin() + hi, v) -
        vals.begin());
    EXPECT_EQ(got, want) << "lo=" << lo << " hi=" << hi << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieSeekTest, ::testing::Range(0, 8));

TEST(TrieTest, StorageValuesSmallerThanFlatForSharedPrefixes) {
  // Many repeated first columns => trie compresses level 0.
  Relation r(Schema({0, 1}));
  for (Value v = 0; v < 1000; ++v) r.Append({v % 10, v});
  r.SortAndDedup();
  Trie t = Trie::Build(r);
  EXPECT_LT(t.StorageValues(), 2 * r.size() + 100);
}

}  // namespace
}  // namespace adj::storage
