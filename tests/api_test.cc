#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "api/api.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/strategy_registry.h"
#include "dataset/generators.h"
#include "query/query.h"
#include "wcoj/naive_join.h"

namespace adj::api {
namespace {

constexpr char kTriangle[] = "G(a,b) G(b,c) G(a,c)";
constexpr char kPath[] = "G(a,b) G(b,c)";

Database SmallDatabase(uint64_t seed, uint64_t nodes = 30,
                       uint64_t edges = 150) {
  Rng rng(seed);
  Database db;
  db.AddRelation("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

Session FastSession(const Database& db) {
  Session session = db.OpenSession();
  session.options().cluster.num_servers = 4;
  session.options().num_samples = 64;
  return session;
}

uint64_t OracleCount(const Database& db, const std::string& text) {
  auto q = query::Query::Parse(text);
  EXPECT_TRUE(q.ok());
  auto joined = wcoj::NaiveJoin(*q, db.catalog());
  EXPECT_TRUE(joined.ok());
  return joined->size();
}

TEST(DatabaseTest, LoadBuiltinByName) {
  StatusOr<Database> db = Database::OpenBuiltin("WB", 0.02);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->catalog().Contains("G"));
  EXPECT_GT(db->total_tuples(), 0u);
  EXPECT_EQ(db->relation_names(), std::vector<std::string>{"G"});
}

TEST(DatabaseTest, UnknownBuiltinIsError) {
  EXPECT_FALSE(Database::OpenBuiltin("NOPE").ok());
}

TEST(DatabaseTest, RvalueDerefMovesOut) {
  // The documented one-liner: deref of an rvalue StatusOr moves the
  // move-only Database out.
  Database db = *Database::OpenBuiltin("WB", 0.02);
  EXPECT_TRUE(db.catalog().Contains("G"));
}

TEST(DatabaseTest, SessionKeepsCatalogAlive) {
  // Sessions share ownership of the catalog, so queries keep working
  // after the Database handle is gone.
  Session session = [] {
    Database db = SmallDatabase(11);
    Session s = db.OpenSession();
    s.options().num_samples = 64;
    return s;
  }();
  Result r = session.Run(kPath, "HCubeJ");
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r.count(), 0u);
}

TEST(SessionTest, RunAnswersUnderDefaultStrategy) {
  Database db = SmallDatabase(1);
  Session session = FastSession(db);
  Result r = session.Run(kTriangle);  // default strategy: ADJ
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.count(), OracleCount(db, kTriangle));
  EXPECT_EQ(r.strategy(), "ADJ");
  EXPECT_NE(r.ToString().find("strategy=ADJ"), std::string::npos);
}

TEST(SessionTest, UnknownRelationIsError) {
  Database db = SmallDatabase(2);
  Session session = FastSession(db);
  Result r = session.Run("Missing(a,b) Missing(b,c)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.count(), 0u);
}

TEST(SessionTest, MalformedQueryIsError) {
  Database db = SmallDatabase(3);
  Session session = FastSession(db);
  Result r = session.Run("G(a,b");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, UnknownStrategyIsError) {
  Database db = SmallDatabase(4);
  Session session = FastSession(db);
  Result r = session.Run(kTriangle, "NoSuchStrategy");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // The projecting path resolves the name the same way.
  Result projected = session.Run("G(a,b) G(b,c) | | a", "NoSuchStrategy");
  EXPECT_FALSE(projected.ok());
  EXPECT_EQ(projected.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, SelectionAndProjectionRun) {
  Database db = SmallDatabase(5, 40, 250);
  Session session = FastSession(db);
  Result all = session.Run(kPath, "HCubeJ");
  Result selected = session.Run("G(a,b) G(b,c) | a=1", "HCubeJ");
  Result projected = session.Run("G(a,b) G(b,c) | | a", "HCubeJ");
  ASSERT_TRUE(all.ok() && selected.ok() && projected.ok());
  EXPECT_LT(selected.count(), all.count());
  EXPECT_GT(selected.selection_filtered(), 0u);
  EXPECT_LE(projected.count(), all.count());
}

TEST(PreparedQueryTest, SecondRunSkipsPlanning) {
  Database db = SmallDatabase(6);
  Session session = FastSession(db);
  const uint64_t oracle = OracleCount(db, kTriangle);

  StatusOr<PreparedQuery> prepared = session.Prepare(kTriangle);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_GT(prepared->planning_seconds(), 0.0);
  EXPECT_FALSE(prepared->explanation().empty());

  Result first = prepared->Run();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first.count(), oracle);
  // The one-time planning cost is charged to the first run...
  EXPECT_GT(first.optimize_seconds(), 0.0);

  Result second = prepared->Run();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.count(), oracle);
  // ...and the second run re-executes the cached plan without any
  // plan search or sampling.
  EXPECT_EQ(second.optimize_seconds(), 0.0);
}

TEST(PreparedQueryTest, SecondRunReportsZeroPrecomputeAndCopyCost) {
  Database db = SmallDatabase(14, 40, 250);
  Session session = FastSession(db);
  StatusOr<PreparedQuery> prepared = session.Prepare("G(a,b) G(b,c) G(c,d)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  Result first = prepared->Run();
  ASSERT_TRUE(first.ok()) << first.status();
  Result second = prepared->Run();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.count(), first.count());

  // The execution context is cached at Prepare time: the second run
  // re-executes it with zero base-relation copies and zero bag
  // re-materialization, so every one-time field of its report — plan
  // search, pre-compute time, pre-compute shuffle volume — is zero.
  EXPECT_EQ(second.optimize_seconds(), 0.0);
  EXPECT_EQ(second.precompute_seconds(), 0.0);
  EXPECT_EQ(second.report().precompute_comm.bytes, 0u);
  EXPECT_EQ(second.report().precompute_comm.tuple_copies, 0u);
  // ...while the first run carries the whole one-time charge.
  EXPECT_GT(first.optimize_seconds(), 0.0);
  EXPECT_GE(first.precompute_seconds(), 0.0);
}

TEST(PreparedQueryTest, CopiesShareThePlanningCharge) {
  Database db = SmallDatabase(13);
  Session session = FastSession(db);
  StatusOr<PreparedQuery> prepared = session.Prepare(kTriangle);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  PreparedQuery copy = *prepared;  // e.g. handed to a worker thread
  Result first = prepared->Run();
  Result from_copy = copy.Run();
  ASSERT_TRUE(first.ok() && from_copy.ok());
  // The one-time planning cost is charged exactly once across copies.
  EXPECT_GT(first.optimize_seconds(), 0.0);
  EXPECT_EQ(from_copy.optimize_seconds(), 0.0);
}

TEST(PreparedQueryTest, PushesSelectionsDownAtPrepareTime) {
  Database db = SmallDatabase(7, 40, 250);
  Session session = FastSession(db);
  const char* kSelected = "G(a,b) G(b,c) | a=1";
  StatusOr<PreparedQuery> prepared = session.Prepare(kSelected);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  Result from_plan = prepared->Run();
  Result direct = session.Run(kSelected, "HCubeJ");
  ASSERT_TRUE(from_plan.ok() && direct.ok());
  EXPECT_EQ(from_plan.count(), direct.count());
  EXPECT_EQ(from_plan.selection_filtered(), direct.selection_filtered());
}

TEST(PreparedQueryTest, PlanningBudgetBoundsPrepare) {
  Database db = SmallDatabase(7, 40, 250);
  Session session = FastSession(db);
  // A budget no sampler pass can beat: Prepare must give up with
  // DeadlineExceeded instead of finishing late.
  session.options().num_samples = 1 << 22;
  session.options().planning_budget_seconds = 1e-4;
  StatusOr<PreparedQuery> bounded = session.Prepare(kTriangle);
  EXPECT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kDeadlineExceeded);

  // A zero budget fails before any work at all.
  session.options().planning_budget_seconds = 0.0;
  EXPECT_EQ(session.Prepare(kTriangle).status().code(),
            StatusCode::kDeadlineExceeded);

  // The default (infinite) budget is unchanged behavior.
  session.options().num_samples = 64;
  session.options().planning_budget_seconds =
      std::numeric_limits<double>::infinity();
  StatusOr<PreparedQuery> unbounded = session.Prepare(kTriangle);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status();
  Result r = unbounded->Run();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.count(), OracleCount(db, kTriangle));
}

TEST(PreparedQueryTest, ProperProjectionIsRejected) {
  Database db = SmallDatabase(8);
  Session session = FastSession(db);
  StatusOr<PreparedQuery> prepared = session.Prepare("G(a,b) G(b,c) | | a");
  EXPECT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kInvalidArgument);
}

TEST(PreparedQueryTest, DefaultConstructedRunFails) {
  PreparedQuery empty;
  EXPECT_FALSE(empty.Run().ok());
}

TEST(StrategyRegistryTest, PaperStrategiesRegisteredByDefault) {
  auto& registry = core::StrategyRegistry::Global();
  for (core::Strategy s : core::AllStrategies()) {
    EXPECT_TRUE(registry.Contains(core::StrategyName(s)))
        << core::StrategyName(s);
  }
  EXPECT_FALSE(registry.Contains("NoSuchStrategy"));
  StatusOr<core::StrategyFn> fn = registry.Find("NoSuchStrategy");
  EXPECT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), StatusCode::kNotFound);
}

TEST(StrategyRegistryTest, RuntimeRegisteredStrategyRunsByName) {
  // A strategy core knows nothing about: the naive oracle join,
  // plugged in by name without touching core::Strategy. The registry
  // is process-wide, so skip re-registration when this test repeats
  // (--gtest_repeat) in one process.
  Status registered =
      core::StrategyRegistry::Global().Contains("NaiveOracle")
          ? Status::OK()
          : core::StrategyRegistry::Global().Register(
                "NaiveOracle",
      [](core::Engine& engine, const query::Query& q,
         const core::EngineOptions& options) -> StatusOr<exec::RunReport> {
        WallTimer timer;
        StatusOr<storage::Relation> joined =
            wcoj::NaiveJoin(q, engine.db(), options.limits.max_extensions);
        exec::RunReport report;
        report.method = "NaiveOracle";
        if (!joined.ok()) {
          report.status = joined.status();
          return report;
        }
        report.output_count = joined->size();
        report.comp_s = timer.Seconds();
        return report;
      });
  ASSERT_TRUE(registered.ok()) << registered;

  Database db = SmallDatabase(9);
  Session session = FastSession(db);
  Result r = session.Run(kTriangle, "NaiveOracle");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.strategy(), "NaiveOracle");
  EXPECT_EQ(r.count(), OracleCount(db, kTriangle));

  // Names are unique: neither a plugin name nor a builtin can be
  // re-registered.
  auto reject = [](core::Engine&, const query::Query&,
                   const core::EngineOptions&) -> StatusOr<exec::RunReport> {
    return Status::Internal("never runs");
  };
  EXPECT_FALSE(
      core::StrategyRegistry::Global().Register("NaiveOracle", reject).ok());
  EXPECT_FALSE(core::StrategyRegistry::Global().Register("ADJ", reject).ok());
}

TEST(StrategyNameTest, RoundTripsThroughStrategyFromName) {
  for (core::Strategy s : core::AllStrategies()) {
    StatusOr<core::Strategy> parsed =
        core::StrategyFromName(core::StrategyName(s));
    ASSERT_TRUE(parsed.ok()) << core::StrategyName(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(core::StrategyFromName("nope").ok());
  EXPECT_FALSE(core::StrategyFromName("").ok());
}

TEST(RunBatchTest, MatchesSerialExecution) {
  Database db = SmallDatabase(10, 40, 250);
  Session session = FastSession(db);
  const std::vector<BatchQuery> batch = {
      {kTriangle, ""},  // session default (ADJ)
      {kPath, "HCubeJ"},
      {"G(a,b) G(b,c) G(c,d) G(d,a)", "SparkSQL"},
      {kTriangle, "BigJoin"},
      {"G(a,b) G(b,c) | a=1", "HCubeJ"},
      {"G(a,b", ""},  // parse error must stay index-aligned
  };

  std::vector<Result> concurrent = session.RunBatch(batch, /*threads=*/4);
  ASSERT_EQ(concurrent.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Result serial = batch[i].strategy.empty()
                        ? session.Run(batch[i].text)
                        : session.Run(batch[i].text, batch[i].strategy);
    EXPECT_EQ(concurrent[i].ok(), serial.ok()) << "query " << i;
    EXPECT_EQ(concurrent[i].count(), serial.count()) << "query " << i;
    EXPECT_EQ(concurrent[i].strategy(), serial.strategy()) << "query " << i;
  }
  EXPECT_FALSE(concurrent.back().ok());
}

TEST(RunBatchTest, EmptyBatchAndInlineThreads) {
  Database db = SmallDatabase(12);
  Session session = FastSession(db);
  EXPECT_TRUE(session.RunBatch({}).empty());
  // threads=1 executes inline; results must be identical in shape.
  std::vector<Result> results =
      session.RunBatch({{kPath, "HCubeJ"}}, /*threads=*/1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
}

}  // namespace
}  // namespace adj::api
