#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "query/query.h"
#include "serve/serve.h"
#include "wcoj/naive_join.h"

namespace adj::serve {
namespace {

constexpr char kTriangle[] = "G(a,b) G(b,c) G(a,c)";
constexpr char kPath[] = "G(a,b) G(b,c)";
constexpr char kSquare[] = "G(a,b) G(b,c) G(c,d) G(d,a)";

api::Database SmallDatabase(uint64_t seed, uint64_t nodes = 30,
                            uint64_t edges = 150) {
  Rng rng(seed);
  api::Database db;
  db.AddRelation("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

ServerOptions FastOptions() {
  ServerOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 16;
  options.cache_capacity = 8;
  options.engine.cluster.num_servers = 4;
  options.engine.num_samples = 64;
  return options;
}

uint64_t OracleCount(const api::Database& db, const std::string& text) {
  auto q = query::Query::Parse(text);
  EXPECT_TRUE(q.ok());
  auto joined = wcoj::NaiveJoin(*q, db.catalog());
  EXPECT_TRUE(joined.ok());
  return joined->size();
}

// AdmissionQueue policy coverage lives in admission_queue_test.cc.

// ---------------------------------------------------------------------------
// PreparedQueryCache: LRU + per-relation-version invalidation policy.
// Policy-only tests use empty PreparedQuery handles (no dependencies,
// so always fresh) against a scratch catalog; the invalidation tests
// use real prepared queries, whose dependency versions a WriteBatch
// moves.
// ---------------------------------------------------------------------------

TEST(PreparedQueryCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  storage::Catalog catalog;
  PreparedQueryCache cache(2);
  cache.Insert("q1", api::PreparedQuery());
  cache.Insert("q2", api::PreparedQuery());
  EXPECT_TRUE(cache.Lookup("q1", catalog).has_value());  // refreshes q1
  cache.Insert("q3", api::PreparedQuery());  // evicts q2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("q2", catalog).has_value());
  EXPECT_TRUE(cache.Lookup("q1", catalog).has_value());
  EXPECT_TRUE(cache.Lookup("q3", catalog).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PreparedQueryCacheTest, DependencyVersionMismatchHandsEntryBack) {
  api::Database db = SmallDatabase(20);
  api::Session session = db.OpenSession();
  session.options().num_samples = 64;
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kPath);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  PreparedQueryCache cache(4);
  cache.Insert("q", std::move(prepared.value()));
  EXPECT_TRUE(cache.Lookup("q", db.catalog()).has_value());

  // A write moves G's version: the entry must not be served — but it
  // is handed back for delta-cost re-preparation, not discarded.
  storage::WriteBatch batch;
  batch.Insert("G", {Value(100), Value(200)});
  ASSERT_TRUE(db.Apply(batch).ok());
  std::optional<api::PreparedQuery> stale;
  EXPECT_FALSE(cache.Lookup("q", db.catalog(), &stale).has_value());
  EXPECT_TRUE(stale.has_value());
  EXPECT_EQ(cache.size(), 0u);
  PreparedQueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PreparedQueryCacheTest, ZeroCapacityDisablesCaching) {
  storage::Catalog catalog;
  PreparedQueryCache cache(0);
  cache.Insert("q", api::PreparedQuery());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("q", catalog).has_value());
}

TEST(PreparedQueryCacheTest, InsertRaceFirstWinsAtSameVersions) {
  api::Database db = SmallDatabase(24);
  api::Session session = db.OpenSession();
  session.options().num_samples = 64;
  StatusOr<api::PreparedQuery> before = session.Prepare(kPath);
  ASSERT_TRUE(before.ok()) << before.status();

  PreparedQueryCache cache(4);
  cache.Insert("q", *before);
  cache.Insert("q", *before);  // racing worker's copy: same versions
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);

  // A post-write prepared query carries newer dependency versions and
  // replaces the stale entry instead.
  storage::WriteBatch batch;
  batch.Insert("G", {Value(300), Value(400)});
  ASSERT_TRUE(db.Apply(batch).ok());
  StatusOr<api::PreparedQuery> after = session.Reprepare(*before);
  ASSERT_TRUE(after.ok()) << after.status();
  cache.Insert("q", std::move(after.value()));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup("q", db.catalog()).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(PreparedQueryCacheTest, MemoryBudgetEvictsByBytesNotEntries) {
  api::Database db = SmallDatabase(21);
  api::Session session = db.OpenSession();
  session.options().num_samples = 64;
  StatusOr<api::PreparedQuery> p1 = session.Prepare(kPath);
  ASSERT_TRUE(p1.ok()) << p1.status();
  StatusOr<api::PreparedQuery> p2 = session.Prepare(kTriangle);
  ASSERT_TRUE(p2.ok()) << p2.status();
  const uint64_t b1 = p1->resident_bytes();
  const uint64_t b2 = p2->resident_bytes();
  ASSERT_GT(b1, 0u);
  ASSERT_GT(b2, 0u);

  // The entry cap would admit both; the byte budget holds only one —
  // the second insert evicts the first from the LRU tail.
  PreparedQueryCache cache(8, b1 + b2 - 1);
  cache.Insert(kPath, std::move(p1.value()));
  EXPECT_EQ(cache.resident_bytes(), b1);
  cache.Insert(kTriangle, std::move(p2.value()));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_bytes(), b2);
  EXPECT_FALSE(cache.Lookup(kPath, db.catalog()).has_value());
  EXPECT_TRUE(cache.Lookup(kTriangle, db.catalog()).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServerTest, IndexCacheBudgetIsAppliedToTheCatalog) {
  api::Database db = SmallDatabase(23);
  ServerOptions options = FastOptions();
  options.index_cache_budget_bytes = 1 << 20;
  Server server(std::move(db), options);
  EXPECT_EQ(server.database().catalog().index_cache().budget_bytes(),
            uint64_t(1) << 20);
  // Serving stays correct under the budget (artifacts in active use
  // are never evicted; evicted idle ones are rebuilt on demand).
  api::Result result = server.Execute(kPath);
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST(PreparedQueryCacheTest, OversizeEntryIsNeverCached) {
  api::Database db = SmallDatabase(22);
  api::Session session = db.OpenSession();
  session.options().num_samples = 64;
  StatusOr<api::PreparedQuery> prepared = session.Prepare(kPath);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  PreparedQueryCache cache(8, 1);  // 1-byte budget: nothing fits
  cache.Insert(kPath, std::move(prepared.value()));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
}

// ---------------------------------------------------------------------------
// Server end-to-end.
// ---------------------------------------------------------------------------

TEST(ServerTest, SecondRequestForSameTextIsFreeOfPlanningCost) {
  api::Database db = SmallDatabase(1);
  const uint64_t oracle = OracleCount(db, kTriangle);
  Server server(std::move(db), FastOptions());

  api::Result first = server.Execute(kTriangle);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first.count(), oracle);
  // The first request pays the one-time planning + pre-computation.
  EXPECT_GT(first.optimize_seconds(), 0.0);

  // Lexical variant: normalization maps it onto the same cache key.
  api::Result second = server.Execute("G(a,b)   G(b,c)  G(a,c)");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.count(), oracle);
  // Cache hit: no plan search, no sampling, no bag re-materialization.
  EXPECT_EQ(second.optimize_seconds(), 0.0);
  EXPECT_EQ(second.precompute_seconds(), 0.0);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.served, 2u);
}

TEST(ServerTest, CatalogReloadInvalidatesCachedPlan) {
  api::Database db = SmallDatabase(2);
  Server server(std::move(db), FastOptions());

  api::Result before = server.Execute(kTriangle);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(server.stats().cache.misses, 1u);

  // Replace "G" behind the server's back (quiesced): G's version moves,
  // so the cached plan must not be served — the old ExecutionContext
  // aliases the replaced relation and would return stale counts. The
  // stale entry is refreshed (plan reused, context rebuilt against the
  // new relation), not re-planned from scratch.
  server.Drain();
  Rng rng(99);
  server.database().AddRelation("G", dataset::ErdosRenyi(40, 300, rng));
  const uint64_t fresh_oracle = OracleCount(server.database(), kTriangle);

  api::Result after = server.Execute(kTriangle);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after.count(), fresh_oracle);
  // Refreshed via Reprepare: no plan search, no sampling.
  EXPECT_EQ(after.optimize_seconds(), 0.0);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.invalidations, 1u);
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.reprepared, 1u);
}

TEST(ServerTest, WriteInvalidatesOnlyPlansReadingTheWrittenRelation) {
  // Two relations, one cached plan over each. A live write to H must
  // leave G's cache entry untouched (still a pure hit) and refresh H's
  // at delta cost: no index rebuilds, only delta patches.
  Rng rng(31);
  api::Database db;
  db.AddRelation("G", dataset::ErdosRenyi(30, 150, rng));
  db.AddRelation("H", dataset::ErdosRenyi(30, 150, rng));
  ServerOptions options = FastOptions();
  // Single simulated server: shard fragments alias the bound indexes,
  // so the index_builds counter isolates real artifact construction.
  options.engine.cluster.num_servers = 1;
  Server server(std::move(db), options);

  const char* kG = "G(a,b) G(b,c)";
  const char* kH = "H(a,b) H(b,c)";
  ASSERT_TRUE(server.Execute(kG).ok());
  ASSERT_TRUE(server.Execute(kH).ok());

  // Live write — no Pause, no Drain.
  storage::WriteBatch batch;
  batch.Insert("H", {Value(100), Value(101)});
  batch.Insert("H", {Value(101), Value(102)});
  ASSERT_TRUE(server.Apply(batch).ok());

  // G's plan survives the write to H: cache hit, zero index work.
  api::Result g = server.Execute(kG);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g.optimize_seconds(), 0.0);
  EXPECT_EQ(g.index_builds(), 0u);
  EXPECT_EQ(g.index_patched(), 0u);

  // H's plan is refreshed at delta cost: the rerun rebuilds nothing —
  // its indexes are delta-patched from the pre-write artifacts. (The
  // oracle runs after the served request: it binds H through the same
  // shared index cache, and whichever consumer binds first performs —
  // and is charged — the one-time delta merge.)
  api::Result h = server.Execute(kH);
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h.count(), OracleCount(server.database(), kH));
  EXPECT_EQ(h.optimize_seconds(), 0.0);
  EXPECT_EQ(h.index_builds(), 0u);
  EXPECT_GT(h.index_patched(), 0u);
  EXPECT_GT(h.delta_rows_merged(), 0u);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.writes_applied, 1u);
  EXPECT_EQ(stats.reprepared, 1u);
  EXPECT_EQ(stats.cache.invalidations, 1u);  // H only — G survived
  EXPECT_EQ(stats.cache.hits, 1u);           // the post-write G request
}

TEST(ServerTest, DeadlineExceededIsADistinctError) {
  api::Database db = SmallDatabase(3);
  Server server(std::move(db), FastOptions());

  // Park the workers so the deadline expires while the request is
  // still queued — deterministic, no timing-sensitive join needed.
  server.Pause();
  StatusOr<std::future<api::Result>> future =
      server.Submit(kPath, {.deadline_seconds = 1e-3});
  ASSERT_TRUE(future.ok()) << future.status();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();

  api::Result late = future->get();
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().expired_in_queue, 1u);

  // A deadline too tight to meet surfaces the same code whether it
  // expires while still queued or mid-join (via JoinLimits).
  api::Result mid = server.Execute(kSquare, {.deadline_seconds = 1e-9});
  EXPECT_FALSE(mid.ok());
  EXPECT_EQ(mid.status().code(), StatusCode::kDeadlineExceeded);

  // ...and both are distinct from backpressure (ResourceExhausted) and
  // parse errors (InvalidArgument).
  EXPECT_NE(late.status().code(), StatusCode::kResourceExhausted);
}

TEST(ServerTest, HugeFiniteDeadlineMeansNoDeadline) {
  // 1e10 s (~317 years) must not overflow the steady_clock cast into
  // an instantly-expired deadline — it counts as "no deadline".
  Server server(SmallDatabase(9), FastOptions());
  api::Result r = server.Execute(kPath, {.deadline_seconds = 1e10});
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(server.stats().expired_in_queue, 0u);
}

TEST(ServerTest, QueueFullBackpressureRejectsWithResourceExhausted) {
  ServerOptions options = FastOptions();
  options.worker_threads = 1;
  options.queue_capacity = 3;
  Server server(SmallDatabase(4), options);

  server.Pause();
  std::vector<std::future<api::Result>> admitted;
  for (size_t i = 0; i < options.queue_capacity; ++i) {
    StatusOr<std::future<api::Result>> f = server.Submit(kPath);
    ASSERT_TRUE(f.ok()) << f.status();
    admitted.push_back(std::move(f.value()));
  }
  // Queue full: backpressure, not an exception and not a silent drop.
  StatusOr<std::future<api::Result>> rejected = server.Submit(kPath);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // A batch that doesn't fit is rejected whole (all-or-nothing)...
  server.Resume();
  server.Drain();
  server.Pause();
  ASSERT_TRUE(server.Submit(kPath).ok());
  StatusOr<std::vector<std::future<api::Result>>> batch =
      server.SubmitBatch({kPath, kPath, kPath});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
  // ...while one that fits is admitted.
  StatusOr<std::vector<std::future<api::Result>>> fits =
      server.SubmitBatch({kPath, kPath});
  EXPECT_TRUE(fits.ok()) << fits.status();
  server.Resume();
  server.Drain();

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u + 3u);
  // Every admitted request completed.
  EXPECT_EQ(stats.served + stats.failed, stats.accepted);
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
}

TEST(ServerTest, ParseErrorsAreRejectedWithoutAQueueSlot) {
  Server server(SmallDatabase(5), FastOptions());
  StatusOr<std::future<api::Result>> bad = server.Submit("G(a,b");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  StatusOr<std::vector<std::future<api::Result>>> batch =
      server.SubmitBatch({kPath, "G(a,b"});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected, 0u);  // parse errors are not backpressure
}

TEST(ServerTest, ProjectingQueriesFallBackToDirectExecution) {
  api::Database db = SmallDatabase(6, 40, 250);
  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 4;
  session.options().num_samples = 64;
  const char* kProjecting = "G(a,b) G(b,c) | | a";
  api::Result serial = session.Run(kProjecting);
  ASSERT_TRUE(serial.ok()) << serial.status();

  Server server(std::move(db), FastOptions());
  api::Result served = server.Execute(kProjecting);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(served.count(), serial.count());
  // No prepared plan exists for projections — the cache is untouched.
  EXPECT_EQ(server.stats().cache.misses, 0u);
  EXPECT_EQ(server.stats().cache.hits, 0u);
}

TEST(ServerTest, ConcurrentClientsMatchSerialSessionResults) {
  api::Database db = SmallDatabase(7, 40, 250);
  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 4;
  session.options().num_samples = 64;

  const std::vector<std::string> queries = {kTriangle, kPath, kSquare,
                                            "G(a,b) G(b,c) | a=1"};
  std::vector<uint64_t> serial_counts;
  for (const std::string& q : queries) {
    api::Result r = session.Run(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status();
    serial_counts.push_back(r.count());
  }

  ServerOptions options = FastOptions();
  options.worker_threads = 4;
  Server server(std::move(db), options);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 4;
  std::vector<std::thread> clients;
  std::vector<Status> failures(kClients, Status::OK());
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t qi = size_t(c + i) % queries.size();
        api::Result r = server.Execute(queries[qi]);
        if (!r.ok()) {
          failures[c] = r.status();
          return;
        }
        // Bitwise-identical to the serial Session::Run answer.
        if (r.count() != serial_counts[qi]) {
          failures[c] = Status::Internal(
              queries[qi] + ": served " + std::to_string(r.count()) +
              " != serial " + std::to_string(serial_counts[qi]));
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const Status& s : failures) EXPECT_TRUE(s.ok()) << s;

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, uint64_t(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.failed, 0u);
  // Each distinct query was prepared at most a handful of times
  // (concurrent first-misses may race), then served from cache.
  EXPECT_GT(stats.cache.hits, 0u);
}

// ---------------------------------------------------------------------------
// QoS: single-flight planning, deadline-bounded planning, weighted
// lanes (the serve-layer half; queue policy is admission_queue_test).
// ---------------------------------------------------------------------------

TEST(ServerTest, SixteenConcurrentColdMissesBuildExactlyOnePlan) {
  api::Database db = SmallDatabase(44, 40, 250);
  const uint64_t oracle = OracleCount(db, kTriangle);
  ServerOptions options = FastOptions();
  options.worker_threads = 4;
  options.queue_capacity = 32;
  Server server(std::move(db), options);

  constexpr int kThreads = 16;
  std::vector<std::thread> clients;
  std::vector<Status> failures(kThreads, Status::OK());
  std::vector<uint64_t> counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      api::Result r = server.Execute(kTriangle);
      if (!r.ok()) {
        failures[size_t(t)] = r.status();
      } else {
        counts[size_t(t)] = r.count();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const Status& s : failures) ASSERT_TRUE(s.ok()) << s;
  for (uint64_t c : counts) EXPECT_EQ(c, oracle);

  // Single-flight: 16 concurrent cold misses for one canonical key
  // share one Prepare — every other request either joined the build
  // in flight or hit the cache the build filled.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.plan_builds, 1u);
  EXPECT_EQ(stats.served, uint64_t(kThreads));
  EXPECT_GE(stats.plan_waits + stats.cache.hits, uint64_t(kThreads - 1));
}

TEST(ServerTest, DeadlineExpiredWhilePlanningIsDistinctAndAttributed) {
  ServerOptions options = FastOptions();
  // A sampling budget that would take seconds on this machine: the
  // 50ms deadline must expire inside Engine::Plan, not in the queue
  // and not mid-join.
  options.engine.num_samples = 1 << 22;
  Server server(SmallDatabase(43), options);

  api::Result r = server.Execute(kTriangle, {.deadline_seconds = 0.05});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // Distinct from backpressure (ResourceExhausted) and from a queue
  // expiry, and it names the phase that died.
  EXPECT_NE(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("planning"), std::string::npos)
      << r.status();
  // The burned planning time is attributed on the failed Result.
  EXPECT_GT(r.optimize_seconds(), 0.0);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired_in_queue, 0u);
  EXPECT_GE(stats.expired_planning, 1u);
  EXPECT_EQ(stats.plan_builds, 1u);
  EXPECT_EQ(stats.served, 0u);
}

TEST(ServerTest, FailedPlanBuildReleasesWaitersToRetry) {
  ServerOptions options = FastOptions();
  options.worker_threads = 4;
  Server server(SmallDatabase(45), options);

  // Parseable, plannable-looking, but the relation does not exist:
  // every Prepare fails. Failures must not be cached, must not wedge
  // the single-flight registry, and must release every waiter.
  const char* kUnknown = "Q(a,b) Q(b,c)";
  constexpr int kThreads = 8;
  std::vector<std::thread> clients;
  std::vector<Status> statuses(kThreads, Status::OK());
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back(
        [&, t] { statuses[size_t(t)] = server.Execute(kUnknown).status(); });
  }
  for (std::thread& t : clients) t.join();
  for (const Status& s : statuses) {
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kNotFound) << s;
  }

  ServerStats stats = server.stats();
  EXPECT_GE(stats.plan_builds, 1u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.failed, uint64_t(kThreads));
  // The registry is clean: the server still plans and serves.
  api::Result ok = server.Execute(kPath);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(ServerTest, ConcurrentApplyAndHotReadsMatchSerialOracle) {
  constexpr int kWrites = 8;
  // Identical twin databases: one served live, one advanced serially
  // as the oracle. Every count a reader observes under concurrent
  // writes must equal the oracle count of some write-prefix state —
  // the reader/writer lock guarantees no torn in-between states.
  api::Database served = SmallDatabase(41);
  api::Database replica = SmallDatabase(41);
  std::vector<uint64_t> oracle_counts = {OracleCount(replica, kPath)};
  std::vector<storage::WriteBatch> writes;
  for (int i = 0; i < kWrites; ++i) {
    storage::WriteBatch batch;
    const Value base = Value(1'000'000 + 10 * i);
    batch.Insert("G", {base, base + 1});
    batch.Insert("G", {base + 1, base + 2});
    ASSERT_TRUE(replica.Apply(batch).ok());
    oracle_counts.push_back(OracleCount(replica, kPath));
    writes.push_back(std::move(batch));
  }

  ServerOptions options = FastOptions();
  options.worker_threads = 4;
  Server server(std::move(served), options);
  ASSERT_TRUE(server.Execute(kPath).ok());  // warm the cached plan

  std::atomic<bool> stop{false};
  constexpr int kReaders = 3;
  std::vector<Status> reader_status(kReaders, Status::OK());
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        api::Result res = server.Execute(kPath);
        if (!res.ok()) {
          reader_status[size_t(r)] = res.status();
          return;
        }
        if (std::find(oracle_counts.begin(), oracle_counts.end(),
                      res.count()) == oracle_counts.end()) {
          reader_status[size_t(r)] = Status::Internal(
              "count " + std::to_string(res.count()) +
              " matches no serial write-prefix state");
          return;
        }
      }
    });
  }
  for (const storage::WriteBatch& batch : writes) {
    ASSERT_TRUE(server.Apply(batch).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  for (const Status& s : reader_status) EXPECT_TRUE(s.ok()) << s;

  // Quiesced, the served answer is exactly the serial end state.
  server.Drain();
  api::Result last = server.Execute(kPath);
  ASSERT_TRUE(last.ok()) << last.status();
  EXPECT_EQ(last.count(), oracle_counts.back());
  EXPECT_EQ(server.stats().writes_applied, uint64_t(kWrites));
}

TEST(ServerTest, WeightedLanesPerLaneStatsAndValidation) {
  ServerOptions options = FastOptions();
  options.lanes = {{"gold", 3, 0}, {"silver", 1, 0}, {"background", 0, 2}};
  Server server(SmallDatabase(42), options);

  // Default Submit lands on lane 0; RequestOptions::lane redirects.
  ASSERT_TRUE(server.Execute(kPath).ok());
  ASSERT_TRUE(server.Execute(kTriangle, {.lane = 1}).ok());
  StatusOr<std::vector<std::future<api::Result>>> batch =
      server.SubmitBatch({kPath, kPath}, {.lane = 2});
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (auto& f : *batch) EXPECT_TRUE(f.get().ok());

  // The background lane's own capacity (2) rejects a batch of 3 whole,
  // even though the total capacity has room.
  server.Pause();
  StatusOr<std::vector<std::future<api::Result>>> too_big =
      server.SubmitBatch({kPath, kPath, kPath}, {.lane = 2});
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
  server.Resume();
  server.Drain();

  // An out-of-range lane is an admission-time error, not a crash.
  StatusOr<std::future<api::Result>> bad = server.Submit(kPath, {.lane = 7});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  ServerStats stats = server.stats();
  ASSERT_EQ(stats.lanes.size(), 3u);
  EXPECT_EQ(stats.lanes[0].name, "gold");
  EXPECT_EQ(stats.lanes[1].name, "silver");
  EXPECT_EQ(stats.lanes[2].name, "background");
  EXPECT_EQ(stats.lanes[0].accepted, 1u);
  EXPECT_EQ(stats.lanes[1].accepted, 1u);
  EXPECT_EQ(stats.lanes[2].accepted, 2u);
  EXPECT_EQ(stats.lanes[2].rejected, 3u);
  EXPECT_EQ(stats.lanes[0].served + stats.lanes[1].served +
                stats.lanes[2].served,
            4u);
  EXPECT_EQ(stats.rejected, 3u);
}

TEST(ServerTest, DestructorFulfillsEveryAdmittedFuture) {
  std::vector<std::future<api::Result>> futures;
  {
    ServerOptions options = FastOptions();
    options.worker_threads = 1;
    Server server(SmallDatabase(8), options);
    server.Pause();
    for (int i = 0; i < 3; ++i) {
      StatusOr<std::future<api::Result>> f = server.Submit(kPath);
      ASSERT_TRUE(f.ok()) << f.status();
      futures.push_back(std::move(f.value()));
    }
    // Server destroyed with requests still queued: the drain-on-stop
    // contract says every admitted future is fulfilled first.
  }
  for (auto& f : futures) {
    api::Result r = f.get();
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_GT(r.count(), 0u);
  }
}

}  // namespace
}  // namespace adj::serve
