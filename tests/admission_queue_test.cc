// AdmissionQueue in isolation: capacity policy (total + per-lane,
// all-or-nothing boundaries), weighted round-robin fairness (exact
// per-cycle shares, starvation bound, oracle-checked random
// sequences), background lanes, and the empty-lane fallthrough
// regression. Split out of serve_test so the scheduling policy is
// covered without bringing up a server.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "serve/admission_queue.h"

namespace adj::serve {
namespace {

// ---------------------------------------------------------------------------
// Back-compat two-lane configuration (the original serve_test suite).
// ---------------------------------------------------------------------------

TEST(AdmissionQueueTest, RejectsWhenFullAcrossBothLanes) {
  AdmissionQueue<int> q(3);
  EXPECT_TRUE(q.TryPush(Lane::kSingle, 1));
  EXPECT_TRUE(q.TryPush(Lane::kBatch, 2));
  EXPECT_TRUE(q.TryPush(Lane::kBatch, 3));
  EXPECT_FALSE(q.TryPush(Lane::kSingle, 4));  // total bound, not per-lane
  EXPECT_FALSE(q.CanAccept(Lane::kSingle, 1));
  EXPECT_EQ(q.size(), 3u);
  q.Pop();
  EXPECT_TRUE(q.CanAccept(Lane::kSingle, 1));
  EXPECT_FALSE(q.CanAccept(Lane::kSingle, 2));
}

TEST(AdmissionQueueTest, PopAlternatesLanesWhenBothNonEmpty) {
  AdmissionQueue<int> q(8);
  // A batch admitted first must not starve the single lane.
  for (int i = 0; i < 4; ++i) q.TryPush(Lane::kBatch, 100 + i);
  q.TryPush(Lane::kSingle, 1);
  q.TryPush(Lane::kSingle, 2);

  std::vector<int> order;
  while (auto popped = q.Pop()) order.push_back(popped->first);
  ASSERT_EQ(order.size(), 6u);
  // Strict 1:1 interleaving while both lanes are non-empty (the queue
  // prefers the single lane first), then the batch remainder drains.
  EXPECT_EQ(order[0], Lane::kSingle);
  EXPECT_EQ(order[1], Lane::kBatch);
  EXPECT_EQ(order[2], Lane::kSingle);
  EXPECT_EQ(order[3], Lane::kBatch);
  EXPECT_EQ(order[4], Lane::kBatch);
  EXPECT_EQ(order[5], Lane::kBatch);
}

TEST(AdmissionQueueTest, FifoWithinOneLaneAndEmptyPop) {
  AdmissionQueue<int> q(4);
  q.TryPush(Lane::kSingle, 1);
  q.TryPush(Lane::kSingle, 2);
  q.TryPush(Lane::kSingle, 3);
  EXPECT_EQ(q.Pop()->second, 1);
  EXPECT_EQ(q.Pop()->second, 2);
  EXPECT_EQ(q.Pop()->second, 3);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.empty());
}

// Regression: serving in an empty lane's place must not hand the
// substitute lane a second consecutive turn. Scenario — the single
// lane is empty, so its turn falls through to the batch lane; a single
// item then arrives. The next pop belongs to the single lane (its
// priority was never consumed), not to batch again.
TEST(AdmissionQueueTest, EmptyLaneFallthroughDoesNotDoubleServe) {
  AdmissionQueue<int> q(8);
  q.TryPush(Lane::kBatch, 101);
  q.TryPush(Lane::kBatch, 102);

  auto first = q.Pop();  // single empty → falls through to batch
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, Lane::kBatch);
  EXPECT_EQ(first->second, 101);

  q.TryPush(Lane::kSingle, 1);
  auto second = q.Pop();  // single's turn was forfeited, not spent
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, Lane::kSingle);
  auto third = q.Pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->second, 102);
}

// ---------------------------------------------------------------------------
// N weighted lanes.
// ---------------------------------------------------------------------------

TEST(AdmissionQueueTest, WeightedSharesAreExactPerCycleWhileBacklogged) {
  AdmissionQueue<int> q(1024, {{"gold", 5, 0}, {"silver", 3, 0},
                               {"bronze", 1, 0}});
  ASSERT_EQ(q.num_lanes(), 3);
  constexpr int kCycles = 8;
  constexpr int kPerCycle = 5 + 3 + 1;
  for (int i = 0; i < kCycles * kPerCycle; ++i) {
    ASSERT_TRUE(q.TryPush(i % 3, i));
  }
  // While every lane stays backlogged, each cycle of 9 pops serves
  // exactly 5 gold, 3 silver, 1 bronze — and contiguously per turn.
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::map<int, int> per_lane;
    std::vector<int> lanes;
    for (int i = 0; i < kPerCycle; ++i) {
      auto popped = q.Pop();
      ASSERT_TRUE(popped.has_value());
      ++per_lane[popped->first];
      lanes.push_back(popped->first);
    }
    EXPECT_EQ(per_lane[0], 5) << "cycle " << cycle;
    EXPECT_EQ(per_lane[1], 3) << "cycle " << cycle;
    EXPECT_EQ(per_lane[2], 1) << "cycle " << cycle;
    EXPECT_EQ(lanes, (std::vector<int>{0, 0, 0, 0, 0, 1, 1, 1, 2}));
  }
}

// Starvation bound: the head item of a lane with weight > 0 is served
// within sum(other lanes' weights) + 1 pops of entering the head
// position, no matter how backlogged the other lanes are or where in
// the schedule it arrives.
TEST(AdmissionQueueTest, StarvationBoundHoldsAtEveryScheduleOffset) {
  constexpr uint32_t kWeightA = 5, kWeightB = 3, kWeightC = 1;
  constexpr int kBound = kWeightA + kWeightB + 1;  // other weights + self
  const int cycle = kWeightA + kWeightB + kWeightC;
  for (int offset = 0; offset < cycle; ++offset) {
    AdmissionQueue<int> q(1024, {{"a", kWeightA, 0},
                                 {"b", kWeightB, 0},
                                 {"c", kWeightC, 0}});
    for (int i = 0; i < 64; ++i) {
      q.TryPush(0, i);
      q.TryPush(1, 1000 + i);
    }
    // Walk the schedule to an arbitrary point, then enqueue the lone
    // low-weight item.
    for (int i = 0; i < offset; ++i) ASSERT_TRUE(q.Pop().has_value());
    q.TryPush(2, 9999);
    int waited = 0;
    for (;;) {
      auto popped = q.Pop();
      ASSERT_TRUE(popped.has_value());
      ++waited;
      if (popped->first == 2) break;
      ASSERT_LE(waited, kBound) << "offset " << offset;
    }
    EXPECT_LE(waited, kBound) << "offset " << offset;
  }
}

// Random push/pop sequences against an independently-formulated
// oracle: the weighted round-robin schedule flattened into a cyclic
// position list ("a" at positions 0..3, "b" at 4..5, "c" at 6), a
// pointer advancing one position per served item and skipping the
// positions of empty lanes. Both formulations must agree on every
// admission decision and every (lane, item) served.
TEST(AdmissionQueueTest, RandomSequencesMatchFlatScheduleOracle) {
  constexpr size_t kCapacity = 48;
  const std::vector<LaneConfig> lanes = {{"a", 4, 0}, {"b", 2, 0},
                                         {"c", 1, 0}};
  AdmissionQueue<int> q(kCapacity, lanes);

  // The oracle: flat cyclic schedule + plain FIFO deques.
  std::vector<int> schedule;
  for (size_t lane = 0; lane < lanes.size(); ++lane) {
    for (uint32_t w = 0; w < lanes[lane].weight; ++w) {
      schedule.push_back(int(lane));
    }
  }
  std::vector<std::deque<int>> oracle(lanes.size());
  size_t pointer = 0;
  auto oracle_size = [&] {
    size_t total = 0;
    for (const auto& lane : oracle) total += lane.size();
    return total;
  };
  auto oracle_pop = [&]() -> std::optional<std::pair<int, int>> {
    if (oracle_size() == 0) return std::nullopt;
    for (size_t scanned = 0; scanned <= 2 * schedule.size(); ++scanned) {
      const int lane = schedule[pointer];
      if (!oracle[size_t(lane)].empty()) {
        const int item = oracle[size_t(lane)].front();
        oracle[size_t(lane)].pop_front();
        pointer = (pointer + 1) % schedule.size();
        return std::make_pair(lane, item);
      }
      pointer = (pointer + 1) % schedule.size();
    }
    return std::nullopt;  // unreachable with all weights > 0
  };

  Rng rng(2024);
  int next_item = 0;
  for (int step = 0; step < 4000; ++step) {
    if (rng.Uniform(5) < 3) {
      const int lane = int(rng.Uniform(lanes.size()));
      const bool oracle_accepts = oracle_size() + 1 <= kCapacity;
      ASSERT_EQ(q.TryPush(lane, next_item), oracle_accepts) << "step " << step;
      if (oracle_accepts) oracle[size_t(lane)].push_back(next_item);
      ++next_item;
    } else {
      auto got = q.Pop();
      auto want = oracle_pop();
      ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
      if (got) {
        EXPECT_EQ(got->first, want->first) << "step " << step;
        EXPECT_EQ(got->second, want->second) << "step " << step;
      }
    }
  }
  // Drain to empty: the tails must agree item-for-item too.
  for (;;) {
    auto got = q.Pop();
    auto want = oracle_pop();
    ASSERT_EQ(got.has_value(), want.has_value());
    if (!got) break;
    EXPECT_EQ(got->first, want->first);
    EXPECT_EQ(got->second, want->second);
  }
}

TEST(AdmissionQueueTest, ZeroWeightLaneIsServedOnlyWhenWeightedLanesEmpty) {
  AdmissionQueue<int> q(16, {{"fg", 1, 0}, {"bg", 0, 0}});
  for (int i = 0; i < 3; ++i) q.TryPush(1, 100 + i);
  for (int i = 0; i < 3; ++i) q.TryPush(0, i);
  // All foreground first — background only scavenges idle capacity.
  for (int i = 0; i < 3; ++i) {
    auto popped = q.Pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->first, 0);
  }
  for (int i = 0; i < 3; ++i) {
    auto popped = q.Pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->first, 1);
    EXPECT_EQ(popped->second, 100 + i);  // FIFO preserved
  }
  // A queue whose every lane has weight 0 degrades to round-robin
  // rather than serving nothing.
  AdmissionQueue<int> all_bg(4, {{"x", 0, 0}, {"y", 0, 0}});
  all_bg.TryPush(0, 1);
  all_bg.TryPush(1, 2);
  EXPECT_TRUE(all_bg.Pop().has_value());
  EXPECT_TRUE(all_bg.Pop().has_value());
  EXPECT_FALSE(all_bg.Pop().has_value());
}

// ---------------------------------------------------------------------------
// Capacity: per-lane bounds and all-or-nothing boundaries.
// ---------------------------------------------------------------------------

TEST(AdmissionQueueTest, PerLaneCapacityBoundsOneLaneOnly) {
  AdmissionQueue<int> q(8, {{"single", 1, 0}, {"batch", 1, 3}});
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.TryPush(1, i));
  // The batch lane is at its own cap; the total (8) has room.
  EXPECT_FALSE(q.CanAccept(1, 1));
  EXPECT_FALSE(q.TryPush(1, 99));
  EXPECT_TRUE(q.TryPush(0, 0));
  // Popping a batch item reopens exactly that lane.
  while (auto popped = q.Pop()) {
    if (popped->first == 1) break;
  }
  EXPECT_TRUE(q.CanAccept(1, 1));
}

TEST(AdmissionQueueTest, AllOrNothingAdmissionAtExactCapacityBoundaries) {
  AdmissionQueue<int> q(8, {{"single", 1, 0}, {"batch", 1, 5}});
  // Exactly the per-lane cap fits; one more does not.
  EXPECT_TRUE(q.CanAccept(1, 5));
  EXPECT_FALSE(q.CanAccept(1, 6));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(1, i));
  // Exactly the remaining total fits on the unbounded lane; one more
  // does not — the all-or-nothing check a batch submit relies on.
  EXPECT_TRUE(q.CanAccept(0, 3));
  EXPECT_FALSE(q.CanAccept(0, 4));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.TryPush(0, i));
  EXPECT_FALSE(q.CanAccept(0, 1));
  EXPECT_FALSE(q.CanAccept(1, 1));
  EXPECT_EQ(q.size(), 8u);
  // Out-of-range lanes are rejected, never UB.
  EXPECT_FALSE(q.CanAccept(2, 1));
  EXPECT_FALSE(q.CanAccept(-1, 1));
  EXPECT_FALSE(q.TryPush(7, 1));
}

}  // namespace
}  // namespace adj::serve
