// Randomized cross-engine equivalence: random connected queries with
// mixed-arity atoms over *distinct* random relations, evaluated by
// every engine and compared against the NaiveJoin oracle. This is the
// widest net in the suite — any disagreement between the WCOJ,
// distributed, semi-join, or binary-join paths shows up here.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "exec/yannakakis.h"
#include "query/query.h"
#include "wcoj/naive_join.h"

namespace adj {
namespace {

struct RandomCase {
  query::Query query;
  storage::Catalog db;
};

/// Builds a random connected query of `num_atoms` atoms (arity 2–3)
/// over at most 5 attributes, each atom bound to its own random
/// relation.
RandomCase MakeRandomCase(uint64_t seed) {
  Rng rng(seed);
  const int num_attrs = 3 + int(rng.Uniform(3));  // 3..5
  const int num_atoms = 2 + int(rng.Uniform(4));  // 2..5

  std::vector<std::string> attr_names;
  for (int a = 0; a < num_attrs; ++a) {
    attr_names.push_back(std::string(1, char('a' + a)));
  }

  RandomCase out;
  std::vector<query::Atom> atoms;
  AttrMask covered = 0;
  for (int i = 0; i < num_atoms; ++i) {
    const int arity = 2 + int(rng.Uniform(2));  // 2..3
    std::vector<AttrId> attrs;
    // Keep the query connected: after the first atom, reuse at least
    // one covered attribute.
    if (covered != 0) {
      std::vector<AttrId> pool;
      for (int a = 0; a < num_attrs; ++a) {
        if (covered & (AttrMask(1) << a)) pool.push_back(a);
      }
      attrs.push_back(pool[rng.Uniform(pool.size())]);
    }
    while (static_cast<int>(attrs.size()) < arity) {
      AttrId a = AttrId(rng.Uniform(uint64_t(num_attrs)));
      bool dup = false;
      for (AttrId existing : attrs) {
        if (existing == a) dup = true;
      }
      if (!dup) attrs.push_back(a);
    }
    for (AttrId a : attrs) covered |= (AttrMask(1) << a);

    const std::string name = "R" + std::to_string(i);
    storage::Relation rel((storage::Schema(
        std::vector<AttrId>(attrs.begin(), attrs.end()))));
    const uint64_t rows = 40 + rng.Uniform(120);
    const uint64_t domain = 6 + rng.Uniform(14);
    for (uint64_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < attrs.size(); ++c) {
        row.push_back(Value(rng.Uniform(domain)));
      }
      rel.Append(row);
    }
    rel.SortAndDedup();
    out.db.Put(name, std::move(rel));
    atoms.push_back(query::Atom{name, storage::Schema(attrs)});
  }
  // Atoms covering fewer than all attrs are fine as long as every
  // attribute is used; drop unused attributes from the universe.
  std::vector<std::string> used_names;
  std::vector<query::Atom> remapped;
  std::vector<AttrId> remap(num_attrs, -1);
  for (int a = 0; a < num_attrs; ++a) {
    if (covered & (AttrMask(1) << a)) {
      remap[size_t(a)] = AttrId(used_names.size());
      used_names.push_back(attr_names[size_t(a)]);
    }
  }
  for (query::Atom& atom : atoms) {
    std::vector<AttrId> attrs;
    for (AttrId a : atom.schema.attrs()) attrs.push_back(remap[size_t(a)]);
    remapped.push_back(query::Atom{atom.relation, storage::Schema(attrs)});
  }
  out.query = query::Query::Make(used_names, remapped);
  return out;
}

class RandomQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryTest, AllEnginesAgreeWithOracle) {
  RandomCase c = MakeRandomCase(uint64_t(GetParam()) * 7919 + 13);
  auto naive = wcoj::NaiveJoin(c.query, c.db, 5'000'000);
  ASSERT_TRUE(naive.ok()) << naive.status();
  const uint64_t truth = naive->size();

  core::Engine engine(&c.db);
  core::EngineOptions opts;
  opts.cluster.num_servers = 3;
  opts.num_samples = 32;
  for (core::Strategy s :
       {core::Strategy::kCommFirst, core::Strategy::kCachedCommFirst,
        core::Strategy::kBinaryJoin, core::Strategy::kBigJoin,
        core::Strategy::kCoOpt}) {
    auto report = engine.Run(c.query, s, opts);
    ASSERT_TRUE(report.ok())
        << core::StrategyName(s) << ": " << report.status();
    ASSERT_TRUE(report->ok())
        << core::StrategyName(s) << ": " << report->status;
    EXPECT_EQ(report->output_count, truth)
        << core::StrategyName(s) << " on " << c.query.ToString();
  }
  // Yannakakis over the optimal GHD agrees too.
  auto yk = exec::YannakakisJoinAuto(c.query, c.db);
  ASSERT_TRUE(yk.ok());
  EXPECT_EQ(yk->size(), truth) << "Yannakakis on " << c.query.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace adj
