#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "exec/bigjoin.h"
#include "exec/binary_join.h"
#include "exec/hcubej.h"
#include "exec/precompute.h"
#include "ghd/decomposition.h"
#include "query/queries.h"
#include "wcoj/naive_join.h"

namespace adj::exec {
namespace {

storage::Catalog SmallDb(uint64_t seed, uint64_t nodes = 30,
                         uint64_t edges = 150) {
  Rng rng(seed);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

query::AttributeOrder Ascending(const query::Query& q) {
  query::AttributeOrder order;
  for (int a = 0; a < q.num_attrs(); ++a) order.push_back(a);
  return order;
}

TEST(HCubeJTest, MatchesNaiveAcrossQueries) {
  storage::Catalog db = SmallDb(3);
  dist::ClusterConfig cfg;
  cfg.num_servers = 4;
  for (int qi : {1, 2, 4, 5, 6, 10}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto naive = wcoj::NaiveJoin(*q, db);
    ASSERT_TRUE(naive.ok());
    dist::Cluster cluster(cfg);
    HCubeJParams params;
    auto run = RunHCubeJ(*q, db, Ascending(*q), params, &cluster);
    ASSERT_TRUE(run.ok()) << "Q" << qi;
    ASSERT_TRUE(run->report.ok()) << "Q" << qi;
    EXPECT_EQ(run->report.output_count, naive->size()) << "Q" << qi;
    EXPECT_GT(run->report.comm.tuple_copies, 0u);
  }
}

TEST(HCubeJTest, CollectsOutput) {
  storage::Catalog db = SmallDb(5);
  auto q = query::MakeBenchmarkQuery(1);
  dist::ClusterConfig cfg;
  cfg.num_servers = 4;
  dist::Cluster cluster(cfg);
  HCubeJParams params;
  params.collect_output = true;
  auto run = RunHCubeJ(*q, db, Ascending(*q), params, &cluster);
  ASSERT_TRUE(run.ok());
  storage::Relation collected = std::move(run->results);
  collected.SortAndDedup();
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(std::ranges::equal(collected.raw(), naive->raw()));
}

TEST(HCubeJTest, CachedVariantSameCount) {
  storage::Catalog db = SmallDb(7);
  auto q = query::MakeBenchmarkQuery(2);
  dist::ClusterConfig cfg;
  cfg.num_servers = 4;
  auto naive = wcoj::NaiveJoin(*q, db);
  dist::Cluster cluster(cfg);
  HCubeJParams params;
  params.use_cache = true;
  auto run = RunHCubeJ(*q, db, Ascending(*q), params, &cluster);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.ok());
  EXPECT_EQ(run->report.output_count, naive->size());
  EXPECT_EQ(run->report.method, "HCubeJ+Cache");
}

TEST(HCubeJTest, ShareOptimizedWhenUnset) {
  storage::Catalog db = SmallDb(9);
  auto q = query::MakeBenchmarkQuery(1);
  dist::ClusterConfig cfg;
  cfg.num_servers = 7;
  dist::Cluster cluster(cfg);
  HCubeJParams params;  // empty share => optimizer runs
  auto run = RunHCubeJ(*q, db, Ascending(*q), params, &cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->share_used.NumCubes(), 7u);
}

TEST(HCubeJTest, UnknownRelationFails) {
  storage::Catalog db;
  auto q = query::MakeBenchmarkQuery(1);
  dist::ClusterConfig cfg;
  dist::Cluster cluster(cfg);
  HCubeJParams params;
  auto run = RunHCubeJ(*q, db, Ascending(*q), params, &cluster);
  EXPECT_FALSE(run.ok());
}

TEST(HCubeJTest, MemoryFailureSurfacesInReport) {
  storage::Catalog db = SmallDb(11, 200, 3000);
  auto q = query::MakeBenchmarkQuery(1);
  dist::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.memory_per_server_bytes = 256;  // far too small
  dist::Cluster cluster(cfg);
  HCubeJParams params;
  auto run = RunHCubeJ(*q, db, Ascending(*q), params, &cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->report.ok());
  EXPECT_EQ(run->report.status.code(), StatusCode::kResourceExhausted);
}

TEST(BinaryJoinTest, MatchesNaive) {
  storage::Catalog db = SmallDb(13);
  dist::ClusterConfig cfg;
  cfg.num_servers = 4;
  for (int qi : {1, 2, 7, 9, 10}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto naive = wcoj::NaiveJoin(*q, db);
    ASSERT_TRUE(naive.ok());
    dist::Cluster cluster(cfg);
    auto report = RunBinaryJoin(*q, db, &cluster);
    ASSERT_TRUE(report.ok()) << "Q" << qi;
    ASSERT_TRUE(report->ok()) << "Q" << qi;
    EXPECT_EQ(report->output_count, naive->size()) << "Q" << qi;
    EXPECT_EQ(report->rounds, uint64_t(q->num_atoms() - 1));
  }
}

TEST(BinaryJoinTest, ShufflesIntermediates) {
  storage::Catalog db = SmallDb(15, 60, 500);
  auto q = query::MakeBenchmarkQuery(2);
  dist::ClusterConfig cfg;
  dist::Cluster cluster(cfg);
  auto report = RunBinaryJoin(*q, db, &cluster);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  // Multi-round methods shuffle more than the input size: intermediate
  // results re-enter the network each round.
  const uint64_t input = (*db.Get("G"))->size();
  EXPECT_GT(report->comm.tuple_copies, input);
}

TEST(BinaryJoinTest, RowLimitEmulatesOom) {
  storage::Catalog db = SmallDb(17, 100, 1500);
  auto q = query::MakeBenchmarkQuery(4);
  dist::ClusterConfig cfg;
  dist::Cluster cluster(cfg);
  wcoj::JoinLimits limits;
  limits.max_materialized_rows = 100;
  auto report = RunBinaryJoin(*q, db, &cluster, limits);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->status.code(), StatusCode::kResourceExhausted);
}

TEST(BigJoinTest, MatchesNaive) {
  storage::Catalog db = SmallDb(19);
  dist::ClusterConfig cfg;
  cfg.num_servers = 4;
  for (int qi : {1, 2, 4, 10}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto naive = wcoj::NaiveJoin(*q, db);
    ASSERT_TRUE(naive.ok());
    dist::Cluster cluster(cfg);
    auto report = RunBigJoin(*q, db, Ascending(*q), &cluster);
    ASSERT_TRUE(report.ok()) << "Q" << qi;
    ASSERT_TRUE(report->ok()) << "Q" << qi;
    EXPECT_EQ(report->output_count, naive->size()) << "Q" << qi;
    EXPECT_EQ(report->rounds, uint64_t(q->num_attrs()));
  }
}

TEST(BigJoinTest, ShufflesBindingsEveryRound) {
  storage::Catalog db = SmallDb(21, 60, 600);
  auto q = query::MakeBenchmarkQuery(1);
  dist::ClusterConfig cfg;
  dist::Cluster cluster(cfg);
  auto report = RunBigJoin(*q, db, Ascending(*q), &cluster);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_GT(report->comm.tuple_copies, report->output_count);
}

TEST(BigJoinTest, RowLimitEmulatesExplosion) {
  storage::Catalog db = SmallDb(23, 150, 2500);
  auto q = query::MakeBenchmarkQuery(3);  // 5-clique: binding explosion
  dist::ClusterConfig cfg;
  dist::Cluster cluster(cfg);
  wcoj::JoinLimits limits;
  limits.max_materialized_rows = 200;
  auto report = RunBigJoin(*q, db, Ascending(*q), &cluster, limits);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(PrecomputeTest, MaterializedBagEqualsNaiveSubJoin) {
  storage::Catalog db = SmallDb(25);
  auto q = *query::Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  storage::Catalog db5;
  {
    Rng rng(25);
    storage::Relation g = dataset::ErdosRenyi(30, 150, rng);
    for (const char* name : {"R1", "R2", "R3", "R4", "R5"}) {
      // R1 is ternary; bind it to a 3-column relation built from G.
      if (std::string(name) == "R1") {
        storage::Relation r1(storage::Schema({0, 1, 2}));
        for (uint64_t i = 0; i + 1 < g.size(); i += 2) {
          r1.Append({g.At(i, 0), g.At(i, 1), g.At(i + 1, 1)});
        }
        r1.SortAndDedup();
        db5.Put(name, std::move(r1));
      } else {
        db5.Put(name, g);
      }
    }
  }
  auto d = *ghd::FindOptimalGhd(q);
  dist::ClusterConfig cfg;
  cfg.num_servers = 4;
  dist::Cluster cluster(cfg);
  for (int v = 0; v < d.num_bags(); ++v) {
    if (d.bags[size_t(v)].IsSingleAtom()) continue;
    auto bag = MaterializeBag(q, db5, d.bags[size_t(v)], &cluster, {});
    ASSERT_TRUE(bag.ok());
    // Oracle: naive join of the bag's atoms.
    std::vector<query::Atom> atoms;
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (d.bags[size_t(v)].atoms & (AtomMask(1) << i)) {
        atoms.push_back(q.atom(i));
      }
    }
    auto sub = query::Query::Make(q.attr_names(), atoms);
    auto naive = wcoj::NaiveJoin(sub, db5);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(bag->rel.size(), naive->size());
    EXPECT_TRUE(std::ranges::equal(bag->rel.raw(), naive->raw()));
    EXPECT_GT(bag->comm.tuple_copies, 0u);
  }
}

TEST(RewriteTest, BagAtomsReplaceCoveredAtoms) {
  auto q = *query::Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  auto d = *ghd::FindOptimalGhd(q);
  std::vector<bool> pre(d.num_bags(), false);
  int chosen = -1;
  for (int v = 0; v < d.num_bags(); ++v) {
    if (!d.bags[size_t(v)].IsSingleAtom()) {
      pre[size_t(v)] = true;
      chosen = v;
      break;
    }
  }
  ASSERT_GE(chosen, 0);
  RewrittenQuery rw = RewriteWithBags(q, d, pre);
  EXPECT_EQ(rw.bag_atoms.size(), 1u);
  // Atom count shrinks by (bag size - 1).
  const int bag_atoms = PopCount(d.bags[size_t(chosen)].atoms);
  EXPECT_EQ(rw.query.num_atoms(), q.num_atoms() - bag_atoms + 1);
  // All attributes still covered.
  AttrMask covered = 0;
  for (const query::Atom& atom : rw.query.atoms()) {
    covered |= atom.schema.Mask();
  }
  EXPECT_EQ(covered, q.AllAttrs());
}

TEST(RewriteTest, NoPrecomputeIsIdentity) {
  auto q = *query::Query::Parse("R(a,b) S(b,c)");
  auto d = *ghd::FindOptimalGhd(q);
  std::vector<bool> pre(d.num_bags(), false);
  RewrittenQuery rw = RewriteWithBags(q, d, pre);
  EXPECT_EQ(rw.query.num_atoms(), q.num_atoms());
  EXPECT_TRUE(rw.bag_atoms.empty());
}

TEST(RunReportTest, ToStringFormats) {
  RunReport r;
  r.method = "X";
  r.output_count = 5;
  EXPECT_NE(r.ToString().find("X"), std::string::npos);
  r.status = Status::ResourceExhausted("boom");
  EXPECT_NE(r.ToString().find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace adj::exec
