#include <gtest/gtest.h>

#include <algorithm>

#include "ghd/decomposition.h"
#include "ghd/fractional_edge_cover.h"
#include "ghd/simplex.h"
#include "query/queries.h"
#include "query/query.h"

namespace adj::ghd {
namespace {

using query::Query;

TEST(SimplexTest, SolvesTinyLp) {
  // min x0 + x1  s.t. x0 + x1 >= 1, x0 >= 0.3.
  LinearProgram lp;
  lp.c = {1.0, 1.0};
  lp.a = {{1.0, 1.0}, {1.0, 0.0}};
  lp.b = {1.0, 0.3};
  auto sol = SolveMinCover(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1.0, 1e-6);
}

TEST(SimplexTest, FractionalOptimum) {
  // Triangle cover LP: three vars, each pair covers one vertex.
  LinearProgram lp;
  lp.c = {1.0, 1.0, 1.0};
  lp.a = {{1, 0, 1}, {1, 1, 0}, {0, 1, 1}};
  lp.b = {1.0, 1.0, 1.0};
  auto sol = SolveMinCover(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1.5, 1e-6);
  for (double x : sol->x) EXPECT_NEAR(x, 0.5, 1e-6);
}

TEST(FecTest, SingleEdge) {
  auto cover = FractionalEdgeCover(0b11, {0b11});
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->rho, 1.0, 1e-6);
}

TEST(FecTest, TriangleIsThreeHalves) {
  auto cover = FractionalEdgeCover(0b111, {0b011, 0b110, 0b101});
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->rho, 1.5, 1e-6);
}

TEST(FecTest, FourCycleIsTwo) {
  auto cover = FractionalEdgeCover(0b1111, {0b0011, 0b0110, 0b1100, 0b1001});
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->rho, 2.0, 1e-6);
}

TEST(FecTest, FourCliqueIsTwo) {
  auto q = query::MakeBenchmarkQuery(2);
  query::Hypergraph h(*q);
  auto cover = FractionalEdgeCover(q->AllAttrs(), h.edges());
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->rho, 2.0, 1e-6);
}

TEST(FecTest, FiveCliqueIsFiveHalves) {
  auto q = query::MakeBenchmarkQuery(3);
  query::Hypergraph h(*q);
  auto cover = FractionalEdgeCover(q->AllAttrs(), h.edges());
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->rho, 2.5, 1e-6);
}

TEST(FecTest, UncoveredVertexFails) {
  EXPECT_FALSE(FractionalEdgeCover(0b111, {0b011}).ok());
}

TEST(GhdTest, PaperExampleDecomposition) {
  // Q of Eq. (2): R1(a,b,c), R2(a,d), R3(c,d), R4(b,e), R5(c,e).
  auto q = Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  ASSERT_TRUE(q.ok());
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  // The paper's T: three bags {R1}, {R2,R3}, {R4,R5}, width 2.
  EXPECT_EQ(d->num_bags(), 3);
  EXPECT_NEAR(d->width, 2.0, 1e-6);
  // One bag must be exactly {R1} (single atom), the others pairs.
  int singles = 0, pairs = 0;
  for (const Bag& bag : d->bags) {
    if (PopCount(bag.atoms) == 1) ++singles;
    if (PopCount(bag.atoms) == 2) ++pairs;
  }
  EXPECT_EQ(singles, 1);
  EXPECT_EQ(pairs, 2);
}

TEST(GhdTest, AcyclicQueryGetsSingletonBags) {
  auto q = Query::Parse("R(a,b) S(b,c) T(c,d)");
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_bags(), 3);
  EXPECT_NEAR(d->width, 1.0, 1e-6);
  for (const Bag& bag : d->bags) EXPECT_TRUE(bag.IsSingleAtom());
}

TEST(GhdTest, TriangleIsOneBag) {
  auto q = query::MakeBenchmarkQuery(1);
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  // No grouping of a triangle is acyclic except the single bag.
  EXPECT_EQ(d->num_bags(), 1);
  EXPECT_NEAR(d->width, 1.5, 1e-6);
}

TEST(GhdTest, RunningIntersectionHolds) {
  for (int qi : {2, 4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto d = FindOptimalGhd(*q);
    ASSERT_TRUE(d.ok()) << "Q" << qi;
    // Every attribute must induce a connected subtree of the join tree.
    for (int a = 0; a < q->num_attrs(); ++a) {
      uint32_t with_a = 0;
      for (int v = 0; v < d->num_bags(); ++v) {
        if (d->bags[size_t(v)].attrs & (AttrMask(1) << a)) with_a |= 1u << v;
      }
      ASSERT_NE(with_a, 0u);
      // BFS over tree restricted to with_a.
      uint32_t visited = 1u << LowestBit(with_a);
      bool grew = true;
      while (grew) {
        grew = false;
        for (int v = 0; v < d->num_bags(); ++v) {
          if ((with_a & (1u << v)) == 0 || (visited & (1u << v))) continue;
          for (int u : d->Neighbors(v)) {
            if (visited & (1u << u)) {
              visited |= 1u << v;
              grew = true;
              break;
            }
          }
        }
      }
      EXPECT_EQ(visited, with_a) << "Q" << qi << " attr " << a;
    }
  }
}

TEST(GhdTest, BagsCoverAllAtoms) {
  for (int qi = 1; qi <= 11; ++qi) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto d = FindOptimalGhd(*q);
    ASSERT_TRUE(d.ok()) << "Q" << qi;
    AtomMask all = 0;
    for (const Bag& bag : d->bags) {
      EXPECT_EQ(all & bag.atoms, 0u) << "bags overlap";
      all |= bag.atoms;
    }
    EXPECT_EQ(all, (AtomMask(1) << q->num_atoms()) - 1);
  }
}

TEST(TraversalTest, PathTreeTraversals) {
  auto q = Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  auto orders = TraversalOrders(*d);
  // Every traversal keeps a connected prefix.
  for (const auto& t : orders) {
    EXPECT_EQ(t.size(), size_t(d->num_bags()));
  }
  EXPECT_GE(orders.size(), 2u);
  // All traversals distinct.
  auto sorted = orders;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ValidOrderTest, PaperExampleValidAndInvalid) {
  auto q = Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  // Sec. III-A: a<b<c<d<e is valid; a<b<e<d<c is invalid.
  EXPECT_TRUE(IsValidOrder(*d, *q, {0, 1, 2, 3, 4}));
  EXPECT_FALSE(IsValidOrder(*d, *q, {0, 1, 4, 3, 2}));
}

TEST(ValidOrderTest, ValidOrdersAreSubsetOfAll) {
  for (int qi : {4, 5, 6}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto d = FindOptimalGhd(*q);
    ASSERT_TRUE(d.ok());
    auto valid = ValidAttributeOrders(*d, *q);
    ASSERT_FALSE(valid.empty()) << "Q" << qi;
    auto all = query::AllOrders(q->AllAttrs());
    EXPECT_LE(valid.size(), all.size());
    for (const auto& o : valid) {
      EXPECT_TRUE(IsValidOrder(*d, *q, o)) << "Q" << qi;
    }
  }
}

TEST(ValidOrderTest, SegmentsPartitionOrder) {
  auto q = Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  auto segs = OrderBagSegments(*d, *q, {0, 1, 2, 3, 4});
  ASSERT_FALSE(segs.empty());
  int total = 0;
  for (int s : segs) total += s;
  EXPECT_EQ(total, 5);
}

TEST(ValidOrderTest, SingleBagAcceptsEverything) {
  auto q = query::MakeBenchmarkQuery(1);
  auto d = FindOptimalGhd(*q);
  ASSERT_TRUE(d.ok());
  for (const auto& o : query::AllOrders(q->AllAttrs())) {
    EXPECT_TRUE(IsValidOrder(*d, *q, o));
  }
}

}  // namespace
}  // namespace adj::ghd
