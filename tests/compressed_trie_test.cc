// Compressed trie storage: the block codec (delta+vbyte/bitpack with
// per-block skip metadata), Trie::Compress equivalence against the raw
// representation (ValueAt / Seek / Find, force mode covering the root
// level), PatchFrom over compressed predecessors (touched-block
// re-encode + MaxRangeWidth recompute), FromMapped validation of
// untrusted compressed segments, and the cross-engine property: every
// strategy returns bit-identical counts over raw, compressed, and
// snapshot-mapped compressed tries. Runs under the ASan/UBSan CI leg
// like the rest of the suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.h"
#include "common/rng.h"
#include "core/engine.h"
#include "persist/snapshot.h"
#include "query/query.h"
#include "storage/block_codec.h"
#include "storage/catalog.h"
#include "storage/index_cache.h"
#include "storage/relation.h"
#include "storage/trie.h"
#include "storage/write_batch.h"
#include "wcoj/naive_join.h"

namespace adj {
namespace {

namespace bc = storage::blockcodec;
using storage::Relation;
using storage::Schema;
using storage::Trie;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A concatenation of strictly increasing runs with negative deltas at
/// every run boundary — the exact shape of a deep trie level.
std::vector<Value> MultiRunLevel(Rng& rng, int runs, uint32_t max_run) {
  std::vector<Value> out;
  for (int r = 0; r < runs; ++r) {
    const uint32_t len = 1 + uint32_t(rng.Uniform(max_run));
    Value v = Value(rng.Uniform(50));
    for (uint32_t i = 0; i < len; ++i) {
      v += 1 + Value(rng.Uniform(9));
      out.push_back(v);
    }
  }
  return out;
}

std::vector<Value> DecodeAll(const bc::CompressedLevelView& v) {
  std::vector<Value> out;
  Value buf[bc::kBlockValues];
  for (uint32_t b = 0; b < v.num_blocks(); ++b) {
    const uint32_t n = bc::DecodeBlock(v, b, buf);
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

TEST(BlockCodecTest, RoundTripsRunsWithNegativeBoundaryDeltas) {
  Rng rng(101);
  for (int round = 0; round < 30; ++round) {
    // Sizes straddle block boundaries: empty, sub-block, exact
    // multiples, and a partial final block.
    const std::vector<Value> level = MultiRunLevel(rng, int(rng.Uniform(40)),
                                                   1 + uint32_t(rng.Uniform(90)));
    bc::CompressedLevel enc;
    bc::EncodeLevel(level, &enc);
    ASSERT_TRUE(bc::ValidateCompressedLevel(enc.View()).ok());
    EXPECT_EQ(enc.size, level.size());
    EXPECT_EQ(DecodeAll(enc.View()), level);
    // Skip table invariant: mins[b] is the value at position b*B.
    for (uint32_t b = 0; b < enc.View().num_blocks(); ++b) {
      EXPECT_EQ(enc.mins[b], level[size_t(b) * bc::kBlockValues]);
    }
  }
}

TEST(BlockCodecTest, EncoderIsDeterministicAndTailSplices) {
  Rng rng(202);
  const std::vector<Value> level = MultiRunLevel(rng, 25, 60);
  bc::CompressedLevel a, b;
  bc::EncodeLevel(level, &a);
  bc::EncodeLevel(level, &b);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.mins, b.mins);
  EXPECT_EQ(a.starts, b.starts);

  // Re-encoding only the tail over an untouched prefix must reproduce
  // the full encoding byte for byte — the property PatchFrom leans on
  // to splice prefix blocks verbatim.
  const uint32_t from = a.View().num_blocks() / 2;
  bc::CompressedLevel spliced;
  spliced.mins.assign(a.mins.begin(), a.mins.begin() + from);
  spliced.starts.assign(a.starts.begin(), a.starts.begin() + from + 1);
  spliced.bytes.assign(a.bytes.begin(), a.bytes.begin() + a.starts[from]);
  bc::EncodeLevelTail(level, from, &spliced);
  EXPECT_EQ(spliced.bytes, a.bytes);
  EXPECT_EQ(spliced.mins, a.mins);
  EXPECT_EQ(spliced.starts, a.starts);
  EXPECT_EQ(spliced.size, a.size);
}

TEST(BlockCodecTest, PicksBitpackForNarrowDeltasAndBeatsRaw) {
  // Dense level: deltas of 1..4 bit-pack far below 4 bytes/value.
  std::vector<Value> level;
  Value v = 0;
  Rng rng(303);
  for (int i = 0; i < 4096; ++i) {
    v += 1 + Value(rng.Uniform(4));
    level.push_back(v);
  }
  bc::CompressedLevel enc;
  bc::EncodeLevel(level, &enc);
  EXPECT_LT(enc.ResidentBytes(), level.size() * sizeof(Value) / 2);
  EXPECT_EQ(DecodeAll(enc.View()), level);
}

TEST(BlockCodecTest, ValidationRejectsCorruptedStructure) {
  Rng rng(404);
  const std::vector<Value> level = MultiRunLevel(rng, 20, 50);
  bc::CompressedLevel enc;
  bc::EncodeLevel(level, &enc);
  ASSERT_GE(enc.View().num_blocks(), 2u);

  {  // Non-monotone starts.
    bc::CompressedLevel bad = enc;
    std::swap(bad.starts[1], bad.starts[2]);
    EXPECT_FALSE(bc::ValidateCompressedLevel(bad.View()).ok());
  }
  {  // Truncated payload.
    bc::CompressedLevel bad = enc;
    bad.bytes.resize(bad.bytes.size() / 2);
    EXPECT_FALSE(bc::ValidateCompressedLevel(bad.View()).ok());
  }
  {  // Skip table / size mismatch.
    bc::CompressedLevel bad = enc;
    bad.mins.pop_back();
    EXPECT_FALSE(bc::ValidateCompressedLevel(bad.View()).ok());
  }
  {  // starts pointing past the payload.
    bc::CompressedLevel bad = enc;
    bad.starts.back() = uint32_t(bad.bytes.size()) + 7;
    EXPECT_FALSE(bc::ValidateCompressedLevel(bad.View()).ok());
  }
}

/// A random binary relation big enough that the default density
/// heuristic compresses its deep level.
Relation BigGraph(Rng& rng, uint64_t rows, uint64_t domain) {
  Relation rel((Schema({0, 1})));
  for (uint64_t r = 0; r < rows; ++r) {
    rel.Append({Value(rng.Uniform(domain)), Value(rng.Uniform(domain))});
  }
  rel.SortAndDedup();
  return rel;
}

TEST(CompressedTrieTest, ForceCompressedProbesMatchRawEverywhere) {
  Rng rng(505);
  for (int round = 0; round < 8; ++round) {
    Relation rel((Schema({0, 1, 2})));
    const uint64_t rows = 200 + rng.Uniform(800);
    for (uint64_t r = 0; r < rows; ++r) {
      rel.Append({Value(rng.Uniform(12)), Value(rng.Uniform(30)),
                  Value(rng.Uniform(40))});
    }
    rel.SortAndDedup();
    const Trie raw = Trie::Build(rel);
    const Trie comp =
        Trie::Compress(Trie::Build(rel), Trie::CompressOptions{.force = true});
    ASSERT_TRUE(comp.any_compressed());
    ASSERT_EQ(comp.arity(), raw.arity());
    for (int l = 0; l < raw.arity(); ++l) {
      // Force mode compresses every non-empty level, the root included.
      EXPECT_TRUE(comp.level_compressed(l)) << "level " << l;
      ASSERT_EQ(comp.LevelSize(l), raw.LevelSize(l));
      std::vector<Value> decoded;
      comp.DecodeLevelInto(l, &decoded);
      const std::span<const Value> rawvals = raw.LevelSpan(l);
      ASSERT_TRUE(
          std::equal(decoded.begin(), decoded.end(), rawvals.begin(),
                     rawvals.end()))
          << "level " << l;
      // Random probes: ValueAt / SeekInRange / FindInRange agree on
      // random sub-ranges, with and without a decode cache.
      bc::DecodeCache cache;
      const uint32_t size = uint32_t(raw.LevelSize(l));
      for (int probe = 0; probe < 200; ++probe) {
        const uint32_t idx = uint32_t(rng.Uniform(size));
        ASSERT_EQ(comp.ValueAt(l, idx), raw.ValueAt(l, idx));
        ASSERT_EQ(comp.ValueAt(l, idx, &cache), raw.ValueAt(l, idx));
        // Probe a genuine sibling range (random sub-range of a random
        // parent's children; the root range for level 0) — Seek/Find
        // are only defined over sorted runs.
        Trie::Range r = l == 0 ? raw.RootRange()
                               : raw.ChildRange(
                                     l - 1, uint32_t(rng.Uniform(
                                                raw.LevelSize(l - 1))));
        if (!r.empty() && rng.Uniform(2) == 0) {
          r.lo += uint32_t(rng.Uniform(r.size()));
          r.hi -= uint32_t(rng.Uniform(r.hi - r.lo));
        }
        const Value v = Value(rng.Uniform(64));
        ASSERT_EQ(comp.SeekInRange(l, r, v), raw.SeekInRange(l, r, v));
        ASSERT_EQ(comp.SeekInRange(l, r, v, &cache),
                  raw.SeekInRange(l, r, v));
        ASSERT_EQ(comp.FindInRange(l, r, v), raw.FindInRange(l, r, v));
        ASSERT_EQ(comp.FindInRange(l, r, v, &cache),
                  raw.FindInRange(l, r, v));
      }
      EXPECT_EQ(comp.MaxRangeWidth(l), raw.MaxRangeWidth(l));
    }
    EXPECT_EQ(comp.NumTuples(), raw.NumTuples());
  }
}

TEST(CompressedTrieTest, DensityHeuristicKeepsRootAndTinyLevelsRaw) {
  Rng rng(606);
  const Trie big = Trie::Compress(Trie::Build(BigGraph(rng, 6000, 256)));
  EXPECT_FALSE(big.level_compressed(0));  // root stays raw (min_level)
  EXPECT_TRUE(big.level_compressed(1));
  EXPECT_GT(big.CompressedBytes(), 0u);
  EXPECT_LT(big.ResidentBytes(), Trie::Build(BigGraph(rng, 6000, 256))
                                     .ResidentBytes());

  Relation tiny((Schema({0, 1})));
  tiny.Append({1, 2});
  tiny.Append({3, 4});
  tiny.SortAndDedup();
  const Trie t = Trie::Compress(Trie::Build(tiny));
  EXPECT_FALSE(t.any_compressed());  // below min_level_values
  EXPECT_EQ(t.CompressedBytes(), 0u);
}

TEST(CompressedTriePatchTest, CompressedPrevMatchesScratchBuild) {
  Rng rng(707);
  for (int round = 0; round < 10; ++round) {
    Relation base = BigGraph(rng, 3000, 200);
    Relation deletes((Schema({0, 1})));
    for (uint64_t r = 0; r < base.size(); ++r) {
      if (rng.Uniform(5) == 0) {
        std::span<const Value> row = base.Row(r);
        deletes.Append(std::vector<Value>(row.begin(), row.end()));
      }
    }
    deletes.SortAndDedup();
    Relation inserts((Schema({0, 1})));
    for (int i = 0; i < 40; ++i) {
      inserts.Append({Value(300 + rng.Uniform(50)), Value(rng.Uniform(200))});
    }
    inserts.SortAndDedup();

    std::vector<Value> merged_raw;
    storage::MergeDeltaRows(base.raw(), 2, inserts.raw(), deletes.raw(),
                            &merged_raw);
    Relation merged((Schema({0, 1})));
    merged.mutable_raw() = std::move(merged_raw);

    const Trie prev = Trie::Compress(Trie::Build(base));
    ASSERT_TRUE(prev.any_compressed());
    const Trie patched = Trie::PatchFrom(prev, inserts, deletes);
    const Trie built = Trie::Build(merged);
    ASSERT_EQ(patched.NumTuples(), built.NumTuples()) << "round " << round;
    for (int l = 0; l < built.arity(); ++l) {
      // Compressed levels stay compressed through the patch...
      EXPECT_EQ(patched.level_compressed(l), prev.level_compressed(l));
      // ...and decode to exactly the scratch build's arrays.
      std::vector<Value> pv, bv;
      patched.DecodeLevelInto(l, &pv);
      built.DecodeLevelInto(l, &bv);
      ASSERT_EQ(pv, bv) << "level " << l << " round " << round;
      ASSERT_TRUE(std::ranges::equal(patched.ChildBeginSpan(l),
                                     built.ChildBeginSpan(l)))
          << "level " << l << " round " << round;
      EXPECT_EQ(patched.MaxRangeWidth(l), built.MaxRangeWidth(l))
          << "level " << l << " round " << round;
    }
    // And the patched encoding is the canonical one: re-encoding the
    // merged rows from scratch yields identical compressed bytes.
    const Trie recomp = Trie::Compress(Trie::Build(merged));
    for (int l = 0; l < built.arity(); ++l) {
      if (!patched.level_compressed(l)) continue;
      ASSERT_TRUE(recomp.level_compressed(l));
      const bc::CompressedLevelView a = patched.CompressedView(l);
      const bc::CompressedLevelView b = recomp.CompressedView(l);
      EXPECT_TRUE(std::ranges::equal(a.bytes, b.bytes)) << "level " << l;
      EXPECT_TRUE(std::ranges::equal(a.mins, b.mins)) << "level " << l;
    }
  }
}

TEST(CompressedTriePatchTest, WideningPatchRecomputesMaxRangeWidth) {
  // Base: every key has exactly 2 children, so MaxRangeWidth(1) == 2.
  Relation base((Schema({0, 1})));
  for (Value k = 0; k < 40; ++k) {
    base.Append({k, 10});
    base.Append({k, 20});
  }
  base.SortAndDedup();
  const Trie prev = Trie::Build(base);
  ASSERT_EQ(prev.MaxRangeWidth(1), 2u);

  // Patch key 7 up to 9 children: the patched trie must report the new
  // maximum (a stale width would undersize executor arenas and is
  // exactly the regression this test pins).
  Relation inserts((Schema({0, 1})));
  for (Value v = 30; v < 37; ++v) inserts.Append({7, v});
  inserts.SortAndDedup();
  Relation deletes((Schema({0, 1})));
  const Trie patched = Trie::PatchFrom(prev, inserts, deletes);
  EXPECT_EQ(patched.MaxRangeWidth(1), 9u);
  EXPECT_EQ(patched.MaxRangeWidth(0), 40u);

  // Same through a compressed predecessor.
  const Trie cpatched = Trie::PatchFrom(
      Trie::Compress(Trie::Build(base), Trie::CompressOptions{.force = true}),
      inserts, deletes);
  EXPECT_EQ(cpatched.MaxRangeWidth(1), 9u);

  // And shrinking back down narrows it again — widths are recomputed,
  // never inherited.
  Relation redeletes = inserts;
  const Trie shrunk = Trie::PatchFrom(patched, Relation((Schema({0, 1}))),
                                      redeletes);
  EXPECT_EQ(shrunk.MaxRangeWidth(1), 2u);
}

TEST(CompressedTrieTest, FromMappedRejectsCorruptCompressedSegments) {
  Rng rng(808);
  Relation rel = BigGraph(rng, 2000, 150);
  const Trie src =
      Trie::Compress(Trie::Build(rel), Trie::CompressOptions{.force = true});
  ASSERT_TRUE(src.level_compressed(0) && src.level_compressed(1));

  // Hold copies of the compressed arrays as the "mapped" memory.
  struct Backing {
    std::vector<Value> mins[2];
    std::vector<uint32_t> starts[2];
    std::vector<uint8_t> bytes[2];
    std::vector<uint32_t> kids;
  };
  auto backing = std::make_shared<Backing>();
  for (int l = 0; l < 2; ++l) {
    const bc::CompressedLevelView v = src.CompressedView(l);
    backing->mins[l].assign(v.mins.begin(), v.mins.end());
    backing->starts[l].assign(v.starts.begin(), v.starts.end());
    backing->bytes[l].assign(v.bytes.begin(), v.bytes.end());
  }
  const std::span<const uint32_t> kids = src.ChildBeginSpan(0);
  backing->kids.assign(kids.begin(), kids.end());

  auto make_levels = [&]() {
    std::vector<Trie::MappedLevel> levels(2);
    for (int l = 0; l < 2; ++l) {
      levels[l].compressed = true;
      levels[l].num_values = src.LevelSize(l);
      levels[l].block_mins = backing->mins[l];
      levels[l].block_starts = backing->starts[l];
      levels[l].block_bytes = backing->bytes[l];
    }
    levels[0].child_begin = backing->kids;
    return levels;
  };

  {  // Intact segments load, probe like the source, recompute widths.
    StatusOr<Trie> mapped = Trie::FromMapped(make_levels(), backing);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_TRUE(mapped->mmap_backed());
    EXPECT_TRUE(mapped->any_compressed());
    EXPECT_EQ(mapped->NumTuples(), src.NumTuples());
    for (int l = 0; l < 2; ++l) {
      EXPECT_EQ(mapped->MaxRangeWidth(l), src.MaxRangeWidth(l));
      std::vector<Value> mv, sv;
      mapped->DecodeLevelInto(l, &mv);
      src.DecodeLevelInto(l, &sv);
      EXPECT_EQ(mv, sv);
    }
  }
  {  // Corrupt payload byte: structural validation must reject.
    auto corrupt = *backing;
    auto corrupt_ptr = std::make_shared<Backing>(corrupt);
    corrupt_ptr->bytes[1].resize(corrupt_ptr->bytes[1].size() / 3);
    std::vector<Trie::MappedLevel> levels(2);
    for (int l = 0; l < 2; ++l) {
      levels[l].compressed = true;
      levels[l].num_values = src.LevelSize(l);
      levels[l].block_mins = corrupt_ptr->mins[l];
      levels[l].block_starts = corrupt_ptr->starts[l];
      levels[l].block_bytes = corrupt_ptr->bytes[l];
    }
    levels[0].child_begin = corrupt_ptr->kids;
    EXPECT_FALSE(Trie::FromMapped(std::move(levels), corrupt_ptr).ok());
  }
  {  // Lying num_values: skip table no longer matches.
    std::vector<Trie::MappedLevel> levels = make_levels();
    levels[1].num_values += bc::kBlockValues;
    EXPECT_FALSE(Trie::FromMapped(std::move(levels), backing).ok());
  }
}

// ---------------------------------------------------------------------------
// Cross-engine property: raw, compressed, and snapshot-mapped
// compressed tries are interchangeable under every strategy.

constexpr core::Strategy kAllStrategies[] = {
    core::Strategy::kCommFirst, core::Strategy::kCachedCommFirst,
    core::Strategy::kBinaryJoin, core::Strategy::kBigJoin,
    core::Strategy::kCoOpt};

class CompressedStrategyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressedStrategyTest, AllStrategiesMatchRawTrieCounts) {
  Rng rng(uint64_t(GetParam()) * 6151 + 11);
  Relation g = BigGraph(rng, 3000 + rng.Uniform(3000), 200);
  const char* kAttrs[] = {"a", "b", "c"};
  query::Query q = query::Query::Make(
      {kAttrs[0], kAttrs[1], kAttrs[2]},
      {query::Atom{"G", Schema({0, 1})}, query::Atom{"G", Schema({1, 2})},
       query::Atom{"G", Schema({0, 2})}});

  storage::Catalog raw_db;
  raw_db.index_cache().set_compress_tries(false);
  raw_db.Put("G", Relation(g));
  storage::Catalog comp_db;
  comp_db.Put("G", Relation(g));

  auto naive = wcoj::NaiveJoin(q, raw_db, 50'000'000);
  ASSERT_TRUE(naive.ok()) << naive.status();
  const uint64_t truth = naive->size();

  core::EngineOptions opts;
  opts.cluster.num_servers = 2;
  opts.num_samples = 32;
  core::Engine raw_engine(&raw_db);
  core::Engine comp_engine(&comp_db);
  for (core::Strategy s : kAllStrategies) {
    auto raw_report = raw_engine.Run(q, s, opts);
    ASSERT_TRUE(raw_report.ok() && raw_report->ok())
        << core::StrategyName(s);
    auto comp_report = comp_engine.Run(q, s, opts);
    ASSERT_TRUE(comp_report.ok() && comp_report->ok())
        << core::StrategyName(s);
    EXPECT_EQ(raw_report->output_count, truth) << core::StrategyName(s);
    EXPECT_EQ(comp_report->output_count, truth) << core::StrategyName(s);
  }
  // The compressed catalog really exercised compressed tries.
  bool any_compressed = false;
  for (const storage::IndexCache::ExportedPayload& p :
       comp_db.index_cache().ExportPermutedIndexes()) {
    any_compressed |= p.trie != nullptr && p.trie->any_compressed();
  }
  EXPECT_TRUE(any_compressed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedStrategyTest,
                         ::testing::Range(0, 4));

TEST(CompressedStrategyTest, MappedCompressedTriesMatchAllStrategies) {
  const std::string path = TempPath("compressed_strategies.adjsnap");
  api::Database db;
  {
    Rng rng(909);
    db.AddRelation("G", BigGraph(rng, 5000, 220));
  }
  api::Session session = db.OpenSession();
  session.options().cluster.num_servers = 1;
  session.options().num_samples = 32;
  // Pin the cost model so the plan binds the base tries (and the run
  // touches compressed blocks) even on instrumented builds, where a
  // measured seek rate can flip the plan to a heap-built precompute.
  session.options().beta_precomputed_override = 4e6;
  session.options().beta_raw_override = 4e6;
  StatusOr<api::PreparedQuery> prepared =
      session.Prepare("G(a,b) G(b,c) G(a,c)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  api::Result warm = prepared->Run();
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_GT(warm.compressed_bytes(), 0u);
  ASSERT_TRUE(db.Save(path).ok());

  api::Database restarted;
  ASSERT_TRUE(restarted.Open(path).ok());
  // The snapshot loaded at least one mapped, still-compressed trie —
  // v3 stores compressed levels once and maps them in place.
  bool mapped_compressed = false;
  for (const storage::IndexCache::ExportedPayload& p :
       restarted.catalog().index_cache().ExportPermutedIndexes()) {
    mapped_compressed |= p.trie != nullptr && p.trie->mmap_backed() &&
                         p.trie->any_compressed();
  }
  EXPECT_TRUE(mapped_compressed);

  query::Query q = query::Query::Make(
      {"a", "b", "c"},
      {query::Atom{"G", Schema({0, 1})}, query::Atom{"G", Schema({1, 2})},
       query::Atom{"G", Schema({0, 2})}});
  core::EngineOptions opts;
  opts.cluster.num_servers = 1;
  opts.num_samples = 32;
  core::Engine engine(&restarted.catalog());
  for (core::Strategy s : kAllStrategies) {
    auto report = engine.Run(q, s, opts);
    ASSERT_TRUE(report.ok() && report->ok()) << core::StrategyName(s);
    EXPECT_EQ(report->output_count, warm.count()) << core::StrategyName(s);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adj
