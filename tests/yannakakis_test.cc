#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "exec/yannakakis.h"
#include "query/queries.h"
#include "wcoj/naive_join.h"

namespace adj::exec {
namespace {

storage::Catalog SmallDb(uint64_t seed, uint64_t nodes = 30,
                         uint64_t edges = 150) {
  Rng rng(seed);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

TEST(SemiJoinTest, FiltersDanglingTuples) {
  storage::Relation l(storage::Schema({0, 1}));
  l.Append({1, 2});
  l.Append({3, 4});
  l.Append({5, 6});
  storage::Relation r(storage::Schema({1, 2}));
  r.Append({2, 9});
  r.Append({6, 9});
  storage::Relation out = SemiJoin(l, r);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.At(0, 0), 1u);
  EXPECT_EQ(out.At(1, 0), 5u);
}

TEST(SemiJoinTest, NoSharedAttrsIsIdentity) {
  storage::Relation l(storage::Schema({0}));
  l.Append({1});
  storage::Relation r(storage::Schema({1}));
  r.Append({9});
  EXPECT_EQ(SemiJoin(l, r).size(), 1u);
}

TEST(SemiJoinTest, EmptyRightEliminatesAll) {
  storage::Relation l(storage::Schema({0, 1}));
  l.Append({1, 2});
  storage::Relation r(storage::Schema({1}));
  EXPECT_EQ(SemiJoin(l, r).size(), 0u);
}

TEST(YannakakisTest, AcyclicPathQueryMatchesNaive) {
  storage::Catalog db = SmallDb(3);
  auto q = query::Query::Parse("G(a,b) G(b,c) G(c,d)");
  ASSERT_TRUE(q.ok());
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  YannakakisStats stats;
  auto result = YannakakisJoinAuto(*q, db, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), naive->size());
  EXPECT_TRUE(std::ranges::equal(result->raw(), naive->raw()));
  // Full reduction never grows bags.
  EXPECT_LE(stats.reduced_bag_tuples, stats.bag_tuples);
}

TEST(YannakakisTest, CyclicQueriesViaGhdMatchNaive) {
  storage::Catalog db = SmallDb(7);
  for (int qi : {1, 2, 4, 5, 6, 10, 11}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto naive = wcoj::NaiveJoin(*q, db);
    ASSERT_TRUE(naive.ok()) << "Q" << qi;
    auto result = YannakakisJoinAuto(*q, db);
    ASSERT_TRUE(result.ok()) << "Q" << qi;
    EXPECT_EQ(result->size(), naive->size()) << "Q" << qi;
  }
}

TEST(YannakakisTest, ReductionBoundsIntermediates) {
  // On a path query with many dangling edges, full reduction keeps
  // intermediates at most the bag sizes after reduction.
  storage::Catalog db;
  db.Put("G", dataset::PathGraph(50));
  auto q = query::Query::Parse("G(a,b) G(b,c) G(c,d) G(d,e)");
  YannakakisStats stats;
  auto result = YannakakisJoinAuto(*q, db, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 46u);  // 50-node path: 46 4-edge walks
  EXPECT_LE(stats.intermediate_tuples,
            stats.reduced_bag_tuples * 4);  // no blow-up
}

TEST(YannakakisTest, RowLimitPropagates) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(12));
  auto q = query::MakeBenchmarkQuery(2);
  auto result = YannakakisJoinAuto(*q, db, nullptr, /*row_limit=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(YannakakisTest, EmptyInputYieldsEmpty) {
  storage::Catalog db;
  db.Put("G", storage::Relation(storage::Schema({0, 1})));
  auto q = query::Query::Parse("G(a,b) G(b,c)");
  auto result = YannakakisJoinAuto(*q, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

}  // namespace
}  // namespace adj::exec
