#include <algorithm>
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/thread_pool.h"
#include "exec/hcubej.h"
#include "query/queries.h"
#include "wcoj/naive_join.h"

namespace adj::dist {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&hits, i] { hits[size_t(i)]++; });
  }
  ThreadPool pool(4);
  pool.RunAll(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back([&total] { total++; });
    pool.RunAll(tasks);
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPoolTest, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  pool.RunAll({});
  SUCCEED();
}

TEST(ThreadPoolTest, StreamingSubmitRunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool pool(4);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&hits, i] { hits[size_t(i)]++; });
  }
  pool.WaitIdle();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The pool stays usable: more submissions after an idle period.
  std::atomic<int> more{0};
  pool.Submit([&more] { more++; });
  pool.WaitIdle();
  EXPECT_EQ(more.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Many quick submissions; some are still queued when the pool is
    // destroyed — the drain contract says all of them still run.
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran++; });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, StreamingAndBatchModesInterleave) {
  ThreadPool pool(3);
  std::atomic<int> streamed{0};
  for (int i = 0; i < 16; ++i) pool.Submit([&streamed] { streamed++; });
  std::vector<std::function<void()>> tasks;
  std::atomic<int> batched{0};
  for (int i = 0; i < 16; ++i) tasks.push_back([&batched] { batched++; });
  pool.RunAll(tasks);  // a batch while submitted tasks drain
  pool.WaitIdle();
  EXPECT_EQ(streamed.load(), 16);
  EXPECT_EQ(batched.load(), 16);
}

TEST(RunTasksTest, SequentialWhenOneThread) {
  // With threads=1 tasks must run in submission order.
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back([&order, i] { order.push_back(i); });
  RunTasks(1, tasks);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(RunTasksTest, ParallelSumsMatch) {
  std::vector<uint64_t> slots(32, 0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < slots.size(); ++i) {
    tasks.push_back([&slots, i] {
      uint64_t acc = 0;
      for (uint64_t j = 0; j <= i * 1000; ++j) acc += j;
      slots[i] = acc;
    });
  }
  RunTasks(4, tasks);
  for (size_t i = 0; i < slots.size(); ++i) {
    const uint64_t n = i * 1000;
    EXPECT_EQ(slots[i], n * (n + 1) / 2);
  }
}

TEST(ThreadedHCubeJTest, SameCountsAsSequential) {
  Rng rng(77);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(40, 250, rng));
  for (int qi : {1, 2, 5}) {
    auto q = query::MakeBenchmarkQuery(qi);
    query::AttributeOrder order;
    for (int a = 0; a < q->num_attrs(); ++a) order.push_back(a);

    ClusterConfig cfg;
    cfg.num_servers = 4;
    Cluster c_seq(cfg), c_par(cfg);
    exec::HCubeJParams seq_params;
    exec::HCubeJParams par_params;
    par_params.worker_threads = 4;
    auto seq = exec::RunHCubeJ(*q, db, order, seq_params, &c_seq);
    auto par = exec::RunHCubeJ(*q, db, order, par_params, &c_par);
    ASSERT_TRUE(seq.ok() && par.ok()) << "Q" << qi;
    ASSERT_TRUE(seq->report.ok() && par->report.ok()) << "Q" << qi;
    EXPECT_EQ(par->report.output_count, seq->report.output_count)
        << "Q" << qi;
    EXPECT_EQ(par->report.extensions, seq->report.extensions) << "Q" << qi;
  }
}

TEST(ThreadedHCubeJTest, CollectedOutputOrderIndependent) {
  Rng rng(79);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(30, 180, rng));
  auto q = query::MakeBenchmarkQuery(1);
  query::AttributeOrder order = {0, 1, 2};
  ClusterConfig cfg;
  cfg.num_servers = 4;
  Cluster c_seq(cfg), c_par(cfg);
  exec::HCubeJParams seq_params;
  seq_params.collect_output = true;
  exec::HCubeJParams par_params;
  par_params.collect_output = true;
  par_params.worker_threads = 4;
  auto seq = exec::RunHCubeJ(*q, db, order, seq_params, &c_seq);
  auto par = exec::RunHCubeJ(*q, db, order, par_params, &c_par);
  ASSERT_TRUE(seq.ok() && par.ok());
  storage::Relation a = std::move(seq->results);
  storage::Relation b = std::move(par->results);
  a.SortAndDedup();
  b.SortAndDedup();
  EXPECT_TRUE(std::ranges::equal(a.raw(), b.raw()));
}

}  // namespace
}  // namespace adj::dist
