#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/engine.h"
#include "dataset/generators.h"
#include "optimizer/explain.h"
#include "query/queries.h"

namespace adj::optimizer {
namespace {

TEST(ExplainTest, RendersAllPlanSections) {
  Rng rng(5);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(40, 250, rng));
  auto q = query::MakeBenchmarkQuery(5);
  core::Engine engine(&db);
  core::EngineOptions opts;
  opts.cluster.num_servers = 4;
  opts.num_samples = 64;
  auto planned = engine.Plan(*q, opts);
  ASSERT_TRUE(planned.ok());
  const std::string& text = planned->explanation;
  EXPECT_NE(text.find("=== ADJ plan ==="), std::string::npos);
  EXPECT_NE(text.find("hypertree:"), std::string::npos);
  EXPECT_NE(text.find("traversal:"), std::string::npos);
  EXPECT_NE(text.find("attribute order:"), std::string::npos);
  EXPECT_NE(text.find("estimated cost:"), std::string::npos);
  // Every bag appears once in the traversal section.
  for (int v = 0; v < planned->plan.decomp.num_bags(); ++v) {
    EXPECT_NE(text.find("v" + std::to_string(v)), std::string::npos);
  }
}

TEST(ExplainTest, MarksPrecomputedBags) {
  // Force a pre-compute decision through direct PlanningInputs.
  auto q = *query::Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  auto d = *ghd::FindOptimalGhd(q);
  PlanningInputs in;
  in.q = &q;
  in.decomp = &d;
  in.cost_model.num_servers = 4;
  in.cost_model.beta_raw = 1.0;  // computation is monstrously slow
  in.cost_model.beta_precomputed = 1e9;
  in.atom_tuples.assign(size_t(q.num_atoms()), 1000);
  in.estimate_bindings = [](AttrMask m) {
    return std::pow(10.0, PopCount(m));
  };
  in.estimate_bag_size = [](int) { return 10.0; };
  in.estimate_distinct = [](AttrId) { return 100.0; };
  auto plan = OptimizeAdaptivePlan(in);
  ASSERT_TRUE(plan.ok());
  bool any_pre = false;
  for (bool b : plan->precompute) any_pre |= b;
  ASSERT_TRUE(any_pre);
  const std::string text = ExplainPlan(in, *plan);
  EXPECT_NE(text.find("[PRECOMPUTE]"), std::string::npos);
}

}  // namespace
}  // namespace adj::optimizer
