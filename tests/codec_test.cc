#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "storage/codec.h"

namespace adj::storage {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint8_t> buf;
  const uint64_t cases[] = {0,       1,          127,        128,
                            16383,   16384,      0xFFFFFFFF, 1ull << 40,
                            ~0ull};
  for (uint64_t v : cases) PutVarint(v, &buf);
  size_t pos = 0;
  for (uint64_t v : cases) {
    auto got = GetVarint(buf, &pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedFails) {
  std::vector<uint8_t> buf;
  PutVarint(1ull << 40, &buf);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).ok());
}

TEST(SortedValuesTest, RoundTrip) {
  std::vector<Value> vals = {3, 3, 7, 100, 100000, 4000000000u};
  std::vector<uint8_t> buf;
  EncodeSortedValues(vals, &buf);
  size_t pos = 0;
  std::vector<Value> out;
  ASSERT_TRUE(DecodeSortedValues(buf, &pos, &out).ok());
  EXPECT_EQ(out, vals);
}

TEST(SortedValuesTest, DeltaCompressionIsCompact) {
  // Dense ascending run: ~1 byte per value after the first.
  std::vector<Value> vals;
  for (Value v = 1000000; v < 1004096; ++v) vals.push_back(v);
  std::vector<uint8_t> buf;
  EncodeSortedValues(vals, &buf);
  EXPECT_LT(buf.size(), vals.size() + 16);
}

TEST(RelationBlockTest, RoundTripRandom) {
  Rng rng(11);
  Relation rel = dataset::ErdosRenyi(500, 4000, rng);
  std::vector<uint8_t> buf = EncodeRelationBlock(rel);
  auto decoded = DecodeRelationBlock(buf, rel.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::ranges::equal(decoded->raw(), rel.raw()));
}

TEST(RelationBlockTest, RoundTripWideRows) {
  Relation rel(Schema({0, 1, 2, 3, 4}));
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    rel.Append({Value(rng.Uniform(5)), Value(rng.Uniform(5)),
                Value(rng.Uniform(5)), Value(rng.Uniform(1000000)),
                Value(rng.Uniform(5))});
  }
  rel.SortAndDedup();
  std::vector<uint8_t> buf = EncodeRelationBlock(rel);
  auto decoded = DecodeRelationBlock(buf, rel.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::ranges::equal(decoded->raw(), rel.raw()));
}

TEST(RelationBlockTest, EmptyRelation) {
  Relation rel(Schema({0, 1}));
  std::vector<uint8_t> buf = EncodeRelationBlock(rel);
  auto decoded = DecodeRelationBlock(buf, rel.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RelationBlockTest, CompressesBelowRawWidth) {
  Rng rng(17);
  Relation rel = dataset::ZipfGraph(2000, 30000, 0.8, rng);
  std::vector<uint8_t> buf = EncodeRelationBlock(rel);
  EXPECT_LT(buf.size(), rel.SizeBytes());
}

TEST(RelationBlockTest, ArityMismatchRejected) {
  Relation rel(Schema({0, 1}));
  rel.Append({1, 2});
  std::vector<uint8_t> buf = EncodeRelationBlock(rel);
  EXPECT_FALSE(DecodeRelationBlock(buf, Schema({0, 1, 2})).ok());
}

TEST(RelationBlockTest, CorruptBufferRejectedNotCrashing) {
  Rng rng(19);
  Relation rel = dataset::ErdosRenyi(50, 200, rng);
  std::vector<uint8_t> buf = EncodeRelationBlock(rel);
  buf.resize(buf.size() / 2);  // truncate
  auto decoded = DecodeRelationBlock(buf, rel.schema());
  EXPECT_FALSE(decoded.ok());
}

TEST(TrieBlockTest, RoundTripViaRelation) {
  Rng rng(23);
  Relation rel = dataset::ErdosRenyi(300, 2500, rng);
  Trie trie = Trie::Build(rel);
  std::vector<uint8_t> buf = EncodeTrieBlock(trie);
  auto decoded = DecodeTrieBlockToRelation(buf, rel.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::ranges::equal(decoded->raw(), rel.raw()));
}

TEST(TrieBlockTest, TernaryTrieRoundTrip) {
  Relation rel(Schema({0, 1, 2}));
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    rel.Append({Value(rng.Uniform(8)), Value(rng.Uniform(8)),
                Value(rng.Uniform(8))});
  }
  rel.SortAndDedup();
  Trie trie = Trie::Build(rel);
  auto decoded = DecodeTrieBlockToRelation(EncodeTrieBlock(trie),
                                           rel.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::ranges::equal(decoded->raw(), rel.raw()));
}

TEST(TrieBlockTest, SmallerThanTupleBlockOnSharedPrefixes) {
  // Heavy prefix sharing: trie encoding strictly smaller than the
  // tuple-block encoding — the Merge-vs-Pull bytes effect.
  Relation rel(Schema({0, 1}));
  for (Value u = 0; u < 50; ++u) {
    for (Value v = 0; v < 200; ++v) rel.Append({u, v * 97});
  }
  rel.SortAndDedup();
  Trie trie = Trie::Build(rel);
  EXPECT_LT(EncodeTrieBlock(trie).size(),
            EncodeRelationBlock(rel).size() * 1.2);
}

TEST(TrieBlockTest, EmptyTrie) {
  Relation rel(Schema({0, 1}));
  Trie trie = Trie::Build(rel);
  auto decoded = DecodeTrieBlockToRelation(EncodeTrieBlock(trie),
                                           rel.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

}  // namespace
}  // namespace adj::storage
