#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dataset/generators.h"
#include "query/queries.h"
#include "wcoj/cached_leapfrog.h"
#include "wcoj/leapfrog.h"
#include "wcoj/naive_join.h"

namespace adj::wcoj {
namespace {

using query::Query;

storage::Catalog SmallGraphDb(uint64_t seed, uint64_t nodes, uint64_t edges) {
  Rng rng(seed);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

/// Runs LeapfrogJoin for a query with every atom bound to catalog
/// relation(s), under the given order. Returns the count.
StatusOr<uint64_t> RunLeapfrog(const Query& q, const storage::Catalog& db,
                               const query::AttributeOrder& order,
                               JoinStats* stats = nullptr,
                               IntersectionCache* cache = nullptr,
                               std::optional<Value> first = {}) {
  const std::vector<int> rank = query::RankOf(order, q.num_attrs());
  std::vector<PreparedRelation> prepared;
  for (const query::Atom& atom : q.atoms()) {
    auto base = db.Get(atom.relation);
    if (!base.ok()) return base.status();
    auto prep = PrepareRelation(**base, atom.schema.attrs(), rank);
    if (!prep.ok()) return prep.status();
    prepared.push_back(std::move(prep.value()));
  }
  std::vector<JoinInput> inputs;
  for (const PreparedRelation& p : prepared) {
    inputs.push_back(JoinInput{&p.trie, p.attrs});
  }
  return LeapfrogJoin(inputs, order, nullptr, stats, {}, first, cache);
}

TEST(NaiveJoinTest, TriangleOnCompleteGraph) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(5));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  auto result = NaiveJoin(*q, db);
  ASSERT_TRUE(result.ok());
  // Ordered triangles with distinct labels: 5*4*3 = 60.
  EXPECT_EQ(result->size(), 60u);
}

TEST(NaiveJoinTest, PathQueryOnPathGraph) {
  storage::Catalog db;
  db.Put("G", dataset::PathGraph(5));
  auto q = Query::Parse("G(a,b) G(b,c)");
  auto result = NaiveJoin(*q, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // 0-1-2, 1-2-3, 2-3-4
}

TEST(NaiveJoinTest, RowLimitTrips) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(10));
  auto q = Query::Parse("G(a,b) G(b,c)");
  auto result = NaiveJoin(*q, db, /*row_limit=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(HashJoinTest, SharedAttributeSemantics) {
  storage::Relation l(storage::Schema({0, 1}));
  l.Append({1, 2});
  l.Append({3, 4});
  storage::Relation r(storage::Schema({1, 2}));
  r.Append({2, 7});
  r.Append({2, 8});
  r.Append({5, 9});
  auto joined = HashJoin(l, r);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 2u);  // (1,2,7), (1,2,8)
  EXPECT_EQ(joined->schema().attrs(), (std::vector<AttrId>{0, 1, 2}));
}

TEST(HashJoinTest, NoSharedAttributesIsCartesian) {
  storage::Relation l(storage::Schema({0}));
  l.Append({1});
  l.Append({2});
  storage::Relation r(storage::Schema({1}));
  r.Append({7});
  auto joined = HashJoin(l, r);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 2u);
}

TEST(LeapfrogTest, TriangleOnCompleteGraphMatchesClosedForm) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(6));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  auto count = RunLeapfrog(*q, db, {0, 1, 2});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u * 5 * 4);
}

TEST(LeapfrogTest, PaperWorkedExample) {
  // Fig. 3: the tuples shuffled to server S0 and the Leapfrog pass.
  storage::Catalog db;
  storage::Relation r1(storage::Schema({0, 1, 2}));
  for (auto row : std::vector<std::vector<Value>>{{1, 2, 2}, {1, 2, 1}}) {
    r1.Append({row[0], row[1], row[2]});
  }
  r1.SortAndDedup();
  storage::Relation r2(storage::Schema({0, 3}));
  for (auto row : std::vector<std::vector<Value>>{
           {1, 2}, {1, 1}, {3, 1}, {4, 1}}) {
    r2.Append({row[0], row[1]});
  }
  r2.SortAndDedup();
  storage::Relation r3(storage::Schema({2, 3}));
  for (auto row : std::vector<std::vector<Value>>{{1, 2}, {2, 2}}) {
    r3.Append({row[0], row[1]});
  }
  r3.SortAndDedup();
  storage::Relation r4(storage::Schema({1, 4}));
  for (auto row : std::vector<std::vector<Value>>{{2, 3}, {2, 4}, {2, 5}}) {
    r4.Append({row[0], row[1]});
  }
  r4.SortAndDedup();
  storage::Relation r5(storage::Schema({2, 4}));
  for (auto row : std::vector<std::vector<Value>>{{2, 3}, {2, 4}}) {
    r5.Append({row[0], row[1]});
  }
  r5.SortAndDedup();
  db.Put("R1", std::move(r1));
  db.Put("R2", std::move(r2));
  db.Put("R3", std::move(r3));
  db.Put("R4", std::move(r4));
  db.Put("R5", std::move(r5));
  auto q = Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
  JoinStats stats;
  auto count = RunLeapfrog(*q, db, {0, 1, 2, 3, 4}, &stats);
  ASSERT_TRUE(count.ok());
  // Fig. 3(b): T5 holds 4 result tuples (1,2,2,2,3/4 x d in {1,2}...):
  // verify against the oracle instead of transcribing.
  auto naive = NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(*count, naive->size());
  // T1 = {1}: exactly one binding at level 0.
  EXPECT_EQ(stats.tuples_at_level[0], 1u);
  // T2 = {(1,2)}.
  EXPECT_EQ(stats.tuples_at_level[1], 1u);
}

TEST(LeapfrogTest, EmptyInputYieldsZero) {
  storage::Catalog db;
  db.Put("G", storage::Relation(storage::Schema({0, 1})));
  auto q = Query::Parse("G(a,b) G(b,c)");
  auto count = RunLeapfrog(*q, db, {0, 1, 2});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(LeapfrogTest, FirstValuePinning) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(5));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  // Sum over all pinned first values == total count.
  uint64_t total = 0;
  for (Value v = 0; v < 5; ++v) {
    auto count = RunLeapfrog(*q, db, {0, 1, 2}, nullptr, nullptr, v);
    ASSERT_TRUE(count.ok());
    total += *count;
  }
  EXPECT_EQ(total, 60u);
  // Pinning a non-existent value yields zero.
  auto none = RunLeapfrog(*q, db, {0, 1, 2}, nullptr, nullptr, 99);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

TEST(LeapfrogTest, ExtensionLimitTrips) {
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(10));
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  const std::vector<int> rank = query::RankOf({0, 1, 2}, 3);
  std::vector<PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(
        *PrepareRelation(**db.Get(atom.relation), atom.schema.attrs(), rank));
  }
  std::vector<JoinInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
  JoinLimits limits;
  limits.max_extensions = 50;
  auto count = LeapfrogJoin(inputs, {0, 1, 2}, nullptr, nullptr, limits);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

TEST(LeapfrogTest, StatsAreConsistent) {
  storage::Catalog db = SmallGraphDb(17, 30, 150);
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  JoinStats stats;
  auto count = RunLeapfrog(*q, db, {0, 1, 2}, &stats);
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(stats.tuples_at_level.size(), 3u);
  // The deepest level count equals the output count.
  EXPECT_EQ(stats.tuples_at_level[2], *count);
  uint64_t sum = 0;
  for (uint64_t c : stats.tuples_at_level) sum += c;
  EXPECT_EQ(stats.extensions, sum);
}

TEST(LeapfrogTest, EmitMatchesNaiveTuples) {
  storage::Catalog db = SmallGraphDb(23, 20, 80);
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  const query::AttributeOrder order = {0, 1, 2};
  const std::vector<int> rank = query::RankOf(order, 3);
  std::vector<PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(
        *PrepareRelation(**db.Get(atom.relation), atom.schema.attrs(), rank));
  }
  std::vector<JoinInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
  storage::Relation collected(storage::Schema({0, 1, 2}));
  EmitFn emit = [&](std::span<const Value> t) { collected.Append(t); };
  auto count = LeapfrogJoin(inputs, order, &emit, nullptr);
  ASSERT_TRUE(count.ok());
  collected.SortAndDedup();
  auto naive = NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(collected.size(), naive->size());
  EXPECT_TRUE(std::ranges::equal(collected.raw(), naive->raw()));
}

/// Equivalence sweep: Leapfrog == NaiveJoin for every benchmark query
/// and several random graphs, across attribute orders.
struct EquivCase {
  int query_index;
  uint64_t seed;
};

class LeapfrogEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(LeapfrogEquivalenceTest, MatchesNaive) {
  const EquivCase param = GetParam();
  auto q = query::MakeBenchmarkQuery(param.query_index);
  ASSERT_TRUE(q.ok());
  storage::Catalog db = SmallGraphDb(param.seed, 25, 120);
  auto naive = NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  // Ascending order plus two pseudorandom permutations.
  std::vector<query::AttributeOrder> orders;
  query::AttributeOrder asc;
  for (int a = 0; a < q->num_attrs(); ++a) asc.push_back(a);
  orders.push_back(asc);
  Rng rng(param.seed * 31 + 1);
  for (int t = 0; t < 2; ++t) {
    query::AttributeOrder o = asc;
    for (size_t i = o.size() - 1; i > 0; --i) {
      std::swap(o[i], o[rng.Uniform(i + 1)]);
    }
    orders.push_back(o);
  }
  for (const query::AttributeOrder& order : orders) {
    auto count = RunLeapfrog(*q, db, order);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, naive->size())
        << "Q" << param.query_index << " order "
        << query::OrderToString(order, *q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, LeapfrogEquivalenceTest,
    ::testing::Values(EquivCase{1, 1}, EquivCase{1, 2}, EquivCase{2, 1},
                      EquivCase{2, 2}, EquivCase{3, 1}, EquivCase{4, 1},
                      EquivCase{4, 2}, EquivCase{5, 1}, EquivCase{5, 2},
                      EquivCase{6, 1}, EquivCase{6, 2}, EquivCase{7, 1},
                      EquivCase{8, 1}, EquivCase{9, 1}, EquivCase{10, 1},
                      EquivCase{11, 1}));

TEST(CachedLeapfrogTest, SameCountAsPlain) {
  storage::Catalog db = SmallGraphDb(41, 40, 250);
  for (int qi : {1, 2, 4, 5}) {
    auto q = query::MakeBenchmarkQuery(qi);
    query::AttributeOrder asc;
    for (int a = 0; a < q->num_attrs(); ++a) asc.push_back(a);
    auto plain = RunLeapfrog(*q, db, asc);
    ASSERT_TRUE(plain.ok());
    IntersectionCache cache(1 << 20);
    auto cached = RunLeapfrog(*q, db, asc, nullptr, &cache);
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(*cached, *plain) << "Q" << qi;
  }
}

TEST(CachedLeapfrogTest, ZeroCapacityCacheStillCorrect) {
  storage::Catalog db = SmallGraphDb(43, 30, 150);
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  auto plain = RunLeapfrog(*q, db, {0, 1, 2});
  IntersectionCache cache(0);
  auto cached = RunLeapfrog(*q, db, {0, 1, 2}, nullptr, &cache);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, *plain);
  EXPECT_EQ(cache.stored_values(), 0u);
}

TEST(CachedLeapfrogTest, CacheHitsOnRepetitiveStructure) {
  // 4-cycle under order (a, c, b, d): the level-d intersection is
  // keyed by (a, c) only, so every additional b binding with the same
  // (a, c) re-uses the cached intersection — CacheTrieJoin's win.
  storage::Catalog db;
  db.Put("G", dataset::CompleteGraph(10));
  auto q = Query::Parse("G(a,b) G(b,c) G(c,d) G(d,a)");
  JoinStats stats;
  IntersectionCache cache(1 << 22);
  auto count = RunLeapfrog(*q, db, {0, 2, 1, 3}, &stats, &cache);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(stats.cache_hits, 0u);
  // Correctness unchanged.
  auto plain = RunLeapfrog(*q, db, {0, 2, 1, 3});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*count, *plain);
}

TEST(CachedLeapfrogTest, WrapperReportsStats) {
  storage::Catalog db = SmallGraphDb(47, 30, 200);
  auto q = Query::Parse("G(a,b) G(b,c) G(a,c)");
  const std::vector<int> rank = query::RankOf({0, 1, 2}, 3);
  std::vector<PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(
        *PrepareRelation(**db.Get(atom.relation), atom.schema.attrs(), rank));
  }
  std::vector<JoinInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.trie, p.attrs});
  auto result = CachedLeapfrogJoin(inputs, {0, 1, 2}, 1 << 20, nullptr);
  ASSERT_TRUE(result.ok());
  auto plain = LeapfrogJoin(inputs, {0, 1, 2}, nullptr, nullptr);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(result->count, *plain);
  EXPECT_GT(result->cache_misses, 0u);
}

TEST(PrepareRelationTest, PermutesToRankOrder) {
  storage::Relation base(storage::Schema({0, 1}));
  base.Append({1, 9});
  base.Append({2, 8});
  // Atom binds columns to (c=2, a=0); order a < c → columns (a, c).
  auto prep = PrepareRelation(base, {2, 0}, query::RankOf({0, 2}, 3));
  ASSERT_TRUE(prep.ok());
  EXPECT_EQ(prep->attrs, (std::vector<AttrId>{0, 2}));
  EXPECT_EQ(prep->rel.At(0, 0), 8u);  // sorted by a-column (was col 1)
  EXPECT_EQ(prep->rel.At(0, 1), 2u);
}

}  // namespace
}  // namespace adj::wcoj
