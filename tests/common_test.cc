#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace adj {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status Fails() { return Status::Internal("boom"); }
Status UsesMacro() {
  ADJ_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesMacro().code(), StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(11);
  ZipfSampler zipf(100, 0.9);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, SkewFavorsSmallIds) {
  Rng rng(13);
  ZipfSampler zipf(1000, 0.99);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // Top-10 of a near-1.0 Zipf over 1000 values carries far more than
  // the uniform 1% share.
  EXPECT_GT(head, n / 20);
}

TEST(HashTest, AttributeHashWithinBuckets) {
  for (uint32_t buckets : {1u, 2u, 3u, 7u, 16u}) {
    for (Value v = 0; v < 500; ++v) {
      EXPECT_LT(AttributeHash(0, v, buckets), buckets);
    }
  }
}

TEST(HashTest, AttributesDecorrelated) {
  // Same value must not systematically land in the same bucket across
  // different attributes (HCube relies on independent hash families).
  int equal = 0;
  for (Value v = 0; v < 1000; ++v) {
    if (AttributeHash(0, v, 8) == AttributeHash(1, v, 8)) ++equal;
  }
  EXPECT_GT(equal, 50);   // ~1/8 expected
  EXPECT_LT(equal, 300);
}

TEST(HashTest, Mix64IsInjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace adj
