// Coverage for the plan-once / execute-many split: Engine's
// PrepareExecution builds an ExecutionContext whose base relations are
// aliased (never copied) from the engine's catalog and whose bags are
// materialized exactly once; RunPrepared re-executes it at O(query)
// cost. These tests pin the zero-copy contract down to pointer
// equality, which the api-level tests cannot reach.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/engine.h"
#include "core/spj.h"
#include "dataset/generators.h"
#include "query/query.h"
#include "wcoj/naive_join.h"

namespace adj::core {
namespace {

constexpr char kTriangle[] = "G(a,b) G(b,c) G(a,c)";

storage::Catalog SmallCatalog(uint64_t seed, uint64_t nodes = 30,
                              uint64_t edges = 150) {
  Rng rng(seed);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

EngineOptions FastOptions() {
  EngineOptions options;
  options.cluster.num_servers = 4;
  options.num_samples = 64;
  return options;
}

TEST(PrepareExecutionTest, AliasesBaseRelationsByPointer) {
  storage::Catalog db = SmallCatalog(1);
  Engine engine(&db);
  query::Query q = *query::Query::Parse(kTriangle);
  StatusOr<PlanResult> planned = engine.Plan(q, FastOptions());
  ASSERT_TRUE(planned.ok()) << planned.status();

  // With pre-computation disabled every atom references the base
  // relation, so the execution catalog must hold the engine catalog's
  // physical relation — same pointer, not a copy.
  optimizer::QueryPlan plan = planned->plan;
  std::fill(plan.precompute.begin(), plan.precompute.end(), false);
  StatusOr<ExecutionContext> ctx = engine.PrepareExecution(q, plan,
                                                           FastOptions());
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  ASSERT_TRUE(ctx->db.Contains("G"));
  EXPECT_EQ(*ctx->db.Get("G"), *db.Get("G"));
  EXPECT_TRUE(ctx->precompute_status.ok());
  EXPECT_EQ(ctx->precompute_s, 0.0);
  EXPECT_EQ(ctx->precompute_comm.bytes, 0u);
}

TEST(PrepareExecutionTest, RepeatedRunsMatchOracleWithoutSetupCost) {
  storage::Catalog db = SmallCatalog(2);
  Engine engine(&db);
  query::Query q = *query::Query::Parse(kTriangle);
  StatusOr<storage::Relation> oracle = wcoj::NaiveJoin(q, db);
  ASSERT_TRUE(oracle.ok());

  StatusOr<PlanResult> planned = engine.Plan(q, FastOptions());
  ASSERT_TRUE(planned.ok()) << planned.status();
  StatusOr<ExecutionContext> ctx =
      engine.PrepareExecution(q, planned->plan, FastOptions());
  ASSERT_TRUE(ctx.ok()) << ctx.status();

  for (int run = 0; run < 3; ++run) {
    StatusOr<exec::RunReport> report = engine.RunPrepared(*ctx, FastOptions());
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_TRUE(report->ok()) << report->status;
    EXPECT_EQ(report->output_count, oracle->size()) << "run " << run;
    // The run step pays only the final join round: planning and bag
    // pre-computation cost belong to the context, not the run.
    EXPECT_EQ(report->optimize_s, 0.0);
    EXPECT_EQ(report->precompute_s, 0.0);
    EXPECT_EQ(report->precompute_comm.bytes, 0u);
  }
}

TEST(PrepareExecutionTest, ForcedBagIsMaterializedOnceAndChargedOnce) {
  storage::Catalog db = SmallCatalog(3, 40, 250);
  Engine engine(&db);
  query::Query q = *query::Query::Parse("G(a,b) G(b,c) G(c,d)");
  StatusOr<storage::Relation> oracle = wcoj::NaiveJoin(q, db);
  ASSERT_TRUE(oracle.ok());

  StatusOr<PlanResult> planned = engine.Plan(q, FastOptions());
  ASSERT_TRUE(planned.ok()) << planned.status();
  // Force the first bag to be pre-computed regardless of what the
  // adaptive optimizer chose, so the materialization path is always on.
  optimizer::QueryPlan plan = planned->plan;
  ASSERT_FALSE(plan.precompute.empty());
  plan.precompute[0] = true;

  StatusOr<ExecutionContext> ctx = engine.PrepareExecution(q, plan,
                                                           FastOptions());
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  EXPECT_TRUE(ctx->db.Contains("__bag0"));
  // Materialization cost is real (it includes the per-stage overhead)
  // and recorded on the context for first-run attribution.
  EXPECT_GT(ctx->precompute_s, 0.0);

  StatusOr<exec::RunReport> rerun = engine.RunPrepared(*ctx, FastOptions());
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  ASSERT_TRUE(rerun->ok()) << rerun->status;
  EXPECT_EQ(rerun->output_count, oracle->size());
  EXPECT_EQ(rerun->precompute_s, 0.0);
  EXPECT_EQ(rerun->precompute_comm.bytes, 0u);

  // The one-shot ExecutePlan wrapper charges the same one-time cost.
  StatusOr<exec::RunReport> oneshot = engine.ExecutePlan(q, plan,
                                                         FastOptions());
  ASSERT_TRUE(oneshot.ok()) << oneshot.status();
  ASSERT_TRUE(oneshot->ok()) << oneshot->status;
  EXPECT_EQ(oneshot->output_count, oracle->size());
  EXPECT_GT(oneshot->precompute_s, 0.0);
}

TEST(PrepareExecutionTest, ContextOutlivesSourceCatalog) {
  // Aliased entries co-own their relations: run a context after the
  // engine's catalog object is destroyed.
  EngineOptions options = FastOptions();
  query::Query q = *query::Query::Parse(kTriangle);
  uint64_t oracle_count = 0;
  StatusOr<ExecutionContext> ctx = [&]() -> StatusOr<ExecutionContext> {
    storage::Catalog db = SmallCatalog(4);
    oracle_count = wcoj::NaiveJoin(q, db)->size();
    Engine engine(&db);
    StatusOr<PlanResult> planned = engine.Plan(q, options);
    if (!planned.ok()) return planned.status();
    return engine.PrepareExecution(q, planned->plan, options);
  }();
  ASSERT_TRUE(ctx.ok()) << ctx.status();

  storage::Catalog empty;
  Engine engine(&empty);
  StatusOr<exec::RunReport> report = engine.RunPrepared(*ctx, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->ok()) << report->status;
  EXPECT_EQ(report->output_count, oracle_count);
}

TEST(PushDownSelectionsTest, AliasesUntouchedAtoms) {
  Rng rng(5);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(40, 250, rng));
  db.Put("H", dataset::ErdosRenyi(40, 250, rng));

  // The selection touches only G: H must be aliased, not copied.
  StatusOr<SpjQuery> selected = ParseSpj("G(a,b) H(b,c) | a=1");
  ASSERT_TRUE(selected.ok());
  StatusOr<PushedDown> pushed = PushDownSelections(db, *selected);
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_TRUE(pushed->catalog.Contains("G__sel0"));
  ASSERT_TRUE(pushed->catalog.Contains("H"));
  EXPECT_EQ(*pushed->catalog.Get("H"), *db.Get("H"));

  // Selection-free push-down (the serving hot path) aliases everything
  // and filters nothing.
  StatusOr<SpjQuery> plain = ParseSpj("G(a,b) H(b,c)");
  ASSERT_TRUE(plain.ok());
  StatusOr<PushedDown> aliased = PushDownSelections(db, *plain);
  ASSERT_TRUE(aliased.ok()) << aliased.status();
  EXPECT_EQ(aliased->filtered, 0u);
  EXPECT_EQ(*aliased->catalog.Get("G"), *db.Get("G"));
  EXPECT_EQ(*aliased->catalog.Get("H"), *db.Get("H"));
}

}  // namespace
}  // namespace adj::core
