// Coverage for the wcoj/intersect kernel layer: the SeekGEQ galloping
// primitive, 2-way kernels (scalar / SSE4.2 / AVX2) checked
// property-style against std::set_intersection and bit-for-bit against
// each other, the k-way pairwise reduction with its row-major position
// matrix, and in-place compaction (output aliasing an input). Also
// pins the leapfrog executor's kernel counters end to end.
#include "wcoj/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "query/attribute_order.h"
#include "storage/relation.h"
#include "wcoj/leapfrog.h"

namespace adj::wcoj::intersect {
namespace {

/// Strictly increasing values: `count` draws from [0, universe),
/// clamped so a small universe can still fill the set.
std::vector<Value> SortedUnique(Rng& rng, size_t count, uint32_t universe) {
  count = std::min<size_t>(count, universe / 2 + 1);
  std::set<Value> vals;
  while (vals.size() < count) {
    vals.insert(static_cast<Value>(rng.Uniform(universe)));
  }
  return {vals.begin(), vals.end()};
}

std::vector<Value> Reference(const std::vector<Value>& a,
                             const std::vector<Value>& b) {
  std::vector<Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Runs one fixed-implementation kernel and validates values against
/// the reference and positions against the inputs.
void CheckKernel(Kernel k, const std::vector<Value>& a,
                 const std::vector<Value>& b) {
  if (!CpuSupports(k)) GTEST_SKIP() << "CPU lacks " << KernelName(k);
  const std::vector<Value> expect = Reference(a, b);
  const size_t cap = std::min(a.size(), b.size());
  std::vector<Value> out(cap, 0);
  std::vector<uint32_t> pa(cap, 0), pb(cap, 0);
  KernelStats stats;
  size_t n = 0;
  switch (k) {
    case Kernel::kScalar:
      n = Intersect2Scalar(a, b, out.data(), pa.data(), 1, pb.data(), 1,
                           &stats);
      break;
    case Kernel::kSse42:
      n = Intersect2Sse42(a, b, out.data(), pa.data(), 1, pb.data(), 1,
                          &stats);
      break;
    case Kernel::kAvx2:
      n = Intersect2Avx2(a, b, out.data(), pa.data(), 1, pb.data(), 1,
                         &stats);
      break;
    default:
      FAIL() << "not a fixed kernel";
  }
  ASSERT_EQ(n, expect.size()) << KernelName(k);
  for (size_t t = 0; t < n; ++t) {
    EXPECT_EQ(out[t], expect[t]) << KernelName(k) << " value " << t;
    ASSERT_LT(pa[t], a.size());
    ASSERT_LT(pb[t], b.size());
    EXPECT_EQ(a[pa[t]], out[t]) << KernelName(k) << " pos-a " << t;
    EXPECT_EQ(b[pb[t]], out[t]) << KernelName(k) << " pos-b " << t;
  }
}

const Kernel kAllKernels[] = {Kernel::kScalar, Kernel::kSse42,
                              Kernel::kAvx2};

TEST(SeekGeqTest, MatchesLowerBoundWithAndWithoutHint) {
  Rng rng(1);
  for (int round = 0; round < 50; ++round) {
    std::vector<Value> s =
        SortedUnique(rng, 1 + rng.Uniform(200), 1000);
    for (int probe = 0; probe < 20; ++probe) {
      const Value v = static_cast<Value>(rng.Uniform(1100));
      const size_t want = static_cast<size_t>(
          std::lower_bound(s.begin(), s.end(), v) - s.begin());
      EXPECT_EQ(SeekGEQ(s, v), want);
      const size_t hint = rng.Uniform(s.size() + 1);
      const size_t got = SeekGEQ(s, v, hint);
      // With a hint the contract is "first index in [hint, n)".
      const size_t want_hinted = std::max(want, hint);
      EXPECT_EQ(got, want_hinted);
    }
  }
  KernelStats stats;
  std::vector<Value> s{5, 10, 15};
  SeekGEQ(s, 12, 0, &stats);
  EXPECT_EQ(stats.seeks, 1u);
}

TEST(Intersect2Test, EdgeCases) {
  const std::vector<Value> empty;
  const std::vector<Value> one{7};
  const std::vector<Value> dense{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  const std::vector<Value> disjoint{100, 200, 300};
  for (Kernel k : kAllKernels) {
    if (!CpuSupports(k)) continue;
    CheckKernel(k, empty, dense);
    CheckKernel(k, dense, empty);
    CheckKernel(k, one, dense);       // singleton hit
    CheckKernel(k, one, disjoint);    // singleton miss
    CheckKernel(k, dense, disjoint);  // fully disjoint
    CheckKernel(k, dense, dense);     // identical
    // Range-boundary hits: matches exactly at both ends.
    CheckKernel(k, {1, 12}, dense);
    CheckKernel(k, {0, 1, 12, 13}, dense);
  }
}

TEST(Intersect2Test, RandomizedAgainstSetIntersection) {
  Rng rng(2);
  for (int round = 0; round < 60; ++round) {
    // Mixed densities exercise the emit-heavy path, the block-skip
    // path, and the galloping path.
    const uint32_t universe = 50 + static_cast<uint32_t>(rng.Uniform(2000));
    std::vector<Value> a =
        SortedUnique(rng, 1 + rng.Uniform(300), universe);
    std::vector<Value> b =
        SortedUnique(rng, 1 + rng.Uniform(300), universe);
    for (Kernel k : kAllKernels) {
      if (!CpuSupports(k)) continue;
      CheckKernel(k, a, b);
    }
  }
}

TEST(Intersect2Test, AdversarialGallopDistances) {
  // One sparse side vs one dense side: the kernels must gallop over
  // long runs (whole-block-below) and the sparse side must be retired
  // one probe at a time (whole-block-above).
  Rng rng(3);
  std::vector<Value> dense(4096);
  for (size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<Value>(2 * i);
  }
  std::vector<Value> sparse;
  for (Value v = 0; v < 8192; v += 511) sparse.push_back(v);
  for (Kernel k : kAllKernels) {
    if (!CpuSupports(k)) continue;
    CheckKernel(k, sparse, dense);
    CheckKernel(k, dense, sparse);
  }
}

TEST(Intersect2Test, KernelsAgreeBitForBit) {
  Rng rng(4);
  for (int round = 0; round < 40; ++round) {
    const uint32_t universe = 100 + static_cast<uint32_t>(rng.Uniform(4000));
    std::vector<Value> a = SortedUnique(rng, 1 + rng.Uniform(500), universe);
    std::vector<Value> b = SortedUnique(rng, 1 + rng.Uniform(500), universe);
    const size_t cap = std::min(a.size(), b.size());
    KernelStats stats;
    std::vector<Value> ref_out(cap);
    std::vector<uint32_t> ref_pa(cap), ref_pb(cap);
    const size_t ref_n = Intersect2Scalar(a, b, ref_out.data(),
                                          ref_pa.data(), 1, ref_pb.data(), 1,
                                          &stats);
    for (Kernel k : {Kernel::kSse42, Kernel::kAvx2}) {
      if (!CpuSupports(k)) continue;
      std::vector<Value> out(cap);
      std::vector<uint32_t> pa(cap), pb(cap);
      const size_t n =
          k == Kernel::kSse42
              ? Intersect2Sse42(a, b, out.data(), pa.data(), 1, pb.data(),
                                1, &stats)
              : Intersect2Avx2(a, b, out.data(), pa.data(), 1, pb.data(), 1,
                               &stats);
      ASSERT_EQ(n, ref_n) << KernelName(k);
      for (size_t t = 0; t < n; ++t) {
        EXPECT_EQ(out[t], ref_out[t]) << KernelName(k);
        EXPECT_EQ(pa[t], ref_pa[t]) << KernelName(k);
        EXPECT_EQ(pb[t], ref_pb[t]) << KernelName(k);
      }
    }
  }
}

TEST(Intersect2Test, InPlaceCompactionAliasingEitherInput) {
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    std::vector<Value> a = SortedUnique(rng, 1 + rng.Uniform(200), 600);
    std::vector<Value> b = SortedUnique(rng, 1 + rng.Uniform(200), 600);
    const std::vector<Value> expect = Reference(a, b);
    // Alias the output onto the *smaller* input (what the k-way
    // reduction does), for every dispatchable kernel.
    for (Kernel k : kAllKernels) {
      if (!CpuSupports(k)) continue;
      SetKernel(k);
      std::vector<Value> a_copy = a;
      std::vector<Value> b_copy = b;
      const bool a_smaller = a.size() <= b.size();
      Value* out = a_smaller ? a_copy.data() : b_copy.data();
      const size_t n = Intersect2(a_copy, b_copy, out);
      ASSERT_EQ(n, expect.size()) << KernelName(k);
      for (size_t t = 0; t < n; ++t) EXPECT_EQ(out[t], expect[t]);
    }
    SetKernel(Kernel::kAuto);
  }
}

TEST(IntersectKTest, PositionsIndexEveryInputSpan) {
  Rng rng(6);
  for (int k = 1; k <= 5; ++k) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::vector<Value>> sets;
      std::vector<std::span<const Value>> views;
      for (int j = 0; j < k; ++j) {
        sets.push_back(SortedUnique(rng, 1 + rng.Uniform(150), 300));
      }
      for (const auto& s : sets) views.emplace_back(s);
      std::vector<Value> expect = sets[0];
      for (int j = 1; j < k; ++j) expect = Reference(expect, sets[j]);

      size_t cap = sets[0].size();
      for (const auto& s : sets) cap = std::min(cap, s.size());
      std::vector<Value> out(cap);
      std::vector<uint32_t> pos(cap * size_t(k));
      std::vector<uint32_t> pa(cap), pb(cap), ord(static_cast<size_t>(k));
      KScratch scratch{pa.data(), pb.data(), ord.data()};
      const size_t n =
          IntersectK(views.data(), k, out.data(), pos.data(), scratch);
      ASSERT_EQ(n, expect.size()) << "k=" << k;
      for (size_t t = 0; t < n; ++t) {
        EXPECT_EQ(out[t], expect[t]);
        for (int j = 0; j < k; ++j) {
          const uint32_t p = pos[t * size_t(k) + size_t(j)];
          ASSERT_LT(p, sets[size_t(j)].size());
          EXPECT_EQ(sets[size_t(j)][p], out[t])
              << "k=" << k << " value " << t << " span " << j;
        }
      }

      std::vector<Value> vals_only(cap);
      const size_t m = IntersectKValues(views.data(), k, vals_only.data());
      ASSERT_EQ(m, n);
      for (size_t t = 0; t < n; ++t) EXPECT_EQ(vals_only[t], out[t]);
    }
  }
}

TEST(DispatchTest, ForcedScalarCountsFallbacksAndAgrees) {
  Rng rng(7);
  std::vector<Value> a = SortedUnique(rng, 200, 1000);
  std::vector<Value> b = SortedUnique(rng, 200, 1000);
  const std::vector<Value> expect = Reference(a, b);
  std::vector<Value> out(std::min(a.size(), b.size()));

  SetKernel(Kernel::kScalar);
  EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
  KernelStats scalar_stats;
  const size_t n_scalar =
      Intersect2(a, b, out.data(), nullptr, 1, nullptr, 1, &scalar_stats);
  EXPECT_EQ(scalar_stats.scalar_fallbacks, 1u);
  EXPECT_EQ(scalar_stats.simd_intersections, 0u);
  ASSERT_EQ(n_scalar, expect.size());

  SetKernel(Kernel::kAuto);
  const Kernel active = ActiveKernel();
  KernelStats auto_stats;
  const size_t n_auto =
      Intersect2(a, b, out.data(), nullptr, 1, nullptr, 1, &auto_stats);
  ASSERT_EQ(n_auto, expect.size());
  for (size_t t = 0; t < n_auto; ++t) EXPECT_EQ(out[t], expect[t]);
  if (active != Kernel::kScalar) {
    EXPECT_EQ(auto_stats.simd_intersections, 1u);
    EXPECT_EQ(auto_stats.scalar_fallbacks, 0u);
  }
  // Forcing a kernel the CPU may lack falls back to scalar rather
  // than faulting.
  SetKernel(Kernel::kAvx2);
  EXPECT_TRUE(ActiveKernel() == Kernel::kAvx2 ||
              ActiveKernel() == Kernel::kScalar);
  SetKernel(Kernel::kAuto);
}

// End-to-end: a leapfrog triangle join ticks the JoinStats kernel
// counters, and forced-scalar and dispatched runs agree on the result.
TEST(LeapfrogKernelTest, JoinCountsKernelUseAndKernelChoiceIsInvisible) {
  Rng rng(8);
  storage::Relation edges(storage::Schema({0, 1}));
  for (int i = 0; i < 400; ++i) {
    edges.Append({static_cast<Value>(rng.Uniform(40)),
                  static_cast<Value>(rng.Uniform(40))});
  }
  edges.SortAndDedup();

  auto run = [&](uint64_t* simd, uint64_t* scalar) -> uint64_t {
    PreparedRelation ab = *PrepareRelation(edges, {0, 1}, {0, 1, 2});
    PreparedRelation bc = *PrepareRelation(edges, {1, 2}, {0, 1, 2});
    PreparedRelation ac = *PrepareRelation(edges, {0, 2}, {0, 1, 2});
    std::vector<JoinInput> inputs = {{&ab.trie, ab.attrs},
                                     {&bc.trie, bc.attrs},
                                     {&ac.trie, ac.attrs}};
    query::AttributeOrder order{0, 1, 2};
    JoinStats stats;
    StatusOr<uint64_t> count =
        LeapfrogJoin(inputs, order, nullptr, &stats);
    EXPECT_TRUE(count.ok()) << count.status();
    *simd = stats.simd_intersections;
    *scalar = stats.scalar_fallbacks;
    return *count;
  };

  uint64_t simd = 0, scalar = 0;
  SetKernel(Kernel::kScalar);
  const uint64_t scalar_count = run(&simd, &scalar);
  EXPECT_EQ(simd, 0u);
  EXPECT_GT(scalar, 0u);

  SetKernel(Kernel::kAuto);
  uint64_t simd2 = 0, scalar2 = 0;
  const uint64_t auto_count = run(&simd2, &scalar2);
  EXPECT_EQ(auto_count, scalar_count);
  if (ActiveKernel() != Kernel::kScalar) {
    EXPECT_GT(simd2, 0u);
    EXPECT_EQ(scalar2, 0u);
  }
}

// ---------------------------------------------------------------------------
// Compressed-run kernels, property-checked against the raw kernels
// over the same values.

namespace bc = storage::blockcodec;

/// A block-compressed level made of sorted sibling runs, remembering
/// each run's [lo, hi) — the only ranges the run kernels are defined
/// over.
struct RunLevel {
  std::vector<Value> values;
  std::vector<std::pair<uint32_t, uint32_t>> runs;
  bc::CompressedLevel enc;

  CompressedRun Run(size_t i) const {
    return {enc.View(), runs[i].first, runs[i].second};
  }
  std::span<const Value> RawRun(size_t i) const {
    return std::span<const Value>(values).subspan(
        runs[i].first, runs[i].second - runs[i].first);
  }
};

RunLevel MakeRunLevel(Rng& rng, int num_runs, uint32_t max_run,
                      uint32_t universe) {
  RunLevel out;
  for (int r = 0; r < num_runs; ++r) {
    const std::vector<Value> run =
        SortedUnique(rng, 1 + rng.Uniform(max_run), universe);
    const uint32_t lo = uint32_t(out.values.size());
    out.values.insert(out.values.end(), run.begin(), run.end());
    out.runs.emplace_back(lo, uint32_t(out.values.size()));
  }
  bc::EncodeLevel(out.values, &out.enc);
  return out;
}

TEST(CompressedRunTest, SeekGEQRunMatchesRawSeek) {
  Rng rng(31337);
  for (int round = 0; round < 40; ++round) {
    const RunLevel lvl = MakeRunLevel(rng, 1 + int(rng.Uniform(12)), 400, 5000);
    bc::DecodeCache cache;
    KernelStats stats;
    for (size_t i = 0; i < lvl.runs.size(); ++i) {
      const std::span<const Value> raw = lvl.RawRun(i);
      for (int probe = 0; probe < 50; ++probe) {
        const Value v = Value(rng.Uniform(5200));
        const size_t hint = rng.Uniform(raw.size() + 1);
        ASSERT_EQ(SeekGEQRun(lvl.Run(i), v, hint, &cache, &stats),
                  SeekGEQ(raw, v, hint))
            << "run " << i << " v=" << v << " hint=" << hint;
      }
    }
  }
}

TEST(CompressedRunTest, Intersect2CRAndCCMatchRawWithPositions) {
  Rng rng(271828);
  for (int round = 0; round < 60; ++round) {
    const RunLevel la = MakeRunLevel(rng, 1 + int(rng.Uniform(6)), 500, 4000);
    const RunLevel lb = MakeRunLevel(rng, 1 + int(rng.Uniform(6)), 500, 4000);
    const size_t ia = rng.Uniform(la.runs.size());
    const size_t ib = rng.Uniform(lb.runs.size());
    const std::span<const Value> ra = la.RawRun(ia), rb = lb.RawRun(ib);
    const size_t cap = std::min(ra.size(), rb.size());

    std::vector<Value> want(cap), got(cap);
    std::vector<uint32_t> want_pa(cap), want_pb(cap), pa(cap), pb(cap);
    const size_t wn = Intersect2(ra, rb, want.data(), want_pa.data(), 1,
                                 want_pb.data(), 1, nullptr);

    bc::DecodeCache ca, cb;
    KernelStats stats;
    const size_t cr = Intersect2CR(la.Run(ia), rb, got.data(), pa.data(), 1,
                                   pb.data(), 1, &ca, &stats);
    ASSERT_EQ(cr, wn) << "CR round " << round;
    for (size_t t = 0; t < wn; ++t) {
      ASSERT_EQ(got[t], want[t]) << "CR value " << t;
      ASSERT_EQ(pa[t], want_pa[t]) << "CR pos-a " << t;
      ASSERT_EQ(pb[t], want_pb[t]) << "CR pos-b " << t;
    }

    const size_t cc = Intersect2CC(la.Run(ia), lb.Run(ib), got.data(),
                                   pa.data(), 1, pb.data(), 1, &ca, &cb,
                                   &stats);
    ASSERT_EQ(cc, wn) << "CC round " << round;
    for (size_t t = 0; t < wn; ++t) {
      ASSERT_EQ(got[t], want[t]) << "CC value " << t;
      ASSERT_EQ(pa[t], want_pa[t]) << "CC pos-a " << t;
      ASSERT_EQ(pb[t], want_pb[t]) << "CC pos-b " << t;
    }
    EXPECT_GT(stats.blocks_decoded, 0u);
  }
}

TEST(CompressedRunTest, KWayRunsMatchRawKWayMixedRepresentations) {
  Rng rng(1618);
  for (int round = 0; round < 40; ++round) {
    const int k = 2 + int(rng.Uniform(3));
    std::vector<RunLevel> levels;
    std::vector<size_t> run_idx;
    for (int j = 0; j < k; ++j) {
      levels.push_back(MakeRunLevel(rng, 1 + int(rng.Uniform(4)), 400, 3000));
      run_idx.push_back(rng.Uniform(levels[j].runs.size()));
    }
    std::vector<std::span<const Value>> raw(k);
    std::vector<RunView> views(k);
    size_t cap = SIZE_MAX;
    for (int j = 0; j < k; ++j) {
      raw[j] = levels[j].RawRun(run_idx[j]);
      // Mix representations: every other input stays raw.
      views[j] = (j % 2 == 0)
                     ? RunView::Compressed(levels[j].Run(run_idx[j]))
                     : RunView::Raw(raw[j]);
      cap = std::min(cap, raw[j].size());
    }

    std::vector<Value> want(cap), got(cap);
    std::vector<uint32_t> want_pos(cap * k), pos(cap * k);
    std::vector<uint32_t> spa(cap), spb(cap), sord(k);
    const KScratch ws{spa.data(), spb.data(), sord.data()};
    const size_t wn =
        IntersectK(raw.data(), k, want.data(), want_pos.data(), ws, nullptr);

    std::vector<uint32_t> gpa(cap), gpb(cap), gord(k);
    const KScratch gs{gpa.data(), gpb.data(), gord.data()};
    std::vector<bc::DecodeCache> caches(k);
    KernelStats stats;
    const size_t gn = IntersectKRuns(views.data(), k, got.data(), pos.data(),
                                     gs, caches.data(), &stats);
    ASSERT_EQ(gn, wn) << "round " << round;
    for (size_t t = 0; t < wn; ++t) {
      ASSERT_EQ(got[t], want[t]) << "value " << t;
      for (int j = 0; j < k; ++j) {
        ASSERT_EQ(pos[t * k + j], want_pos[t * k + j])
            << "pos " << t << " input " << j;
      }
    }

    // Values-only variant agrees too.
    std::vector<Value> vals_only(cap);
    std::vector<bc::DecodeCache> vcaches(k);
    const size_t vn = IntersectKValuesRuns(views.data(), k, vals_only.data(),
                                           vcaches.data(), &stats);
    ASSERT_EQ(vn, wn);
    for (size_t t = 0; t < wn; ++t) ASSERT_EQ(vals_only[t], want[t]);
  }
}

TEST(DenseKernelTest, DispatchedDenseIntersectionAgreesWithScalar) {
  Rng rng(42424);
  for (int round = 0; round < 20; ++round) {
    // Dense similar-size inputs (small gaps, lengths within 4x) steer
    // the dispatcher onto the all-pairs SIMD kernel when the CPU has
    // one; the answer must not depend on that choice.
    std::vector<Value> a, b;
    Value va = 0, vb = 0;
    const size_t na = 2000 + rng.Uniform(2000);
    const size_t nb = na / (1 + rng.Uniform(3));
    for (size_t i = 0; i < na; ++i) a.push_back(va += 1 + Value(rng.Uniform(3)));
    for (size_t i = 0; i < nb; ++i) b.push_back(vb += 1 + Value(rng.Uniform(3)));

    const size_t cap = std::min(a.size(), b.size());
    std::vector<Value> want(cap), got(cap);
    KernelStats stats;
    const size_t wn = Intersect2Scalar(a, b, want.data(), nullptr, 1, nullptr,
                                       1, &stats);
    const size_t gn =
        Intersect2(a, b, got.data(), nullptr, 1, nullptr, 1, &stats);
    ASSERT_EQ(gn, wn) << "round " << round;
    for (size_t t = 0; t < wn; ++t) ASSERT_EQ(got[t], want[t]);
  }
}

}  // namespace
}  // namespace adj::wcoj::intersect
