#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dataset/generators.h"
#include "ghd/decomposition.h"
#include "optimizer/adj_optimizer.h"
#include "optimizer/cost_model.h"
#include "optimizer/share_optimizer.h"
#include "query/queries.h"

namespace adj::optimizer {
namespace {

dist::ClusterConfig TestCluster(int n = 4) {
  dist::ClusterConfig cfg;
  cfg.num_servers = n;
  return cfg;
}

TEST(ShareOptimizerTest, TriangleSplitsTwoAttributes) {
  // Symmetric triangle query: the classic HCube optimum for N=4 puts
  // shares on two attributes (any two); never all four on one.
  std::vector<ShareInput> rels = {
      {0b011, 1000, 8000}, {0b110, 1000, 8000}, {0b101, 1000, 8000}};
  auto p = OptimizeShares(rels, 3, TestCluster(4));
  ASSERT_TRUE(p.ok());
  EXPECT_GE(p->NumCubes(), 4u);
  int split_attrs = 0;
  for (uint32_t s : p->p) {
    if (s > 1) ++split_attrs;
  }
  EXPECT_GE(split_attrs, 2);
  // Cost of the chosen p must not exceed the naive single-attribute
  // split (which duplicates two relations fully).
  dist::ShareVector naive{{4, 1, 1}};
  EXPECT_LE(ShareCost(rels, *p, 4), ShareCost(rels, naive, 4));
}

TEST(ShareOptimizerTest, SkewedSizesProtectLargeRelation) {
  // One huge relation on (a,b), tiny ones elsewhere: shares should
  // avoid duplicating the big one, i.e. prefer splitting a and b.
  std::vector<ShareInput> rels = {
      {0b011, 1000000, 8000000}, {0b110, 10, 80}, {0b101, 10, 80}};
  auto p = OptimizeShares(rels, 3, TestCluster(8));
  ASSERT_TRUE(p.ok());
  const uint64_t dup_big = dist::DupCubes(0b011, *p);
  EXPECT_EQ(dup_big, 1u) << p->ToString();
}

TEST(ShareOptimizerTest, RespectsServerCount) {
  std::vector<ShareInput> rels = {{0b11, 100, 800}};
  for (int n : {1, 2, 7, 28}) {
    auto p = OptimizeShares(rels, 2, TestCluster(n));
    ASSERT_TRUE(p.ok());
    EXPECT_GE(p->NumCubes(), uint64_t(n));
  }
}

TEST(ShareOptimizerTest, MemoryConstraintForcesFinerPartitioning) {
  // With a tight memory budget, p must split the relation's own
  // attributes so each server holds a fraction.
  std::vector<ShareInput> rels = {{0b11, 100000, 800000}};
  dist::ClusterConfig cfg = TestCluster(4);
  cfg.memory_per_server_bytes = 300000;
  auto p = OptimizeShares(rels, 2, cfg);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(dist::ServerFraction(0b11, *p), 0.5);
}

TEST(CostModelTest, ExtendSecondsScalesWithServers) {
  CostModel cm;
  cm.num_servers = 1;
  const double one = cm.ExtendSeconds(1e6, false);
  cm.num_servers = 8;
  EXPECT_NEAR(cm.ExtendSeconds(1e6, false) * 8, one, 1e-12);
}

TEST(CostModelTest, PrecomputedNodesAreFaster) {
  CostModel cm;
  EXPECT_LT(cm.ExtendSeconds(1e6, true), cm.ExtendSeconds(1e6, false));
}

TEST(CostModelTest, CalibrationProducesPlausibleRate) {
  const double beta = CalibrateBetaPrecomputed(1 << 12);
  EXPECT_GT(beta, 1e4);   // even a slow machine probes >10k/s
  EXPECT_LT(beta, 1e10);  // and no machine probes >10G/s
}

/// Planning fixture: paper Eq. (2) query over a skewed graph, exact
/// estimates via the sketch-free path (small data).
class PlanningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    q_ = *query::Query::Parse("R1(a,b,c) R2(a,d) R3(c,d) R4(b,e) R5(c,e)");
    decomp_ = *ghd::FindOptimalGhd(q_);
    in_.q = &q_;
    in_.decomp = &decomp_;
    in_.cluster = TestCluster(4);
    in_.cost_model.num_servers = 4;
    in_.atom_tuples = {1000, 800, 800, 800, 800};
    // Synthetic but internally consistent estimates: bindings grow
    // with attribute count; bags are modest.
    in_.estimate_bindings = [](AttrMask attrs) {
      return std::pow(10.0, PopCount(attrs));
    };
    in_.estimate_bag_size = [this](int v) {
      return 50.0 * PopCount(decomp_.bags[size_t(v)].atoms);
    };
    in_.estimate_distinct = [](AttrId a) { return 100.0 + a; };
  }

  query::Query q_;
  ghd::Decomposition decomp_;
  PlanningInputs in_;
};

TEST_F(PlanningTest, AdaptivePlanIsValid) {
  auto plan = OptimizeAdaptivePlan(in_);
  ASSERT_TRUE(plan.ok());
  // Traversal covers every bag exactly once.
  std::vector<bool> seen(decomp_.num_bags(), false);
  for (int v : plan->traversal) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, decomp_.num_bags());
    EXPECT_FALSE(seen[size_t(v)]);
    seen[size_t(v)] = true;
  }
  // The induced order is valid w.r.t. the decomposition.
  EXPECT_TRUE(ghd::IsValidOrder(decomp_, q_, plan->order));
  EXPECT_EQ(plan->order.size(), size_t(q_.num_attrs()));
  // Single-atom bags are never marked for pre-computation.
  for (int v = 0; v < decomp_.num_bags(); ++v) {
    if (decomp_.bags[size_t(v)].IsSingleAtom()) {
      EXPECT_FALSE(plan->precompute[size_t(v)]);
    }
  }
}

TEST_F(PlanningTest, ExhaustiveNeverWorseThanAdaptive) {
  auto adaptive = OptimizeAdaptivePlan(in_);
  auto exhaustive = OptimizeExhaustivePlan(in_);
  ASSERT_TRUE(adaptive.ok() && exhaustive.ok());
  EXPECT_LE(exhaustive->EstTotal(), adaptive->EstTotal() + 1e-9);
}

TEST_F(PlanningTest, ExpensiveComputationTriggersPrecompute) {
  // Make raw extension monstrously slow and bags tiny: pre-computing
  // multi-atom bags must win.
  in_.cost_model.beta_raw = 1.0;         // 1 extension/sec
  in_.cost_model.beta_precomputed = 1e9;
  in_.estimate_bag_size = [](int) { return 10.0; };
  in_.estimate_bindings = [](AttrMask attrs) {
    return std::pow(10.0, PopCount(attrs));
  };
  auto plan = OptimizeAdaptivePlan(in_);
  ASSERT_TRUE(plan.ok());
  bool any = false;
  for (int v = 0; v < decomp_.num_bags(); ++v) {
    if (plan->precompute[size_t(v)]) any = true;
  }
  EXPECT_TRUE(any);
}

TEST_F(PlanningTest, CheapComputationAvoidsPrecompute) {
  // Extension is nearly free: pre-computing only adds cost.
  in_.cost_model.beta_raw = 1e12;
  in_.cost_model.beta_precomputed = 1e12;
  auto plan = OptimizeAdaptivePlan(in_);
  ASSERT_TRUE(plan.ok());
  for (int v = 0; v < decomp_.num_bags(); ++v) {
    EXPECT_FALSE(plan->precompute[size_t(v)]) << "bag " << v;
  }
}

TEST_F(PlanningTest, EvaluatePlanBreaksDownCosts) {
  std::vector<bool> pre(decomp_.num_bags(), false);
  std::vector<int> traversal = ghd::TraversalOrders(decomp_)[0];
  PlanCost base = EvaluatePlan(in_, pre, traversal);
  EXPECT_EQ(base.pre, 0.0);
  EXPECT_GT(base.comm, 0.0);
  EXPECT_GT(base.comp, 0.0);
  // Pre-computing some multi-atom bag adds pre cost.
  for (int v = 0; v < decomp_.num_bags(); ++v) {
    if (!decomp_.bags[size_t(v)].IsSingleAtom()) {
      pre[size_t(v)] = true;
      break;
    }
  }
  PlanCost with_pre = EvaluatePlan(in_, pre, traversal);
  EXPECT_GT(with_pre.pre, 0.0);
}

TEST_F(PlanningTest, DeriveOrderRespectsDistinctCounts) {
  // Make attribute e have far fewer candidates than b: within its bag
  // group, e should precede b if both are fresh in the same bag.
  in_.estimate_distinct = [](AttrId a) { return a == 4 ? 1.0 : 1000.0; };
  std::vector<int> traversal = ghd::TraversalOrders(decomp_)[0];
  query::AttributeOrder order = DeriveOrder(in_, traversal);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_TRUE(ghd::IsValidOrder(decomp_, q_, order));
}

TEST(PlanToStringTest, MentionsTraversalAndOrder) {
  auto q = *query::Query::Parse("R(a,b) S(b,c)");
  auto d = *ghd::FindOptimalGhd(q);
  QueryPlan plan;
  plan.decomp = d;
  plan.traversal = {0, 1};
  plan.precompute = {false, false};
  plan.order = {0, 1, 2};
  std::string s = plan.ToString(q);
  EXPECT_NE(s.find("v0"), std::string::npos);
  EXPECT_NE(s.find("ord="), std::string::npos);
}

}  // namespace
}  // namespace adj::optimizer
