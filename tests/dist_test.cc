#include <algorithm>
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/cluster.h"
#include "dist/comm_stats.h"
#include "dist/hcube.h"
#include "query/queries.h"
#include "wcoj/leapfrog.h"
#include "wcoj/naive_join.h"

namespace adj::dist {
namespace {

TEST(ShareVectorTest, NumCubesAndToString) {
  ShareVector p{{1, 2, 2, 1, 1}};
  EXPECT_EQ(p.NumCubes(), 4u);
  EXPECT_EQ(p.ToString(), "(1,2,2,1,1)");
}

TEST(ShareVectorTest, DupCubes) {
  // Paper Example: p=(1,2,2,1,1); R2(a,d) has dup = p_b * p_c = 4.
  ShareVector p{{1, 2, 2, 1, 1}};
  const AttrMask r2 = 0b01001;  // {a, d}
  EXPECT_EQ(DupCubes(r2, p), 4u);
  const AttrMask r1 = 0b00111;  // {a, b, c}
  EXPECT_EQ(DupCubes(r1, p), 1u);
}

TEST(ShareVectorTest, ServerFraction) {
  ShareVector p{{1, 2, 2, 1, 1}};
  EXPECT_DOUBLE_EQ(ServerFraction(0b00111, p), 0.25);  // (a,b,c): 1/(2*2)
  EXPECT_DOUBLE_EQ(ServerFraction(0b01001, p), 1.0);   // (a,d)
}

TEST(CommStatsTest, AddAccumulates) {
  CommStats a{10, 100, 1, 0.5};
  CommStats b{5, 50, 2, 0.25};
  a.Add(b);
  EXPECT_EQ(a.tuple_copies, 15u);
  EXPECT_EQ(a.bytes, 150u);
  EXPECT_EQ(a.blocks, 3u);
  EXPECT_DOUBLE_EQ(a.seconds, 0.75);
}

TEST(NetworkModelTest, PushCostsMoreThanPullPerTuple) {
  NetworkModel net;
  // A million small tuples: per-record overhead dominates Push.
  const double push = PushSeconds(net, 1000000, 8000000, 4);
  const double pull = PullSeconds(net, 64, 8000000, 4);
  EXPECT_GT(push, pull);
}

TEST(NetworkModelTest, BandwidthScalesWithServers) {
  NetworkModel net;
  EXPECT_LT(PullSeconds(net, 10, 1 << 26, 16),
            PullSeconds(net, 10, 1 << 26, 2));
}

TEST(ClusterTest, MemoryCheck) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.memory_per_server_bytes = 100;
  Cluster cluster(cfg);
  EXPECT_TRUE(cluster.CheckMemory().ok());
  cluster.shard(1).resident_bytes = 200;
  EXPECT_EQ(cluster.CheckMemory().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cluster.MaxResidentBytes(), 200u);
  cluster.ClearShards();
  EXPECT_TRUE(cluster.CheckMemory().ok());
}

/// Core distributed-correctness property: for any share vector and any
/// variant, the per-server Leapfrog counts sum to the sequential join
/// count (the union of hypercube results is the query answer).
class HCubeCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, int, HCubeVariant>> {};

TEST_P(HCubeCorrectnessTest, UnionOfServersEqualsSequential) {
  const int query_index = std::get<0>(GetParam());
  const int num_servers = std::get<1>(GetParam());
  const HCubeVariant variant = std::get<2>(GetParam());

  auto q = query::MakeBenchmarkQuery(query_index);
  ASSERT_TRUE(q.ok());
  Rng rng(uint64_t(query_index * 100 + num_servers));
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(30, 150, rng));

  // Sequential oracle.
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());

  // Distributed run under ascending order.
  query::AttributeOrder order;
  for (int a = 0; a < q->num_attrs(); ++a) order.push_back(a);
  const std::vector<int> rank = query::RankOf(order, q->num_attrs());

  std::vector<wcoj::PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(*wcoj::PrepareRelation(**db.Get(atom.relation),
                                              atom.schema.attrs(), rank));
  }
  std::vector<HCubeInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.rel, p.attrs});

  ClusterConfig cfg;
  cfg.num_servers = num_servers;
  Cluster cluster(cfg);
  // Derive some nontrivial share vector: split the first two
  // attributes.
  ShareVector share;
  share.p.assign(q->num_attrs(), 1);
  share.p[0] = 2;
  if (q->num_attrs() > 1) share.p[1] = 2;
  auto shuffle = HCubeShuffle(inputs, share, variant, &cluster);
  ASSERT_TRUE(shuffle.ok()) << shuffle.status();

  uint64_t total = 0;
  for (int s = 0; s < num_servers; ++s) {
    const LocalShard& shard = cluster.shard(s);
    std::vector<wcoj::JoinInput> jinputs;
    bool any_empty = false;
    for (size_t a = 0; a < shard.tries.size(); ++a) {
      if (shard.tries[a]->empty()) any_empty = true;
      jinputs.push_back({shard.tries[a].get(), shard.attrs[a]});
    }
    if (any_empty) continue;
    auto count = wcoj::LeapfrogJoin(jinputs, order, nullptr, nullptr);
    ASSERT_TRUE(count.ok());
    total += *count;
  }
  EXPECT_EQ(total, naive->size())
      << "Q" << query_index << " N=" << num_servers << " "
      << HCubeVariantName(variant);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HCubeCorrectnessTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 5, 10),
                       ::testing::Values(1, 3, 4, 7),
                       ::testing::Values(HCubeVariant::kPush,
                                         HCubeVariant::kPull,
                                         HCubeVariant::kMerge)));

TEST(HCubeTest, AccountingInvariants) {
  Rng rng(7);
  storage::Catalog db;
  // Enough tuples that per-record overhead dominates per-block
  // overhead (the regime the paper's Fig. 9 lives in).
  db.Put("G", dataset::ErdosRenyi(2000, 40000, rng));
  auto q = query::MakeBenchmarkQuery(1);
  query::AttributeOrder order = {0, 1, 2};
  const std::vector<int> rank = query::RankOf(order, 3);
  std::vector<wcoj::PreparedRelation> prepared;
  for (const query::Atom& atom : q->atoms()) {
    prepared.push_back(*wcoj::PrepareRelation(**db.Get(atom.relation),
                                              atom.schema.attrs(), rank));
  }
  std::vector<HCubeInput> inputs;
  for (const auto& p : prepared) inputs.push_back({&p.rel, p.attrs});

  ClusterConfig cfg;
  cfg.num_servers = 4;
  ShareVector share{{2, 2, 1}};

  Cluster c_push(cfg), c_pull(cfg), c_merge(cfg);
  auto push = HCubeShuffle(inputs, share, HCubeVariant::kPush, &c_push);
  auto pull = HCubeShuffle(inputs, share, HCubeVariant::kPull, &c_pull);
  auto merge = HCubeShuffle(inputs, share, HCubeVariant::kMerge, &c_merge);
  ASSERT_TRUE(push.ok() && pull.ok() && merge.ok());

  // Same logical tuple movement.
  EXPECT_EQ(push->comm.tuple_copies, pull->comm.tuple_copies);
  EXPECT_EQ(pull->comm.tuple_copies, merge->comm.tuple_copies);
  // Push is the most expensive shuffle (Fig. 9a); Merge ships tries,
  // whose payload differs from raw tuples but stays in the same ballpark.
  EXPECT_GT(push->comm.seconds, pull->comm.seconds);
  // Merge's local build (k-way merge) beats full sorting (Fig. 9b).
  EXPECT_LE(merge->build_seconds_sum, push->build_seconds_sum * 2.0);
  // Identical shard contents across variants.
  for (int s = 0; s < cfg.num_servers; ++s) {
    for (size_t a = 0; a < 3; ++a) {
      EXPECT_TRUE(std::ranges::equal(c_push.shard(s).atoms[a]->raw(), c_merge.shard(s).atoms[a]->raw()));
      EXPECT_TRUE(std::ranges::equal(c_pull.shard(s).atoms[a]->raw(), c_merge.shard(s).atoms[a]->raw()));
    }
  }
}

TEST(HCubeTest, TupleDupMatchesDupCubesWhenCubesFitServers) {
  // One relation, p=(2,2): every tuple of R(a) with dup = p_b = 2 goes
  // to exactly 2 servers when each cube has its own server.
  storage::Relation r(storage::Schema({0}));
  for (Value v = 0; v < 100; ++v) r.Append({v});
  r.SortAndDedup();
  std::vector<HCubeInput> inputs = {{&r, {0}}};
  ClusterConfig cfg;
  cfg.num_servers = 4;
  Cluster cluster(cfg);
  ShareVector share{{2, 2}};
  auto result = HCubeShuffle(inputs, share, HCubeVariant::kPull, &cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->comm.tuple_copies, 200u);
}

TEST(HCubeTest, MemoryBudgetViolationFails) {
  Rng rng(9);
  storage::Relation r = dataset::ErdosRenyi(100, 2000, rng);
  std::vector<HCubeInput> inputs = {{&r, {0, 1}}};
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.memory_per_server_bytes = 64;  // absurdly small
  Cluster cluster(cfg);
  ShareVector share{{2, 1}};
  auto result = HCubeShuffle(inputs, share, HCubeVariant::kPull, &cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(HCubeTest, RejectsZeroShare) {
  storage::Relation r(storage::Schema({0}));
  r.Append({1});
  std::vector<HCubeInput> inputs = {{&r, {0}}};
  ClusterConfig cfg;
  Cluster cluster(cfg);
  ShareVector share{{0}};
  EXPECT_FALSE(HCubeShuffle(inputs, share, HCubeVariant::kPull, &cluster).ok());
}

}  // namespace
}  // namespace adj::dist
