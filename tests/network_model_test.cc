// Edge cases of the dist-layer network model and hypercube math beyond
// what dist_test.cc pins down: zero-byte shuffles, single-server
// clusters, and all-ones share vectors.
#include <algorithm>
#include <gtest/gtest.h>

#include <cmath>

#include "dist/cluster.h"
#include "dist/comm_stats.h"
#include "dist/hcube.h"
#include "storage/relation.h"

namespace adj::dist {
namespace {

TEST(NetworkModelEdgeTest, ZeroVolumeCostsNothing) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(PushSeconds(net, 0, 0, 4), 0.0);
  EXPECT_DOUBLE_EQ(PullSeconds(net, 0, 0, 4), 0.0);
}

TEST(NetworkModelEdgeTest, SingleServerIsWellDefined) {
  NetworkModel net;
  const double pull = PullSeconds(net, 10, 1 << 20, 1);
  EXPECT_GT(pull, 0.0);
  EXPECT_TRUE(std::isfinite(pull));
  // A degenerate server count must not divide by zero either.
  EXPECT_TRUE(std::isfinite(PullSeconds(net, 10, 1 << 20, 0)));
  // One link: push of the same bytes with per-record framing costs more.
  EXPECT_GT(PushSeconds(net, 1 << 20, 1 << 20, 1), pull);
}

TEST(NetworkModelEdgeTest, MoreBlocksNeverCheaper) {
  NetworkModel net;
  EXPECT_LE(PullSeconds(net, 1, 4096, 4), PullSeconds(net, 100, 4096, 4));
}

TEST(ShareVectorEdgeTest, AllOnesSharesAreTheIdentity) {
  ShareVector p{{1, 1, 1, 1}};
  EXPECT_TRUE(p.Valid());
  EXPECT_EQ(p.NumCubes(), 1u);
  // Every relation is duplicated to exactly one cube and every server
  // fraction is 1 — the "no partitioning" degenerate point of Eq. 3.
  for (AttrMask schema : {AttrMask(0b0001), AttrMask(0b0110),
                          AttrMask(0b1111), AttrMask(0)}) {
    EXPECT_EQ(DupCubes(schema, p), 1u) << schema;
    EXPECT_DOUBLE_EQ(ServerFraction(schema, p), 1.0) << schema;
  }
}

TEST(ShareVectorEdgeTest, EmptyAndZeroSharesAreInvalid) {
  EXPECT_FALSE(ShareVector{}.Valid());
  EXPECT_FALSE((ShareVector{{2, 0, 1}}).Valid());
  EXPECT_TRUE((ShareVector{{1}}).Valid());
}

TEST(HCubeEdgeTest, EmptyRelationShufflesForFree) {
  storage::Relation empty(storage::Schema({0, 1}));
  std::vector<HCubeInput> inputs = {{&empty, {0, 1}}};
  ClusterConfig cfg;
  cfg.num_servers = 4;
  for (HCubeVariant variant :
       {HCubeVariant::kPush, HCubeVariant::kPull, HCubeVariant::kMerge}) {
    Cluster cluster(cfg);
    ShareVector share{{2, 2}};
    auto result = HCubeShuffle(inputs, share, variant, &cluster);
    ASSERT_TRUE(result.ok()) << HCubeVariantName(variant);
    EXPECT_EQ(result->comm.tuple_copies, 0u);
    EXPECT_EQ(result->comm.bytes, 0u);
    EXPECT_EQ(result->comm.blocks, 0u);
    EXPECT_DOUBLE_EQ(result->comm.seconds, 0.0);
    EXPECT_EQ(cluster.MaxResidentBytes(), 0u);
    for (int s = 0; s < cfg.num_servers; ++s) {
      ASSERT_EQ(cluster.shard(s).tries.size(), 1u);
      EXPECT_TRUE(cluster.shard(s).tries[0]->empty());
    }
  }
}

TEST(HCubeEdgeTest, AllOnesSharesPlaceEverythingOnOneServer) {
  storage::Relation r(storage::Schema({0, 1}));
  for (Value v = 0; v < 50; ++v) r.Append({v, v + 1});
  r.SortAndDedup();
  std::vector<HCubeInput> inputs = {{&r, {0, 1}}};
  ClusterConfig cfg;
  cfg.num_servers = 4;
  Cluster cluster(cfg);
  ShareVector share{{1, 1}};
  auto result = HCubeShuffle(inputs, share, HCubeVariant::kPull, &cluster);
  ASSERT_TRUE(result.ok());
  // One cube -> every tuple shipped exactly once, all to server 0.
  EXPECT_EQ(result->comm.tuple_copies, r.size());
  EXPECT_TRUE(std::ranges::equal(cluster.shard(0).atoms[0]->raw(), r.raw()));
  for (int s = 1; s < cfg.num_servers; ++s) {
    EXPECT_TRUE(cluster.shard(s).atoms[0]->empty());
  }
}

TEST(HCubeEdgeTest, SingleServerClusterReceivesWholeRelation) {
  storage::Relation r(storage::Schema({0}));
  for (Value v = 0; v < 30; ++v) r.Append({v});
  r.SortAndDedup();
  std::vector<HCubeInput> inputs = {{&r, {0}}};
  ClusterConfig cfg;
  cfg.num_servers = 1;
  Cluster cluster(cfg);
  // Nontrivial shares on one server: cubes collapse, tuples still ship
  // exactly once.
  ShareVector share{{2, 3}};
  auto result = HCubeShuffle(inputs, share, HCubeVariant::kPush, &cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->comm.tuple_copies, r.size());
  EXPECT_TRUE(std::ranges::equal(cluster.shard(0).atoms[0]->raw(), r.raw()));
}

}  // namespace
}  // namespace adj::dist
