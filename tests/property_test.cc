// Cross-module property suites: randomized invariants that tie the
// GHD machinery, the share optimizer, and the simplex solver to
// brute-force oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "ghd/decomposition.h"
#include "ghd/fractional_edge_cover.h"
#include "ghd/simplex.h"
#include "optimizer/share_optimizer.h"
#include "query/queries.h"

namespace adj {
namespace {

/// Random small hypergraphs: every vertex covered by >= 1 edge.
query::Hypergraph RandomHypergraph(Rng& rng, int vertices, int edges) {
  std::vector<AttrMask> masks;
  AttrMask covered = 0;
  for (int e = 0; e < edges; ++e) {
    AttrMask m = 0;
    const int k = 2 + int(rng.Uniform(2));  // arity 2..3
    while (PopCount(m) < k) {
      m |= AttrMask(1) << rng.Uniform(uint64_t(vertices));
    }
    covered |= m;
    masks.push_back(m);
  }
  // Patch uncovered vertices into the first edge.
  for (int v = 0; v < vertices; ++v) {
    if ((covered & (AttrMask(1) << v)) == 0) masks[0] |= AttrMask(1) << v;
  }
  return query::Hypergraph(vertices, masks);
}

class FecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FecPropertyTest, CoverIsFeasibleAndTight) {
  Rng rng(uint64_t(GetParam()) * 7 + 1);
  query::Hypergraph h = RandomHypergraph(rng, 5, 5);
  const AttrMask all = (AttrMask(1) << 5) - 1;
  auto cover = ghd::FractionalEdgeCover(all, h.edges());
  ASSERT_TRUE(cover.ok());
  // Feasibility: every vertex covered with total weight >= 1.
  for (int v = 0; v < 5; ++v) {
    double w = 0;
    for (int e = 0; e < h.num_edges(); ++e) {
      if (h.edge(e) & (AttrMask(1) << v)) w += cover->weights[size_t(e)];
    }
    EXPECT_GE(w, 1.0 - 1e-6) << "vertex " << v;
  }
  // Objective consistency and bounds: 5 vertices with arity >= 2 edges
  // never need more than 2.5 (perfect-matching style bound does not
  // hold in general, but n/2 does for arity-2+ covers... use n).
  double total = 0;
  for (double w : cover->weights) {
    EXPECT_GE(w, -1e-9);
    total += w;
  }
  EXPECT_NEAR(total, cover->rho, 1e-6);
  EXPECT_GE(cover->rho, 1.0 - 1e-6);
  EXPECT_LE(cover->rho, 5.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FecPropertyTest, ::testing::Range(0, 12));

TEST(FecPropertyTest, IntegerCoverUpperBounds) {
  // The LP optimum never exceeds any integral cover; greedy integral
  // covers give a checkable upper bound.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    query::Hypergraph h = RandomHypergraph(rng, 5, 6);
    const AttrMask all = (AttrMask(1) << 5) - 1;
    auto cover = ghd::FractionalEdgeCover(all, h.edges());
    ASSERT_TRUE(cover.ok());
    // Greedy set cover.
    AttrMask left = all;
    double greedy = 0;
    while (left != 0) {
      int best = -1, gain = -1;
      for (int e = 0; e < h.num_edges(); ++e) {
        const int g = PopCount(h.edge(e) & left);
        if (g > gain) {
          gain = g;
          best = e;
        }
      }
      left &= ~h.edge(best);
      greedy += 1.0;
    }
    EXPECT_LE(cover->rho, greedy + 1e-6);
  }
}

/// Brute-force share optimum over all vectors with prod(p) in
/// [N, 4N], cross-checked against OptimizeShares.
class ShareOptPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ShareOptPropertyTest, MatchesBruteForce) {
  Rng rng(uint64_t(GetParam()) * 13 + 5);
  const int num_attrs = 3;
  const int n_servers = 4;
  std::vector<optimizer::ShareInput> rels;
  const int num_rels = 2 + int(rng.Uniform(3));
  for (int r = 0; r < num_rels; ++r) {
    optimizer::ShareInput in;
    while (PopCount(in.schema) < 2) {
      in.schema |= AttrMask(1) << rng.Uniform(num_attrs);
    }
    in.tuples = 100 + rng.Uniform(100000);
    in.bytes = in.tuples * 8;
    rels.push_back(in);
  }
  dist::ClusterConfig cfg;
  cfg.num_servers = n_servers;
  auto optimized = optimizer::OptimizeShares(rels, num_attrs, cfg);
  ASSERT_TRUE(optimized.ok());

  // Brute force.
  double best = 1e300;
  for (uint32_t p0 = 1; p0 <= 4; ++p0) {
    for (uint32_t p1 = 1; p1 <= 4; ++p1) {
      for (uint32_t p2 = 1; p2 <= 4; ++p2) {
        const uint64_t cubes = uint64_t(p0) * p1 * p2;
        if (cubes < uint64_t(n_servers) || cubes > 4u * n_servers) continue;
        dist::ShareVector p{{p0, p1, p2}};
        best = std::min(best, optimizer::ShareCost(rels, p, n_servers));
      }
    }
  }
  EXPECT_NEAR(optimizer::ShareCost(rels, *optimized, n_servers), best,
              best * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShareOptPropertyTest,
                         ::testing::Range(0, 10));

TEST(GhdPropertyTest, SegmentsConsistentWithValidOrders) {
  // Every enumerated valid order must be accepted by OrderBagSegments
  // and its segments must sum to the attribute count.
  for (int qi : {2, 4, 5, 6, 10}) {
    auto q = query::MakeBenchmarkQuery(qi);
    auto d = ghd::FindOptimalGhd(*q);
    ASSERT_TRUE(d.ok());
    for (const auto& order : ghd::ValidAttributeOrders(*d, *q)) {
      std::vector<int> segs = ghd::OrderBagSegments(*d, *q, order);
      ASSERT_FALSE(segs.empty()) << "Q" << qi;
      int total = 0;
      for (int s : segs) total += s;
      EXPECT_EQ(total, q->num_attrs());
    }
  }
}

TEST(GhdPropertyTest, WidthNeverExceedsFullQueryRho) {
  // The optimal GHD's width is at most the whole query's fractional
  // edge cover (the one-bag decomposition achieves exactly that).
  for (int qi = 1; qi <= 11; ++qi) {
    auto q = query::MakeBenchmarkQuery(qi);
    query::Hypergraph h(*q);
    auto whole = ghd::FractionalEdgeCover(q->AllAttrs(), h.edges());
    ASSERT_TRUE(whole.ok());
    auto d = ghd::FindOptimalGhd(*q);
    ASSERT_TRUE(d.ok());
    EXPECT_LE(d->width, whole->rho + 1e-6) << "Q" << qi;
  }
}

TEST(SimplexPropertyTest, RandomCoversSolvable) {
  Rng rng(2027);
  for (int trial = 0; trial < 20; ++trial) {
    // Random LP in edge-cover form: constraints with 0/1 coefficients,
    // rhs 1 — always feasible when every row has a nonzero.
    const int n = 2 + int(rng.Uniform(5));
    const int m = 1 + int(rng.Uniform(5));
    ghd::LinearProgram lp;
    lp.c.assign(n, 1.0);
    for (int i = 0; i < m; ++i) {
      std::vector<double> row(n, 0.0);
      row[rng.Uniform(uint64_t(n))] = 1.0;
      row[rng.Uniform(uint64_t(n))] = 1.0;
      lp.a.push_back(row);
      lp.b.push_back(1.0);
    }
    auto sol = ghd::SolveMinCover(lp);
    ASSERT_TRUE(sol.ok());
    EXPECT_GE(sol->objective, 1.0 - 1e-6);
    EXPECT_LE(sol->objective, double(m) + 1e-6);
  }
}

}  // namespace
}  // namespace adj
