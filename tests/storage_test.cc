#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace adj::storage {
namespace {

TEST(SchemaTest, PositionAndContains) {
  Schema s({2, 0, 3});
  EXPECT_EQ(s.arity(), 3);
  EXPECT_EQ(s.PositionOf(2), 0);
  EXPECT_EQ(s.PositionOf(0), 1);
  EXPECT_EQ(s.PositionOf(3), 2);
  EXPECT_EQ(s.PositionOf(1), -1);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(1));
}

TEST(SchemaTest, Mask) {
  Schema s({0, 2, 4});
  EXPECT_EQ(s.Mask(), AttrMask(0b10101));
}

TEST(SchemaTest, SortedByRank) {
  // Global order: c < a < b  =>  rank a=1, b=2, c=0.
  Schema s({0, 1, 2});  // (a, b, c)
  std::vector<int> rank = {1, 2, 0};
  std::vector<int> perm;
  Schema sorted = s.SortedBy(rank, &perm);
  EXPECT_EQ(sorted.attrs(), (std::vector<AttrId>{2, 0, 1}));
  EXPECT_EQ(perm, (std::vector<int>{2, 0, 1}));
}

TEST(SchemaTest, ToStringLettersAttrs) {
  Schema s({0, 1, 4});
  EXPECT_EQ(s.ToString(), "(a,b,e)");
}

TEST(RelationTest, AppendAndAccess) {
  Relation r(Schema({0, 1}));
  r.Append({3, 4});
  r.Append({1, 2});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.At(0, 0), 3u);
  EXPECT_EQ(r.At(1, 1), 2u);
  EXPECT_EQ(r.SizeBytes(), 4 * sizeof(Value));
}

TEST(RelationTest, SortAndDedup) {
  Relation r(Schema({0, 1}));
  r.Append({2, 1});
  r.Append({1, 2});
  r.Append({2, 1});
  r.Append({1, 1});
  r.SortAndDedup();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.IsSortedUnique());
  EXPECT_EQ(r.At(0, 0), 1u);
  EXPECT_EQ(r.At(0, 1), 1u);
  EXPECT_EQ(r.At(2, 0), 2u);
}

TEST(RelationTest, SortIsLexicographic) {
  Relation r(Schema({0, 1, 2}));
  r.Append({1, 2, 3});
  r.Append({1, 1, 9});
  r.Append({0, 9, 9});
  r.SortAndDedup();
  EXPECT_EQ(r.At(0, 0), 0u);
  EXPECT_EQ(r.At(1, 1), 1u);
  EXPECT_EQ(r.At(2, 1), 2u);
}

TEST(RelationTest, PermuteColumns) {
  Relation r(Schema({0, 1}));
  r.Append({1, 10});
  r.Append({2, 20});
  Relation p = r.PermuteColumns(Schema({1, 0}), {1, 0});
  EXPECT_EQ(p.At(0, 0), 10u);
  EXPECT_EQ(p.At(0, 1), 1u);
  EXPECT_EQ(p.schema().attrs(), (std::vector<AttrId>{1, 0}));
}

TEST(RelationTest, DistinctColumn) {
  Relation r(Schema({0, 1}));
  r.Append({1, 5});
  r.Append({1, 6});
  r.Append({2, 5});
  EXPECT_EQ(r.DistinctColumn(0), (std::vector<Value>{1, 2}));
  EXPECT_EQ(r.DistinctColumn(1), (std::vector<Value>{5, 6}));
}

TEST(RelationTest, SemiJoinFilter) {
  Relation r(Schema({0, 1}));
  r.Append({1, 5});
  r.Append({2, 6});
  r.Append({3, 7});
  Relation f = r.SemiJoinFilter(0, {1, 3});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f.At(0, 0), 1u);
  EXPECT_EQ(f.At(1, 0), 3u);
}

TEST(RelationTest, EmptyRelationProperties) {
  Relation r(Schema({0, 1}));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  r.SortAndDedup();
  EXPECT_TRUE(r.IsSortedUnique());
}

TEST(RelationTest, RandomSortDedupMatchesStdSet) {
  Rng rng(99);
  Relation r(Schema({0, 1, 2}));
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 500; ++i) {
    std::vector<Value> row = {Value(rng.Uniform(10)), Value(rng.Uniform(10)),
                              Value(rng.Uniform(10))};
    rows.push_back(row);
    r.Append(row);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  r.SortAndDedup();
  ASSERT_EQ(r.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(r.At(i, c), rows[i][size_t(c)]);
  }
}

TEST(CatalogTest, PutGetContains) {
  Catalog db;
  Relation r(Schema({0, 1}));
  r.Append({1, 2});
  db.Put("G", std::move(r));
  EXPECT_TRUE(db.Contains("G"));
  EXPECT_FALSE(db.Contains("H"));
  auto got = db.Get("G");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->size(), 1u);
  EXPECT_FALSE(db.Get("H").ok());
}

TEST(CatalogTest, ReplaceAndTotals) {
  Catalog db;
  Relation a(Schema({0, 1}));
  a.Append({1, 2});
  a.Append({3, 4});
  db.Put("R", std::move(a));
  EXPECT_EQ(db.TotalTuples(), 2u);
  Relation b(Schema({0}));
  b.Append({9});
  db.Put("R", std::move(b));
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_EQ(db.Names(), std::vector<std::string>{"R"});
}

TEST(CatalogTest, AliasSharesPhysicalStorage) {
  Catalog db;
  Relation r(Schema({0, 1}));
  r.Append({1, 2});
  db.Put("G", std::move(r));
  ASSERT_TRUE(db.Alias("G2", "G").ok());
  ASSERT_TRUE(db.Alias("G3", "G2").ok());
  EXPECT_TRUE(db.Contains("G2"));
  // All three names resolve to the same physical relation — no copy.
  EXPECT_EQ(*db.Get("G2"), *db.Get("G"));
  EXPECT_EQ(*db.Get("G3"), *db.Get("G"));
  EXPECT_EQ(db.Names(), (std::vector<std::string>{"G", "G2", "G3"}));
  // Self-alias is a harmless no-op; aliasing a missing name fails.
  EXPECT_TRUE(db.Alias("G", "G").ok());
  EXPECT_EQ(*db.Get("G"), *db.Get("G2"));
  EXPECT_FALSE(db.Alias("X", "missing").ok());
  EXPECT_FALSE(db.Contains("X"));
}

TEST(CatalogTest, TotalsCountAliasedRelationsOnce) {
  Catalog db;
  Relation r(Schema({0, 1}));
  r.Append({1, 2});
  r.Append({3, 4});
  db.Put("G", std::move(r));
  ASSERT_TRUE(db.Alias("G2", "G").ok());
  EXPECT_EQ(db.TotalTuples(), 2u);
  EXPECT_EQ(db.TotalBytes(), 4 * sizeof(Value));
  // A distinct physical relation still adds to the totals.
  Relation other(Schema({0}));
  other.Append({7});
  db.Put("H", std::move(other));
  EXPECT_EQ(db.TotalTuples(), 3u);
}

TEST(CatalogTest, PutReplacementRebindsOnlyThatName) {
  Catalog db;
  Relation r(Schema({0, 1}));
  r.Append({1, 2});
  db.Put("G", std::move(r));
  ASSERT_TRUE(db.Alias("G2", "G").ok());
  const Relation* original = *db.Get("G2");
  // Replacing "G" must not disturb the alias, which co-owns the old
  // physical relation.
  Relation fresh(Schema({0, 1}));
  fresh.Append({5, 6});
  fresh.Append({7, 8});
  db.Put("G", std::move(fresh));
  EXPECT_EQ(*db.Get("G2"), original);
  EXPECT_EQ((*db.Get("G2"))->At(0, 0), 1u);
  EXPECT_EQ((*db.Get("G"))->size(), 2u);
  EXPECT_NE(*db.Get("G"), *db.Get("G2"));
  EXPECT_EQ(db.TotalTuples(), 3u);  // two distinct physical relations
}

TEST(CatalogTest, PutSharedBorrowsAcrossCatalogs) {
  Catalog exec_db;
  const Relation* borrowed = nullptr;
  {
    Catalog source;
    Relation r(Schema({0, 1}));
    r.Append({1, 2});
    source.Put("G", std::move(r));
    auto shared = source.GetShared("G");
    ASSERT_TRUE(shared.ok());
    borrowed = shared->get();
    ASSERT_TRUE(exec_db.PutShared("G", std::move(shared.value())).ok());
    EXPECT_EQ(*exec_db.Get("G"), *source.Get("G"));
    EXPECT_FALSE(source.GetShared("missing").ok());
  }
  // The source catalog is gone; shared ownership keeps the relation
  // alive for the borrowing catalog.
  ASSERT_TRUE(exec_db.Contains("G"));
  EXPECT_EQ(*exec_db.Get("G"), borrowed);
  EXPECT_EQ((*exec_db.Get("G"))->At(0, 1), 2u);
  EXPECT_EQ(exec_db.TotalTuples(), 1u);
  EXPECT_FALSE(exec_db.PutShared("null", nullptr).ok());
  EXPECT_FALSE(exec_db.Contains("null"));
}

TEST(CatalogTest, GenerationBumpsOnEveryMappingMutation) {
  Catalog db;
  EXPECT_EQ(db.generation(), 0u);

  Relation r(Schema({0, 1}));
  r.Append({1, 2});
  db.Put("G", std::move(r));
  EXPECT_EQ(db.generation(), 1u);

  // Every successful mapping mutation bumps: Alias, PutShared, and a
  // replacing Put all invalidate plans built against the old mapping.
  ASSERT_TRUE(db.Alias("G2", "G").ok());
  EXPECT_EQ(db.generation(), 2u);
  auto shared = db.GetShared("G");
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(db.PutShared("G3", std::move(shared.value())).ok());
  EXPECT_EQ(db.generation(), 3u);
  Relation replacement(Schema({0, 1}));
  replacement.Append({7, 8});
  db.Put("G", std::move(replacement));
  EXPECT_EQ(db.generation(), 4u);

  // Reads and failed mutations leave the generation untouched.
  (void)db.Get("G");
  (void)db.Names();
  EXPECT_FALSE(db.Alias("X", "missing").ok());
  EXPECT_FALSE(db.PutShared("null", nullptr).ok());
  EXPECT_EQ(db.generation(), 4u);
}

}  // namespace
}  // namespace adj::storage
