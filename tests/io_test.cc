#include <algorithm>
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "dataset/generators.h"
#include "storage/edge_list_io.h"

namespace adj::storage {
namespace {

TEST(EdgeListParseTest, BasicParsing) {
  auto rel = ParseEdgeList("1 2\n3 4\n2 1\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 3u);
  EXPECT_TRUE(rel->IsSortedUnique());
  EXPECT_EQ(rel->At(0, 0), 1u);
  EXPECT_EQ(rel->At(0, 1), 2u);
}

TEST(EdgeListParseTest, CommentsAndBlanksIgnored) {
  auto rel = ParseEdgeList(
      "# SNAP header\n"
      "# Nodes: 4 Edges: 2\n"
      "\n"
      "1\t2\n"
      "   \n"
      "3\t4\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2u);
}

TEST(EdgeListParseTest, TabsAndSpacesBothWork) {
  auto rel = ParseEdgeList("1\t2\n3 4\n  5   6\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 3u);
}

TEST(EdgeListParseTest, SelfLoopsDropped) {
  auto rel = ParseEdgeList("1 1\n2 3\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
}

TEST(EdgeListParseTest, DuplicatesCollapse) {
  auto rel = ParseEdgeList("1 2\n1 2\n1 2\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
}

TEST(EdgeListParseTest, MalformedLineFails) {
  EXPECT_FALSE(ParseEdgeList("1 2\nbogus line\n").ok());
  EXPECT_FALSE(ParseEdgeList("1\n").ok());
}

TEST(EdgeListParseTest, OversizedIdFails) {
  auto rel = ParseEdgeList("99999999999 1\n");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kOutOfRange);
}

TEST(EdgeListIoTest, SaveLoadRoundTrip) {
  Rng rng(5);
  Relation original = dataset::ErdosRenyi(50, 200, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "adj_io_test.txt").string();
  ASSERT_TRUE(SaveEdgeList(original, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(std::ranges::equal(loaded->raw(), original.raw()));
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, MissingFileIsNotFound) {
  auto rel = LoadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kNotFound);
}

TEST(EdgeListIoTest, SaveRejectsWrongArity) {
  Relation r(Schema({0, 1, 2}));
  EXPECT_FALSE(SaveEdgeList(r, "/tmp/adj_io_bad.txt").ok());
}

}  // namespace
}  // namespace adj::storage
