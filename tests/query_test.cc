#include <gtest/gtest.h>

#include "query/attribute_order.h"
#include "query/hypergraph.h"
#include "query/queries.h"
#include "query/query.h"

namespace adj::query {
namespace {

TEST(QueryParseTest, Triangle) {
  auto q = Query::Parse("R1(a,b) R2(b,c) R3(a,c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_attrs(), 3);
  EXPECT_EQ(q->num_atoms(), 3);
  EXPECT_EQ(q->attr_name(0), "a");
  EXPECT_EQ(q->attr_name(2), "c");
  EXPECT_EQ(q->atom(0).relation, "R1");
  EXPECT_EQ(q->atom(1).schema.attrs(), (std::vector<AttrId>{1, 2}));
}

TEST(QueryParseTest, AttrIdsAreAlphabetical) {
  auto q = Query::Parse("R(e,a) S(c,a)");
  ASSERT_TRUE(q.ok());
  // Names sorted: a=0, c=1, e=2.
  EXPECT_EQ(q->atom(0).schema.attrs(), (std::vector<AttrId>{2, 0}));
  EXPECT_EQ(q->atom(1).schema.attrs(), (std::vector<AttrId>{1, 0}));
}

TEST(QueryParseTest, CommasAndWhitespaceFlexible) {
  auto q = Query::Parse("  R ( a , b ) ,  S(b,c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_atoms(), 2);
}

TEST(QueryParseTest, Failures) {
  EXPECT_FALSE(Query::Parse("").ok());
  EXPECT_FALSE(Query::Parse("R").ok());
  EXPECT_FALSE(Query::Parse("R(").ok());
  EXPECT_FALSE(Query::Parse("R()").ok());
  EXPECT_FALSE(Query::Parse("R(a,a)").ok());  // repeated attribute
  EXPECT_FALSE(Query::Parse("R(a) %").ok());
}

TEST(QueryTest, AtomsWith) {
  auto q = Query::Parse("R(a,b) S(b,c) T(a,c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->AtomsWith(0), AtomMask(0b101));  // R and T contain a
  EXPECT_EQ(q->AtomsWith(1), AtomMask(0b011));
}

TEST(QueryTest, AttrByName) {
  auto q = Query::Parse("R(a,b)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q->AttrByName("b"), 1);
  EXPECT_FALSE(q->AttrByName("z").ok());
}

TEST(QueryTest, ToStringRoundTripsShape) {
  auto q = Query::Parse("R1(a,b) R2(b,c)");
  ASSERT_TRUE(q.ok());
  std::string s = q->ToString();
  EXPECT_NE(s.find("R1(a,b)"), std::string::npos);
  EXPECT_NE(s.find("R2(b,c)"), std::string::npos);
}

TEST(BenchmarkQueriesTest, AllParse) {
  for (int i = 1; i <= 11; ++i) {
    auto q = MakeBenchmarkQuery(i);
    ASSERT_TRUE(q.ok()) << "Q" << i;
    EXPECT_GE(q->num_atoms(), 2) << "Q" << i;
  }
  EXPECT_FALSE(MakeBenchmarkQuery(0).ok());
  EXPECT_FALSE(MakeBenchmarkQuery(12).ok());
}

TEST(BenchmarkQueriesTest, ShapesMatchPaper) {
  EXPECT_EQ(MakeBenchmarkQuery(1)->num_atoms(), 3);    // triangle
  EXPECT_EQ(MakeBenchmarkQuery(2)->num_atoms(), 6);    // 4-clique
  EXPECT_EQ(MakeBenchmarkQuery(2)->num_attrs(), 4);
  EXPECT_EQ(MakeBenchmarkQuery(3)->num_atoms(), 10);   // 5-clique
  EXPECT_EQ(MakeBenchmarkQuery(3)->num_attrs(), 5);
  EXPECT_EQ(MakeBenchmarkQuery(4)->num_atoms(), 6);
  EXPECT_EQ(MakeBenchmarkQuery(5)->num_atoms(), 7);
  EXPECT_EQ(MakeBenchmarkQuery(6)->num_atoms(), 8);
}

TEST(HypergraphTest, FromQuery) {
  auto q = Query::Parse("R(a,b) S(b,c) T(a,c)");
  Hypergraph h(*q);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.edge(0), AttrMask(0b011));
}

TEST(HypergraphTest, EdgesConnected) {
  auto q = Query::Parse("R(a,b) S(b,c) T(d,e)");
  Hypergraph h(*q);
  EXPECT_TRUE(h.EdgesConnected(0b011));   // R,S share b
  EXPECT_FALSE(h.EdgesConnected(0b101));  // R,T disjoint
  EXPECT_TRUE(h.EdgesConnected(0b100));   // single edge
  EXPECT_TRUE(h.EdgesConnected(0));       // empty
}

TEST(HypergraphTest, GyoAcyclicOnTree) {
  // Path query a-b, b-c, c-d: acyclic.
  std::vector<AttrMask> edges = {0b0011, 0b0110, 0b1100};
  std::vector<int> parent;
  EXPECT_TRUE(Hypergraph::GyoAcyclic(edges, &parent));
  // Exactly one root.
  int roots = 0;
  for (int p : parent) {
    if (p == -1) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(HypergraphTest, GyoRejectsTriangle) {
  std::vector<AttrMask> edges = {0b011, 0b110, 0b101};
  EXPECT_FALSE(Hypergraph::GyoAcyclic(edges, nullptr));
}

TEST(HypergraphTest, GyoAcceptsContainedEdge) {
  // (a,b,c) with (a,b) inside it.
  std::vector<AttrMask> edges = {0b111, 0b011};
  std::vector<int> parent;
  EXPECT_TRUE(Hypergraph::GyoAcyclic(edges, &parent));
  // One of the two edges roots the join tree, the other hangs off it.
  EXPECT_TRUE((parent[0] == -1 && parent[1] == 0) ||
              (parent[0] == 1 && parent[1] == -1));
}

TEST(HypergraphTest, GyoPaperExampleGroupedSchemas) {
  // Example 3: bags {a,b,c}, {a,c,d}, {b,c,e} are acyclic.
  std::vector<AttrMask> edges = {0b00111, 0b01101, 0b10110};
  std::vector<int> parent;
  EXPECT_TRUE(Hypergraph::GyoAcyclic(edges, &parent));
}

TEST(HypergraphTest, VerticesOf) {
  auto q = Query::Parse("R(a,b) S(b,c)");
  Hypergraph h(*q);
  EXPECT_EQ(h.VerticesOf(0b11), AttrMask(0b111));
  EXPECT_EQ(h.VerticesOf(0b01), AttrMask(0b011));
}

TEST(AttributeOrderTest, RankOf) {
  AttributeOrder order = {2, 0, 1};
  std::vector<int> rank = RankOf(order, 4);
  EXPECT_EQ(rank[2], 0);
  EXPECT_EQ(rank[0], 1);
  EXPECT_EQ(rank[1], 2);
  EXPECT_EQ(rank[3], -1);
}

TEST(AttributeOrderTest, AllOrdersCountsFactorial) {
  EXPECT_EQ(AllOrders(0b111).size(), 6u);
  EXPECT_EQ(AllOrders(0b11111).size(), 120u);
  EXPECT_EQ(AllOrders(0b1).size(), 1u);
}

TEST(AttributeOrderTest, AllOrdersCoverMaskOnly) {
  for (const AttributeOrder& o : AllOrders(0b101)) {
    ASSERT_EQ(o.size(), 2u);
    for (AttrId a : o) EXPECT_TRUE(a == 0 || a == 2);
  }
}

TEST(AttributeOrderTest, OrderToString) {
  auto q = Query::Parse("R(a,b) S(b,c)");
  EXPECT_EQ(OrderToString({0, 1, 2}, *q), "a < b < c");
}

}  // namespace
}  // namespace adj::query
