#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/engine.h"
#include "dataset/builtin.h"
#include "dataset/generators.h"
#include "query/queries.h"
#include "wcoj/naive_join.h"

namespace adj::core {
namespace {

storage::Catalog SmallDb(uint64_t seed, uint64_t nodes = 30,
                         uint64_t edges = 150) {
  Rng rng(seed);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(nodes, edges, rng));
  return db;
}

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.cluster.num_servers = 4;
  opts.num_samples = 64;
  return opts;
}

/// End-to-end equivalence: all five strategies return the oracle count
/// on every evaluated query.
class StrategyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, Strategy>> {};

TEST_P(StrategyEquivalenceTest, CountMatchesOracle) {
  const int qi = std::get<0>(GetParam());
  const Strategy strategy = std::get<1>(GetParam());
  auto q = query::MakeBenchmarkQuery(qi);
  ASSERT_TRUE(q.ok());
  storage::Catalog db = SmallDb(uint64_t(qi));
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());

  Engine engine(&db);
  auto report = engine.Run(*q, strategy, FastOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->ok()) << report->status;
  EXPECT_EQ(report->output_count, naive->size())
      << "Q" << qi << " " << StrategyName(strategy);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllQueries, StrategyEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(Strategy::kCoOpt,
                                         Strategy::kCommFirst,
                                         Strategy::kCachedCommFirst,
                                         Strategy::kBinaryJoin,
                                         Strategy::kBigJoin)));

/// The same equivalence on a second random graph and the easy queries.
class EasyQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(EasyQueryTest, CoOptMatchesOracle) {
  const int qi = GetParam();
  auto q = query::MakeBenchmarkQuery(qi);
  storage::Catalog db = SmallDb(uint64_t(100 + qi), 40, 250);
  auto naive = wcoj::NaiveJoin(*q, db);
  ASSERT_TRUE(naive.ok());
  Engine engine(&db);
  auto report = engine.Run(*q, Strategy::kCoOpt, FastOptions());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_EQ(report->output_count, naive->size());
}

INSTANTIATE_TEST_SUITE_P(Easy, EasyQueryTest,
                         ::testing::Values(7, 8, 9, 10, 11));

TEST(EngineTest, PlanIsValidForPaperQuery) {
  storage::Catalog db = SmallDb(42, 60, 500);
  auto q = query::MakeBenchmarkQuery(5);
  Engine engine(&db);
  auto planned = engine.Plan(*q, FastOptions());
  ASSERT_TRUE(planned.ok()) << planned.status();
  const optimizer::QueryPlan& plan = planned->plan;
  EXPECT_EQ(plan.order.size(), size_t(q->num_attrs()));
  EXPECT_TRUE(ghd::IsValidOrder(plan.decomp, *q, plan.order));
  EXPECT_GT(planned->optimize_s, 0.0);
}

TEST(EngineTest, ExhaustivePlannerAgreesOnCount) {
  storage::Catalog db = SmallDb(43);
  auto q = query::MakeBenchmarkQuery(5);
  auto naive = wcoj::NaiveJoin(*q, db);
  Engine engine(&db);
  EngineOptions opts = FastOptions();
  opts.use_exhaustive_planner = true;
  auto report = engine.Run(*q, Strategy::kCoOpt, opts);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_EQ(report->output_count, naive->size());
}

TEST(EngineTest, ExactEstimatePlannerAgreesOnCount) {
  storage::Catalog db = SmallDb(44);
  auto q = query::MakeBenchmarkQuery(4);
  auto naive = wcoj::NaiveJoin(*q, db);
  Engine engine(&db);
  EngineOptions opts = FastOptions();
  opts.use_exact_estimates = true;
  auto report = engine.Run(*q, Strategy::kCoOpt, opts);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_EQ(report->output_count, naive->size());
}

TEST(EngineTest, ReportBreaksDownCosts) {
  storage::Catalog db = SmallDb(45, 60, 600);
  auto q = query::MakeBenchmarkQuery(5);
  Engine engine(&db);
  auto report = engine.Run(*q, Strategy::kCoOpt, FastOptions());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_GT(report->optimize_s, 0.0);
  EXPECT_GT(report->comm_s, 0.0);
  EXPECT_GE(report->comp_s, 0.0);
  EXPECT_GT(report->TotalSeconds(), 0.0);
  EXPECT_FALSE(report->plan_description.empty());
}

TEST(EngineTest, TimeLimitEmulatesTimeout) {
  storage::Catalog db = SmallDb(46, 300, 8000);
  auto q = query::MakeBenchmarkQuery(3);
  Engine engine(&db);
  EngineOptions opts = FastOptions();
  opts.limits.max_extensions = 1000;  // emulate memory pressure
  auto report = engine.Run(*q, Strategy::kCommFirst, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(EngineTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kCoOpt), "ADJ");
  EXPECT_STREQ(StrategyName(Strategy::kCommFirst), "HCubeJ");
  EXPECT_STREQ(StrategyName(Strategy::kCachedCommFirst), "HCubeJ+Cache");
  EXPECT_STREQ(StrategyName(Strategy::kBinaryJoin), "SparkSQL");
  EXPECT_STREQ(StrategyName(Strategy::kBigJoin), "BigJoin");
}

TEST(EngineTest, CommFirstOrderCoversAllAttrs) {
  storage::Catalog db = SmallDb(47);
  auto q = query::MakeBenchmarkQuery(6);
  Engine engine(&db);
  auto order = engine.SelectCommFirstOrder(*q);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), size_t(q->num_attrs()));
}

TEST(EngineTest, DeterministicAcrossRuns) {
  storage::Catalog db = SmallDb(48);
  auto q = query::MakeBenchmarkQuery(5);
  Engine engine(&db);
  auto a = engine.Run(*q, Strategy::kCoOpt, FastOptions());
  auto b = engine.Run(*q, Strategy::kCoOpt, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->output_count, b->output_count);
  EXPECT_EQ(a->comm.tuple_copies, b->comm.tuple_copies);
}

TEST(EngineTest, BuiltinDatasetSmokeRun) {
  auto g = dataset::MakeBuiltin("WB", 0.05);
  ASSERT_TRUE(g.ok());
  storage::Catalog db;
  db.Put("G", std::move(g.value()));
  auto q = query::MakeBenchmarkQuery(1);
  Engine engine(&db);
  auto adj = engine.Run(*q, Strategy::kCoOpt, FastOptions());
  auto hcj = engine.Run(*q, Strategy::kCommFirst, FastOptions());
  ASSERT_TRUE(adj.ok() && hcj.ok());
  ASSERT_TRUE(adj->ok() && hcj->ok());
  EXPECT_EQ(adj->output_count, hcj->output_count);
  EXPECT_GT(adj->output_count, 0u);
}

}  // namespace
}  // namespace adj::core
