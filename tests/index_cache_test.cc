// Coverage for the shared index layer: the storage::IndexCache's
// pointer-identity contract, generation-bump invalidation, the
// single-flight build guarantee, and the end-to-end "a prepared
// query's second run builds zero indexes" acceptance — pinned here at
// cache-stats level, unreachable from the api-level suites.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/api.h"
#include "common/rng.h"
#include "core/engine.h"
#include "dataset/generators.h"
#include "dist/hcube.h"
#include "exec/hcubej.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/index_cache.h"
#include "wcoj/leapfrog.h"

namespace adj::storage {
namespace {

Relation SmallGraph(uint64_t seed, uint64_t nodes = 30,
                    uint64_t edges = 150) {
  Rng rng(seed);
  return dataset::ErdosRenyi(nodes, edges, rng);
}

std::vector<int> IdentityPerm(const Relation& rel) {
  std::vector<int> perm(size_t(rel.arity()));
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = int(i);
  return perm;
}

TEST(IndexCacheTest, HitReturnsPointerIdenticalIndex) {
  Catalog db;
  db.Put("G", SmallGraph(1));
  std::shared_ptr<const Relation> base = *db.GetShared("G");

  auto first = db.index_cache().GetPermuted(base, base->schema(),
                                            IdentityPerm(*base));
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = db.index_cache().GetPermuted(base, base->schema(),
                                             IdentityPerm(*base));
  ASSERT_TRUE(second.ok()) << second.status();

  // The artifact, its relation, and its trie are all the same objects.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((*first)->rel.get(), (*second)->rel.get());
  EXPECT_EQ((*first)->trie.get(), (*second)->trie.get());
  EXPECT_TRUE((*first)->rel->IsSortedUnique());
  EXPECT_EQ((*first)->trie->NumTuples(), (*first)->rel->size());

  // Layered entries: rows + trie + labeled bind on the first call (the
  // trie layer re-resolves the rows layer, scoring the first hit); the
  // second call hits the labeled bind directly.
  IndexCache::Stats stats = db.index_cache().stats();
  EXPECT_EQ(stats.builds, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(IndexCacheTest, LabelingsOfOnePermutationSharePayload) {
  Catalog db;
  db.Put("G", SmallGraph(15));
  std::shared_ptr<const Relation> base = *db.GetShared("G");

  // Two attribute labelings of the same physical permutation — the
  // triangle query's G(a,b) / G(b,c) / G(a,c) pattern.
  Schema ab({0, 1}), bc({1, 2});
  auto first = db.index_cache().GetPermuted(base, ab, {0, 1});
  ASSERT_TRUE(first.ok()) << first.status();
  const uint64_t bytes_one_labeling = db.index_cache().resident_bytes();
  auto second = db.index_cache().GetPermuted(base, bc, {0, 1});
  ASSERT_TRUE(second.ok()) << second.status();

  // Distinct labeled artifacts, one physical payload: the trie pointer
  // and the row buffer are shared, and the second labeling adds zero
  // resident bytes.
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ((*first)->trie.get(), (*second)->trie.get());
  EXPECT_EQ((*first)->rel->RowsIdentity(), (*second)->rel->RowsIdentity());
  EXPECT_EQ((*first)->rel->schema().ToString(), ab.ToString());
  EXPECT_EQ((*second)->rel->schema().ToString(), bc.ToString());
  EXPECT_EQ(db.index_cache().resident_bytes(), bytes_one_labeling);
}

TEST(IndexCacheTest, TrieLessBindSharesRowsAndSkipsTrieBuild) {
  Catalog db;
  db.Put("G", SmallGraph(16));
  std::shared_ptr<const Relation> base = *db.GetShared("G");

  auto rel = db.index_cache().GetPermutedRelation(base, base->schema(),
                                                  IdentityPerm(*base));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE((*rel)->IsSortedUnique());
  // Only the rows layer and the trie-less alias exist — no trie was
  // built for a hash-join-only bind.
  EXPECT_EQ(db.index_cache().size(), 2u);
  const uint64_t rows_only_bytes = db.index_cache().resident_bytes();

  auto idx = db.index_cache().GetPermuted(base, base->schema(),
                                          IdentityPerm(*base));
  ASSERT_TRUE(idx.ok()) << idx.status();
  // The trie-backed bind reuses the same row payload and only then
  // pays for the trie.
  EXPECT_EQ((*rel)->RowsIdentity(), (*idx)->rel->RowsIdentity());
  EXPECT_GT(db.index_cache().resident_bytes(), rows_only_bytes);
}

TEST(IndexCacheTest, DistinctColumnOrdersAreDistinctEntries) {
  Catalog db;
  db.Put("G", SmallGraph(2));
  std::shared_ptr<const Relation> base = *db.GetShared("G");

  auto forward = db.index_cache().GetPermuted(base, base->schema(), {0, 1});
  ASSERT_TRUE(forward.ok());
  // Reversed column order: same relation, different index.
  std::vector<AttrId> attrs = base->schema().attrs();
  Schema reversed({attrs[1], attrs[0]});
  auto backward = db.index_cache().GetPermuted(base, reversed, {1, 0});
  ASSERT_TRUE(backward.ok());
  EXPECT_NE(forward->get(), backward->get());
  // Distinct permutations share nothing: two full layer stacks.
  EXPECT_EQ(db.index_cache().stats().builds, 6u);
}

TEST(IndexCacheTest, GenerationBumpEvictsReplacedRelationsIndexes) {
  Catalog db;
  db.Put("G", SmallGraph(3));
  db.Put("H", SmallGraph(4));
  {
    std::shared_ptr<const Relation> g = *db.GetShared("G");
    std::shared_ptr<const Relation> h = *db.GetShared("H");
    ASSERT_TRUE(db.index_cache()
                    .GetPermuted(g, g->schema(), IdentityPerm(*g))
                    .ok());
    ASSERT_TRUE(db.index_cache()
                    .GetPermuted(h, h->schema(), IdentityPerm(*h))
                    .ok());
  }
  // Three layered entries (rows, trie, labeled bind) per relation.
  ASSERT_EQ(db.index_cache().size(), 6u);

  // Replacing G bumps the generation and sweeps G's index; H's entries
  // survive pointer-identical.
  const Relation* h_before =
      db.index_cache()
          .GetPermuted(*db.GetShared("H"), (*db.Get("H"))->schema(),
                       IdentityPerm(**db.Get("H")))
          .value()
          ->rel.get();
  const uint64_t gen_before = db.generation();
  db.Put("G", SmallGraph(5));
  EXPECT_GT(db.generation(), gen_before);
  EXPECT_EQ(db.index_cache().size(), 3u);
  EXPECT_GE(db.index_cache().stats().evictions, 1u);
  const Relation* h_after =
      db.index_cache()
          .GetPermuted(*db.GetShared("H"), (*db.Get("H"))->schema(),
                       IdentityPerm(**db.Get("H")))
          .value()
          ->rel.get();
  EXPECT_EQ(h_before, h_after);
}

TEST(IndexCacheTest, HeldIndexesSurviveReplacementUntilReleased) {
  Catalog db;
  db.Put("G", SmallGraph(6));
  std::shared_ptr<const Relation> base = *db.GetShared("G");
  auto held = db.index_cache().GetPermuted(base, base->schema(),
                                           IdentityPerm(*base));
  ASSERT_TRUE(held.ok());

  // A consumer (here: `base` + `held`, standing in for a prepared
  // ExecutionContext aliasing the relation) still references the old
  // G, so the entry must not be swept out from under it...
  db.Put("G", SmallGraph(7));
  EXPECT_EQ(db.index_cache().size(), 3u);

  // ...but once the last consumer lets go, the next bump collects it.
  held = StatusOr<std::shared_ptr<const PreparedIndex>>(
      Status::Internal("released"));
  base.reset();
  db.Put("X", SmallGraph(8));
  EXPECT_EQ(db.index_cache().size(), 0u);
}

TEST(IndexCacheTest, ConcurrentLookupsBuildOnce) {
  Catalog db;
  db.Put("G", SmallGraph(9, 60, 400));
  std::shared_ptr<const Relation> base = *db.GetShared("G");

  constexpr int kThreads = 8;
  std::atomic<int> build_calls{0};
  std::atomic<const void*> first_artifact{nullptr};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      auto artifact = db.index_cache().GetOrBuild(
          base.get(), "single-flight-test", base,
          [&]() -> StatusOr<IndexCache::BuildResult> {
            ++build_calls;
            // Give waiters time to pile onto the in-flight build.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            auto index = std::make_shared<PreparedIndex>();
            index->rel = base;
            index->trie =
                std::make_shared<const Trie>(Trie::Build(*base));
            return IndexCache::BuildResult{index, index->Bytes()};
          });
      if (!artifact.ok()) {
        mismatch = true;
        return;
      }
      const void* expected = nullptr;
      if (!first_artifact.compare_exchange_strong(expected,
                                                  artifact->get())) {
        if (expected != artifact->get()) mismatch = true;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(build_calls.load(), 1);
  EXPECT_FALSE(mismatch.load());
  IndexCache::Stats stats = db.index_cache().stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.hits, uint64_t(kThreads - 1));
}

TEST(IndexCacheTest, FailedBuildIsNotCachedAndRetries) {
  Catalog db;
  db.Put("G", SmallGraph(10));
  std::shared_ptr<const Relation> base = *db.GetShared("G");

  int calls = 0;
  auto failing = db.index_cache().GetOrBuild(
      base.get(), "retry-test", base,
      [&]() -> StatusOr<IndexCache::BuildResult> {
        ++calls;
        return Status::Internal("injected build failure");
      });
  EXPECT_FALSE(failing.ok());
  auto retried = db.index_cache().GetOrBuild(
      base.get(), "retry-test", base,
      [&]() -> StatusOr<IndexCache::BuildResult> {
        ++calls;
        auto index = std::make_shared<PreparedIndex>();
        index->rel = base;
        index->trie = std::make_shared<const Trie>(Trie::Build(*base));
        return IndexCache::BuildResult{index, index->Bytes()};
      });
  EXPECT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(db.index_cache().stats().build_failures, 1u);
}

TEST(IndexCacheTest, ByteBudgetEvictsUnreferencedLru) {
  Catalog db;
  db.Put("A", SmallGraph(11, 40, 300));
  db.Put("B", SmallGraph(12, 40, 300));
  std::shared_ptr<const Relation> a = *db.GetShared("A");
  std::shared_ptr<const Relation> b = *db.GetShared("B");

  auto idx_a =
      db.index_cache().GetPermuted(a, a->schema(), IdentityPerm(*a));
  ASSERT_TRUE(idx_a.ok());
  const uint64_t one_entry = db.index_cache().resident_bytes();
  ASSERT_GT(one_entry, 0u);
  idx_a = StatusOr<std::shared_ptr<const PreparedIndex>>(
      Status::Internal("released"));

  // Budget for ~one entry: inserting B's index evicts A's (LRU, no
  // outside holder), keeping the cache within budget.
  db.index_cache().set_budget_bytes(one_entry + one_entry / 2);
  auto idx_b =
      db.index_cache().GetPermuted(b, b->schema(), IdentityPerm(*b));
  ASSERT_TRUE(idx_b.ok());
  EXPECT_LE(db.index_cache().resident_bytes(),
            one_entry + one_entry / 2);
  // A's stack was (at least partially) evicted to make room; B's full
  // stack (rows, trie, labeled bind) is resident and usable.
  EXPECT_GE(db.index_cache().stats().evictions, 1u);
  EXPECT_LT(db.index_cache().size(), 6u);
  EXPECT_TRUE((*idx_b)->rel->IsSortedUnique());
}

}  // namespace
}  // namespace adj::storage

namespace adj {
namespace {

// The tentpole acceptance, asserted through the public facade: with a
// warm cache, a prepared query's second Run performs zero
// Trie::Build/SortAndDedup calls on base relations.
TEST(IndexReuseTest, PreparedSecondRunBuildsZeroIndexes) {
  Rng rng(13);
  api::Database db;
  db.AddRelation("G", dataset::ErdosRenyi(40, 250, rng));
  api::Session session = db.OpenSession();
  session.options().num_samples = 64;

  StatusOr<api::PreparedQuery> prepared =
      session.Prepare("G(a,b) G(b,c) G(a,c)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  // Prepare pinned the bound-atom indexes and reported them in the
  // EXPLAIN rendering.
  EXPECT_NE(prepared->explanation().find("pinned indexes"),
            std::string::npos);
  EXPECT_GT(prepared->resident_bytes(), 0u);

  api::Result first = prepared->Run();
  ASSERT_TRUE(first.ok()) << first.status();
  // Run 1 reuses every bound-atom index (pinned at Prepare) but still
  // builds the per-server shard artifacts.
  EXPECT_GT(first.index_builds(), 0u);
  EXPECT_GT(first.index_reused(), 0u);

  for (int run = 2; run <= 3; ++run) {
    api::Result warm = prepared->Run();
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm.index_builds(), 0u) << "run " << run;
    EXPECT_GT(warm.index_reused(), 0u) << "run " << run;
    EXPECT_EQ(warm.count(), first.count()) << "run " << run;
  }
}

// Direct (unprepared) repeat execution of the same query also reuses
// the catalog-level cache across Engine::Run calls.
TEST(IndexReuseTest, RepeatedDirectRunsReuseIndexes) {
  Rng rng(14);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(40, 250, rng));
  core::Engine engine(&db);
  query::Query q = *query::Query::Parse("G(a,b) G(b,c)");
  core::EngineOptions options;

  StatusOr<exec::RunReport> cold = engine.Run(q, "HCubeJ", options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_GT(cold->index_builds, 0u);
  StatusOr<exec::RunReport> warm = engine.Run(q, "HCubeJ", options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->index_builds, 0u);
  EXPECT_GT(warm->index_reused, 0u);
  EXPECT_EQ(warm->output_count, cold->output_count);
  // Modeled communication is identical cold and warm: the cache saves
  // computation, not modeled traffic.
  EXPECT_EQ(warm->comm.bytes, cold->comm.bytes);
  EXPECT_EQ(warm->comm.tuple_copies, cold->comm.tuple_copies);
}

}  // namespace
}  // namespace adj
