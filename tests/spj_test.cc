#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/spj.h"
#include "dataset/generators.h"
#include "wcoj/naive_join.h"

namespace adj::core {
namespace {

storage::Catalog SmallDb(uint64_t seed) {
  Rng rng(seed);
  storage::Catalog db;
  db.Put("G", dataset::ErdosRenyi(25, 120, rng));
  return db;
}

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.cluster.num_servers = 4;
  opts.num_samples = 64;
  return opts;
}

TEST(SpjParseTest, JoinOnly) {
  auto spj = ParseSpj("G(a,b) G(b,c)");
  ASSERT_TRUE(spj.ok());
  EXPECT_TRUE(spj->selections.empty());
  EXPECT_EQ(spj->projection, 0u);
}

TEST(SpjParseTest, SelectionsAndProjection) {
  auto spj = ParseSpj("G(a,b) G(b,c) | a=5, c=7 | a, b");
  ASSERT_TRUE(spj.ok());
  ASSERT_EQ(spj->selections.size(), 2u);
  EXPECT_EQ(spj->selections[0].attr, 0);
  EXPECT_EQ(spj->selections[0].value, 5u);
  EXPECT_EQ(spj->selections[1].attr, 2);
  EXPECT_EQ(spj->selections[1].value, 7u);
  EXPECT_EQ(spj->projection, AttrMask(0b011));
}

TEST(SpjParseTest, Failures) {
  EXPECT_FALSE(ParseSpj("G(a,b) | a5").ok());     // missing '='
  EXPECT_FALSE(ParseSpj("G(a,b) | z=1").ok());    // unknown attribute
  EXPECT_FALSE(ParseSpj("G(a,b) | a=x").ok());    // non-numeric constant
  EXPECT_FALSE(ParseSpj("G(a,b) | | | d").ok());  // too many sections
  EXPECT_FALSE(ParseSpj("G(a,b) | a=1 | z").ok()); // unknown projection
}

TEST(SpjParseTest, ToStringMentionsAllParts) {
  auto spj = ParseSpj("G(a,b) G(b,c) | a=5 | b");
  ASSERT_TRUE(spj.ok());
  std::string s = spj->ToString();
  EXPECT_NE(s.find("WHERE"), std::string::npos);
  EXPECT_NE(s.find("a=5"), std::string::npos);
  EXPECT_NE(s.find("PROJECT"), std::string::npos);
}

TEST(SpjPushDownTest, FiltersOnlyTouchedAtoms) {
  storage::Catalog db = SmallDb(3);
  auto spj = ParseSpj("G(a,b) G(b,c) | a=1");
  ASSERT_TRUE(spj.ok());
  auto pushed = PushDownSelections(db, *spj);
  ASSERT_TRUE(pushed.ok());
  // Atom 0 is rewritten to a derived relation, atom 1 untouched.
  EXPECT_EQ(pushed->query.atom(0).relation, "G__sel0");
  EXPECT_EQ(pushed->query.atom(1).relation, "G");
  auto filtered = pushed->catalog.Get("G__sel0");
  ASSERT_TRUE(filtered.ok());
  for (uint64_t r = 0; r < (*filtered)->size(); ++r) {
    EXPECT_EQ((*filtered)->At(r, 0), 1u);
  }
  EXPECT_GT(pushed->filtered, 0u);
}

/// Oracle for SPJ: filter + naive join + manual projection.
uint64_t SpjOracle(const storage::Catalog& db, const SpjQuery& spj) {
  auto pushed = PushDownSelections(db, spj);
  EXPECT_TRUE(pushed.ok());
  auto joined = wcoj::NaiveJoin(pushed->query, pushed->catalog);
  EXPECT_TRUE(joined.ok());
  if (spj.projection == 0) return joined->size();
  std::set<std::vector<Value>> distinct;
  std::vector<int> cols;
  for (int a = 0; a < spj.join.num_attrs(); ++a) {
    if (spj.projection & (AttrMask(1) << a)) {
      cols.push_back(joined->schema().PositionOf(a));
    }
  }
  for (uint64_t r = 0; r < joined->size(); ++r) {
    std::vector<Value> t;
    for (int c : cols) t.push_back(joined->At(r, c));
    distinct.insert(t);
  }
  return distinct.size();
}

TEST(SpjRunTest, SelectionOnlyMatchesOracle) {
  storage::Catalog db = SmallDb(7);
  auto spj = ParseSpj("G(a,b) G(b,c) G(a,c) | a=2");
  ASSERT_TRUE(spj.ok());
  auto result = RunSpj(db, *spj, Strategy::kCommFirst, FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->report.ok());
  EXPECT_EQ(result->projected_count, SpjOracle(db, *spj));
}

TEST(SpjRunTest, ProjectionCountsDistinct) {
  storage::Catalog db = SmallDb(9);
  auto spj = ParseSpj("G(a,b) G(b,c) | | a");
  ASSERT_TRUE(spj.ok());
  auto result = RunSpj(db, *spj, Strategy::kCommFirst, FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->report.ok());
  EXPECT_EQ(result->projected_count, SpjOracle(db, *spj));
  // Distinct a-values can not exceed the number of nodes.
  EXPECT_LE(result->projected_count, 25u);
}

TEST(SpjRunTest, SelectionPlusProjectionWithCoOpt) {
  storage::Catalog db = SmallDb(11);
  auto spj = ParseSpj("G(a,b) G(b,c) G(a,c) | b=3 | a, c");
  ASSERT_TRUE(spj.ok());
  auto result = RunSpj(db, *spj, Strategy::kCoOpt, FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->report.ok());
  EXPECT_EQ(result->projected_count, SpjOracle(db, *spj));
}

TEST(SpjRunTest, EmptySelectionResultIsZero) {
  storage::Catalog db = SmallDb(13);
  auto spj = ParseSpj("G(a,b) G(b,c) | a=4000000");
  ASSERT_TRUE(spj.ok());
  auto result = RunSpj(db, *spj, Strategy::kCommFirst, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->projected_count, 0u);
}

TEST(SpjRunTest, PushDownReducesShuffleVolume) {
  storage::Catalog db = SmallDb(15);
  auto with_sel = ParseSpj("G(a,b) G(b,c) G(a,c) | a=1");
  auto without = ParseSpj("G(a,b) G(b,c) G(a,c)");
  ASSERT_TRUE(with_sel.ok() && without.ok());
  auto r1 = RunSpj(db, *with_sel, Strategy::kCommFirst, FastOptions());
  auto r2 = RunSpj(db, *without, Strategy::kCommFirst, FastOptions());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LT(r1->report.comm.tuple_copies, r2->report.comm.tuple_copies);
}

}  // namespace
}  // namespace adj::core
