#include "storage/trie.h"

#include <algorithm>

#include "common/logging.h"

namespace adj::storage {

Trie Trie::Build(const Relation& rel) {
  ADJ_CHECK(rel.IsSortedUnique()) << "Trie::Build requires sorted+dedup input";
  Trie trie;
  const int k = rel.arity();
  if (k == 0) return trie;
  trie.levels_.resize(k);
  const uint64_t rows = rel.size();
  if (rows == 0) {
    for (int l = 0; l + 1 < k; ++l) trie.levels_[l].child_begin = {0};
    return trie;
  }

  // Single pass over sorted rows: a row opens new nodes at every level
  // at or below the first column where it differs from the previous row.
  for (uint64_t r = 0; r < rows; ++r) {
    std::span<const Value> row = rel.Row(r);
    int diff = 0;
    if (r > 0) {
      std::span<const Value> prev = rel.Row(r - 1);
      while (diff < k && prev[diff] == row[diff]) ++diff;
    }
    for (int l = diff; l < k; ++l) {
      Level& level = trie.levels_[l];
      if (l + 1 < k) {
        // This node's children start at the current end of level l+1.
        level.child_begin.push_back(
            static_cast<uint32_t>(trie.levels_[l + 1].values.size()));
      }
      level.values.push_back(row[l]);
    }
  }
  // Close the child ranges with one-past-the-end sentinels.
  for (int l = 0; l + 1 < k; ++l) {
    trie.levels_[l].child_begin.push_back(
        static_cast<uint32_t>(trie.levels_[l + 1].values.size()));
  }
  // Widest sibling range per level, so executors can size intersection
  // buffers at Run() without rescanning the index.
  trie.levels_[0].max_range_width =
      static_cast<uint32_t>(trie.levels_[0].values.size());
  for (int l = 0; l + 1 < k; ++l) {
    const std::vector<uint32_t>& begin = trie.levels_[l].child_begin;
    uint32_t widest = 0;
    for (size_t i = 0; i + 1 < begin.size(); ++i) {
      widest = std::max(widest, begin[i + 1] - begin[i]);
    }
    trie.levels_[l + 1].max_range_width = widest;
  }
  return trie;
}

uint64_t Trie::StorageValues() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    total += level.values.size() + level.child_begin.size();
  }
  return total;
}

uint32_t Trie::SeekInRange(int level, Range r, Value v) const {
  const std::vector<Value>& vals = levels_[level].values;
  uint32_t lo = r.lo;
  uint32_t hi = r.hi;
  if (lo >= hi || vals[lo] >= v) return lo;
  // Galloping phase: double the step from lo until we overshoot.
  uint32_t step = 1;
  uint32_t prev = lo;
  uint32_t cur = lo + 1;
  while (cur < hi && vals[cur] < v) {
    prev = cur;
    step <<= 1;
    cur = (step > hi - lo) ? hi : lo + step;
  }
  // Binary search in (prev, cur].
  uint32_t a = prev + 1, b = std::min(cur + 1, hi);
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (vals[mid] < v) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a;
}

uint32_t Trie::FindInRange(int level, Range r, Value v) const {
  uint32_t idx = SeekInRange(level, r, v);
  if (idx < r.hi && levels_[level].values[idx] == v) return idx;
  return r.hi;
}

std::string Trie::ToString() const {
  std::string out = "Trie{";
  for (int l = 0; l < arity(); ++l) {
    if (l > 0) out += "; ";
    out += "L" + std::to_string(l) + "[" +
           std::to_string(levels_[l].values.size()) + "]";
  }
  out += "}";
  return out;
}

}  // namespace adj::storage
