#include "storage/trie.h"

#include <algorithm>

#include "common/logging.h"

namespace adj::storage {

Trie Trie::Build(const Relation& rel) {
  ADJ_CHECK(rel.IsSortedUnique()) << "Trie::Build requires sorted+dedup input";
  Trie trie;
  const int k = rel.arity();
  if (k == 0) return trie;
  trie.levels_.resize(k);
  const uint64_t rows = rel.size();
  if (rows == 0) {
    for (int l = 0; l + 1 < k; ++l) trie.levels_[l].child_store = {0};
    return trie;
  }

  // Single pass over sorted rows: a row opens new nodes at every level
  // at or below the first column where it differs from the previous row.
  for (uint64_t r = 0; r < rows; ++r) {
    std::span<const Value> row = rel.Row(r);
    int diff = 0;
    if (r > 0) {
      std::span<const Value> prev = rel.Row(r - 1);
      while (diff < k && prev[diff] == row[diff]) ++diff;
    }
    for (int l = diff; l < k; ++l) {
      Level& level = trie.levels_[l];
      if (l + 1 < k) {
        // This node's children start at the current end of level l+1.
        level.child_store.push_back(
            static_cast<uint32_t>(trie.levels_[l + 1].values_store.size()));
      }
      level.values_store.push_back(row[l]);
    }
  }
  // Close the child ranges with one-past-the-end sentinels.
  for (int l = 0; l + 1 < k; ++l) {
    trie.levels_[l].child_store.push_back(
        static_cast<uint32_t>(trie.levels_[l + 1].values_store.size()));
  }
  // Widest sibling range per level, so executors can size intersection
  // buffers at Run() without rescanning the index.
  trie.levels_[0].max_range_width =
      static_cast<uint32_t>(trie.levels_[0].values_store.size());
  for (int l = 0; l + 1 < k; ++l) {
    const std::vector<uint32_t>& begin = trie.levels_[l].child_store;
    uint32_t widest = 0;
    for (size_t i = 0; i + 1 < begin.size(); ++i) {
      widest = std::max(widest, begin[i + 1] - begin[i]);
    }
    trie.levels_[l + 1].max_range_width = widest;
  }
  return trie;
}

StatusOr<Trie> Trie::FromMapped(std::vector<MappedLevel> levels,
                                std::shared_ptr<const void> keepalive) {
  Trie trie;
  const int k = static_cast<int>(levels.size());
  trie.levels_.resize(k);
  // Structural validation: this is the trust boundary between bytes on
  // disk and the unchecked index arithmetic of the join inner loop, so
  // every offset a mapped trie can produce is range-checked here once.
  for (int l = 0; l < k; ++l) {
    const MappedLevel& in = levels[l];
    const size_t n = in.values.size();
    if (n > UINT32_MAX) {
      return Status::InvalidArgument("mapped trie level " + std::to_string(l) +
                                     " exceeds 2^32 entries");
    }
    if (l + 1 < k) {
      if (in.child_begin.size() != n + 1) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": child_begin size " + std::to_string(in.child_begin.size()) +
            " != values+1 (" + std::to_string(n + 1) + ")");
      }
      const size_t next_n = levels[l + 1].values.size();
      if (in.child_begin.front() != 0 || in.child_begin.back() != next_n) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": child offsets do not cover the next level");
      }
      for (size_t i = 0; i + 1 < in.child_begin.size(); ++i) {
        if (in.child_begin[i] > in.child_begin[i + 1]) {
          return Status::InvalidArgument("mapped trie level " +
                                         std::to_string(l) +
                                         ": child offsets not monotone");
        }
        // Non-root nodes must have at least one child: every trie node
        // lies on a root-to-leaf tuple path.
        if (in.child_begin[i] == in.child_begin[i + 1] && n > 0) {
          return Status::InvalidArgument(
              "mapped trie level " + std::to_string(l) + ": childless node");
        }
      }
    } else if (!in.child_begin.empty()) {
      return Status::InvalidArgument(
          "mapped trie: deepest level has a child array");
    }
    // Sibling runs must be strictly sorted — Seek/FindInRange's
    // galloping search assumes it.
    if (l == 0) {
      for (size_t i = 0; i + 1 < n; ++i) {
        if (in.values[i] >= in.values[i + 1]) {
          return Status::InvalidArgument(
              "mapped trie level 0: values not strictly sorted");
        }
      }
    } else {
      std::span<const uint32_t> parent = levels[l - 1].child_begin;
      for (size_t p = 0; p + 1 < parent.size(); ++p) {
        for (uint32_t i = parent[p]; i + 1 < parent[p + 1]; ++i) {
          if (in.values[i] >= in.values[i + 1]) {
            return Status::InvalidArgument(
                "mapped trie level " + std::to_string(l) +
                ": sibling run not strictly sorted");
          }
        }
      }
    }
    Level& out = trie.levels_[l];
    out.values_map = in.values;
    out.child_map = in.child_begin;
    out.mapped = true;
  }
  // Recompute max-range widths from the validated offsets rather than
  // trusting stored values.
  if (k > 0) {
    trie.levels_[0].max_range_width =
        static_cast<uint32_t>(levels[0].values.size());
    for (int l = 0; l + 1 < k; ++l) {
      std::span<const uint32_t> begin = levels[l].child_begin;
      uint32_t widest = 0;
      for (size_t i = 0; i + 1 < begin.size(); ++i) {
        widest = std::max(widest, begin[i + 1] - begin[i]);
      }
      trie.levels_[l + 1].max_range_width = widest;
    }
  }
  trie.keepalive_ = std::move(keepalive);
  return trie;
}

uint64_t Trie::StorageValues() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    total += level.vals().size() + level.kids().size();
  }
  return total;
}

uint32_t Trie::SeekInRange(int level, Range r, Value v) const {
  std::span<const Value> vals = levels_[level].vals();
  uint32_t lo = r.lo;
  uint32_t hi = r.hi;
  if (lo >= hi || vals[lo] >= v) return lo;
  // Galloping phase: double the step from lo until we overshoot.
  uint32_t step = 1;
  uint32_t prev = lo;
  uint32_t cur = lo + 1;
  while (cur < hi && vals[cur] < v) {
    prev = cur;
    step <<= 1;
    cur = (step > hi - lo) ? hi : lo + step;
  }
  // Binary search in (prev, cur].
  uint32_t a = prev + 1, b = std::min(cur + 1, hi);
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (vals[mid] < v) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a;
}

uint32_t Trie::FindInRange(int level, Range r, Value v) const {
  uint32_t idx = SeekInRange(level, r, v);
  if (idx < r.hi && levels_[level].vals()[idx] == v) return idx;
  return r.hi;
}

std::string Trie::ToString() const {
  std::string out = "Trie{";
  for (int l = 0; l < arity(); ++l) {
    if (l > 0) out += "; ";
    out += "L" + std::to_string(l) + "[" +
           std::to_string(levels_[l].vals().size()) + "]";
  }
  if (mmap_backed()) out += " mmap";
  out += "}";
  return out;
}

}  // namespace adj::storage
