#include "storage/trie.h"

#include <algorithm>

#include "common/logging.h"

namespace adj::storage {

Trie Trie::Build(const Relation& rel) {
  ADJ_CHECK(rel.IsSortedUnique()) << "Trie::Build requires sorted+dedup input";
  Trie trie;
  const int k = rel.arity();
  if (k == 0) return trie;
  trie.levels_.resize(k);
  const uint64_t rows = rel.size();
  if (rows == 0) {
    for (int l = 0; l + 1 < k; ++l) trie.levels_[l].child_store = {0};
    return trie;
  }

  // Single pass over sorted rows: a row opens new nodes at every level
  // at or below the first column where it differs from the previous row.
  for (uint64_t r = 0; r < rows; ++r) {
    std::span<const Value> row = rel.Row(r);
    int diff = 0;
    if (r > 0) {
      std::span<const Value> prev = rel.Row(r - 1);
      while (diff < k && prev[diff] == row[diff]) ++diff;
    }
    for (int l = diff; l < k; ++l) {
      Level& level = trie.levels_[l];
      if (l + 1 < k) {
        // This node's children start at the current end of level l+1.
        level.child_store.push_back(
            static_cast<uint32_t>(trie.levels_[l + 1].values_store.size()));
      }
      level.values_store.push_back(row[l]);
    }
  }
  // Close the child ranges with one-past-the-end sentinels.
  for (int l = 0; l + 1 < k; ++l) {
    trie.levels_[l].child_store.push_back(
        static_cast<uint32_t>(trie.levels_[l + 1].values_store.size()));
  }
  trie.FinishWidths();
  return trie;
}

void Trie::FinishWidths() {
  // Widest sibling range per level, so executors can size intersection
  // buffers at Run() without rescanning the index.
  const int k = arity();
  if (k == 0) return;
  levels_[0].max_range_width =
      static_cast<uint32_t>(levels_[0].vals().size());
  for (int l = 0; l + 1 < k; ++l) {
    std::span<const uint32_t> begin = levels_[l].kids();
    uint32_t widest = 0;
    for (size_t i = 0; i + 1 < begin.size(); ++i) {
      widest = std::max(widest, begin[i + 1] - begin[i]);
    }
    levels_[l + 1].max_range_width = widest;
  }
}

Trie Trie::PatchFrom(const Trie& prev, const Relation& inserts,
                     const Relation& deletes) {
  const int k = prev.arity();
  if (k == 0) return Build(inserts);
  ADJ_CHECK(inserts.size() == 0 || inserts.arity() == k);
  ADJ_CHECK(deletes.size() == 0 || deletes.arity() == k);
  ADJ_CHECK(inserts.size() == 0 || inserts.IsSortedUnique());
  ADJ_CHECK(deletes.size() == 0 || deletes.IsSortedUnique());

  Trie out;
  out.levels_.resize(k);
  for (int l = 0; l < k; ++l) {
    out.levels_[l].values_store.reserve(prev.levels_[l].vals().size() +
                                        inserts.size());
    if (l + 1 < k) {
      out.levels_[l].child_store.reserve(prev.levels_[l].kids().size() +
                                         inserts.size());
    }
  }

  // Appends the subtrees rooted at prev's level-l nodes [a, b)
  // verbatim. DFS order makes each subtree slab contiguous per level,
  // so an untouched run costs one span copy plus a child-offset rebase
  // per level instead of Build's per-row work.
  auto copy_subtrees = [&](int l, uint32_t a, uint32_t b) {
    uint32_t lo = a, hi = b;
    for (int lev = l; lev < k && lo < hi; ++lev) {
      std::span<const Value> vals = prev.levels_[lev].vals();
      std::vector<Value>& dst = out.levels_[lev].values_store;
      dst.insert(dst.end(), vals.begin() + lo, vals.begin() + hi);
      if (lev + 1 < k) {
        std::span<const uint32_t> kids = prev.levels_[lev].kids();
        std::vector<uint32_t>& kdst = out.levels_[lev].child_store;
        const uint32_t new_base =
            static_cast<uint32_t>(out.levels_[lev + 1].values_store.size());
        const uint32_t old_base = kids[lo];
        for (uint32_t i = lo; i < hi; ++i) {
          kdst.push_back(kids[i] - old_base + new_base);
        }
        const uint32_t next_lo = kids[lo], next_hi = kids[hi];
        lo = next_lo;
        hi = next_hi;
      }
    }
  };

  // Appends rows [r0, r1) of `rel` as freshly built nodes for columns
  // l..k-1 (Build's inner loop, restricted to one delta group).
  auto append_rows = [&](int l, const Relation& rel, uint32_t r0,
                         uint32_t r1) {
    for (uint32_t r = r0; r < r1; ++r) {
      std::span<const Value> row = rel.Row(r);
      int diff = l;
      if (r > r0) {
        std::span<const Value> prow = rel.Row(r - 1);
        while (diff < k && prow[diff] == row[diff]) ++diff;
      }
      for (int lev = diff; lev < k; ++lev) {
        if (lev + 1 < k) {
          out.levels_[lev].child_store.push_back(static_cast<uint32_t>(
              out.levels_[lev + 1].values_store.size()));
        }
        out.levels_[lev].values_store.push_back(row[lev]);
      }
    }
  };

  // Three-way merge of one sibling range with the delta rows whose
  // prefix (columns < l) equals the range's. [i0,i1) / [d0,d1) index
  // insert / delete rows; returns how many nodes level l kept.
  auto patch = [&](auto&& self, int l, uint32_t plo, uint32_t phi,
                   uint32_t i0, uint32_t i1, uint32_t d0,
                   uint32_t d1) -> uint32_t {
    std::span<const Value> vals = prev.levels_[l].vals();
    const bool leaf = l + 1 == k;
    uint32_t emitted = 0;
    uint32_t p = plo, i = i0, d = d0;
    while (p < phi || i < i1 || d < d1) {
      uint64_t next = UINT64_MAX;
      if (p < phi) next = vals[p];
      if (i < i1) next = std::min<uint64_t>(next, inserts.Row(i)[l]);
      if (d < d1) next = std::min<uint64_t>(next, deletes.Row(d)[l]);
      const Value value = static_cast<Value>(next);
      const bool in_prev = p < phi && vals[p] == value;
      uint32_t ie = i, de = d;
      while (ie < i1 && inserts.Row(ie)[l] == value) ++ie;
      while (de < d1 && deletes.Row(de)[l] == value) ++de;

      if (in_prev && ie == i && de == d) {
        // Untouched run: every prev node strictly below the next
        // delta value copies verbatim, subtree and all.
        uint64_t next_delta = UINT64_MAX;
        if (i < i1) next_delta = inserts.Row(i)[l];
        if (d < d1) next_delta = std::min<uint64_t>(next_delta,
                                                    deletes.Row(d)[l]);
        uint32_t run_end = p;
        while (run_end < phi && vals[run_end] < next_delta) ++run_end;
        copy_subtrees(l, p, run_end);
        emitted += run_end - p;
        p = run_end;
        continue;
      }
      if (!in_prev) {
        // Nothing of prev here: deletes are dangling no-ops, inserts
        // open a fresh subtree.
        if (ie > i) {
          append_rows(l, inserts, i, ie);
          ++emitted;
        }
        i = ie;
        d = de;
        continue;
      }
      // A prev node touched by the delta.
      if (leaf) {
        // Row-level resolution: deleted unless (defensively)
        // re-inserted; an insert of a present row keeps one copy.
        if (de == d || ie > i) {
          out.levels_[l].values_store.push_back(value);
          ++emitted;
        }
      } else {
        out.levels_[l].child_store.push_back(static_cast<uint32_t>(
            out.levels_[l + 1].values_store.size()));
        out.levels_[l].values_store.push_back(value);
        const Range children = prev.ChildRange(l, p);
        const uint32_t kept =
            self(self, l + 1, children.lo, children.hi, i, ie, d, de);
        if (kept == 0) {
          // Every row under this node was deleted: retract it.
          out.levels_[l].child_store.pop_back();
          out.levels_[l].values_store.pop_back();
        } else {
          ++emitted;
        }
      }
      ++p;
      i = ie;
      d = de;
    }
    return emitted;
  };
  patch(patch, 0, 0, static_cast<uint32_t>(prev.levels_[0].vals().size()), 0,
        static_cast<uint32_t>(inserts.size()), 0,
        static_cast<uint32_t>(deletes.size()));

  // Close the child ranges with one-past-the-end sentinels.
  for (int l = 0; l + 1 < k; ++l) {
    out.levels_[l].child_store.push_back(
        static_cast<uint32_t>(out.levels_[l + 1].values_store.size()));
  }
  out.FinishWidths();
  return out;
}

StatusOr<Trie> Trie::FromMapped(std::vector<MappedLevel> levels,
                                std::shared_ptr<const void> keepalive) {
  Trie trie;
  const int k = static_cast<int>(levels.size());
  trie.levels_.resize(k);
  // Structural validation: this is the trust boundary between bytes on
  // disk and the unchecked index arithmetic of the join inner loop, so
  // every offset a mapped trie can produce is range-checked here once.
  for (int l = 0; l < k; ++l) {
    const MappedLevel& in = levels[l];
    const size_t n = in.values.size();
    if (n > UINT32_MAX) {
      return Status::InvalidArgument("mapped trie level " + std::to_string(l) +
                                     " exceeds 2^32 entries");
    }
    if (l + 1 < k) {
      if (in.child_begin.size() != n + 1) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": child_begin size " + std::to_string(in.child_begin.size()) +
            " != values+1 (" + std::to_string(n + 1) + ")");
      }
      const size_t next_n = levels[l + 1].values.size();
      if (in.child_begin.front() != 0 || in.child_begin.back() != next_n) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": child offsets do not cover the next level");
      }
      for (size_t i = 0; i + 1 < in.child_begin.size(); ++i) {
        if (in.child_begin[i] > in.child_begin[i + 1]) {
          return Status::InvalidArgument("mapped trie level " +
                                         std::to_string(l) +
                                         ": child offsets not monotone");
        }
        // Non-root nodes must have at least one child: every trie node
        // lies on a root-to-leaf tuple path.
        if (in.child_begin[i] == in.child_begin[i + 1] && n > 0) {
          return Status::InvalidArgument(
              "mapped trie level " + std::to_string(l) + ": childless node");
        }
      }
    } else if (!in.child_begin.empty()) {
      return Status::InvalidArgument(
          "mapped trie: deepest level has a child array");
    }
    // Sibling runs must be strictly sorted — Seek/FindInRange's
    // galloping search assumes it.
    if (l == 0) {
      for (size_t i = 0; i + 1 < n; ++i) {
        if (in.values[i] >= in.values[i + 1]) {
          return Status::InvalidArgument(
              "mapped trie level 0: values not strictly sorted");
        }
      }
    } else {
      std::span<const uint32_t> parent = levels[l - 1].child_begin;
      for (size_t p = 0; p + 1 < parent.size(); ++p) {
        for (uint32_t i = parent[p]; i + 1 < parent[p + 1]; ++i) {
          if (in.values[i] >= in.values[i + 1]) {
            return Status::InvalidArgument(
                "mapped trie level " + std::to_string(l) +
                ": sibling run not strictly sorted");
          }
        }
      }
    }
    Level& out = trie.levels_[l];
    out.values_map = in.values;
    out.child_map = in.child_begin;
    out.mapped = true;
  }
  // Recompute max-range widths from the validated offsets rather than
  // trusting stored values.
  if (k > 0) {
    trie.levels_[0].max_range_width =
        static_cast<uint32_t>(levels[0].values.size());
    for (int l = 0; l + 1 < k; ++l) {
      std::span<const uint32_t> begin = levels[l].child_begin;
      uint32_t widest = 0;
      for (size_t i = 0; i + 1 < begin.size(); ++i) {
        widest = std::max(widest, begin[i + 1] - begin[i]);
      }
      trie.levels_[l + 1].max_range_width = widest;
    }
  }
  trie.keepalive_ = std::move(keepalive);
  return trie;
}

uint64_t Trie::StorageValues() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    total += level.vals().size() + level.kids().size();
  }
  return total;
}

uint32_t Trie::SeekInRange(int level, Range r, Value v) const {
  std::span<const Value> vals = levels_[level].vals();
  uint32_t lo = r.lo;
  uint32_t hi = r.hi;
  if (lo >= hi || vals[lo] >= v) return lo;
  // Galloping phase: double the step from lo until we overshoot.
  uint32_t step = 1;
  uint32_t prev = lo;
  uint32_t cur = lo + 1;
  while (cur < hi && vals[cur] < v) {
    prev = cur;
    step <<= 1;
    cur = (step > hi - lo) ? hi : lo + step;
  }
  // Binary search in (prev, cur].
  uint32_t a = prev + 1, b = std::min(cur + 1, hi);
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (vals[mid] < v) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a;
}

uint32_t Trie::FindInRange(int level, Range r, Value v) const {
  uint32_t idx = SeekInRange(level, r, v);
  if (idx < r.hi && levels_[level].vals()[idx] == v) return idx;
  return r.hi;
}

std::string Trie::ToString() const {
  std::string out = "Trie{";
  for (int l = 0; l < arity(); ++l) {
    if (l > 0) out += "; ";
    out += "L" + std::to_string(l) + "[" +
           std::to_string(levels_[l].vals().size()) + "]";
  }
  if (mmap_backed()) out += " mmap";
  out += "}";
  return out;
}

}  // namespace adj::storage
