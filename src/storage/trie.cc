#include "storage/trie.h"

#include <algorithm>

#include "common/logging.h"

namespace adj::storage {

namespace bc = blockcodec;

Trie Trie::Build(const Relation& rel) {
  ADJ_CHECK(rel.IsSortedUnique()) << "Trie::Build requires sorted+dedup input";
  Trie trie;
  const int k = rel.arity();
  if (k == 0) return trie;
  trie.levels_.resize(k);
  const uint64_t rows = rel.size();
  if (rows == 0) {
    for (int l = 0; l + 1 < k; ++l) trie.levels_[l].child_store = {0};
    return trie;
  }

  // Single pass over sorted rows: a row opens new nodes at every level
  // at or below the first column where it differs from the previous row.
  for (uint64_t r = 0; r < rows; ++r) {
    std::span<const Value> row = rel.Row(r);
    int diff = 0;
    if (r > 0) {
      std::span<const Value> prev = rel.Row(r - 1);
      while (diff < k && prev[diff] == row[diff]) ++diff;
    }
    for (int l = diff; l < k; ++l) {
      Level& level = trie.levels_[l];
      if (l + 1 < k) {
        // This node's children start at the current end of level l+1.
        level.child_store.push_back(
            static_cast<uint32_t>(trie.levels_[l + 1].values_store.size()));
      }
      level.values_store.push_back(row[l]);
    }
  }
  // Close the child ranges with one-past-the-end sentinels.
  for (int l = 0; l + 1 < k; ++l) {
    trie.levels_[l].child_store.push_back(
        static_cast<uint32_t>(trie.levels_[l + 1].values_store.size()));
  }
  trie.FinishWidths();
  return trie;
}

void Trie::FinishWidths() {
  // Widest sibling range per level, so executors can size intersection
  // buffers at Run() without rescanning the index. Always recomputed
  // from the child arrays — Build, PatchFrom and FromMapped all end
  // here, so no construction path can inherit a stale width.
  const int k = arity();
  if (k == 0) return;
  levels_[0].max_range_width = static_cast<uint32_t>(LevelSize(0));
  for (int l = 0; l + 1 < k; ++l) {
    std::span<const uint32_t> begin = levels_[l].kids();
    uint32_t widest = 0;
    for (size_t i = 0; i + 1 < begin.size(); ++i) {
      widest = std::max(widest, begin[i + 1] - begin[i]);
    }
    levels_[l + 1].max_range_width = widest;
  }
}

Trie Trie::Compress(Trie src) { return Compress(std::move(src), {}); }

Trie Trie::Compress(Trie src, const CompressOptions& opts) {
  int l = -1;
  for (Level& level : src.levels_) {
    ++l;
    // Mapped levels keep the representation the snapshot chose, and
    // already-compressed levels are final (the encoder is
    // deterministic, re-encoding would be a no-op).
    if (level.mapped || level.compressed) continue;
    const uint64_t n = level.values_store.size();
    if (n == 0) continue;
    if (!opts.force && static_cast<uint32_t>(l) < opts.min_level) continue;
    if (!opts.force && n < opts.min_level_values) continue;
    bc::CompressedLevel enc;
    bc::EncodeLevel(level.values_store, &enc);
    const double raw_bytes = static_cast<double>(n) * sizeof(Value);
    if (!opts.force &&
        static_cast<double>(enc.ResidentBytes()) > opts.max_ratio * raw_bytes) {
      continue;  // incompressible: raw scan beats decode for no savings
    }
    level.comp_store = std::move(enc);
    level.compressed = true;
    level.values_store = {};
  }
  return src;
}

Trie Trie::PatchFrom(const Trie& prev, const Relation& inserts,
                     const Relation& deletes) {
  const int k = prev.arity();
  if (k == 0) return Build(inserts);
  ADJ_CHECK(inserts.size() == 0 || inserts.arity() == k);
  ADJ_CHECK(deletes.size() == 0 || deletes.arity() == k);
  ADJ_CHECK(inserts.size() == 0 || inserts.IsSortedUnique());
  ADJ_CHECK(deletes.size() == 0 || deletes.IsSortedUnique());

  // The merge reads prev's value arrays by position; compressed levels
  // decode once into scratch (bulk block decode, same order of work as
  // the span copies below — the savings of a compressed prev are on
  // the *output* side, where untouched prefix blocks splice verbatim).
  std::vector<std::vector<Value>> decode_scratch(k);
  std::vector<std::span<const Value>> pvals(k);
  for (int l = 0; l < k; ++l) {
    if (prev.levels_[l].compressed) {
      prev.DecodeLevelInto(l, &decode_scratch[l]);
      pvals[l] = decode_scratch[l];
    } else {
      pvals[l] = prev.levels_[l].vals();
    }
  }

  Trie out;
  out.levels_.resize(k);
  for (int l = 0; l < k; ++l) {
    out.levels_[l].values_store.reserve(pvals[l].size() + inserts.size());
    if (l + 1 < k) {
      out.levels_[l].child_store.reserve(prev.levels_[l].kids().size() +
                                         inserts.size());
    }
  }

  // First output position per level at which the result can diverge
  // from prev. Everything before it is a verbatim prefix (same values,
  // same positions), so for compressed levels the encoded blocks
  // strictly below it are reused byte-for-byte.
  std::vector<uint64_t> first_touched(k, UINT64_MAX);
  auto touch = [&](int lev) {
    if (first_touched[lev] == UINT64_MAX) {
      first_touched[lev] = out.levels_[lev].values_store.size();
    }
  };

  // Appends the subtrees rooted at prev's level-l nodes [a, b)
  // verbatim. DFS order makes each subtree slab contiguous per level,
  // so an untouched run costs one span copy plus a child-offset rebase
  // per level instead of Build's per-row work.
  auto copy_subtrees = [&](int l, uint32_t a, uint32_t b) {
    uint32_t lo = a, hi = b;
    for (int lev = l; lev < k && lo < hi; ++lev) {
      std::span<const Value> vals = pvals[lev];
      std::vector<Value>& dst = out.levels_[lev].values_store;
      dst.insert(dst.end(), vals.begin() + lo, vals.begin() + hi);
      if (lev + 1 < k) {
        std::span<const uint32_t> kids = prev.levels_[lev].kids();
        std::vector<uint32_t>& kdst = out.levels_[lev].child_store;
        const uint32_t new_base =
            static_cast<uint32_t>(out.levels_[lev + 1].values_store.size());
        const uint32_t old_base = kids[lo];
        for (uint32_t i = lo; i < hi; ++i) {
          kdst.push_back(kids[i] - old_base + new_base);
        }
        const uint32_t next_lo = kids[lo], next_hi = kids[hi];
        lo = next_lo;
        hi = next_hi;
      }
    }
  };

  // Appends rows [r0, r1) of `rel` as freshly built nodes for columns
  // l..k-1 (Build's inner loop, restricted to one delta group).
  auto append_rows = [&](int l, const Relation& rel, uint32_t r0,
                         uint32_t r1) {
    for (int lev = l; lev < k; ++lev) touch(lev);
    for (uint32_t r = r0; r < r1; ++r) {
      std::span<const Value> row = rel.Row(r);
      int diff = l;
      if (r > r0) {
        std::span<const Value> prow = rel.Row(r - 1);
        while (diff < k && prow[diff] == row[diff]) ++diff;
      }
      for (int lev = diff; lev < k; ++lev) {
        if (lev + 1 < k) {
          out.levels_[lev].child_store.push_back(static_cast<uint32_t>(
              out.levels_[lev + 1].values_store.size()));
        }
        out.levels_[lev].values_store.push_back(row[lev]);
      }
    }
  };

  // Three-way merge of one sibling range with the delta rows whose
  // prefix (columns < l) equals the range's. [i0,i1) / [d0,d1) index
  // insert / delete rows; returns how many nodes level l kept.
  auto patch = [&](auto&& self, int l, uint32_t plo, uint32_t phi,
                   uint32_t i0, uint32_t i1, uint32_t d0,
                   uint32_t d1) -> uint32_t {
    std::span<const Value> vals = pvals[l];
    const bool leaf = l + 1 == k;
    uint32_t emitted = 0;
    uint32_t p = plo, i = i0, d = d0;
    while (p < phi || i < i1 || d < d1) {
      uint64_t next = UINT64_MAX;
      if (p < phi) next = vals[p];
      if (i < i1) next = std::min<uint64_t>(next, inserts.Row(i)[l]);
      if (d < d1) next = std::min<uint64_t>(next, deletes.Row(d)[l]);
      const Value value = static_cast<Value>(next);
      const bool in_prev = p < phi && vals[p] == value;
      uint32_t ie = i, de = d;
      while (ie < i1 && inserts.Row(ie)[l] == value) ++ie;
      while (de < d1 && deletes.Row(de)[l] == value) ++de;

      if (in_prev && ie == i && de == d) {
        // Untouched run: every prev node strictly below the next
        // delta value copies verbatim, subtree and all.
        uint64_t next_delta = UINT64_MAX;
        if (i < i1) next_delta = inserts.Row(i)[l];
        if (d < d1) next_delta = std::min<uint64_t>(next_delta,
                                                    deletes.Row(d)[l]);
        uint32_t run_end = p;
        while (run_end < phi && vals[run_end] < next_delta) ++run_end;
        copy_subtrees(l, p, run_end);
        emitted += run_end - p;
        p = run_end;
        continue;
      }
      if (!in_prev) {
        // Nothing of prev here: deletes are dangling no-ops, inserts
        // open a fresh subtree.
        if (ie > i) {
          append_rows(l, inserts, i, ie);
          ++emitted;
        }
        i = ie;
        d = de;
        continue;
      }
      // A prev node touched by the delta: positions at this level can
      // shift from here on, so the block-reuse prefix ends.
      touch(l);
      if (leaf) {
        // Row-level resolution: deleted unless (defensively)
        // re-inserted; an insert of a present row keeps one copy.
        if (de == d || ie > i) {
          out.levels_[l].values_store.push_back(value);
          ++emitted;
        }
      } else {
        out.levels_[l].child_store.push_back(static_cast<uint32_t>(
            out.levels_[l + 1].values_store.size()));
        out.levels_[l].values_store.push_back(value);
        const Range children = prev.ChildRange(l, p);
        const uint32_t kept =
            self(self, l + 1, children.lo, children.hi, i, ie, d, de);
        if (kept == 0) {
          // Every row under this node was deleted: retract it.
          out.levels_[l].child_store.pop_back();
          out.levels_[l].values_store.pop_back();
        } else {
          ++emitted;
        }
      }
      ++p;
      i = ie;
      d = de;
    }
    return emitted;
  };
  patch(patch, 0, 0, static_cast<uint32_t>(pvals[0].size()), 0,
        static_cast<uint32_t>(inserts.size()), 0,
        static_cast<uint32_t>(deletes.size()));

  // Close the child ranges with one-past-the-end sentinels.
  for (int l = 0; l + 1 < k; ++l) {
    out.levels_[l].child_store.push_back(
        static_cast<uint32_t>(out.levels_[l + 1].values_store.size()));
  }
  out.FinishWidths();

  // Compressed prev levels stay compressed: splice the encoded bytes
  // of every block strictly before the first touched position (the
  // deterministic encoder guarantees they are byte-identical), then
  // re-encode only from the first touched block on.
  for (int l = 0; l < k; ++l) {
    if (!prev.levels_[l].compressed) continue;
    const bc::CompressedLevelView pv = prev.levels_[l].comp();
    Level& level = out.levels_[l];
    const std::vector<Value>& ov = level.values_store;
    const uint64_t limit = std::min<uint64_t>(
        {first_touched[l], ov.size(), pv.size});
    const uint32_t reuse =
        static_cast<uint32_t>(limit / bc::kBlockValues);
    bc::CompressedLevel enc;
    enc.mins.assign(pv.mins.begin(), pv.mins.begin() + reuse);
    enc.starts.assign(pv.starts.begin(), pv.starts.begin() + reuse + 1);
    enc.bytes.assign(pv.bytes.begin(), pv.bytes.begin() + pv.starts[reuse]);
    bc::EncodeLevelTail(ov, reuse, &enc);
    level.comp_store = std::move(enc);
    level.compressed = true;
    level.values_store = {};
  }
  return out;
}

StatusOr<Trie> Trie::FromMapped(std::vector<MappedLevel> levels,
                                std::shared_ptr<const void> keepalive) {
  Trie trie;
  const int k = static_cast<int>(levels.size());
  trie.levels_.resize(k);
  auto level_values = [&](int l) -> uint64_t {
    return levels[l].compressed ? levels[l].num_values
                                : levels[l].values.size();
  };
  // Structural validation: this is the trust boundary between bytes on
  // disk and the unchecked index arithmetic of the join inner loop, so
  // every offset a mapped trie can produce is range-checked here once.
  for (int l = 0; l < k; ++l) {
    const MappedLevel& in = levels[l];
    const uint64_t n = level_values(l);
    if (n > UINT32_MAX) {
      return Status::InvalidArgument("mapped trie level " + std::to_string(l) +
                                     " exceeds 2^32 entries");
    }
    if (in.compressed) {
      if (!in.values.empty()) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": both raw and compressed value arrays present");
      }
      const bc::CompressedLevelView view{in.block_mins, in.block_starts,
                                         in.block_bytes, in.num_values};
      Status s = bc::ValidateCompressedLevel(view);
      if (!s.ok()) {
        return Status::InvalidArgument("mapped trie level " +
                                       std::to_string(l) + ": " + s.message());
      }
    }
    if (l + 1 < k) {
      if (in.child_begin.size() != n + 1) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": child_begin size " + std::to_string(in.child_begin.size()) +
            " != values+1 (" + std::to_string(n + 1) + ")");
      }
      const uint64_t next_n = level_values(l + 1);
      if (in.child_begin.front() != 0 || in.child_begin.back() != next_n) {
        return Status::InvalidArgument(
            "mapped trie level " + std::to_string(l) +
            ": child offsets do not cover the next level");
      }
      for (size_t i = 0; i + 1 < in.child_begin.size(); ++i) {
        if (in.child_begin[i] > in.child_begin[i + 1]) {
          return Status::InvalidArgument("mapped trie level " +
                                         std::to_string(l) +
                                         ": child offsets not monotone");
        }
        // Non-root nodes must have at least one child: every trie node
        // lies on a root-to-leaf tuple path.
        if (in.child_begin[i] == in.child_begin[i + 1] && n > 0) {
          return Status::InvalidArgument(
              "mapped trie level " + std::to_string(l) + ": childless node");
        }
      }
    } else if (!in.child_begin.empty()) {
      return Status::InvalidArgument(
          "mapped trie: deepest level has a child array");
    }
    // Sibling runs must be strictly sorted — Seek/FindInRange's
    // galloping search assumes it. Compressed levels stream one block
    // of decode scratch; the run boundaries come from the parent's
    // (already validated) child offsets.
    std::span<const uint32_t> parent =
        l > 0 ? levels[l - 1].child_begin : std::span<const uint32_t>();
    Value buf[bc::kBlockValues];
    std::span<const Value> chunk;
    uint64_t pos = 0;
    size_t pidx = 1;  // parent[pidx] == start of the next sibling run
    Value prevv = 0;
    bool have_prev = false;
    const bc::CompressedLevelView view{in.block_mins, in.block_starts,
                                       in.block_bytes, in.num_values};
    const uint64_t blocks = in.compressed ? view.num_blocks() : (n > 0);
    for (uint64_t b = 0; b < blocks; ++b) {
      if (in.compressed) {
        const uint32_t cnt =
            bc::DecodeBlock(view, static_cast<uint32_t>(b), buf);
        chunk = std::span<const Value>(buf, cnt);
      } else {
        chunk = in.values;
      }
      for (const Value v : chunk) {
        if (l > 0 && pidx < parent.size() && parent[pidx] == pos) {
          have_prev = false;
          ++pidx;
        }
        if (have_prev && prevv >= v) {
          return Status::InvalidArgument(
              "mapped trie level " + std::to_string(l) +
              (l == 0 ? ": values not strictly sorted"
                      : ": sibling run not strictly sorted"));
        }
        prevv = v;
        have_prev = true;
        ++pos;
      }
    }
    Level& out = trie.levels_[l];
    out.values_map = in.values;
    out.child_map = in.child_begin;
    if (in.compressed) {
      out.comp_map = view;
      out.compressed = true;
    }
    out.mapped = true;
  }
  trie.keepalive_ = std::move(keepalive);
  // Recompute max-range widths from the validated offsets rather than
  // trusting stored values.
  trie.FinishWidths();
  return trie;
}

uint64_t Trie::StorageValues() const {
  uint64_t total = 0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    total += LevelSize(static_cast<int>(l)) + levels_[l].kids().size();
  }
  return total;
}

uint64_t Trie::ResidentBytes() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    total += level.kids().size() * sizeof(uint32_t);
    if (level.compressed) {
      total += bc::ViewResidentBytes(level.comp());
    } else {
      total += level.vals().size() * sizeof(Value);
    }
  }
  return total;
}

uint64_t Trie::CompressedBytes() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    if (level.compressed) total += bc::ViewResidentBytes(level.comp());
  }
  return total;
}

bool Trie::any_compressed() const {
  for (const Level& level : levels_) {
    if (level.compressed) return true;
  }
  return false;
}

void Trie::DecodeLevelInto(int level, std::vector<Value>* out) const {
  const Level& l = levels_[level];
  if (!l.compressed) {
    out->assign(l.vals().begin(), l.vals().end());
    return;
  }
  const bc::CompressedLevelView view = l.comp();
  out->resize(view.size);
  Value* dst = out->data();
  for (uint32_t b = 0; b < view.num_blocks(); ++b) {
    dst += bc::DecodeBlock(view, b, dst);
  }
}

Value Trie::ValueAt(int level, uint32_t idx) const {
  const Level& l = levels_[level];
  if (!l.compressed) return l.vals()[idx];
  Value buf[bc::kBlockValues];
  bc::DecodeBlock(l.comp(), idx / bc::kBlockValues, buf);
  return buf[idx % bc::kBlockValues];
}

Value Trie::ValueAt(int level, uint32_t idx,
                    bc::DecodeCache* cache) const {
  const Level& l = levels_[level];
  if (!l.compressed) return l.vals()[idx];
  bc::DecodeBlockCached(l.comp(), idx / bc::kBlockValues, cache, nullptr);
  return cache->vals[idx % bc::kBlockValues];
}

namespace {

/// SeekGEQ inside one sibling range of a block-compressed level.
/// Block minima are comparable only where the block's first position
/// lies inside [r.lo, r.hi) — a block may straddle sibling-run
/// boundaries, so mins outside the range belong to other runs. Gallops
/// over the in-range minima, then decodes exactly one block.
uint32_t SeekCompressed(const bc::CompressedLevelView& v, Trie::Range r,
                        Value x, bc::DecodeCache* cache) {
  constexpr uint32_t B = bc::kBlockValues;
  const uint32_t blo = r.lo / B;
  const uint32_t bhi = (r.hi - 1) / B;
  // Last candidate block cb in [blo, bhi]: the first block, or the
  // last whose in-range min is still <= x.
  uint32_t cb = blo;
  uint32_t step = 1;
  while (cb + step <= bhi && v.mins[cb + step] <= x) {
    cb += step;
    step <<= 1;
  }
  uint32_t a = cb + 1;
  uint32_t bnd = static_cast<uint32_t>(
      std::min<uint64_t>(uint64_t(cb) + step, bhi) + 1);
  while (a < bnd) {
    const uint32_t mid = a + (bnd - a) / 2;
    if (v.mins[mid] <= x) {
      a = mid + 1;
    } else {
      bnd = mid;
    }
  }
  cb = a - 1;
  const uint32_t cnt = bc::DecodeBlockCached(v, cb, cache, nullptr);
  const Value* const buf = cache->vals;
  const uint64_t base = uint64_t(cb) * B;
  const uint32_t s = static_cast<uint32_t>(std::max<uint64_t>(r.lo, base) -
                                           base);
  const uint32_t e = static_cast<uint32_t>(
      std::min<uint64_t>(r.hi, base + cnt) - base);
  const Value* p = std::lower_bound(buf + s, buf + e, x);
  if (p != buf + e) return static_cast<uint32_t>(base + (p - buf));
  // Everything in this block's window is < x; the next block's first
  // value (if still inside the range) is the answer.
  return static_cast<uint32_t>(std::min<uint64_t>(r.hi, base + B));
}

}  // namespace

uint32_t Trie::SeekInRange(int level, Range r, Value v) const {
  if (levels_[level].compressed && !r.empty()) {
    bc::DecodeCache cache;
    return SeekCompressed(levels_[level].comp(), r, v, &cache);
  }
  return SeekInRange(level, r, v, nullptr);
}

uint32_t Trie::SeekInRange(int level, Range r, Value v,
                           bc::DecodeCache* cache) const {
  if (r.empty()) return r.lo;
  const Level& lvl = levels_[level];
  if (lvl.compressed) return SeekCompressed(lvl.comp(), r, v, cache);
  std::span<const Value> vals = lvl.vals();
  uint32_t lo = r.lo;
  uint32_t hi = r.hi;
  if (vals[lo] >= v) return lo;
  // Galloping phase: double the step from lo until we overshoot.
  uint32_t step = 1;
  uint32_t prev = lo;
  uint32_t cur = lo + 1;
  while (cur < hi && vals[cur] < v) {
    prev = cur;
    step <<= 1;
    cur = (step > hi - lo) ? hi : lo + step;
  }
  // Binary search in (prev, cur].
  uint32_t a = prev + 1, b = std::min(cur + 1, hi);
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (vals[mid] < v) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a;
}

uint32_t Trie::FindInRange(int level, Range r, Value v) const {
  if (levels_[level].compressed) {
    bc::DecodeCache cache;
    return FindInRange(level, r, v, &cache);
  }
  uint32_t idx = SeekInRange(level, r, v, nullptr);
  if (idx < r.hi && ValueAt(level, idx) == v) return idx;
  return r.hi;
}

uint32_t Trie::FindInRange(int level, Range r, Value v,
                           bc::DecodeCache* cache) const {
  uint32_t idx = SeekInRange(level, r, v, cache);
  // The seek decoded (or found cached) the block holding idx, so the
  // confirming read is almost always a cache hit.
  if (idx < r.hi && ValueAt(level, idx, cache) == v) return idx;
  return r.hi;
}

std::string Trie::ToString() const {
  std::string out = "Trie{";
  for (int l = 0; l < arity(); ++l) {
    if (l > 0) out += "; ";
    out += "L" + std::to_string(l) + "[" + std::to_string(LevelSize(l)) + "]";
    if (levels_[l].compressed) out += "c";
  }
  if (mmap_backed()) out += " mmap";
  out += "}";
  return out;
}

}  // namespace adj::storage
