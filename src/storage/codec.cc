#include "storage/codec.h"

#include <functional>

namespace adj::storage {

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

StatusOr<uint64_t> GetVarint(const std::vector<uint8_t>& buf, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < buf.size()) {
    const uint8_t byte = buf[(*pos)++];
    v |= uint64_t(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return Status::OutOfRange("truncated varint");
}

void EncodeSortedValues(std::span<const Value> values,
                        std::vector<uint8_t>* out) {
  PutVarint(values.size(), out);
  Value prev = 0;
  for (Value v : values) {
    PutVarint(uint64_t(v) - uint64_t(prev), out);
    prev = v;
  }
}

Status DecodeSortedValues(const std::vector<uint8_t>& buf, size_t* pos,
                          std::vector<Value>* out) {
  StatusOr<uint64_t> count = GetVarint(buf, pos);
  if (!count.ok()) return count.status();
  out->clear();
  out->reserve(*count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    StatusOr<uint64_t> delta = GetVarint(buf, pos);
    if (!delta.ok()) return delta.status();
    prev += *delta;
    if (prev > 0xFFFFFFFFull) return Status::OutOfRange("value overflow");
    out->push_back(static_cast<Value>(prev));
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeRelationBlock(const Relation& rel) {
  std::vector<uint8_t> out;
  const int k = rel.arity();
  PutVarint(uint64_t(k), &out);
  PutVarint(rel.size(), &out);
  // Shared-prefix + delta coding: for each row, the length of the
  // common prefix with the previous row, then a delta for the first
  // differing column and absolute values after it.
  std::vector<Value> prev(k, 0);
  for (uint64_t r = 0; r < rel.size(); ++r) {
    std::span<const Value> row = rel.Row(r);
    int common = 0;
    if (r > 0) {
      while (common < k && prev[size_t(common)] == row[size_t(common)]) {
        ++common;
      }
    }
    PutVarint(uint64_t(common), &out);
    for (int c = common; c < k; ++c) {
      if (c == common && r > 0) {
        // Sorted input: first differing column strictly increases.
        PutVarint(uint64_t(row[size_t(c)]) - uint64_t(prev[size_t(c)]),
                  &out);
      } else {
        PutVarint(uint64_t(row[size_t(c)]), &out);
      }
      prev[size_t(c)] = row[size_t(c)];
    }
  }
  return out;
}

StatusOr<Relation> DecodeRelationBlock(const std::vector<uint8_t>& buf,
                                       const Schema& schema) {
  size_t pos = 0;
  StatusOr<uint64_t> arity = GetVarint(buf, &pos);
  if (!arity.ok()) return arity.status();
  if (int(*arity) != schema.arity()) {
    return Status::InvalidArgument("block arity does not match schema");
  }
  StatusOr<uint64_t> rows = GetVarint(buf, &pos);
  if (!rows.ok()) return rows.status();
  const int k = schema.arity();
  Relation rel(schema);
  rel.Reserve(*rows);
  std::vector<Value> prev(k, 0);
  for (uint64_t r = 0; r < *rows; ++r) {
    StatusOr<uint64_t> common = GetVarint(buf, &pos);
    if (!common.ok()) return common.status();
    if (*common > uint64_t(k)) return Status::OutOfRange("bad prefix len");
    for (int c = int(*common); c < k; ++c) {
      StatusOr<uint64_t> coded = GetVarint(buf, &pos);
      if (!coded.ok()) return coded.status();
      uint64_t value = *coded;
      if (c == int(*common) && r > 0) value += prev[size_t(c)];
      if (value > 0xFFFFFFFFull) return Status::OutOfRange("value overflow");
      prev[size_t(c)] = static_cast<Value>(value);
    }
    rel.Append(std::span<const Value>(prev.data(), size_t(k)));
  }
  return rel;
}

std::vector<uint8_t> EncodeTrieBlock(const Trie& trie) {
  std::vector<uint8_t> out;
  const int k = trie.arity();
  PutVarint(uint64_t(k), &out);
  for (int l = 0; l < k; ++l) {
    // Values per level are sorted runs *within a parent*; across
    // parents they restart, so encode raw varints (still small) for
    // robustness, plus the child offsets as a sorted sequence.
    std::span<const Value> values = trie.values(l);
    PutVarint(values.size(), &out);
    for (Value v : values) PutVarint(uint64_t(v), &out);
    if (l + 1 < k) {
      // Offsets ascend: delta-encode.
      std::vector<Value> offsets;
      offsets.reserve(values.size() + 1);
      for (uint32_t i = 0; i < values.size(); ++i) {
        offsets.push_back(trie.ChildRange(l, i).lo);
      }
      offsets.push_back(values.empty()
                            ? 0
                            : trie.ChildRange(l, uint32_t(values.size()) - 1)
                                  .hi);
      EncodeSortedValues(offsets, &out);
    }
  }
  return out;
}

StatusOr<Relation> DecodeTrieBlockToRelation(const std::vector<uint8_t>& buf,
                                             const Schema& schema) {
  size_t pos = 0;
  StatusOr<uint64_t> arity = GetVarint(buf, &pos);
  if (!arity.ok()) return arity.status();
  const int k = int(*arity);
  if (k != schema.arity()) {
    return Status::InvalidArgument("trie block arity mismatch");
  }
  std::vector<std::vector<Value>> values(k);
  std::vector<std::vector<Value>> offsets(k);  // per level, size+1
  for (int l = 0; l < k; ++l) {
    StatusOr<uint64_t> count = GetVarint(buf, &pos);
    if (!count.ok()) return count.status();
    values[size_t(l)].reserve(*count);
    for (uint64_t i = 0; i < *count; ++i) {
      StatusOr<uint64_t> v = GetVarint(buf, &pos);
      if (!v.ok()) return v.status();
      values[size_t(l)].push_back(static_cast<Value>(*v));
    }
    if (l + 1 < k) {
      ADJ_RETURN_IF_ERROR(DecodeSortedValues(buf, &pos, &offsets[size_t(l)]));
      if (offsets[size_t(l)].size() != values[size_t(l)].size() + 1) {
        return Status::OutOfRange("trie offsets inconsistent");
      }
    }
  }
  // Reconstruct rows by walking the implied trie (depth <= arity).
  Relation rel(schema);
  std::vector<Value> row(k);
  std::function<Status(int, uint32_t, uint32_t)> walk =
      [&](int level, uint32_t lo, uint32_t hi) -> Status {
    for (uint32_t i = lo; i < hi; ++i) {
      row[size_t(level)] = values[size_t(level)][i];
      if (level + 1 == k) {
        rel.Append(row);
      } else {
        const uint32_t clo = offsets[size_t(level)][i];
        const uint32_t chi = offsets[size_t(level)][i + 1];
        if (chi < clo || chi > values[size_t(level) + 1].size()) {
          return Status::OutOfRange("trie child range corrupt");
        }
        ADJ_RETURN_IF_ERROR(walk(level + 1, clo, chi));
      }
    }
    return Status::OK();
  };
  if (k > 0 && !values[0].empty()) {
    ADJ_RETURN_IF_ERROR(walk(0, 0, uint32_t(values[0].size())));
  }
  return rel;
}

}  // namespace adj::storage
