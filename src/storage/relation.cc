#include "storage/relation.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace adj::storage {
namespace {

/// Sorts the flat row-major buffer of `arity`-wide rows in place,
/// lexicographically, and removes duplicate rows.
void SortRows(std::vector<Value>& data, int arity) {
  if (arity == 0 || data.empty()) return;
  const uint64_t rows = data.size() / arity;
  std::vector<uint64_t> index(rows);
  for (uint64_t i = 0; i < rows; ++i) index[i] = i;
  const Value* base = data.data();
  std::sort(index.begin(), index.end(), [&](uint64_t a, uint64_t b) {
    return std::lexicographical_compare(
        base + a * arity, base + (a + 1) * arity, base + b * arity,
        base + (b + 1) * arity);
  });
  std::vector<Value> out;
  out.reserve(data.size());
  const Value* prev = nullptr;
  for (uint64_t i : index) {
    const Value* row = base + i * arity;
    if (prev != nullptr && std::memcmp(prev, row, arity * sizeof(Value)) == 0) {
      continue;
    }
    out.insert(out.end(), row, row + arity);
    prev = out.data() + out.size() - arity;
  }
  data = std::move(out);
}

}  // namespace

void Relation::Append(std::span<const Value> tuple) {
  ADJ_CHECK(static_cast<int>(tuple.size()) == arity())
      << "arity mismatch: tuple " << tuple.size() << " vs schema " << arity();
  Detach();
  data_.insert(data_.end(), tuple.begin(), tuple.end());
}

void Relation::SortAndDedup() {
  Detach();
  SortRows(data_, arity());
}

bool Relation::IsSortedUnique() const {
  const int k = arity();
  if (k == 0) return true;
  const uint64_t n = size();
  const Value* base = rows().data();
  for (uint64_t i = 1; i < n; ++i) {
    const Value* a = base + (i - 1) * k;
    const Value* b = base + i * k;
    if (!std::lexicographical_compare(a, a + k, b, b + k)) return false;
  }
  return true;
}

Relation Relation::PermuteColumns(const Schema& new_schema,
                                  const std::vector<int>& perm) const {
  ADJ_CHECK(new_schema.arity() == arity());
  ADJ_CHECK(static_cast<int>(perm.size()) == arity());
  Relation out(new_schema);
  out.Reserve(size());
  const int k = arity();
  std::vector<Value> tmp(k);
  for (uint64_t r = 0; r < size(); ++r) {
    const Value* row = rows().data() + r * k;
    for (int i = 0; i < k; ++i) tmp[i] = row[perm[i]];
    out.Append(tmp);
  }
  return out;
}

std::vector<Value> Relation::DistinctColumn(int col) const {
  std::vector<Value> vals;
  vals.reserve(size());
  const int k = arity();
  for (uint64_t r = 0; r < size(); ++r) vals.push_back(rows()[r * k + col]);
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

Relation Relation::SemiJoinFilter(int col,
                                  const std::vector<Value>& keep) const {
  Relation out(schema_);
  const int k = arity();
  for (uint64_t r = 0; r < size(); ++r) {
    Value v = rows()[r * k + col];
    if (std::binary_search(keep.begin(), keep.end(), v)) {
      out.Append(Row(r));
    }
  }
  return out;
}

std::string Relation::ToString(uint64_t max_rows) const {
  std::string out = schema_.ToString() + " [" + std::to_string(size()) + "] {";
  const uint64_t n = std::min<uint64_t>(size(), max_rows);
  for (uint64_t r = 0; r < n; ++r) {
    out += r == 0 ? "(" : ", (";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(At(r, c));
    }
    out += ")";
  }
  if (size() > n) out += ", ...";
  out += "}";
  return out;
}

}  // namespace adj::storage
