#include "storage/index_cache.h"

#include <algorithm>

namespace adj::storage {

std::string SpecJoin(const std::vector<int>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

StatusOr<std::shared_ptr<const void>> IndexCache::GetOrBuild(
    const void* identity, const std::string& spec,
    std::shared_ptr<const void> pin, const BuildFn& build,
    IndexBuildStats* stats) {
  if (identity == nullptr || pin == nullptr) {
    return Status::InvalidArgument("index cache key needs a live source");
  }
  const Key key{identity, spec};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: this thread builds
    std::shared_ptr<Entry> entry = it->second;
    if (!entry->ready) {
      // Another thread is building this key: wait, then re-check (the
      // entry is gone if that build failed, making us the builder).
      ready_cv_.wait(lock);
      continue;
    }
    entry->lru_tick = ++tick_;
    ++stats_.hits;
    if (stats != nullptr) ++stats->hits;
    return entry->artifact;
  }

  auto entry = std::make_shared<Entry>();
  entry->pin = std::move(pin);
  entries_[key] = entry;
  lock.unlock();
  StatusOr<BuildResult> built = build();
  lock.lock();
  // A concurrent Clear() may have dropped our placeholder (and a new
  // builder may have replaced it): only touch the map and the resident
  // accounting if the placeholder is still ours.
  auto it = entries_.find(key);
  const bool resident = it != entries_.end() && it->second == entry;
  if (!built.ok() || built->artifact == nullptr) {
    if (resident) entries_.erase(it);
    ++stats_.build_failures;
    ready_cv_.notify_all();
    return built.ok() ? Status::Internal("index build returned no artifact")
                      : built.status();
  }
  entry->artifact = std::move(built->artifact);
  entry->bytes = built->bytes;
  entry->lru_tick = ++tick_;
  entry->ready = true;
  ++stats_.builds;
  if (stats != nullptr) ++stats->builds;
  if (resident) {
    stats_.resident_bytes += entry->bytes;
    EnforceBudgetLocked();
  }
  ready_cv_.notify_all();
  return entry->artifact;
}

StatusOr<std::shared_ptr<const std::vector<Value>>> IndexCache::GetPermutedRows(
    const std::shared_ptr<const Relation>& base, const Schema& schema,
    const std::vector<int>& perm) {
  const std::string spec = "rows:p=" + SpecJoin(perm);
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuild(
      base.get(), spec, base,
      [&]() -> StatusOr<BuildResult> {
        Relation rel = base->PermuteColumns(schema, perm);
        rel.SortAndDedup();
        auto rows = std::make_shared<const std::vector<Value>>(
            std::move(rel.mutable_raw()));
        return BuildResult{rows, rows->size() * sizeof(Value)};
      },
      /*stats=*/nullptr);
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const std::vector<Value>>(*artifact);
}

StatusOr<std::shared_ptr<const Trie>> IndexCache::GetPermutedTrie(
    const std::shared_ptr<const Relation>& base, const Schema& schema,
    const std::vector<int>& perm) {
  const std::string spec = "trie:p=" + SpecJoin(perm);
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuild(
      base.get(), spec, base,
      [&]() -> StatusOr<BuildResult> {
        // Nested get: the build runs outside the cache lock, so
        // re-entering for the rows layer is safe (single-flight is per
        // key). The trie's shape does not depend on the labeling; the
        // schema is only borrowed for arity.
        StatusOr<std::shared_ptr<const std::vector<Value>>> rows =
            GetPermutedRows(base, schema, perm);
        if (!rows.ok()) return rows.status();
        const Relation alias = Relation::AliasRows(schema, *rows);
        auto trie = std::make_shared<const Trie>(Trie::Build(alias));
        return BuildResult{trie, trie->StorageValues() * sizeof(Value)};
      },
      /*stats=*/nullptr);
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Trie>(*artifact);
}

StatusOr<std::shared_ptr<const PreparedIndex>> IndexCache::GetPermuted(
    std::shared_ptr<const Relation> base, const Schema& schema,
    const std::vector<int>& perm, IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation for index");
  }
  if (schema.arity() != static_cast<int>(perm.size()) ||
      base->arity() != schema.arity()) {
    return Status::InvalidArgument("column order arity mismatch for index");
  }
  const Relation* identity = base.get();
  // The physical payload depends only on the column permutation; the
  // attribute labeling rides along because consumers — HashJoin above
  // all — read rel->schema() for join semantics. The labeled entry is
  // therefore an alias: its rows vector and trie live in (and are
  // charged to) the perm-keyed layers, shared across labelings.
  std::string spec = "bind:p=" + SpecJoin(perm) + ";a=" + schema.ToString();
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuild(
      identity, spec, base,
      [&]() -> StatusOr<BuildResult> {
        StatusOr<std::shared_ptr<const std::vector<Value>>> rows =
            GetPermutedRows(base, schema, perm);
        if (!rows.ok()) return rows.status();
        StatusOr<std::shared_ptr<const Trie>> trie =
            GetPermutedTrie(base, schema, perm);
        if (!trie.ok()) return trie.status();
        auto index = std::make_shared<PreparedIndex>();
        index->rel = std::make_shared<const Relation>(
            Relation::AliasRows(schema, std::move(*rows)));
        index->trie = std::move(*trie);
        // Alias entry: payload bytes are charged once, on the
        // perm-keyed rows/trie entries.
        return BuildResult{index, 0};
      },
      stats);
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const PreparedIndex>(*artifact);
}

StatusOr<std::shared_ptr<const Relation>> IndexCache::GetPermutedRelation(
    std::shared_ptr<const Relation> base, const Schema& schema,
    const std::vector<int>& perm, IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation for index");
  }
  if (schema.arity() != static_cast<int>(perm.size()) ||
      base->arity() != schema.arity()) {
    return Status::InvalidArgument("column order arity mismatch for index");
  }
  const Relation* identity = base.get();
  std::string spec = "rel:p=" + SpecJoin(perm) + ";a=" + schema.ToString();
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuild(
      identity, spec, base,
      [&]() -> StatusOr<BuildResult> {
        StatusOr<std::shared_ptr<const std::vector<Value>>> rows =
            GetPermutedRows(base, schema, perm);
        if (!rows.ok()) return rows.status();
        auto rel = std::make_shared<const Relation>(
            Relation::AliasRows(schema, std::move(*rows)));
        return BuildResult{rel, 0};
      },
      stats);
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Relation>(*artifact);
}

bool IndexCache::SweepOnceLocked() {
  // How many pins inside the cache share each source's control block:
  // a source is unreachable when the cache accounts for every one of
  // its remaining references.
  std::map<const void*, long> cache_pins;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) ++cache_pins[entry->pin.get()];
  }
  bool dropped = false;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = *it->second;
    if (e.ready && e.pin.use_count() <= cache_pins[e.pin.get()]) {
      stats_.resident_bytes -= e.bytes;
      ++stats_.evictions;
      it = entries_.erase(it);
      dropped = true;
    } else {
      ++it;
    }
  }
  return dropped;
}

void IndexCache::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  // Fixpoint: dropping a bound-atom entry releases its artifact, which
  // may have been the last external reference pinning shard entries
  // derived from it — the next pass collects those.
  while (SweepOnceLocked()) {
  }
}

void IndexCache::EnforceBudgetLocked() {
  if (budget_bytes_ == 0) return;
  while (stats_.resident_bytes > budget_bytes_) {
    // LRU among entries no consumer holds right now; evicting a held
    // artifact would not free memory anyway.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = *it->second;
      if (!e.ready || e.artifact.use_count() > 1) continue;
      if (victim == entries_.end() ||
          e.lru_tick < victim->second->lru_tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything is in use
    stats_.resident_bytes -= victim->second->bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) {
      stats_.resident_bytes -= entry->bytes;
      ++stats_.evictions;
    }
  }
  entries_.clear();
}

void IndexCache::set_budget_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
  EnforceBudgetLocked();
}

uint64_t IndexCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resident_bytes;
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace adj::storage
