#include "storage/index_cache.h"

#include <algorithm>

namespace adj::storage {

std::string SpecJoin(const std::vector<int>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

namespace {

std::string RowsSpec(const std::vector<int>& perm) {
  return "rows:p=" + SpecJoin(perm);
}
std::string TrieSpec(const std::vector<int>& perm) {
  return "trie:p=" + SpecJoin(perm);
}
std::string BindSpec(const std::vector<int>& perm, const Schema& schema) {
  return "bind:p=" + SpecJoin(perm) + ";a=" + schema.ToString();
}
std::string RelSpec(const std::vector<int>& perm, const Schema& schema) {
  return "rel:p=" + SpecJoin(perm) + ";a=" + schema.ToString();
}

}  // namespace

StatusOr<std::shared_ptr<const void>> IndexCache::GetOrBuild(
    const void* identity, const std::string& spec,
    std::shared_ptr<const void> pin, const BuildFn& build,
    IndexBuildStats* stats) {
  return GetOrBuildTagged(identity, spec, std::move(pin), build, stats,
                          /*meta=*/nullptr);
}

StatusOr<std::shared_ptr<const void>> IndexCache::GetOrBuildTagged(
    const void* identity, const std::string& spec,
    std::shared_ptr<const void> pin, const BuildFn& build,
    IndexBuildStats* stats, std::shared_ptr<const PermutedMeta> meta) {
  if (identity == nullptr || pin == nullptr) {
    return Status::InvalidArgument("index cache key needs a live source");
  }
  const Key key{identity, spec};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: this thread builds
    std::shared_ptr<Entry> entry = it->second;
    if (!entry->ready) {
      // Another thread is building this key: wait, then re-check (the
      // entry is gone if that build failed, making us the builder).
      ready_cv_.wait(lock);
      continue;
    }
    entry->lru_tick = ++tick_;
    ++stats_.hits;
    if (entry->mmap) ++stats_.mmap_hits;
    if (stats != nullptr) {
      ++stats->hits;
      if (entry->mmap) ++stats->mmap_hits;
    }
    return entry->artifact;
  }

  auto entry = std::make_shared<Entry>();
  entry->pin = std::move(pin);
  entry->meta = std::move(meta);
  entries_[key] = entry;
  lock.unlock();
  StatusOr<BuildResult> built = build();
  lock.lock();
  // A concurrent Clear() may have dropped our placeholder (and a new
  // builder may have replaced it): only touch the map and the resident
  // accounting if the placeholder is still ours.
  auto it = entries_.find(key);
  const bool resident = it != entries_.end() && it->second == entry;
  if (!built.ok() || built->artifact == nullptr) {
    if (resident) entries_.erase(it);
    ++stats_.build_failures;
    ready_cv_.notify_all();
    return built.ok() ? Status::Internal("index build returned no artifact")
                      : built.status();
  }
  entry->artifact = std::move(built->artifact);
  entry->bytes = built->bytes;
  entry->lru_tick = ++tick_;
  entry->ready = true;
  ++stats_.builds;
  if (stats != nullptr) ++stats->builds;
  if (resident) {
    stats_.resident_bytes += entry->bytes;
    EnforceBudgetLocked();
  }
  ready_cv_.notify_all();
  return entry->artifact;
}

StatusOr<std::shared_ptr<const Relation>> IndexCache::GetPermutedRows(
    const std::shared_ptr<const Relation>& base, const Schema& schema,
    const std::vector<int>& perm) {
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kRows;
  meta->perm = perm;
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      base.get(), RowsSpec(perm), base,
      [&]() -> StatusOr<BuildResult> {
        // The canonical physical payload: one permuted + sorted
        // relation per (base, perm), whose buffer every labeling
        // aliases. Snapshot adoption swaps in a mapped-span relation
        // under the same key.
        Relation rel = base->PermuteColumns(schema, perm);
        rel.SortAndDedup();
        auto canon = std::make_shared<const Relation>(std::move(rel));
        return BuildResult{canon, canon->SizeBytes()};
      },
      /*stats=*/nullptr, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Relation>(*artifact);
}

StatusOr<std::shared_ptr<const Trie>> IndexCache::GetPermutedTrie(
    const std::shared_ptr<const Relation>& base, const Schema& schema,
    const std::vector<int>& perm) {
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kTrie;
  meta->perm = perm;
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      base.get(), TrieSpec(perm), base,
      [&]() -> StatusOr<BuildResult> {
        // Nested get: the build runs outside the cache lock, so
        // re-entering for the rows layer is safe (single-flight is per
        // key). The trie's shape does not depend on the labeling; the
        // schema is only borrowed for arity.
        StatusOr<std::shared_ptr<const Relation>> rows =
            GetPermutedRows(base, schema, perm);
        if (!rows.ok()) return rows.status();
        auto trie = std::make_shared<const Trie>(Trie::Build(**rows));
        return BuildResult{trie, trie->StorageValues() * sizeof(Value)};
      },
      /*stats=*/nullptr, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Trie>(*artifact);
}

StatusOr<std::shared_ptr<const PreparedIndex>> IndexCache::GetPermuted(
    std::shared_ptr<const Relation> base, const Schema& schema,
    const std::vector<int>& perm, IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation for index");
  }
  if (schema.arity() != static_cast<int>(perm.size()) ||
      base->arity() != schema.arity()) {
    return Status::InvalidArgument("column order arity mismatch for index");
  }
  const Relation* identity = base.get();
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kBind;
  meta->perm = perm;
  meta->schema = schema;
  // The physical payload depends only on the column permutation; the
  // attribute labeling rides along because consumers — HashJoin above
  // all — read rel->schema() for join semantics. The labeled entry is
  // therefore an alias: its rows buffer and trie live in (and are
  // charged to) the perm-keyed layers, shared across labelings.
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      identity, BindSpec(perm, schema), base,
      [&]() -> StatusOr<BuildResult> {
        StatusOr<std::shared_ptr<const Relation>> rows =
            GetPermutedRows(base, schema, perm);
        if (!rows.ok()) return rows.status();
        StatusOr<std::shared_ptr<const Trie>> trie =
            GetPermutedTrie(base, schema, perm);
        if (!trie.ok()) return trie.status();
        auto index = std::make_shared<PreparedIndex>();
        index->rel = std::make_shared<const Relation>(
            Relation::AliasSpan(schema, (*rows)->raw(), *rows));
        index->trie = std::move(*trie);
        // Alias entry: payload bytes are charged once, on the
        // perm-keyed rows/trie entries.
        return BuildResult{index, 0};
      },
      stats, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const PreparedIndex>(*artifact);
}

StatusOr<std::shared_ptr<const Relation>> IndexCache::GetPermutedRelation(
    std::shared_ptr<const Relation> base, const Schema& schema,
    const std::vector<int>& perm, IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation for index");
  }
  if (schema.arity() != static_cast<int>(perm.size()) ||
      base->arity() != schema.arity()) {
    return Status::InvalidArgument("column order arity mismatch for index");
  }
  const Relation* identity = base.get();
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kRel;
  meta->perm = perm;
  meta->schema = schema;
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      identity, RelSpec(perm, schema), base,
      [&]() -> StatusOr<BuildResult> {
        StatusOr<std::shared_ptr<const Relation>> rows =
            GetPermutedRows(base, schema, perm);
        if (!rows.ok()) return rows.status();
        auto rel = std::make_shared<const Relation>(
            Relation::AliasSpan(schema, (*rows)->raw(), *rows));
        return BuildResult{rel, 0};
      },
      stats, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Relation>(*artifact);
}

std::vector<IndexCache::ExportedPayload> IndexCache::ExportPermutedIndexes()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  // Fold the layered entries back into (identity, perm) payload units.
  std::map<std::pair<const void*, std::string>, ExportedPayload> payloads;
  auto slot = [&](const void* identity,
                  const std::vector<int>& perm) -> ExportedPayload& {
    ExportedPayload& p = payloads[{identity, SpecJoin(perm)}];
    if (p.identity == nullptr) {
      p.identity = identity;
      p.perm = perm;
    }
    return p;
  };
  for (const auto& [key, entry] : entries_) {
    if (!entry->ready || entry->meta == nullptr) continue;
    const PermutedMeta& meta = *entry->meta;
    ExportedPayload& p = slot(key.first, meta.perm);
    p.lru_tick = std::max(p.lru_tick, entry->lru_tick);
    switch (meta.kind) {
      case PermutedMeta::kRows:
        p.rows = std::static_pointer_cast<const Relation>(entry->artifact);
        break;
      case PermutedMeta::kTrie:
        p.trie = std::static_pointer_cast<const Trie>(entry->artifact);
        break;
      case PermutedMeta::kBind:
        p.bindings.push_back(Binding{meta.schema, /*with_trie=*/true});
        break;
      case PermutedMeta::kRel:
        p.bindings.push_back(Binding{meta.schema, /*with_trie=*/false});
        break;
    }
  }
  std::vector<ExportedPayload> out;
  out.reserve(payloads.size());
  for (auto& [key, p] : payloads) {
    // A bind/rel entry can outlive its physical layers only
    // transiently (budget eviction); such orphans are not exportable.
    if (p.rows != nullptr) out.push_back(std::move(p));
  }
  return out;
}

bool IndexCache::AdoptEntryLocked(const Key& key,
                                  std::shared_ptr<const void> pin,
                                  std::shared_ptr<const void> artifact,
                                  uint64_t bytes,
                                  std::shared_ptr<const PermutedMeta> meta) {
  if (entries_.count(key) != 0) return false;  // live entries win
  auto entry = std::make_shared<Entry>();
  entry->artifact = std::move(artifact);
  entry->pin = std::move(pin);
  entry->bytes = bytes;
  entry->lru_tick = ++tick_;
  entry->ready = true;
  entry->mmap = true;
  entry->meta = std::move(meta);
  entries_[key] = entry;
  stats_.resident_bytes += bytes;
  return true;
}

Status IndexCache::AdoptPermuted(std::shared_ptr<const Relation> base,
                                 const std::vector<int>& perm,
                                 std::shared_ptr<const Relation> canon,
                                 std::shared_ptr<const Trie> trie,
                                 const std::vector<Binding>& bindings) {
  if (base == nullptr || canon == nullptr) {
    return Status::InvalidArgument("adopt needs a base and a payload");
  }
  if (static_cast<int>(perm.size()) != base->arity() ||
      canon->arity() != base->arity()) {
    return Status::InvalidArgument("adopt: permutation arity mismatch");
  }
  for (const Binding& b : bindings) {
    if (b.schema.arity() != base->arity()) {
      return Status::InvalidArgument("adopt: binding arity mismatch");
    }
    if (b.with_trie && trie == nullptr) {
      return Status::InvalidArgument("adopt: trie-backed binding needs a trie");
    }
  }
  if (trie != nullptr &&
      (trie->arity() != base->arity() || trie->NumTuples() != canon->size())) {
    return Status::InvalidArgument("adopt: trie does not match payload");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const void* identity = base.get();
  {
    auto meta = std::make_shared<PermutedMeta>();
    meta->kind = PermutedMeta::kRows;
    meta->perm = perm;
    AdoptEntryLocked({identity, RowsSpec(perm)}, base, canon,
                     canon->SizeBytes(), std::move(meta));
  }
  if (trie != nullptr) {
    auto meta = std::make_shared<PermutedMeta>();
    meta->kind = PermutedMeta::kTrie;
    meta->perm = perm;
    AdoptEntryLocked({identity, TrieSpec(perm)}, base, trie,
                     trie->StorageValues() * sizeof(Value), std::move(meta));
  }
  for (const Binding& b : bindings) {
    auto meta = std::make_shared<PermutedMeta>();
    meta->perm = perm;
    meta->schema = b.schema;
    if (b.with_trie) {
      meta->kind = PermutedMeta::kBind;
      auto index = std::make_shared<PreparedIndex>();
      index->rel = std::make_shared<const Relation>(
          Relation::AliasSpan(b.schema, canon->raw(), canon));
      index->trie = trie;
      AdoptEntryLocked({identity, BindSpec(perm, b.schema)}, base, index,
                       /*bytes=*/0, std::move(meta));
    } else {
      meta->kind = PermutedMeta::kRel;
      auto rel = std::make_shared<const Relation>(
          Relation::AliasSpan(b.schema, canon->raw(), canon));
      AdoptEntryLocked({identity, RelSpec(perm, b.schema)}, base, rel,
                       /*bytes=*/0, std::move(meta));
    }
  }
  EnforceBudgetLocked();
  return Status::OK();
}

bool IndexCache::SweepOnceLocked() {
  // How many pins inside the cache share each source's control block:
  // a source is unreachable when the cache accounts for every one of
  // its remaining references.
  std::map<const void*, long> cache_pins;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) ++cache_pins[entry->pin.get()];
  }
  bool dropped = false;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = *it->second;
    if (e.ready && e.pin.use_count() <= cache_pins[e.pin.get()]) {
      stats_.resident_bytes -= e.bytes;
      ++stats_.evictions;
      it = entries_.erase(it);
      dropped = true;
    } else {
      ++it;
    }
  }
  return dropped;
}

void IndexCache::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  // Fixpoint: dropping a bound-atom entry releases its artifact, which
  // may have been the last external reference pinning shard entries
  // derived from it — the next pass collects those.
  while (SweepOnceLocked()) {
  }
}

void IndexCache::EnforceBudgetLocked() {
  if (budget_bytes_ == 0) return;
  while (stats_.resident_bytes > budget_bytes_) {
    // LRU among entries no consumer holds right now; evicting a held
    // artifact would not free memory anyway.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = *it->second;
      if (!e.ready || e.artifact.use_count() > 1) continue;
      if (victim == entries_.end() ||
          e.lru_tick < victim->second->lru_tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything is in use
    stats_.resident_bytes -= victim->second->bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) {
      stats_.resident_bytes -= entry->bytes;
      ++stats_.evictions;
    }
  }
  entries_.clear();
}

void IndexCache::EnforceBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  EnforceBudgetLocked();
}

void IndexCache::set_budget_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
  EnforceBudgetLocked();
}

uint64_t IndexCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resident_bytes;
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  out.mmap_entries = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready && entry->mmap) ++out.mmap_entries;
  }
  return out;
}

}  // namespace adj::storage
