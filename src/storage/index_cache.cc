#include "storage/index_cache.h"

#include <algorithm>

namespace adj::storage {

std::string SpecJoin(const std::vector<int>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

namespace {

std::string RowsSpec(const std::vector<int>& perm) {
  return "rows:p=" + SpecJoin(perm);
}
std::string TrieSpec(const std::vector<int>& perm) {
  return "trie:p=" + SpecJoin(perm);
}
std::string BindSpec(const std::vector<int>& perm, const Schema& schema) {
  return "bind:p=" + SpecJoin(perm) + ";a=" + schema.ToString();
}
std::string RelSpec(const std::vector<int>& perm, const Schema& schema) {
  return "rel:p=" + SpecJoin(perm) + ";a=" + schema.ToString();
}

}  // namespace

StatusOr<std::shared_ptr<const void>> IndexCache::GetOrBuild(
    const void* identity, const std::string& spec,
    std::shared_ptr<const void> pin, const BuildFn& build,
    IndexBuildStats* stats) {
  return GetOrBuildTagged(identity, spec, std::move(pin), build, stats,
                          /*meta=*/nullptr);
}

StatusOr<std::shared_ptr<const void>> IndexCache::GetOrBuildTagged(
    const void* identity, const std::string& spec,
    std::shared_ptr<const void> pin, const BuildFn& build,
    IndexBuildStats* stats, std::shared_ptr<const PermutedMeta> meta) {
  if (identity == nullptr || pin == nullptr) {
    return Status::InvalidArgument("index cache key needs a live source");
  }
  const Key key{identity, spec};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: this thread builds
    std::shared_ptr<Entry> entry = it->second;
    if (!entry->ready) {
      // Another thread is building this key: wait, then re-check (the
      // entry is gone if that build failed, making us the builder).
      ready_cv_.wait(lock);
      continue;
    }
    entry->lru_tick = ++tick_;
    ++stats_.hits;
    if (entry->mmap) ++stats_.mmap_hits;
    if (stats != nullptr) {
      ++stats->hits;
      if (entry->mmap) ++stats->mmap_hits;
    }
    return entry->artifact;
  }

  auto entry = std::make_shared<Entry>();
  entry->pin = std::move(pin);
  entry->meta = std::move(meta);
  entries_[key] = entry;
  lock.unlock();
  StatusOr<BuildResult> built = build();
  lock.lock();
  // A concurrent Clear() may have dropped our placeholder (and a new
  // builder may have replaced it): only touch the map and the resident
  // accounting if the placeholder is still ours.
  auto it = entries_.find(key);
  const bool resident = it != entries_.end() && it->second == entry;
  if (!built.ok() || built->artifact == nullptr) {
    if (resident) entries_.erase(it);
    ++stats_.build_failures;
    ready_cv_.notify_all();
    return built.ok() ? Status::Internal("index build returned no artifact")
                      : built.status();
  }
  entry->artifact = std::move(built->artifact);
  entry->bytes = built->bytes;
  entry->lru_tick = ++tick_;
  entry->ready = true;
  entry->patched = built->patched;
  if (built->patched) {
    ++stats_.patched_builds;
    if (stats != nullptr) {
      ++stats->patched;
      stats->delta_rows_merged += built->delta_rows_merged;
    }
  } else {
    ++stats_.builds;
    if (stats != nullptr) ++stats->builds;
  }
  if (resident) {
    stats_.resident_bytes += entry->bytes;
    EnforceBudgetLocked();
  }
  ready_cv_.notify_all();
  return entry->artifact;
}

StatusOr<std::shared_ptr<const Relation>> IndexCache::GetPermutedRows(
    const std::shared_ptr<const Relation>& base, const Schema& schema,
    const std::vector<int>& perm, bool* patched_out, uint64_t* merged_out) {
  if (patched_out != nullptr) *patched_out = false;
  if (merged_out != nullptr) *merged_out = 0;
  PatchSource src;
  const bool have_patch =
      PeekPatchSource(base, perm, &src) && src.payload != nullptr;
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kRows;
  meta->perm = perm;
  bool used_patch = false;
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      base.get(), RowsSpec(perm), base,
      [&]() -> StatusOr<BuildResult> {
        // The canonical physical payload: one permuted + sorted
        // relation per (base, perm), whose buffer every labeling
        // aliases. Snapshot adoption swaps in a mapped-span relation
        // under the same key.
        if (have_patch) {
          // Merge-on-read: the relation gained a delta since the
          // recorded payload was built. Permute + sort only the delta
          // rows into this column order, then gallop-merge them over
          // the predecessor's canonical payload — O(delta · log n)
          // locate work plus run copies, never an O(n log n) re-sort
          // of the whole relation.
          Relation ins = src.delta->inserts.PermuteColumns(schema, perm);
          ins.SortAndDedup();
          Relation del = src.delta->deletes.PermuteColumns(schema, perm);
          del.SortAndDedup();
          Relation merged(schema);
          MergeDeltaRows(src.payload->raw(), schema.arity(), ins.raw(),
                         del.raw(), &merged.mutable_raw());
          auto canon = std::make_shared<const Relation>(std::move(merged));
          used_patch = true;
          BuildResult result;
          result.artifact = canon;
          result.bytes = canon->SizeBytes();
          result.patched = true;
          result.delta_rows_merged = src.delta->rows();
          return result;
        }
        Relation rel = base->PermuteColumns(schema, perm);
        rel.SortAndDedup();
        auto canon = std::make_shared<const Relation>(std::move(rel));
        return BuildResult{canon, canon->SizeBytes()};
      },
      /*stats=*/nullptr, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  if (used_patch) {
    ConsumePatchSource(base.get(), perm, src.delta->rows());
    if (merged_out != nullptr) *merged_out = src.delta->rows();
  }
  if (patched_out != nullptr) {
    *patched_out = used_patch || EntryIsPatched(base.get(), RowsSpec(perm));
  }
  return std::static_pointer_cast<const Relation>(*artifact);
}

StatusOr<std::shared_ptr<const Trie>> IndexCache::GetPermutedTrie(
    const std::shared_ptr<const Relation>& base, const Schema& schema,
    const std::vector<int>& perm) {
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kTrie;
  meta->perm = perm;
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      base.get(), TrieSpec(perm), base,
      [&]() -> StatusOr<BuildResult> {
        // Nested get: the build runs outside the cache lock, so
        // re-entering for the rows layer is safe (single-flight is per
        // key). The trie's shape does not depend on the labeling; the
        // schema is only borrowed for arity.
        bool rows_patched = false;
        StatusOr<std::shared_ptr<const Relation>> rows =
            GetPermutedRows(base, schema, perm, &rows_patched);
        if (!rows.ok()) return rows.status();
        // Trie-layer delta patch: when the predecessor's trie is still
        // on the patch record (the rows merge above clears only the
        // payload side), splice the permuted delta into its CSR arrays
        // instead of re-scanning all n merged rows. The tuple-count
        // check downgrades to a scratch build if the patch and the
        // payload ever disagree (they cannot under the single-writer
        // contract; the guard keeps a corrupt record from propagating).
        PatchSource src;
        if (PeekPatchSource(base, perm, &src) && src.trie != nullptr &&
            src.delta != nullptr) {
          Relation ins = src.delta->inserts.PermuteColumns(schema, perm);
          ins.SortAndDedup();
          Relation del = src.delta->deletes.PermuteColumns(schema, perm);
          del.SortAndDedup();
          Trie patched = Trie::PatchFrom(*src.trie, ins, del);
          ConsumeTriePatchSource(base.get(), perm);
          if (patched.NumTuples() == (*rows)->size()) {
            if (compress_tries()) {
              patched = Trie::Compress(std::move(patched));
            }
            auto trie = std::make_shared<const Trie>(std::move(patched));
            BuildResult result{trie, trie->ResidentBytes()};
            result.patched = true;
            return result;
          }
        }
        Trie built = Trie::Build(**rows);
        if (compress_tries()) built = Trie::Compress(std::move(built));
        auto trie = std::make_shared<const Trie>(std::move(built));
        BuildResult result{trie, trie->ResidentBytes()};
        // A trie over a patched payload counts as patched work, not a
        // from-scratch index build: its input rows were delta-merged.
        result.patched = rows_patched;
        return result;
      },
      /*stats=*/nullptr, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Trie>(*artifact);
}

StatusOr<std::shared_ptr<const PreparedIndex>> IndexCache::GetPermuted(
    std::shared_ptr<const Relation> base, const Schema& schema,
    const std::vector<int>& perm, IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation for index");
  }
  if (schema.arity() != static_cast<int>(perm.size()) ||
      base->arity() != schema.arity()) {
    return Status::InvalidArgument("column order arity mismatch for index");
  }
  const Relation* identity = base.get();
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kBind;
  meta->perm = perm;
  meta->schema = schema;
  // The physical payload depends only on the column permutation; the
  // attribute labeling rides along because consumers — HashJoin above
  // all — read rel->schema() for join semantics. The labeled entry is
  // therefore an alias: its rows buffer and trie live in (and are
  // charged to) the perm-keyed layers, shared across labelings.
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      identity, BindSpec(perm, schema), base,
      [&]() -> StatusOr<BuildResult> {
        bool rows_patched = false;
        uint64_t merged_now = 0;
        StatusOr<std::shared_ptr<const Relation>> rows =
            GetPermutedRows(base, schema, perm, &rows_patched, &merged_now);
        if (!rows.ok()) return rows.status();
        StatusOr<std::shared_ptr<const Trie>> trie =
            GetPermutedTrie(base, schema, perm);
        if (!trie.ok()) return trie.status();
        auto index = std::make_shared<PreparedIndex>();
        index->rel = std::make_shared<const Relation>(
            Relation::AliasSpan(schema, (*rows)->raw(), *rows));
        index->trie = std::move(*trie);
        // Alias entry: payload bytes are charged once, on the
        // perm-keyed rows/trie entries. Patched-ness is inherited from
        // the payload; the merge is charged to the consumer on the
        // labeled bind that actually triggered it.
        BuildResult result{index, 0};
        result.patched = rows_patched;
        result.delta_rows_merged = merged_now;
        return result;
      },
      stats, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const PreparedIndex>(*artifact);
}

StatusOr<std::shared_ptr<const Relation>> IndexCache::GetPermutedRelation(
    std::shared_ptr<const Relation> base, const Schema& schema,
    const std::vector<int>& perm, IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation for index");
  }
  if (schema.arity() != static_cast<int>(perm.size()) ||
      base->arity() != schema.arity()) {
    return Status::InvalidArgument("column order arity mismatch for index");
  }
  const Relation* identity = base.get();
  auto meta = std::make_shared<PermutedMeta>();
  meta->kind = PermutedMeta::kRel;
  meta->perm = perm;
  meta->schema = schema;
  StatusOr<std::shared_ptr<const void>> artifact = GetOrBuildTagged(
      identity, RelSpec(perm, schema), base,
      [&]() -> StatusOr<BuildResult> {
        bool rows_patched = false;
        uint64_t merged_now = 0;
        StatusOr<std::shared_ptr<const Relation>> rows =
            GetPermutedRows(base, schema, perm, &rows_patched, &merged_now);
        if (!rows.ok()) return rows.status();
        auto rel = std::make_shared<const Relation>(
            Relation::AliasSpan(schema, (*rows)->raw(), *rows));
        BuildResult result{rel, 0};
        result.patched = rows_patched;
        result.delta_rows_merged = merged_now;
        return result;
      },
      stats, std::move(meta));
  if (!artifact.ok()) return artifact.status();
  return std::static_pointer_cast<const Relation>(*artifact);
}

std::vector<IndexCache::ExportedPayload> IndexCache::ExportPermutedIndexes()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  // Fold the layered entries back into (identity, perm) payload units.
  std::map<std::pair<const void*, std::string>, ExportedPayload> payloads;
  auto slot = [&](const void* identity,
                  const std::vector<int>& perm) -> ExportedPayload& {
    ExportedPayload& p = payloads[{identity, SpecJoin(perm)}];
    if (p.identity == nullptr) {
      p.identity = identity;
      p.perm = perm;
    }
    return p;
  };
  for (const auto& [key, entry] : entries_) {
    if (!entry->ready || entry->meta == nullptr) continue;
    const PermutedMeta& meta = *entry->meta;
    ExportedPayload& p = slot(key.first, meta.perm);
    p.lru_tick = std::max(p.lru_tick, entry->lru_tick);
    switch (meta.kind) {
      case PermutedMeta::kRows:
        p.rows = std::static_pointer_cast<const Relation>(entry->artifact);
        break;
      case PermutedMeta::kTrie:
        p.trie = std::static_pointer_cast<const Trie>(entry->artifact);
        break;
      case PermutedMeta::kBind:
        p.bindings.push_back(Binding{meta.schema, /*with_trie=*/true});
        break;
      case PermutedMeta::kRel:
        p.bindings.push_back(Binding{meta.schema, /*with_trie=*/false});
        break;
    }
  }
  std::vector<ExportedPayload> out;
  out.reserve(payloads.size());
  for (auto& [key, p] : payloads) {
    // A bind/rel entry can outlive its physical layers only
    // transiently (budget eviction); such orphans are not exportable.
    if (p.rows != nullptr) out.push_back(std::move(p));
  }
  return out;
}

bool IndexCache::AdoptEntryLocked(const Key& key,
                                  std::shared_ptr<const void> pin,
                                  std::shared_ptr<const void> artifact,
                                  uint64_t bytes,
                                  std::shared_ptr<const PermutedMeta> meta) {
  if (entries_.count(key) != 0) return false;  // live entries win
  auto entry = std::make_shared<Entry>();
  entry->artifact = std::move(artifact);
  entry->pin = std::move(pin);
  entry->bytes = bytes;
  entry->lru_tick = ++tick_;
  entry->ready = true;
  entry->mmap = true;
  entry->meta = std::move(meta);
  entries_[key] = entry;
  stats_.resident_bytes += bytes;
  return true;
}

Status IndexCache::AdoptPermuted(std::shared_ptr<const Relation> base,
                                 const std::vector<int>& perm,
                                 std::shared_ptr<const Relation> canon,
                                 std::shared_ptr<const Trie> trie,
                                 const std::vector<Binding>& bindings) {
  if (base == nullptr || canon == nullptr) {
    return Status::InvalidArgument("adopt needs a base and a payload");
  }
  if (static_cast<int>(perm.size()) != base->arity() ||
      canon->arity() != base->arity()) {
    return Status::InvalidArgument("adopt: permutation arity mismatch");
  }
  for (const Binding& b : bindings) {
    if (b.schema.arity() != base->arity()) {
      return Status::InvalidArgument("adopt: binding arity mismatch");
    }
    if (b.with_trie && trie == nullptr) {
      return Status::InvalidArgument("adopt: trie-backed binding needs a trie");
    }
  }
  if (trie != nullptr &&
      (trie->arity() != base->arity() || trie->NumTuples() != canon->size())) {
    return Status::InvalidArgument("adopt: trie does not match payload");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const void* identity = base.get();
  {
    auto meta = std::make_shared<PermutedMeta>();
    meta->kind = PermutedMeta::kRows;
    meta->perm = perm;
    AdoptEntryLocked({identity, RowsSpec(perm)}, base, canon,
                     canon->SizeBytes(), std::move(meta));
  }
  if (trie != nullptr) {
    auto meta = std::make_shared<PermutedMeta>();
    meta->kind = PermutedMeta::kTrie;
    meta->perm = perm;
    AdoptEntryLocked({identity, TrieSpec(perm)}, base, trie,
                     trie->ResidentBytes(), std::move(meta));
  }
  for (const Binding& b : bindings) {
    auto meta = std::make_shared<PermutedMeta>();
    meta->perm = perm;
    meta->schema = b.schema;
    if (b.with_trie) {
      meta->kind = PermutedMeta::kBind;
      auto index = std::make_shared<PreparedIndex>();
      index->rel = std::make_shared<const Relation>(
          Relation::AliasSpan(b.schema, canon->raw(), canon));
      index->trie = trie;
      AdoptEntryLocked({identity, BindSpec(perm, b.schema)}, base, index,
                       /*bytes=*/0, std::move(meta));
    } else {
      meta->kind = PermutedMeta::kRel;
      auto rel = std::make_shared<const Relation>(
          Relation::AliasSpan(b.schema, canon->raw(), canon));
      AdoptEntryLocked({identity, RelSpec(perm, b.schema)}, base, rel,
                       /*bytes=*/0, std::move(meta));
    }
  }
  EnforceBudgetLocked();
  return Status::OK();
}

void IndexCache::LinkDelta(const std::shared_ptr<const Relation>& prev,
                           const std::shared_ptr<const Relation>& next,
                           std::shared_ptr<const DeltaBatch> delta) {
  if (prev == nullptr || next == nullptr || delta == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  PatchRecord rec;
  rec.child = next;
  // Inherit `prev`'s own unconsumed sources first — prev may itself be
  // an unbound successor of an older version, in which case the two
  // deltas compose into one net delta per payload.
  auto pit = patches_.find(prev.get());
  if (pit != patches_.end()) {
    if (auto live = pit->second.child.lock(); live == prev) {
      for (auto& [perm, src] : pit->second.by_perm) {
        auto net = std::make_shared<DeltaBatch>(
            ComposeDelta(*src.delta, *delta));
        // Payload and trie both describe the ORIGINAL version, so the
        // composed net delta applies to either.
        rec.by_perm[perm] =
            PatchSource{src.payload, std::move(net), src.trie};
      }
    }
    patches_.erase(pit);
  }
  // Fresh sources from every canonical payload (and its trie) of
  // `prev` currently resident; these supersede inherited ones (one
  // delta, not two).
  for (const auto& [key, entry] : entries_) {
    if (key.first != prev.get() || !entry->ready ||
        entry->meta == nullptr) {
      continue;
    }
    if (entry->meta->kind == PermutedMeta::kRows) {
      PatchSource& src = rec.by_perm[SpecJoin(entry->meta->perm)];
      src.payload = std::static_pointer_cast<const Relation>(entry->artifact);
      src.delta = delta;
      src.trie = nullptr;  // reset an inherited trie: set below if resident
    }
  }
  for (const auto& [key, entry] : entries_) {
    if (key.first != prev.get() || !entry->ready ||
        entry->meta == nullptr ||
        entry->meta->kind != PermutedMeta::kTrie) {
      continue;
    }
    const std::string perm = SpecJoin(entry->meta->perm);
    auto sit = rec.by_perm.find(perm);
    if (sit != rec.by_perm.end() && sit->second.delta == delta) {
      // Attach only to a fresh source (same delta): an inherited one
      // carries the older version's trie, not this entry.
      sit->second.trie = std::static_pointer_cast<const Trie>(entry->artifact);
    } else if (sit == rec.by_perm.end()) {
      // Trie resident without its rows payload (evicted): the trie
      // layer can still patch even though the rows layer rebuilds.
      rec.by_perm[perm] = PatchSource{
          nullptr, delta, std::static_pointer_cast<const Trie>(entry->artifact)};
    }
  }
  if (!rec.by_perm.empty()) patches_[next.get()] = std::move(rec);
}

bool IndexCache::PeekPatchSource(const std::shared_ptr<const Relation>& base,
                                 const std::vector<int>& perm,
                                 PatchSource* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = patches_.find(base.get());
  if (it == patches_.end()) return false;
  // ABA guard: honor the record only for the relation it was made for.
  if (it->second.child.lock() != base) return false;
  auto pit = it->second.by_perm.find(SpecJoin(perm));
  if (pit == it->second.by_perm.end()) return false;
  *out = pit->second;
  return true;
}

void IndexCache::ConsumePatchSource(const void* identity,
                                    const std::vector<int>& perm,
                                    uint64_t merged_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.delta_rows_merged += merged_rows;
  auto it = patches_.find(identity);
  if (it == patches_.end()) return;
  auto pit = it->second.by_perm.find(SpecJoin(perm));
  if (pit == it->second.by_perm.end()) return;
  pit->second.payload.reset();
  if (pit->second.trie == nullptr) it->second.by_perm.erase(pit);
  if (it->second.by_perm.empty()) patches_.erase(it);
}

void IndexCache::ConsumeTriePatchSource(const void* identity,
                                        const std::vector<int>& perm) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = patches_.find(identity);
  if (it == patches_.end()) return;
  auto pit = it->second.by_perm.find(SpecJoin(perm));
  if (pit == it->second.by_perm.end()) return;
  pit->second.trie.reset();
  if (pit->second.payload == nullptr) it->second.by_perm.erase(pit);
  if (it->second.by_perm.empty()) patches_.erase(it);
}

bool IndexCache::EntryIsPatched(const void* identity,
                                const std::string& spec) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{identity, spec});
  return it != entries_.end() && it->second->ready && it->second->patched;
}

bool IndexCache::SweepOnceLocked() {
  // How many pins inside the cache share each source's control block:
  // a source is unreachable when the cache accounts for every one of
  // its remaining references.
  std::map<const void*, long> cache_pins;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) ++cache_pins[entry->pin.get()];
  }
  bool dropped = false;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = *it->second;
    if (e.ready && e.pin.use_count() <= cache_pins[e.pin.get()]) {
      stats_.resident_bytes -= e.bytes;
      ++stats_.evictions;
      it = entries_.erase(it);
      dropped = true;
    } else {
      ++it;
    }
  }
  return dropped;
}

void IndexCache::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  // Fixpoint: dropping a bound-atom entry releases its artifact, which
  // may have been the last external reference pinning shard entries
  // derived from it — the next pass collects those.
  while (SweepOnceLocked()) {
  }
  // Patch records die with their successor relation (their payload
  // handles are what would otherwise keep dead payloads resident).
  for (auto it = patches_.begin(); it != patches_.end();) {
    if (it->second.child.expired()) {
      it = patches_.erase(it);
    } else {
      ++it;
    }
  }
}

void IndexCache::EnforceBudgetLocked() {
  if (budget_bytes_ == 0) return;
  while (stats_.resident_bytes > budget_bytes_) {
    // LRU among entries no consumer holds right now; evicting a held
    // artifact would not free memory anyway.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = *it->second;
      if (!e.ready || e.artifact.use_count() > 1) continue;
      if (victim == entries_.end() ||
          e.lru_tick < victim->second->lru_tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything is in use
    stats_.resident_bytes -= victim->second->bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) {
      stats_.resident_bytes -= entry->bytes;
      ++stats_.evictions;
    }
  }
  entries_.clear();
  patches_.clear();
}

void IndexCache::EnforceBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  EnforceBudgetLocked();
}

void IndexCache::set_budget_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
  EnforceBudgetLocked();
}

uint64_t IndexCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resident_bytes;
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  out.mmap_entries = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready && entry->mmap) ++out.mmap_entries;
  }
  return out;
}

}  // namespace adj::storage
