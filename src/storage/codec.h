#ifndef ADJ_STORAGE_CODEC_H_
#define ADJ_STORAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/trie.h"

namespace adj::storage {

/// Wire codecs for the two block payloads HCube ships (Sec. V): tuple
/// blocks (Push/Pull) and pre-built trie blocks (Merge). Sorted runs
/// compress well under delta + varint; the trie layout ("three
/// arrays") both compresses better and deserializes without a sort —
/// the effect behind Fig. 9's Pull-vs-Merge gap.

/// LEB128 unsigned varint.
void PutVarint(uint64_t v, std::vector<uint8_t>* out);
StatusOr<uint64_t> GetVarint(const std::vector<uint8_t>& buf, size_t* pos);

/// Encodes a sorted ascending value run as deltas (first value
/// absolute).
void EncodeSortedValues(std::span<const Value> values,
                        std::vector<uint8_t>* out);
Status DecodeSortedValues(const std::vector<uint8_t>& buf, size_t* pos,
                          std::vector<Value>* out);

/// Tuple block: rows (must be lexicographically sorted for effective
/// compression, not required for correctness).
/// Layout: arity, row-count, then rows with shared-prefix + delta
/// encoding against the previous row.
std::vector<uint8_t> EncodeRelationBlock(const Relation& rel);
StatusOr<Relation> DecodeRelationBlock(const std::vector<uint8_t>& buf,
                                       const Schema& schema);

/// Trie block: the CSR level arrays, each varint-delta encoded.
std::vector<uint8_t> EncodeTrieBlock(const Trie& trie);
/// Decodes by reconstructing the relation rows and rebuilding; the
/// payload is what matters for transfer accounting, and rebuild from
/// sorted data is linear.
StatusOr<Relation> DecodeTrieBlockToRelation(const std::vector<uint8_t>& buf,
                                             const Schema& schema);

}  // namespace adj::storage

#endif  // ADJ_STORAGE_CODEC_H_
