#ifndef ADJ_STORAGE_CATALOG_H_
#define ADJ_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/index_cache.h"
#include "storage/relation.h"
#include "storage/write_batch.h"

namespace adj::storage {

/// Named collection of base relations — the database D of the paper.
/// For the paper's subgraph workloads every query atom is bound to a
/// copy of the same edge relation; the catalog stores each distinct
/// physical relation once and atoms reference it by name.
///
/// Delta-aware entries: every name binds an *immutable base* relation
/// (possibly mmap-backed from a persist snapshot) plus an ordered
/// chain of append/tombstone DeltaBatches, folded down into the
/// *effective* relation readers see. Get/GetShared always return the
/// effective relation; each relation version is itself immutable, so
/// everything derived from it (indexes, prepared contexts) stays
/// consistent — a write produces a *new* effective relation and
/// rebinds the name. Once the chain's accumulated rows reach
/// delta_compact_threshold(), the chain is compacted: the current
/// effective relation becomes the new base and the deltas are dropped.
///
/// Ownership model: entries hold shared_ptr<const Relation>, so a name
/// can own its relation outright (Put/Create) or borrow one another
/// catalog — or another name in this catalog — already holds
/// (PutShared / Alias). Borrowed entries share physical storage with
/// their source: Get returns the same pointer for every alias, no
/// tuple data is copied, and the relation stays alive as long as any
/// catalog references it, even after the source catalog is destroyed.
/// Writes rebind only the written name: aliases of the old relation
/// version keep reading it, exactly as with Put.
///
/// Mutation surface: WriteBatch + Apply() is the write API — ordered
/// insert/delete/create/alias ops validated up front and applied
/// atomically (a rejected batch leaves the catalog untouched). The
/// historical Put / PutShared / Alias methods are deprecated thin
/// wrappers over one-op batches.
///
/// Staleness tracking is *per relation*: every write to a name bumps
/// VersionOf(name), so caches invalidate only entries whose bound
/// relations actually changed (serve::PreparedQueryCache validates a
/// prepared query's recorded name→version dependencies). The global
/// generation() counter — bumped once per successful Apply — survives
/// as a coarse any-write signal. Neither counter is atomic: like the
/// rest of the catalog, mutation must be quiesced with respect to
/// readers (docs/ARCHITECTURE.md, "Ownership rules";
/// serve::Server::Apply does this with a reader/writer lock).
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (relations can be large).
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Applies `batch` atomically: every op is validated against the
  /// catalog-plus-batch-prefix state first (missing names, tuple arity
  /// mismatches, null relations), and a failed validation returns the
  /// error with the catalog untouched. On success each written name
  /// gains one version; tuple ops coalesce into one DeltaBatch per
  /// name, linked into the index cache for merge-on-read patching,
  /// and generation() advances once.
  Status Apply(const WriteBatch& batch);

  /// DEPRECATED — wrapper for Apply of a one-op Create batch.
  /// Registers `rel` under `name`, replacing any previous binding.
  void Put(const std::string& name, Relation rel);

  /// DEPRECATED — wrapper for Apply of a one-op Create batch.
  /// Registers an already-shared relation under `name`, replacing any
  /// previous binding. No tuple data is copied. Null `rel` is
  /// rejected.
  Status PutShared(const std::string& name,
                   std::shared_ptr<const Relation> rel);

  /// DEPRECATED — wrapper for Apply of a one-op AliasRelation batch.
  /// Binds `alias` to the relation version currently bound to `name`
  /// in this catalog. NotFound if `name` has no entry.
  Status Alias(const std::string& alias, const std::string& name);

  bool Contains(const std::string& name) const;

  /// Borrowed pointer to the effective relation; valid until the entry
  /// is replaced and the last catalog sharing the relation is
  /// destroyed. Aliases of one physical relation return pointer-equal
  /// results.
  StatusOr<const Relation*> Get(const std::string& name) const;

  /// Shared handle to the effective relation — the way to alias a
  /// relation into another catalog (PutShared) without copying it.
  StatusOr<std::shared_ptr<const Relation>> GetShared(
      const std::string& name) const;

  std::vector<std::string> Names() const;

  /// Totals over *distinct physical* effective relations: a relation
  /// registered under several names (Alias/PutShared) is counted once.
  uint64_t TotalTuples() const;
  uint64_t TotalBytes() const;

  /// Per-relation write counter: 0 for a name not in the catalog,
  /// bumped by every write that rebinds `name` (create, alias rebind,
  /// tuple delta). Anything derived from the relation bound at version
  /// v — indexes, plans, prepared contexts — is exactly as fresh as
  /// (VersionOf(name) == v), independent of writes to other names.
  uint64_t VersionOf(const std::string& name) const;

  /// Monotone counter of successful Apply calls (each deprecated
  /// wrapper is a one-op Apply): equal generations guarantee every
  /// name still resolves to the same relation version it did before.
  /// Coarser than VersionOf — kept for whole-catalog consumers.
  uint64_t generation() const { return generation_; }

  /// Accumulated delta rows at which a written entry folds its chain
  /// into a new base (frees the old base and the batches; derived
  /// patch state survives, it references payloads, not the base).
  uint64_t delta_compact_threshold() const { return delta_compact_threshold_; }
  void set_delta_compact_threshold(uint64_t rows) {
    delta_compact_threshold_ = rows;
  }

  /// Everything one entry carries — the persist layer serializes this
  /// (base + chain + effective) so Save/Open round-trips a written-to
  /// catalog, and tests assert chain/compaction state through it.
  struct EntryState {
    std::shared_ptr<const Relation> base;
    std::vector<std::shared_ptr<const DeltaBatch>> deltas;
    std::shared_ptr<const Relation> effective;
    uint64_t version = 0;
  };
  StatusOr<EntryState> Inspect(const std::string& name) const;

  /// Installs a fully-formed entry (snapshot restore): `state.base` /
  /// `state.effective` must be non-null; the name's version becomes
  /// max(current, state.version) + 1 so restored-over entries still
  /// read as written. Bumps generation() like any write.
  Status Restore(const std::string& name, EntryState state);

  /// The shared index layer riding alongside this catalog: every bind
  /// site (wcoj / exec / dist / optimizer) requests permuted-sorted-
  /// trie-indexed artifacts through it instead of constructing inline.
  /// Internally synchronized, hence usable through const catalogs; a
  /// write sweeps entries whose source relation is no longer
  /// reachable, after linking deltas for merge-on-read patching.
  IndexCache& index_cache() const { return *index_cache_; }

  /// Makes this catalog use `other`'s index cache, so indexes built
  /// against relations aliased from `other` (execution catalogs,
  /// selection-reduced catalogs) are shared rather than rebuilt.
  void ShareIndexCacheWith(const Catalog& other) {
    index_cache_ = other.index_cache_;
  }

 private:
  struct Entry {
    std::shared_ptr<const Relation> base;
    std::vector<std::shared_ptr<const DeltaBatch>> deltas;
    std::shared_ptr<const Relation> effective;
    uint64_t version = 0;
    // Whether `effective` is known lexicographically sorted + unique
    // (true from the first tuple write on: merged output is canonical).
    bool canonical = false;
  };

  /// Applies one coalesced DeltaBatch to `name` (which must exist):
  /// computes the next effective relation by galloping merge, links
  /// the delta into the index cache, extends the chain, bumps the
  /// entry version, and compacts past the threshold.
  void ApplyDelta(const std::string& name, std::shared_ptr<DeltaBatch> delta);

  std::map<std::string, Entry> relations_;
  uint64_t generation_ = 0;
  uint64_t delta_compact_threshold_ = 4096;
  std::shared_ptr<IndexCache> index_cache_ = std::make_shared<IndexCache>();
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_CATALOG_H_
