#ifndef ADJ_STORAGE_CATALOG_H_
#define ADJ_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/index_cache.h"
#include "storage/relation.h"

namespace adj::storage {

/// Named collection of base relations — the database D of the paper.
/// For the paper's subgraph workloads every query atom is bound to a
/// copy of the same edge relation; the catalog stores each distinct
/// physical relation once and atoms reference it by name.
///
/// Ownership model: every entry is a shared_ptr<const Relation>, so a
/// name can either own its relation outright (Put) or borrow one that
/// another catalog — or another name in this catalog — already holds
/// (PutShared / Alias). Borrowed entries share physical storage with
/// their source: Get returns the same pointer for every alias, no
/// tuple data is copied, and the relation stays alive as long as any
/// catalog references it, even after the source catalog is destroyed.
/// This is what lets an execution catalog reference the engine's base
/// relations per prepared run at zero copy cost. Relations reachable
/// through a catalog are immutable; replacing a name via Put rebinds
/// only that name and never affects aliases of the old relation.
///
/// Staleness tracking: every mutation of the name→relation mapping
/// (Put / PutShared / Alias) bumps generation(). Caches that hold
/// plans or ExecutionContexts built against this catalog record the
/// generation they were built at and drop entries whose generation no
/// longer matches — see serve::PreparedQueryCache. The counter is not
/// atomic: like the rest of the catalog, mutation must be quiesced
/// with respect to readers (docs/ARCHITECTURE.md, "Ownership rules").
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (relations can be large).
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `rel` under `name`, replacing any previous binding.
  /// The catalog (co-)owns the relation.
  void Put(const std::string& name, Relation rel);

  /// Registers an already-shared relation under `name`, replacing any
  /// previous binding. No tuple data is copied; the relation is kept
  /// alive for as long as this entry exists. Null `rel` is rejected.
  Status PutShared(const std::string& name,
                   std::shared_ptr<const Relation> rel);

  /// Binds `alias` to the physical relation already registered under
  /// `name` in this catalog (replacing any previous `alias` binding).
  /// NotFound if `name` has no entry.
  Status Alias(const std::string& alias, const std::string& name);

  bool Contains(const std::string& name) const;

  /// Borrowed pointer; valid until the entry is replaced or the last
  /// catalog sharing the relation is destroyed. Aliases of one
  /// physical relation return pointer-equal results.
  StatusOr<const Relation*> Get(const std::string& name) const;

  /// Shared handle to the entry — the way to alias a relation into
  /// another catalog (PutShared) without copying it.
  StatusOr<std::shared_ptr<const Relation>> GetShared(
      const std::string& name) const;

  std::vector<std::string> Names() const;

  /// Totals over *distinct physical* relations: a relation registered
  /// under several names (Alias/PutShared) is counted once.
  uint64_t TotalTuples() const;
  uint64_t TotalBytes() const;

  /// Monotone counter of name→relation mutations: starts at 0 and is
  /// bumped by every successful Put / PutShared / Alias. Equal
  /// generations guarantee every name still resolves to the same
  /// physical relation it did before, so anything derived from the
  /// catalog at generation g (plans, ExecutionContexts) is still
  /// valid while generation() == g.
  uint64_t generation() const { return generation_; }

  /// The shared index layer riding alongside this catalog: every bind
  /// site (wcoj / exec / dist / optimizer) requests permuted-sorted-
  /// trie-indexed artifacts through it instead of constructing inline.
  /// Internally synchronized, hence usable through const catalogs; a
  /// generation bump sweeps entries whose source relation is no longer
  /// reachable.
  IndexCache& index_cache() const { return *index_cache_; }

  /// Makes this catalog use `other`'s index cache, so indexes built
  /// against relations aliased from `other` (execution catalogs,
  /// selection-reduced catalogs) are shared rather than rebuilt.
  void ShareIndexCacheWith(const Catalog& other) {
    index_cache_ = other.index_cache_;
  }

 private:
  std::map<std::string, std::shared_ptr<const Relation>> relations_;
  uint64_t generation_ = 0;
  std::shared_ptr<IndexCache> index_cache_ = std::make_shared<IndexCache>();
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_CATALOG_H_
