#ifndef ADJ_STORAGE_CATALOG_H_
#define ADJ_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace adj::storage {

/// Named collection of base relations — the database D of the paper.
/// For the paper's subgraph workloads every query atom is bound to a
/// copy of the same edge relation; the catalog stores each distinct
/// physical relation once and atoms reference it by name.
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (relations can be large).
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `rel` under `name`, replacing any previous binding.
  void Put(const std::string& name, Relation rel);

  bool Contains(const std::string& name) const;

  /// Borrowed pointer; valid until the entry is replaced or the
  /// catalog is destroyed.
  StatusOr<const Relation*> Get(const std::string& name) const;

  std::vector<std::string> Names() const;

  uint64_t TotalTuples() const;
  uint64_t TotalBytes() const;

 private:
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_CATALOG_H_
