#ifndef ADJ_STORAGE_EDGE_LIST_IO_H_
#define ADJ_STORAGE_EDGE_LIST_IO_H_

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace adj::storage {

/// Text edge-list I/O in the SNAP format the paper's datasets ship in:
/// one "src dst" pair per line, '#' comment lines ignored, whitespace
/// (spaces or tabs) separated. Node ids must fit in 32 bits.
///
/// This is how a user plugs the real WB/AS/WT/LJ/EN/OK graphs into the
/// library instead of the synthetic stand-ins:
///   auto g = storage::LoadEdgeList("com-lj.ungraph.txt");
///   db.Put("G", std::move(g.value()));
StatusOr<Relation> LoadEdgeList(const std::string& path);

/// Parses edge-list text from a string (used by tests and for
/// in-memory snippets).
StatusOr<Relation> ParseEdgeList(const std::string& text);

/// Writes a binary relation back out in the same format.
Status SaveEdgeList(const Relation& rel, const std::string& path);

}  // namespace adj::storage

#endif  // ADJ_STORAGE_EDGE_LIST_IO_H_
