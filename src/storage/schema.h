#ifndef ADJ_STORAGE_SCHEMA_H_
#define ADJ_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace adj::storage {

/// Ordered list of attribute ids — the schema of a relation occurrence.
/// Attribute ids are indexes into a query-level attribute universe
/// (see query::Query), so schemas from different relations of the same
/// query are directly comparable.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {}

  int arity() const { return static_cast<int>(attrs_.size()); }
  AttrId attr(int i) const { return attrs_[i]; }
  const std::vector<AttrId>& attrs() const { return attrs_; }

  /// Position of `attr` within this schema, or -1 if absent.
  int PositionOf(AttrId attr) const;

  bool Contains(AttrId attr) const { return PositionOf(attr) >= 0; }

  /// Bitmask of the attributes in this schema.
  AttrMask Mask() const;

  /// Schema whose attributes are sorted ascending by a total order
  /// `rank`, where rank[attr] gives the position of `attr` in the
  /// global attribute order. Returns the column permutation as well:
  /// out_perm[i] = index in *this* schema of the i-th sorted attribute.
  Schema SortedBy(const std::vector<int>& rank, std::vector<int>* out_perm) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  std::vector<AttrId> attrs_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_SCHEMA_H_
