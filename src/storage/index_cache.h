#ifndef ADJ_STORAGE_INDEX_CACHE_H_
#define ADJ_STORAGE_INDEX_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/trie.h"
#include "storage/write_batch.h"

namespace adj::storage {

/// A relation re-columned for one column order and indexed: the
/// permuted, sorted, duplicate-free relation plus the trie built over
/// it. This is the immutable artifact every join consumer *borrows*
/// from the IndexCache instead of rebuilding per run — the way
/// RDF-TDAA persists its trie-shaped indexes across queries rather
/// than reconstructing them per lookup.
struct PreparedIndex {
  std::shared_ptr<const Relation> rel;  // permuted + SortAndDedup'ed
  std::shared_ptr<const Trie> trie;     // built over `rel`

  /// Resident payload: tuple data plus the trie's arrays (compressed
  /// levels at their encoded size).
  uint64_t Bytes() const {
    return (rel ? rel->SizeBytes() : 0) + (trie ? trie->ResidentBytes() : 0);
  }
};

/// Per-call build accounting, threaded from a bind site up into the
/// RunReport so "the second run built zero tries" is observable.
struct IndexBuildStats {
  uint64_t builds = 0;     // artifacts constructed by this consumer
  uint64_t hits = 0;       // artifacts served from the cache
  uint64_t mmap_hits = 0;  // subset of hits served by snapshot-mapped
                           // artifacts (persist warm restore)
  uint64_t patched = 0;    // artifacts obtained by delta-patching a
                           // cached payload of the pre-write relation
                           // version (merge-on-read), not rebuilding
  uint64_t delta_rows_merged = 0;  // delta rows galloping-merged into
                                   // patched payloads by this consumer
};

/// Process-wide cache of index artifacts keyed by (relation identity,
/// build spec) — the shared index layer. One instance lives alongside
/// each root storage::Catalog (execution and reduced catalogs share
/// their source's cache), so every bind site that used to permute,
/// sort, and Trie::Build inline now asks the cache and shares the
/// result by pointer; tries are never deep-copied.
///
/// Key: `identity` is the address of the physical source object (a
/// Relation for bound-atom indexes, a bound relation for HCube shard
/// indexes); `spec` encodes everything else the build depends on
/// (column order, share vector, variant, server count). Relations
/// reachable through a catalog are immutable, so an entry never goes
/// *stale* — it only becomes garbage once its source is unreachable.
///
/// Lifetime / invalidation: every entry carries a `pin`, a shared
/// handle to its source. Sweep() — called by Catalog on every
/// generation() bump — drops entries whose pin the cache alone still
/// holds: replacing a relation evicts its indexes (and, transitively,
/// shard indexes derived from them) as soon as the last consumer lets
/// go, while indexes of untouched relations survive pointer-identical.
/// The pin also rules out identity ABA: a key address cannot be reused
/// while its entry is resident.
///
/// Concurrency: all operations are mutex-serialized except the build
/// itself, which runs outside the lock under single-flight — N threads
/// requesting one missing key perform exactly one build; the rest
/// block and share the artifact. A failed build is not cached (the
/// next request retries).
///
/// Memory: resident_bytes() totals every entry's artifact; an optional
/// byte budget evicts least-recently-used entries that no consumer
/// currently holds. (The serving layer additionally accounts the
/// indexes *pinned* by cached prepared queries toward its own budget —
/// see serve::PreparedQueryCache.)
///
/// Persistence: the permuted layers can round-trip through a snapshot.
/// ExportPermutedIndexes() hands the writer every perm-keyed payload
/// with its labelings; AdoptPermuted() re-seats payloads whose arrays
/// view an mmap'ed snapshot, flagged so hits report as mmap-loaded.
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t mmap_hits = 0;  // hits served by snapshot-mapped entries
    uint64_t builds = 0;
    uint64_t patched_builds = 0;  // entries produced by delta-patching
                                  // instead of a from-scratch build
    uint64_t delta_rows_merged = 0;  // total delta rows merged in
    uint64_t build_failures = 0;
    uint64_t evictions = 0;  // Sweep GC + budget evictions
    uint64_t resident_bytes = 0;
    uint64_t entries = 0;
    uint64_t mmap_entries = 0;  // entries adopted from a snapshot
  };

  /// `budget_bytes` caps resident artifact bytes (0 = unbounded).
  explicit IndexCache(uint64_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  /// Whether freshly built or delta-patched tries are re-encoded
  /// through Trie::Compress (per-level density heuristic — tiny or
  /// incompressible levels stay raw, and compressed levels of a
  /// patched predecessor stay compressed). On by default so large
  /// indexes are charged at their encoded size; benches flip it off
  /// to measure the raw baseline.
  void set_compress_tries(bool on) {
    compress_tries_.store(on, std::memory_order_relaxed);
  }
  bool compress_tries() const {
    return compress_tries_.load(std::memory_order_relaxed);
  }

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// What a build hands back: the type-erased artifact and its
  /// resident size (charged against the budget).
  struct BuildResult {
    std::shared_ptr<const void> artifact;
    uint64_t bytes = 0;
    // Set when the artifact was produced by (or derived from) a
    // delta-patch of a cached predecessor payload: the entry ticks
    // `patched` counters rather than `builds`, and hands the flag down
    // to layers built over it.
    bool patched = false;
    uint64_t delta_rows_merged = 0;
  };
  using BuildFn = std::function<StatusOr<BuildResult>()>;

  /// The generic get-or-build: returns the artifact under
  /// (identity, spec), invoking `build` (outside the cache lock,
  /// single-flight) when absent. `pin` must keep `identity` alive and
  /// is what Sweep() uses to decide reachability. `stats`, when given,
  /// receives one hit or build tick.
  StatusOr<std::shared_ptr<const void>> GetOrBuild(
      const void* identity, const std::string& spec,
      std::shared_ptr<const void> pin, const BuildFn& build,
      IndexBuildStats* stats = nullptr);

  /// The tentpole key — (relation identity, column order): `base`
  /// with column i of the result taken from column perm[i], under
  /// `schema`, sorted, deduplicated, and trie-indexed. Pointer-equal
  /// results for repeated requests.
  ///
  /// Layered internally: the physical payload (permuted sorted rows,
  /// and the trie over them) is keyed by the permutation alone and
  /// shared across every attribute labeling; the labeled artifact is a
  /// near-zero-cost alias over it. Ten labelings of one permutation
  /// cost one rows buffer and one trie, not ten.
  StatusOr<std::shared_ptr<const PreparedIndex>> GetPermuted(
      std::shared_ptr<const Relation> base, const Schema& schema,
      const std::vector<int>& perm, IndexBuildStats* stats = nullptr);

  /// Trie-less variant for hash-join-only binds: the permuted, sorted,
  /// deduplicated relation under `schema`, sharing its row payload with
  /// other labelings of the same permutation *and* with GetPermuted's
  /// trie-backed artifacts — but never paying for a trie build.
  StatusOr<std::shared_ptr<const Relation>> GetPermutedRelation(
      std::shared_ptr<const Relation> base, const Schema& schema,
      const std::vector<int>& perm, IndexBuildStats* stats = nullptr);

  /// One attribute labeling recorded for a persisted payload: the
  /// schema it was bound under, and whether the binding was
  /// trie-backed (GetPermuted) or trie-less (GetPermutedRelation).
  struct Binding {
    Schema schema;
    bool with_trie = true;
  };

  /// One perm-keyed physical payload, with every labeling bound over
  /// it — the unit the snapshot writer serializes.
  struct ExportedPayload {
    const void* identity = nullptr;       // base relation address
    std::vector<int> perm;
    std::shared_ptr<const Relation> rows;  // canonical permuted relation
    std::shared_ptr<const Trie> trie;      // null if never trie-bound
    std::vector<Binding> bindings;
    uint64_t lru_tick = 0;  // hottest layer tick, for restore ordering
  };

  /// Snapshot of every resident permuted-index payload (rows / trie /
  /// bind layers folded back together). Artifacts are shared, not
  /// copied; identities are only meaningful to a caller that can map
  /// them back to relations it holds (the catalog snapshot writer).
  std::vector<ExportedPayload> ExportPermutedIndexes() const;

  /// Re-seats one permuted payload loaded from a snapshot: `canon`
  /// (sorted rows viewing mapped memory) and `trie` (FromMapped; may
  /// be null if no binding needs it) are installed under the same keys
  /// GetPermuted/GetPermutedRelation would build, flagged mmap so hits
  /// report as mmap-loaded, plus one aliased entry per binding.
  /// Existing entries win (adoption never clobbers); the byte budget
  /// applies as usual. `base` must be the relation the payload was
  /// exported from — in the restored catalog, not the saved one.
  Status AdoptPermuted(std::shared_ptr<const Relation> base,
                       const std::vector<int>& perm,
                       std::shared_ptr<const Relation> canon,
                       std::shared_ptr<const Trie> trie,
                       const std::vector<Binding>& bindings);

  /// Registers a delta edge from relation version `prev` to its
  /// successor `next` (the catalog calls this on every tuple write,
  /// before the sweep). For every canonical permuted payload of `prev`
  /// currently resident — plus any payloads `prev` itself inherited
  /// and never consumed, whose deltas compose — the cache records a
  /// *patch source*: {payload handle, net delta}. The next
  /// GetPermuted* miss under `next` then builds its canonical rows by
  /// permuting + sorting the (small) delta and galloping-merging it
  /// into the recorded payload — O(delta log n) locate work and run
  /// copies — instead of re-permuting and re-sorting all of `next`.
  /// Patch sources hold the payload artifact itself, so they survive
  /// sweeps/evictions of `prev`'s entries and compaction of the chain;
  /// they die when consumed, superseded by a newer write, or when
  /// `next` itself becomes unreachable.
  void LinkDelta(const std::shared_ptr<const Relation>& prev,
                 const std::shared_ptr<const Relation>& next,
                 std::shared_ptr<const DeltaBatch> delta);

  /// Garbage collection, run on every catalog generation bump: drops
  /// entries (iterating to a fixpoint, so derived entries chain) whose
  /// pin is held by nothing outside this cache.
  void Sweep();

  /// Re-applies the byte budget (LRU eviction of entries no consumer
  /// holds); no-op when unbounded. The snapshot loader calls this
  /// after adoption, once its temporary handles are gone — entries
  /// look in-use while the adopter still holds them.
  void EnforceBudget();

  void Clear();

  uint64_t budget_bytes() const { return budget_bytes_; }
  void set_budget_bytes(uint64_t bytes);

  uint64_t resident_bytes() const;
  size_t size() const;
  Stats stats() const;

 private:
  /// Structured key for permuted-layer entries, kept so the snapshot
  /// writer can enumerate payloads without parsing spec strings.
  struct PermutedMeta {
    enum Kind { kRows, kTrie, kBind, kRel };
    Kind kind = kRows;
    std::vector<int> perm;
    Schema schema;  // labeled layers only (kBind/kRel)
  };

  struct Entry {
    std::shared_ptr<const void> artifact;  // null while building
    std::shared_ptr<const void> pin;
    uint64_t bytes = 0;
    uint64_t lru_tick = 0;
    bool ready = false;
    bool mmap = false;  // adopted from a snapshot (arrays view the map)
    bool patched = false;  // produced by / derived from a delta patch
    std::shared_ptr<const PermutedMeta> meta;  // permuted layers only
  };
  using Key = std::pair<const void*, std::string>;

  /// One patchable predecessor for (relation, perm): the canonical
  /// permuted rows of an older version of the relation — and the trie
  /// over them, when it was resident — plus the net delta separating
  /// the two versions. Rows and trie are consumed independently (each
  /// layer patches once); a cleared member means that layer already
  /// patched or was never resident.
  struct PatchSource {
    std::shared_ptr<const Relation> payload;
    std::shared_ptr<const DeltaBatch> delta;
    std::shared_ptr<const Trie> trie;
  };
  /// Patch sources for one successor relation, keyed by SpecJoin(perm).
  /// `child` guards against address reuse: a record is only honored
  /// while child.lock() still yields the relation it was made for.
  struct PatchRecord {
    std::weak_ptr<const Relation> child;
    std::map<std::string, PatchSource> by_perm;
  };

  /// Physical layers under GetPermuted/GetPermutedRelation: the
  /// canonical permuted relation (sorted row payload) and the trie
  /// over it, keyed by the permutation alone (no attribute labeling).
  /// These tick cache-wide stats but not the consumer's
  /// IndexBuildStats — the labeled top-level artifact accounts for the
  /// consumer-visible hit/build.
  /// `patched_out`, when given, reports whether the returned payload
  /// is delta-patched (set on hits too — labeled layers inherit the
  /// flag); `merged_out` reports delta rows merged *by this call*
  /// (zero on a hit), so the triggering labeled bind charges the merge
  /// to its consumer exactly once.
  StatusOr<std::shared_ptr<const Relation>> GetPermutedRows(
      const std::shared_ptr<const Relation>& base, const Schema& schema,
      const std::vector<int>& perm, bool* patched_out = nullptr,
      uint64_t* merged_out = nullptr);
  StatusOr<std::shared_ptr<const Trie>> GetPermutedTrie(
      const std::shared_ptr<const Relation>& base, const Schema& schema,
      const std::vector<int>& perm);

  /// Whether the resident entry under (identity, spec) was produced by
  /// (or derived from) a delta patch — how the labeled layers inherit
  /// patched-ness from the rows payload they alias.
  bool EntryIsPatched(const void* identity, const std::string& spec) const;

  /// Takes (without consuming) the patch source for (base, perm), if a
  /// live record holds one.
  bool PeekPatchSource(const std::shared_ptr<const Relation>& base,
                       const std::vector<int>& perm, PatchSource* out) const;
  /// Clears the source's rows payload (the rows layer has merged),
  /// crediting `merged_rows` to the cache-wide merge counter; the
  /// source survives while its trie is still unconsumed.
  void ConsumePatchSource(const void* identity, const std::vector<int>& perm,
                          uint64_t merged_rows);
  /// Clears the source's trie (the trie layer has patched), dropping
  /// the per-perm source — and the record once empty — when the rows
  /// side is already consumed.
  void ConsumeTriePatchSource(const void* identity,
                              const std::vector<int>& perm);

  /// GetOrBuild plus permuted-layer bookkeeping (meta tag, mmap flag
  /// forwarded from adopted builds).
  StatusOr<std::shared_ptr<const void>> GetOrBuildTagged(
      const void* identity, const std::string& spec,
      std::shared_ptr<const void> pin, const BuildFn& build,
      IndexBuildStats* stats, std::shared_ptr<const PermutedMeta> meta);

  /// Installs a ready entry directly (snapshot adoption). No-op
  /// returning false if the key is already present. Caller holds mu_.
  bool AdoptEntryLocked(const Key& key, std::shared_ptr<const void> pin,
                        std::shared_ptr<const void> artifact, uint64_t bytes,
                        std::shared_ptr<const PermutedMeta> meta);

  /// Evicts LRU entries nobody currently holds until the budget is
  /// met. Caller holds mu_.
  void EnforceBudgetLocked();
  /// One GC pass; returns whether anything was dropped. Caller holds
  /// mu_.
  bool SweepOnceLocked();

  uint64_t budget_bytes_;
  std::atomic<bool> compress_tries_{true};
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  // Patch sources keyed by successor-relation address (ABA-guarded by
  // PatchRecord::child). Payload bytes referenced only from here are
  // not charged to the budget; records are bounded — consumed on the
  // next bind, superseded by the next write, or dropped by Sweep once
  // the successor dies.
  std::map<const void*, PatchRecord> patches_;
  uint64_t tick_ = 0;
  Stats stats_;
};

/// Renders a column permutation / share-style integer vector for use
/// in cache spec strings ("0,2,1").
std::string SpecJoin(const std::vector<int>& xs);

}  // namespace adj::storage

#endif  // ADJ_STORAGE_INDEX_CACHE_H_
