#include "storage/catalog.h"

#include <set>
#include <utility>

namespace adj::storage {

void Catalog::Put(const std::string& name, Relation rel) {
  relations_[name] = std::make_shared<const Relation>(std::move(rel));
  ++generation_;
  index_cache_->Sweep();
}

Status Catalog::PutShared(const std::string& name,
                          std::shared_ptr<const Relation> rel) {
  if (rel == nullptr) {
    return Status::InvalidArgument("null relation for catalog entry: " + name);
  }
  relations_[name] = std::move(rel);
  ++generation_;
  index_cache_->Sweep();
  return Status::OK();
}

Status Catalog::Alias(const std::string& alias, const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  // Copy the handle before the map write so Alias(n, n) stays a no-op.
  std::shared_ptr<const Relation> rel = it->second;
  relations_[alias] = std::move(rel);
  ++generation_;
  index_cache_->Sweep();
  return Status::OK();
}

bool Catalog::Contains(const std::string& name) const {
  return relations_.count(name) > 0;
}

StatusOr<const Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  return it->second.get();
}

StatusOr<std::shared_ptr<const Relation>> Catalog::GetShared(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

uint64_t Catalog::TotalTuples() const {
  uint64_t n = 0;
  std::set<const Relation*> seen;
  for (const auto& [name, rel] : relations_) {
    if (seen.insert(rel.get()).second) n += rel->size();
  }
  return n;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t n = 0;
  std::set<const Relation*> seen;
  for (const auto& [name, rel] : relations_) {
    if (seen.insert(rel.get()).second) n += rel->SizeBytes();
  }
  return n;
}

}  // namespace adj::storage
