#include "storage/catalog.h"

namespace adj::storage {

void Catalog::Put(const std::string& name, Relation rel) {
  relations_[name] = std::make_unique<Relation>(std::move(rel));
}

bool Catalog::Contains(const std::string& name) const {
  return relations_.count(name) > 0;
}

StatusOr<const Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  return static_cast<const Relation*>(it->second.get());
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

uint64_t Catalog::TotalTuples() const {
  uint64_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->size();
  return n;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->SizeBytes();
  return n;
}

}  // namespace adj::storage
