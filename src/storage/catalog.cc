#include "storage/catalog.h"

#include <set>
#include <utility>

namespace adj::storage {

Status Catalog::Apply(const WriteBatch& batch) {
  // Phase 1 — validate every op against the catalog-plus-batch-prefix
  // name→arity view; nothing is mutated until the whole batch checks
  // out, so a rejected batch is a no-op.
  {
    std::map<std::string, int> created;  // names (re)bound by this batch
    auto arity_of = [&](const std::string& name) -> int {
      auto it = created.find(name);
      if (it != created.end()) return it->second;
      auto rit = relations_.find(name);
      return rit == relations_.end() ? -1 : rit->second.effective->arity();
    };
    for (const WriteBatch::Op& op : batch.ops_) {
      switch (op.kind) {
        case WriteBatch::Op::kCreate: {
          if (op.rel == nullptr) {
            return Status::InvalidArgument("null relation for catalog entry: " +
                                           op.name);
          }
          created[op.name] = op.rel->arity();
          break;
        }
        case WriteBatch::Op::kAlias: {
          const int a = arity_of(op.target);
          if (a < 0) {
            return Status::NotFound("relation not in catalog: " + op.target);
          }
          created[op.name] = a;
          break;
        }
        case WriteBatch::Op::kInsert:
        case WriteBatch::Op::kDelete: {
          const int a = arity_of(op.name);
          if (a < 0) {
            return Status::NotFound("relation not in catalog: " + op.name);
          }
          if (static_cast<int>(op.tuple.size()) != a) {
            return Status::InvalidArgument(
                "tuple arity mismatch for relation: " + op.name);
          }
          break;
        }
      }
    }
  }

  // Phase 2 — apply in queue order. Tuple ops coalesce into one
  // pending (inserts, deletes) pair per name — last op per tuple wins,
  // keeping the two sets disjoint — flushed as a single DeltaBatch
  // when a create/alias rebinds the name mid-batch, and at the end.
  using RowSet = std::set<std::vector<Value>>;
  std::map<std::string, std::pair<RowSet, RowSet>> pending;
  auto flush = [&](const std::string& name) {
    auto it = pending.find(name);
    if (it == pending.end()) return;
    const Schema& schema = relations_.at(name).effective->schema();
    auto delta = std::make_shared<DeltaBatch>();
    delta->inserts = Relation(schema);
    delta->deletes = Relation(schema);
    // std::set of rows iterates in lexicographic order — already the
    // sorted-unique form DeltaBatch requires.
    for (const std::vector<Value>& t : it->second.first) {
      delta->inserts.Append(std::span<const Value>(t));
    }
    for (const std::vector<Value>& t : it->second.second) {
      delta->deletes.Append(std::span<const Value>(t));
    }
    pending.erase(it);
    ApplyDelta(name, std::move(delta));
  };
  for (const WriteBatch::Op& op : batch.ops_) {
    switch (op.kind) {
      case WriteBatch::Op::kInsert: {
        auto& [ins, del] = pending[op.name];
        del.erase(op.tuple);
        ins.insert(op.tuple);
        break;
      }
      case WriteBatch::Op::kDelete: {
        auto& [ins, del] = pending[op.name];
        ins.erase(op.tuple);
        del.insert(op.tuple);
        break;
      }
      case WriteBatch::Op::kCreate: {
        flush(op.name);
        Entry& e = relations_[op.name];
        e.base = op.rel;
        e.deltas.clear();
        e.effective = op.rel;
        e.canonical = false;
        ++e.version;
        break;
      }
      case WriteBatch::Op::kAlias: {
        flush(op.target);
        flush(op.name);
        // Copy the source entry before the map write so aliasing a
        // name to itself stays a no-op rebind.
        Entry src = relations_.at(op.target);
        Entry& e = relations_[op.name];
        const uint64_t version = e.version;
        e = std::move(src);
        e.version = version + 1;
        break;
      }
    }
  }
  for (auto it = pending.begin(); it != pending.end();) {
    const std::string name = it->first;
    ++it;  // flush erases the pending slot
    flush(name);
  }
  ++generation_;
  index_cache_->Sweep();
  return Status::OK();
}

void Catalog::ApplyDelta(const std::string& name,
                         std::shared_ptr<DeltaBatch> delta) {
  Entry& e = relations_.at(name);
  std::shared_ptr<const Relation> prev = e.effective;

  // The merge source must be canonical (sorted, unique). From the
  // first tuple write on it always is; a base loaded unsorted pays one
  // sort here, never again.
  std::shared_ptr<const Relation> canon = prev;
  if (!e.canonical && !prev->IsSortedUnique()) {
    Relation sorted = *prev;
    sorted.SortAndDedup();
    canon = std::make_shared<const Relation>(std::move(sorted));
  }

  // Prune no-op rows — inserts already present, tombstones of absent
  // tuples — so a version bump means the relation's content actually
  // changed. O(delta · log base) galloping probes.
  {
    Relation kept(delta->inserts.schema());
    size_t hint = 0;
    for (uint64_t i = 0; i < delta->inserts.size(); ++i) {
      std::span<const Value> t = delta->inserts.Row(i);
      hint = RowLowerBound(canon->raw(), canon->arity(), t.data(), hint);
      if (hint >= canon->size() ||
          CompareRows(canon->Row(hint).data(), t.data(), canon->arity()) != 0) {
        kept.Append(t);
      }
    }
    delta->inserts = std::move(kept);
    Relation keep_del(delta->deletes.schema());
    hint = 0;
    for (uint64_t i = 0; i < delta->deletes.size(); ++i) {
      std::span<const Value> t = delta->deletes.Row(i);
      hint = RowLowerBound(canon->raw(), canon->arity(), t.data(), hint);
      if (hint < canon->size() &&
          CompareRows(canon->Row(hint).data(), t.data(), canon->arity()) == 0) {
        keep_del.Append(t);
      }
    }
    delta->deletes = std::move(keep_del);
  }
  if (delta->rows() == 0) return;  // content no-op: keep the binding

  Relation merged(canon->schema());
  MergeDeltaRows(canon->raw(), canon->arity(), delta->inserts.raw(),
                 delta->deletes.raw(), &merged.mutable_raw());
  auto next = std::make_shared<const Relation>(std::move(merged));

  // Let cached indexes of `prev` follow the rebind as patchable
  // sources before anything can sweep them.
  index_cache_->LinkDelta(prev, next, delta);

  e.deltas.push_back(std::move(delta));
  e.effective = std::move(next);
  e.canonical = true;
  ++e.version;

  uint64_t chain_rows = 0;
  for (const auto& d : e.deltas) chain_rows += d->rows();
  if (chain_rows >= delta_compact_threshold_) {
    // Fold: the current effective relation becomes the new base. The
    // old base and the chain die here (unless shared elsewhere);
    // index-cache patch records survive — they hold payloads, not the
    // base.
    e.base = e.effective;
    e.deltas.clear();
  }
}

void Catalog::Put(const std::string& name, Relation rel) {
  WriteBatch batch;
  batch.Create(name, std::move(rel));
  (void)Apply(batch);  // a one-op create cannot fail validation
}

Status Catalog::PutShared(const std::string& name,
                          std::shared_ptr<const Relation> rel) {
  WriteBatch batch;
  batch.Create(name, std::move(rel));
  return Apply(batch);
}

Status Catalog::Alias(const std::string& alias, const std::string& name) {
  WriteBatch batch;
  batch.AliasRelation(alias, name);
  return Apply(batch);
}

bool Catalog::Contains(const std::string& name) const {
  return relations_.count(name) > 0;
}

StatusOr<const Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  return it->second.effective.get();
}

StatusOr<std::shared_ptr<const Relation>> Catalog::GetShared(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  return it->second.effective;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, entry] : relations_) names.push_back(name);
  return names;
}

uint64_t Catalog::TotalTuples() const {
  uint64_t n = 0;
  std::set<const Relation*> seen;
  for (const auto& [name, entry] : relations_) {
    if (seen.insert(entry.effective.get()).second) n += entry.effective->size();
  }
  return n;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t n = 0;
  std::set<const Relation*> seen;
  for (const auto& [name, entry] : relations_) {
    if (seen.insert(entry.effective.get()).second) {
      n += entry.effective->SizeBytes();
    }
  }
  return n;
}

uint64_t Catalog::VersionOf(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? 0 : it->second.version;
}

StatusOr<Catalog::EntryState> Catalog::Inspect(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not in catalog: " + name);
  }
  EntryState state;
  state.base = it->second.base;
  state.deltas = it->second.deltas;
  state.effective = it->second.effective;
  state.version = it->second.version;
  return state;
}

Status Catalog::Restore(const std::string& name, EntryState state) {
  if (state.base == nullptr || state.effective == nullptr) {
    return Status::InvalidArgument("restore needs a base and an effective: " +
                                   name);
  }
  Entry& e = relations_[name];
  const uint64_t version = std::max(e.version, state.version) + 1;
  e.base = std::move(state.base);
  e.deltas = std::move(state.deltas);
  e.effective = std::move(state.effective);
  e.version = version;
  e.canonical = !e.deltas.empty();
  ++generation_;
  index_cache_->Sweep();
  return Status::OK();
}

}  // namespace adj::storage
