#include "storage/schema.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace adj::storage {

int Schema::PositionOf(AttrId attr) const {
  for (int i = 0; i < arity(); ++i) {
    if (attrs_[i] == attr) return i;
  }
  return -1;
}

AttrMask Schema::Mask() const {
  AttrMask mask = 0;
  for (AttrId a : attrs_) mask |= (AttrMask(1) << a);
  return mask;
}

Schema Schema::SortedBy(const std::vector<int>& rank,
                        std::vector<int>* out_perm) const {
  std::vector<int> perm(attrs_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](int i, int j) {
    ADJ_CHECK(attrs_[i] < static_cast<int>(rank.size()));
    ADJ_CHECK(attrs_[j] < static_cast<int>(rank.size()));
    return rank[attrs_[i]] < rank[attrs_[j]];
  });
  std::vector<AttrId> sorted(attrs_.size());
  for (size_t i = 0; i < perm.size(); ++i) sorted[i] = attrs_[perm[i]];
  if (out_perm != nullptr) *out_perm = perm;
  return Schema(std::move(sorted));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ",";
    // Attribute ids are rendered a, b, c, ... like the paper's queries.
    AttrId a = attrs_[i];
    if (a < 26) {
      out += static_cast<char>('a' + a);
    } else {
      out += "x" + std::to_string(a);
    }
  }
  out += ")";
  return out;
}

}  // namespace adj::storage
