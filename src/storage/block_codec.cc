#include "storage/block_codec.h"

#include <algorithm>

#include "common/logging.h"

namespace adj::storage::blockcodec {
namespace {

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline int BitWidth(uint64_t v) { return v == 0 ? 0 : 64 - __builtin_clzll(v); }

inline void PutVar(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

/// Reads a varint from [p, end); returns false on truncation/overflow.
inline bool GetVar(const uint8_t*& p, const uint8_t* end, uint64_t* v) {
  uint64_t x = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const uint8_t b = *p++;
    x |= uint64_t(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = x;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline int VarLen(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Encodes one block of `cnt` values starting at `v` whose zigzag
/// deltas (cnt-1 of them) are already in `zz`. Appends tag + payload.
void EncodeBlockBody(const uint64_t* zz, uint32_t ndeltas,
                     std::vector<uint8_t>& bytes) {
  int width = 0;
  int vbyte_len = 0;
  for (uint32_t i = 0; i < ndeltas; ++i) {
    width = std::max(width, BitWidth(zz[i]));
    vbyte_len += VarLen(zz[i]);
  }
  const int packed_len = static_cast<int>((uint64_t(ndeltas) * width + 7) / 8);
  if (packed_len <= vbyte_len) {
    bytes.push_back(static_cast<uint8_t>(width));
    uint64_t acc = 0;
    int nbits = 0;
    for (uint32_t i = 0; i < ndeltas; ++i) {
      acc |= zz[i] << nbits;
      nbits += width;
      while (nbits >= 8) {
        bytes.push_back(static_cast<uint8_t>(acc));
        acc >>= 8;
        nbits -= 8;
      }
      // width can exceed 64-7: flush guarantees nbits < 8 before the
      // next delta, and width <= 33 so acc never overflows.
    }
    if (nbits > 0) bytes.push_back(static_cast<uint8_t>(acc));
  } else {
    bytes.push_back(kTagVByte);
    for (uint32_t i = 0; i < ndeltas; ++i) PutVar(bytes, zz[i]);
  }
}

}  // namespace

void EncodeLevelTail(std::span<const Value> values, uint32_t from_block,
                     CompressedLevel* out) {
  const uint64_t n = values.size();
  out->size = n;
  const uint64_t first = uint64_t(from_block) * kBlockValues;
  ADJ_CHECK(out->mins.size() == from_block);
  ADJ_CHECK(out->starts.size() == size_t(from_block) + 1);
  ADJ_CHECK(first <= n);
  uint64_t zz[kBlockValues];
  for (uint64_t lo = first; lo < n; lo += kBlockValues) {
    const uint32_t cnt =
        static_cast<uint32_t>(std::min<uint64_t>(kBlockValues, n - lo));
    out->mins.push_back(values[lo]);
    for (uint32_t i = 1; i < cnt; ++i) {
      zz[i - 1] = ZigZag(int64_t(values[lo + i]) - int64_t(values[lo + i - 1]));
    }
    EncodeBlockBody(zz, cnt - 1, out->bytes);
    out->starts.push_back(static_cast<uint32_t>(out->bytes.size()));
  }
}

void EncodeLevel(std::span<const Value> values, CompressedLevel* out) {
  out->mins.clear();
  out->starts.assign(1, 0);
  out->bytes.clear();
  EncodeLevelTail(values, 0, out);
}

uint32_t DecodeBlock(const CompressedLevelView& level, uint32_t block,
                     Value* out) {
  const uint32_t cnt = level.BlockCount(block);
  const uint8_t* p = level.bytes.data() + level.starts[block];
  const uint8_t tag = *p++;
  int64_t v = level.mins[block];
  out[0] = static_cast<Value>(v);
  if (tag == kTagVByte) {
    const uint8_t* end = level.bytes.data() + level.starts[block + 1];
    for (uint32_t i = 1; i < cnt; ++i) {
      uint64_t zz = 0;
      GetVar(p, end, &zz);
      v += UnZigZag(zz);
      out[i] = static_cast<Value>(v);
    }
  } else {
    const int width = tag;
    const uint64_t mask =
        width >= 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;
    uint64_t acc = 0;
    int nbits = 0;
    for (uint32_t i = 1; i < cnt; ++i) {
      while (nbits < width) {
        acc |= uint64_t(*p++) << nbits;
        nbits += 8;
      }
      v += UnZigZag(acc & mask);
      acc >>= width;
      nbits -= width;
      out[i] = static_cast<Value>(v);
    }
  }
  return cnt;
}

Status ValidateCompressedLevel(const CompressedLevelView& level) {
  const uint64_t n = level.size;
  const uint64_t blocks = (n + kBlockValues - 1) / kBlockValues;
  if (level.mins.size() != blocks) {
    return Status::InvalidArgument("compressed level: skip table size");
  }
  if (level.starts.size() != blocks + 1) {
    return Status::InvalidArgument("compressed level: start table size");
  }
  if (blocks == 0) return Status::OK();
  if (level.starts[0] != 0 ||
      level.starts[blocks] != level.bytes.size()) {
    return Status::InvalidArgument("compressed level: byte extent");
  }
  for (uint64_t b = 0; b < blocks; ++b) {
    if (level.starts[b + 1] < level.starts[b] ||
        level.starts[b + 1] > level.bytes.size()) {
      return Status::InvalidArgument("compressed level: offsets not monotone");
    }
    const uint32_t cnt = level.BlockCount(static_cast<uint32_t>(b));
    const uint32_t len = level.starts[b + 1] - level.starts[b];
    if (len < 1) {
      return Status::InvalidArgument("compressed level: empty block payload");
    }
    const uint8_t* p = level.bytes.data() + level.starts[b];
    const uint8_t* end = p + len;
    const uint8_t tag = *p++;
    if (tag == kTagVByte) {
      for (uint32_t i = 1; i < cnt; ++i) {
        uint64_t zz = 0;
        if (!GetVar(p, end, &zz)) {
          return Status::InvalidArgument("compressed level: truncated varint");
        }
      }
      if (p != end) {
        return Status::InvalidArgument("compressed level: trailing bytes");
      }
    } else {
      if (tag > kMaxBitWidth) {
        return Status::InvalidArgument("compressed level: bad bit width");
      }
      const uint64_t need = 1 + (uint64_t(cnt - 1) * tag + 7) / 8;
      if (need != len) {
        return Status::InvalidArgument("compressed level: packed length");
      }
    }
  }
  return Status::OK();
}

}  // namespace adj::storage::blockcodec
