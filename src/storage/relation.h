#ifndef ADJ_STORAGE_RELATION_H_
#define ADJ_STORAGE_RELATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace adj::storage {

/// A relation: a set of fixed-arity tuples stored row-major in one flat
/// vector. This is the unit of storage, shuffling, and trie building.
///
/// Invariants are *not* enforced on append; call SortAndDedup() to put
/// the relation into the canonical (lexicographically sorted, unique)
/// state the trie builder requires.
///
/// A relation can also *alias* an external row payload: reads go
/// through a borrowed span and cost no copy. AliasRows shares another
/// relation's heap vector (how the index cache hands one physical
/// permutation to many attribute labelings); AliasSpan views arbitrary
/// read-only memory kept alive by an opaque handle — in particular an
/// mmap'ed snapshot segment, which is how persist loads relations with
/// zero parsing. Mutation detaches (copy-on-write), so aliasing stays
/// an implementation detail to callers.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// A relation whose rows alias `rows` (no copy). Callers must not
  /// mutate `*rows` afterwards; Relation mutators copy-on-write.
  static Relation AliasRows(Schema schema,
                            std::shared_ptr<const std::vector<Value>> rows) {
    Relation r(std::move(schema));
    if (rows != nullptr) {
      r.view_ = std::span<const Value>(rows->data(), rows->size());
      r.keepalive_ = std::move(rows);
    }
    return r;
  }

  /// A relation whose rows view `rows` directly — typically a segment
  /// of an mmap'ed snapshot. `keepalive` must own the viewed memory
  /// (the persist::MappedFile, or the canonical Relation the span
  /// belongs to) and is held for the alias's lifetime. Mutators
  /// copy-on-write, exactly like AliasRows.
  static Relation AliasSpan(Schema schema, std::span<const Value> rows,
                            std::shared_ptr<const void> keepalive) {
    Relation r(std::move(schema));
    r.view_ = rows;
    r.keepalive_ = std::move(keepalive);
    return r;
  }

  const Schema& schema() const { return schema_; }
  int arity() const { return schema_.arity(); }
  uint64_t size() const {
    return arity() == 0 ? (rows().empty() ? 0 : 1)
                        : rows().size() / static_cast<uint64_t>(arity());
  }
  bool empty() const { return rows().empty(); }

  /// Bytes of tuple payload (what shuffling transmits).
  uint64_t SizeBytes() const { return rows().size() * sizeof(Value); }

  /// Row accessor: the i-th tuple as a span of `arity` values.
  std::span<const Value> Row(uint64_t i) const {
    return {rows().data() + i * arity(), static_cast<size_t>(arity())};
  }
  Value At(uint64_t row, int col) const {
    return rows()[row * arity() + col];
  }

  void Reserve(uint64_t rows) {
    Detach();
    data_.reserve(rows * arity());
  }
  void Append(std::span<const Value> tuple);
  void Append(std::initializer_list<Value> tuple) {
    Append(std::span<const Value>(tuple.begin(), tuple.size()));
  }

  /// Lexicographic sort + duplicate elimination (set semantics).
  void SortAndDedup();
  bool IsSortedUnique() const;

  /// New relation with columns permuted: column i of the result is
  /// column perm[i] of this relation, under schema `new_schema`.
  Relation PermuteColumns(const Schema& new_schema,
                          const std::vector<int>& perm) const;

  /// Distinct values of column `col` (sorted ascending).
  std::vector<Value> DistinctColumn(int col) const;

  /// Keep only rows whose column `col` value appears in `keep`
  /// (`keep` must be sorted). This is the semijoin filter used by the
  /// distributed sampler's database-reduction step.
  Relation SemiJoinFilter(int col, const std::vector<Value>& keep) const;

  /// Flat row-major payload. A borrowed view for aliased (shared /
  /// mmap-backed) relations; valid as long as this relation (and its
  /// keepalive) live and no mutator runs.
  std::span<const Value> raw() const { return rows(); }
  std::vector<Value>& mutable_raw() {
    Detach();
    return data_;
  }

  /// Identity of the row payload for dedup accounting: aliasing
  /// relations built over the same physical buffer report the same
  /// pointer. Owned storage reports its own buffer.
  const void* RowsIdentity() const {
    return keepalive_ ? static_cast<const void*>(view_.data())
                      : static_cast<const void*>(&data_);
  }

  /// Whether reads go through a borrowed payload (AliasRows/AliasSpan)
  /// rather than owned heap storage.
  bool is_alias() const { return keepalive_ != nullptr; }

  std::string ToString(uint64_t max_rows = 16) const;

 private:
  std::span<const Value> rows() const {
    return keepalive_ ? view_ : std::span<const Value>(data_);
  }
  /// Copy-on-write: materialize the borrowed payload into owned
  /// storage before any mutation.
  void Detach() {
    if (keepalive_) {
      data_.assign(view_.begin(), view_.end());
      view_ = {};
      keepalive_.reset();
    }
  }

  Schema schema_;
  std::vector<Value> data_;
  std::span<const Value> view_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_RELATION_H_
