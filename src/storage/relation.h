#ifndef ADJ_STORAGE_RELATION_H_
#define ADJ_STORAGE_RELATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace adj::storage {

/// A relation: a set of fixed-arity tuples stored row-major in one flat
/// vector. This is the unit of storage, shuffling, and trie building.
///
/// Invariants are *not* enforced on append; call SortAndDedup() to put
/// the relation into the canonical (lexicographically sorted, unique)
/// state the trie builder requires.
///
/// A relation can also *alias* a shared row payload (AliasRows): reads
/// go through the shared vector and cost no copy, which is how the
/// index cache hands the same physical permutation to many attribute
/// labelings. Mutation detaches (copy-on-write), so aliasing stays an
/// implementation detail to callers.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// A relation whose rows alias `rows` (no copy). Callers must not
  /// mutate `*rows` afterwards; Relation mutators copy-on-write.
  static Relation AliasRows(Schema schema,
                            std::shared_ptr<const std::vector<Value>> rows) {
    Relation r(std::move(schema));
    r.shared_ = std::move(rows);
    return r;
  }

  const Schema& schema() const { return schema_; }
  int arity() const { return schema_.arity(); }
  uint64_t size() const {
    return arity() == 0 ? (rows().empty() ? 0 : 1)
                        : rows().size() / static_cast<uint64_t>(arity());
  }
  bool empty() const { return rows().empty(); }

  /// Bytes of tuple payload (what shuffling transmits).
  uint64_t SizeBytes() const { return rows().size() * sizeof(Value); }

  /// Row accessor: the i-th tuple as a span of `arity` values.
  std::span<const Value> Row(uint64_t i) const {
    return {rows().data() + i * arity(), static_cast<size_t>(arity())};
  }
  Value At(uint64_t row, int col) const {
    return rows()[row * arity() + col];
  }

  void Reserve(uint64_t rows) {
    Detach();
    data_.reserve(rows * arity());
  }
  void Append(std::span<const Value> tuple);
  void Append(std::initializer_list<Value> tuple) {
    Append(std::span<const Value>(tuple.begin(), tuple.size()));
  }

  /// Lexicographic sort + duplicate elimination (set semantics).
  void SortAndDedup();
  bool IsSortedUnique() const;

  /// New relation with columns permuted: column i of the result is
  /// column perm[i] of this relation, under schema `new_schema`.
  Relation PermuteColumns(const Schema& new_schema,
                          const std::vector<int>& perm) const;

  /// Distinct values of column `col` (sorted ascending).
  std::vector<Value> DistinctColumn(int col) const;

  /// Keep only rows whose column `col` value appears in `keep`
  /// (`keep` must be sorted). This is the semijoin filter used by the
  /// distributed sampler's database-reduction step.
  Relation SemiJoinFilter(int col, const std::vector<Value>& keep) const;

  const std::vector<Value>& raw() const { return rows(); }
  std::vector<Value>& mutable_raw() {
    Detach();
    return data_;
  }

  /// Identity of the row payload for dedup accounting: aliasing
  /// relations built over the same shared vector report the same
  /// pointer. Owned storage reports its own buffer.
  const void* RowsIdentity() const {
    return shared_ ? static_cast<const void*>(shared_.get())
                   : static_cast<const void*>(&data_);
  }

  std::string ToString(uint64_t max_rows = 16) const;

 private:
  const std::vector<Value>& rows() const {
    return shared_ ? *shared_ : data_;
  }
  /// Copy-on-write: materialize the shared payload into owned storage
  /// before any mutation.
  void Detach() {
    if (shared_) {
      data_ = *shared_;
      shared_.reset();
    }
  }

  Schema schema_;
  std::vector<Value> data_;
  std::shared_ptr<const std::vector<Value>> shared_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_RELATION_H_
