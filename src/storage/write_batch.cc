#include "storage/write_batch.h"

#include <algorithm>
#include <utility>

#include "wcoj/intersect.h"

namespace adj::storage {

/// Lexicographic three-way compare of two arity-length tuples.
int CompareRows(const Value* a, const Value* b, int arity) {
  for (int c = 0; c < arity; ++c) {
    if (a[c] < b[c]) return -1;
    if (a[c] > b[c]) return 1;
  }
  return 0;
}

/// First tuple index in [lo, n) whose tuple is >= `t` — an exponential
/// probe then a binary shrink over the probed window: the SeekGEQ
/// galloping discipline generalized to lexicographic tuple order, so a
/// point delta locates its merge position in O(log distance) instead
/// of scanning. Arity-1 payloads are strictly increasing flat value
/// runs — exactly the intersect kernels' input contract — and go
/// through wcoj::intersect::SeekGEQ itself.
size_t RowLowerBound(std::span<const Value> rows, int arity, const Value* t,
                     size_t lo) {
  if (arity == 1) return wcoj::intersect::SeekGEQ(rows, t[0], lo);
  const size_t n = rows.size() / static_cast<size_t>(arity);
  auto row = [&](size_t k) { return rows.data() + k * arity; };
  size_t cur = lo;
  size_t step = 1;
  while (cur < n && CompareRows(row(cur), t, arity) < 0) {
    lo = cur + 1;
    cur += step;
    step <<= 1;
  }
  size_t hi = std::min(cur, n);
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareRows(row(mid), t, arity) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// Rows of `a` not in `b`; both sorted-unique, same arity. Linear
/// merge walk.
Relation RowsDifference(const Relation& a, const Relation& b) {
  Relation out(a.schema());
  const int arity = a.arity();
  for (uint64_t i = 0, j = 0; i < a.size(); ++i) {
    const Value* t = a.Row(i).data();
    while (j < b.size() && CompareRows(b.Row(j).data(), t, arity) < 0) ++j;
    if (j < b.size() && CompareRows(b.Row(j).data(), t, arity) == 0) continue;
    out.Append(a.Row(i));
  }
  return out;
}

/// Set union of two sorted-unique row sets of the same arity.
Relation RowsUnion(const Relation& a, const Relation& b) {
  Relation out(a.schema());
  const int arity = a.arity();
  uint64_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const int c = CompareRows(a.Row(i).data(), b.Row(j).data(), arity);
    if (c < 0) {
      out.Append(a.Row(i++));
    } else if (c > 0) {
      out.Append(b.Row(j++));
    } else {
      out.Append(a.Row(i++));
      ++j;
    }
  }
  while (i < a.size()) out.Append(a.Row(i++));
  while (j < b.size()) out.Append(b.Row(j++));
  return out;
}

}  // namespace

void MergeDeltaRows(std::span<const Value> base, int arity,
                    std::span<const Value> inserts,
                    std::span<const Value> deletes, std::vector<Value>* out) {
  out->clear();
  if (arity <= 0) {
    out->assign(base.begin(), base.end());
    return;
  }
  const size_t n = base.size() / static_cast<size_t>(arity);
  const size_t ni = inserts.size() / static_cast<size_t>(arity);
  const size_t nd = deletes.size() / static_cast<size_t>(arity);
  out->reserve(base.size() + inserts.size());
  auto row = [&](std::span<const Value> flat, size_t k) {
    return flat.data() + k * arity;
  };
  size_t b = 0, i = 0, d = 0;
  while (i < ni || d < nd) {
    // Next event in tuple order; inserts and deletes are disjoint, so
    // the two streams never tie.
    bool is_insert;
    const Value* t;
    if (i < ni && (d >= nd || CompareRows(row(inserts, i), row(deletes, d),
                                           arity) < 0)) {
      is_insert = true;
      t = row(inserts, i++);
    } else {
      is_insert = false;
      t = row(deletes, d++);
    }
    const size_t pos = RowLowerBound(base, arity, t, b);
    // Run-copy the untouched stretch below the event.
    out->insert(out->end(), row(base, b), row(base, pos));
    b = pos;
    const bool present =
        pos < n && CompareRows(row(base, pos), t, arity) == 0;
    if (is_insert) {
      out->insert(out->end(), t, t + arity);
      if (present) b = pos + 1;  // already there: emit once, not twice
    } else if (present) {
      b = pos + 1;  // tombstone consumes the row
    }                // tombstone of an absent row: no-op
  }
  out->insert(out->end(), row(base, b), base.data() + base.size());
}

DeltaBatch ComposeDelta(const DeltaBatch& first, const DeltaBatch& then) {
  DeltaBatch net;
  net.inserts =
      RowsUnion(RowsDifference(first.inserts, then.deletes), then.inserts);
  net.deletes =
      RowsDifference(RowsUnion(first.deletes, then.deletes), net.inserts);
  return net;
}

void WriteBatch::Insert(std::string relation, std::vector<Value> tuple) {
  Op op;
  op.kind = Op::kInsert;
  op.name = std::move(relation);
  op.tuple = std::move(tuple);
  ops_.push_back(std::move(op));
}

void WriteBatch::Delete(std::string relation, std::vector<Value> tuple) {
  Op op;
  op.kind = Op::kDelete;
  op.name = std::move(relation);
  op.tuple = std::move(tuple);
  ops_.push_back(std::move(op));
}

void WriteBatch::Create(std::string name, Relation rel) {
  Create(std::move(name),
         std::make_shared<const Relation>(std::move(rel)));
}

void WriteBatch::Create(std::string name,
                        std::shared_ptr<const Relation> rel) {
  Op op;
  op.kind = Op::kCreate;
  op.name = std::move(name);
  op.rel = std::move(rel);
  ops_.push_back(std::move(op));
}

void WriteBatch::AliasRelation(std::string alias, std::string target) {
  Op op;
  op.kind = Op::kAlias;
  op.name = std::move(alias);
  op.target = std::move(target);
  ops_.push_back(std::move(op));
}

std::vector<std::string> WriteBatch::TouchedNames() const {
  std::vector<std::string> names;
  for (const Op& op : ops_) {
    if (std::find(names.begin(), names.end(), op.name) == names.end()) {
      names.push_back(op.name);
    }
  }
  return names;
}

}  // namespace adj::storage
