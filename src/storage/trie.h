#ifndef ADJ_STORAGE_TRIE_H_
#define ADJ_STORAGE_TRIE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace adj::storage {

/// Sorted-array trie over a relation, stored level by level in CSR
/// (nested offsets) form — the layout Leapfrog TrieJoin iterates over
/// and the unit the Merge HCube variant ships pre-built ("a trie ...
/// can be implemented using three arrays", Sec. V).
///
/// Level l holds the distinct values of column l under each distinct
/// prefix of columns 0..l-1, concatenated in prefix order. For
/// l < arity-1, child_begin(l) maps each level-l entry to its range of
/// children in level l+1.
///
/// A "node" at level l is identified by its index into values(l); a
/// set of siblings is a half-open index range [lo, hi).
///
/// A trie either owns its arrays (Build) or views arrays living in
/// externally owned memory (FromMapped) — typically a persist snapshot
/// mapped into the process. Readers cannot tell the difference except
/// through mmap_backed(); every accessor goes through the same spans.
class Trie {
 public:
  /// Range of sibling indexes within one level.
  struct Range {
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t size() const { return hi - lo; }
    bool empty() const { return lo >= hi; }
  };

  /// One level of an externally stored trie: spans into memory the
  /// caller guarantees outlives the Trie (via the keepalive handle).
  /// `child_begin` must be empty for the deepest level and have size
  /// values.size()+1 otherwise.
  struct MappedLevel {
    std::span<const Value> values;
    std::span<const uint32_t> child_begin;
  };

  Trie() = default;

  /// Builds from `rel`, which must be sorted and duplicate-free
  /// (Relation::SortAndDedup). O(rows * arity).
  static Trie Build(const Relation& rel);

  /// Builds the trie over prev's tuples minus `deletes` plus
  /// `inserts`, by splicing the (small) delta into prev's CSR arrays:
  /// sibling runs untouched by any delta row — in practice almost the
  /// whole trie — are appended as bulk span copies with their child
  /// offsets rebased, and only the nodes on a delta row's prefix path
  /// are re-merged. This is what makes refreshing a cached index after
  /// a point write cheaper than Build's per-row scan over all n rows
  /// (storage::IndexCache's trie-layer delta patch).
  ///
  /// Both delta relations must be sorted, duplicate-free, and permuted
  /// into prev's column order; their row sets must be disjoint
  /// (storage::Catalog::Apply guarantees all three). Deletes of absent
  /// rows and inserts of present rows are tolerated as no-ops, and
  /// prev may be mmap-backed — the result always owns its arrays.
  static Trie PatchFrom(const Trie& prev, const Relation& inserts,
                        const Relation& deletes);

  /// Wraps externally stored level arrays (e.g. segments of an mmap'ed
  /// snapshot) without copying. Validates the CSR structure — sizes,
  /// offset monotonicity, child bounds, sorted sibling runs — and
  /// returns kInvalidArgument on any violation, so a corrupt snapshot
  /// surfaces as a Status instead of UB in the join inner loop.
  /// `keepalive` must own the viewed memory and is held for the trie's
  /// lifetime. max-range widths are recomputed, not trusted.
  static StatusOr<Trie> FromMapped(std::vector<MappedLevel> levels,
                                   std::shared_ptr<const void> keepalive);

  /// True when the level arrays view externally owned (mapped) memory
  /// rather than heap storage built by Build.
  bool mmap_backed() const { return keepalive_ != nullptr; }

  int arity() const { return static_cast<int>(levels_.size()); }
  bool empty() const { return arity() == 0 || levels_[0].vals().empty(); }

  /// Number of tuples represented (size of the deepest level).
  uint64_t NumTuples() const {
    return levels_.empty() ? 0 : levels_.back().vals().size();
  }

  /// Total values stored across all levels ("three arrays" payload).
  uint64_t StorageValues() const;

  std::span<const Value> values(int level) const {
    return levels_[level].vals();
  }

  /// Flat view over one whole level — the array the intersection
  /// kernels index into.
  std::span<const Value> LevelSpan(int level) const {
    return levels_[level].vals();
  }

  /// CSR child-offset array of one level (size values+1; empty for the
  /// deepest level). This is what the snapshot writer serializes.
  std::span<const uint32_t> ChildBeginSpan(int level) const {
    return levels_[level].kids();
  }

  /// A sibling range as a flat span (kernel input). Positions a kernel
  /// emits are relative to the span, i.e. to r.lo.
  std::span<const Value> RangeSpan(int level, Range r) const {
    return levels_[level].vals().subspan(r.lo, r.size());
  }

  /// Largest sibling-range width at `level` (level 0: the root range
  /// size). Computed once at Build; lets a join executor size its
  /// per-level intersection buffers without rescanning the index.
  uint32_t MaxRangeWidth(int level) const {
    return levels_[level].max_range_width;
  }

  /// Sibling range of the root level.
  Range RootRange() const {
    return {0, static_cast<uint32_t>(levels_.empty()
                                         ? 0
                                         : levels_[0].vals().size())};
  }

  /// Children of entry `idx` of `level` as a range in level+1.
  Range ChildRange(int level, uint32_t idx) const {
    std::span<const uint32_t> begin = levels_[level].kids();
    return {begin[idx], begin[idx + 1]};
  }

  Value ValueAt(int level, uint32_t idx) const {
    return levels_[level].vals()[idx];
  }

  /// First index in [r.lo, r.hi) whose value is >= v, or r.hi if none.
  /// Galloping (exponential) search: O(log distance) — this is the
  /// "seek" primitive of Leapfrog and the probe the beta calibration
  /// measures.
  uint32_t SeekInRange(int level, Range r, Value v) const;

  /// Index of exactly `v` in [r.lo, r.hi), or r.hi if absent.
  uint32_t FindInRange(int level, Range r, Value v) const;

  std::string ToString() const;

 private:
  /// A level either owns its arrays (`*_store`, mapped == false) or
  /// views external memory (`*_map`, mapped == true). The two cases
  /// never mix, so default copy/move stay safe: spans never point into
  /// the level's own vectors.
  struct Level {
    std::vector<Value> values_store;
    // Size values+1; absent (empty) for the deepest level.
    std::vector<uint32_t> child_store;
    std::span<const Value> values_map;
    std::span<const uint32_t> child_map;
    bool mapped = false;
    // Widest sibling range within this level (level 0: values size).
    uint32_t max_range_width = 0;

    std::span<const Value> vals() const {
      return mapped ? values_map : std::span<const Value>(values_store);
    }
    std::span<const uint32_t> kids() const {
      return mapped ? child_map : std::span<const uint32_t>(child_store);
    }
  };
  /// Fills every level's max_range_width from the child arrays (the
  /// final step of Build and PatchFrom).
  void FinishWidths();

  std::vector<Level> levels_;
  // Owns the memory behind mapped levels; null for built tries.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_TRIE_H_
