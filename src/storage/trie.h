#ifndef ADJ_STORAGE_TRIE_H_
#define ADJ_STORAGE_TRIE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/block_codec.h"
#include "storage/relation.h"

namespace adj::storage {

/// Sorted-array trie over a relation, stored level by level in CSR
/// (nested offsets) form — the layout Leapfrog TrieJoin iterates over
/// and the unit the Merge HCube variant ships pre-built ("a trie ...
/// can be implemented using three arrays", Sec. V).
///
/// Level l holds the distinct values of column l under each distinct
/// prefix of columns 0..l-1, concatenated in prefix order. For
/// l < arity-1, child_begin(l) maps each level-l entry to its range of
/// children in level l+1.
///
/// A "node" at level l is identified by its index into values(l); a
/// set of siblings is a half-open index range [lo, hi).
///
/// A trie either owns its arrays (Build) or views arrays living in
/// externally owned memory (FromMapped) — typically a persist snapshot
/// mapped into the process. Readers cannot tell the difference except
/// through mmap_backed(); every accessor goes through the same spans.
///
/// A level's *value* array additionally has two interchangeable
/// representations: raw (a flat Value array) or block-compressed
/// (blockcodec: fixed-size blocks of zigzag deltas with a per-block
/// min/offset skip table). Compress() picks per level by a density
/// heuristic; child offset arrays always stay raw so positions,
/// ChildRange and the executor's index arithmetic are untouched.
/// Seek/Find/ValueAt work on either form; LevelSpan/RangeSpan are
/// raw-only (callers branch to CompressedView — see wcoj/intersect.h
/// for the kernels that intersect compressed runs directly).
class Trie {
 public:
  /// Range of sibling indexes within one level.
  struct Range {
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t size() const { return hi - lo; }
    bool empty() const { return lo >= hi; }
  };

  /// One level of an externally stored trie: spans into memory the
  /// caller guarantees outlives the Trie (via the keepalive handle).
  /// `child_begin` must be empty for the deepest level and have size
  /// values+1 otherwise. The value array arrives either raw (`values`)
  /// or block-compressed (`compressed` set: block_mins / block_starts
  /// / block_bytes + num_values, `values` empty) — the latter is how
  /// snapshot v3 levels load with zero re-encode.
  struct MappedLevel {
    std::span<const Value> values;
    std::span<const uint32_t> child_begin;
    bool compressed = false;
    uint64_t num_values = 0;
    std::span<const Value> block_mins;
    std::span<const uint32_t> block_starts;
    std::span<const uint8_t> block_bytes;
  };

  /// Per-level compression policy for Compress(). A level is encoded
  /// only when it is big enough to matter and the encoding actually
  /// saves space; tiny or incompressible levels keep the raw array
  /// (decode scratch would cost more than it saves). The root level
  /// stays raw by default (min_level = 1): it participates as a
  /// *whole-level* run in every intersection at its variable, so
  /// probing it decodes blocks far faster than they amortize, while
  /// deeper levels — which hold the bulk of the bytes — are walked as
  /// small, block-local sibling ranges where the decode cache hits.
  struct CompressOptions {
    uint32_t min_level = 1;   // levels below this index stay raw
    uint32_t min_level_values = 1024;
    double max_ratio = 0.85;  // keep raw unless encoded <= ratio * raw
    bool force = false;       // tests: compress every non-empty level
  };

  Trie() = default;

  /// Builds from `rel`, which must be sorted and duplicate-free
  /// (Relation::SortAndDedup). O(rows * arity).
  static Trie Build(const Relation& rel);

  /// Builds the trie over prev's tuples minus `deletes` plus
  /// `inserts`, by splicing the (small) delta into prev's CSR arrays:
  /// sibling runs untouched by any delta row — in practice almost the
  /// whole trie — are appended as bulk span copies with their child
  /// offsets rebased, and only the nodes on a delta row's prefix path
  /// are re-merged. This is what makes refreshing a cached index after
  /// a point write cheaper than Build's per-row scan over all n rows
  /// (storage::IndexCache's trie-layer delta patch).
  ///
  /// Both delta relations must be sorted, duplicate-free, and permuted
  /// into prev's column order; their row sets must be disjoint
  /// (storage::Catalog::Apply guarantees all three). Deletes of absent
  /// rows and inserts of present rows are tolerated as no-ops, and
  /// prev may be mmap-backed — the result always owns its arrays.
  ///
  /// Compressed prev levels stay compressed in the result, and only
  /// touched blocks are re-encoded: every block strictly before the
  /// first delta-affected position is byte-identical under the
  /// deterministic encoder, so its encoded bytes splice verbatim.
  /// Blocks at and after it must re-encode regardless — an insert or
  /// delete shifts downstream positions across block boundaries.
  /// Max-range widths are recomputed from the merged child arrays
  /// (never inherited from prev), so a patch that widens a sibling
  /// range can never leave an executor arena undersized.
  static Trie PatchFrom(const Trie& prev, const Relation& inserts,
                        const Relation& deletes);

  /// Re-encodes `src`'s levels per `opts` (raw levels that pass the
  /// density heuristic become block-compressed; already-compressed
  /// levels are kept as-is). Takes by value: callers move a
  /// freshly-built trie in, and kept-raw arrays transfer without copy.
  static Trie Compress(Trie src, const CompressOptions& opts);
  static Trie Compress(Trie src);

  /// Wraps externally stored level arrays (e.g. segments of an mmap'ed
  /// snapshot) without copying. Validates the CSR structure — sizes,
  /// offset monotonicity, child bounds, sorted sibling runs, and for
  /// compressed levels the block skip-table/payload structure — and
  /// returns kInvalidArgument on any violation, so a corrupt snapshot
  /// surfaces as a Status instead of UB in the join inner loop.
  /// `keepalive` must own the viewed memory and is held for the trie's
  /// lifetime. max-range widths are recomputed, not trusted.
  static StatusOr<Trie> FromMapped(std::vector<MappedLevel> levels,
                                   std::shared_ptr<const void> keepalive);

  /// True when the level arrays view externally owned (mapped) memory
  /// rather than heap storage built by Build.
  bool mmap_backed() const { return keepalive_ != nullptr; }

  int arity() const { return static_cast<int>(levels_.size()); }
  bool empty() const { return arity() == 0 || LevelSize(0) == 0; }

  /// Number of values in one level (raw or compressed).
  uint64_t LevelSize(int level) const {
    const Level& l = levels_[level];
    return l.compressed ? l.comp().size : l.vals().size();
  }

  /// Number of tuples represented (size of the deepest level).
  uint64_t NumTuples() const {
    return levels_.empty() ? 0 : LevelSize(arity() - 1);
  }

  /// Total values stored across all levels ("three arrays" payload),
  /// counting compressed levels at their logical (decoded) size.
  uint64_t StorageValues() const;

  /// Actual resident footprint in bytes: raw arrays at full width,
  /// compressed levels at skip-table + payload size. This is what the
  /// IndexCache charges against its byte budget.
  uint64_t ResidentBytes() const;

  /// Bytes resident in block-compressed levels (0 for raw tries) and
  /// whether any level is compressed.
  uint64_t CompressedBytes() const;
  bool any_compressed() const;

  bool level_compressed(int level) const { return levels_[level].compressed; }

  /// Block-compressed view of one level; only valid when
  /// level_compressed(level).
  blockcodec::CompressedLevelView CompressedView(int level) const {
    return levels_[level].comp();
  }

  /// Decodes one whole level into `out` (raw levels copy). Cold-path
  /// helper for writers and tests; the join kernels decode per block.
  void DecodeLevelInto(int level, std::vector<Value>* out) const;

  std::span<const Value> values(int level) const {
    return levels_[level].vals();
  }

  /// Flat view over one whole level — the array the intersection
  /// kernels index into. Raw levels only; compressed levels go through
  /// CompressedView().
  std::span<const Value> LevelSpan(int level) const {
    return levels_[level].vals();
  }

  /// CSR child-offset array of one level (size values+1; empty for the
  /// deepest level). This is what the snapshot writer serializes.
  std::span<const uint32_t> ChildBeginSpan(int level) const {
    return levels_[level].kids();
  }

  /// A sibling range as a flat span (kernel input). Positions a kernel
  /// emits are relative to the span, i.e. to r.lo. Raw levels only.
  std::span<const Value> RangeSpan(int level, Range r) const {
    return levels_[level].vals().subspan(r.lo, r.size());
  }

  /// Largest sibling-range width at `level` (level 0: the root range
  /// size). Computed once at Build; lets a join executor size its
  /// per-level intersection buffers without rescanning the index.
  uint32_t MaxRangeWidth(int level) const {
    return levels_[level].max_range_width;
  }

  /// Sibling range of the root level.
  Range RootRange() const {
    return {0, static_cast<uint32_t>(levels_.empty() ? 0 : LevelSize(0))};
  }

  /// Children of entry `idx` of `level` as a range in level+1.
  Range ChildRange(int level, uint32_t idx) const {
    std::span<const uint32_t> begin = levels_[level].kids();
    return {begin[idx], begin[idx + 1]};
  }

  /// Value at one position. On a compressed level this decodes the
  /// containing block (O(block)); hot loops stream blocks instead.
  Value ValueAt(int level, uint32_t idx) const;

  /// ValueAt through a caller-held block-decode cache: a probe into a
  /// block the cache already holds costs an array read. Raw levels
  /// ignore the cache.
  Value ValueAt(int level, uint32_t idx,
                blockcodec::DecodeCache* cache) const;

  /// First index in [r.lo, r.hi) whose value is >= v, or r.hi if none.
  /// Galloping (exponential) search: O(log distance) — this is the
  /// "seek" primitive of Leapfrog and the probe the beta calibration
  /// measures. On compressed levels it gallops the block skip table
  /// (only block minima whose position falls inside the sibling range
  /// are comparable — a block may straddle run boundaries) and decodes
  /// a single block.
  uint32_t SeekInRange(int level, Range r, Value v) const;

  /// SeekInRange through a caller-held block-decode cache. Callers
  /// probing one level repeatedly (BigJoin's per-binding trie descent)
  /// keep a cache per level so adjacent probes skip the block decode.
  uint32_t SeekInRange(int level, Range r, Value v,
                       blockcodec::DecodeCache* cache) const;

  /// Index of exactly `v` in [r.lo, r.hi), or r.hi if absent.
  uint32_t FindInRange(int level, Range r, Value v) const;
  uint32_t FindInRange(int level, Range r, Value v,
                       blockcodec::DecodeCache* cache) const;

  std::string ToString() const;

 private:
  /// A level either owns its arrays (`*_store`, mapped == false) or
  /// views external memory (`*_map`, mapped == true). The two cases
  /// never mix, so default copy/move stay safe: spans never point into
  /// the level's own vectors. Orthogonally the value array is raw or
  /// block-compressed (`compressed`); child offsets are always raw.
  struct Level {
    std::vector<Value> values_store;
    // Size values+1; absent (empty) for the deepest level.
    std::vector<uint32_t> child_store;
    std::span<const Value> values_map;
    std::span<const uint32_t> child_map;
    // Block-compressed value array (owned / mapped mirror of the two
    // cases above). When `compressed`, the raw value members are empty.
    blockcodec::CompressedLevel comp_store;
    blockcodec::CompressedLevelView comp_map;
    bool mapped = false;
    bool compressed = false;
    // Widest sibling range within this level (level 0: values size).
    uint32_t max_range_width = 0;

    std::span<const Value> vals() const {
      return mapped ? values_map : std::span<const Value>(values_store);
    }
    std::span<const uint32_t> kids() const {
      return mapped ? child_map : std::span<const uint32_t>(child_store);
    }
    blockcodec::CompressedLevelView comp() const {
      return mapped ? comp_map : comp_store.View();
    }
  };
  /// Fills every level's max_range_width from the child arrays (the
  /// final step of Build and PatchFrom).
  void FinishWidths();

  std::vector<Level> levels_;
  // Owns the memory behind mapped levels; null for built tries.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_TRIE_H_
