#ifndef ADJ_STORAGE_TRIE_H_
#define ADJ_STORAGE_TRIE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace adj::storage {

/// Sorted-array trie over a relation, stored level by level in CSR
/// (nested offsets) form — the layout Leapfrog TrieJoin iterates over
/// and the unit the Merge HCube variant ships pre-built ("a trie ...
/// can be implemented using three arrays", Sec. V).
///
/// Level l holds the distinct values of column l under each distinct
/// prefix of columns 0..l-1, concatenated in prefix order. For
/// l < arity-1, child_begin(l) maps each level-l entry to its range of
/// children in level l+1.
///
/// A "node" at level l is identified by its index into values(l); a
/// set of siblings is a half-open index range [lo, hi).
class Trie {
 public:
  /// Range of sibling indexes within one level.
  struct Range {
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t size() const { return hi - lo; }
    bool empty() const { return lo >= hi; }
  };

  Trie() = default;

  /// Builds from `rel`, which must be sorted and duplicate-free
  /// (Relation::SortAndDedup). O(rows * arity).
  static Trie Build(const Relation& rel);

  int arity() const { return static_cast<int>(levels_.size()); }
  bool empty() const { return arity() == 0 || levels_[0].values.empty(); }

  /// Number of tuples represented (size of the deepest level).
  uint64_t NumTuples() const {
    return levels_.empty() ? 0 : levels_.back().values.size();
  }

  /// Total values stored across all levels ("three arrays" payload).
  uint64_t StorageValues() const;

  std::span<const Value> values(int level) const {
    return levels_[level].values;
  }

  /// Flat view over one whole level — the array the intersection
  /// kernels index into.
  std::span<const Value> LevelSpan(int level) const {
    return levels_[level].values;
  }

  /// A sibling range as a flat span (kernel input). Positions a kernel
  /// emits are relative to the span, i.e. to r.lo.
  std::span<const Value> RangeSpan(int level, Range r) const {
    return std::span<const Value>(levels_[level].values).subspan(r.lo,
                                                                 r.size());
  }

  /// Largest sibling-range width at `level` (level 0: the root range
  /// size). Computed once at Build; lets a join executor size its
  /// per-level intersection buffers without rescanning the index.
  uint32_t MaxRangeWidth(int level) const {
    return levels_[level].max_range_width;
  }

  /// Sibling range of the root level.
  Range RootRange() const {
    return {0, static_cast<uint32_t>(levels_.empty()
                                         ? 0
                                         : levels_[0].values.size())};
  }

  /// Children of entry `idx` of `level` as a range in level+1.
  Range ChildRange(int level, uint32_t idx) const {
    const auto& begin = levels_[level].child_begin;
    return {begin[idx], begin[idx + 1]};
  }

  Value ValueAt(int level, uint32_t idx) const {
    return levels_[level].values[idx];
  }

  /// First index in [r.lo, r.hi) whose value is >= v, or r.hi if none.
  /// Galloping (exponential) search: O(log distance) — this is the
  /// "seek" primitive of Leapfrog and the probe the beta calibration
  /// measures.
  uint32_t SeekInRange(int level, Range r, Value v) const;

  /// Index of exactly `v` in [r.lo, r.hi), or r.hi if absent.
  uint32_t FindInRange(int level, Range r, Value v) const;

  std::string ToString() const;

 private:
  struct Level {
    std::vector<Value> values;
    // Size values.size()+1; absent (empty) for the deepest level.
    std::vector<uint32_t> child_begin;
    // Widest sibling range within this level (level 0: values.size()).
    uint32_t max_range_width = 0;
  };
  std::vector<Level> levels_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_TRIE_H_
