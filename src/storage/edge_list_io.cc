#include "storage/edge_list_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace adj::storage {
namespace {

Status ParseInto(std::istream& in, Relation* rel) {
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') continue;  // blank / comment
    unsigned long long u = 0, v = 0;
    if (std::sscanf(line.c_str() + i, "%llu %llu", &u, &v) != 2) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(lineno) + ": " + line);
    }
    if (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull) {
      return Status::OutOfRange("node id exceeds 32 bits at line " +
                                std::to_string(lineno));
    }
    if (u == v) continue;  // drop self loops, as the generators do
    rel->Append({static_cast<Value>(u), static_cast<Value>(v)});
  }
  rel->SortAndDedup();
  return Status::OK();
}

}  // namespace

StatusOr<Relation> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open edge list: " + path);
  }
  Relation rel(Schema({0, 1}));
  ADJ_RETURN_IF_ERROR(ParseInto(in, &rel));
  return rel;
}

StatusOr<Relation> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  Relation rel(Schema({0, 1}));
  ADJ_RETURN_IF_ERROR(ParseInto(in, &rel));
  return rel;
}

Status SaveEdgeList(const Relation& rel, const std::string& path) {
  if (rel.arity() != 2) {
    return Status::InvalidArgument("edge-list output requires arity 2");
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "# adj edge list: " << rel.size() << " edges\n";
  for (uint64_t r = 0; r < rel.size(); ++r) {
    out << rel.At(r, 0) << '\t' << rel.At(r, 1) << '\n';
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace adj::storage
