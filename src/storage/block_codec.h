#ifndef ADJ_STORAGE_BLOCK_CODEC_H_
#define ADJ_STORAGE_BLOCK_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace adj::storage::blockcodec {

/// Block-compressed encoding for one trie level (or any Value array
/// that is a concatenation of sorted runs). The array is cut into
/// fixed-size blocks of kBlockValues positions; block b covers
/// positions [b*kBlockValues, (b+1)*kBlockValues). Per block the skip
/// table stores the block's first value (`min`) and the byte offset of
/// its payload (`start`), so a SeekGEQ can gallop over block minima
/// and decode exactly one block. Payload layout per block:
///
///   [tag:1][deltas...]
///
/// Deltas are zigzag-encoded (trie levels are concatenations of
/// strictly increasing sibling runs — the delta across a run boundary
/// can be negative). The first value of the block lives only in the
/// skip table; the payload holds the remaining count-1 deltas.
///   tag == kTagVByte : LEB128 varints of the zigzag deltas.
///   tag <  kTagVByte : fixed bit width, deltas bit-packed LSB-first
///                      (frame-of-reference on the running value; used
///                      when the widest zigzag delta is narrow).
/// The encoder picks whichever is smaller per block, so the choice is
/// deterministic and byte-stable — PatchFrom relies on that to splice
/// untouched prefix blocks verbatim.
inline constexpr uint32_t kBlockValues = 128;
inline constexpr uint8_t kTagVByte = 0xFF;
/// Zigzag of (int64)uint32 - (int64)uint32 needs at most 33 bits.
inline constexpr uint8_t kMaxBitWidth = 33;

/// A compressed level, as plain spans so the same view works over
/// owned vectors and mmap'ed snapshot segments.
///   mins  : num_blocks entries, mins[b] == value at position b*B.
///   starts: num_blocks+1 entries, payload of block b is
///           bytes[starts[b], starts[b+1]).
///   size  : total number of logical values.
struct CompressedLevelView {
  std::span<const Value> mins;
  std::span<const uint32_t> starts;
  std::span<const uint8_t> bytes;
  uint64_t size = 0;

  uint32_t num_blocks() const { return static_cast<uint32_t>(mins.size()); }
  /// Number of values in block b (kBlockValues for all but the last).
  uint32_t BlockCount(uint32_t b) const {
    const uint64_t lo = uint64_t(b) * kBlockValues;
    const uint64_t n = size - lo;
    return n < kBlockValues ? static_cast<uint32_t>(n) : kBlockValues;
  }
  bool empty() const { return size == 0; }
};

/// Owned backing storage for a CompressedLevelView.
struct CompressedLevel {
  std::vector<Value> mins;
  std::vector<uint32_t> starts;  // always num_blocks + 1 (starts[0] == 0)
  std::vector<uint8_t> bytes;
  uint64_t size = 0;

  CompressedLevelView View() const {
    return {std::span<const Value>(mins), std::span<const uint32_t>(starts),
            std::span<const uint8_t>(bytes), size};
  }
  uint64_t ResidentBytes() const {
    return mins.size() * sizeof(Value) + starts.size() * sizeof(uint32_t) +
           bytes.size();
  }
};

/// Bytes a view occupies (skip table + payload), for budget charging.
inline uint64_t ViewResidentBytes(const CompressedLevelView& v) {
  return v.mins.size() * sizeof(Value) + v.starts.size() * sizeof(uint32_t) +
         v.bytes.size();
}

/// Encodes `values` into `out` (cleared first). Deterministic: the
/// same input always yields the same bytes.
void EncodeLevel(std::span<const Value> values, CompressedLevel* out);

/// Appends blocks for values[from_block*B ...] to a partially-filled
/// CompressedLevel whose blocks [0, from_block) are already present
/// (mins/starts/bytes sized accordingly, starts has from_block+1
/// entries). Used by PatchFrom to re-encode only touched blocks.
void EncodeLevelTail(std::span<const Value> values, uint32_t from_block,
                     CompressedLevel* out);

/// Decodes block b (including its leading min) into out[0..count).
/// `out` must hold kBlockValues entries. Returns the count.
uint32_t DecodeBlock(const CompressedLevelView& level, uint32_t block,
                     Value* out);

/// Block-decode cache. Hot consumers (the join executor, BigJoin's
/// expansion) keep one per compressed input and thread it through the
/// run kernels; after DecodeBlockCached, `vals` points at the decoded
/// block. Two backing modes:
///
///   - Inline (default): holds the single most recent block in
///     `inline_vals`. Tries are walked in ascending position order, so
///     consecutive sibling ranges usually land in the block the cache
///     already holds — enough for a one-shot probe (Trie::SeekInRange)
///     or a monotone walk (BigJoin's per-level descent).
///   - Arena-backed: an owner that revisits scattered ranges of one
///     level many times per run (the leapfrog executor's inner Descend
///     loops) binds the cache to a level-wide scratch buffer plus a
///     decoded-block bitmap. Each block then decodes at most once per
///     owner lifetime and every later touch is a pointer hit — without
///     this, every small sibling range re-decodes a kBlockValues-wide
///     block to read a handful of values. Caches bound to the same
///     arena may safely decode concurrently interleaved blocks: slices
///     are disjoint per block and the encoder is deterministic.
///
/// Identity is the payload address + block index, so one inline cache
/// object can serve any level (a different level simply misses); an
/// arena only serves the payload it was sized for (`arena_id`).
struct DecodeCache {
  const uint8_t* id = nullptr;  // payload identity of current block
  uint32_t block = 0;
  uint32_t count = 0;       // values decoded at vals
  Value* vals = nullptr;    // current block (inline_vals or arena slice)
  const uint8_t* arena_id = nullptr;  // payload the arena is bound to
  Value* arena = nullptr;             // num_blocks * kBlockValues values
  uint64_t* decoded = nullptr;        // 1 bit per block
  Value inline_vals[kBlockValues];
};

/// DecodeBlock through `cache`: a hit returns the cached count, a miss
/// decodes (into the bound arena slice, else inline) and restamps.
/// `decodes` (when non-null) counts actual decodes — the
/// "blocks_decoded" the kernels report; arena bitmap hits don't count.
inline uint32_t DecodeBlockCached(const CompressedLevelView& level,
                                  uint32_t block, DecodeCache* cache,
                                  uint64_t* decodes) {
  if (cache->id == level.bytes.data() && cache->block == block &&
      cache->vals != nullptr) {
    return cache->count;
  }
  if (cache->arena_id == level.bytes.data()) {
    Value* slot = cache->arena + size_t(block) * kBlockValues;
    uint64_t& word = cache->decoded[block >> 6];
    const uint64_t bit = uint64_t{1} << (block & 63);
    if ((word & bit) != 0) {
      cache->count = level.BlockCount(block);
    } else {
      cache->count = DecodeBlock(level, block, slot);
      word |= bit;
      if (decodes != nullptr) ++*decodes;
    }
    cache->vals = slot;
  } else {
    cache->count = DecodeBlock(level, block, cache->inline_vals);
    cache->vals = cache->inline_vals;
    if (decodes != nullptr) ++*decodes;
  }
  cache->id = level.bytes.data();
  cache->block = block;
  return cache->count;
}

/// Structural validation for mapped (untrusted) levels: span sizes
/// consistent, starts monotone and within bytes, every block decodes
/// to exactly its count without reading past its payload. Does NOT
/// check sorted-run structure — the trie layer does that with the
/// child arrays in hand.
Status ValidateCompressedLevel(const CompressedLevelView& level);

}  // namespace adj::storage::blockcodec

#endif  // ADJ_STORAGE_BLOCK_CODEC_H_
