#ifndef ADJ_STORAGE_WRITE_BATCH_H_
#define ADJ_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace adj::storage {

/// One coalesced tuple-level change set against a single relation
/// version: rows to add and tombstones to drop, disjoint sets, each
/// lexicographically sorted and duplicate-free. Catalog::Apply appends
/// one DeltaBatch per written name; the chain hangs off the catalog
/// entry (immutable base + ordered deltas) until compaction folds it
/// into a new base. The index cache keeps a handle per delta so a
/// cached index of the pre-write relation can be *patched* into the
/// post-write one instead of being rebuilt (merge-on-read).
struct DeltaBatch {
  Relation inserts;  // sorted, unique, disjoint from deletes
  Relation deletes;  // tombstones; sorted, unique

  uint64_t rows() const { return inserts.size() + deletes.size(); }
  uint64_t SizeBytes() const {
    return inserts.SizeBytes() + deletes.SizeBytes();
  }
};

/// Applies one delta to a sorted duplicate-free row payload:
/// out = (base \ deletes) ∪ inserts, sorted and unique. Cost is
/// O(delta · log base) locate work — galloping lower-bound probes, the
/// Leapfrog seek discipline (arity-1 payloads are strictly increasing
/// flat runs and go through wcoj::intersect::SeekGEQ itself) — plus
/// run-copies of the untouched stretches between events; base is never
/// re-sorted. This one kernel maintains both the catalog's effective
/// relation and the index cache's merge-on-read patch (where `base` is
/// a cached canonical permuted payload and the delta rows have been
/// permuted to match). `inserts`/`deletes` follow DeltaBatch's
/// contract: sorted, unique, mutually disjoint.
void MergeDeltaRows(std::span<const Value> base, int arity,
                    std::span<const Value> inserts,
                    std::span<const Value> deletes, std::vector<Value>* out);

/// Lexicographic three-way compare of two arity-length tuples.
int CompareRows(const Value* a, const Value* b, int arity);

/// First tuple index in [hint, rows.size()/arity) of the sorted-unique
/// arity-strided `rows` whose tuple is lexicographically >= `t` —
/// the galloping probe MergeDeltaRows positions with, exported for
/// presence checks against a canonical payload.
size_t RowLowerBound(std::span<const Value> rows, int arity, const Value* t,
                     size_t hint = 0);

/// The net delta equivalent to applying `first` then `then` to any row
/// set: netI = (I1 \ D2) ∪ I2, netD = (D1 ∪ D2) \ netI. Used by the
/// index cache to keep one composed delta per cached payload when a
/// relation is written several times between binds.
DeltaBatch ComposeDelta(const DeltaBatch& first, const DeltaBatch& then);

/// An ordered group of catalog mutations applied atomically by
/// Catalog::Apply / api::Database::Apply — the write surface that
/// replaced the ad-hoc Put / PutShared / Alias trio (those survive as
/// thin wrappers over one-op batches).
///
/// Ops execute in the order they were queued; tuple ops against one
/// relation coalesce into a single DeltaBatch per Apply (an insert
/// cancels a queued tombstone of the same tuple and vice versa — last
/// op wins, exactly as if applied one by one). Validation is deferred
/// to Apply, which checks every op against the live catalog (names
/// resolve, tuple arities match) before mutating anything: a rejected
/// batch leaves the catalog untouched.
class WriteBatch {
 public:
  /// Queues one tuple for insertion into `relation`. Inserting a tuple
  /// the relation already holds is a no-op under set semantics (but
  /// still marks the relation written).
  void Insert(std::string relation, std::vector<Value> tuple);
  void Insert(const std::string& relation,
              std::initializer_list<Value> tuple) {
    Insert(relation, std::vector<Value>(tuple));
  }

  /// Queues a tombstone: removes the tuple from `relation` if present
  /// (all copies, set semantics); a tombstone of an absent tuple is a
  /// no-op.
  void Delete(std::string relation, std::vector<Value> tuple);
  void Delete(const std::string& relation,
              std::initializer_list<Value> tuple) {
    Delete(relation, std::vector<Value>(tuple));
  }

  /// Queues a create-or-replace of `name` with an owned relation: the
  /// new entry starts a fresh base with an empty delta chain.
  void Create(std::string name, Relation rel);

  /// Create-or-replace with an already-shared relation (no tuple data
  /// copied). A null relation fails the batch's validation at Apply.
  void Create(std::string name, std::shared_ptr<const Relation> rel);

  /// Queues a rebind of `alias` to the relation version `target`
  /// resolves to at this point in the batch. Apply fails (NotFound,
  /// nothing applied) if `target` resolves to nothing.
  void AliasRelation(std::string alias, std::string target);

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

  /// Distinct relation names this batch writes (any op kind), in
  /// queue-first order — what callers use to reason about which cache
  /// entries a batch can invalidate.
  std::vector<std::string> TouchedNames() const;

 private:
  friend class Catalog;

  struct Op {
    enum Kind { kInsert, kDelete, kCreate, kAlias };
    Kind kind = kInsert;
    std::string name;
    std::string target;                   // kAlias
    std::vector<Value> tuple;             // kInsert / kDelete
    std::shared_ptr<const Relation> rel;  // kCreate
  };
  std::vector<Op> ops_;
};

}  // namespace adj::storage

#endif  // ADJ_STORAGE_WRITE_BATCH_H_
