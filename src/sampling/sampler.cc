#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace adj::sampling {

uint64_t ChernoffSampleCount(double p, double delta) {
  if (p <= 0 || delta <= 0 || delta >= 1) return 1;
  return static_cast<uint64_t>(
      std::ceil(0.5 / (p * p) * std::log(2.0 / delta)));
}

StatusOr<SampleEstimate> SampleCardinality(const query::Query& q,
                                           const storage::Catalog& db,
                                           const query::AttributeOrder& order,
                                           const SamplerOptions& options,
                                           const dist::NetworkModel& net,
                                           int num_servers) {
  if (order.empty()) return Status::InvalidArgument("empty order");
  WallTimer timer;
  SampleEstimate est;

  // Resolve tries for the sampling order through the shared index
  // layer: sampling warms exactly the bound indexes the later join
  // will borrow, and repeated sampling passes rebuild nothing.
  const std::vector<int> rank = query::RankOf(order, q.num_attrs());
  std::vector<wcoj::SharedPreparedRelation> prepared;
  std::vector<wcoj::JoinInput> inputs;
  prepared.reserve(q.num_atoms());
  for (const query::Atom& atom : q.atoms()) {
    StatusOr<std::shared_ptr<const storage::Relation>> base =
        db.GetShared(atom.relation);
    if (!base.ok()) return base.status();
    StatusOr<wcoj::SharedPreparedRelation> prep = wcoj::PrepareRelationShared(
        std::move(*base), atom.schema.attrs(), rank, db.index_cache());
    if (!prep.ok()) return prep.status();
    prepared.push_back(std::move(prep.value()));
  }
  for (const wcoj::SharedPreparedRelation& p : prepared) {
    inputs.push_back(wcoj::JoinInput{&p.trie(), p.attrs});
  }

  // val(A): intersect the A-projections of the relations containing A.
  const AttrId attr_a = order[0];
  std::vector<Value> val_a;
  bool first = true;
  for (const wcoj::SharedPreparedRelation& p : prepared) {
    if (p.attrs.empty() || p.attrs[0] != attr_a) continue;
    // A is the first trie level (it ranks first), so level-0 values
    // are exactly the distinct A-projection.
    std::span<const Value> level0 = p.trie().values(0);
    if (first) {
      val_a.assign(level0.begin(), level0.end());
      first = false;
    } else {
      std::vector<Value> merged;
      merged.reserve(std::min(val_a.size(), level0.size()));
      std::set_intersection(val_a.begin(), val_a.end(), level0.begin(),
                            level0.end(), std::back_inserter(merged));
      val_a = std::move(merged);
    }
  }
  if (first) {
    return Status::InvalidArgument(
        "first order attribute appears in no atom");
  }
  est.val_a_size = val_a.size();
  if (val_a.empty()) {
    est.cardinality = 0;
    est.seconds = timer.Seconds();
    return est;
  }

  // Draw k values with replacement and run pinned Leapfrogs. The time
  // budget is checked between samples: an exhausted budget truncates
  // the pass and the mean is taken over the samples actually drawn —
  // at least one always runs so a truncated estimate is still an
  // estimate, never a division by zero.
  Rng rng(options.seed);
  const uint64_t k = std::max<uint64_t>(1, options.num_samples);
  wcoj::JoinStats stats;
  double sum = 0.0;
  uint64_t drawn = 0;
  std::vector<Value> sampled;
  sampled.reserve(k);
  for (uint64_t i = 0; i < k; ++i) {
    if (i > 0 && timer.Seconds() >= options.max_total_seconds) break;
    const Value v = val_a[rng.Uniform(val_a.size())];
    sampled.push_back(v);
    ++drawn;
    StatusOr<uint64_t> count =
        wcoj::LeapfrogJoin(inputs, order, /*emit=*/nullptr, &stats,
                           options.per_sample_limits, v);
    if (!count.ok()) {
      // A capped sample contributes its partial count — a documented
      // bias source; with default (unlimited) limits this never fires.
      continue;
    }
    sum += double(*count);
  }
  est.samples = drawn;
  est.cardinality = double(est.val_a_size) * (sum / double(drawn));

  // Scaled per-level counts: X̄ per level times |val(A)|.
  est.est_tuples_at_level.resize(stats.tuples_at_level.size());
  for (size_t i = 0; i < stats.tuples_at_level.size(); ++i) {
    est.est_tuples_at_level[i] =
        double(est.val_a_size) * double(stats.tuples_at_level[i]) /
        double(drawn);
  }

  est.seconds = timer.Seconds();
  est.beta_extensions_per_s =
      stats.seconds > 0 ? double(stats.extensions) / stats.seconds : 0.0;

  if (options.distributed) {
    // Sec. IV: before sampling, the database is reduced — shuffle the
    // A-projections, intersect, semijoin-filter with the sampled
    // values, then shuffle only the reduced relations.
    std::sort(sampled.begin(), sampled.end());
    sampled.erase(std::unique(sampled.begin(), sampled.end()),
                  sampled.end());
    uint64_t copies = 0, bytes = 0;
    for (const wcoj::SharedPreparedRelation& p : prepared) {
      if (!p.attrs.empty() && p.attrs[0] == attr_a) {
        // Projection shuffle.
        copies += p.trie().values(0).size();
        bytes += p.trie().values(0).size() * sizeof(Value);
        // Reduced relation shuffle.
        storage::Relation reduced = p.rel().SemiJoinFilter(0, sampled);
        copies += reduced.size();
        bytes += reduced.SizeBytes();
      } else {
        copies += p.rel().size();
        bytes += p.rel().SizeBytes();
      }
    }
    est.comm.tuple_copies = copies;
    est.comm.bytes = bytes;
    est.comm.blocks = uint64_t(num_servers) * q.num_atoms();
    est.comm.seconds =
        dist::PullSeconds(net, est.comm.blocks, bytes, num_servers);
  }
  return est;
}

}  // namespace adj::sampling
