#ifndef ADJ_SAMPLING_SKETCH_ESTIMATOR_H_
#define ADJ_SAMPLING_SKETCH_ESTIMATOR_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace adj::sampling {

/// Classic sketch-based (System-R style) cardinality estimator: per
/// attribute distinct counts with uniformity + independence
/// assumptions. Included as the baseline Sec. IV argues against —
/// its error on cyclic joins is orders of magnitude worse than
/// sampling — and as the cheap order-selection proxy the HCubeJ
/// (comm-first) baseline uses.
class SketchEstimator {
 public:
  static StatusOr<SketchEstimator> Build(const query::Query& q,
                                         const storage::Catalog& db);

  /// Estimated size of the join of the atoms in `atoms`:
  ///   prod |R_i| / prod_A (product of the largest (c_A - 1) distinct
  ///   counts of A among the joined atoms)
  /// — the independence/inclusion heuristic of [17].
  double EstimateJoin(AtomMask atoms) const;

  /// Estimated join size of all atoms whose schema is contained in
  /// `attrs` — the binding-count proxy for order selection.
  double EstimateBindings(AttrMask attrs) const;

  uint64_t distinct(int atom, AttrId a) const {
    return distinct_[size_t(atom)][size_t(a)];
  }
  uint64_t atom_size(int atom) const { return sizes_[size_t(atom)]; }

 private:
  const query::Query* q_ = nullptr;
  std::vector<uint64_t> sizes_;                 // per atom
  std::vector<std::vector<uint64_t>> distinct_; // per atom per attr (0 if absent)
};

}  // namespace adj::sampling

#endif  // ADJ_SAMPLING_SKETCH_ESTIMATOR_H_
