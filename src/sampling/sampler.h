#ifndef ADJ_SAMPLING_SAMPLER_H_
#define ADJ_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "query/attribute_order.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "wcoj/leapfrog.h"

namespace adj::sampling {

struct SamplerOptions {
  uint64_t num_samples = 1000;
  uint64_t seed = 42;
  /// Per-sample work cap: one pathological heavy hitter should not
  /// stall the whole estimation.
  wcoj::JoinLimits per_sample_limits;
  /// Account the distributed database-reduction shuffle (Sec. IV,
  /// "Distributed Sampling").
  bool distributed = true;
  /// Total wall-clock budget for this estimation pass. When the clock
  /// runs out mid-loop the sampler stops early and scales the mean by
  /// the samples actually drawn — a coarser estimate, not an error.
  /// SampleEstimate::samples reports the drawn count so callers can
  /// see the truncation. Infinite (default) = draw all num_samples.
  double max_total_seconds = std::numeric_limits<double>::infinity();
};

/// Outcome of one sampling-based estimation run (Sec. IV).
struct SampleEstimate {
  double cardinality = 0.0;  // estimated |T| = |val(A)| * mean(X)
  uint64_t val_a_size = 0;   // |val(A)|
  uint64_t samples = 0;      // k
  double seconds = 0.0;      // measured sampling wall time
  /// Measured extension rate — the beta the optimizer reuses ("we set
  /// beta_i by reusing statistics gathered during sampling").
  double beta_extensions_per_s = 0.0;
  /// Scaled per-order-position intermediate counts: estimate of |T_i|
  /// under the order used for sampling.
  std::vector<double> est_tuples_at_level;
  /// Modeled shuffle of the semijoin-reduced database.
  dist::CommStats comm;
};

/// Estimates |Q(D)| by the paper's val(A)-sampling scheme: compute
/// val(A) for A = order[0] by intersecting the A-projections of every
/// relation containing A, draw k values uniformly, run Leapfrog with A
/// pinned to each value, and scale the mean count by |val(A)|.
StatusOr<SampleEstimate> SampleCardinality(const query::Query& q,
                                           const storage::Catalog& db,
                                           const query::AttributeOrder& order,
                                           const SamplerOptions& options,
                                           const dist::NetworkModel& net = {},
                                           int num_servers = 4);

/// Chernoff–Hoeffding sample count (Lemma 2): k samples guarantee
/// P(|X̄ - mu| > p*b) < delta for k = ceil(-0.5 p^-2 ln(delta/2))…
/// i.e. k = ceil(0.5 * p^-2 * ln(2/delta)).
uint64_t ChernoffSampleCount(double p, double delta);

}  // namespace adj::sampling

#endif  // ADJ_SAMPLING_SAMPLER_H_
