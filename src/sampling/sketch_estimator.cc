#include "sampling/sketch_estimator.h"

#include <algorithm>

namespace adj::sampling {

StatusOr<SketchEstimator> SketchEstimator::Build(const query::Query& q,
                                                 const storage::Catalog& db) {
  SketchEstimator est;
  est.q_ = &q;
  est.sizes_.resize(q.num_atoms());
  est.distinct_.assign(q.num_atoms(),
                       std::vector<uint64_t>(q.num_attrs(), 0));
  for (int i = 0; i < q.num_atoms(); ++i) {
    StatusOr<const storage::Relation*> base = db.Get(q.atom(i).relation);
    if (!base.ok()) return base.status();
    const storage::Relation& rel = **base;
    est.sizes_[size_t(i)] = rel.size();
    const storage::Schema& schema = q.atom(i).schema;
    for (int c = 0; c < schema.arity(); ++c) {
      est.distinct_[size_t(i)][size_t(schema.attr(c))] =
          rel.DistinctColumn(c).size();
    }
  }
  return est;
}

double SketchEstimator::EstimateJoin(AtomMask atoms) const {
  if (atoms == 0) return 1.0;
  double size = 1.0;
  for (int i = 0; i < q_->num_atoms(); ++i) {
    if (atoms & (AtomMask(1) << i)) size *= double(sizes_[size_t(i)]);
  }
  for (int a = 0; a < q_->num_attrs(); ++a) {
    std::vector<double> counts;
    for (int i = 0; i < q_->num_atoms(); ++i) {
      if ((atoms & (AtomMask(1) << i)) == 0) continue;
      if (distinct_[size_t(i)][size_t(a)] > 0) {
        counts.push_back(double(distinct_[size_t(i)][size_t(a)]));
      }
    }
    if (counts.size() < 2) continue;
    // Divide by the (c-1) largest distinct counts — the standard
    // containment-of-values assumption.
    std::sort(counts.rbegin(), counts.rend());
    for (size_t j = 0; j + 1 < counts.size(); ++j) {
      size /= std::max(1.0, counts[j]);
    }
  }
  return std::max(size, 0.0);
}

double SketchEstimator::EstimateBindings(AttrMask attrs) const {
  AtomMask atoms = 0;
  for (int i = 0; i < q_->num_atoms(); ++i) {
    if ((q_->atom(i).schema.Mask() & ~attrs) == 0) {
      atoms |= (AtomMask(1) << i);
    }
  }
  return EstimateJoin(atoms);
}

}  // namespace adj::sampling
