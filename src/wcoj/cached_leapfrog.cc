#include "wcoj/cached_leapfrog.h"

namespace adj::wcoj {

StatusOr<CachedJoinResult> CachedLeapfrogJoin(
    const std::vector<JoinInput>& inputs, const query::AttributeOrder& order,
    uint64_t cache_capacity_values, JoinStats* stats,
    const JoinLimits& limits) {
  IntersectionCache cache(cache_capacity_values);
  JoinStats local;
  StatusOr<uint64_t> count = LeapfrogJoin(inputs, order, /*emit=*/nullptr,
                                          &local, limits, /*first_value=*/{},
                                          &cache);
  if (stats != nullptr) stats->Merge(local);
  if (!count.ok()) return count.status();
  CachedJoinResult result;
  result.count = *count;
  result.cache_hits = local.cache_hits;
  result.cache_misses = local.cache_misses;
  result.cache_stored_values = cache.stored_values();
  return result;
}

}  // namespace adj::wcoj
