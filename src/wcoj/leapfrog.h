#ifndef ADJ_WCOJ_LEAPFROG_H_
#define ADJ_WCOJ_LEAPFROG_H_

#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include <memory>

#include "common/status.h"
#include "query/attribute_order.h"
#include "storage/index_cache.h"
#include "storage/relation.h"
#include "storage/trie.h"

namespace adj::wcoj {

/// One trie participating in a Leapfrog join. `attrs[l]` is the query
/// attribute indexed by trie level l; the attrs must appear in the same
/// relative order as in the join's global attribute order.
struct JoinInput {
  const storage::Trie* trie = nullptr;
  std::vector<AttrId> attrs;
};

/// Per-run counters. `tuples_at_level[i]` is |T_{i+1}| of the paper:
/// the number of partial bindings emitted while extending to the
/// attribute at order position i. The computation-cost model and the
/// Fig. 6 / Fig. 8 experiments are built from these.
struct JoinStats {
  std::vector<uint64_t> tuples_at_level;
  uint64_t seeks = 0;
  uint64_t extensions = 0;  // == sum(tuples_at_level)
  double seconds = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Kernel dispatch counters: how many 2-way intersections ran on a
  // SIMD kernel vs the scalar baseline (see wcoj/intersect.h).
  uint64_t simd_intersections = 0;
  uint64_t scalar_fallbacks = 0;
  // Compressed-level blocks decoded into kernel scratch (0 when every
  // bound trie is raw).
  uint64_t blocks_decoded = 0;

  void Merge(const JoinStats& other);
};

/// Abort thresholds emulating the paper's failure modes (memory
/// overflow / 12-hour timeout). `max_extensions` bounds Leapfrog's
/// total work (it streams results, so this is a time-style budget);
/// `max_materialized_rows` bounds engines that materialize
/// intermediates (binary join, BigJoin) — the real out-of-memory
/// mode of the paper's multi-round baselines.
struct JoinLimits {
  uint64_t max_extensions = std::numeric_limits<uint64_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  uint64_t max_materialized_rows = std::numeric_limits<uint64_t>::max();
};

/// Optional memoization of per-level intersections — the CacheTrieJoin
/// mechanism behind the HCubeJ+Cache baseline. Entries are keyed by
/// the exact set of sibling ranges being intersected; capacity is a
/// value budget shared across levels, mimicking the fixed cache memory
/// that HCube storage competes with.
class IntersectionCache {
 public:
  explicit IntersectionCache(uint64_t capacity_values)
      : capacity_(capacity_values) {}

  struct Entry {
    std::vector<Value> vals;       // intersection result
    std::vector<uint32_t> idxs;    // per value: index in each input range
  };

  const Entry* Lookup(uint64_t key) const;

  /// Stores `entry` and returns the resident copy (stable address: the
  /// map never evicts, and rehashing preserves node addresses), so the
  /// caller iterates the stored entry instead of keeping its own copy.
  /// Returns nullptr — leaving `entry` untouched — when the value
  /// budget is exhausted.
  const Entry* Insert(uint64_t key, Entry&& entry);

  uint64_t stored_values() const { return stored_values_; }
  uint64_t capacity() const { return capacity_; }
  void Clear();

 private:
  uint64_t capacity_;
  uint64_t stored_values_ = 0;
  std::unordered_map<uint64_t, Entry> map_;
};

/// Callback receiving each result tuple, in attribute-order layout
/// (element i = value of order[i]).
using EmitFn = std::function<void(std::span<const Value>)>;

/// Leapfrog TrieJoin (Alg. 1): evaluates the join of `inputs` under
/// `order`, emitting result tuples through `emit` (pass nullptr to
/// count only). `first_value`, when set, pins the first attribute to
/// one value — the sampler's "Leapfrog starting from A with the
/// attribute fixed as a".
///
/// Returns the number of result tuples, or ResourceExhausted /
/// DeadlineExceeded when a limit trips.
StatusOr<uint64_t> LeapfrogJoin(const std::vector<JoinInput>& inputs,
                                const query::AttributeOrder& order,
                                const EmitFn* emit, JoinStats* stats,
                                const JoinLimits& limits = {},
                                std::optional<Value> first_value = {},
                                IntersectionCache* cache = nullptr);

/// A relation re-columned and indexed for a particular attribute
/// order: columns permuted so attribute ranks ascend, then sorted,
/// deduplicated, and trie-built.
struct PreparedRelation {
  storage::Relation rel;
  storage::Trie trie;
  std::vector<AttrId> attrs;  // attribute of each trie level
};

/// Binds `base` (the atom's stored relation) to `atom_attrs` and
/// prepares it for a join whose attribute ranks are `rank`
/// (rank[attr] = position in the global order).
///
/// Builds a private copy every call — measurement and micro-bench
/// paths only. Execution paths use PrepareRelationShared, which
/// resolves the same artifact through the shared index layer.
StatusOr<PreparedRelation> PrepareRelation(const storage::Relation& base,
                                           const std::vector<AttrId>& atom_attrs,
                                           const std::vector<int>& rank);

/// A bound atom whose index is borrowed from the shared cache: the
/// PreparedIndex (permuted sorted relation + trie) is pointer-shared
/// with every other consumer of the same (relation, column order) —
/// nothing is rebuilt or deep-copied.
struct SharedPreparedRelation {
  std::shared_ptr<const storage::PreparedIndex> index;
  std::vector<AttrId> attrs;  // attribute of each trie level

  const storage::Relation& rel() const { return *index->rel; }
  const storage::Trie& trie() const { return *index->trie; }
};

/// Cache-backed PrepareRelation: resolves the index for
/// (base identity, column order implied by `atom_attrs` under `rank`)
/// through `cache`, building it only on first use. `stats`, when
/// given, records whether this call built or reused.
StatusOr<SharedPreparedRelation> PrepareRelationShared(
    std::shared_ptr<const storage::Relation> base,
    const std::vector<AttrId>& atom_attrs, const std::vector<int>& rank,
    storage::IndexCache& cache, storage::IndexBuildStats* stats = nullptr);

/// A bound atom resolved to its trie-less artifact: the permuted,
/// sorted relation shared by pointer — what hash-join-only consumers
/// bind, skipping the trie build entirely while still sharing the row
/// payload with trie-backed binds of the same column order.
struct SharedBoundRelation {
  std::shared_ptr<const storage::Relation> rel;
  std::vector<AttrId> attrs;  // attribute of each column
};

/// Trie-less PrepareRelationShared: same key resolution, but the
/// artifact is the permuted sorted relation alone (no trie is built).
StatusOr<SharedBoundRelation> PrepareRelationRowsShared(
    std::shared_ptr<const storage::Relation> base,
    const std::vector<AttrId>& atom_attrs, const std::vector<int>& rank,
    storage::IndexCache& cache, storage::IndexBuildStats* stats = nullptr);

/// rank[attr] = attr for `num_attrs` attributes — the rank vector that
/// binds an atom with columns in ascending attribute-id order (the
/// normalization the hash-join paths and sub-query sampling share).
std::vector<int> AscendingRank(int num_attrs);

}  // namespace adj::wcoj

#endif  // ADJ_WCOJ_LEAPFROG_H_
