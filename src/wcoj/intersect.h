#ifndef ADJ_WCOJ_INTERSECT_H_
#define ADJ_WCOJ_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.h"

/// Sorted-set intersection kernels — the innermost loop of Leapfrog
/// TrieJoin, factored out of the executor so one implementation serves
/// Descend, the intersection cache, and BigJoin's expansion step.
///
/// All kernels operate on flat `std::span<const Value>` views over
/// trie levels (storage::Trie::RangeSpan) and write into
/// caller-provided buffers: they never allocate, so the join executor
/// can run them out of a preallocated arena with zero heap traffic in
/// steady state.
///
/// Input contract: every span is strictly increasing (a trie sibling
/// range is a sorted duplicate-free value run). Positions emitted are
/// relative to the span start; callers add the range's `lo` to get
/// absolute trie indexes.
///
/// The 2-way kernel has three implementations — a scalar
/// galloping-merge baseline and SSE4.2 / AVX2 block-compare variants —
/// selected once per process by runtime CPU detection (overridable for
/// tests and benchmarks via SetKernel). Non-x86 builds compile the
/// scalar path only and dispatch resolves to it.
namespace adj::wcoj::intersect {

/// Which 2-way implementation executes. kAuto resolves to the widest
/// kernel the CPU supports at first use.
enum class Kernel { kAuto, kScalar, kSse42, kAvx2 };

/// Forces a specific kernel (kAuto restores detection). Forcing a
/// kernel the CPU lacks falls back to scalar. Affects the whole
/// process; meant for tests ("SIMD and scalar agree bit-for-bit") and
/// the micro-bench, not concurrent reconfiguration under load.
void SetKernel(Kernel k);

/// The kernel 2-way intersections currently dispatch to (never kAuto).
Kernel ActiveKernel();

/// Stable lowercase name ("scalar", "sse4.2", "avx2") for reports.
const char* KernelName(Kernel k);

/// Whether this build + CPU can execute `k`.
bool CpuSupports(Kernel k);

/// Counters a consumer accumulates locally and flushes once per run —
/// the executor keeps these off the hot path (no per-seek branches on
/// an optional stats sink).
struct KernelStats {
  uint64_t seeks = 0;               // galloping SeekGEQ invocations
  uint64_t simd_intersections = 0;  // 2-way calls served by SSE/AVX
  uint64_t scalar_fallbacks = 0;    // 2-way calls served scalar
};

/// First index in [hint, s.size()) with s[i] >= v, or s.size() if
/// none. Galloping (exponential) search from `hint` — O(log distance).
/// The Leapfrog "seek" primitive.
size_t SeekGEQ(std::span<const Value> s, Value v, size_t hint = 0,
               KernelStats* stats = nullptr);

/// 2-way intersection: writes each common value to out_vals and, when
/// out_pa / out_pb are non-null, its position within a / b at the
/// given element strides (strided so k-way callers can scatter
/// straight into row-major position matrices). Buffers need capacity
/// min(a.size(), b.size()). out_vals may alias a.data() or b.data()
/// (in-place compaction is safe: writes trail reads). Returns the
/// number of common values. Dispatches per ActiveKernel().
size_t Intersect2(std::span<const Value> a, std::span<const Value> b,
                  Value* out_vals, uint32_t* out_pa = nullptr,
                  size_t stride_a = 1, uint32_t* out_pb = nullptr,
                  size_t stride_b = 1, KernelStats* stats = nullptr);

/// Fixed-implementation variants, for the agreement tests and the
/// SIMD-vs-scalar micro-bench gate. The SIMD variants must only be
/// called when CpuSupports the matching kernel.
size_t Intersect2Scalar(std::span<const Value> a, std::span<const Value> b,
                        Value* out_vals, uint32_t* out_pa, size_t stride_a,
                        uint32_t* out_pb, size_t stride_b,
                        KernelStats* stats);
size_t Intersect2Sse42(std::span<const Value> a, std::span<const Value> b,
                       Value* out_vals, uint32_t* out_pa, size_t stride_a,
                       uint32_t* out_pb, size_t stride_b, KernelStats* stats);
size_t Intersect2Avx2(std::span<const Value> a, std::span<const Value> b,
                      Value* out_vals, uint32_t* out_pa, size_t stride_a,
                      uint32_t* out_pb, size_t stride_b, KernelStats* stats);

/// Caller-provided scratch for IntersectK — carved from the join
/// executor's arena. pa/pb need capacity m = min span size; ord needs
/// capacity k.
struct KScratch {
  uint32_t* pa = nullptr;
  uint32_t* pb = nullptr;
  uint32_t* ord = nullptr;
};

/// k-way intersection by pairwise reduction, smallest spans first (so
/// every intermediate fits in m = the overall minimum span size).
/// Writes common values to out_vals (capacity m) and, per value, the k
/// positions — one per input span, in the *given* span order — row-
/// major into out_pos (capacity m * k). Returns the common count.
size_t IntersectK(const std::span<const Value>* views, int k,
                  Value* out_vals, uint32_t* out_pos,
                  const KScratch& scratch, KernelStats* stats = nullptr);

/// Values-only k-way reduction (BigJoin's expansion step needs no
/// positions). out_vals capacity: the minimum span size.
size_t IntersectKValues(const std::span<const Value>* views, int k,
                        Value* out_vals, KernelStats* stats = nullptr);

}  // namespace adj::wcoj::intersect

#endif  // ADJ_WCOJ_INTERSECT_H_
