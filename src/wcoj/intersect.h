#ifndef ADJ_WCOJ_INTERSECT_H_
#define ADJ_WCOJ_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.h"
#include "storage/block_codec.h"

/// Sorted-set intersection kernels — the innermost loop of Leapfrog
/// TrieJoin, factored out of the executor so one implementation serves
/// Descend, the intersection cache, and BigJoin's expansion step.
///
/// All kernels operate on flat `std::span<const Value>` views over
/// trie levels (storage::Trie::RangeSpan) and write into
/// caller-provided buffers: they never allocate, so the join executor
/// can run them out of a preallocated arena with zero heap traffic in
/// steady state.
///
/// Input contract: every span is strictly increasing (a trie sibling
/// range is a sorted duplicate-free value run). Positions emitted are
/// relative to the span start; callers add the range's `lo` to get
/// absolute trie indexes.
///
/// The 2-way kernel has three implementations — a scalar
/// galloping-merge baseline and SSE4.2 / AVX2 block-compare variants —
/// selected once per process by runtime CPU detection (overridable for
/// tests and benchmarks via SetKernel). Non-x86 builds compile the
/// scalar path only and dispatch resolves to it.
namespace adj::wcoj::intersect {

/// Which 2-way implementation executes. kAuto resolves to the widest
/// kernel the CPU supports at first use.
enum class Kernel { kAuto, kScalar, kSse42, kAvx2 };

/// Forces a specific kernel (kAuto restores detection). Forcing a
/// kernel the CPU lacks falls back to scalar. Affects the whole
/// process; meant for tests ("SIMD and scalar agree bit-for-bit") and
/// the micro-bench, not concurrent reconfiguration under load.
void SetKernel(Kernel k);

/// The kernel 2-way intersections currently dispatch to (never kAuto).
Kernel ActiveKernel();

/// Stable lowercase name ("scalar", "sse4.2", "avx2") for reports.
const char* KernelName(Kernel k);

/// Whether this build + CPU can execute `k`.
bool CpuSupports(Kernel k);

/// Counters a consumer accumulates locally and flushes once per run —
/// the executor keeps these off the hot path (no per-seek branches on
/// an optional stats sink).
struct KernelStats {
  uint64_t seeks = 0;               // galloping SeekGEQ invocations
  uint64_t simd_intersections = 0;  // 2-way calls served by SSE/AVX
  uint64_t scalar_fallbacks = 0;    // 2-way calls served scalar
  uint64_t blocks_decoded = 0;      // compressed blocks decoded to scratch
};

/// First index in [hint, s.size()) with s[i] >= v, or s.size() if
/// none. Galloping (exponential) search from `hint` — O(log distance).
/// The Leapfrog "seek" primitive.
size_t SeekGEQ(std::span<const Value> s, Value v, size_t hint = 0,
               KernelStats* stats = nullptr);

/// 2-way intersection: writes each common value to out_vals and, when
/// out_pa / out_pb are non-null, its position within a / b at the
/// given element strides (strided so k-way callers can scatter
/// straight into row-major position matrices). Buffers need capacity
/// min(a.size(), b.size()). out_vals may alias a.data() or b.data()
/// (in-place compaction is safe: writes trail reads). Returns the
/// number of common values. Dispatches per ActiveKernel().
size_t Intersect2(std::span<const Value> a, std::span<const Value> b,
                  Value* out_vals, uint32_t* out_pa = nullptr,
                  size_t stride_a = 1, uint32_t* out_pb = nullptr,
                  size_t stride_b = 1, KernelStats* stats = nullptr);

/// Fixed-implementation variants, for the agreement tests and the
/// SIMD-vs-scalar micro-bench gate. The SIMD variants must only be
/// called when CpuSupports the matching kernel.
size_t Intersect2Scalar(std::span<const Value> a, std::span<const Value> b,
                        Value* out_vals, uint32_t* out_pa, size_t stride_a,
                        uint32_t* out_pb, size_t stride_b,
                        KernelStats* stats);
size_t Intersect2Sse42(std::span<const Value> a, std::span<const Value> b,
                       Value* out_vals, uint32_t* out_pa, size_t stride_a,
                       uint32_t* out_pb, size_t stride_b, KernelStats* stats);
size_t Intersect2Avx2(std::span<const Value> a, std::span<const Value> b,
                      Value* out_vals, uint32_t* out_pa, size_t stride_a,
                      uint32_t* out_pb, size_t stride_b, KernelStats* stats);

/// Caller-provided scratch for IntersectK — carved from the join
/// executor's arena. pa/pb need capacity m = min span size; ord needs
/// capacity k.
struct KScratch {
  uint32_t* pa = nullptr;
  uint32_t* pb = nullptr;
  uint32_t* ord = nullptr;
};

/// k-way intersection by pairwise reduction, smallest spans first (so
/// every intermediate fits in m = the overall minimum span size).
/// Writes common values to out_vals (capacity m) and, per value, the k
/// positions — one per input span, in the *given* span order — row-
/// major into out_pos (capacity m * k). Returns the common count.
size_t IntersectK(const std::span<const Value>* views, int k,
                  Value* out_vals, uint32_t* out_pos,
                  const KScratch& scratch, KernelStats* stats = nullptr);

/// Values-only k-way reduction (BigJoin's expansion step needs no
/// positions). out_vals capacity: the minimum span size.
size_t IntersectKValues(const std::span<const Value>* views, int k,
                        Value* out_vals, KernelStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Compressed runs — intersecting block-compressed trie levels directly
// ---------------------------------------------------------------------------
//
// A compressed run is one sibling range [lo, hi) of a block-compressed
// trie level (storage::blockcodec). The kernels below never decompress
// the whole run: SeekGEQRun gallops the block skip table and decodes a
// single block; the intersections walk the overlap block by block,
// decode one block into a caller-owned blockcodec::DecodeCache, and
// feed the dispatched 2-way kernel above — so a compressed run still
// gets the SSE4.2/AVX2 block-compare inner loop, skips whole blocks
// via the skip table, and does no allocation. The caches are the
// reason these kernels stay near raw speed on small sibling ranges:
// a caller that keeps one cache per compressed input across calls
// (the executor's Descend loop, BigJoin's per-binding expansion)
// re-decodes a block only when the walk actually leaves it.
//
// A block may straddle sibling-run boundaries, so only block minima
// whose first position lies inside [lo, hi) are comparable; the
// helpers respect that. Positions emitted for a compressed side are
// relative to the run (add `lo` for absolute trie indexes), matching
// the raw-span contract.

/// One sibling range of a block-compressed level.
struct CompressedRun {
  storage::blockcodec::CompressedLevelView level;
  uint32_t lo = 0;
  uint32_t hi = 0;
  uint32_t size() const { return hi - lo; }
};

/// A tagged raw-or-compressed input for the k-way driver, so one
/// Descend path serves both representations.
struct RunView {
  std::span<const Value> raw;
  CompressedRun comp;
  bool compressed = false;

  size_t size() const { return compressed ? comp.size() : raw.size(); }
  static RunView Raw(std::span<const Value> s) { return {s, {}, false}; }
  static RunView Compressed(CompressedRun r) { return {{}, r, true}; }
};

/// First run-relative index in [hint, r.size()) whose value is >= v,
/// or r.size() if none. Gallops over in-range block minima, then
/// decodes (at most) one block through `cache`.
size_t SeekGEQRun(const CompressedRun& r, Value v, size_t hint,
                  storage::blockcodec::DecodeCache* cache,
                  KernelStats* stats = nullptr);

/// Compressed x raw 2-way intersection. Positions for `a` are
/// run-relative, for `b` span-relative. `cache_a` caches a's block
/// decodes across calls. out_vals may alias b.data() with writes
/// trailing reads (the k-way reduction intersects in place), but must
/// not point into cache_a->vals.
size_t Intersect2CR(const CompressedRun& a, std::span<const Value> b,
                    Value* out_vals, uint32_t* out_pa, size_t stride_a,
                    uint32_t* out_pb, size_t stride_b,
                    storage::blockcodec::DecodeCache* cache_a,
                    KernelStats* stats = nullptr);

/// Compressed x compressed 2-way intersection; one cache per side
/// (they must be distinct objects).
size_t Intersect2CC(const CompressedRun& a, const CompressedRun& b,
                    Value* out_vals, uint32_t* out_pa, size_t stride_a,
                    uint32_t* out_pb, size_t stride_b,
                    storage::blockcodec::DecodeCache* cache_a,
                    storage::blockcodec::DecodeCache* cache_b,
                    KernelStats* stats = nullptr);

/// IntersectK over mixed raw/compressed runs: same output contract
/// (values + row-major k-wide position matrix, positions relative to
/// each run). `caches` is an array of k entries parallel to `views`
/// (entries for raw views are untouched); keeping it alive across
/// calls is what makes consecutive small ranges hit cached blocks.
size_t IntersectKRuns(const RunView* views, int k, Value* out_vals,
                      uint32_t* out_pos, const KScratch& scratch,
                      storage::blockcodec::DecodeCache* caches,
                      KernelStats* stats = nullptr);

/// Values-only variant of IntersectKRuns (BigJoin expansion).
size_t IntersectKValuesRuns(const RunView* views, int k, Value* out_vals,
                            storage::blockcodec::DecodeCache* caches,
                            KernelStats* stats = nullptr);

}  // namespace adj::wcoj::intersect

#endif  // ADJ_WCOJ_INTERSECT_H_
