#ifndef ADJ_WCOJ_CACHED_LEAPFROG_H_
#define ADJ_WCOJ_CACHED_LEAPFROG_H_

#include "wcoj/leapfrog.h"

namespace adj::wcoj {

/// CacheTrieJoin-style Leapfrog (the HCubeJ+Cache baseline of
/// Sec. VII): identical join semantics, but per-level intersection
/// results are memoized in an IntersectionCache whose capacity is
/// whatever memory HCube storage left over. On repetitive sibling
/// ranges (heavy-hitter vertices) this removes redundant
/// intersections; with a starved cache it degenerates to plain
/// Leapfrog — exactly the behaviour the paper reports on LJ/OK.
struct CachedJoinResult {
  uint64_t count = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stored_values = 0;
};

StatusOr<CachedJoinResult> CachedLeapfrogJoin(
    const std::vector<JoinInput>& inputs, const query::AttributeOrder& order,
    uint64_t cache_capacity_values, JoinStats* stats,
    const JoinLimits& limits = {});

}  // namespace adj::wcoj

#endif  // ADJ_WCOJ_CACHED_LEAPFROG_H_
