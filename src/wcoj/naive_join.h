#ifndef ADJ_WCOJ_NAIVE_JOIN_H_
#define ADJ_WCOJ_NAIVE_JOIN_H_

#include <cstdint>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace adj::wcoj {

/// Reference join evaluator: left-deep sequence of in-memory hash
/// joins in atom order, materializing every intermediate result. Used
/// as the test oracle for Leapfrog/HCubeJ/ADJ equivalence tests and as
/// the local join of the binary-join (SparkSQL-like) baseline.
///
/// The result schema is attrs(Q) in ascending attribute-id order.
/// Fails with ResourceExhausted if an intermediate result would exceed
/// `row_limit` rows.
StatusOr<storage::Relation> NaiveJoin(const query::Query& q,
                                      const storage::Catalog& db,
                                      uint64_t row_limit = UINT64_MAX);

/// Hash-joins two materialized relations on their shared attributes.
/// Output schema: union of attributes, ascending by id.
StatusOr<storage::Relation> HashJoin(const storage::Relation& left,
                                     const storage::Relation& right,
                                     uint64_t row_limit = UINT64_MAX);

}  // namespace adj::wcoj

#endif  // ADJ_WCOJ_NAIVE_JOIN_H_
