#include "wcoj/naive_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "wcoj/leapfrog.h"

namespace adj::wcoj {
namespace {

/// Values of `rel` row `r` projected onto schema positions `pos`.
std::vector<Value> ProjectRow(const storage::Relation& rel, uint64_t r,
                              const std::vector<int>& pos) {
  std::vector<Value> out(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) out[i] = rel.At(r, pos[i]);
  return out;
}

uint64_t KeyHash(const std::vector<Value>& key) {
  uint64_t h = 0x2545F4914F6CDD1DULL;
  for (Value v : key) h = HashCombine(h, v);
  return h;
}

}  // namespace

StatusOr<storage::Relation> HashJoin(const storage::Relation& left,
                                     const storage::Relation& right,
                                     uint64_t row_limit) {
  // Shared attributes and their positions on both sides.
  std::vector<AttrId> shared;
  for (AttrId a : left.schema().attrs()) {
    if (right.schema().Contains(a)) shared.push_back(a);
  }
  std::sort(shared.begin(), shared.end());
  std::vector<int> lpos, rpos;
  for (AttrId a : shared) {
    lpos.push_back(left.schema().PositionOf(a));
    rpos.push_back(right.schema().PositionOf(a));
  }
  // Output schema: union ascending; right contributes its non-shared
  // attributes.
  std::vector<AttrId> out_attrs = left.schema().attrs();
  for (AttrId a : right.schema().attrs()) {
    if (!left.schema().Contains(a)) out_attrs.push_back(a);
  }
  std::sort(out_attrs.begin(), out_attrs.end());
  storage::Schema out_schema(out_attrs);
  // Position of each output attribute: in left if present, else right.
  struct Source {
    bool from_left;
    int pos;
  };
  std::vector<Source> sources;
  for (AttrId a : out_attrs) {
    int lp = left.schema().PositionOf(a);
    if (lp >= 0) {
      sources.push_back({true, lp});
    } else {
      sources.push_back({false, right.schema().PositionOf(a)});
    }
  }

  // Build on the smaller side; probe with the larger. For simplicity we
  // always build on `right` (callers pass the smaller relation there
  // when it matters; the oracle does not need to be fast).
  std::unordered_multimap<uint64_t, uint64_t> index;
  index.reserve(right.size());
  for (uint64_t r = 0; r < right.size(); ++r) {
    index.emplace(KeyHash(ProjectRow(right, r, rpos)), r);
  }

  storage::Relation out(out_schema);
  std::vector<Value> tuple(out_attrs.size());
  for (uint64_t l = 0; l < left.size(); ++l) {
    std::vector<Value> key = ProjectRow(left, l, lpos);
    auto [it, end] = index.equal_range(KeyHash(key));
    for (; it != end; ++it) {
      const uint64_t r = it->second;
      // Hash collision guard: verify true key equality.
      bool match = true;
      for (size_t i = 0; i < rpos.size(); ++i) {
        if (right.At(r, rpos[i]) != key[i]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      for (size_t i = 0; i < sources.size(); ++i) {
        tuple[i] = sources[i].from_left ? left.At(l, sources[i].pos)
                                        : right.At(r, sources[i].pos);
      }
      out.Append(tuple);
      if (out.size() > row_limit) {
        return Status::ResourceExhausted(
            "hash join intermediate exceeded row limit");
      }
    }
  }
  out.SortAndDedup();
  return out;
}

StatusOr<storage::Relation> NaiveJoin(const query::Query& q,
                                      const storage::Catalog& db,
                                      uint64_t row_limit) {
  if (q.num_atoms() == 0) {
    return Status::InvalidArgument("empty query");
  }
  // Bind atom i: rename base relation columns to the atom's attributes
  // and normalize column order to ascending attribute id — resolved
  // through the catalog's index cache, so the oracle's binds warm (and
  // reuse) the same row payloads the real executors use. Hash joins
  // never read a trie, so the bind is trie-less: the shared rows layer
  // is warmed for everyone, but no trie is built on the oracle's
  // behalf.
  const std::vector<int> ascending_rank = AscendingRank(q.num_attrs());
  auto bind = [&](const query::Atom& atom)
      -> StatusOr<std::shared_ptr<const storage::Relation>> {
    StatusOr<std::shared_ptr<const storage::Relation>> base =
        db.GetShared(atom.relation);
    if (!base.ok()) return base.status();
    if ((*base)->arity() != atom.schema.arity()) {
      return Status::InvalidArgument("atom arity mismatch for " +
                                     atom.relation);
    }
    StatusOr<SharedBoundRelation> prepared = PrepareRelationRowsShared(
        std::move(*base), atom.schema.attrs(), ascending_rank,
        db.index_cache());
    if (!prepared.ok()) return prepared.status();
    return std::move(prepared->rel);
  };

  StatusOr<std::shared_ptr<const storage::Relation>> acc = bind(q.atom(0));
  if (!acc.ok()) return acc.status();
  storage::Relation result = **acc;
  for (int i = 1; i < q.num_atoms(); ++i) {
    StatusOr<std::shared_ptr<const storage::Relation>> next = bind(q.atom(i));
    if (!next.ok()) return next.status();
    StatusOr<storage::Relation> joined =
        HashJoin(result, **next, row_limit);
    if (!joined.ok()) return joined.status();
    result = std::move(joined.value());
  }
  return result;
}

}  // namespace adj::wcoj
