#include "wcoj/intersect.h"

#include <algorithm>
#include <atomic>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define ADJ_INTERSECT_X86 1
#include <immintrin.h>
#endif

namespace adj::wcoj::intersect {

namespace {

std::atomic<Kernel> g_forced{Kernel::kAuto};

Kernel DetectBest() {
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Kernel::kSse42;
#endif
  return Kernel::kScalar;
}

}  // namespace

bool CpuSupports(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
    case Kernel::kScalar:
      return true;
    case Kernel::kSse42:
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
      return __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case Kernel::kAvx2:
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

void SetKernel(Kernel k) { g_forced.store(k, std::memory_order_relaxed); }

Kernel ActiveKernel() {
  static const Kernel detected = DetectBest();
  const Kernel forced = g_forced.load(std::memory_order_relaxed);
  if (forced == Kernel::kAuto) return detected;
  return CpuSupports(forced) ? forced : Kernel::kScalar;
}

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
      return "auto";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSse42:
      return "sse4.2";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

size_t SeekGEQ(std::span<const Value> s, Value v, size_t hint,
               KernelStats* stats) {
  if (stats != nullptr) ++stats->seeks;
  const size_t n = s.size();
  size_t lo = hint;
  if (lo >= n || s[lo] >= v) return lo;
  // Galloping phase: double the step from lo until we overshoot.
  size_t step = 1;
  size_t prev = lo;
  size_t cur = lo + 1;
  while (cur < n && s[cur] < v) {
    prev = cur;
    step <<= 1;
    cur = (step > n - lo) ? n : lo + step;
  }
  // Binary search in (prev, cur].
  size_t a = prev + 1, b = std::min(cur + 1, n);
  while (a < b) {
    const size_t mid = a + (b - a) / 2;
    if (s[mid] < v) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a;
}

namespace {

/// Shared scalar merge for the kernels' tail handling and the scalar
/// baseline itself: galloping on whichever side lags.
inline size_t ScalarTail(std::span<const Value> a, std::span<const Value> b,
                         size_t i, size_t j, size_t n, Value* out_vals,
                         uint32_t* out_pa, size_t stride_a, uint32_t* out_pb,
                         size_t stride_b, KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    const Value x = a[i];
    const Value y = b[j];
    if (x == y) {
      out_vals[n] = x;
      if (out_pa != nullptr) out_pa[n * stride_a] = static_cast<uint32_t>(i);
      if (out_pb != nullptr) out_pb[n * stride_b] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
    } else if (x < y) {
      i = SeekGEQ(a, y, i + 1, stats);
    } else {
      j = SeekGEQ(b, x, j + 1, stats);
    }
  }
  return n;
}

}  // namespace

size_t Intersect2Scalar(std::span<const Value> a, std::span<const Value> b,
                        Value* out_vals, uint32_t* out_pa, size_t stride_a,
                        uint32_t* out_pb, size_t stride_b,
                        KernelStats* stats) {
  return ScalarTail(a, b, 0, 0, 0, out_vals, out_pa, stride_a, out_pb,
                    stride_b, stats);
}

#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)

// Block-compare kernels: hold one probe value x = a[i], compare it
// against a vector's worth of b in one shot. Per iteration this either
// emits a match, retires x, or skips a whole block of b — and when an
// entire block sits below x, it falls back to galloping, so the kernel
// never loses to the scalar baseline on skewed inputs.

__attribute__((target("avx2"))) size_t Intersect2Avx2(
    std::span<const Value> a, std::span<const Value> b, Value* out_vals,
    uint32_t* out_pa, size_t stride_a, uint32_t* out_pb, size_t stride_b,
    KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  size_t i = 0, j = 0, n = 0;
  while (i < na && j + 8 <= nb) {
    const Value x = a[i];
    const __m256i vx = _mm256_set1_epi32(static_cast<int>(x));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b.data() + j));
    const __m256i eq = _mm256_cmpeq_epi32(vx, vb);
    const unsigned eqm = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    if (eqm != 0) {
      // Strictly increasing b: at most one lane matches.
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(eqm));
      out_vals[n] = x;
      if (out_pa != nullptr) out_pa[n * stride_a] = static_cast<uint32_t>(i);
      if (out_pb != nullptr) {
        out_pb[n * stride_b] = static_cast<uint32_t>(j + lane);
      }
      ++n;
      ++i;
      j += lane + 1;
      continue;
    }
    // Lanes with b < x (unsigned compare via max): no eq lane, so
    // max(b, x) == x exactly where b < x. The mask is a contiguous
    // low-bit run because b ascends.
    const __m256i le = _mm256_cmpeq_epi32(_mm256_max_epu32(vb, vx), vx);
    const unsigned ltm = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(le)));
    if (ltm == 0xFFu) {
      j = SeekGEQ(b, x, j + 8, stats);  // whole block below x: gallop
    } else if (ltm == 0) {
      i = SeekGEQ(a, b[j], i + 1, stats);  // whole block above x
    } else {
      // x falls inside this block and is absent.
      j += static_cast<unsigned>(__builtin_popcount(ltm));
      ++i;
    }
  }
  return ScalarTail(a, b, i, j, n, out_vals, out_pa, stride_a, out_pb,
                    stride_b, stats);
}

__attribute__((target("sse4.2"))) size_t Intersect2Sse42(
    std::span<const Value> a, std::span<const Value> b, Value* out_vals,
    uint32_t* out_pa, size_t stride_a, uint32_t* out_pb, size_t stride_b,
    KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  size_t i = 0, j = 0, n = 0;
  while (i < na && j + 4 <= nb) {
    const Value x = a[i];
    const __m128i vx = _mm_set1_epi32(static_cast<int>(x));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    const __m128i eq = _mm_cmpeq_epi32(vx, vb);
    const unsigned eqm =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    if (eqm != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(eqm));
      out_vals[n] = x;
      if (out_pa != nullptr) out_pa[n * stride_a] = static_cast<uint32_t>(i);
      if (out_pb != nullptr) {
        out_pb[n * stride_b] = static_cast<uint32_t>(j + lane);
      }
      ++n;
      ++i;
      j += lane + 1;
      continue;
    }
    const __m128i le = _mm_cmpeq_epi32(_mm_max_epu32(vb, vx), vx);
    const unsigned ltm =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(le)));
    if (ltm == 0xFu) {
      j = SeekGEQ(b, x, j + 4, stats);
    } else if (ltm == 0) {
      i = SeekGEQ(a, b[j], i + 1, stats);
    } else {
      j += static_cast<unsigned>(__builtin_popcount(ltm));
      ++i;
    }
  }
  return ScalarTail(a, b, i, j, n, out_vals, out_pa, stride_a, out_pb,
                    stride_b, stats);
}

#else  // !x86: the SIMD entry points exist but must not be called.

size_t Intersect2Sse42(std::span<const Value> a, std::span<const Value> b,
                       Value* out_vals, uint32_t* out_pa, size_t stride_a,
                       uint32_t* out_pb, size_t stride_b,
                       KernelStats* stats) {
  return Intersect2Scalar(a, b, out_vals, out_pa, stride_a, out_pb, stride_b,
                          stats);
}

size_t Intersect2Avx2(std::span<const Value> a, std::span<const Value> b,
                      Value* out_vals, uint32_t* out_pa, size_t stride_a,
                      uint32_t* out_pb, size_t stride_b, KernelStats* stats) {
  return Intersect2Scalar(a, b, out_vals, out_pa, stride_a, out_pb, stride_b,
                          stats);
}

#endif  // ADJ_INTERSECT_X86

size_t Intersect2(std::span<const Value> a, std::span<const Value> b,
                  Value* out_vals, uint32_t* out_pa, size_t stride_a,
                  uint32_t* out_pb, size_t stride_b, KernelStats* stats) {
  // The block kernels scan the longer side vector-wide and retire the
  // shorter side one probe at a time: make `a` the shorter side.
  if (a.size() > b.size()) {
    std::swap(a, b);
    std::swap(out_pa, out_pb);
    std::swap(stride_a, stride_b);
  }
  switch (ActiveKernel()) {
    case Kernel::kAvx2:
      if (stats != nullptr) ++stats->simd_intersections;
      return Intersect2Avx2(a, b, out_vals, out_pa, stride_a, out_pb,
                            stride_b, stats);
    case Kernel::kSse42:
      if (stats != nullptr) ++stats->simd_intersections;
      return Intersect2Sse42(a, b, out_vals, out_pa, stride_a, out_pb,
                             stride_b, stats);
    default:
      if (stats != nullptr) ++stats->scalar_fallbacks;
      return Intersect2Scalar(a, b, out_vals, out_pa, stride_a, out_pb,
                              stride_b, stats);
  }
}

namespace {

/// Fills ord[0..k) with span indexes sorted by ascending size
/// (insertion sort: k is the number of atoms covering one attribute —
/// single digits in practice).
inline void OrderBySize(const std::span<const Value>* views, int k,
                        uint32_t* ord) {
  for (int c = 0; c < k; ++c) ord[c] = static_cast<uint32_t>(c);
  for (int c = 1; c < k; ++c) {
    const uint32_t v = ord[c];
    int p = c - 1;
    while (p >= 0 && views[ord[p]].size() > views[v].size()) {
      ord[p + 1] = ord[p];
      --p;
    }
    ord[p + 1] = v;
  }
}

}  // namespace

size_t IntersectK(const std::span<const Value>* views, int k, Value* out_vals,
                  uint32_t* out_pos, const KScratch& scratch,
                  KernelStats* stats) {
  if (k <= 0) return 0;
  if (k == 1) {
    const std::span<const Value> v = views[0];
    std::copy(v.begin(), v.end(), out_vals);
    for (size_t t = 0; t < v.size(); ++t) {
      out_pos[t] = static_cast<uint32_t>(t);
    }
    return v.size();
  }
  // Smallest spans first: every intermediate then fits in the overall
  // minimum span size, which is what the caller's buffers hold.
  uint32_t* ord = scratch.ord;
  OrderBySize(views, k, ord);
  const size_t kk = static_cast<size_t>(k);
  size_t n = Intersect2(views[ord[0]], views[ord[1]], out_vals,
                        out_pos + ord[0], kk, out_pos + ord[1], kk, stats);
  for (int c = 2; c < k && n > 0; ++c) {
    const uint32_t vi = ord[c];
    const size_t m =
        Intersect2(std::span<const Value>(out_vals, n), views[vi], out_vals,
                   scratch.pa, 1, scratch.pb, 1, stats);
    // Compact surviving position rows in place (pa ascends and
    // pa[t] >= t, so reads never trail writes), then scatter the new
    // span's positions into its original column.
    for (size_t t = 0; t < m; ++t) {
      const uint32_t src = scratch.pa[t];
      if (src != t) {
        for (int cc = 0; cc < c; ++cc) {
          out_pos[t * kk + ord[cc]] = out_pos[src * kk + ord[cc]];
        }
      }
      out_pos[t * kk + vi] = scratch.pb[t];
    }
    n = m;
  }
  return n;
}

size_t IntersectKValues(const std::span<const Value>* views, int k,
                        Value* out_vals, KernelStats* stats) {
  if (k <= 0) return 0;
  if (k == 1) {
    std::copy(views[0].begin(), views[0].end(), out_vals);
    return views[0].size();
  }
  constexpr int kStackOrd = 32;
  uint32_t ord_stack[kStackOrd];
  std::vector<uint32_t> ord_heap;
  uint32_t* ord = ord_stack;
  if (k > kStackOrd) {
    ord_heap.resize(static_cast<size_t>(k));
    ord = ord_heap.data();
  }
  OrderBySize(views, k, ord);
  size_t n = Intersect2(views[ord[0]], views[ord[1]], out_vals, nullptr, 1,
                        nullptr, 1, stats);
  for (int c = 2; c < k && n > 0; ++c) {
    n = Intersect2(std::span<const Value>(out_vals, n), views[ord[c]],
                   out_vals, nullptr, 1, nullptr, 1, stats);
  }
  return n;
}

}  // namespace adj::wcoj::intersect
