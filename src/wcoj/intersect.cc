#include "wcoj/intersect.h"

#include <algorithm>
#include <atomic>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define ADJ_INTERSECT_X86 1
#include <immintrin.h>
#endif

namespace adj::wcoj::intersect {

namespace {

std::atomic<Kernel> g_forced{Kernel::kAuto};

Kernel DetectBest() {
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Kernel::kSse42;
#endif
  return Kernel::kScalar;
}

}  // namespace

bool CpuSupports(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
    case Kernel::kScalar:
      return true;
    case Kernel::kSse42:
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
      return __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case Kernel::kAvx2:
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

void SetKernel(Kernel k) { g_forced.store(k, std::memory_order_relaxed); }

Kernel ActiveKernel() {
  static const Kernel detected = DetectBest();
  const Kernel forced = g_forced.load(std::memory_order_relaxed);
  if (forced == Kernel::kAuto) return detected;
  return CpuSupports(forced) ? forced : Kernel::kScalar;
}

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
      return "auto";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSse42:
      return "sse4.2";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

size_t SeekGEQ(std::span<const Value> s, Value v, size_t hint,
               KernelStats* stats) {
  if (stats != nullptr) ++stats->seeks;
  const size_t n = s.size();
  size_t lo = hint;
  if (lo >= n || s[lo] >= v) return lo;
  // Galloping phase: double the step from lo until we overshoot.
  size_t step = 1;
  size_t prev = lo;
  size_t cur = lo + 1;
  while (cur < n && s[cur] < v) {
    prev = cur;
    step <<= 1;
    cur = (step > n - lo) ? n : lo + step;
  }
  // Binary search in (prev, cur].
  size_t a = prev + 1, b = std::min(cur + 1, n);
  while (a < b) {
    const size_t mid = a + (b - a) / 2;
    if (s[mid] < v) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a;
}

namespace {

/// Shared scalar merge for the kernels' tail handling and the scalar
/// baseline itself: galloping on whichever side lags.
inline size_t ScalarTail(std::span<const Value> a, std::span<const Value> b,
                         size_t i, size_t j, size_t n, Value* out_vals,
                         uint32_t* out_pa, size_t stride_a, uint32_t* out_pb,
                         size_t stride_b, KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    const Value x = a[i];
    const Value y = b[j];
    if (x == y) {
      out_vals[n] = x;
      if (out_pa != nullptr) out_pa[n * stride_a] = static_cast<uint32_t>(i);
      if (out_pb != nullptr) out_pb[n * stride_b] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
    } else if (x < y) {
      i = SeekGEQ(a, y, i + 1, stats);
    } else {
      j = SeekGEQ(b, x, j + 1, stats);
    }
  }
  return n;
}

}  // namespace

size_t Intersect2Scalar(std::span<const Value> a, std::span<const Value> b,
                        Value* out_vals, uint32_t* out_pa, size_t stride_a,
                        uint32_t* out_pb, size_t stride_b,
                        KernelStats* stats) {
  return ScalarTail(a, b, 0, 0, 0, out_vals, out_pa, stride_a, out_pb,
                    stride_b, stats);
}

#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)

// Block-compare kernels: hold one probe value x = a[i], compare it
// against a vector's worth of b in one shot. Per iteration this either
// emits a match, retires x, or skips a whole block of b — and when an
// entire block sits below x, it falls back to galloping, so the kernel
// never loses to the scalar baseline on skewed inputs.

__attribute__((target("avx2"))) size_t Intersect2Avx2(
    std::span<const Value> a, std::span<const Value> b, Value* out_vals,
    uint32_t* out_pa, size_t stride_a, uint32_t* out_pb, size_t stride_b,
    KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  size_t i = 0, j = 0, n = 0;
  while (i < na && j + 8 <= nb) {
    const Value x = a[i];
    const __m256i vx = _mm256_set1_epi32(static_cast<int>(x));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b.data() + j));
    const __m256i eq = _mm256_cmpeq_epi32(vx, vb);
    const unsigned eqm = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    if (eqm != 0) {
      // Strictly increasing b: at most one lane matches.
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(eqm));
      out_vals[n] = x;
      if (out_pa != nullptr) out_pa[n * stride_a] = static_cast<uint32_t>(i);
      if (out_pb != nullptr) {
        out_pb[n * stride_b] = static_cast<uint32_t>(j + lane);
      }
      ++n;
      ++i;
      j += lane + 1;
      continue;
    }
    // Lanes with b < x (unsigned compare via max): no eq lane, so
    // max(b, x) == x exactly where b < x. The mask is a contiguous
    // low-bit run because b ascends.
    const __m256i le = _mm256_cmpeq_epi32(_mm256_max_epu32(vb, vx), vx);
    const unsigned ltm = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(le)));
    if (ltm == 0xFFu) {
      j = SeekGEQ(b, x, j + 8, stats);  // whole block below x: gallop
    } else if (ltm == 0) {
      i = SeekGEQ(a, b[j], i + 1, stats);  // whole block above x
    } else {
      // x falls inside this block and is absent.
      j += static_cast<unsigned>(__builtin_popcount(ltm));
      ++i;
    }
  }
  return ScalarTail(a, b, i, j, n, out_vals, out_pa, stride_a, out_pb,
                    stride_b, stats);
}

__attribute__((target("sse4.2"))) size_t Intersect2Sse42(
    std::span<const Value> a, std::span<const Value> b, Value* out_vals,
    uint32_t* out_pa, size_t stride_a, uint32_t* out_pb, size_t stride_b,
    KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  size_t i = 0, j = 0, n = 0;
  while (i < na && j + 4 <= nb) {
    const Value x = a[i];
    const __m128i vx = _mm_set1_epi32(static_cast<int>(x));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    const __m128i eq = _mm_cmpeq_epi32(vx, vb);
    const unsigned eqm =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    if (eqm != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(eqm));
      out_vals[n] = x;
      if (out_pa != nullptr) out_pa[n * stride_a] = static_cast<uint32_t>(i);
      if (out_pb != nullptr) {
        out_pb[n * stride_b] = static_cast<uint32_t>(j + lane);
      }
      ++n;
      ++i;
      j += lane + 1;
      continue;
    }
    const __m128i le = _mm_cmpeq_epi32(_mm_max_epu32(vb, vx), vx);
    const unsigned ltm =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(le)));
    if (ltm == 0xFu) {
      j = SeekGEQ(b, x, j + 4, stats);
    } else if (ltm == 0) {
      i = SeekGEQ(a, b[j], i + 1, stats);
    } else {
      j += static_cast<unsigned>(__builtin_popcount(ltm));
      ++i;
    }
  }
  return ScalarTail(a, b, i, j, n, out_vals, out_pa, stride_a, out_pb,
                    stride_b, stats);
}

// All-pairs ("shuffling", à la Lemire/Schlegel) variants for the dense
// similar-size shape, where block-compare degenerates to one probe per
// element and only ties scalar: compare a full vector of a against
// every rotation of a full vector of b, compress-store the matching a
// lanes, and advance whichever side's max is smaller. Values-only —
// recovering b positions from the rotation that hit would cost more
// than the win — so dispatch selects it only when no positions are
// requested.

namespace {

/// Lookup table mapping an 8-bit match mask to the lane permutation
/// that packs the matching lanes to the front.
struct Compress8Table {
  alignas(32) uint32_t idx[256][8];
  // prefix[c]: store mask selecting the first c lanes.
  alignas(32) uint32_t prefix[9][8];
  Compress8Table() {
    for (int m = 0; m < 256; ++m) {
      int k = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if (m & (1 << lane)) idx[m][k++] = static_cast<uint32_t>(lane);
      }
      for (; k < 8; ++k) idx[m][k] = 0;
    }
    for (int c = 0; c <= 8; ++c) {
      for (int lane = 0; lane < 8; ++lane) {
        prefix[c][lane] = lane < c ? 0xFFFFFFFFu : 0;
      }
    }
  }
};

/// Both sides dense (average sibling gap <= 4) and within 4x of each
/// other's length (`a` is already the shorter side). Small inputs go
/// through the block-compare path — the all-pairs loop needs a full
/// vector per side to pay off.
inline bool OverlapsOutput(const Value* out, size_t out_len,
                           std::span<const Value> in) {
  const uintptr_t ob = reinterpret_cast<uintptr_t>(out);
  const uintptr_t oe = ob + out_len * sizeof(Value);
  const uintptr_t ib = reinterpret_cast<uintptr_t>(in.data());
  const uintptr_t ie = ib + in.size() * sizeof(Value);
  return ib < oe && ob < ie;
}

inline bool DenseSimilar(std::span<const Value> a, std::span<const Value> b) {
  const size_t na = a.size(), nb = b.size();
  if (na < 16) return false;
  if (nb > 4 * na) return false;
  return uint64_t(a.back() - a.front()) <= 4 * uint64_t(na - 1) &&
         uint64_t(b.back() - b.front()) <= 4 * uint64_t(nb - 1);
}

__attribute__((target("avx2"))) size_t IntersectDenseAvx2(
    std::span<const Value> a, std::span<const Value> b, Value* out_vals,
    KernelStats* stats) {
  static const Compress8Table table;
  const size_t na = a.size(), nb = b.size();
  size_t i = 0, j = 0, n = 0;
  // Rotation index vectors (lane l of rotation r reads vb lane
  // (l + r) % 8).
  __m256i rot[7];
  for (int r = 1; r <= 7; ++r) {
    alignas(32) uint32_t lanes[8];
    for (uint32_t l = 0; l < 8; ++l) lanes[l] = (l + r) & 7u;
    rot[r - 1] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
  }
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 0; r < 7; ++r) {
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[r])));
    }
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    if (mask != 0) {
      const unsigned cnt = static_cast<unsigned>(__builtin_popcount(mask));
      const __m256i shuf = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(table.idx[mask]));
      // Masked store writes exactly cnt lanes: a plain 8-wide store
      // would overshoot the min(na, nb)-sized output buffer when the
      // match count runs close to capacity.
      _mm256_maskstore_epi32(reinterpret_cast<int*>(out_vals + n),
                             _mm256_load_si256(reinterpret_cast<const __m256i*>(
                                 table.prefix[cnt])),
                             _mm256_permutevar8x32_epi32(va, shuf));
      n += cnt;
    }
    const Value amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTail(a, b, i, j, n, out_vals, nullptr, 1, nullptr, 1, stats);
}

__attribute__((target("sse4.2"))) size_t IntersectDenseSse42(
    std::span<const Value> a, std::span<const Value> b, Value* out_vals,
    KernelStats* stats) {
  const size_t na = a.size(), nb = b.size();
  size_t i = 0, j = 0, n = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out_vals[n++] = a[i + lane];
      mask &= mask - 1;
    }
    const Value amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return ScalarTail(a, b, i, j, n, out_vals, nullptr, 1, nullptr, 1, stats);
}

}  // namespace

#else  // !x86: the SIMD entry points exist but must not be called.

size_t Intersect2Sse42(std::span<const Value> a, std::span<const Value> b,
                       Value* out_vals, uint32_t* out_pa, size_t stride_a,
                       uint32_t* out_pb, size_t stride_b,
                       KernelStats* stats) {
  return Intersect2Scalar(a, b, out_vals, out_pa, stride_a, out_pb, stride_b,
                          stats);
}

size_t Intersect2Avx2(std::span<const Value> a, std::span<const Value> b,
                      Value* out_vals, uint32_t* out_pa, size_t stride_a,
                      uint32_t* out_pb, size_t stride_b, KernelStats* stats) {
  return Intersect2Scalar(a, b, out_vals, out_pa, stride_a, out_pb, stride_b,
                          stats);
}

#endif  // ADJ_INTERSECT_X86

size_t Intersect2(std::span<const Value> a, std::span<const Value> b,
                  Value* out_vals, uint32_t* out_pa, size_t stride_a,
                  uint32_t* out_pb, size_t stride_b, KernelStats* stats) {
  // The block kernels scan the longer side vector-wide and retire the
  // shorter side one probe at a time: make `a` the shorter side.
  if (a.size() > b.size()) {
    std::swap(a, b);
    std::swap(out_pa, out_pb);
    std::swap(stride_a, stride_b);
  }
#if defined(ADJ_INTERSECT_X86) && defined(__GNUC__)
  // Dense similar-size shape: block-compare retires one probe per
  // element and only ties scalar there; the all-pairs kernel wins but
  // is values-only and — unlike the merge kernels, whose writes
  // strictly trail their reads — revisits input lanes after emitting,
  // so it must not run in place (the k-way reduction aliases out_vals
  // with its intermediate input).
  if (out_pa == nullptr && out_pb == nullptr && DenseSimilar(a, b) &&
      !OverlapsOutput(out_vals, std::min(a.size(), b.size()), a) &&
      !OverlapsOutput(out_vals, std::min(a.size(), b.size()), b)) {
    switch (ActiveKernel()) {
      case Kernel::kAvx2:
        if (stats != nullptr) ++stats->simd_intersections;
        return IntersectDenseAvx2(a, b, out_vals, stats);
      case Kernel::kSse42:
        if (stats != nullptr) ++stats->simd_intersections;
        return IntersectDenseSse42(a, b, out_vals, stats);
      default:
        break;
    }
  }
#endif
  switch (ActiveKernel()) {
    case Kernel::kAvx2:
      if (stats != nullptr) ++stats->simd_intersections;
      return Intersect2Avx2(a, b, out_vals, out_pa, stride_a, out_pb,
                            stride_b, stats);
    case Kernel::kSse42:
      if (stats != nullptr) ++stats->simd_intersections;
      return Intersect2Sse42(a, b, out_vals, out_pa, stride_a, out_pb,
                             stride_b, stats);
    default:
      if (stats != nullptr) ++stats->scalar_fallbacks;
      return Intersect2Scalar(a, b, out_vals, out_pa, stride_a, out_pb,
                              stride_b, stats);
  }
}

namespace {

/// Fills ord[0..k) with span indexes sorted by ascending size
/// (insertion sort: k is the number of atoms covering one attribute —
/// single digits in practice).
inline void OrderBySize(const std::span<const Value>* views, int k,
                        uint32_t* ord) {
  for (int c = 0; c < k; ++c) ord[c] = static_cast<uint32_t>(c);
  for (int c = 1; c < k; ++c) {
    const uint32_t v = ord[c];
    int p = c - 1;
    while (p >= 0 && views[ord[p]].size() > views[v].size()) {
      ord[p + 1] = ord[p];
      --p;
    }
    ord[p + 1] = v;
  }
}

}  // namespace

size_t IntersectK(const std::span<const Value>* views, int k, Value* out_vals,
                  uint32_t* out_pos, const KScratch& scratch,
                  KernelStats* stats) {
  if (k <= 0) return 0;
  if (k == 1) {
    const std::span<const Value> v = views[0];
    std::copy(v.begin(), v.end(), out_vals);
    for (size_t t = 0; t < v.size(); ++t) {
      out_pos[t] = static_cast<uint32_t>(t);
    }
    return v.size();
  }
  // Smallest spans first: every intermediate then fits in the overall
  // minimum span size, which is what the caller's buffers hold.
  uint32_t* ord = scratch.ord;
  OrderBySize(views, k, ord);
  const size_t kk = static_cast<size_t>(k);
  size_t n = Intersect2(views[ord[0]], views[ord[1]], out_vals,
                        out_pos + ord[0], kk, out_pos + ord[1], kk, stats);
  for (int c = 2; c < k && n > 0; ++c) {
    const uint32_t vi = ord[c];
    const size_t m =
        Intersect2(std::span<const Value>(out_vals, n), views[vi], out_vals,
                   scratch.pa, 1, scratch.pb, 1, stats);
    // Compact surviving position rows in place (pa ascends and
    // pa[t] >= t, so reads never trail writes), then scatter the new
    // span's positions into its original column.
    for (size_t t = 0; t < m; ++t) {
      const uint32_t src = scratch.pa[t];
      if (src != t) {
        for (int cc = 0; cc < c; ++cc) {
          out_pos[t * kk + ord[cc]] = out_pos[src * kk + ord[cc]];
        }
      }
      out_pos[t * kk + vi] = scratch.pb[t];
    }
    n = m;
  }
  return n;
}

namespace {

namespace bc = storage::blockcodec;
constexpr uint32_t kB = bc::kBlockValues;

/// Last block in [blk, bend] whose min is <= x, assuming blk itself is
/// already a valid candidate (its min is <= x or lies before the run's
/// first in-range position). Exponential gallop + binary search over
/// the skip table — the "seek via block skip-metadata" step.
inline uint32_t GallopBlocks(std::span<const Value> mins, uint32_t blk,
                             uint32_t bend, Value x) {
  uint32_t step = 1;
  while (blk + step <= bend && mins[blk + step] <= x) {
    blk += step;
    step <<= 1;
  }
  uint32_t a = blk + 1;
  uint32_t b = static_cast<uint32_t>(
      std::min<uint64_t>(uint64_t(blk) + step, bend) + 1);
  while (a < b) {
    const uint32_t mid = a + (b - a) / 2;
    if (mins[mid] <= x) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a - 1;
}

/// Decoded window of one block clipped to the run: cache->vals indexes
/// [s, e) hold positions [base + s, base + e) of the level.
struct BlockWindow {
  uint32_t s = 0;
  uint32_t e = 0;
  uint64_t base = 0;
};

inline BlockWindow DecodeWindow(const CompressedRun& r, uint32_t blk,
                                bc::DecodeCache* cache, KernelStats* stats) {
  const uint32_t cnt = bc::DecodeBlockCached(
      r.level, blk, cache, stats != nullptr ? &stats->blocks_decoded : nullptr);
  BlockWindow w;
  w.base = uint64_t(blk) * kB;
  w.s = static_cast<uint32_t>(std::max<uint64_t>(r.lo, w.base) - w.base);
  w.e = static_cast<uint32_t>(std::min<uint64_t>(r.hi, w.base + cnt) - w.base);
  return w;
}

}  // namespace

size_t SeekGEQRun(const CompressedRun& r, Value v, size_t hint,
                  bc::DecodeCache* cache, KernelStats* stats) {
  if (stats != nullptr) ++stats->seeks;
  const uint64_t lo = uint64_t(r.lo) + hint;
  if (lo >= r.hi) return r.size();
  const uint32_t bend = (r.hi - 1) / kB;
  const uint32_t cb = GallopBlocks(r.level.mins,
                                   static_cast<uint32_t>(lo / kB), bend, v);
  CompressedRun clipped = r;
  clipped.lo = static_cast<uint32_t>(lo);
  const BlockWindow w = DecodeWindow(clipped, cb, cache, stats);
  const Value* const buf = cache->vals;
  const Value* p = std::lower_bound(buf + w.s, buf + w.e, v);
  if (p != buf + w.e) {
    return static_cast<size_t>(w.base + (p - buf) - r.lo);
  }
  // Whole window below v: the next block's first value (if any is left
  // inside the run) is the first >= v.
  return static_cast<size_t>(std::min<uint64_t>(r.hi, w.base + kB) - r.lo);
}

size_t Intersect2CR(const CompressedRun& a, std::span<const Value> b,
                    Value* out_vals, uint32_t* out_pa, size_t stride_a,
                    uint32_t* out_pb, size_t stride_b,
                    bc::DecodeCache* cache_a, KernelStats* stats) {
  if (a.lo >= a.hi || b.empty()) return 0;
  const uint32_t bend = (a.hi - 1) / kB;
  uint32_t blk = a.lo / kB;
  size_t j = 0, n = 0;
  while (blk <= bend && j < b.size()) {
    // Skip whole blocks below b[j] via the skip table (every value of
    // block blk is < the next block's min — strictly increasing run).
    if (blk < bend && a.level.mins[blk + 1] <= b[j]) {
      blk = GallopBlocks(a.level.mins, blk + 1, bend, b[j]);
    }
    const BlockWindow w = DecodeWindow(a, blk, cache_a, stats);
    const std::span<const Value> dec(cache_a->vals + w.s, w.e - w.s);
    const size_t poff = static_cast<size_t>(w.base + w.s - a.lo);
    const size_t m = Intersect2(
        dec, b.subspan(j), out_vals + n,
        out_pa != nullptr ? out_pa + n * stride_a : nullptr, stride_a,
        out_pb != nullptr ? out_pb + n * stride_b : nullptr, stride_b, stats);
    // The offsets are 0 for the common single-block-run first window —
    // skip the fixup loops entirely there.
    if (out_pa != nullptr && poff != 0) {
      for (size_t t = 0; t < m; ++t) {
        out_pa[(n + t) * stride_a] += static_cast<uint32_t>(poff);
      }
    }
    if (out_pb != nullptr && j != 0) {
      for (size_t t = 0; t < m; ++t) {
        out_pb[(n + t) * stride_b] += static_cast<uint32_t>(j);
      }
    }
    n += m;
    if (blk == bend) break;
    // b values below the next block's min can never match again.
    j = SeekGEQ(b, a.level.mins[blk + 1], j, stats);
    ++blk;
  }
  return n;
}

size_t Intersect2CC(const CompressedRun& a, const CompressedRun& b,
                    Value* out_vals, uint32_t* out_pa, size_t stride_a,
                    uint32_t* out_pb, size_t stride_b,
                    bc::DecodeCache* cache_a, bc::DecodeCache* cache_b,
                    KernelStats* stats) {
  if (a.lo >= a.hi || b.lo >= b.hi) return 0;
  const uint32_t aend = (a.hi - 1) / kB, bbend = (b.hi - 1) / kB;
  uint32_t ablk = a.lo / kB, bblk = b.lo / kB;
  if (ablk == aend && bblk == bbend) {
    // Both runs live in a single block (children of one node, the
    // common case by far): decode the two windows and hand them to the
    // 2-way kernel directly. Window starts coincide with the run
    // starts, so emitted positions are already run-relative.
    const BlockWindow fa = DecodeWindow(a, ablk, cache_a, stats);
    const Value* const da = cache_a->vals;
    const BlockWindow fb = DecodeWindow(b, bblk, cache_b, stats);
    const Value* const db = cache_b->vals;
    return Intersect2(std::span<const Value>(da + fa.s, fa.e - fa.s),
                      std::span<const Value>(db + fb.s, fb.e - fb.s),
                      out_vals, out_pa, stride_a, out_pb, stride_b, stats);
  }
  BlockWindow wa = DecodeWindow(a, ablk, cache_a, stats);
  // Re-read vals after every DecodeWindow: an arena-backed cache's
  // window pointer moves with the block.
  const Value* sa = cache_a->vals;
  BlockWindow wb = DecodeWindow(b, bblk, cache_b, stats);
  const Value* sb = cache_b->vals;
  uint32_t ca = wa.s, cb = wb.s;
  size_t n = 0;
  while (true) {
    // First value of the next in-range block bounds the current
    // window from above; +inf at the run's last block.
    const uint64_t ua =
        ablk < aend ? uint64_t(a.level.mins[ablk + 1]) : UINT64_MAX;
    const uint64_t ub =
        bblk < bbend ? uint64_t(b.level.mins[bblk + 1]) : UINT64_MAX;
    const uint64_t bound = std::min(ua, ub);
    // Values < bound on each side live entirely inside the current
    // windows: intersect them, fix up positions, advance.
    uint32_t ea = wa.e, eb = wb.e;
    if (bound != UINT64_MAX) {
      ea = static_cast<uint32_t>(
          std::lower_bound(sa + ca, sa + wa.e, static_cast<Value>(bound)) -
          sa);
      eb = static_cast<uint32_t>(
          std::lower_bound(sb + cb, sb + wb.e, static_cast<Value>(bound)) -
          sb);
    }
    const size_t m = Intersect2(
        std::span<const Value>(sa + ca, ea - ca),
        std::span<const Value>(sb + cb, eb - cb), out_vals + n,
        out_pa != nullptr ? out_pa + n * stride_a : nullptr, stride_a,
        out_pb != nullptr ? out_pb + n * stride_b : nullptr, stride_b, stats);
    const size_t poa = static_cast<size_t>(wa.base + ca - a.lo);
    const size_t pob = static_cast<size_t>(wb.base + cb - b.lo);
    if (out_pa != nullptr && poa != 0) {
      for (size_t t = 0; t < m; ++t) {
        out_pa[(n + t) * stride_a] += static_cast<uint32_t>(poa);
      }
    }
    if (out_pb != nullptr && pob != 0) {
      for (size_t t = 0; t < m; ++t) {
        out_pb[(n + t) * stride_b] += static_cast<uint32_t>(pob);
      }
    }
    n += m;
    ca = ea;
    cb = eb;
    // At least one side exhausted its sub-bound window (the side whose
    // next-block min equals `bound` always did); advance it, skipping
    // blocks wholly below the other side's current value.
    if (ca == wa.e) {
      if (ablk == aend) break;
      ++ablk;
      if (cb < wb.e && ablk < aend && a.level.mins[ablk + 1] <= sb[cb]) {
        ablk = GallopBlocks(a.level.mins, ablk, aend, sb[cb]);
      }
      wa = DecodeWindow(a, ablk, cache_a, stats);
      sa = cache_a->vals;
      ca = wa.s;
    }
    if (cb == wb.e) {
      if (bblk == bbend) break;
      ++bblk;
      if (ca < wa.e && bblk < bbend && b.level.mins[bblk + 1] <= sa[ca]) {
        bblk = GallopBlocks(b.level.mins, bblk, bbend, sa[ca]);
      }
      wb = DecodeWindow(b, bblk, cache_b, stats);
      sb = cache_b->vals;
      cb = wb.s;
    }
  }
  return n;
}

size_t IntersectKValues(const std::span<const Value>* views, int k,
                        Value* out_vals, KernelStats* stats) {
  if (k <= 0) return 0;
  if (k == 1) {
    std::copy(views[0].begin(), views[0].end(), out_vals);
    return views[0].size();
  }
  constexpr int kStackOrd = 32;
  uint32_t ord_stack[kStackOrd];
  std::vector<uint32_t> ord_heap;
  uint32_t* ord = ord_stack;
  if (k > kStackOrd) {
    ord_heap.resize(static_cast<size_t>(k));
    ord = ord_heap.data();
  }
  OrderBySize(views, k, ord);
  size_t n = Intersect2(views[ord[0]], views[ord[1]], out_vals, nullptr, 1,
                        nullptr, 1, stats);
  for (int c = 2; c < k && n > 0; ++c) {
    n = Intersect2(std::span<const Value>(out_vals, n), views[ord[c]],
                   out_vals, nullptr, 1, nullptr, 1, stats);
  }
  return n;
}

namespace {

/// OrderBySize over tagged runs.
inline void OrderRunsBySize(const RunView* views, int k, uint32_t* ord) {
  for (int c = 0; c < k; ++c) ord[c] = static_cast<uint32_t>(c);
  for (int c = 1; c < k; ++c) {
    const uint32_t v = ord[c];
    int p = c - 1;
    while (p >= 0 && views[ord[p]].size() > views[v].size()) {
      ord[p + 1] = ord[p];
      --p;
    }
    ord[p + 1] = v;
  }
}

/// 2-way dispatch over two tagged runs (fresh, non-aliased output).
/// Caches are per side, parallel to the views.
inline size_t Intersect2Runs(const RunView& a, const RunView& b,
                             Value* out_vals, uint32_t* out_pa,
                             size_t stride_a, uint32_t* out_pb,
                             size_t stride_b, bc::DecodeCache* cache_a,
                             bc::DecodeCache* cache_b, KernelStats* stats) {
  if (!a.compressed && !b.compressed) {
    return Intersect2(a.raw, b.raw, out_vals, out_pa, stride_a, out_pb,
                      stride_b, stats);
  }
  if (a.compressed && b.compressed) {
    return Intersect2CC(a.comp, b.comp, out_vals, out_pa, stride_a, out_pb,
                        stride_b, cache_a, cache_b, stats);
  }
  if (a.compressed) {
    return Intersect2CR(a.comp, b.raw, out_vals, out_pa, stride_a, out_pb,
                        stride_b, cache_a, stats);
  }
  return Intersect2CR(b.comp, a.raw, out_vals, out_pb, stride_b, out_pa,
                      stride_a, cache_b, stats);
}

/// Streams a whole compressed run into out_vals; positions (if
/// requested) are the identity, as in IntersectK's k == 1 case.
inline size_t StreamRun(const CompressedRun& r, Value* out_vals,
                        uint32_t* out_pos, bc::DecodeCache* cache,
                        KernelStats* stats) {
  if (r.lo >= r.hi) return 0;
  const uint32_t bend = (r.hi - 1) / kB;
  size_t n = 0;
  for (uint32_t blk = r.lo / kB; blk <= bend; ++blk) {
    const BlockWindow w = DecodeWindow(r, blk, cache, stats);
    for (uint32_t t = w.s; t < w.e; ++t) {
      out_vals[n] = cache->vals[t];
      if (out_pos != nullptr) out_pos[n] = static_cast<uint32_t>(n);
      ++n;
    }
  }
  return n;
}

}  // namespace

size_t IntersectKRuns(const RunView* views, int k, Value* out_vals,
                      uint32_t* out_pos, const KScratch& scratch,
                      bc::DecodeCache* caches, KernelStats* stats) {
  if (k <= 0) return 0;
  if (k == 1) {
    const RunView& v = views[0];
    if (v.compressed) {
      return StreamRun(v.comp, out_vals, out_pos, caches, stats);
    }
    std::copy(v.raw.begin(), v.raw.end(), out_vals);
    for (size_t t = 0; t < v.raw.size(); ++t) {
      out_pos[t] = static_cast<uint32_t>(t);
    }
    return v.raw.size();
  }
  uint32_t* ord = scratch.ord;
  OrderRunsBySize(views, k, ord);
  const size_t kk = static_cast<size_t>(k);
  size_t n = Intersect2Runs(views[ord[0]], views[ord[1]], out_vals,
                            out_pos + ord[0], kk, out_pos + ord[1], kk,
                            caches + ord[0], caches + ord[1], stats);
  for (int c = 2; c < k && n > 0; ++c) {
    const uint32_t vi = ord[c];
    const RunView& v = views[vi];
    size_t m;
    if (v.compressed) {
      // Compressed run against the raw intermediate: the run is the
      // "a" side of Intersect2CR, so the position sinks swap.
      m = Intersect2CR(v.comp, std::span<const Value>(out_vals, n), out_vals,
                       scratch.pb, 1, scratch.pa, 1, caches + vi, stats);
    } else {
      m = Intersect2(std::span<const Value>(out_vals, n), v.raw, out_vals,
                     scratch.pa, 1, scratch.pb, 1, stats);
    }
    // Compact surviving position rows in place (pa ascends and
    // pa[t] >= t, so reads never trail writes), then scatter the new
    // run's positions into its original column.
    for (size_t t = 0; t < m; ++t) {
      const uint32_t src = scratch.pa[t];
      if (src != t) {
        for (int cc = 0; cc < c; ++cc) {
          out_pos[t * kk + ord[cc]] = out_pos[src * kk + ord[cc]];
        }
      }
      out_pos[t * kk + vi] = scratch.pb[t];
    }
    n = m;
  }
  return n;
}

size_t IntersectKValuesRuns(const RunView* views, int k, Value* out_vals,
                            bc::DecodeCache* caches, KernelStats* stats) {
  if (k <= 0) return 0;
  if (k == 1) {
    const RunView& v = views[0];
    if (v.compressed) {
      return StreamRun(v.comp, out_vals, nullptr, caches, stats);
    }
    std::copy(v.raw.begin(), v.raw.end(), out_vals);
    return v.raw.size();
  }
  constexpr int kStackOrd = 32;
  uint32_t ord_stack[kStackOrd];
  std::vector<uint32_t> ord_heap;
  uint32_t* ord = ord_stack;
  if (k > kStackOrd) {
    ord_heap.resize(static_cast<size_t>(k));
    ord = ord_heap.data();
  }
  OrderRunsBySize(views, k, ord);
  size_t n = Intersect2Runs(views[ord[0]], views[ord[1]], out_vals, nullptr, 1,
                            nullptr, 1, caches + ord[0], caches + ord[1],
                            stats);
  for (int c = 2; c < k && n > 0; ++c) {
    const uint32_t vi = ord[c];
    const RunView& v = views[vi];
    if (v.compressed) {
      n = Intersect2CR(v.comp, std::span<const Value>(out_vals, n), out_vals,
                       nullptr, 1, nullptr, 1, caches + vi, stats);
    } else {
      n = Intersect2(std::span<const Value>(out_vals, n), v.raw, out_vals,
                     nullptr, 1, nullptr, 1, stats);
    }
  }
  return n;
}

}  // namespace adj::wcoj::intersect
