#include "wcoj/leapfrog.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"

namespace adj::wcoj {

void JoinStats::Merge(const JoinStats& other) {
  if (tuples_at_level.size() < other.tuples_at_level.size()) {
    tuples_at_level.resize(other.tuples_at_level.size(), 0);
  }
  for (size_t i = 0; i < other.tuples_at_level.size(); ++i) {
    tuples_at_level[i] += other.tuples_at_level[i];
  }
  seeks += other.seeks;
  extensions += other.extensions;
  seconds += other.seconds;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
}

const IntersectionCache::Entry* IntersectionCache::Lookup(uint64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void IntersectionCache::Insert(uint64_t key, Entry entry) {
  const uint64_t cost = entry.vals.size() + entry.idxs.size();
  if (stored_values_ + cost > capacity_) return;  // cache full: skip
  stored_values_ += cost;
  map_.emplace(key, std::move(entry));
}

void IntersectionCache::Clear() {
  map_.clear();
  stored_values_ = 0;
}

namespace {

using storage::Trie;

/// One (input, level) pair participating at an order position.
struct Participant {
  int input;  // index into inputs
  int level;  // trie level of this attribute within the input
};

class Executor {
 public:
  Executor(const std::vector<JoinInput>& inputs,
           const query::AttributeOrder& order, const EmitFn* emit,
           JoinStats* stats, const JoinLimits& limits,
           std::optional<Value> first_value, IntersectionCache* cache)
      : inputs_(inputs),
        order_(order),
        emit_(emit),
        stats_(stats),
        limits_(limits),
        first_value_(first_value),
        cache_(cache) {}

  StatusOr<uint64_t> Run() {
    const int n = static_cast<int>(order_.size());
    participants_.assign(n, {});
    for (int r = 0; r < static_cast<int>(inputs_.size()); ++r) {
      const JoinInput& in = inputs_[r];
      ADJ_CHECK(in.trie != nullptr);
      ADJ_CHECK(static_cast<int>(in.attrs.size()) == in.trie->arity());
      int prev_pos = -1;
      for (int l = 0; l < static_cast<int>(in.attrs.size()); ++l) {
        auto it = std::find(order_.begin(), order_.end(), in.attrs[l]);
        if (it == order_.end()) {
          return Status::InvalidArgument(
              "input attribute missing from attribute order");
        }
        const int pos = static_cast<int>(it - order_.begin());
        if (pos <= prev_pos) {
          return Status::InvalidArgument(
              "input trie levels not aligned with attribute order");
        }
        prev_pos = pos;
        participants_[pos].push_back({r, l});
      }
    }
    for (int i = 0; i < n; ++i) {
      if (participants_[i].empty()) {
        return Status::InvalidArgument(
            "attribute covered by no input (cartesian product)");
      }
    }
    if (stats_ != nullptr && stats_->tuples_at_level.size() < size_t(n)) {
      stats_->tuples_at_level.resize(n, 0);
    }
    indexes_.assign(inputs_.size(), {});
    for (size_t r = 0; r < inputs_.size(); ++r) {
      indexes_[r].assign(inputs_[r].attrs.size(), 0);
    }
    binding_.assign(n, 0);
    timer_.Restart();
    Status st = Descend(0);
    if (stats_ != nullptr) stats_->seconds += timer_.Seconds();
    if (!st.ok()) return st;
    return count_;
  }

 private:
  /// Sibling range of participant p at order position i, derived from
  /// its parent level's current index.
  Trie::Range RangeOf(const Participant& p) const {
    const Trie& trie = *inputs_[p.input].trie;
    if (p.level == 0) return trie.RootRange();
    return trie.ChildRange(p.level - 1, indexes_[p.input][p.level - 1]);
  }

  Status CheckLimits() {
    if (extensions_ > limits_.max_extensions) {
      return Status::ResourceExhausted("join exceeded extension budget");
    }
    if ((extensions_ & 0xFFF) == 0 && timer_.Seconds() > limits_.max_seconds) {
      return Status::DeadlineExceeded("join exceeded time budget");
    }
    return Status::OK();
  }

  /// Classic Leapfrog intersection over the participant ranges at
  /// position i, invoking Step for every common value.
  Status Descend(int i) {
    const std::vector<Participant>& parts = participants_[i];
    const int k = static_cast<int>(parts.size());

    // Materialize ranges; bail out on any empty one.
    std::vector<Trie::Range> ranges(k);
    for (int j = 0; j < k; ++j) {
      ranges[j] = RangeOf(parts[j]);
      if (ranges[j].empty()) return Status::OK();
    }

    if (cache_ != nullptr) return DescendCached(i, parts, ranges);

    if (i == 0 && first_value_.has_value()) {
      // Sampler mode: pin order[0] to *first_value_.
      const Value v = *first_value_;
      for (int j = 0; j < k; ++j) {
        const Trie& trie = *inputs_[parts[j].input].trie;
        uint32_t idx = trie.FindInRange(parts[j].level, ranges[j], v);
        if (stats_ != nullptr) ++stats_->seeks;
        if (idx == ranges[j].hi) return Status::OK();
        indexes_[parts[j].input][parts[j].level] = idx;
      }
      return Emit(i, v);
    }

    if (k == 1) {
      // Single participant: every sibling value extends the binding.
      const Participant& part = parts[0];
      const Trie& trie = *inputs_[part.input].trie;
      for (uint32_t idx = ranges[0].lo; idx < ranges[0].hi; ++idx) {
        indexes_[part.input][part.level] = idx;
        ADJ_RETURN_IF_ERROR(Emit(i, trie.ValueAt(part.level, idx)));
      }
      return Status::OK();
    }

    std::vector<uint32_t> cursor(k);
    for (int j = 0; j < k; ++j) cursor[j] = ranges[j].lo;
    // Leapfrog: repeatedly seek the lagging iterators up to the
    // current maximum until all agree, emit, then advance.
    Value max_val = 0;
    for (int j = 0; j < k; ++j) {
      Value v = inputs_[parts[j].input].trie->ValueAt(parts[j].level,
                                                      cursor[j]);
      if (j == 0 || v > max_val) max_val = v;
    }
    int j = 0;
    int agreed = 0;
    while (true) {
      const Trie& trie = *inputs_[parts[j].input].trie;
      Value v = trie.ValueAt(parts[j].level, cursor[j]);
      if (v < max_val) {
        // Lagging iterator: seek up to max_val.
        cursor[j] = trie.SeekInRange(parts[j].level,
                                     {cursor[j], ranges[j].hi}, max_val);
        if (stats_ != nullptr) ++stats_->seeks;
        if (cursor[j] >= ranges[j].hi) return Status::OK();
        v = trie.ValueAt(parts[j].level, cursor[j]);
      }
      if (v > max_val) {
        max_val = v;
        agreed = 1;  // j is the only iterator at the new max
      } else if (++agreed == k) {
        // All k iterators sit on max_val: a common value.
        for (int t = 0; t < k; ++t) {
          indexes_[parts[t].input][parts[t].level] = cursor[t];
        }
        ADJ_RETURN_IF_ERROR(Emit(i, max_val));
        // Advance iterator j past the emitted value.
        ++cursor[j];
        if (cursor[j] >= ranges[j].hi) return Status::OK();
        max_val = trie.ValueAt(parts[j].level, cursor[j]);
        agreed = 1;
      }
      j = (j + 1) % k;
    }
  }

  /// Cached variant: compute (or reuse) the full intersection at this
  /// position, then iterate it.
  Status DescendCached(int i, const std::vector<Participant>& parts,
                       const std::vector<Trie::Range>& ranges) {
    const int k = static_cast<int>(parts.size());
    uint64_t key = HashCombine(0x9E3779B97F4A7C15ULL, uint64_t(i));
    for (int j = 0; j < k; ++j) {
      key = HashCombine(key, (uint64_t(parts[j].input) << 48) ^
                                 (uint64_t(ranges[j].lo) << 24) ^
                                 uint64_t(ranges[j].hi));
    }
    const IntersectionCache::Entry* entry = cache_->Lookup(key);
    IntersectionCache::Entry fresh;
    if (entry == nullptr) {
      if (stats_ != nullptr) ++stats_->cache_misses;
      ADJ_RETURN_IF_ERROR(ComputeIntersection(parts, ranges, &fresh));
      cache_->Insert(key, fresh);
      entry = &fresh;
    } else if (stats_ != nullptr) {
      ++stats_->cache_hits;
    }
    const size_t num_vals = entry->vals.size();
    for (size_t t = 0; t < num_vals; ++t) {
      Value v = entry->vals[t];
      if (i == 0 && first_value_.has_value() && v != *first_value_) continue;
      for (int j = 0; j < k; ++j) {
        indexes_[parts[j].input][parts[j].level] = entry->idxs[t * k + j];
      }
      // Recursive Emit calls may insert new cache entries, but
      // unordered_map growth preserves element addresses, so `entry`
      // stays valid (the cache never evicts).
      ADJ_RETURN_IF_ERROR(Emit(i, v));
    }
    return Status::OK();
  }

  Status ComputeIntersection(const std::vector<Participant>& parts,
                             const std::vector<Trie::Range>& ranges,
                             IntersectionCache::Entry* out) {
    const int k = static_cast<int>(parts.size());
    if (k == 1) {
      const Participant& part = parts[0];
      const Trie& trie = *inputs_[part.input].trie;
      for (uint32_t idx = ranges[0].lo; idx < ranges[0].hi; ++idx) {
        out->vals.push_back(trie.ValueAt(part.level, idx));
        out->idxs.push_back(idx);
      }
      return Status::OK();
    }
    std::vector<uint32_t> cursor(k);
    for (int j = 0; j < k; ++j) cursor[j] = ranges[j].lo;
    Value max_val = 0;
    for (int j = 0; j < k; ++j) {
      Value v = inputs_[parts[j].input].trie->ValueAt(parts[j].level,
                                                      cursor[j]);
      if (j == 0 || v > max_val) max_val = v;
    }
    int j = 0;
    int agreed = 0;
    while (true) {
      const Trie& trie = *inputs_[parts[j].input].trie;
      Value v = trie.ValueAt(parts[j].level, cursor[j]);
      if (v < max_val) {
        cursor[j] = trie.SeekInRange(parts[j].level,
                                     {cursor[j], ranges[j].hi}, max_val);
        if (stats_ != nullptr) ++stats_->seeks;
        if (cursor[j] >= ranges[j].hi) return Status::OK();
        v = trie.ValueAt(parts[j].level, cursor[j]);
      }
      if (v > max_val) {
        max_val = v;
        agreed = 1;
      } else if (++agreed == k) {
        out->vals.push_back(max_val);
        for (int t = 0; t < k; ++t) out->idxs.push_back(cursor[t]);
        ++cursor[j];
        if (cursor[j] >= ranges[j].hi) return Status::OK();
        max_val = trie.ValueAt(parts[j].level, cursor[j]);
        agreed = 1;
      }
      j = (j + 1) % k;
    }
  }

  /// Records the extension to value v at position i and recurses (or
  /// emits a full result tuple at the deepest position).
  Status Emit(int i, Value v) {
    binding_[i] = v;
    ++extensions_;
    if (stats_ != nullptr) {
      ++stats_->extensions;
      ++stats_->tuples_at_level[i];
    }
    ADJ_RETURN_IF_ERROR(CheckLimits());
    if (i + 1 == static_cast<int>(order_.size())) {
      ++count_;
      if (emit_ != nullptr && *emit_) {
        (*emit_)(std::span<const Value>(binding_.data(), binding_.size()));
      }
      return Status::OK();
    }
    return Descend(i + 1);
  }

  const std::vector<JoinInput>& inputs_;
  const query::AttributeOrder& order_;
  const EmitFn* emit_;
  JoinStats* stats_;
  const JoinLimits& limits_;
  std::optional<Value> first_value_;
  IntersectionCache* cache_;

  std::vector<std::vector<Participant>> participants_;  // per order pos
  std::vector<std::vector<uint32_t>> indexes_;  // per input per level
  std::vector<Value> binding_;
  uint64_t count_ = 0;
  uint64_t extensions_ = 0;
  WallTimer timer_;
};

}  // namespace

StatusOr<uint64_t> LeapfrogJoin(const std::vector<JoinInput>& inputs,
                                const query::AttributeOrder& order,
                                const EmitFn* emit, JoinStats* stats,
                                const JoinLimits& limits,
                                std::optional<Value> first_value,
                                IntersectionCache* cache) {
  if (inputs.empty()) return Status::InvalidArgument("no join inputs");
  Executor exec(inputs, order, emit, stats, limits, first_value, cache);
  return exec.Run();
}

StatusOr<PreparedRelation> PrepareRelation(
    const storage::Relation& base, const std::vector<AttrId>& atom_attrs,
    const std::vector<int>& rank) {
  if (base.arity() != static_cast<int>(atom_attrs.size())) {
    return Status::InvalidArgument("atom arity mismatch in PrepareRelation");
  }
  storage::Schema bound(atom_attrs);
  std::vector<int> perm;
  storage::Schema sorted = bound.SortedBy(rank, &perm);
  PreparedRelation out;
  out.rel = base.PermuteColumns(sorted, perm);
  out.rel.SortAndDedup();
  out.trie = storage::Trie::Build(out.rel);
  out.attrs = sorted.attrs();
  return out;
}

std::vector<int> AscendingRank(int num_attrs) {
  std::vector<int> rank(static_cast<size_t>(num_attrs));
  for (size_t a = 0; a < rank.size(); ++a) rank[a] = int(a);
  return rank;
}

StatusOr<SharedPreparedRelation> PrepareRelationShared(
    std::shared_ptr<const storage::Relation> base,
    const std::vector<AttrId>& atom_attrs, const std::vector<int>& rank,
    storage::IndexCache& cache, storage::IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation in PrepareRelation");
  }
  if (base->arity() != static_cast<int>(atom_attrs.size())) {
    return Status::InvalidArgument("atom arity mismatch in PrepareRelation");
  }
  storage::Schema bound(atom_attrs);
  std::vector<int> perm;
  storage::Schema sorted = bound.SortedBy(rank, &perm);
  StatusOr<std::shared_ptr<const storage::PreparedIndex>> index =
      cache.GetPermuted(std::move(base), sorted, perm, stats);
  if (!index.ok()) return index.status();
  SharedPreparedRelation out;
  out.index = std::move(index.value());
  out.attrs = sorted.attrs();
  return out;
}

}  // namespace adj::wcoj
