#include "wcoj/leapfrog.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"
#include "wcoj/intersect.h"

namespace adj::wcoj {

void JoinStats::Merge(const JoinStats& other) {
  if (tuples_at_level.size() < other.tuples_at_level.size()) {
    tuples_at_level.resize(other.tuples_at_level.size(), 0);
  }
  for (size_t i = 0; i < other.tuples_at_level.size(); ++i) {
    tuples_at_level[i] += other.tuples_at_level[i];
  }
  seeks += other.seeks;
  extensions += other.extensions;
  seconds += other.seconds;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  simd_intersections += other.simd_intersections;
  scalar_fallbacks += other.scalar_fallbacks;
  blocks_decoded += other.blocks_decoded;
}

const IntersectionCache::Entry* IntersectionCache::Lookup(uint64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

const IntersectionCache::Entry* IntersectionCache::Insert(uint64_t key,
                                                          Entry&& entry) {
  const uint64_t cost = entry.vals.size() + entry.idxs.size();
  if (stored_values_ + cost > capacity_) return nullptr;  // cache full: skip
  auto [it, inserted] = map_.emplace(key, std::move(entry));
  if (inserted) stored_values_ += cost;
  return &it->second;
}

void IntersectionCache::Clear() {
  map_.clear();
  stored_values_ = 0;
}

namespace {

using storage::Trie;

/// One (input, level) pair participating at an order position.
struct Participant {
  int input;  // index into inputs
  int level;  // trie level of this attribute within the input
};

class Executor {
 public:
  Executor(const std::vector<JoinInput>& inputs,
           const query::AttributeOrder& order, const EmitFn* emit,
           JoinStats* stats, const JoinLimits& limits,
           std::optional<Value> first_value, IntersectionCache* cache)
      : inputs_(inputs),
        order_(order),
        emit_(emit),
        stats_(stats),
        limits_(limits),
        first_value_(first_value),
        cache_(cache) {}

  StatusOr<uint64_t> Run() {
    const int n = static_cast<int>(order_.size());
    participants_.assign(n, {});
    for (int r = 0; r < static_cast<int>(inputs_.size()); ++r) {
      const JoinInput& in = inputs_[r];
      ADJ_CHECK(in.trie != nullptr);
      ADJ_CHECK(static_cast<int>(in.attrs.size()) == in.trie->arity());
      int prev_pos = -1;
      for (int l = 0; l < static_cast<int>(in.attrs.size()); ++l) {
        auto it = std::find(order_.begin(), order_.end(), in.attrs[l]);
        if (it == order_.end()) {
          return Status::InvalidArgument(
              "input attribute missing from attribute order");
        }
        const int pos = static_cast<int>(it - order_.begin());
        if (pos <= prev_pos) {
          return Status::InvalidArgument(
              "input trie levels not aligned with attribute order");
        }
        prev_pos = pos;
        participants_[pos].push_back({r, l});
      }
    }
    for (int i = 0; i < n; ++i) {
      if (participants_[i].empty()) {
        return Status::InvalidArgument(
            "attribute covered by no input (cartesian product)");
      }
    }
    if (stats_ != nullptr && stats_->tuples_at_level.size() < size_t(n)) {
      stats_->tuples_at_level.resize(n, 0);
    }
    indexes_.assign(inputs_.size(), {});
    for (size_t r = 0; r < inputs_.size(); ++r) {
      indexes_[r].assign(inputs_[r].attrs.size(), 0);
    }
    binding_.assign(n, 0);
    tuples_local_.assign(n, 0);
    BuildArena(n);
    timer_.Restart();
    Status st = Descend(0);
    FlushStats();
    if (!st.ok()) return st;
    return count_;
  }

 private:
  /// Preallocated per-order-position kernel workspace, carved out of
  /// the executor's flat arena at Run(): span/range views over the
  /// current sibling ranges, the intersection output (values + a
  /// row-major position matrix) and the k-way reduction scratch.
  /// Buffers for distinct positions are disjoint, so the recursion
  /// (iterate level i's result while descending into i+1) never
  /// clobbers live data — and steady-state Descend touches no heap.
  struct Slot {
    std::span<const Value>* spans = nullptr;
    Trie::Range* ranges = nullptr;
    Value* vals = nullptr;
    uint32_t* pos = nullptr;
    intersect::KScratch scratch;
    // Only carved when a participant level is block-compressed: tagged
    // raw/compressed views plus one persistent block-decode cache per
    // participant, so compressed runs flow through the same kernels
    // with no per-call allocation — and consecutive Descends whose
    // small sibling ranges share a block decode it once, not per call.
    intersect::RunView* views = nullptr;
    storage::blockcodec::DecodeCache* caches = nullptr;
    bool has_comp = false;
    uint32_t cap = 0;  // min MaxRangeWidth over participants
  };

  /// Sizes the arena from the tries' per-level maximum sibling-range
  /// widths (recorded at Trie::Build — no index rescan here). The
  /// intersection at a position never exceeds its narrowest
  /// participant range, so cap = min over participants bounds every
  /// output. Value/position buffers are only carved where the
  /// streaming path materializes (k >= 2, uncached); cached mode owns
  /// its memory in cache entries and borrows only the scratch.
  void BuildArena(int n) {
    slots_.assign(n, Slot{});
    std::vector<size_t> parts_off(n), vals_off(n), pos_off(n), pa_off(n),
        pb_off(n), ord_off(n), bs_off(n);
    size_t total_parts = 0, total_vals = 0, total_u32 = 0, total_bs = 0;
    struct ArenaRef {
      const uint8_t* id;
      size_t vals_off;
      size_t bits_off;
      uint32_t num_blocks;
    };
    std::vector<ArenaRef> arenas;
    size_t total_arena_vals = 0, total_arena_bits = 0;
    for (int i = 0; i < n; ++i) {
      const std::vector<Participant>& parts = participants_[i];
      const size_t k = parts.size();
      uint32_t cap = std::numeric_limits<uint32_t>::max();
      bool has_comp = false;
      for (const Participant& p : parts) {
        cap = std::min(cap, inputs_[p.input].trie->MaxRangeWidth(p.level));
        has_comp |= inputs_[p.input].trie->level_compressed(p.level);
      }
      slots_[i].cap = cap;
      slots_[i].has_comp = has_comp;
      parts_off[i] = total_parts;
      total_parts += k;
      if (has_comp) {
        // One decode arena per distinct compressed payload (a self-join
        // views the same trie level from several participants — size
        // and decode it once). Offsets into the flat storage below.
        for (const Participant& p : parts) {
          const Trie& trie = *inputs_[p.input].trie;
          if (!trie.level_compressed(p.level)) continue;
          const auto view = trie.CompressedView(p.level);
          const uint8_t* pay = view.bytes.data();
          bool seen = false;
          for (const ArenaRef& a : arenas) seen |= a.id == pay;
          if (seen) continue;
          const uint32_t nb = view.num_blocks();
          arenas.push_back({pay, total_arena_vals, total_arena_bits, nb});
          total_arena_vals +=
              size_t(nb) * storage::blockcodec::kBlockValues;
          total_arena_bits += (size_t(nb) + 63) / 64;
        }
      }
      const bool need_vals = cache_ == nullptr && k >= 2;
      vals_off[i] = total_vals;
      if (need_vals) total_vals += cap;
      pos_off[i] = total_u32;
      if (need_vals) total_u32 += size_t(cap) * k;
      pa_off[i] = total_u32;
      if (k >= 3) total_u32 += cap;
      pb_off[i] = total_u32;
      if (k >= 3) total_u32 += cap;
      ord_off[i] = total_u32;
      if (k >= 2) total_u32 += k;
      bs_off[i] = total_bs;
      if (has_comp) total_bs += k;
    }
    span_storage_.assign(total_parts, {});
    range_storage_.assign(total_parts, {});
    view_storage_.assign(total_parts, {});
    vals_storage_.assign(total_vals, 0);
    u32_storage_.assign(total_u32, 0);
    decode_caches_.assign(total_bs, {});
    decode_arena_storage_.assign(total_arena_vals, 0);
    decode_bitmap_storage_.assign(total_arena_bits, 0);
    for (int i = 0; i < n; ++i) {
      Slot& s = slots_[i];
      s.spans = span_storage_.data() + parts_off[i];
      s.ranges = range_storage_.data() + parts_off[i];
      s.views = view_storage_.data() + parts_off[i];
      s.vals = vals_storage_.data() + vals_off[i];
      s.pos = u32_storage_.data() + pos_off[i];
      s.scratch.pa = u32_storage_.data() + pa_off[i];
      s.scratch.pb = u32_storage_.data() + pb_off[i];
      s.scratch.ord = u32_storage_.data() + ord_off[i];
      s.caches = decode_caches_.data() + bs_off[i];
      if (!s.has_comp) continue;
      // Bind each compressed participant's cache to its payload's
      // arena: the Descend loops revisit scattered sibling ranges of
      // the same level, so memoizing decoded blocks for the run is
      // what keeps direct-on-compressed intersection near raw speed.
      const std::vector<Participant>& parts = participants_[i];
      for (size_t j = 0; j < parts.size(); ++j) {
        const Participant& p = parts[j];
        const Trie& trie = *inputs_[p.input].trie;
        if (!trie.level_compressed(p.level)) continue;
        const uint8_t* pay = trie.CompressedView(p.level).bytes.data();
        for (const ArenaRef& a : arenas) {
          if (a.id != pay) continue;
          s.caches[j].arena_id = pay;
          s.caches[j].arena = decode_arena_storage_.data() + a.vals_off;
          s.caches[j].decoded = decode_bitmap_storage_.data() + a.bits_off;
          break;
        }
      }
    }
  }

  /// True when every block covering [lo, hi) (non-empty) is already
  /// decoded in the cache's bound arena.
  static bool RunDecoded(const storage::blockcodec::DecodeCache& c,
                         uint32_t lo, uint32_t hi) {
    namespace bc = storage::blockcodec;
    const uint32_t b1 = (hi - 1) / bc::kBlockValues;
    for (uint32_t b = lo / bc::kBlockValues; b <= b1; ++b) {
      if ((c.decoded[b >> 6] & (uint64_t{1} << (b & 63))) == 0) return false;
    }
    return true;
  }

  /// Sibling range of participant p at order position i, derived from
  /// its parent level's current index.
  Trie::Range RangeOf(const Participant& p) const {
    const Trie& trie = *inputs_[p.input].trie;
    if (p.level == 0) return trie.RootRange();
    return trie.ChildRange(p.level - 1, indexes_[p.input][p.level - 1]);
  }

  Status CheckLimits() {
    if (extensions_ > limits_.max_extensions) {
      return Status::ResourceExhausted("join exceeded extension budget");
    }
    if ((extensions_ & 0xFFF) == 0 && timer_.Seconds() > limits_.max_seconds) {
      return Status::DeadlineExceeded("join exceeded time budget");
    }
    return Status::OK();
  }

  /// Leapfrog extension at order position i: intersect the participant
  /// ranges through the kernel layer, then recurse per common value.
  Status Descend(int i) {
    const std::vector<Participant>& parts = participants_[i];
    const int k = static_cast<int>(parts.size());
    Slot& slot = slots_[i];

    // Materialize range + span views; bail out on any empty range.
    // Slots with a compressed participant build tagged RunViews
    // instead of raw spans (a compressed level has no flat array).
    for (int j = 0; j < k; ++j) {
      const Participant& p = parts[j];
      const Trie& trie = *inputs_[p.input].trie;
      const Trie::Range r = RangeOf(p);
      if (r.empty()) return Status::OK();
      slot.ranges[j] = r;
      if (!slot.has_comp) {
        slot.spans[j] = trie.RangeSpan(p.level, r);
      } else if (trie.level_compressed(p.level)) {
        // Once every block covering the run sits decoded in the
        // arena, the run is readable as a plain raw span at
        // arena + lo (non-final blocks are always full, so level
        // position p lives at arena[p]) — warm ranges then take the
        // raw kernel path and only cold ranges pay the
        // direct-on-compressed machinery (which fills the arena).
        const storage::blockcodec::DecodeCache& c = slot.caches[j];
        if (c.decoded != nullptr && RunDecoded(c, r.lo, r.hi)) {
          slot.views[j] = intersect::RunView::Raw(
              std::span<const Value>(c.arena + r.lo, r.hi - r.lo));
        } else {
          slot.views[j] = intersect::RunView::Compressed(
              {trie.CompressedView(p.level), r.lo, r.hi});
        }
      } else {
        slot.views[j] = intersect::RunView::Raw(trie.RangeSpan(p.level, r));
      }
    }

    if (cache_ != nullptr) return DescendCached(i, parts, slot, k);

    if (i == 0 && first_value_.has_value()) {
      // Sampler mode: pin order[0] to *first_value_.
      const Value v = *first_value_;
      for (int j = 0; j < k; ++j) {
        const Participant& p = parts[j];
        const Trie& trie = *inputs_[p.input].trie;
        uint32_t idx = trie.FindInRange(p.level, slot.ranges[j], v);
        ++kernel_stats_.seeks;
        if (idx == slot.ranges[j].hi) return Status::OK();
        indexes_[p.input][p.level] = idx;
      }
      return Emit(i, v);
    }

    if (k == 1) {
      // Single participant: every sibling value extends the binding —
      // stream straight off the trie, no materialization. Compressed
      // levels stream block by block through a stack buffer rather
      // than paying a per-value block decode via ValueAt.
      const Participant& p = parts[0];
      const Trie& trie = *inputs_[p.input].trie;
      const Trie::Range r = slot.ranges[0];
      if (slot.has_comp && !slot.views[0].compressed) {
        // Compressed level whose run was upgraded to a raw arena span.
        const std::span<const Value> s = slot.views[0].raw;
        for (uint32_t t = 0; t < s.size(); ++t) {
          indexes_[p.input][p.level] = r.lo + t;
          ADJ_RETURN_IF_ERROR(Emit(i, s[t]));
        }
        return Status::OK();
      }
      if (slot.has_comp) {
        namespace bc = storage::blockcodec;
        const bc::CompressedLevelView cv = trie.CompressedView(p.level);
        bc::DecodeCache* const cache = slot.caches;
        const uint32_t bend = (r.hi - 1) / bc::kBlockValues;
        for (uint32_t blk = r.lo / bc::kBlockValues; blk <= bend; ++blk) {
          const uint32_t cnt = bc::DecodeBlockCached(
              cv, blk, cache, &kernel_stats_.blocks_decoded);
          const uint32_t base = blk * bc::kBlockValues;
          const uint32_t lo = std::max(r.lo, base);
          const uint32_t hi = std::min(r.hi, base + cnt);
          for (uint32_t idx = lo; idx < hi; ++idx) {
            indexes_[p.input][p.level] = idx;
            // Deeper levels use their own slots' caches, so the block
            // held here survives the recursion inside Emit.
            ADJ_RETURN_IF_ERROR(Emit(i, cache->vals[idx - base]));
          }
        }
        return Status::OK();
      }
      for (uint32_t idx = r.lo; idx < r.hi; ++idx) {
        indexes_[p.input][p.level] = idx;
        ADJ_RETURN_IF_ERROR(Emit(i, trie.ValueAt(p.level, idx)));
      }
      return Status::OK();
    }

    const size_t kk = static_cast<size_t>(k);
    const size_t n =
        slot.has_comp
            ? intersect::IntersectKRuns(slot.views, k, slot.vals, slot.pos,
                                        slot.scratch, slot.caches,
                                        &kernel_stats_)
            : intersect::IntersectK(slot.spans, k, slot.vals, slot.pos,
                                    slot.scratch, &kernel_stats_);
    for (size_t t = 0; t < n; ++t) {
      for (int j = 0; j < k; ++j) {
        const Participant& p = parts[j];
        indexes_[p.input][p.level] = slot.ranges[j].lo + slot.pos[t * kk + j];
      }
      ADJ_RETURN_IF_ERROR(Emit(i, slot.vals[t]));
    }
    return Status::OK();
  }

  /// Cached variant: compute (or reuse) the full intersection at this
  /// position, then iterate it.
  Status DescendCached(int i, const std::vector<Participant>& parts,
                       Slot& slot, int k) {
    uint64_t key = HashCombine(0x9E3779B97F4A7C15ULL, uint64_t(i));
    for (int j = 0; j < k; ++j) {
      key = HashCombine(key, (uint64_t(parts[j].input) << 48) ^
                                 (uint64_t(slot.ranges[j].lo) << 24) ^
                                 uint64_t(slot.ranges[j].hi));
    }
    const IntersectionCache::Entry* entry = cache_->Lookup(key);
    IntersectionCache::Entry fresh;
    if (entry == nullptr) {
      ++cache_misses_;
      // Same kernels as the streaming path, materialized into the
      // entry's own buffers (the cache outlives this run's arena).
      const size_t kk = static_cast<size_t>(k);
      fresh.vals.resize(slot.cap);
      fresh.idxs.resize(size_t(slot.cap) * kk);
      const size_t n =
          slot.has_comp
              ? intersect::IntersectKRuns(slot.views, k, fresh.vals.data(),
                                          fresh.idxs.data(), slot.scratch,
                                          slot.caches, &kernel_stats_)
              : intersect::IntersectK(slot.spans, k, fresh.vals.data(),
                                      fresh.idxs.data(), slot.scratch,
                                      &kernel_stats_);
      fresh.vals.resize(n);
      fresh.idxs.resize(n * kk);
      fresh.vals.shrink_to_fit();
      fresh.idxs.shrink_to_fit();
      // Kernel positions are span-relative; the cache stores absolute
      // trie indexes (the key already encodes the ranges).
      for (size_t t = 0; t < n; ++t) {
        for (size_t j = 0; j < kk; ++j) {
          fresh.idxs[t * kk + j] += slot.ranges[j].lo;
        }
      }
      const IntersectionCache::Entry* stored =
          cache_->Insert(key, std::move(fresh));
      // Insert leaves `fresh` intact when the cache is full; otherwise
      // iterate the stored entry (unordered_map growth preserves
      // element addresses, and the cache never evicts).
      entry = stored != nullptr ? stored : &fresh;
    } else {
      ++cache_hits_;
    }
    const size_t num_vals = entry->vals.size();
    for (size_t t = 0; t < num_vals; ++t) {
      Value v = entry->vals[t];
      if (i == 0 && first_value_.has_value() && v != *first_value_) continue;
      for (int j = 0; j < k; ++j) {
        indexes_[parts[j].input][parts[j].level] = entry->idxs[t * k + j];
      }
      ADJ_RETURN_IF_ERROR(Emit(i, v));
    }
    return Status::OK();
  }

  /// Records the extension to value v at position i and recurses (or
  /// emits a full result tuple at the deepest position).
  Status Emit(int i, Value v) {
    binding_[i] = v;
    ++extensions_;
    ++tuples_local_[i];
    ADJ_RETURN_IF_ERROR(CheckLimits());
    if (i + 1 == static_cast<int>(order_.size())) {
      ++count_;
      if (emit_ != nullptr && *emit_) {
        (*emit_)(std::span<const Value>(binding_.data(), binding_.size()));
      }
      return Status::OK();
    }
    return Descend(i + 1);
  }

  /// One flush per Run — the inner loops tick local counters only, so
  /// the hot path carries no branches on an optional stats sink.
  void FlushStats() {
    if (stats_ == nullptr) return;
    stats_->seconds += timer_.Seconds();
    stats_->seeks += kernel_stats_.seeks;
    stats_->simd_intersections += kernel_stats_.simd_intersections;
    stats_->scalar_fallbacks += kernel_stats_.scalar_fallbacks;
    stats_->blocks_decoded += kernel_stats_.blocks_decoded;
    stats_->extensions += extensions_;
    stats_->cache_hits += cache_hits_;
    stats_->cache_misses += cache_misses_;
    for (size_t i = 0; i < tuples_local_.size(); ++i) {
      stats_->tuples_at_level[i] += tuples_local_[i];
    }
  }

  const std::vector<JoinInput>& inputs_;
  const query::AttributeOrder& order_;
  const EmitFn* emit_;
  JoinStats* stats_;
  const JoinLimits& limits_;
  std::optional<Value> first_value_;
  IntersectionCache* cache_;

  std::vector<std::vector<Participant>> participants_;  // per order pos
  std::vector<std::vector<uint32_t>> indexes_;  // per input per level
  std::vector<Value> binding_;
  // Arena backing store (sized once in BuildArena) and per-position
  // views into it.
  std::vector<Slot> slots_;
  std::vector<std::span<const Value>> span_storage_;
  std::vector<Trie::Range> range_storage_;
  std::vector<intersect::RunView> view_storage_;
  std::vector<Value> vals_storage_;
  std::vector<uint32_t> u32_storage_;
  std::vector<storage::blockcodec::DecodeCache> decode_caches_;
  std::vector<Value> decode_arena_storage_;
  std::vector<uint64_t> decode_bitmap_storage_;
  // Local counters, flushed once per Run.
  std::vector<uint64_t> tuples_local_;
  intersect::KernelStats kernel_stats_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t count_ = 0;
  uint64_t extensions_ = 0;
  WallTimer timer_;
};

}  // namespace

StatusOr<uint64_t> LeapfrogJoin(const std::vector<JoinInput>& inputs,
                                const query::AttributeOrder& order,
                                const EmitFn* emit, JoinStats* stats,
                                const JoinLimits& limits,
                                std::optional<Value> first_value,
                                IntersectionCache* cache) {
  if (inputs.empty()) return Status::InvalidArgument("no join inputs");
  Executor exec(inputs, order, emit, stats, limits, first_value, cache);
  return exec.Run();
}

StatusOr<PreparedRelation> PrepareRelation(
    const storage::Relation& base, const std::vector<AttrId>& atom_attrs,
    const std::vector<int>& rank) {
  if (base.arity() != static_cast<int>(atom_attrs.size())) {
    return Status::InvalidArgument("atom arity mismatch in PrepareRelation");
  }
  storage::Schema bound(atom_attrs);
  std::vector<int> perm;
  storage::Schema sorted = bound.SortedBy(rank, &perm);
  PreparedRelation out;
  out.rel = base.PermuteColumns(sorted, perm);
  out.rel.SortAndDedup();
  out.trie = storage::Trie::Build(out.rel);
  out.attrs = sorted.attrs();
  return out;
}

std::vector<int> AscendingRank(int num_attrs) {
  std::vector<int> rank(static_cast<size_t>(num_attrs));
  for (size_t a = 0; a < rank.size(); ++a) rank[a] = int(a);
  return rank;
}

StatusOr<SharedPreparedRelation> PrepareRelationShared(
    std::shared_ptr<const storage::Relation> base,
    const std::vector<AttrId>& atom_attrs, const std::vector<int>& rank,
    storage::IndexCache& cache, storage::IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation in PrepareRelation");
  }
  if (base->arity() != static_cast<int>(atom_attrs.size())) {
    return Status::InvalidArgument("atom arity mismatch in PrepareRelation");
  }
  storage::Schema bound(atom_attrs);
  std::vector<int> perm;
  storage::Schema sorted = bound.SortedBy(rank, &perm);
  StatusOr<std::shared_ptr<const storage::PreparedIndex>> index =
      cache.GetPermuted(std::move(base), sorted, perm, stats);
  if (!index.ok()) return index.status();
  SharedPreparedRelation out;
  out.index = std::move(index.value());
  out.attrs = sorted.attrs();
  return out;
}

StatusOr<SharedBoundRelation> PrepareRelationRowsShared(
    std::shared_ptr<const storage::Relation> base,
    const std::vector<AttrId>& atom_attrs, const std::vector<int>& rank,
    storage::IndexCache& cache, storage::IndexBuildStats* stats) {
  if (base == nullptr) {
    return Status::InvalidArgument("null base relation in PrepareRelation");
  }
  if (base->arity() != static_cast<int>(atom_attrs.size())) {
    return Status::InvalidArgument("atom arity mismatch in PrepareRelation");
  }
  storage::Schema bound(atom_attrs);
  std::vector<int> perm;
  storage::Schema sorted = bound.SortedBy(rank, &perm);
  StatusOr<std::shared_ptr<const storage::Relation>> rel =
      cache.GetPermutedRelation(std::move(base), sorted, perm, stats);
  if (!rel.ok()) return rel.status();
  SharedBoundRelation out;
  out.rel = std::move(rel.value());
  out.attrs = sorted.attrs();
  return out;
}

}  // namespace adj::wcoj
