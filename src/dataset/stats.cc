#include "dataset/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/logging.h"

namespace adj::dataset {

std::string GraphStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "edges=%llu nodes=%llu avg_deg=%.2f max_out=%llu "
                "max_in=%llu top1%%share=%.3f skew=%.2f",
                static_cast<unsigned long long>(num_edges),
                static_cast<unsigned long long>(num_nodes), avg_out_degree,
                static_cast<unsigned long long>(max_out_degree),
                static_cast<unsigned long long>(max_in_degree),
                top1pct_out_share, fitted_skew);
  return buf;
}

GraphStats ComputeGraphStats(const storage::Relation& edges) {
  ADJ_CHECK(edges.arity() == 2) << "graph stats require an edge relation";
  GraphStats stats;
  stats.num_edges = edges.size();
  if (edges.empty()) return stats;

  std::unordered_map<Value, uint64_t> out_deg, in_deg;
  for (uint64_t r = 0; r < edges.size(); ++r) {
    ++out_deg[edges.At(r, 0)];
    ++in_deg[edges.At(r, 1)];
  }
  std::unordered_map<Value, char> nodes;
  for (const auto& [v, d] : out_deg) nodes.emplace(v, 0);
  for (const auto& [v, d] : in_deg) nodes.emplace(v, 0);
  stats.num_nodes = nodes.size();

  std::vector<uint64_t> degs;
  degs.reserve(out_deg.size());
  for (const auto& [v, d] : out_deg) {
    degs.push_back(d);
    stats.max_out_degree = std::max(stats.max_out_degree, d);
  }
  for (const auto& [v, d] : in_deg) {
    stats.max_in_degree = std::max(stats.max_in_degree, d);
  }
  stats.avg_out_degree = double(edges.size()) / double(stats.num_nodes);

  std::sort(degs.rbegin(), degs.rend());
  const size_t top = std::max<size_t>(1, stats.num_nodes / 100);
  uint64_t top_edges = 0;
  for (size_t i = 0; i < top && i < degs.size(); ++i) top_edges += degs[i];
  stats.top1pct_out_share = double(top_edges) / double(edges.size());

  // Log-log regression of rank vs degree over the head — a rough Zipf
  // exponent; enough to compare generator skew settings.
  const size_t head = std::min<size_t>(degs.size(), 100);
  if (head >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < head; ++i) {
      const double x = std::log(double(i + 1));
      const double y = std::log(double(std::max<uint64_t>(degs[i], 1)));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double n = double(head);
    const double denom = n * sxx - sx * sx;
    if (std::fabs(denom) > 1e-12) {
      stats.fitted_skew = -(n * sxy - sx * sy) / denom;
    }
  }
  return stats;
}

std::vector<uint64_t> OutDegreeHistogram(const storage::Relation& edges,
                                         uint64_t max_degree) {
  ADJ_CHECK(edges.arity() == 2);
  std::unordered_map<Value, uint64_t> out_deg;
  for (uint64_t r = 0; r < edges.size(); ++r) ++out_deg[edges.At(r, 0)];
  std::vector<uint64_t> hist(max_degree + 1, 0);
  for (const auto& [v, d] : out_deg) {
    ++hist[std::min<uint64_t>(d, max_degree)];
  }
  return hist;
}

}  // namespace adj::dataset
