#ifndef ADJ_DATASET_GENERATORS_H_
#define ADJ_DATASET_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/relation.h"

namespace adj::dataset {

/// All generators produce a binary edge relation R(src, dst) with
/// schema attribute ids {0, 1}, no self loops, sorted and deduplicated.
/// Query atoms later rebind the columns to their own attributes.

/// Erdős–Rényi-style: `num_edges` uniform random edges over
/// `num_nodes` nodes.
storage::Relation ErdosRenyi(uint64_t num_nodes, uint64_t num_edges,
                             Rng& rng);

/// RMAT (Chakrabarti et al.): recursive quadrant sampling over a
/// 2^scale x 2^scale adjacency matrix. The default quadrant weights
/// (0.57, 0.19, 0.19, 0.05) give the heavy-tailed degree skew of real
/// web/social graphs — the property that makes the paper's cyclic
/// queries computationally hard.
struct RmatParams {
  int scale = 14;  // 2^scale nodes
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
};
storage::Relation Rmat(const RmatParams& params, uint64_t num_edges, Rng& rng);

/// Zipf-skewed bipartite-style edges: both endpoints drawn from a
/// Zipf(theta) distribution over `num_nodes`; used by property tests
/// that sweep skew.
storage::Relation ZipfGraph(uint64_t num_nodes, uint64_t num_edges,
                            double theta, Rng& rng);

/// Deterministic complete graph on n nodes (both edge directions),
/// handy for tests with known join cardinalities.
storage::Relation CompleteGraph(uint32_t n);

/// Deterministic directed cycle 0 -> 1 -> ... -> n-1 -> 0.
storage::Relation CycleGraph(uint32_t n);

/// Deterministic path graph 0 -> 1 -> ... -> n-1.
storage::Relation PathGraph(uint32_t n);

/// Adds the reverse of every edge (makes the relation symmetric).
storage::Relation Symmetrize(const storage::Relation& edges);

}  // namespace adj::dataset

#endif  // ADJ_DATASET_GENERATORS_H_
