#ifndef ADJ_DATASET_STATS_H_
#define ADJ_DATASET_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace adj::dataset {

/// Structural statistics of an edge relation — the properties
/// (heavy-tailed degrees, skew) that make the paper's cyclic queries
/// computationally hard and that drive the Q5 straggler effect in
/// Fig. 11.
struct GraphStats {
  uint64_t num_edges = 0;
  uint64_t num_nodes = 0;          // distinct endpoints
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  double avg_out_degree = 0.0;
  /// Share of edges carried by the 1% highest-out-degree nodes — a
  /// simple skew indicator (0.01 for uniform graphs, near 1 for
  /// extreme skew).
  double top1pct_out_share = 0.0;
  /// Zipf-like skew exponent fitted from the head of the out-degree
  /// distribution (log-log regression over the top 100 degrees).
  double fitted_skew = 0.0;

  std::string ToString() const;
};

/// Computes stats for a binary edge relation.
GraphStats ComputeGraphStats(const storage::Relation& edges);

/// Out-degree histogram: result[d] = number of nodes with out-degree
/// d (dense up to `max_degree`, larger degrees clamped into the last
/// bucket).
std::vector<uint64_t> OutDegreeHistogram(const storage::Relation& edges,
                                         uint64_t max_degree = 64);

}  // namespace adj::dataset

#endif  // ADJ_DATASET_STATS_H_
