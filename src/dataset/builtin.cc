#include "dataset/builtin.h"

#include <cstdio>

#include "common/rng.h"
#include "dataset/generators.h"

namespace adj::dataset {

const std::vector<BuiltinSpec>& BuiltinSpecs() {
  // Edge budgets keep the paper's relative ordering
  // (13.2, 22.1, 50.9, 69.4, 183.9, 234.4 million) at ~1/1100 scale.
  static const std::vector<BuiltinSpec>* kSpecs = new std::vector<BuiltinSpec>{
      {"WB", "web-BerkStan stand-in", 13200000, 12000, 11},
      {"AS", "as-Skitter stand-in", 22100000, 20000, 12},
      {"WT", "wiki-Talk stand-in", 50900000, 46000, 13},
      {"LJ", "com-LiveJournal stand-in", 69400000, 63000, 13},
      {"EN", "en-wiki-2013 stand-in", 183900000, 167000, 14},
      {"OK", "com-Orkut stand-in", 234400000, 213000, 14},
  };
  return *kSpecs;
}

StatusOr<storage::Relation> MakeBuiltin(const std::string& name,
                                        double scale) {
  for (const BuiltinSpec& spec : BuiltinSpecs()) {
    if (spec.name != name) continue;
    const uint64_t edges =
        static_cast<uint64_t>(double(spec.target_edges) * scale);
    if (edges == 0) {
      return Status::InvalidArgument("scale too small for dataset " + name);
    }
    // Seed derived from the dataset name so every dataset is distinct
    // but fully reproducible.
    uint64_t seed = 0x9E37'79B9'7F4A'7C15ULL;
    for (char c : name) seed = seed * 131 + static_cast<uint64_t>(c);
    Rng rng(seed);
    RmatParams params;
    params.scale = spec.rmat_scale;
    return Rmat(params, edges, rng);
  }
  return Status::NotFound("unknown builtin dataset: " + name);
}

std::string DescribeDataset(const std::string& name,
                            const storage::Relation& rel) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-4s |R|=%9llu  size=%8.2f MB", name.c_str(),
                static_cast<unsigned long long>(rel.size()),
                double(rel.SizeBytes()) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace adj::dataset
