#include "dataset/generators.h"

#include "common/logging.h"

namespace adj::dataset {
namespace {

storage::Schema EdgeSchema() { return storage::Schema({0, 1}); }

}  // namespace

storage::Relation ErdosRenyi(uint64_t num_nodes, uint64_t num_edges,
                             Rng& rng) {
  ADJ_CHECK(num_nodes >= 2);
  storage::Relation rel(EdgeSchema());
  rel.Reserve(num_edges);
  uint64_t produced = 0;
  while (produced < num_edges) {
    Value u = static_cast<Value>(rng.Uniform(num_nodes));
    Value v = static_cast<Value>(rng.Uniform(num_nodes));
    if (u == v) continue;
    rel.Append({u, v});
    ++produced;
  }
  rel.SortAndDedup();
  return rel;
}

storage::Relation Rmat(const RmatParams& params, uint64_t num_edges,
                       Rng& rng) {
  ADJ_CHECK(params.scale >= 1 && params.scale < 31);
  const double ab = params.a + params.b;
  const double abc = params.a + params.b + params.c;
  storage::Relation rel(EdgeSchema());
  rel.Reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint32_t u = 0, v = 0;
    for (int depth = 0; depth < params.scale; ++depth) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;  // drop self loops; slightly fewer edges is fine
    rel.Append({u, v});
  }
  rel.SortAndDedup();
  return rel;
}

storage::Relation ZipfGraph(uint64_t num_nodes, uint64_t num_edges,
                            double theta, Rng& rng) {
  ZipfSampler zipf(num_nodes, theta);
  storage::Relation rel(EdgeSchema());
  rel.Reserve(num_edges);
  uint64_t produced = 0;
  while (produced < num_edges) {
    Value u = static_cast<Value>(zipf.Sample(rng));
    Value v = static_cast<Value>(zipf.Sample(rng));
    if (u == v) continue;
    rel.Append({u, v});
    ++produced;
  }
  rel.SortAndDedup();
  return rel;
}

storage::Relation CompleteGraph(uint32_t n) {
  storage::Relation rel(EdgeSchema());
  rel.Reserve(uint64_t(n) * (n - 1));
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < n; ++v) {
      if (u != v) rel.Append({u, v});
    }
  }
  // Already lexicographically sorted by construction.
  return rel;
}

storage::Relation CycleGraph(uint32_t n) {
  storage::Relation rel(EdgeSchema());
  for (uint32_t u = 0; u < n; ++u) rel.Append({u, (u + 1) % n});
  rel.SortAndDedup();
  return rel;
}

storage::Relation PathGraph(uint32_t n) {
  storage::Relation rel(EdgeSchema());
  for (uint32_t u = 0; u + 1 < n; ++u) rel.Append({u, u + 1});
  return rel;
}

storage::Relation Symmetrize(const storage::Relation& edges) {
  storage::Relation rel(edges.schema());
  rel.Reserve(edges.size() * 2);
  for (uint64_t r = 0; r < edges.size(); ++r) {
    Value u = edges.At(r, 0), v = edges.At(r, 1);
    rel.Append({u, v});
    rel.Append({v, u});
  }
  rel.SortAndDedup();
  return rel;
}

}  // namespace adj::dataset
