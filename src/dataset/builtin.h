#ifndef ADJ_DATASET_BUILTIN_H_
#define ADJ_DATASET_BUILTIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace adj::dataset {

/// Laptop-scale synthetic stand-ins for the paper's six SNAP datasets
/// (Table I). Relative size ordering WB < AS < WT < LJ < EN < OK and
/// the heavy-tailed skew are preserved (see DESIGN.md, substitutions).
struct BuiltinSpec {
  std::string name;         // "WB", "AS", "WT", "LJ", "EN", "OK"
  std::string description;  // what it stands in for
  uint64_t paper_tuples;    // |R| in the paper, in millions x 10^6
  uint64_t target_edges;    // edges at scale = 1.0 here
  int rmat_scale;           // 2^scale nodes
};

/// Specs for all six builtin datasets, in paper order.
const std::vector<BuiltinSpec>& BuiltinSpecs();

/// Generates the named dataset. `scale` multiplies the edge budget
/// (tests use small scales; benches default to 1.0). The result is a
/// sorted, deduplicated edge relation with schema (0, 1).
StatusOr<storage::Relation> MakeBuiltin(const std::string& name,
                                        double scale = 1.0);

/// Table I row for a generated dataset: name, tuples, payload MB.
std::string DescribeDataset(const std::string& name,
                            const storage::Relation& rel);

}  // namespace adj::dataset

#endif  // ADJ_DATASET_BUILTIN_H_
