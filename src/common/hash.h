#ifndef ADJ_COMMON_HASH_H_
#define ADJ_COMMON_HASH_H_

#include <cstdint>

#include "common/types.h"

namespace adj {

/// 64-bit finalizer (from MurmurHash3) used everywhere a well-mixed
/// hash of a value is needed.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Per-attribute hash family used by HCube: hash of value `v` under the
/// hash function of attribute `attr`, reduced modulo `buckets`.
/// Different attributes use decorrelated functions (seeded by attr).
inline uint32_t AttributeHash(AttrId attr, Value v, uint32_t buckets) {
  if (buckets <= 1) return 0;
  uint64_t h = Mix64((uint64_t(attr) << 32) ^ uint64_t(v) ^ 0x5bd1e995ULL);
  return static_cast<uint32_t>(h % buckets);
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace adj

#endif  // ADJ_COMMON_HASH_H_
