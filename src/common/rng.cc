#include "common/rng.h"

#include <cmath>

namespace adj {
namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  // Standard Gray et al. rejection-free Zipf generator setup.
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace adj
