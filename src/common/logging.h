#ifndef ADJ_COMMON_LOGGING_H_
#define ADJ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace adj {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; benches lower it to kWarning to keep output clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace adj

#define ADJ_LOG(level)                                                    \
  ::adj::internal_logging::LogMessage(::adj::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

#define ADJ_CHECK(cond)                                                 \
  if (!(cond))                                                          \
  ::adj::internal_logging::LogMessage(::adj::LogLevel::kError, __FILE__, \
                                      __LINE__)                          \
          .stream()                                                      \
      << "Check failed: " #cond " "

#endif  // ADJ_COMMON_LOGGING_H_
