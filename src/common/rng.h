#ifndef ADJ_COMMON_RNG_H_
#define ADJ_COMMON_RNG_H_

#include <cstdint>

namespace adj {

/// Deterministic splitmix64-based random number generator. Every
/// component that needs randomness (dataset generators, samplers,
/// share-optimizer tie breaking) takes an explicit Rng so runs are
/// reproducible end to end.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next64() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `theta`.
/// Used by the synthetic skewed-dataset generators.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace adj

#endif  // ADJ_COMMON_RNG_H_
