#ifndef ADJ_COMMON_STATUS_H_
#define ADJ_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace adj {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,  // memory budget / row-limit exceeded ("OOM" in paper)
  kDeadlineExceeded,   // 12h-style time budget exceeded
  kInternal,
};

/// Error-handling vocabulary for the whole library. Public APIs never
/// throw; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Minimal StatusOr: either a Status error or a value of type T.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }
  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  T&& operator*() && { return std::move(value_); }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

#define ADJ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::adj::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace adj

#endif  // ADJ_COMMON_STATUS_H_
