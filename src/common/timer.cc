#include "common/timer.h"

// WallTimer is header-only; this translation unit exists so the build
// has a stable object for the module.
namespace adj {}
