#ifndef ADJ_COMMON_TYPES_H_
#define ADJ_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adj {

/// A single attribute value. All relations in ADJ are over an integer
/// domain (graph vertex ids), matching the paper's subgraph-query
/// workloads where every relation is the edge table of a graph.
using Value = uint32_t;

/// Index of an attribute within a query's global attribute universe
/// (e.g., a=0, b=1, ... for Q(a,b,c,d,e)).
using AttrId = int;

/// A materialized tuple (row) of `arity` values.
using Tuple = std::vector<Value>;

/// Bitmask over a query's attribute universe. Queries in this system
/// have at most 32 attributes, which comfortably covers the paper's
/// workloads (<= 5 attributes).
using AttrMask = uint32_t;

/// Bitmask over the atoms (relation occurrences) of a query.
using AtomMask = uint32_t;

inline int PopCount(uint32_t mask) { return __builtin_popcount(mask); }

/// Lowest set bit position; undefined for mask == 0.
inline int LowestBit(uint32_t mask) { return __builtin_ctz(mask); }

}  // namespace adj

#endif  // ADJ_COMMON_TYPES_H_
