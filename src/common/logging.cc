#include "common/logging.h"

namespace adj {
namespace {
LogLevel g_level = LogLevel::kInfo;
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kError) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace adj
