#ifndef ADJ_COMMON_TIMER_H_
#define ADJ_COMMON_TIMER_H_

#include <chrono>

namespace adj {

/// Simple wall-clock stopwatch used for measuring real computation time
/// (trie builds, Leapfrog runs, sampling) that feeds the cost model.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adj

#endif  // ADJ_COMMON_TIMER_H_
