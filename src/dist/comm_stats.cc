#include "dist/comm_stats.h"

#include <algorithm>

namespace adj::dist {

namespace {

double AggregateBandwidth(const NetworkModel& net, int num_servers) {
  return net.bytes_per_s * double(std::max(1, num_servers));
}

}  // namespace

double PushSeconds(const NetworkModel& net, uint64_t records, uint64_t bytes,
                   int num_servers) {
  return double(records) * net.record_overhead_s +
         double(bytes) / AggregateBandwidth(net, num_servers);
}

double PullSeconds(const NetworkModel& net, uint64_t blocks, uint64_t bytes,
                   int num_servers) {
  return double(blocks) * net.block_overhead_s +
         double(bytes) / AggregateBandwidth(net, num_servers);
}

}  // namespace adj::dist
