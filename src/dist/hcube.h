#ifndef ADJ_DIST_HCUBE_H_
#define ADJ_DIST_HCUBE_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dist/cluster.h"
#include "dist/share_vector.h"
#include "storage/relation.h"

namespace adj::dist {

/// One relation entering an HCube shuffle: the (sorted, deduplicated)
/// tuples plus the query attribute each column binds. Attribute ids
/// index the share vector.
struct HCubeInput {
  const storage::Relation* rel = nullptr;
  std::vector<AttrId> attrs;
};

/// The three HCube implementations of Sec. V, compared in Fig. 9:
///  - kPush: senders route every tuple copy as its own record; the
///    receiver collects an unsorted stream and must sort before
///    building its tries (per-record network overhead, full local sort),
///  - kPull: senders group tuples into per-destination sorted blocks
///    (delta-compressed) that receivers fetch; the local build skips
///    the sort,
///  - kMerge: senders pre-build and ship the trie arrays themselves
///    ("a trie ... can be implemented using three arrays"); receivers
///    adopt them with no local build work.
enum class HCubeVariant { kPush = 0, kPull = 1, kMerge = 2 };

const char* HCubeVariantName(HCubeVariant variant);

/// Accounting of one HCube shuffle. `build_seconds_*` measure the
/// receivers' local index construction (Fig. 9's right panel):
/// max = parallel makespan across servers, sum = total work.
struct HCubeResult {
  CommStats comm;
  double build_seconds_max = 0.0;
  double build_seconds_sum = 0.0;
};

/// Hypercube-shuffles `inputs` onto `cluster` under share vector
/// `share`: each tuple is routed to every cube agreeing with the
/// hashes of its bound attributes (DupCubes copies), cubes are mapped
/// to servers round-robin, and every shard ends up with the canonical
/// sorted fragment + trie per atom. All variants produce identical
/// shard contents and identical logical tuple movement; they differ in
/// wire format (bytes), network pricing, and local build time.
///
/// Fails with kInvalidArgument on a malformed share vector and with
/// kResourceExhausted when any shard's resident set exceeds the
/// cluster's per-server memory budget.
StatusOr<HCubeResult> HCubeShuffle(const std::vector<HCubeInput>& inputs,
                                   const ShareVector& share,
                                   HCubeVariant variant, Cluster* cluster);

}  // namespace adj::dist

#endif  // ADJ_DIST_HCUBE_H_
