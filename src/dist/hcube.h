#ifndef ADJ_DIST_HCUBE_H_
#define ADJ_DIST_HCUBE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dist/cluster.h"
#include "dist/share_vector.h"
#include "storage/index_cache.h"
#include "storage/relation.h"

namespace adj::dist {

/// One relation entering an HCube shuffle: the (sorted, deduplicated)
/// tuples plus the query attribute each column binds. Attribute ids
/// index the share vector.
///
/// `pin` is the cache anchor: a shared handle whose lifetime covers
/// `rel` (typically the storage::PreparedIndex the relation came
/// from). When the shuffle runs against an IndexCache, inputs with a
/// pin have their routed fragments and shard tries cached under
/// (rel, share, variant, server count) and reused by later shuffles;
/// inputs without one are shuffled inline, uncached.
struct HCubeInput {
  const storage::Relation* rel = nullptr;
  std::vector<AttrId> attrs;
  std::shared_ptr<const void> pin;
  /// Optional shared handles to the *same* relation as `rel` and the
  /// trie built over it (a prepared index's rel/trie). When the
  /// cluster has one server they enable the alias fast path: the
  /// single shard is the prepared relation itself, so the shuffle
  /// routes, sorts, and builds nothing, and reports an index reuse
  /// (mmap-flagged when the trie is snapshot-loaded) instead of a
  /// build. Ignored unless `shared_rel.get() == rel`.
  std::shared_ptr<const storage::Relation> shared_rel;
  std::shared_ptr<const storage::Trie> trie;
};

/// One input's shuffle outcome in shareable form: per server the
/// canonical block, the trie over it, and the modeled wire bytes of
/// shipping that block under the variant it was built for. This is the
/// artifact the IndexCache holds so repeat runs of a prepared query
/// re-populate cluster shards at pointer-copy cost — the Merge-variant
/// premise (pre-built tries are the unit you ship) applied across
/// runs.
struct ShardedRelation {
  struct Fragment {
    std::shared_ptr<const storage::Relation> block;
    std::shared_ptr<const storage::Trie> trie;
    uint64_t wire_bytes = 0;
  };
  std::vector<Fragment> per_server;

  /// Resident payload across all servers (blocks + trie arrays).
  uint64_t Bytes() const;
};

/// The three HCube implementations of Sec. V, compared in Fig. 9:
///  - kPush: senders route every tuple copy as its own record; the
///    receiver collects an unsorted stream and must sort before
///    building its tries (per-record network overhead, full local sort),
///  - kPull: senders group tuples into per-destination sorted blocks
///    (delta-compressed) that receivers fetch; the local build skips
///    the sort,
///  - kMerge: senders pre-build and ship the trie arrays themselves
///    ("a trie ... can be implemented using three arrays"); receivers
///    adopt them with no local build work.
enum class HCubeVariant { kPush = 0, kPull = 1, kMerge = 2 };

const char* HCubeVariantName(HCubeVariant variant);

/// Accounting of one HCube shuffle. `build_seconds_*` measure the
/// receivers' local index construction (Fig. 9's right panel):
/// max = parallel makespan across servers, sum = total work.
struct HCubeResult {
  CommStats comm;
  double build_seconds_max = 0.0;
  double build_seconds_sum = 0.0;
};

/// Hypercube-shuffles `inputs` onto `cluster` under share vector
/// `share`: each tuple is routed to every cube agreeing with the
/// hashes of its bound attributes (DupCubes copies), cubes are mapped
/// to servers round-robin, and every shard ends up with the canonical
/// sorted fragment + trie per atom. All variants produce identical
/// shard contents and identical logical tuple movement; they differ in
/// wire format (bytes), network pricing, and local build time.
///
/// Fails with kInvalidArgument on a malformed share vector and with
/// kResourceExhausted when any shard's resident set exceeds the
/// cluster's per-server memory budget.
///
/// With `cache`, pinned inputs resolve their ShardedRelation through
/// it: the first shuffle routes, sorts, and builds (charged to
/// build_seconds as usual, ticked into `build_stats`), later shuffles
/// reuse the resident artifacts (zero build seconds, a `build_stats`
/// hit). Communication is *modeled* identically either way — the
/// comm figures of a warm run match the cold one.
StatusOr<HCubeResult> HCubeShuffle(const std::vector<HCubeInput>& inputs,
                                   const ShareVector& share,
                                   HCubeVariant variant, Cluster* cluster,
                                   storage::IndexCache* cache = nullptr,
                                   storage::IndexBuildStats* build_stats =
                                       nullptr);

}  // namespace adj::dist

#endif  // ADJ_DIST_HCUBE_H_
