#ifndef ADJ_DIST_SHARE_VECTOR_H_
#define ADJ_DIST_SHARE_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace adj::dist {

/// The hypercube share vector p of Sec. II-A: attribute a of the query
/// universe is hashed into p[a] buckets, organizing the logical servers
/// as a prod(p)-cell hyper-rectangle of "cubes". This is the variable
/// of the share-optimization program (Eq. 3) and the coordinate system
/// of every HCube shuffle.
struct ShareVector {
  std::vector<uint32_t> p;

  /// prod(p): the number of hypercube cells.
  uint64_t NumCubes() const;

  /// True iff non-empty and every share is >= 1.
  bool Valid() const;

  /// "(p0,p1,...,pk)".
  std::string ToString() const;
};

/// dup(R, p): the number of cubes each tuple of a relation with
/// attribute set `schema` is replicated to — the product of the shares
/// of the attributes R does *not* bind (the duplication factor of
/// Eq. 3's objective).
uint64_t DupCubes(AttrMask schema, const ShareVector& p);

/// frac(R, p) = 1 / prod_{a in schema} p[a]: the fraction of the cubes
/// (and hence, in expectation, of the servers) that hold any fixed
/// tuple of a relation with attribute set `schema`. Drives the share
/// optimizer's per-server memory constraint.
double ServerFraction(AttrMask schema, const ShareVector& p);

}  // namespace adj::dist

#endif  // ADJ_DIST_SHARE_VECTOR_H_
