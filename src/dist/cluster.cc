#include "dist/cluster.h"

#include <algorithm>
#include <string>

namespace adj::dist {

Status Cluster::CheckMemory() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].resident_bytes > config_.memory_per_server_bytes) {
      return Status::ResourceExhausted(
          "server " + std::to_string(s) + " resident set (" +
          std::to_string(shards_[s].resident_bytes) +
          " bytes) exceeds per-server memory budget (" +
          std::to_string(config_.memory_per_server_bytes) + " bytes)");
    }
  }
  return Status::OK();
}

uint64_t Cluster::MaxResidentBytes() const {
  uint64_t max_bytes = 0;
  for (const LocalShard& shard : shards_) {
    max_bytes = std::max(max_bytes, shard.resident_bytes);
  }
  return max_bytes;
}

void Cluster::ClearShards() {
  for (LocalShard& shard : shards_) shard.Clear();
}

}  // namespace adj::dist
