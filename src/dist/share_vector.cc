#include "dist/share_vector.h"

namespace adj::dist {

uint64_t ShareVector::NumCubes() const {
  uint64_t cubes = 1;
  for (uint32_t share : p) cubes *= share;
  return cubes;
}

bool ShareVector::Valid() const {
  if (p.empty()) return false;
  for (uint32_t share : p) {
    if (share == 0) return false;
  }
  return true;
}

std::string ShareVector::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(p[i]);
  }
  out += ')';
  return out;
}

uint64_t DupCubes(AttrMask schema, const ShareVector& p) {
  uint64_t dup = 1;
  for (size_t a = 0; a < p.p.size(); ++a) {
    if ((schema & (AttrMask(1) << a)) == 0) dup *= p.p[a];
  }
  return dup;
}

double ServerFraction(AttrMask schema, const ShareVector& p) {
  double bound = 1.0;
  for (size_t a = 0; a < p.p.size(); ++a) {
    if (schema & (AttrMask(1) << a)) bound *= double(p.p[a]);
  }
  return 1.0 / bound;
}

}  // namespace adj::dist
