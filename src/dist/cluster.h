#ifndef ADJ_DIST_CLUSTER_H_
#define ADJ_DIST_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dist/comm_stats.h"
#include "storage/relation.h"
#include "storage/trie.h"

namespace adj::dist {

/// Static description of the simulated shared-nothing cluster: server
/// count, per-server memory budget (the M of the paper's Eq. 3
/// constraint), and the interconnect cost model.
struct ClusterConfig {
  int num_servers = 4;
  uint64_t memory_per_server_bytes = 4ull << 30;
  NetworkModel net;
};

/// One server's local state after an HCube shuffle: per query atom the
/// received relation fragment (canonical sorted/deduplicated form),
/// the trie built over it, and the query attribute of each trie level.
/// `resident_bytes` is the memory the fragments + tries occupy, the
/// quantity CheckMemory() audits against the per-server budget.
///
/// Fragments and tries are shared handles, never deep copies: when the
/// shuffle runs against a storage::IndexCache, every shard of every
/// run of a query borrows the same resident blocks and tries, so a
/// repeat run re-populates a Cluster at pointer-copy cost.
struct LocalShard {
  std::vector<std::shared_ptr<const storage::Relation>> atoms;
  std::vector<std::shared_ptr<const storage::Trie>> tries;
  std::vector<std::vector<AttrId>> attrs;
  uint64_t resident_bytes = 0;

  void Clear() {
    atoms.clear();
    tries.clear();
    attrs.clear();
    resident_bytes = 0;
  }
};

/// The simulated cluster: a config plus one LocalShard per server.
/// Execution strategies shuffle into it (dist::HCubeShuffle — which
/// clears all shard state first, so a Cluster can be fresh per stage
/// or re-used across stages interchangeably), then run per-server
/// joins over shard(s).
class Cluster {
 public:
  explicit Cluster(ClusterConfig config)
      : config_(std::move(config)),
        shards_(config_.num_servers > 0 ? size_t(config_.num_servers) : 0) {}

  const ClusterConfig& config() const { return config_; }
  int num_servers() const { return int(shards_.size()); }

  LocalShard& shard(int s) { return shards_[size_t(s)]; }
  const LocalShard& shard(int s) const { return shards_[size_t(s)]; }

  /// kResourceExhausted iff any shard's resident set exceeds the
  /// per-server memory budget — the paper's OOM failure mode.
  Status CheckMemory() const;

  /// Largest per-server resident set (the cluster's memory high-water
  /// mark).
  uint64_t MaxResidentBytes() const;

  /// Drops all shard state (between queries / stages).
  void ClearShards();

 private:
  ClusterConfig config_;
  std::vector<LocalShard> shards_;
};

}  // namespace adj::dist

#endif  // ADJ_DIST_CLUSTER_H_
