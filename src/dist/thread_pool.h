#ifndef ADJ_DIST_THREAD_POOL_H_
#define ADJ_DIST_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adj::dist {

/// Reusable fixed-size worker pool with two modes of use:
///
/// - Batch mode — RunAll() blocks until every task of the batch has
///   executed exactly once. Used to run the simulated servers of one
///   cluster concurrently (exec::RunHCubeJ's worker_threads) and
///   reusable across batches so multi-stage plans do not re-spawn
///   threads per stage.
/// - Streaming mode — Submit() enqueues one task and returns
///   immediately; some worker runs it as soon as it is free. This is
///   the serving mode: serve::Server admits each accepted request as
///   one submitted task. WaitIdle() blocks until all submitted tasks
///   have drained, and the destructor drains any still-pending
///   submitted tasks before joining (a submitted task is never
///   dropped).
///
/// The modes may interleave on one pool; workers prefer the active
/// batch, then the submitted queue.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return int(workers_.size()); }

  /// Runs every task of `tasks` exactly once across the workers and
  /// returns when all are done. An empty batch is a no-op. Not
  /// re-entrant: one batch at a time per pool.
  void RunAll(const std::vector<std::function<void()>>& tasks);

  /// Streaming mode: enqueues `task` to run exactly once on some
  /// worker and returns immediately. There is no internal bound on the
  /// submitted queue — callers that need admission control bound it
  /// themselves (serve::AdmissionQueue). Must not race with the pool's
  /// destruction.
  void Submit(std::function<void()> task);

  /// Blocks until the submitted queue is empty and no submitted task
  /// is in flight. Batches (RunAll) are not waited on. Tasks submitted
  /// concurrently with the wait may or may not be covered by it.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::vector<std::function<void()>>* tasks_ = nullptr;  // guarded by mu_
  size_t next_ = 0;   // next unclaimed task index
  size_t done_ = 0;   // tasks finished in the current batch
  std::deque<std::function<void()>> submitted_;  // streaming-mode queue
  size_t submitted_active_ = 0;  // submitted tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `tasks` on `threads` host threads and blocks until all finish.
/// threads <= 1 executes inline, sequentially, in submission order —
/// the right mode for cost measurements (per-task timings undistorted).
void RunTasks(int threads, const std::vector<std::function<void()>>& tasks);

}  // namespace adj::dist

#endif  // ADJ_DIST_THREAD_POOL_H_
