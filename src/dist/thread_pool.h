#ifndef ADJ_DIST_THREAD_POOL_H_
#define ADJ_DIST_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adj::dist {

/// Reusable fixed-size worker pool with batch semantics: RunAll()
/// blocks until every task of the batch has executed exactly once.
/// Used to run the simulated servers of one cluster concurrently
/// (exec::RunHCubeJ's worker_threads) and reusable across batches so
/// multi-stage plans do not re-spawn threads per stage.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return int(workers_.size()); }

  /// Runs every task of `tasks` exactly once across the workers and
  /// returns when all are done. An empty batch is a no-op. Not
  /// re-entrant: one batch at a time per pool.
  void RunAll(const std::vector<std::function<void()>>& tasks);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::vector<std::function<void()>>* tasks_ = nullptr;  // guarded by mu_
  size_t next_ = 0;   // next unclaimed task index
  size_t done_ = 0;   // tasks finished in the current batch
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `tasks` on `threads` host threads and blocks until all finish.
/// threads <= 1 executes inline, sequentially, in submission order —
/// the right mode for cost measurements (per-task timings undistorted).
void RunTasks(int threads, const std::vector<std::function<void()>>& tasks);

}  // namespace adj::dist

#endif  // ADJ_DIST_THREAD_POOL_H_
