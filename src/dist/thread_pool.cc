#include "dist/thread_pool.h"

#include <algorithm>

namespace adj::dist {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stop_ || !submitted_.empty() ||
             (tasks_ != nullptr && next_ < tasks_->size());
    });
    while (tasks_ != nullptr && next_ < tasks_->size()) {
      const size_t i = next_++;
      lock.unlock();
      (*tasks_)[i]();
      lock.lock();
      if (++done_ == tasks_->size()) done_cv_.notify_all();
    }
    if (!submitted_.empty()) {
      std::function<void()> task = std::move(submitted_.front());
      submitted_.pop_front();
      ++submitted_active_;
      lock.unlock();
      task();
      lock.lock();
      if (--submitted_active_ == 0 && submitted_.empty()) {
        done_cv_.notify_all();
      }
      continue;
    }
    // Exit only once the submitted queue has drained: a submitted task
    // is never dropped, even when stop raced with Submit.
    if (stop_) return;
  }
}

void ThreadPool::RunAll(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  tasks_ = &tasks;
  next_ = 0;
  done_ = 0;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this, &tasks] { return done_ == tasks.size(); });
  tasks_ = nullptr;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return submitted_.empty() && submitted_active_ == 0;
  });
}

void RunTasks(int threads, const std::vector<std::function<void()>>& tasks) {
  if (threads <= 1 || tasks.size() <= 1) {
    for (const std::function<void()>& task : tasks) task();
    return;
  }
  ThreadPool pool(int(std::min<size_t>(size_t(threads), tasks.size())));
  pool.RunAll(tasks);
}

}  // namespace adj::dist
