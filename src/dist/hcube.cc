#include "dist/hcube.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/rng.h"
#include "common/timer.h"
#include "storage/codec.h"

namespace adj::dist {
namespace {

/// Per-input routing plan: how each column's value fixes a cube
/// coordinate, and which coordinates stay free (duplication dims).
struct RoutePlan {
  /// (attr, share, stride) per bound column.
  struct BoundDim {
    AttrId attr;
    uint32_t share;
    uint64_t stride;
  };
  std::vector<BoundDim> bound;
  /// (share, stride) per unbound attribute with share > 1; attributes
  /// with share 1 contribute coordinate 0 and are skipped.
  std::vector<std::pair<uint32_t, uint64_t>> free_dims;
};

/// Simulates Push's arrival order: the interleaved record stream a
/// receiver collects is not sorted, so its local build must sort.
storage::Relation ScrambleRows(const storage::Relation& rel, uint64_t seed) {
  std::vector<uint64_t> idx(rel.size());
  std::iota(idx.begin(), idx.end(), uint64_t{0});
  Rng rng(seed);
  for (uint64_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.Uniform(i)]);
  }
  storage::Relation out(rel.schema());
  out.Reserve(rel.size());
  for (uint64_t i : idx) out.Append(rel.Row(i));
  return out;
}

/// Routes one relation to its destination servers. A tuple lands on
/// DupCubes(R, p) cubes; cubes collapse onto servers round-robin, and
/// a tuple is shipped at most once per server.
std::vector<storage::Relation> RouteInput(const storage::Relation& rel,
                                          const RoutePlan& plan,
                                          int num_servers) {
  std::vector<storage::Relation> blocks(size_t(num_servers),
                                        storage::Relation(rel.schema()));
  std::vector<uint64_t> seen(size_t(num_servers), 0);
  uint64_t tuple_stamp = 0;
  std::vector<uint32_t> coord(plan.free_dims.size());
  for (uint64_t row = 0; row < rel.size(); ++row) {
    const std::span<const Value> tuple = rel.Row(row);
    uint64_t base = 0;
    for (size_t c = 0; c < plan.bound.size(); ++c) {
      const RoutePlan::BoundDim& dim = plan.bound[c];
      base += uint64_t(AttributeHash(dim.attr, tuple[c], dim.share)) *
              dim.stride;
    }
    ++tuple_stamp;
    // Odometer over the free coordinates.
    std::fill(coord.begin(), coord.end(), 0u);
    while (true) {
      uint64_t cube = base;
      for (size_t d = 0; d < coord.size(); ++d) {
        cube += uint64_t(coord[d]) * plan.free_dims[d].second;
      }
      const size_t server = size_t(cube % uint64_t(num_servers));
      if (seen[server] != tuple_stamp) {
        seen[server] = tuple_stamp;
        blocks[server].Append(tuple);
      }
      size_t d = 0;
      for (; d < coord.size(); ++d) {
        if (++coord[d] < plan.free_dims[d].first) break;
        coord[d] = 0;
      }
      if (d == coord.size()) break;
    }
  }
  return blocks;
}

/// Routes, canonicalizes, and index-builds one input end to end —
/// the expensive per-input work an IndexCache hit skips entirely.
/// `build_seconds` (size num_servers) receives each receiver's timed
/// local build work for this input.
/// Single-server shuffle outcome without building anything: with one
/// server every tuple of the (already canonical) input lands on that
/// server exactly once, so the shard fragment *is* the prepared
/// relation and its trie — alias them. Wire bytes are computed exactly
/// as BuildSharded would, so the modeled traffic is unchanged.
ShardedRelation AliasSingleServer(
    std::shared_ptr<const storage::Relation> rel,
    std::shared_ptr<const storage::Trie> trie, HCubeVariant variant) {
  ShardedRelation sharded;
  sharded.per_server.resize(1);
  ShardedRelation::Fragment& frag = sharded.per_server[0];
  if (!rel->empty()) {
    switch (variant) {
      case HCubeVariant::kPush:
        frag.wire_bytes = rel->SizeBytes();
        break;
      case HCubeVariant::kPull:
        frag.wire_bytes = storage::EncodeRelationBlock(*rel).size();
        break;
      case HCubeVariant::kMerge:
        frag.wire_bytes = storage::EncodeTrieBlock(*trie).size();
        break;
    }
  }
  frag.block = std::move(rel);
  frag.trie = std::move(trie);
  return sharded;
}

ShardedRelation BuildSharded(const storage::Relation& rel,
                             const RoutePlan& plan, int num_servers,
                             HCubeVariant variant, size_t input_index,
                             std::vector<double>* build_seconds) {
  std::vector<storage::Relation> blocks = RouteInput(rel, plan, num_servers);
  ShardedRelation sharded;
  sharded.per_server.resize(size_t(num_servers));
  for (int s = 0; s < num_servers; ++s) {
    storage::Relation block = std::move(blocks[size_t(s)]);
    block.SortAndDedup();
    ShardedRelation::Fragment& frag = sharded.per_server[size_t(s)];
    storage::Trie trie;
    if (!block.empty()) {
      switch (variant) {
        case HCubeVariant::kPush: {
          // Records arrive interleaved: sort + dedup + build, timed.
          frag.wire_bytes = block.SizeBytes();
          storage::Relation arrival =
              ScrambleRows(block, uint64_t(s) * 131 + input_index + 1);
          WallTimer timer;
          arrival.SortAndDedup();
          trie = storage::Trie::Build(arrival);
          (*build_seconds)[size_t(s)] += timer.Seconds();
          break;
        }
        case HCubeVariant::kPull: {
          // Sorted compressed blocks: verify order + build, no sort.
          frag.wire_bytes = storage::EncodeRelationBlock(block).size();
          WallTimer timer;
          block.IsSortedUnique();
          trie = storage::Trie::Build(block);
          (*build_seconds)[size_t(s)] += timer.Seconds();
          break;
        }
        case HCubeVariant::kMerge: {
          // Tries ship pre-built; the receiver adopts the arrays and
          // does no local build work (the sender-side build below is
          // not charged to the receiver's makespan).
          trie = storage::Trie::Build(block);
          frag.wire_bytes = storage::EncodeTrieBlock(trie).size();
          break;
        }
      }
    }
    frag.block = std::make_shared<const storage::Relation>(std::move(block));
    frag.trie = std::make_shared<const storage::Trie>(std::move(trie));
  }
  return sharded;
}

}  // namespace

uint64_t ShardedRelation::Bytes() const {
  uint64_t bytes = 0;
  for (const Fragment& frag : per_server) {
    if (frag.block != nullptr) bytes += frag.block->SizeBytes();
    if (frag.trie != nullptr) {
      bytes += frag.trie->ResidentBytes();
    }
  }
  return bytes;
}

const char* HCubeVariantName(HCubeVariant variant) {
  switch (variant) {
    case HCubeVariant::kPush:
      return "Push";
    case HCubeVariant::kPull:
      return "Pull";
    case HCubeVariant::kMerge:
      return "Merge";
  }
  return "?";
}

StatusOr<HCubeResult> HCubeShuffle(const std::vector<HCubeInput>& inputs,
                                   const ShareVector& share,
                                   HCubeVariant variant, Cluster* cluster,
                                   storage::IndexCache* cache,
                                   storage::IndexBuildStats* build_stats) {
  if (cluster == nullptr || cluster->num_servers() < 1) {
    return Status::InvalidArgument("HCubeShuffle requires a cluster");
  }
  if (!share.Valid()) {
    return Status::InvalidArgument("invalid share vector " + share.ToString() +
                                   ": every share must be >= 1");
  }
  const int num_servers = cluster->num_servers();
  const size_t num_attrs = share.p.size();

  // Mixed-radix strides: cube = sum_a coord[a] * stride[a].
  std::vector<uint64_t> stride(num_attrs);
  uint64_t cubes = 1;
  for (size_t a = 0; a < num_attrs; ++a) {
    stride[a] = cubes;
    cubes *= share.p[a];
  }

  std::vector<RoutePlan> plans(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const HCubeInput& in = inputs[i];
    if (in.rel == nullptr) {
      return Status::InvalidArgument("HCubeInput with null relation");
    }
    if (int(in.attrs.size()) != in.rel->arity()) {
      return Status::InvalidArgument("HCubeInput attrs/arity mismatch");
    }
    AttrMask bound_mask = 0;
    for (AttrId attr : in.attrs) {
      if (attr < 0 || size_t(attr) >= num_attrs) {
        return Status::InvalidArgument(
            "atom attribute " + std::to_string(attr) +
            " outside share vector " + share.ToString());
      }
      plans[i].bound.push_back(
          {attr, share.p[size_t(attr)], stride[size_t(attr)]});
      bound_mask |= AttrMask(1) << attr;
    }
    for (size_t a = 0; a < num_attrs; ++a) {
      if ((bound_mask & (AttrMask(1) << a)) == 0 && share.p[a] > 1) {
        plans[i].free_dims.emplace_back(share.p[a], stride[a]);
      }
    }
  }

  // Resolve every input to its ShardedRelation — through the cache for
  // pinned inputs (building exactly once, reusing later), inline
  // otherwise. Local build time is charged only when this call did the
  // building: a warm run's receivers genuinely do no index work.
  std::vector<std::shared_ptr<const ShardedRelation>> sharded(inputs.size());
  std::vector<double> build_s(size_t(num_servers), 0.0);
  for (size_t i = 0; i < inputs.size(); ++i) {
    const HCubeInput& in = inputs[i];
    // Single-server alias: the fragment is the prepared index itself,
    // so nothing is routed, sorted, or built — reported as a reuse of
    // the pinned index (with mmap provenance if it was snapshot-loaded),
    // never as a build. The aliased artifact still goes through the
    // cache so the kPull/kMerge wire-byte encodings run once.
    const bool alias_single =
        num_servers == 1 && in.shared_rel != nullptr &&
        in.shared_rel.get() == in.rel && in.trie != nullptr;
    if (cache != nullptr && in.pin != nullptr) {
      std::string spec = std::string("hcube:") + HCubeVariantName(variant) +
                         ":s=" + std::to_string(num_servers) +
                         ":p=" + share.ToString() + ":a=";
      for (size_t c = 0; c < in.attrs.size(); ++c) {
        if (c > 0) spec += ',';
        spec += std::to_string(in.attrs[c]);
      }
      StatusOr<std::shared_ptr<const void>> artifact = cache->GetOrBuild(
          in.rel, spec, in.pin,
          [&]() -> StatusOr<storage::IndexCache::BuildResult> {
            auto built = std::make_shared<ShardedRelation>(
                alias_single
                    ? AliasSingleServer(in.shared_rel, in.trie, variant)
                    : BuildSharded(*in.rel, plans[i], num_servers, variant,
                                   i, &build_s));
            return storage::IndexCache::BuildResult{built, built->Bytes()};
          },
          alias_single ? nullptr : build_stats);
      if (!artifact.ok()) return artifact.status();
      sharded[i] = std::static_pointer_cast<const ShardedRelation>(*artifact);
    } else if (alias_single) {
      sharded[i] = std::make_shared<const ShardedRelation>(
          AliasSingleServer(in.shared_rel, in.trie, variant));
    } else {
      sharded[i] = std::make_shared<const ShardedRelation>(BuildSharded(
          *in.rel, plans[i], num_servers, variant, i, &build_s));
      if (build_stats != nullptr) ++build_stats->builds;
    }
    if (alias_single && build_stats != nullptr) {
      ++build_stats->hits;
      if (in.trie->mmap_backed()) ++build_stats->mmap_hits;
    }
  }

  // Assemble shards and account communication per variant. The comm
  // figures are derived from the (possibly cached) fragments, so cold
  // and warm shuffles report identical modeled traffic.
  cluster->ClearShards();
  HCubeResult result;
  const NetworkModel& net = cluster->config().net;
  for (int s = 0; s < num_servers; ++s) {
    LocalShard& shard = cluster->shard(s);
    shard.attrs.reserve(inputs.size());
    shard.atoms.reserve(inputs.size());
    shard.tries.reserve(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      const ShardedRelation::Fragment& frag =
          sharded[i]->per_server[size_t(s)];
      result.comm.tuple_copies += frag.block->size();
      if (!frag.block->empty()) {
        ++result.comm.blocks;
        result.comm.bytes += frag.wire_bytes;
      }
      shard.resident_bytes += frag.block->SizeBytes();
      shard.resident_bytes += frag.trie->ResidentBytes();
      shard.attrs.push_back(inputs[i].attrs);
      shard.atoms.push_back(frag.block);
      shard.tries.push_back(frag.trie);
    }
    result.build_seconds_sum += build_s[size_t(s)];
    result.build_seconds_max =
        std::max(result.build_seconds_max, build_s[size_t(s)]);
  }

  ADJ_RETURN_IF_ERROR(cluster->CheckMemory());

  result.comm.seconds =
      variant == HCubeVariant::kPush
          ? PushSeconds(net, result.comm.tuple_copies, result.comm.bytes,
                        num_servers)
          : PullSeconds(net, result.comm.blocks, result.comm.bytes,
                        num_servers);
  return result;
}

}  // namespace adj::dist
