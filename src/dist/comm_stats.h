#ifndef ADJ_DIST_COMM_STATS_H_
#define ADJ_DIST_COMM_STATS_H_

#include <cstdint>

namespace adj::dist {

/// Communication volume of one distributed stage, in the units the
/// paper reports: logical tuple copies shipped, wire bytes, transfer
/// blocks, and the modeled transfer time.
struct CommStats {
  uint64_t tuple_copies = 0;
  uint64_t bytes = 0;
  uint64_t blocks = 0;
  double seconds = 0.0;

  void Add(const CommStats& other) {
    tuple_copies += other.tuple_copies;
    bytes += other.bytes;
    blocks += other.blocks;
    seconds += other.seconds;
  }
};

/// Cost model of the simulated interconnect — the generalization of
/// the paper's measured per-tuple constant alpha. Push-style shuffles
/// pay a fixed cost per *record* (each tuple is routed as its own
/// message); Pull/Merge-style shuffles group tuples into blocks and pay
/// a fixed cost per *block* plus bandwidth. Aggregate bandwidth scales
/// with the server count (every server has its own full-duplex link).
struct NetworkModel {
  /// Per-record envelope/routing cost of a Push shuffle.
  double record_overhead_s = 2e-6;
  /// Per-block request/response round-trip of a Pull fetch.
  double block_overhead_s = 1e-3;
  /// Per-server link bandwidth (1 Gbps by default).
  double bytes_per_s = 1.25e8;
  /// Per distributed stage scheduling/synchronization overhead — the
  /// term that bounds the speed-up of trivial queries (Fig. 11 Q1).
  double stage_overhead_s = 0.05;
};

/// Modeled seconds to Push-shuffle `records` records totalling `bytes`
/// across a cluster of `num_servers` (aggregate bandwidth scales with
/// the server count). Zero records/bytes cost zero.
double PushSeconds(const NetworkModel& net, uint64_t records, uint64_t bytes,
                   int num_servers);

/// Modeled seconds to Pull-fetch `blocks` blocks totalling `bytes`.
/// Well-defined down to a single server (num_servers is clamped to 1).
double PullSeconds(const NetworkModel& net, uint64_t blocks, uint64_t bytes,
                   int num_servers);

}  // namespace adj::dist

#endif  // ADJ_DIST_COMM_STATS_H_
