#include "exec/run_report.h"

#include <cstdio>

namespace adj::exec {

std::string RunReport::ToString() const {
  if (!status.ok()) {
    return method + ": FAILED (" + status.ToString() + ")";
  }
  char buf[448];
  std::snprintf(buf, sizeof(buf),
                "%s: out=%llu total=%.3fs (opt=%.3f pre=%.3f comm=%.3f "
                "comp=%.3f ovh=%.3f) shuffled=%llu tuples "
                "indexes(built=%llu reused=%llu mmap=%llu patched=%llu "
                "delta_rows=%llu) "
                "kernels(simd=%llu scalar=%llu) "
                "compressed(bytes=%llu blocks_decoded=%llu)",
                method.c_str(), static_cast<unsigned long long>(output_count),
                TotalSeconds(), optimize_s, precompute_s, comm_s, comp_s,
                overhead_s,
                static_cast<unsigned long long>(comm.tuple_copies +
                                                precompute_comm.tuple_copies),
                static_cast<unsigned long long>(index_builds),
                static_cast<unsigned long long>(index_reused),
                static_cast<unsigned long long>(index_mmap),
                static_cast<unsigned long long>(index_patched),
                static_cast<unsigned long long>(delta_rows_merged),
                static_cast<unsigned long long>(simd_intersections),
                static_cast<unsigned long long>(scalar_fallbacks),
                static_cast<unsigned long long>(compressed_bytes),
                static_cast<unsigned long long>(blocks_decoded));
  return buf;
}

}  // namespace adj::exec
