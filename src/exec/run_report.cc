#include "exec/run_report.h"

#include <cstdio>

namespace adj::exec {

std::string RunReport::ToString() const {
  if (!status.ok()) {
    return method + ": FAILED (" + status.ToString() + ")";
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%s: out=%llu total=%.3fs (opt=%.3f pre=%.3f comm=%.3f "
                "comp=%.3f ovh=%.3f) shuffled=%llu tuples "
                "indexes(built=%llu reused=%llu)",
                method.c_str(), static_cast<unsigned long long>(output_count),
                TotalSeconds(), optimize_s, precompute_s, comm_s, comp_s,
                overhead_s,
                static_cast<unsigned long long>(comm.tuple_copies +
                                                precompute_comm.tuple_copies),
                static_cast<unsigned long long>(index_builds),
                static_cast<unsigned long long>(index_reused));
  return buf;
}

}  // namespace adj::exec
