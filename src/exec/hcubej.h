#ifndef ADJ_EXEC_HCUBEJ_H_
#define ADJ_EXEC_HCUBEJ_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "dist/hcube.h"
#include "exec/run_report.h"
#include "query/attribute_order.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "wcoj/leapfrog.h"

namespace adj::exec {

/// A query atom bound to its base relation and re-columned for a
/// specific attribute order: columns ascend by order rank and the rows
/// are sorted/deduplicated — ready for HCube and trie building. The
/// relation and trie are borrowed from the catalog's IndexCache
/// (shared, never deep-copied), so repeated binds of one (relation,
/// order) pair return pointer-identical artifacts.
struct BoundAtom {
  std::shared_ptr<const storage::PreparedIndex> index;
  std::vector<AttrId> attrs;

  const storage::Relation& rel() const { return *index->rel; }
  const storage::Trie& trie() const { return *index->trie; }
};

/// Binds every atom of `q` against `db` and permutes it for `order`,
/// resolving each bind through db.index_cache(). `stats`, when given,
/// records per-atom cache builds vs. hits.
StatusOr<std::vector<BoundAtom>> BindAtomsForOrder(
    const query::Query& q, const storage::Catalog& db,
    const query::AttributeOrder& order,
    storage::IndexBuildStats* stats = nullptr);

struct HCubeJParams {
  /// Share vector; leave empty to have the optimal shares computed
  /// from the bound relation sizes (Eq. 3).
  dist::ShareVector share;
  dist::HCubeVariant variant = dist::HCubeVariant::kPull;
  wcoj::JoinLimits limits;
  /// When true, runs the HCubeJ+Cache baseline: each server memoizes
  /// intersections in whatever memory HCube storage left free.
  bool use_cache = false;
  /// When true, result tuples are gathered into `HCubeJOutput::results`
  /// (used by pre-computation); otherwise results are only counted.
  bool collect_output = false;
  /// Host threads used to run the simulated servers concurrently.
  /// 1 (default) runs them sequentially — the right setting for cost
  /// measurements (per-server timings stay undistorted).
  int worker_threads = 1;
};

struct HCubeJOutput {
  RunReport report;
  /// Result tuples (schema = attributes in `order` sequence); filled
  /// only when params.collect_output.
  storage::Relation results;
  dist::ShareVector share_used;
};

/// One-round multi-way join (HCubeJ, Sec. II-A): HCube-shuffle all
/// atoms, then run Leapfrog on every server. The paper's
/// communication-first baseline and the execution backend of ADJ's
/// final query.
StatusOr<HCubeJOutput> RunHCubeJ(const query::Query& q,
                                 const storage::Catalog& db,
                                 const query::AttributeOrder& order,
                                 const HCubeJParams& params,
                                 dist::Cluster* cluster);

}  // namespace adj::exec

#endif  // ADJ_EXEC_HCUBEJ_H_
