#include "exec/binary_join.h"

#include <algorithm>

#include "common/timer.h"
#include "wcoj/leapfrog.h"
#include "wcoj/naive_join.h"

namespace adj::exec {
namespace {

/// Binds an atom with columns normalized to ascending attribute ids,
/// borrowing the sorted relation from the shared index layer. Hash
/// joins never touch a trie, so the bind resolves the trie-less
/// artifact — sharing its row payload with trie-backed binds of the
/// same column order without ever paying for a trie build.
StatusOr<std::shared_ptr<const storage::Relation>> BindAtom(
    const query::Atom& atom, const storage::Catalog& db,
    const std::vector<int>& ascending_rank,
    storage::IndexBuildStats* stats) {
  StatusOr<std::shared_ptr<const storage::Relation>> base =
      db.GetShared(atom.relation);
  if (!base.ok()) return base.status();
  StatusOr<wcoj::SharedBoundRelation> prepared =
      wcoj::PrepareRelationRowsShared(std::move(*base), atom.schema.attrs(),
                                      ascending_rank, db.index_cache(), stats);
  if (!prepared.ok()) return prepared.status();
  return std::move(prepared->rel);
}

}  // namespace

StatusOr<RunReport> RunBinaryJoin(const query::Query& q,
                                  const storage::Catalog& db,
                                  dist::Cluster* cluster,
                                  const wcoj::JoinLimits& limits) {
  RunReport report;
  report.method = "SparkSQL";
  const dist::NetworkModel& net = cluster->config().net;
  const int n_servers = cluster->num_servers();
  WallTimer deadline;

  // Bind all atoms through the shared index layer.
  const std::vector<int> ascending_rank =
      wcoj::AscendingRank(q.num_attrs());
  storage::IndexBuildStats bind_stats;
  std::vector<const storage::Relation*> rels;
  std::vector<std::shared_ptr<const storage::Relation>> bound;
  for (const query::Atom& atom : q.atoms()) {
    StatusOr<std::shared_ptr<const storage::Relation>> rel =
        BindAtom(atom, db, ascending_rank, &bind_stats);
    if (!rel.ok()) return rel.status();
    bound.push_back(std::move(rel.value()));
    rels.push_back(bound.back().get());
  }
  report.index_builds = bind_stats.builds;
  report.index_reused = bind_stats.hits;
  report.index_mmap = bind_stats.mmap_hits;
  report.index_patched = bind_stats.patched;
  report.delta_rows_merged = bind_stats.delta_rows_merged;

  // Greedy join order: start from the smallest relation, repeatedly
  // join the smallest relation sharing an attribute with the current
  // intermediate (classic System-R-style left-deep heuristic).
  std::vector<bool> used(rels.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < rels.size(); ++i) {
    if (rels[i]->size() < rels[first]->size()) first = i;
  }
  used[first] = true;
  storage::Relation acc = *rels[first];
  report.rounds = 0;

  auto shared_attr = [&](const storage::Relation& r) {
    for (AttrId a : r.schema().attrs()) {
      if (acc.schema().Contains(a)) return true;
    }
    return false;
  };

  for (size_t step = 1; step < rels.size(); ++step) {
    int next = -1;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (used[i] || !shared_attr(*rels[i])) continue;
      if (next < 0 || rels[i]->size() < rels[size_t(next)]->size()) {
        next = int(i);
      }
    }
    if (next < 0) {
      // Disconnected query (not in the paper's workloads): fall back
      // to any unused atom (cartesian round).
      for (size_t i = 0; i < rels.size(); ++i) {
        if (!used[i]) {
          next = int(i);
          break;
        }
      }
    }
    used[size_t(next)] = true;

    // Round accounting: repartition both sides on the join key.
    const uint64_t copies = acc.size() + rels[size_t(next)]->size();
    const uint64_t bytes = acc.SizeBytes() + rels[size_t(next)]->SizeBytes();
    report.comm.tuple_copies += copies;
    report.comm.bytes += bytes;
    report.comm_s += dist::PushSeconds(net, copies, bytes, n_servers);
    report.overhead_s += net.stage_overhead_s;
    ++report.rounds;

    // Memory: the build side is replicated per join task; the
    // intermediate must fit the cluster.
    const uint64_t cluster_mem =
        uint64_t(n_servers) * cluster->config().memory_per_server_bytes;
    if (acc.SizeBytes() + rels[size_t(next)]->SizeBytes() > cluster_mem) {
      report.status = Status::ResourceExhausted(
          "binary join intermediate exceeds cluster memory");
      return report;
    }

    WallTimer join_timer;
    StatusOr<storage::Relation> joined =
        wcoj::HashJoin(acc, *rels[size_t(next)], limits.max_materialized_rows);
    if (!joined.ok()) {
      report.status = joined.status();
      return report;
    }
    // Ideal even partitioning: local join work divides across servers.
    report.comp_s += join_timer.Seconds() / n_servers;
    acc = std::move(joined.value());
    report.tuples_at_level.push_back(acc.size());

    if (deadline.Seconds() > limits.max_seconds) {
      report.status =
          Status::DeadlineExceeded("binary join exceeded time budget");
      return report;
    }
  }
  report.output_count = acc.size();
  return report;
}

}  // namespace adj::exec
