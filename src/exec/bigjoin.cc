#include "exec/bigjoin.h"

#include <algorithm>
#include <limits>

#include "common/timer.h"
#include "exec/hcubej.h"
#include "storage/trie.h"
#include "wcoj/intersect.h"

namespace adj::exec {
namespace {

using storage::Trie;

/// Intersects k sibling ranges (sorted value runs, raw or
/// block-compressed) through the shared kernel layer, appending common
/// values to `out`. `views` and `caches` (one block-decode cache per
/// participant) are caller state reused across bindings — consecutive
/// bindings probe adjacent ranges, so most block decodes hit.
void IntersectRanges(const std::vector<const Trie*>& tries,
                     const std::vector<int>& levels,
                     const std::vector<Trie::Range>& ranges,
                     std::vector<wcoj::intersect::RunView>* views,
                     storage::blockcodec::DecodeCache* caches,
                     std::vector<Value>* out, uint64_t* blocks_decoded) {
  namespace in = wcoj::intersect;
  const int k = static_cast<int>(tries.size());
  views->resize(static_cast<size_t>(k));
  size_t cap = std::numeric_limits<size_t>::max();
  for (int j = 0; j < k; ++j) {
    if (ranges[j].empty()) return;
    const Trie& trie = *tries[j];
    (*views)[j] =
        trie.level_compressed(levels[j])
            ? in::RunView::Compressed({trie.CompressedView(levels[j]),
                                       ranges[j].lo, ranges[j].hi})
            : in::RunView::Raw(trie.RangeSpan(levels[j], ranges[j]));
    cap = std::min(cap, (*views)[j].size());
  }
  const size_t base = out->size();
  out->resize(base + cap);
  in::KernelStats stats;
  const size_t n = in::IntersectKValuesRuns(views->data(), k,
                                            out->data() + base, caches,
                                            &stats);
  out->resize(base + n);
  *blocks_decoded += stats.blocks_decoded;
}

}  // namespace

StatusOr<RunReport> RunBigJoin(const query::Query& q,
                               const storage::Catalog& db,
                               const query::AttributeOrder& order,
                               dist::Cluster* cluster,
                               const wcoj::JoinLimits& limits) {
  RunReport report;
  report.method = "BigJoin";
  report.rounds = 0;
  const dist::NetworkModel& net = cluster->config().net;
  const int n_servers = cluster->num_servers();
  WallTimer deadline;

  // Global per-relation tries, columns in attribute-order layout
  // (BigJoin keeps each relation sharded and indexed; we simulate the
  // index and charge communication for routing bindings to shards).
  // The bound atoms arrive trie-indexed from the shared index layer —
  // no local Trie::Build.
  storage::IndexBuildStats index_stats;
  StatusOr<std::vector<BoundAtom>> bound =
      BindAtomsForOrder(q, db, order, &index_stats);
  if (!bound.ok()) return bound.status();
  report.index_builds = index_stats.builds;
  report.index_reused = index_stats.hits;
  report.index_mmap = index_stats.mmap_hits;
  report.index_patched = index_stats.patched;
  report.delta_rows_merged = index_stats.delta_rows_merged;

  const int n = static_cast<int>(order.size());
  const std::vector<int> rank = query::RankOf(order, q.num_attrs());

  // Partial bindings over order prefix, stored flat.
  std::vector<Value> bindings;  // width = current prefix length
  uint64_t num_bindings = 1;    // B_0 = {()}
  int width = 0;

  for (int i = 0; i < n; ++i) {
    // Relations containing order[i].
    std::vector<int> parts;
    for (int a = 0; a < q.num_atoms(); ++a) {
      const auto& attrs = (*bound)[size_t(a)].attrs;
      if (std::find(attrs.begin(), attrs.end(), order[i]) != attrs.end()) {
        parts.push_back(a);
      }
    }
    if (parts.empty()) {
      return Status::InvalidArgument("attribute covered by no atom");
    }

    // Round accounting: every binding is routed to each participating
    // relation's index shard (proposal + intersection traffic).
    const uint64_t copies = num_bindings * parts.size();
    const uint64_t bytes = copies * uint64_t(std::max(width, 1)) *
                           sizeof(Value);
    report.comm.tuple_copies += copies;
    report.comm.bytes += bytes;
    report.comm_s += dist::PushSeconds(net, copies, bytes, n_servers);
    report.overhead_s += net.stage_overhead_s;
    ++report.rounds;

    WallTimer round_timer;
    std::vector<Value> next;
    std::vector<const Trie*> part_tries;
    std::vector<int> part_levels;
    for (int a : parts) {
      const auto& attrs = (*bound)[size_t(a)].attrs;
      part_tries.push_back(&(*bound)[size_t(a)].trie());
      part_levels.push_back(static_cast<int>(
          std::find(attrs.begin(), attrs.end(), order[i]) - attrs.begin()));
    }

    std::vector<Value> candidates;
    std::vector<Trie::Range> ranges(parts.size());
    std::vector<wcoj::intersect::RunView> run_views;
    // Block-decode caches, reused across this round's bindings: one
    // per participant for the intersection, one per (participant,
    // bound level) for the trie descent probes.
    namespace bc = storage::blockcodec;
    std::vector<bc::DecodeCache> isect_caches(parts.size());
    size_t descend_slots = 0;
    std::vector<size_t> descend_off(parts.size(), 0);
    for (size_t pi = 0; pi < parts.size(); ++pi) {
      descend_off[pi] = descend_slots;
      descend_slots += static_cast<size_t>(part_levels[pi]);
    }
    std::vector<bc::DecodeCache> descend_caches(descend_slots);
    uint64_t produced = 0;
    for (uint64_t bnd = 0; bnd < num_bindings; ++bnd) {
      const Value* prefix = width == 0 ? nullptr : &bindings[bnd * width];
      bool dead = false;
      for (size_t pi = 0; pi < parts.size() && !dead; ++pi) {
        const Trie& trie = *part_tries[pi];
        const auto& attrs = (*bound)[size_t(parts[pi])].attrs;
        // Descend the trie through the atom's already-bound levels.
        Trie::Range range = trie.RootRange();
        for (int l = 0; l < part_levels[pi]; ++l) {
          const Value v = prefix[rank[attrs[size_t(l)]]];
          uint32_t idx = trie.FindInRange(
              l, range, v, &descend_caches[descend_off[pi] + size_t(l)]);
          if (idx == range.hi) {
            dead = true;
            break;
          }
          range = trie.ChildRange(l, idx);
        }
        ranges[pi] = range;
      }
      if (dead) continue;
      candidates.clear();
      IntersectRanges(part_tries, part_levels, ranges, &run_views,
                      isect_caches.data(), &candidates,
                      &report.blocks_decoded);
      for (Value v : candidates) {
        for (int c = 0; c < width; ++c) next.push_back(prefix[c]);
        next.push_back(v);
        ++produced;
      }
      if (produced > limits.max_materialized_rows) {
        report.status = Status::ResourceExhausted(
            "BigJoin binding set exceeded row limit");
        return report;
      }
    }
    report.comp_s += round_timer.Seconds() / n_servers;
    report.tuples_at_level.push_back(produced);
    report.extensions += produced;

    // Memory: the materialized binding set must fit the cluster.
    const uint64_t cluster_mem =
        uint64_t(n_servers) * cluster->config().memory_per_server_bytes;
    if (next.size() * sizeof(Value) > cluster_mem) {
      report.status = Status::ResourceExhausted(
          "BigJoin binding set exceeds cluster memory");
      return report;
    }
    if (deadline.Seconds() > limits.max_seconds) {
      report.status = Status::DeadlineExceeded("BigJoin time budget");
      return report;
    }
    bindings = std::move(next);
    width = i + 1;
    num_bindings = produced;
    if (num_bindings == 0) break;
  }
  report.output_count = num_bindings;
  return report;
}

}  // namespace adj::exec
