#include "exec/precompute.h"

#include <algorithm>

#include "exec/hcubej.h"

namespace adj::exec {
namespace {

/// Sub-query containing only the atoms of `bag`, over the same
/// attribute universe as `q`.
query::Query BagSubQuery(const query::Query& q, const ghd::Bag& bag) {
  std::vector<query::Atom> atoms;
  for (int i = 0; i < q.num_atoms(); ++i) {
    if (bag.atoms & (AtomMask(1) << i)) atoms.push_back(q.atom(i));
  }
  return query::Query::Make(q.attr_names(), std::move(atoms));
}

}  // namespace

StatusOr<PrecomputeResult> MaterializeBag(const query::Query& q,
                                          const storage::Catalog& db,
                                          const ghd::Bag& bag,
                                          dist::Cluster* cluster,
                                          const wcoj::JoinLimits& limits) {
  query::Query sub = BagSubQuery(q, bag);
  // Join the bag under ascending attribute-id order (bags are small,
  // cheap joins; a finer order choice would not change the costs the
  // paper's model attributes to pre-computing).
  query::AttributeOrder order;
  for (int a = 0; a < q.num_attrs(); ++a) {
    if (bag.attrs & (AttrMask(1) << a)) order.push_back(a);
  }
  HCubeJParams params;
  params.limits = limits;
  params.collect_output = true;
  StatusOr<HCubeJOutput> run = RunHCubeJ(sub, db, order, params, cluster);
  if (!run.ok()) return run.status();
  if (!run->report.ok()) return run->report.status;

  PrecomputeResult result;
  // The one-round sub-join assigns each output tuple to exactly one
  // server, so the gathered relation is duplicate-free; sort it into
  // canonical form. Output schema = `order` = ascending ids already.
  result.rel = std::move(run->results);
  result.rel.SortAndDedup();
  result.comm_s = run->report.comm_s;
  result.comp_s = run->report.comp_s;
  result.comm = run->report.comm;
  return result;
}

RewrittenQuery RewriteWithBags(const query::Query& q,
                               const ghd::Decomposition& decomp,
                               const std::vector<bool>& precompute) {
  RewrittenQuery out;
  std::vector<query::Atom> atoms;
  AtomMask covered = 0;
  for (int v = 0; v < decomp.num_bags(); ++v) {
    if (!precompute[v]) continue;
    const ghd::Bag& bag = decomp.bags[v];
    covered |= bag.atoms;
    query::Atom atom;
    atom.relation = "__bag" + std::to_string(v);
    std::vector<AttrId> attrs;
    for (int a = 0; a < q.num_attrs(); ++a) {
      if (bag.attrs & (AttrMask(1) << a)) attrs.push_back(a);
    }
    atom.schema = storage::Schema(attrs);
    atoms.push_back(atom);
    out.bag_atoms.emplace_back("__bag" + std::to_string(v), v);
  }
  for (int i = 0; i < q.num_atoms(); ++i) {
    if ((covered & (AtomMask(1) << i)) == 0) atoms.push_back(q.atom(i));
  }
  out.query = query::Query::Make(q.attr_names(), std::move(atoms));
  return out;
}

}  // namespace adj::exec
