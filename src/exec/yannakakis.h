#ifndef ADJ_EXEC_YANNAKAKIS_H_
#define ADJ_EXEC_YANNAKAKIS_H_

#include "common/status.h"
#include "ghd/decomposition.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace adj::exec {

/// Yannakakis' algorithm (VLDB'81) over a GHD: the classic
/// instance-optimal evaluator for *acyclic* queries, and the local
/// evaluation strategy EmptyHeaded-style hybrid engines (the paper's
/// related work, Sec. VI) use on the decomposed query.
///
/// Pipeline:
///  1. materialize each bag relation (join of its atoms),
///  2. full semi-join reduction: leaves-to-root then root-to-leaves
///     passes over the join tree remove all dangling tuples,
///  3. join the reduced bags bottom-up — with full reduction every
///     intermediate is bounded by the output size.
///
/// Returns the full result relation (attributes ascending). Intended
/// for sequential (per-server / oracle) use and for the hybrid
/// ablation; the distributed engines go through HCubeJ instead.
struct YannakakisStats {
  uint64_t bag_tuples = 0;        // sum of materialized bag sizes
  uint64_t reduced_bag_tuples = 0;  // after semi-join reduction
  uint64_t intermediate_tuples = 0; // sum of join intermediates
};

StatusOr<storage::Relation> YannakakisJoin(const query::Query& q,
                                           const storage::Catalog& db,
                                           const ghd::Decomposition& decomp,
                                           YannakakisStats* stats = nullptr,
                                           uint64_t row_limit = UINT64_MAX);

/// Convenience: finds the optimal GHD, then runs YannakakisJoin.
StatusOr<storage::Relation> YannakakisJoinAuto(const query::Query& q,
                                               const storage::Catalog& db,
                                               YannakakisStats* stats = nullptr,
                                               uint64_t row_limit = UINT64_MAX);

/// Semi-join: rows of `left` that join with at least one row of
/// `right` on their shared attributes (left unchanged if none shared).
storage::Relation SemiJoin(const storage::Relation& left,
                           const storage::Relation& right);

}  // namespace adj::exec

#endif  // ADJ_EXEC_YANNAKAKIS_H_
