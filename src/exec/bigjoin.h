#ifndef ADJ_EXEC_BIGJOIN_H_
#define ADJ_EXEC_BIGJOIN_H_

#include "common/status.h"
#include "dist/cluster.h"
#include "exec/run_report.h"
#include "query/attribute_order.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "wcoj/leapfrog.h"

namespace adj::exec {

/// BigJoin-style baseline (Ammar et al., PVLDB'18): a multi-round
/// *worst-case optimal* dataflow. The attribute order is processed
/// level by level; each round the full set of partial bindings is
/// shuffled to the index shards of every relation containing the next
/// attribute, intersected, and the extended bindings are materialized
/// for the next round. Computation is WCOJ (few intermediate tuples,
/// beats SparkSQL), but every level re-shuffles all partial bindings —
/// which explodes on cyclic queries, matching Fig. 12 where BigJoin
/// only finishes Q1/Q2.
StatusOr<RunReport> RunBigJoin(const query::Query& q,
                               const storage::Catalog& db,
                               const query::AttributeOrder& order,
                               dist::Cluster* cluster,
                               const wcoj::JoinLimits& limits = {});

}  // namespace adj::exec

#endif  // ADJ_EXEC_BIGJOIN_H_
