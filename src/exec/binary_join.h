#ifndef ADJ_EXEC_BINARY_JOIN_H_
#define ADJ_EXEC_BINARY_JOIN_H_

#include "common/status.h"
#include "dist/cluster.h"
#include "exec/run_report.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "wcoj/leapfrog.h"

namespace adj::exec {

/// SparkSQL-style baseline: the query is decomposed into a greedy
/// (smallest-first, connected) sequence of binary hash joins; every
/// round repartitions both sides on the join key and materializes the
/// full intermediate result. Communication is charged per round for
/// both inputs — the "expensive shuffling of intermediate results" the
/// one-round methods avoid.
///
/// Fails with ResourceExhausted when an intermediate exceeds
/// `limits.max_extensions` rows (the paper's memory-overflow failure
/// mode) or DeadlineExceeded past `limits.max_seconds`.
StatusOr<RunReport> RunBinaryJoin(const query::Query& q,
                                  const storage::Catalog& db,
                                  dist::Cluster* cluster,
                                  const wcoj::JoinLimits& limits = {});

}  // namespace adj::exec

#endif  // ADJ_EXEC_BINARY_JOIN_H_
