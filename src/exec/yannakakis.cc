#include "exec/yannakakis.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "wcoj/naive_join.h"

namespace adj::exec {
namespace {

/// Key hash of `rel` row `r` over schema positions `pos`, with the
/// projected values appended to `key_out` for equality verification.
uint64_t RowKey(const storage::Relation& rel, uint64_t r,
                const std::vector<int>& pos, std::vector<Value>* key_out) {
  uint64_t h = 0x51ED270B9D4F4E17ULL;
  if (key_out != nullptr) key_out->clear();
  for (int p : pos) {
    const Value v = rel.At(r, p);
    h = HashCombine(h, v);
    if (key_out != nullptr) key_out->push_back(v);
  }
  return h;
}

}  // namespace

storage::Relation SemiJoin(const storage::Relation& left,
                           const storage::Relation& right) {
  std::vector<AttrId> shared;
  for (AttrId a : left.schema().attrs()) {
    if (right.schema().Contains(a)) shared.push_back(a);
  }
  if (shared.empty()) return left;
  std::vector<int> lpos, rpos;
  for (AttrId a : shared) {
    lpos.push_back(left.schema().PositionOf(a));
    rpos.push_back(right.schema().PositionOf(a));
  }
  // Hash set of right-side keys. Collisions are tolerable here only if
  // verified; keep a multimap row reference for exact checks.
  std::unordered_multimap<uint64_t, uint64_t> keys;
  keys.reserve(right.size());
  for (uint64_t r = 0; r < right.size(); ++r) {
    keys.emplace(RowKey(right, r, rpos, nullptr), r);
  }
  storage::Relation out(left.schema());
  std::vector<Value> key;
  for (uint64_t l = 0; l < left.size(); ++l) {
    const uint64_t h = RowKey(left, l, lpos, &key);
    auto [it, end] = keys.equal_range(h);
    bool hit = false;
    for (; it != end && !hit; ++it) {
      hit = true;
      for (size_t i = 0; i < rpos.size(); ++i) {
        if (right.At(it->second, rpos[i]) != key[i]) {
          hit = false;
          break;
        }
      }
    }
    if (hit) out.Append(left.Row(l));
  }
  return out;
}

StatusOr<storage::Relation> YannakakisJoin(const query::Query& q,
                                           const storage::Catalog& db,
                                           const ghd::Decomposition& decomp,
                                           YannakakisStats* stats,
                                           uint64_t row_limit) {
  const int k = decomp.num_bags();
  // 1. Materialize bag relations via the oracle joiner (bags are small
  //    by the width guarantee).
  std::vector<storage::Relation> bags(k);
  for (int v = 0; v < k; ++v) {
    std::vector<query::Atom> atoms;
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (decomp.bags[size_t(v)].atoms & (AtomMask(1) << i)) {
        atoms.push_back(q.atom(i));
      }
    }
    query::Query sub = query::Query::Make(q.attr_names(), atoms);
    StatusOr<storage::Relation> bag = wcoj::NaiveJoin(sub, db, row_limit);
    if (!bag.ok()) return bag.status();
    bags[size_t(v)] = std::move(bag.value());
    if (stats != nullptr) stats->bag_tuples += bags[size_t(v)].size();
  }

  // Children lists and a bottom-up order (leaves first). The join
  // tree's parent links come from the GYO reduction.
  std::vector<std::vector<int>> children(k);
  int root = 0;
  for (int v = 0; v < k; ++v) {
    if (decomp.parent[size_t(v)] < 0) {
      root = v;
    } else {
      children[size_t(decomp.parent[size_t(v)])].push_back(v);
    }
  }
  std::vector<int> top_down = {root};
  for (size_t i = 0; i < top_down.size(); ++i) {
    for (int c : children[size_t(top_down[i])]) top_down.push_back(c);
  }
  std::vector<int> bottom_up(top_down.rbegin(), top_down.rend());

  // 2. Full reduction: leaves -> root, then root -> leaves.
  for (int v : bottom_up) {
    const int p = decomp.parent[size_t(v)];
    if (p >= 0) bags[size_t(p)] = SemiJoin(bags[size_t(p)], bags[size_t(v)]);
  }
  for (auto it = bottom_up.rbegin(); it != bottom_up.rend(); ++it) {
    const int v = *it;
    for (int c : children[size_t(v)]) {
      bags[size_t(c)] = SemiJoin(bags[size_t(c)], bags[size_t(v)]);
    }
  }
  if (stats != nullptr) {
    for (const storage::Relation& bag : bags) {
      stats->reduced_bag_tuples += bag.size();
    }
  }

  // 3. Join top-down (every bag shares attributes with its parent, so
  //    no join degenerates into a cartesian product); with full
  //    reduction intermediates cannot dangle.
  storage::Relation result;
  bool first = true;
  for (int v : top_down) {
    if (first) {
      result = std::move(bags[size_t(v)]);
      first = false;
      continue;
    }
    StatusOr<storage::Relation> joined =
        wcoj::HashJoin(result, bags[size_t(v)], row_limit);
    if (!joined.ok()) return joined.status();
    result = std::move(joined.value());
    if (stats != nullptr) stats->intermediate_tuples += result.size();
  }
  return result;
}

StatusOr<storage::Relation> YannakakisJoinAuto(const query::Query& q,
                                               const storage::Catalog& db,
                                               YannakakisStats* stats,
                                               uint64_t row_limit) {
  StatusOr<ghd::Decomposition> decomp = ghd::FindOptimalGhd(q);
  if (!decomp.ok()) return decomp.status();
  return YannakakisJoin(q, db, *decomp, stats, row_limit);
}

}  // namespace adj::exec
