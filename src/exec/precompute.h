#ifndef ADJ_EXEC_PRECOMPUTE_H_
#define ADJ_EXEC_PRECOMPUTE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "exec/run_report.h"
#include "ghd/decomposition.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "wcoj/leapfrog.h"

namespace adj::exec {

/// Result of materializing one candidate relation R_v = join(λ(v)).
struct PrecomputeResult {
  storage::Relation rel;  // schema: bag attributes, ascending ids
  double comm_s = 0.0;    // modeled shuffle of λ(v)
  double comp_s = 0.0;    // max-server measured join time
  dist::CommStats comm;
};

/// Materializes the join of the atoms in `bag` using a distributed
/// one-round sub-join (its own HCube + Leapfrog). This is the
/// pre-computing step of ADJ; comm/comp make up the costM actually
/// paid.
StatusOr<PrecomputeResult> MaterializeBag(const query::Query& q,
                                          const storage::Catalog& db,
                                          const ghd::Bag& bag,
                                          dist::Cluster* cluster,
                                          const wcoj::JoinLimits& limits);

/// Builds the rewritten query Qi (Sec. III): every pre-computed bag
/// becomes a single atom over a freshly named relation
/// "__bag<i>"; remaining atoms are carried over. `extra` receives the
/// materialized bag relations keyed by those names — register them in
/// a catalog before executing Qi.
struct RewrittenQuery {
  query::Query query;
  std::vector<std::pair<std::string, int>> bag_atoms;  // name, bag index
};
RewrittenQuery RewriteWithBags(const query::Query& q,
                               const ghd::Decomposition& decomp,
                               const std::vector<bool>& precompute);

}  // namespace adj::exec

#endif  // ADJ_EXEC_PRECOMPUTE_H_
