#include "exec/hcubej.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/timer.h"
#include "dist/thread_pool.h"
#include "optimizer/share_optimizer.h"

namespace adj::exec {

StatusOr<std::vector<BoundAtom>> BindAtomsForOrder(
    const query::Query& q, const storage::Catalog& db,
    const query::AttributeOrder& order, storage::IndexBuildStats* stats) {
  const std::vector<int> rank = query::RankOf(order, q.num_attrs());
  std::vector<BoundAtom> bound;
  bound.reserve(q.num_atoms());
  for (const query::Atom& atom : q.atoms()) {
    StatusOr<std::shared_ptr<const storage::Relation>> base =
        db.GetShared(atom.relation);
    if (!base.ok()) return base.status();
    if ((*base)->arity() != atom.schema.arity()) {
      return Status::InvalidArgument("atom arity mismatch for relation " +
                                     atom.relation);
    }
    for (AttrId a : atom.schema.attrs()) {
      if (a >= q.num_attrs() || rank[a] < 0) {
        return Status::InvalidArgument(
            "attribute order does not cover all query attributes");
      }
    }
    StatusOr<wcoj::SharedPreparedRelation> prepared =
        wcoj::PrepareRelationShared(std::move(*base), atom.schema.attrs(),
                                    rank, db.index_cache(), stats);
    if (!prepared.ok()) return prepared.status();
    BoundAtom b;
    b.index = std::move(prepared->index);
    b.attrs = std::move(prepared->attrs);
    bound.push_back(std::move(b));
  }
  return bound;
}

StatusOr<HCubeJOutput> RunHCubeJ(const query::Query& q,
                                 const storage::Catalog& db,
                                 const query::AttributeOrder& order,
                                 const HCubeJParams& params,
                                 dist::Cluster* cluster) {
  HCubeJOutput out;
  out.report.method = params.use_cache ? "HCubeJ+Cache" : "HCubeJ";
  out.report.rounds = 1;

  storage::IndexBuildStats index_stats;
  StatusOr<std::vector<BoundAtom>> bound =
      BindAtomsForOrder(q, db, order, &index_stats);
  if (!bound.ok()) return bound.status();

  // Shares: use the provided vector or solve Eq. (3).
  dist::ShareVector share = params.share;
  if (share.p.empty()) {
    std::vector<optimizer::ShareInput> inputs;
    for (size_t i = 0; i < bound->size(); ++i) {
      optimizer::ShareInput in;
      in.schema = q.atom(int(i)).schema.Mask();
      in.tuples = (*bound)[i].rel().size();
      in.bytes = (*bound)[i].rel().SizeBytes();
      inputs.push_back(in);
    }
    StatusOr<dist::ShareVector> opt =
        optimizer::OptimizeShares(inputs, q.num_attrs(), cluster->config());
    if (!opt.ok()) return opt.status();
    share = std::move(opt.value());
  }
  out.share_used = share;

  // One-round shuffle; each input's bound index doubles as the cache
  // pin so shard fragments/tries are built once and reused by every
  // later shuffle of the same input under the same configuration.
  std::vector<dist::HCubeInput> hinputs;
  hinputs.reserve(bound->size());
  for (const BoundAtom& b : *bound) {
    dist::HCubeInput in;
    in.rel = &b.rel();
    in.attrs = b.attrs;
    in.pin = b.index;
    in.shared_rel = b.index->rel;
    in.trie = b.index->trie;
    hinputs.push_back(std::move(in));
  }
  StatusOr<dist::HCubeResult> shuffle =
      dist::HCubeShuffle(hinputs, share, params.variant, cluster,
                         &db.index_cache(), &index_stats);
  out.report.index_builds = index_stats.builds;
  out.report.index_reused = index_stats.hits;
  out.report.index_mmap = index_stats.mmap_hits;
  out.report.index_patched = index_stats.patched;
  out.report.delta_rows_merged = index_stats.delta_rows_merged;
  if (!shuffle.ok()) {
    out.report.status = shuffle.status();
    return out;
  }
  out.report.comm = shuffle->comm;
  out.report.comm_s = shuffle->comm.seconds;
  // Local index construction is computation (Fig. 9's right panel).
  out.report.comp_s += shuffle->build_seconds_max;
  out.report.overhead_s = cluster->config().net.stage_overhead_s;

  // Per-server Leapfrog. Servers are timed individually so comp_s is
  // the parallel makespan; with worker_threads > 1 they also *run*
  // concurrently (each writing its own slot, merged in server order).
  const bool collect = params.collect_output;
  if (collect) {
    out.results = storage::Relation(storage::Schema(
        std::vector<AttrId>(order.begin(), order.end())));
  }
  struct ServerResult {
    Status status;
    uint64_t count = 0;
    wcoj::JoinStats stats;
    storage::Relation results;
    bool ran = false;
  };
  std::vector<ServerResult> per_server(cluster->num_servers());
  std::vector<std::function<void()>> tasks;
  for (int s = 0; s < cluster->num_servers(); ++s) {
    tasks.push_back([&, s]() {
      ServerResult& slot = per_server[size_t(s)];
      const dist::LocalShard& shard = cluster->shard(s);
      std::vector<wcoj::JoinInput> inputs;
      bool any_empty = false;
      for (size_t a = 0; a < shard.tries.size(); ++a) {
        if (shard.tries[a]->empty()) any_empty = true;
        inputs.push_back(
            wcoj::JoinInput{shard.tries[a].get(), shard.attrs[a]});
      }
      if (any_empty) return;  // this hypercube produces nothing
      slot.ran = true;
      wcoj::EmitFn emit_fn;
      if (collect) {
        slot.results = storage::Relation(storage::Schema(
            std::vector<AttrId>(order.begin(), order.end())));
        emit_fn = [&slot](std::span<const Value> tuple) {
          slot.results.Append(tuple);
        };
      }
      StatusOr<uint64_t> count = [&]() -> StatusOr<uint64_t> {
        if (params.use_cache) {
          // Cache capacity = memory HCube storage left unused, split
          // into cached values (vals + idxs at sizeof(Value) each).
          const uint64_t mem = cluster->config().memory_per_server_bytes;
          const uint64_t free_bytes =
              shard.resident_bytes >= mem ? 0 : mem - shard.resident_bytes;
          wcoj::IntersectionCache cache(free_bytes / sizeof(Value));
          return wcoj::LeapfrogJoin(inputs, order,
                                    collect ? &emit_fn : nullptr,
                                    &slot.stats, params.limits, {}, &cache);
        }
        return wcoj::LeapfrogJoin(inputs, order,
                                  collect ? &emit_fn : nullptr, &slot.stats,
                                  params.limits);
      }();
      if (!count.ok()) {
        slot.status = count.status();
        return;
      }
      slot.count = *count;
    });
  }
  dist::RunTasks(params.worker_threads, tasks);

  double max_join_s = 0.0;
  wcoj::JoinStats all_stats;
  uint64_t total = 0;
  for (int s = 0; s < cluster->num_servers(); ++s) {
    ServerResult& slot = per_server[size_t(s)];
    if (!slot.ran) continue;
    if (!slot.status.ok()) {
      out.report.status = slot.status;
      return out;
    }
    total += slot.count;
    max_join_s = std::max(max_join_s, slot.stats.seconds);
    all_stats.Merge(slot.stats);
    if (collect) {
      for (uint64_t r = 0; r < slot.results.size(); ++r) {
        out.results.Append(slot.results.Row(r));
      }
    }
  }
  out.report.comp_s += max_join_s;
  out.report.output_count = total;
  out.report.tuples_at_level = all_stats.tuples_at_level;
  out.report.extensions = all_stats.extensions;
  out.report.simd_intersections = all_stats.simd_intersections;
  out.report.scalar_fallbacks = all_stats.scalar_fallbacks;
  out.report.blocks_decoded = all_stats.blocks_decoded;
  {
    // Resident compressed footprint of the distinct indexes this run
    // bound (labeled binds alias one trie — count it once).
    std::set<const storage::Trie*> seen;
    for (const BoundAtom& b : *bound) {
      const storage::Trie* trie = b.index->trie.get();
      if (trie != nullptr && seen.insert(trie).second) {
        out.report.compressed_bytes += trie->CompressedBytes();
      }
    }
  }
  return out;
}

}  // namespace adj::exec
