#ifndef ADJ_EXEC_RUN_REPORT_H_
#define ADJ_EXEC_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/comm_stats.h"

namespace adj::exec {

/// Outcome of one distributed query execution, broken down the way the
/// paper's Tables II–IV report it. Times:
///  - optimize_s: plan search + sampling (wall clock),
///  - precompute_s: materializing pre-computed relations (modeled comm
///    + max-server measured compute),
///  - comm_s: modeled shuffle cost of the final query,
///  - comp_s: max-server measured join time of the final query,
///  - overhead_s: per-stage scheduling overhead (limits the speed-up
///    of trivial queries, cf. Fig. 11 Q1).
struct RunReport {
  Status status;
  std::string method;
  uint64_t output_count = 0;

  double optimize_s = 0.0;
  double precompute_s = 0.0;
  double comm_s = 0.0;
  double comp_s = 0.0;
  double overhead_s = 0.0;

  dist::CommStats comm;            // final-query shuffle volume
  dist::CommStats precompute_comm; // pre-computing shuffle volume
  uint64_t rounds = 1;             // distributed rounds (1 for one-round)

  /// Per-order-position intermediate tuple counts summed over servers
  /// (|T_i| of the paper; drives Fig. 6 / Fig. 8).
  std::vector<uint64_t> tuples_at_level;
  uint64_t extensions = 0;

  /// Kernel-layer accounting: 2-way intersections served by a SIMD
  /// kernel vs the scalar galloping baseline (see wcoj/intersect.h).
  uint64_t simd_intersections = 0;
  uint64_t scalar_fallbacks = 0;

  /// Compressed-storage accounting: resident bytes of block-compressed
  /// trie levels across the distinct indexes this run bound (0 when
  /// every bound trie is raw), and compressed blocks decoded into
  /// kernel scratch while joining.
  uint64_t compressed_bytes = 0;
  uint64_t blocks_decoded = 0;

  /// Index-layer accounting for this run: artifacts (bound-atom
  /// indexes, shard fragments+tries) this run constructed vs. borrowed
  /// from the shared storage::IndexCache. A prepared query's second
  /// run reports index_builds == 0 — the observable form of "cached
  /// tries end the per-run rebuild".
  uint64_t index_builds = 0;
  uint64_t index_reused = 0;
  /// Of index_reused, how many were adopted from an mmap'ed snapshot
  /// (persist warm restore) rather than built earlier in this process.
  uint64_t index_mmap = 0;
  /// Write provenance: bound artifacts obtained by delta-patching a
  /// cached payload of the pre-write relation version (merge-on-read)
  /// instead of rebuilding, and the delta rows merged doing so. After
  /// a single-relation write, a prepared rerun reports index_builds ==
  /// 0 and index_patched > 0 — the observable form of "a point write
  /// costs delta-proportional merge work, not a rebuild".
  uint64_t index_patched = 0;
  uint64_t delta_rows_merged = 0;

  std::string plan_description;

  double TotalSeconds() const {
    return optimize_s + precompute_s + comm_s + comp_s + overhead_s;
  }

  bool ok() const { return status.ok(); }

  std::string ToString() const;
};

}  // namespace adj::exec

#endif  // ADJ_EXEC_RUN_REPORT_H_
