#ifndef ADJ_CORE_SPJ_H_
#define ADJ_CORE_SPJ_H_

#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace adj::core {

/// Select-Project-Join queries — the extension the paper's conclusion
/// names as future work ("co-optimize computation, pre-computing, and
/// communication for a query that consists of selection, projection,
/// and join").
///
/// A SpjQuery is a natural-join body plus equality selections
/// (attr = constant) and an optional projection of the output onto a
/// subset of attributes (with set semantics, i.e. DISTINCT).
struct SpjQuery {
  query::Query join;
  struct Selection {
    AttrId attr;
    Value value;
  };
  std::vector<Selection> selections;
  /// Attributes kept in the output; 0 means all of attrs(Q).
  AttrMask projection = 0;

  /// True when the projection drops attributes — the case Prepare
  /// rejects and serve::Server routes to direct execution. The one
  /// definition all layers share.
  bool HasProperProjection() const {
    return projection != 0 && projection != join.AllAttrs();
  }

  std::string ToString() const;
};

/// Parses "R(a,b) S(b,c) | a=5, c=7 | a,b" — join body, optional
/// '|'-separated selection list, optional projection list.
StatusOr<SpjQuery> ParseSpj(const std::string& text);

struct SpjResult {
  exec::RunReport report;        // the join execution report
  uint64_t projected_count = 0;  // distinct projected tuples
  /// Tuples removed per atom by selection push-down.
  uint64_t pushed_down_filtered = 0;
};

/// Executes an SPJ query: equality selections are pushed down into the
/// base relations before planning (shrinking both the shuffle volume
/// and the sampling domain), the join runs under `strategy`, and the
/// projection is applied with duplicate elimination at the end.
///
/// Caveat: a *proper* projection must materialize output tuples,
/// which only the one-round HCubeJ collector supports today — for
/// such queries `strategy` only selects between the HCubeJ variants
/// and everything else falls back to plain HCubeJ. The report's
/// `method` always names the executor actually used.
StatusOr<SpjResult> RunSpj(const storage::Catalog& db, const SpjQuery& spj,
                           Strategy strategy, const EngineOptions& options);

/// Same, dispatching the join by StrategyRegistry name (the paper's
/// five strategies plus anything registered at runtime). NotFound for
/// unregistered names.
StatusOr<SpjResult> RunSpj(const storage::Catalog& db, const SpjQuery& spj,
                           const std::string& strategy,
                           const EngineOptions& options);

/// Selection push-down alone (exposed for tests and for users who
/// want to plan on the reduced database): every atom touched by a
/// selection gets a filtered copy of its base relation under a derived
/// name, and the join is rewritten to reference it. Atoms no selection
/// touches are *aliased* into the reduced catalog (shared storage with
/// `db`, zero copies), so push-down cost scales with the filtered
/// atoms only — and a selection-free query costs only the aliases.
struct PushedDown {
  storage::Catalog catalog;
  query::Query query;
  uint64_t filtered = 0;  // tuples removed across all filtered atoms
};
StatusOr<PushedDown> PushDownSelections(const storage::Catalog& db,
                                        const SpjQuery& spj);

/// Delta-aware re-push-down: when a prepared query is refreshed after
/// a write (api::Session::Reprepare), re-scanning every selected atom
/// would cost O(dataset) even though most bases did not change. This
/// overload aliases the *previous* filtered copy (from `prev`, usually
/// the stale ExecutionContext's catalog) for every atom whose base
/// relation is not in `changed`, so the re-push-down scans only the
/// written relations — and preserves relation identity for the rest,
/// which is what keeps their cached indexes bindable without rebuilds.
struct PushDownReuse {
  const storage::Catalog* prev = nullptr;     // prior prepared catalog
  const std::set<std::string>* changed = nullptr;  // base names rewritten
};
StatusOr<PushedDown> PushDownSelections(const storage::Catalog& db,
                                        const SpjQuery& spj,
                                        const PushDownReuse* reuse);

}  // namespace adj::core

#endif  // ADJ_CORE_SPJ_H_
