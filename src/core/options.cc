#include "core/options.h"

namespace adj::core {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kCoOpt:
      return "ADJ";
    case Strategy::kCommFirst:
      return "HCubeJ";
    case Strategy::kCachedCommFirst:
      return "HCubeJ+Cache";
    case Strategy::kBinaryJoin:
      return "SparkSQL";
    case Strategy::kBigJoin:
      return "BigJoin";
  }
  return "?";
}

StatusOr<Strategy> StrategyFromName(const std::string& name) {
  for (Strategy s : AllStrategies()) {
    if (name == StrategyName(s)) return s;
  }
  return Status::InvalidArgument("unknown strategy: " + name);
}

const std::vector<Strategy>& AllStrategies() {
  static const std::vector<Strategy>* kAll = new std::vector<Strategy>{
      Strategy::kBinaryJoin, Strategy::kBigJoin, Strategy::kCommFirst,
      Strategy::kCachedCommFirst, Strategy::kCoOpt};
  return *kAll;
}

}  // namespace adj::core
