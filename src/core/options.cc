#include "core/options.h"

namespace adj::core {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kCoOpt:
      return "ADJ";
    case Strategy::kCommFirst:
      return "HCubeJ";
    case Strategy::kCachedCommFirst:
      return "HCubeJ+Cache";
    case Strategy::kBinaryJoin:
      return "SparkSQL";
    case Strategy::kBigJoin:
      return "BigJoin";
  }
  return "?";
}

}  // namespace adj::core
