#ifndef ADJ_CORE_ENGINE_H_
#define ADJ_CORE_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "exec/run_report.h"
#include "optimizer/adj_optimizer.h"
#include "optimizer/query_plan.h"
#include "query/attribute_order.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace adj::core {

/// ADJ's planning output plus the bookkeeping the evaluation section
/// reports (Tables II–IV's Optimization column and Fig. 8's selected
/// orders).
struct PlanResult {
  optimizer::QueryPlan plan;
  double optimize_s = 0.0;      // sampling + plan search, wall clock
  double sampling_comm_s = 0.0; // modeled reduced-database shuffle
  double beta_raw = 0.0;        // measured during sampling
  /// EXPLAIN-style rendering of the chosen plan (hypertree, traversal,
  /// per-node estimates, order, predicted costs).
  std::string explanation;
};

/// Everything a planned query needs to execute, built once by
/// Engine::PrepareExecution and reusable across any number of
/// RunPrepared calls: the bag-rewritten query, an execution catalog
/// whose base relations are *aliased* (shared, not copied) from the
/// engine's catalog and whose pre-computed bag relations are
/// materialized exactly once, and the one-time cost of doing so. The
/// aliased entries co-own their relations, so the context stays valid
/// even if the source catalog object is destroyed first.
struct ExecutionContext {
  query::Query query;            // rewritten with __bag atoms
  storage::Catalog db;           // bases aliased, bag relations owned
                                 // (index cache shared with the source)
  query::AttributeOrder order;   // the plan's attribute order
  std::string plan_description;

  /// Bound-atom indexes resolved at Prepare time and *pinned*: holding
  /// the shared handles guarantees the IndexCache cannot sweep them
  /// between runs, so RunPrepared's binds are pure cache hits and the
  /// second run onward performs zero Trie::Build / SortAndDedup calls
  /// on base relations (the shard-level shuffle artifacts are built by
  /// the first run and kept alive through these same pins).
  std::vector<std::shared_ptr<const storage::PreparedIndex>> pinned_indexes;
  uint64_t pinned_index_bytes = 0;
  /// Tuple payload of the bag relations this context materialized.
  uint64_t bag_bytes = 0;

  /// Memory this context keeps resident beyond the base catalog:
  /// pinned index artifacts plus owned bag relations. What a serving
  /// cache charges against its byte budget (serve::PreparedQueryCache).
  uint64_t ResidentBytes() const { return pinned_index_bytes + bag_bytes; }

  /// Per-run failure hit while materializing bags (memory/time limits).
  /// When set, RunPrepared reports it without executing; the costs
  /// below then cover the bags that succeeded before the failure.
  Status precompute_status;
  /// One-time bag-materialization cost — charge it to exactly one run.
  double precompute_s = 0.0;
  dist::CommStats precompute_comm;
  /// Index work done while pinning this context's bound atoms: after a
  /// write, binds against the written relation resolve by delta-
  /// patching the pre-write artifacts (storage::IndexCache merge-on-
  /// read) — the delta-proportional cost of refreshing a prepared
  /// query. One-time, so charged with the rest of the prepare cost.
  uint64_t prepare_index_patched = 0;
  uint64_t prepare_delta_rows = 0;

  /// Adds the one-time pre-computation cost to `report` (first-run
  /// attribution).
  void ChargePrecompute(exec::RunReport* report) const {
    report->precompute_s += precompute_s;
    report->precompute_comm.Add(precompute_comm);
    report->index_patched += prepare_index_patched;
    report->delta_rows_merged += prepare_delta_rows;
  }
};

/// Query-execution engine over one catalog: run a natural-join query
/// on a simulated cluster under any registered strategy, returning the
/// paper-style cost breakdown. (Clients normally go through the
/// api::Database / api::Session facade, which layers sessions,
/// prepared queries, and batch execution on top of this class.)
///
/// Typical use:
///   storage::Catalog db;
///   db.Put("G", dataset::MakeBuiltin("LJ").value());
///   query::Query q = *query::MakeBenchmarkQuery(5);
///   Engine engine(&db);
///   exec::RunReport r = *engine.Run(q, Strategy::kCoOpt, {});
class Engine {
 public:
  explicit Engine(const storage::Catalog* db) : db_(db) {}

  /// Executes `q` under strategy `s`. The returned report's `status`
  /// carries per-run failures (memory/time), while the outer Status
  /// carries setup errors (unknown relation, malformed query).
  StatusOr<exec::RunReport> Run(const query::Query& q, Strategy s,
                                const EngineOptions& options);

  /// Same, dispatching by StrategyRegistry name — the five paper
  /// strategies under their StrategyName()s plus anything registered
  /// at runtime. NotFound for unregistered names.
  StatusOr<exec::RunReport> Run(const query::Query& q,
                                const std::string& strategy,
                                const EngineOptions& options);

  /// ADJ's planning stage only (GHD + sampling + Alg. 2) — used by
  /// the optimizer-focused benches.
  StatusOr<PlanResult> Plan(const query::Query& q,
                            const EngineOptions& options);

  /// Executes an already-computed ADJ plan: materializes the plan's
  /// pre-computed bags and runs the final one-round join, charging the
  /// pre-computation to the returned report. Leaves the report's
  /// optimize_s at zero — the caller owns charging plan time. One-shot
  /// convenience over PrepareExecution + RunPrepared; serving paths
  /// that re-execute one plan should hold the ExecutionContext instead.
  StatusOr<exec::RunReport> ExecutePlan(const query::Query& q,
                                        const optimizer::QueryPlan& plan,
                                        const EngineOptions& options);

  /// Delta-aware re-preparation input: a context previously built for
  /// the same (q, plan) plus the set of this engine's catalog names
  /// whose content changed since. PrepareExecution aliases every bag
  /// whose source atoms are all unchanged straight out of `prev`
  /// instead of re-materializing it, so refreshing a prepared query
  /// after a point write costs only the bags the write actually feeds
  /// (api::Session::Reprepare drives this from per-relation versions).
  struct PrepareReuse {
    const ExecutionContext* prev = nullptr;
    std::set<std::string> changed;  // atom relation names rewritten
  };

  /// One-time setup of plan execution: rewrites `q` with the plan's
  /// pre-computed bags, builds the execution catalog (base relations
  /// aliased from this engine's catalog at zero copy cost, bag
  /// relations materialized now), and records the materialization
  /// cost. The outer Status carries setup errors (unknown relation);
  /// bag-materialization failures land in the context's
  /// precompute_status, mirroring the per-run failure channel.
  /// `reuse`, when given, re-aliases still-valid bags from a prior
  /// context (see PrepareReuse) — their cost is not re-charged.
  StatusOr<ExecutionContext> PrepareExecution(
      const query::Query& q, const optimizer::QueryPlan& plan,
      const EngineOptions& options, const PrepareReuse* reuse = nullptr);

  /// The run step: executes the context's final one-round join
  /// (RunHCubeJ) on a fresh simulated cluster. Touches no base
  /// relations beyond the context's aliases and re-materializes
  /// nothing, so it is O(query), not O(dataset) — call it any number
  /// of times. The report excludes the one-time pre-computation cost;
  /// attribute that to one run via ExecutionContext::ChargePrecompute.
  StatusOr<exec::RunReport> RunPrepared(const ExecutionContext& ctx,
                                        const EngineOptions& options);

  /// The comm-first baseline's attribute-order selection: best
  /// sketch-scored order among *all* n! orders ("All-Selected" in
  /// Fig. 8).
  StatusOr<query::AttributeOrder> SelectCommFirstOrder(
      const query::Query& q) const;

  /// Strategy building blocks — the StrategyRegistry's default entries
  /// (kept public so runtime-registered strategies can compose them).
  StatusOr<exec::RunReport> RunCoOpt(const query::Query& q,
                                     const EngineOptions& options);
  StatusOr<exec::RunReport> RunCommFirst(const query::Query& q,
                                         const EngineOptions& options,
                                         bool cached);

  const storage::Catalog& db() const { return *db_; }

 private:
  const storage::Catalog* db_;
};

}  // namespace adj::core

#endif  // ADJ_CORE_ENGINE_H_
