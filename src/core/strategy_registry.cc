#include "core/strategy_registry.h"

#include "core/engine.h"
#include "dist/cluster.h"
#include "exec/bigjoin.h"
#include "exec/binary_join.h"

namespace adj::core {

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* kGlobal = [] {
    auto* registry = new StrategyRegistry();
    registry->RegisterPaperStrategies();
    return registry;
  }();
  return *kGlobal;
}

void StrategyRegistry::RegisterPaperStrategies() {
  strategies_[StrategyName(Strategy::kCoOpt)] =
      [](Engine& engine, const query::Query& q, const EngineOptions& options) {
        return engine.RunCoOpt(q, options);
      };
  strategies_[StrategyName(Strategy::kCommFirst)] =
      [](Engine& engine, const query::Query& q, const EngineOptions& options) {
        return engine.RunCommFirst(q, options, /*cached=*/false);
      };
  strategies_[StrategyName(Strategy::kCachedCommFirst)] =
      [](Engine& engine, const query::Query& q, const EngineOptions& options) {
        return engine.RunCommFirst(q, options, /*cached=*/true);
      };
  strategies_[StrategyName(Strategy::kBinaryJoin)] =
      [](Engine& engine, const query::Query& q, const EngineOptions& options) {
        dist::Cluster cluster(options.cluster);
        return exec::RunBinaryJoin(q, engine.db(), &cluster, options.limits);
      };
  strategies_[StrategyName(Strategy::kBigJoin)] =
      [](Engine& engine, const query::Query& q,
         const EngineOptions& options) -> StatusOr<exec::RunReport> {
        StatusOr<query::AttributeOrder> order = engine.SelectCommFirstOrder(q);
        if (!order.ok()) return order.status();
        dist::Cluster cluster(options.cluster);
        return exec::RunBigJoin(q, engine.db(), *order, &cluster,
                                options.limits);
      };
}

Status StrategyRegistry::Register(const std::string& name, StrategyFn fn) {
  if (name.empty()) return Status::InvalidArgument("empty strategy name");
  if (fn == nullptr) {
    return Status::InvalidArgument("null strategy function: " + name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (strategies_.count(name) > 0) {
    return Status::InvalidArgument("strategy already registered: " + name);
  }
  strategies_[name] = std::move(fn);
  return Status::OK();
}

StatusOr<StrategyFn> StrategyRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = strategies_.find(name);
  if (it == strategies_.end()) {
    std::string known;
    for (const auto& [registered, fn] : strategies_) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return Status::NotFound("unknown strategy: " + name +
                            " (registered: " + known + ")");
  }
  return it->second;
}

bool StrategyRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return strategies_.count(name) > 0;
}

std::vector<std::string> StrategyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(strategies_.size());
  for (const auto& [name, fn] : strategies_) names.push_back(name);
  return names;
}

}  // namespace adj::core
