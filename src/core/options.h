#ifndef ADJ_CORE_OPTIONS_H_
#define ADJ_CORE_OPTIONS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "dist/hcube.h"
#include "wcoj/leapfrog.h"

namespace adj::core {

/// The five execution strategies compared in the paper's evaluation.
enum class Strategy {
  kCoOpt,            // ADJ: co-optimized pre-computing + one-round join
  kCommFirst,        // HCubeJ: communication-first one-round join
  kCachedCommFirst,  // HCubeJ+Cache: comm-first with CacheTrieJoin
  kBinaryJoin,       // SparkSQL: multi-round binary hash joins
  kBigJoin,          // BigJoin: multi-round parallel WCOJ
};

const char* StrategyName(Strategy s);

/// Inverse of StrategyName: resolves one of the five paper strategy
/// names ("ADJ", "HCubeJ", "HCubeJ+Cache", "SparkSQL", "BigJoin");
/// InvalidArgument for anything else. Strategies registered at runtime
/// have no enum value — look those up via core::StrategyRegistry.
StatusOr<Strategy> StrategyFromName(const std::string& name);

/// All five paper strategies, in the evaluation's canonical
/// multi-round-to-ADJ order (SparkSQL, BigJoin, HCubeJ, HCubeJ+Cache,
/// ADJ — the column order of Fig. 12).
const std::vector<Strategy>& AllStrategies();

struct EngineOptions {
  dist::ClusterConfig cluster;
  dist::HCubeVariant hcube_variant = dist::HCubeVariant::kPull;
  /// Sampling budget for the ADJ optimizer's cardinality estimation
  /// (the paper uses 10^5 at full scale; defaults are scaled down with
  /// the datasets).
  uint64_t num_samples = 1000;
  uint64_t seed = 42;
  /// Failure emulation: extension budget ≈ memory overflow, seconds ≈
  /// the paper's 12-hour timeout.
  wcoj::JoinLimits limits;
  /// Wall-clock budget for Engine::Plan itself (GHD search, sampling,
  /// calibration, plan search). When the budget runs out mid-planning,
  /// Plan returns DeadlineExceeded instead of a plan — the serve layer
  /// maps per-request deadlines here so a cold plan-cache miss fails
  /// fast rather than overshooting the deadline before the join even
  /// starts. Infinite (the default) preserves unbounded planning.
  double planning_budget_seconds = std::numeric_limits<double>::infinity();
  /// Ablations / testing hooks.
  bool use_exhaustive_planner = false;  // oracle plan search (Alg.2 off)
  bool use_exact_estimates = false;     // NaiveJoin-backed cardinalities
  /// Fixed extension rates replacing the measured calibration (>0 =
  /// use this value, skip measuring). Plan choice — notably the
  /// precompute-vs-inline decision — adapts to measured seek rates, so
  /// tests that assert a specific plan shape pin both rates to make
  /// planning deterministic on slow or instrumented hardware.
  double beta_precomputed_override = 0.0;
  double beta_raw_override = 0.0;
};

}  // namespace adj::core

#endif  // ADJ_CORE_OPTIONS_H_
