#ifndef ADJ_CORE_STRATEGY_REGISTRY_H_
#define ADJ_CORE_STRATEGY_REGISTRY_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "exec/run_report.h"
#include "query/query.h"

namespace adj::core {

class Engine;

/// A pluggable execution strategy: given an engine (catalog access plus
/// the planning helpers), a query, and options, produce the paper-style
/// cost report. Per-run failures (memory, time) travel in
/// report.status; setup errors (unknown relation, malformed query) in
/// the outer Status — same contract as Engine::Run.
using StrategyFn = std::function<StatusOr<exec::RunReport>(
    Engine&, const query::Query&, const EngineOptions&)>;

/// String-keyed registry of execution strategies. The five strategies
/// of the paper's evaluation are registered under their canonical
/// StrategyName()s at startup; clients (drivers, tests, plugins) add
/// new executors at runtime without touching core::Strategy. All
/// operations are thread-safe, so registered strategies are runnable
/// from concurrent sessions.
class StrategyRegistry {
 public:
  /// The process-wide registry, pre-populated with the paper's five
  /// strategies (ADJ, HCubeJ, HCubeJ+Cache, SparkSQL, BigJoin).
  static StrategyRegistry& Global();

  /// Registers `fn` under `name`. Names are unique: registering an
  /// already-taken name (including the builtin five) is
  /// InvalidArgument, so a plugin cannot silently shadow ADJ.
  Status Register(const std::string& name, StrategyFn fn);

  /// The strategy registered under `name`, or NotFound listing the
  /// registered names.
  StatusOr<StrategyFn> Find(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  StrategyRegistry() = default;

  /// Installs the five paper strategies (called once by Global()).
  void RegisterPaperStrategies();

  mutable std::mutex mu_;
  std::map<std::string, StrategyFn> strategies_;
};

}  // namespace adj::core

#endif  // ADJ_CORE_STRATEGY_REGISTRY_H_
