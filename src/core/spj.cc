#include "core/spj.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "core/strategy_registry.h"
#include "exec/hcubej.h"

namespace adj::core {
namespace {

std::vector<std::string> SplitTrim(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  for (std::string& p : parts) {
    while (!p.empty() && std::isspace(static_cast<unsigned char>(p.front()))) {
      p.erase(p.begin());
    }
    while (!p.empty() && std::isspace(static_cast<unsigned char>(p.back()))) {
      p.pop_back();
    }
  }
  return parts;
}

}  // namespace

std::string SpjQuery::ToString() const {
  std::string out = join.ToString();
  if (!selections.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < selections.size(); ++i) {
      if (i > 0) out += " AND ";
      out += join.attr_name(selections[i].attr) + "=" +
             std::to_string(selections[i].value);
    }
  }
  if (projection != 0) {
    out += " PROJECT ";
    bool first = true;
    for (int a = 0; a < join.num_attrs(); ++a) {
      if (projection & (AttrMask(1) << a)) {
        if (!first) out += ",";
        out += join.attr_name(a);
        first = false;
      }
    }
  }
  return out;
}

StatusOr<SpjQuery> ParseSpj(const std::string& text) {
  // "join | selections | projection" — both trailing sections optional.
  std::vector<std::string> sections = SplitTrim(text, '|');
  if (sections.empty() || sections.size() > 3) {
    return Status::InvalidArgument("expected 'join [| sel [| proj]]'");
  }
  SpjQuery spj;
  StatusOr<query::Query> join = query::Query::Parse(sections[0]);
  if (!join.ok()) return join.status();
  spj.join = std::move(join.value());

  if (sections.size() >= 2 && !sections[1].empty()) {
    for (const std::string& item : SplitTrim(sections[1], ',')) {
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("selection must be attr=value: " +
                                       item);
      }
      std::string name = item.substr(0, eq);
      while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                  name.back()))) {
        name.pop_back();
      }
      StatusOr<AttrId> attr = spj.join.AttrByName(name);
      if (!attr.ok()) return attr.status();
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(item.c_str() + eq + 1, &end, 10);
      if (end == item.c_str() + eq + 1) {
        return Status::InvalidArgument("bad selection constant in: " + item);
      }
      spj.selections.push_back({*attr, static_cast<Value>(v)});
    }
  }
  if (sections.size() == 3 && !sections[2].empty()) {
    for (const std::string& name : SplitTrim(sections[2], ',')) {
      if (name.empty()) continue;
      StatusOr<AttrId> attr = spj.join.AttrByName(name);
      if (!attr.ok()) return attr.status();
      spj.projection |= (AttrMask(1) << *attr);
    }
  }
  return spj;
}

StatusOr<PushedDown> PushDownSelections(const storage::Catalog& db,
                                        const SpjQuery& spj) {
  return PushDownSelections(db, spj, nullptr);
}

StatusOr<PushedDown> PushDownSelections(const storage::Catalog& db,
                                        const SpjQuery& spj,
                                        const PushDownReuse* reuse) {
  PushedDown out;
  // The reduced catalog shares the source's index cache: aliased
  // (unfiltered) atoms bind to the indexes the source's consumers
  // already built; filtered copies get their own entries, swept once
  // the prepared query holding them goes away.
  out.catalog.ShareIndexCacheWith(db);
  std::vector<query::Atom> new_atoms;
  for (int i = 0; i < spj.join.num_atoms(); ++i) {
    const query::Atom& atom = spj.join.atom(i);
    StatusOr<std::shared_ptr<const storage::Relation>> shared =
        db.GetShared(atom.relation);
    if (!shared.ok()) return shared.status();
    const storage::Relation* base = shared->get();
    // Which selections touch this atom?
    std::vector<std::pair<int, Value>> filters;  // column, value
    for (const SpjQuery::Selection& sel : spj.selections) {
      const int pos = atom.schema.PositionOf(sel.attr);
      if (pos >= 0) filters.emplace_back(pos, sel.value);
    }
    if (filters.empty()) {
      if (!out.catalog.Contains(atom.relation)) {
        // Untouched base relations are aliased, not copied — push-down
        // cost scales with the filtered atoms only.
        ADJ_RETURN_IF_ERROR(
            out.catalog.PutShared(atom.relation, std::move(*shared)));
      }
      new_atoms.push_back(atom);
      continue;
    }
    const std::string name = atom.relation + "__sel" + std::to_string(i);
    if (reuse != nullptr && reuse->prev != nullptr &&
        reuse->changed != nullptr &&
        reuse->changed->count(atom.relation) == 0 &&
        reuse->prev->Contains(name)) {
      // The base did not change since the previous push-down: alias
      // the prior filtered copy instead of re-scanning — identity is
      // preserved, so its cached indexes stay bindable.
      StatusOr<std::shared_ptr<const storage::Relation>> prior =
          reuse->prev->GetShared(name);
      if (!prior.ok()) return prior.status();
      out.filtered += base->size() - (*prior)->size();
      if (!out.catalog.Contains(name)) {
        ADJ_RETURN_IF_ERROR(out.catalog.PutShared(name, std::move(*prior)));
      }
      query::Atom new_atom = atom;
      new_atom.relation = name;
      new_atoms.push_back(new_atom);
      continue;
    }
    storage::Relation filtered(storage::Schema(base->schema()));
    for (uint64_t r = 0; r < base->size(); ++r) {
      bool keep = true;
      for (const auto& [pos, value] : filters) {
        if (base->At(r, pos) != value) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.Append(base->Row(r));
    }
    out.filtered += base->size() - filtered.size();
    out.catalog.Put(name, std::move(filtered));
    query::Atom new_atom = atom;
    new_atom.relation = name;
    new_atoms.push_back(new_atom);
  }
  out.query = query::Query::Make(spj.join.attr_names(), new_atoms);
  return out;
}

StatusOr<SpjResult> RunSpj(const storage::Catalog& db, const SpjQuery& spj,
                           Strategy strategy, const EngineOptions& options) {
  return RunSpj(db, spj, std::string(StrategyName(strategy)), options);
}

StatusOr<SpjResult> RunSpj(const storage::Catalog& db, const SpjQuery& spj,
                           const std::string& strategy,
                           const EngineOptions& options) {
  // 0. Resolve the strategy up front so an unknown name errors the
  //    same way on the counting and the projecting path (and the
  //    counting path can invoke it without a second registry lookup).
  StatusOr<StrategyFn> fn = StrategyRegistry::Global().Find(strategy);
  if (!fn.ok()) return fn.status();

  // 1. Selection push-down shrinks shuffle volume, sampling domain,
  //    and the join itself before any planning happens. Untouched base
  //    relations are aliased into the reduced catalog at zero copy
  //    cost, so the selection-free serving hot path takes the same
  //    route as selective queries — it just aliases every atom.
  StatusOr<PushedDown> pushed_or = PushDownSelections(db, spj);
  if (!pushed_or.ok()) return pushed_or.status();
  PushedDown pushed = std::move(pushed_or.value());
  SpjResult result;
  result.pushed_down_filtered = pushed.filtered;
  const query::Query* rewritten = &pushed.query;
  const storage::Catalog* reduced = &pushed.catalog;

  // 2. Run the join; when no (proper) projection is requested the
  //    engine's counting path suffices.
  Engine engine(reduced);
  if (spj.projection == 0 || spj.projection == rewritten->AllAttrs()) {
    StatusOr<exec::RunReport> report = (*fn)(engine, *rewritten, options);
    if (!report.ok()) return report.status();
    result.report = std::move(report.value());
    result.projected_count = result.report.output_count;
    return result;
  }

  // 3. Projection with DISTINCT: collect, project, dedupe. Output
  //    tuples must be materialized, which only the one-round HCubeJ
  //    collector supports — `strategy` picks its cache variant, any
  //    other name falls back to plain HCubeJ (the report's `method`
  //    names the executor actually used).
  query::AttributeOrder order;
  for (int a = 0; a < rewritten->num_attrs(); ++a) order.push_back(a);
  dist::Cluster cluster(options.cluster);
  exec::HCubeJParams params;
  params.variant = options.hcube_variant;
  params.limits = options.limits;
  params.use_cache = strategy == StrategyName(Strategy::kCachedCommFirst);
  params.collect_output = true;
  StatusOr<exec::HCubeJOutput> run =
      exec::RunHCubeJ(*rewritten, *reduced, order, params, &cluster);
  if (!run.ok()) return run.status();
  result.report = run->report;
  if (!result.report.ok()) return result;

  std::vector<int> cols;
  std::vector<AttrId> kept;
  for (int a = 0; a < rewritten->num_attrs(); ++a) {
    if (spj.projection & (AttrMask(1) << a)) {
      cols.push_back(run->results.schema().PositionOf(a));
      kept.push_back(a);
    }
  }
  storage::Relation projected((storage::Schema(kept)));
  std::vector<Value> tuple(cols.size());
  for (uint64_t r = 0; r < run->results.size(); ++r) {
    for (size_t c = 0; c < cols.size(); ++c) {
      tuple[c] = run->results.At(r, cols[size_t(c)]);
    }
    projected.Append(tuple);
  }
  projected.SortAndDedup();
  result.projected_count = projected.size();
  return result;
}

}  // namespace adj::core
