#include "core/engine.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/timer.h"
#include "core/strategy_registry.h"
#include "exec/hcubej.h"
#include "exec/precompute.h"
#include "ghd/decomposition.h"
#include "optimizer/explain.h"
#include "sampling/sampler.h"
#include "sampling/sketch_estimator.h"
#include "wcoj/naive_join.h"

namespace adj::core {
namespace {

/// Exact |val(A)|: intersection of the A-projections over the atoms
/// containing A (cheap; one sorted-set intersection per atom).
StatusOr<uint64_t> ValDistinct(const query::Query& q,
                               const storage::Catalog& db, AttrId a) {
  std::vector<Value> acc;
  bool first = true;
  for (const query::Atom& atom : q.atoms()) {
    const int pos = atom.schema.PositionOf(a);
    if (pos < 0) continue;
    StatusOr<const storage::Relation*> base = db.Get(atom.relation);
    if (!base.ok()) return base.status();
    std::vector<Value> vals = (*base)->DistinctColumn(pos);
    if (first) {
      acc = std::move(vals);
      first = false;
    } else {
      std::vector<Value> merged;
      std::set_intersection(acc.begin(), acc.end(), vals.begin(), vals.end(),
                            std::back_inserter(merged));
      acc = std::move(merged);
    }
  }
  if (first) return Status::InvalidArgument("attribute in no atom");
  return static_cast<uint64_t>(acc.size());
}

/// Sub-query restricted to the atoms in `mask`.
query::Query SubQuery(const query::Query& q, AtomMask mask) {
  std::vector<query::Atom> atoms;
  for (int i = 0; i < q.num_atoms(); ++i) {
    if (mask & (AtomMask(1) << i)) atoms.push_back(q.atom(i));
  }
  return query::Query::Make(q.attr_names(), std::move(atoms));
}

/// Atoms of `q` whose schema is contained in `attrs`.
AtomMask AtomsWithin(const query::Query& q, AttrMask attrs) {
  AtomMask mask = 0;
  for (int i = 0; i < q.num_atoms(); ++i) {
    if ((q.atom(i).schema.Mask() & ~attrs) == 0) mask |= (AtomMask(1) << i);
  }
  return mask;
}

/// Ascending-attribute order covering a sub-query.
query::AttributeOrder AscendingOrder(const query::Query& sub) {
  AttrMask attrs = 0;
  for (const query::Atom& atom : sub.atoms()) attrs |= atom.schema.Mask();
  query::AttributeOrder order;
  for (int a = 0; a < sub.num_attrs(); ++a) {
    if (attrs & (AttrMask(1) << a)) order.push_back(a);
  }
  return order;
}

/// Shared estimation state for one planning run: memoizes sub-query
/// cardinalities keyed by atom mask.
class EstimationContext {
 public:
  /// `timer` is the planning run's clock; sub-query sampling stops
  /// issuing work once it passes `budget_seconds` on that clock (the
  /// plan search itself is cheap — sampling is where planning time
  /// goes, so bounding the estimate callbacks bounds the search).
  EstimationContext(const query::Query& q, const storage::Catalog& db,
                    const EngineOptions& options, const WallTimer& timer,
                    double budget_seconds)
      : q_(q),
        db_(db),
        options_(options),
        timer_(timer),
        budget_seconds_(budget_seconds) {}

  /// Estimated size of the join of the atoms in `mask` (1.0 if empty).
  double JoinSize(AtomMask mask) {
    if (mask == 0) return 1.0;
    auto it = cache_.find(mask);
    if (it != cache_.end()) return it->second;
    double size;
    if (options_.use_exact_estimates) {
      StatusOr<storage::Relation> exact = wcoj::NaiveJoin(
          SubQuery(q_, mask), db_, options_.limits.max_extensions);
      size = exact.ok() ? double(exact->size())
                        : std::numeric_limits<double>::infinity();
    } else {
      const double remaining = budget_seconds_ - timer_.Seconds();
      if (remaining <= 0) {
        // Planning budget gone: no more sampling. Infinity is the
        // conservative "unknown, assume huge" the search already
        // handles for failed estimates; Plan's final checkpoint will
        // turn the exhausted budget into DeadlineExceeded regardless.
        size = std::numeric_limits<double>::infinity();
        cache_[mask] = size;
        return size;
      }
      query::Query sub = SubQuery(q_, mask);
      sampling::SamplerOptions sopts;
      // Sub-queries are cheaper than the full query; a fraction of the
      // sample budget suffices for plan-quality decisions.
      sopts.num_samples = std::max<uint64_t>(options_.num_samples / 8, 32);
      sopts.seed = options_.seed ^ (uint64_t(mask) * 0x9E3779B97F4A7C15ULL);
      sopts.per_sample_limits = options_.limits;
      sopts.distributed = false;  // the one-time reduction is accounted
                                  // by the main sampling pass
      sopts.max_total_seconds = remaining;
      StatusOr<sampling::SampleEstimate> est = sampling::SampleCardinality(
          sub, db_, AscendingOrder(sub), sopts, options_.cluster.net,
          options_.cluster.num_servers);
      size = est.ok() ? est->cardinality
                      : std::numeric_limits<double>::infinity();
      sampling_seconds_ += est.ok() ? est->seconds : 0.0;
    }
    cache_[mask] = size;
    return size;
  }

  double Distinct(AttrId a) {
    auto it = distinct_.find(a);
    if (it != distinct_.end()) return it->second;
    StatusOr<uint64_t> v = ValDistinct(q_, db_, a);
    const double d = v.ok() ? double(*v) : 1.0;
    distinct_[a] = d;
    return d;
  }

  void Seed(AtomMask mask, double size) { cache_[mask] = size; }

  double sampling_seconds() const { return sampling_seconds_; }

 private:
  const query::Query& q_;
  const storage::Catalog& db_;
  const EngineOptions& options_;
  const WallTimer& timer_;
  double budget_seconds_;
  std::map<AtomMask, double> cache_;
  std::map<AttrId, double> distinct_;
  double sampling_seconds_ = 0.0;
};

}  // namespace

namespace {

/// Order score shared by the comm-first baseline (over all orders) and
/// ADJ's valid-order selection: total estimated intermediate bindings
/// across the order's prefixes.
double SketchOrderScore(const sampling::SketchEstimator& sketch,
                        const query::AttributeOrder& order) {
  double score = 0.0;
  AttrMask prefix = 0;
  for (AttrId a : order) {
    prefix |= (AttrMask(1) << a);
    score += sketch.EstimateBindings(prefix);
  }
  return score;
}

}  // namespace

StatusOr<query::AttributeOrder> Engine::SelectCommFirstOrder(
    const query::Query& q) const {
  StatusOr<sampling::SketchEstimator> sketch =
      sampling::SketchEstimator::Build(q, *db_);
  if (!sketch.ok()) return sketch.status();
  double best_score = std::numeric_limits<double>::infinity();
  query::AttributeOrder best;
  for (const query::AttributeOrder& order :
       query::AllOrders(q.AllAttrs())) {
    const double score = SketchOrderScore(*sketch, order);
    if (score < best_score) {
      best_score = score;
      best = order;
    }
  }
  if (best.empty()) return Status::Internal("no order found");
  return best;
}

StatusOr<PlanResult> Engine::Plan(const query::Query& q,
                                  const EngineOptions& options) {
  WallTimer timer;
  PlanResult result;

  // Deadline-bounded planning: the budget is checked at the stage
  // boundaries below, and the sampling passes (the dominant cost) are
  // themselves clock-bounded to the remaining budget. A request that
  // cannot plan in time gets DeadlineExceeded here — before any join
  // work — with the stage it died in.
  const double budget = options.planning_budget_seconds;
  auto CheckBudget = [&](const char* stage) -> Status {
    if (timer.Seconds() < budget) return Status::OK();
    return Status::DeadlineExceeded(std::string("planning budget (") +
                                    std::to_string(budget) +
                                    "s) exhausted during " + stage);
  };
  if (budget <= 0) return Status::DeadlineExceeded("planning budget is zero");

  StatusOr<ghd::Decomposition> decomp = ghd::FindOptimalGhd(q);
  if (!decomp.ok()) return decomp.status();
  ADJ_RETURN_IF_ERROR(CheckBudget("GHD search"));

  // Main sampling pass over the full query: cardinality + beta_raw +
  // the modeled reduced-database shuffle of Sec. IV. Sample under a
  // hypertree-valid order — pinned Leapfrogs inherit the same
  // intermediate-explosion risk as full ones, and valid orders bound
  // it (Sec. III-A).
  query::AttributeOrder sampling_order = AscendingOrder(q);
  {
    std::vector<query::AttributeOrder> valid =
        ghd::ValidAttributeOrders(*decomp, q);
    if (!valid.empty()) sampling_order = valid.front();
  }
  sampling::SamplerOptions sopts;
  sopts.num_samples = options.num_samples;
  sopts.seed = options.seed;
  sopts.per_sample_limits = options.limits;
  sopts.distributed = true;
  sopts.max_total_seconds = budget - timer.Seconds();
  StatusOr<sampling::SampleEstimate> full_est = sampling::SampleCardinality(
      q, *db_, sampling_order, sopts, options.cluster.net,
      options.cluster.num_servers);
  if (full_est.ok()) {
    result.sampling_comm_s = full_est->comm.seconds;
    result.beta_raw = full_est->beta_extensions_per_s;
  }
  ADJ_RETURN_IF_ERROR(CheckBudget("cardinality sampling"));

  EstimationContext ctx(q, *db_, options, timer, budget);
  if (full_est.ok()) {
    // The full-query cardinality is already estimated; seed the
    // sub-query cache so Alg. 2 does not re-sample it.
    ctx.Seed((AtomMask(1) << q.num_atoms()) - 1, full_est->cardinality);
  }

  optimizer::PlanningInputs in;
  in.q = &q;
  in.decomp = &decomp.value();
  in.cluster = options.cluster;
  in.cost_model.net = options.cluster.net;
  in.cost_model.num_servers = options.cluster.num_servers;
  // Calibrate against the largest index this query binds, under the
  // sampling order's key — the artifact the sampling pass above just
  // resolved through the shared cache, so the probe reuses it rather
  // than building anything (the measured rate is memoized per trie).
  ADJ_RETURN_IF_ERROR(CheckBudget("plan-search setup"));
  in.cost_model.beta_precomputed =
      options.beta_precomputed_override > 0
          ? options.beta_precomputed_override
          : optimizer::CalibrateBetaPrecomputed(*db_, q, sampling_order);
  if (options.beta_raw_override > 0) {
    in.cost_model.beta_raw = options.beta_raw_override;
  } else if (result.beta_raw > 1.0) {
    in.cost_model.beta_raw =
        std::min(result.beta_raw, in.cost_model.beta_precomputed);
  }
  for (const query::Atom& atom : q.atoms()) {
    StatusOr<const storage::Relation*> base = db_->Get(atom.relation);
    if (!base.ok()) return base.status();
    in.atom_tuples.push_back((*base)->size());
  }
  in.estimate_bindings = [&](AttrMask attrs) {
    return ctx.JoinSize(AtomsWithin(q, attrs));
  };
  in.estimate_bag_size = [&](int v) {
    return ctx.JoinSize(decomp->bags[size_t(v)].atoms);
  };
  in.estimate_distinct = [&](AttrId a) { return ctx.Distinct(a); };
  StatusOr<sampling::SketchEstimator> sketch =
      sampling::SketchEstimator::Build(q, *db_);
  if (sketch.ok()) {
    in.order_score = [&](const query::AttributeOrder& order) {
      return SketchOrderScore(*sketch, order);
    };
  }

  StatusOr<optimizer::QueryPlan> plan =
      options.use_exhaustive_planner ? optimizer::OptimizeExhaustivePlan(in)
                                     : optimizer::OptimizeAdaptivePlan(in);
  if (!plan.ok()) return plan.status();
  ADJ_RETURN_IF_ERROR(CheckBudget("plan search"));
  result.plan = std::move(plan.value());
  result.explanation = optimizer::ExplainPlan(in, result.plan);
  result.optimize_s = timer.Seconds() + result.sampling_comm_s;
  return result;
}

StatusOr<exec::RunReport> Engine::RunCoOpt(const query::Query& q,
                                           const EngineOptions& options) {
  StatusOr<PlanResult> planned = Plan(q, options);
  if (!planned.ok()) return planned.status();
  StatusOr<exec::RunReport> report = ExecutePlan(q, planned->plan, options);
  if (!report.ok()) return report;
  report->optimize_s = planned->optimize_s;
  return report;
}

StatusOr<ExecutionContext> Engine::PrepareExecution(
    const query::Query& q, const optimizer::QueryPlan& plan,
    const EngineOptions& options, const PrepareReuse* reuse) {
  ExecutionContext ctx;
  ctx.order = plan.order;
  ctx.plan_description = plan.ToString(q);
  // The execution catalog shares the engine catalog's index cache, so
  // binds against aliased bases resolve to the indexes every other
  // consumer of this catalog already built (and vice versa).
  ctx.db.ShareIndexCacheWith(*db_);
  // Delta merges are counted cache-wide at the moment a patch is
  // consumed, which may happen inside bag materialization rather than
  // the pinning binds below — snapshot now so the whole prepare's
  // merge work can be attributed to this context.
  const uint64_t merged_before = db_->index_cache().stats().delta_rows_merged;

  // Build the execution catalog: the base relations the rewritten
  // query still references are aliased — shared, never copied — from
  // the engine's catalog, so preparing (and every later run) is
  // O(query) in base-relation cost.
  exec::RewrittenQuery rewritten =
      exec::RewriteWithBags(q, plan.decomp, plan.precompute);
  for (const query::Atom& atom : rewritten.query.atoms()) {
    if (ctx.db.Contains(atom.relation) ||
        atom.relation.rfind("__bag", 0) == 0) {
      continue;
    }
    StatusOr<std::shared_ptr<const storage::Relation>> base =
        db_->GetShared(atom.relation);
    if (!base.ok()) return base.status();
    ADJ_RETURN_IF_ERROR(ctx.db.PutShared(atom.relation, std::move(*base)));
  }
  ctx.query = std::move(rewritten.query);

  // Materialize the plan's pre-computed bags exactly once; their cost
  // is the context's to hand out (first-run attribution).
  dist::Cluster cluster(options.cluster);
  for (const auto& [name, bag_index] : rewritten.bag_atoms) {
    // Delta-aware reuse: a bag whose source atoms all kept their
    // content since `reuse->prev` was built is the same relation —
    // alias it (and its resident charge) instead of re-materializing.
    // Its one-time cost was charged to the previous context's runs, so
    // nothing is added to this context's precompute bill.
    if (reuse != nullptr && reuse->prev != nullptr &&
        reuse->prev->db.Contains(name)) {
      const ghd::Bag& source = plan.decomp.bags[size_t(bag_index)];
      bool unchanged = true;
      for (int i = 0; i < q.num_atoms(); ++i) {
        if (((source.atoms >> i) & 1) != 0 &&
            reuse->changed.count(q.atom(i).relation) > 0) {
          unchanged = false;
          break;
        }
      }
      if (unchanged) {
        StatusOr<std::shared_ptr<const storage::Relation>> prior =
            reuse->prev->db.GetShared(name);
        if (!prior.ok()) return prior.status();
        ctx.bag_bytes += (*prior)->SizeBytes();
        ADJ_RETURN_IF_ERROR(ctx.db.PutShared(name, std::move(*prior)));
        continue;
      }
    }
    StatusOr<exec::PrecomputeResult> bag = exec::MaterializeBag(
        q, *db_, plan.decomp.bags[size_t(bag_index)], &cluster,
        options.limits);
    if (!bag.ok()) {
      ctx.precompute_status = bag.status();
      return ctx;
    }
    ctx.precompute_s += bag->comm_s + bag->comp_s +
                        options.cluster.net.stage_overhead_s;
    ctx.precompute_comm.Add(bag->comm);
    ctx.bag_bytes += bag->rel.SizeBytes();
    ctx.db.Put(name, std::move(bag->rel));
  }

  // Pin the bound-atom indexes the final join will request (bases and
  // bags alike): they are built now, shared through the cache, and the
  // handles keep them resident for as long as this context lives — no
  // run of this context rebuilds them.
  storage::IndexBuildStats pin_stats;
  StatusOr<std::vector<exec::BoundAtom>> bound =
      exec::BindAtomsForOrder(ctx.query, ctx.db, ctx.order, &pin_stats);
  if (!bound.ok()) return bound.status();
  // Delta patches applied while preparing are the write's amortized
  // index cost — surfaced on the first run, like the bag cost above.
  // The rows-layer merge may be triggered by bag materialization (its
  // binds take no per-call stats), so merge volume comes from the
  // cache-wide counter's delta across this prepare.
  ctx.prepare_index_patched = pin_stats.patched;
  ctx.prepare_delta_rows =
      db_->index_cache().stats().delta_rows_merged - merged_before;
  // Resident accounting dedups by physical payload: labeled binds of
  // one permutation alias a single rows buffer + trie in the cache
  // (e.g. the triangle query's three G bindings), so the footprint is
  // counted once, not per labeling.
  std::set<const void*> counted;
  for (exec::BoundAtom& b : *bound) {
    if (b.index->rel != nullptr &&
        counted.insert(b.index->rel->RowsIdentity()).second) {
      ctx.pinned_index_bytes += b.index->rel->SizeBytes();
    }
    if (b.index->trie != nullptr &&
        counted.insert(b.index->trie.get()).second) {
      // ResidentBytes, not logical values: block-compressed levels pin
      // only their encoded footprint.
      ctx.pinned_index_bytes += b.index->trie->ResidentBytes();
    }
    ctx.pinned_indexes.push_back(std::move(b.index));
  }
  return ctx;
}

StatusOr<exec::RunReport> Engine::RunPrepared(const ExecutionContext& ctx,
                                              const EngineOptions& options) {
  exec::RunReport report;
  report.method = "ADJ";
  report.plan_description = ctx.plan_description;
  if (!ctx.precompute_status.ok()) {
    report.status = ctx.precompute_status;
    return report;
  }

  // Final one-round join of the rewritten query under the plan order.
  dist::Cluster cluster(options.cluster);
  exec::HCubeJParams params;
  params.variant = options.hcube_variant;
  params.limits = options.limits;
  StatusOr<exec::HCubeJOutput> run =
      exec::RunHCubeJ(ctx.query, ctx.db, ctx.order, params, &cluster);
  if (!run.ok()) {
    report.status = run.status();
    return report;
  }
  report.status = run->report.status;
  report.output_count = run->report.output_count;
  report.comm = run->report.comm;
  report.comm_s = run->report.comm_s;
  report.comp_s = run->report.comp_s;
  report.overhead_s += run->report.overhead_s;
  report.tuples_at_level = run->report.tuples_at_level;
  report.extensions = run->report.extensions;
  report.simd_intersections = run->report.simd_intersections;
  report.scalar_fallbacks = run->report.scalar_fallbacks;
  report.compressed_bytes = run->report.compressed_bytes;
  report.blocks_decoded = run->report.blocks_decoded;
  report.index_builds = run->report.index_builds;
  report.index_reused = run->report.index_reused;
  report.index_mmap = run->report.index_mmap;
  report.index_patched = run->report.index_patched;
  report.delta_rows_merged = run->report.delta_rows_merged;
  report.rounds = 1;
  return report;
}

StatusOr<exec::RunReport> Engine::ExecutePlan(const query::Query& q,
                                              const optimizer::QueryPlan& plan,
                                              const EngineOptions& options) {
  StatusOr<ExecutionContext> ctx = PrepareExecution(q, plan, options);
  if (!ctx.ok()) return ctx.status();
  StatusOr<exec::RunReport> report = RunPrepared(*ctx, options);
  if (!report.ok()) return report;
  ctx->ChargePrecompute(&report.value());
  return report;
}

StatusOr<exec::RunReport> Engine::RunCommFirst(const query::Query& q,
                                               const EngineOptions& options,
                                               bool cached) {
  WallTimer timer;
  StatusOr<query::AttributeOrder> order = SelectCommFirstOrder(q);
  if (!order.ok()) return order.status();
  const double optimize_s = timer.Seconds();

  dist::Cluster cluster(options.cluster);
  exec::HCubeJParams params;
  params.variant = options.hcube_variant;
  params.limits = options.limits;
  params.use_cache = cached;
  StatusOr<exec::HCubeJOutput> run =
      exec::RunHCubeJ(q, *db_, *order, params, &cluster);
  if (!run.ok()) return run.status();
  exec::RunReport report = std::move(run->report);
  report.optimize_s = optimize_s;
  report.plan_description =
      "ord=" + query::OrderToString(*order, q) +
      " p=" + run->share_used.ToString();
  return report;
}

StatusOr<exec::RunReport> Engine::Run(const query::Query& q, Strategy s,
                                      const EngineOptions& options) {
  return Run(q, StrategyName(s), options);
}

StatusOr<exec::RunReport> Engine::Run(const query::Query& q,
                                      const std::string& strategy,
                                      const EngineOptions& options) {
  StatusOr<StrategyFn> fn = StrategyRegistry::Global().Find(strategy);
  if (!fn.ok()) return fn.status();
  return (*fn)(*this, q, options);
}

}  // namespace adj::core
