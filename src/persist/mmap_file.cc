#include "persist/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace adj::persist {

StatusOr<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is not a regular file");
  }
  // shared_ptr<MappedFile> with a private constructor: go through a
  // local subclass so make_shared stays usable.
  struct Constructible : MappedFile {};
  auto file = std::make_shared<Constructible>();
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ == 0) {
    ::close(fd);
    return Status::InvalidArgument("snapshot '" + path + "' is empty");
  }
  void* addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr != MAP_FAILED) {
    file->data_ = static_cast<const uint8_t*>(addr);
    file->mapped_ = true;
  } else {
    // Heap fallback: same bytes, no page-cache sharing.
    file->heap_.resize(file->size_);
    size_t off = 0;
    while (off < file->size_) {
      const ssize_t n =
          ::pread(fd, file->heap_.data() + off, file->size_ - off, off);
      if (n <= 0) {
        ::close(fd);
        return Status::Internal("short read of snapshot '" + path +
                                "': " + std::strerror(errno));
      }
      off += static_cast<size_t>(n);
    }
    file->data_ = file->heap_.data();
  }
  ::close(fd);  // the mapping (or heap copy) outlives the descriptor
  return std::shared_ptr<const MappedFile>(std::move(file));
}

MappedFile::~MappedFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

StatusOr<std::span<const uint8_t>> MappedFile::View(uint64_t offset,
                                                    uint64_t length) const {
  if (offset > size_ || length > size_ - offset) {
    return Status::OutOfRange("snapshot segment [" + std::to_string(offset) +
                              ", +" + std::to_string(length) +
                              ") exceeds file size " + std::to_string(size_));
  }
  return std::span<const uint8_t>(data_ + offset, length);
}

}  // namespace adj::persist
