#ifndef ADJ_PERSIST_MMAP_FILE_H_
#define ADJ_PERSIST_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace adj::persist {

/// A read-only file mapped into the address space. The shared_ptr
/// handle doubles as the keepalive every span-viewing structure
/// (Relation::AliasSpan, Trie::FromMapped) holds: the mapping lives
/// exactly as long as something still views it.
///
/// On platforms (or filesystems) where mmap fails, falls back to
/// reading the file into heap memory — callers see identical spans
/// either way, just without the page-cache sharing.
class MappedFile {
 public:
  static StatusOr<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Whether the bytes are an actual mmap (vs the heap fallback).
  bool is_mapped() const { return mapped_; }

  /// Bounds-checked view of [offset, offset+length).
  StatusOr<std::span<const uint8_t>> View(uint64_t offset,
                                          uint64_t length) const;

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> heap_;  // fallback storage when !mapped_
};

}  // namespace adj::persist

#endif  // ADJ_PERSIST_MMAP_FILE_H_
