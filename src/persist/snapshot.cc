#include "persist/snapshot.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "common/hash.h"
#include "storage/codec.h"

namespace adj::persist {

using storage::Relation;
using storage::Schema;
using storage::Trie;

uint64_t Checksum(const uint8_t* data, size_t n) {
  // Mix64-chained over 64-bit words: word speed on the hot path (a
  // snapshot open reads every byte through this once), order- and
  // length-sensitive.
  uint64_t h = Mix64(0x5A4D5348ULL ^ n);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = Mix64(h ^ w);
  }
  if (i < n) {
    uint64_t tail = 0;
    std::memcpy(&tail, data + i, n - i);
    h = Mix64(h ^ tail ^ (uint64_t(n - i) << 56));
  }
  return h;
}

namespace {

// ---------------------------------------------------------------------------
// Varint helpers over the shared storage codec.

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  storage::PutVarint(s.size(), out);
  out->insert(out->end(), s.begin(), s.end());
}

StatusOr<std::string> GetString(const std::vector<uint8_t>& buf, size_t* pos) {
  StatusOr<uint64_t> len = storage::GetVarint(buf, pos);
  if (!len.ok()) return len.status();
  if (*len > buf.size() - *pos) {
    return Status::OutOfRange("snapshot manifest: string overruns buffer");
  }
  std::string s(buf.begin() + *pos, buf.begin() + *pos + *len);
  *pos += *len;
  return s;
}

void PutSchema(const Schema& schema, std::vector<uint8_t>* out) {
  storage::PutVarint(schema.arity(), out);
  for (AttrId a : schema.attrs()) storage::PutVarint(ZigZag(a), out);
}

StatusOr<Schema> GetSchema(const std::vector<uint8_t>& buf, size_t* pos) {
  StatusOr<uint64_t> arity = storage::GetVarint(buf, pos);
  if (!arity.ok()) return arity.status();
  if (*arity > 64) {
    return Status::InvalidArgument("snapshot manifest: implausible arity " +
                                   std::to_string(*arity));
  }
  std::vector<AttrId> attrs;
  attrs.reserve(*arity);
  for (uint64_t i = 0; i < *arity; ++i) {
    StatusOr<uint64_t> a = storage::GetVarint(buf, pos);
    if (!a.ok()) return a.status();
    attrs.push_back(static_cast<AttrId>(UnZigZag(*a)));
  }
  return Schema(std::move(attrs));
}

// ---------------------------------------------------------------------------
// Dictionary codec for (possibly unsorted) catalog relations: sorted
// distinct values as a delta+vbyte run, then every cell as a varint
// dictionary rank. Order-robust, unlike the shared-prefix row codec
// the shuffle uses for sorted blocks.

void DictEncodeRows(std::span<const Value> rows, std::vector<uint8_t>* out) {
  std::vector<Value> dict(rows.begin(), rows.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  storage::EncodeSortedValues(dict, out);
  storage::PutVarint(rows.size(), out);
  for (Value v : rows) {
    const auto it = std::lower_bound(dict.begin(), dict.end(), v);
    storage::PutVarint(static_cast<uint64_t>(it - dict.begin()), out);
  }
}

StatusOr<std::vector<Value>> DictDecodeRows(const std::vector<uint8_t>& buf) {
  size_t pos = 0;
  std::vector<Value> dict;
  ADJ_RETURN_IF_ERROR(storage::DecodeSortedValues(buf, &pos, &dict));
  StatusOr<uint64_t> count = storage::GetVarint(buf, &pos);
  if (!count.ok()) return count.status();
  std::vector<Value> rows;
  rows.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    StatusOr<uint64_t> rank = storage::GetVarint(buf, &pos);
    if (!rank.ok()) return rank.status();
    if (*rank >= dict.size()) {
      return Status::OutOfRange("dictionary rank out of range");
    }
    rows.push_back(dict[*rank]);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Little-endian fixed-width IO for header/footer.

void PutFixed32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}
void PutFixed64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}
uint32_t GetFixed32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}
uint64_t GetFixed64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

template <typename T>
std::span<const uint8_t> BytesOf(std::span<const T> xs) {
  return {reinterpret_cast<const uint8_t*>(xs.data()), xs.size_bytes()};
}

// ---------------------------------------------------------------------------
// Streaming segment writer: data segments at 64-byte alignment, TOC
// and footer at the end, all through one temp file.

class FileBuilder {
 public:
  explicit FileBuilder(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void WriteRaw(std::span<const uint8_t> bytes) {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    offset_ += bytes.size();
  }

  /// Appends one segment (padded to alignment first) and returns its
  /// TOC index.
  uint32_t AddSegment(SegmentKind kind, std::span<const uint8_t> bytes) {
    static const std::array<uint8_t, kSegmentAlign> zeros = {};
    const uint64_t pad = (kSegmentAlign - offset_ % kSegmentAlign) %
                         kSegmentAlign;
    if (pad > 0) WriteRaw(std::span<const uint8_t>(zeros.data(), pad));
    SegmentInfo info;
    info.kind = kind;
    info.offset = offset_;
    info.size = bytes.size();
    info.checksum = Checksum(bytes.data(), bytes.size());
    WriteRaw(bytes);
    toc_.push_back(info);
    return static_cast<uint32_t>(toc_.size() - 1);
  }

  const std::vector<SegmentInfo>& toc() const { return toc_; }
  uint64_t offset() const { return offset_; }

  Status Finish(uint32_t manifest_segment) {
    std::vector<uint8_t> toc_bytes;
    storage::PutVarint(toc_.size(), &toc_bytes);
    for (const SegmentInfo& s : toc_) {
      toc_bytes.push_back(static_cast<uint8_t>(s.kind));
      storage::PutVarint(s.offset, &toc_bytes);
      storage::PutVarint(s.size, &toc_bytes);
      PutFixed64(s.checksum, &toc_bytes);
    }
    const uint64_t toc_offset = offset_;
    const uint64_t toc_checksum = Checksum(toc_bytes.data(), toc_bytes.size());
    WriteRaw(toc_bytes);
    std::vector<uint8_t> footer;
    PutFixed64(toc_offset, &footer);
    PutFixed64(toc_bytes.size(), &footer);
    PutFixed64(toc_checksum, &footer);
    PutFixed32(manifest_segment, &footer);
    PutFixed32(0, &footer);  // pad: magic sits at footer+32
    footer.insert(footer.end(), kFooterMagic, kFooterMagic + 8);
    WriteRaw(footer);
    out_.flush();
    if (!out_.good()) return Status::Internal("snapshot write failed");
    out_.close();
    return Status::OK();
  }

 private:
  std::ofstream out_;
  uint64_t offset_ = 0;
  std::vector<SegmentInfo> toc_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Writer

StatusOr<WriteStats> SnapshotWriter::Write(const storage::Catalog& catalog,
                                           const std::string& path) {
  return Write(catalog, path, {});
}

StatusOr<WriteStats> SnapshotWriter::Write(const storage::Catalog& catalog,
                                           const std::string& path,
                                           const WriteOptions& options) {
  if (options.version < kMinVersion || options.version > kVersion) {
    return Status::InvalidArgument("unsupported snapshot write version " +
                                   std::to_string(options.version));
  }
  const bool v3 = options.version >= 3;
  WriteStats stats;
  const std::string tmp = path + ".tmp";
  FileBuilder builder(tmp);
  if (!builder.ok()) {
    return Status::InvalidArgument("cannot create snapshot file '" + tmp +
                                   "'");
  }

  // Header.
  {
    std::vector<uint8_t> header(kMagic, kMagic + 8);
    PutFixed32(options.version, &header);
    // Written in *native* byte order on purpose: a reader on the other
    // endianness sees the byte-swapped tag and refuses, because every
    // raw array segment is native-order too.
    const uint8_t* tag = reinterpret_cast<const uint8_t*>(&kEndianTag);
    header.insert(header.end(), tag, tag + 4);
    PutFixed32(sizeof(Value), &header);
    header.resize(kHeaderSize, 0);
    builder.WriteRaw(header);
  }

  // Distinct physical relations — each entry's base and effective
  // (same pointer until the first write) — then the per-name entry
  // states over them.
  std::vector<std::string> names = catalog.Names();
  std::map<const Relation*, uint32_t> phys_index;
  std::vector<std::shared_ptr<const Relation>> phys;
  struct NamedEntry {
    std::string name;
    storage::Catalog::EntryState state;
  };
  std::vector<NamedEntry> entries;
  auto intern = [&](const std::shared_ptr<const Relation>& rel) {
    auto [it, inserted] =
        phys_index.emplace(rel.get(), static_cast<uint32_t>(phys.size()));
    if (inserted) phys.push_back(rel);
    return it->second;
  };
  for (const std::string& name : names) {
    StatusOr<storage::Catalog::EntryState> state = catalog.Inspect(name);
    if (!state.ok()) return state.status();
    intern(state->base);
    intern(state->effective);
    entries.push_back({name, std::move(*state)});
  }

  std::vector<uint8_t> manifest;
  storage::PutVarint(phys.size(), &manifest);
  for (const auto& rel : phys) {
    PutSchema(rel->schema(), &manifest);
    storage::PutVarint(rel->size(), &manifest);
    const uint32_t rows_seg =
        builder.AddSegment(SegmentKind::kRelationRows, BytesOf(rel->raw()));
    stats.raw_bytes += rel->SizeBytes();
    std::vector<uint8_t> dict;
    DictEncodeRows(rel->raw(), &dict);
    const uint32_t dict_seg =
        builder.AddSegment(SegmentKind::kRelationDict, dict);
    stats.compressed_bytes += dict.size();
    storage::PutVarint(rows_seg, &manifest);
    storage::PutVarint(uint64_t{dict_seg} + 1, &manifest);
    ++stats.relations;
  }
  // Per-name entry state: base + effective physical indexes, version,
  // and the pending delta chain with its rows inline — chains are
  // bounded by the compaction threshold, so this stays a small varint
  // run inside the (checksummed) manifest rather than aligned
  // segments.
  storage::PutVarint(entries.size(), &manifest);
  for (const NamedEntry& e : entries) {
    PutString(e.name, &manifest);
    storage::PutVarint(phys_index.at(e.state.base.get()), &manifest);
    storage::PutVarint(phys_index.at(e.state.effective.get()), &manifest);
    storage::PutVarint(e.state.version, &manifest);
    storage::PutVarint(e.state.deltas.size(), &manifest);
    for (const auto& delta : e.state.deltas) {
      for (const Relation* side : {&delta->inserts, &delta->deletes}) {
        storage::PutVarint(side->size(), &manifest);
        for (Value v : side->raw()) storage::PutVarint(v, &manifest);
        stats.delta_rows += side->size();
      }
      ++stats.delta_batches;
    }
    ++stats.names;
  }

  // Resident permuted-index payloads whose base is a catalog relation
  // (the cache may also hold indexes over execution-catalog bags and
  // shuffle shards; those are derived state, rebuilt on demand).
  // Ascending LRU order, so restore re-creates the same hotness order.
  std::vector<storage::IndexCache::ExportedPayload> payloads =
      catalog.index_cache().ExportPermutedIndexes();
  std::erase_if(payloads, [&](const auto& p) {
    return phys_index.find(static_cast<const Relation*>(p.identity)) ==
           phys_index.end();
  });
  std::sort(payloads.begin(), payloads.end(),
            [](const auto& a, const auto& b) { return a.lru_tick < b.lru_tick; });
  storage::PutVarint(payloads.size(), &manifest);
  for (const auto& p : payloads) {
    storage::PutVarint(
        phys_index.at(static_cast<const Relation*>(p.identity)), &manifest);
    storage::PutVarint(p.perm.size(), &manifest);
    for (int x : p.perm) storage::PutVarint(ZigZag(x), &manifest);
    storage::PutVarint(p.rows->size(), &manifest);
    const uint32_t rows_seg =
        builder.AddSegment(SegmentKind::kPayloadRows, BytesOf(p.rows->raw()));
    stats.raw_bytes += p.rows->SizeBytes();
    const std::vector<uint8_t> block = storage::EncodeRelationBlock(*p.rows);
    const uint32_t block_seg =
        builder.AddSegment(SegmentKind::kPayloadBlock, block);
    stats.compressed_bytes += block.size();
    storage::PutVarint(rows_seg, &manifest);
    storage::PutVarint(uint64_t{block_seg} + 1, &manifest);
    storage::PutVarint(p.trie != nullptr ? 1 : 0, &manifest);
    if (p.trie != nullptr) {
      const Trie& t = *p.trie;
      // The v2 layout stores raw level arrays (plus a mirror), which a
      // block-compressed trie does not have — re-materialize a raw
      // trie from the payload rows (deterministic: same CSR arrays).
      Trie rebuilt;
      const Trie* raw_trie = &t;
      if (!v3 && t.any_compressed()) {
        rebuilt = Trie::Build(*p.rows);
        raw_trie = &rebuilt;
      }
      for (int l = 0; l < t.arity(); ++l) {
        std::span<const uint32_t> kids = t.ChildBeginSpan(l);
        storage::PutVarint(t.LevelSize(l), &manifest);
        if (v3) {
          storage::PutVarint(t.level_compressed(l) ? 1 : 0, &manifest);
        }
        if (v3 && t.level_compressed(l)) {
          // v3: the blockcodec arrays are the stored form — mapped in
          // place on open, no raw copy, no mirror.
          const storage::blockcodec::CompressedLevelView cv =
              t.CompressedView(l);
          const uint32_t mseg = builder.AddSegment(
              SegmentKind::kTrieLevelMins, BytesOf(cv.mins));
          const uint32_t sseg = builder.AddSegment(
              SegmentKind::kTrieLevelStarts, BytesOf(cv.starts));
          const uint32_t bseg =
              builder.AddSegment(SegmentKind::kTrieLevelBytes, cv.bytes);
          storage::PutVarint(mseg, &manifest);
          storage::PutVarint(sseg, &manifest);
          storage::PutVarint(bseg, &manifest);
          stats.raw_bytes += cv.mins.size_bytes() + cv.starts.size_bytes() +
                             cv.bytes.size();
          ++stats.compressed_levels;
        } else {
          std::span<const Value> vals = raw_trie->LevelSpan(l);
          const uint32_t vseg =
              builder.AddSegment(SegmentKind::kTrieValues, BytesOf(vals));
          storage::PutVarint(vseg, &manifest);
          stats.raw_bytes += vals.size_bytes();
        }
        if (l + 1 < t.arity()) {
          const uint32_t cseg =
              builder.AddSegment(SegmentKind::kTrieChild, BytesOf(kids));
          storage::PutVarint(uint64_t{cseg} + 1, &manifest);
          stats.raw_bytes += kids.size_bytes();
        } else {
          storage::PutVarint(0, &manifest);
        }
      }
      if (!v3) {
        const std::vector<uint8_t> tblock =
            storage::EncodeTrieBlock(*raw_trie);
        const uint32_t tseg =
            builder.AddSegment(SegmentKind::kTrieBlock, tblock);
        stats.compressed_bytes += tblock.size();
        storage::PutVarint(uint64_t{tseg} + 1, &manifest);
      }
      ++stats.tries;
    }
    storage::PutVarint(p.bindings.size(), &manifest);
    for (const auto& b : p.bindings) {
      storage::PutVarint(b.with_trie ? 1 : 0, &manifest);
      PutSchema(b.schema, &manifest);
      ++stats.bindings;
    }
    ++stats.payloads;
  }

  const uint32_t manifest_seg =
      builder.AddSegment(SegmentKind::kManifest, manifest);
  ADJ_RETURN_IF_ERROR(builder.Finish(manifest_seg));
  if (!builder.ok()) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot move snapshot into place at '" + path +
                            "'");
  }
  stats.file_bytes = builder.offset();
  return stats;
}

// ---------------------------------------------------------------------------
// Reader

StatusOr<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  SnapshotReader reader;
  StatusOr<std::shared_ptr<const MappedFile>> file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  reader.file_ = std::move(*file);
  const MappedFile& f = *reader.file_;

  if (f.size() < kHeaderSize + kFooterSize) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' truncated: smaller than header+footer");
  }
  // Header checks, most-specific first: magic, endianness, version,
  // value width.
  if (std::memcmp(f.data(), kMagic, 8) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a snapshot (magic)");
  }
  const uint32_t version = GetFixed32(f.data() + 8);
  uint32_t endian_tag;
  std::memcpy(&endian_tag, f.data() + 12, 4);
  if (endian_tag != kEndianTag) {
    return Status::InvalidArgument(
        "snapshot '" + path +
        "' was written on a platform with different endianness");
  }
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' has format version " +
        std::to_string(version) + "; this build reads versions " +
        std::to_string(kMinVersion) + ".." + std::to_string(kVersion));
  }
  reader.version_ = version;
  const uint32_t value_size = GetFixed32(f.data() + 16);
  if (value_size != sizeof(Value)) {
    return Status::InvalidArgument("snapshot '" + path + "' stores " +
                                   std::to_string(value_size) +
                                   "-byte values; this build uses " +
                                   std::to_string(sizeof(Value)));
  }

  // Footer -> TOC.
  const uint8_t* footer = f.data() + f.size() - kFooterSize;
  if (std::memcmp(footer + 32, kFooterMagic, 8) != 0) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' truncated: footer magic missing");
  }
  const uint64_t toc_offset = GetFixed64(footer);
  const uint64_t toc_size = GetFixed64(footer + 8);
  const uint64_t toc_checksum = GetFixed64(footer + 16);
  const uint32_t manifest_seg = GetFixed32(footer + 24);
  StatusOr<std::span<const uint8_t>> toc_bytes = f.View(toc_offset, toc_size);
  if (!toc_bytes.ok()) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' truncated: TOC out of bounds");
  }
  if (Checksum(toc_bytes->data(), toc_bytes->size()) != toc_checksum) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': TOC checksum mismatch");
  }
  {
    const std::vector<uint8_t> buf(toc_bytes->begin(), toc_bytes->end());
    size_t pos = 0;
    StatusOr<uint64_t> count = storage::GetVarint(buf, &pos);
    if (!count.ok()) return count.status();
    reader.segments_.reserve(*count);
    for (uint64_t i = 0; i < *count; ++i) {
      if (pos >= buf.size()) {
        return Status::OutOfRange("snapshot TOC truncated");
      }
      SegmentInfo info;
      info.kind = static_cast<SegmentKind>(buf[pos++]);
      StatusOr<uint64_t> off = storage::GetVarint(buf, &pos);
      if (!off.ok()) return off.status();
      StatusOr<uint64_t> size = storage::GetVarint(buf, &pos);
      if (!size.ok()) return size.status();
      if (pos + 8 > buf.size()) {
        return Status::OutOfRange("snapshot TOC truncated");
      }
      info.offset = *off;
      info.size = *size;
      info.checksum = GetFixed64(buf.data() + pos);
      pos += 8;
      // Bounds once, here: everything downstream trusts these.
      if (!f.View(info.offset, info.size).ok()) {
        return Status::InvalidArgument(
            "snapshot segment " + std::to_string(i) + " out of bounds");
      }
      reader.segments_.push_back(info);
    }
  }
  if (manifest_seg >= reader.segments_.size()) {
    return Status::InvalidArgument("snapshot manifest segment out of range");
  }

  // Manifest parse (checksum-guarded: a flipped manifest byte must not
  // turn into a wild segment reference).
  const SegmentInfo& m = reader.segments_[manifest_seg];
  StatusOr<std::span<const uint8_t>> mbytes = f.View(m.offset, m.size);
  if (!mbytes.ok()) return mbytes.status();
  if (Checksum(mbytes->data(), mbytes->size()) != m.checksum) {
    return Status::InvalidArgument("snapshot manifest checksum mismatch");
  }
  const std::vector<uint8_t> buf(mbytes->begin(), mbytes->end());
  size_t pos = 0;
  const uint64_t num_segments = reader.segments_.size();
  auto get = [&](const char* what) -> StatusOr<uint64_t> {
    StatusOr<uint64_t> v = storage::GetVarint(buf, &pos);
    if (!v.ok()) {
      return Status::OutOfRange(std::string("snapshot manifest truncated at ") +
                                what);
    }
    return v;
  };
  auto get_seg = [&](const char* what) -> StatusOr<uint64_t> {
    StatusOr<uint64_t> v = get(what);
    if (!v.ok()) return v.status();
    if (*v >= num_segments) {
      return Status::InvalidArgument(
          std::string("snapshot manifest: segment reference out of range (") +
          what + ")");
    }
    return v;
  };

  StatusOr<uint64_t> num_phys = get("relation count");
  if (!num_phys.ok()) return num_phys.status();
  for (uint64_t i = 0; i < *num_phys; ++i) {
    PhysRel rel;
    StatusOr<Schema> schema = GetSchema(buf, &pos);
    if (!schema.ok()) return schema.status();
    rel.schema = std::move(*schema);
    StatusOr<uint64_t> rows = get("relation rows");
    if (!rows.ok()) return rows.status();
    rel.row_count = *rows;
    StatusOr<uint64_t> seg = get_seg("relation rows segment");
    if (!seg.ok()) return seg.status();
    rel.rows_seg = static_cast<uint32_t>(*seg);
    StatusOr<uint64_t> dict = get("relation dict segment");
    if (!dict.ok()) return dict.status();
    if (*dict != 0) {
      if (*dict - 1 >= num_segments) {
        return Status::InvalidArgument(
            "snapshot manifest: dict segment out of range");
      }
      rel.dict_seg = static_cast<int64_t>(*dict - 1);
    }
    const uint64_t expect =
        rel.row_count * uint64_t(rel.schema.arity()) * sizeof(Value);
    if (reader.segments_[rel.rows_seg].size != expect) {
      return Status::InvalidArgument(
          "snapshot relation " + std::to_string(i) +
          ": segment size disagrees with row count");
    }
    reader.relations_.push_back(std::move(rel));
  }

  StatusOr<uint64_t> num_names = get("name count");
  if (!num_names.ok()) return num_names.status();
  for (uint64_t i = 0; i < *num_names; ++i) {
    NameEntry entry;
    StatusOr<std::string> name = GetString(buf, &pos);
    if (!name.ok()) return name.status();
    entry.name = std::move(*name);
    for (auto [field, what] : {std::pair<uint32_t*, const char*>(
                                   &entry.base, "name base relation"),
                               {&entry.effective, "name effective relation"}}) {
      StatusOr<uint64_t> index = get(what);
      if (!index.ok()) return index.status();
      if (*index >= reader.relations_.size()) {
        return Status::InvalidArgument(
            "snapshot manifest: name '" + entry.name + "' references " +
            what + " " + std::to_string(*index) + " of " +
            std::to_string(reader.relations_.size()));
      }
      *field = static_cast<uint32_t>(*index);
    }
    const int arity = reader.relations_[entry.base].schema.arity();
    if (reader.relations_[entry.effective].schema.arity() != arity) {
      return Status::InvalidArgument(
          "snapshot manifest: name '" + entry.name +
          "' base/effective arity mismatch");
    }
    StatusOr<uint64_t> version = get("name version");
    if (!version.ok()) return version.status();
    entry.version = *version;
    StatusOr<uint64_t> num_deltas = get("delta count");
    if (!num_deltas.ok()) return num_deltas.status();
    for (uint64_t d = 0; d < *num_deltas; ++d) {
      DeltaRows delta;
      for (std::vector<Value>* side : {&delta.inserts, &delta.deletes}) {
        StatusOr<uint64_t> rows = get("delta row count");
        if (!rows.ok()) return rows.status();
        // Each row is `arity` varints; a lying count runs out of
        // manifest bytes below rather than allocating wild.
        side->reserve(std::min<uint64_t>(*rows * arity, buf.size() - pos));
        for (uint64_t r = 0; r < *rows * uint64_t(arity); ++r) {
          StatusOr<uint64_t> v = get("delta row value");
          if (!v.ok()) return v.status();
          side->push_back(static_cast<Value>(*v));
        }
      }
      entry.deltas.push_back(std::move(delta));
    }
    reader.names_.push_back(std::move(entry));
  }

  StatusOr<uint64_t> num_payloads = get("payload count");
  if (!num_payloads.ok()) return num_payloads.status();
  for (uint64_t i = 0; i < *num_payloads; ++i) {
    Payload p;
    StatusOr<uint64_t> phys = get("payload base");
    if (!phys.ok()) return phys.status();
    if (*phys >= reader.relations_.size()) {
      return Status::InvalidArgument(
          "snapshot payload references missing relation");
    }
    p.phys = static_cast<uint32_t>(*phys);
    const int arity = reader.relations_[p.phys].schema.arity();
    StatusOr<uint64_t> perm_len = get("perm length");
    if (!perm_len.ok()) return perm_len.status();
    if (static_cast<int>(*perm_len) != arity) {
      return Status::InvalidArgument(
          "snapshot payload permutation arity mismatch");
    }
    for (uint64_t j = 0; j < *perm_len; ++j) {
      StatusOr<uint64_t> x = get("perm entry");
      if (!x.ok()) return x.status();
      const int64_t v = UnZigZag(*x);
      if (v < 0 || v >= arity) {
        return Status::InvalidArgument(
            "snapshot payload permutation entry out of range");
      }
      p.perm.push_back(static_cast<int>(v));
    }
    StatusOr<uint64_t> rows = get("payload rows");
    if (!rows.ok()) return rows.status();
    p.row_count = *rows;
    StatusOr<uint64_t> seg = get_seg("payload rows segment");
    if (!seg.ok()) return seg.status();
    p.rows_seg = static_cast<uint32_t>(*seg);
    if (reader.segments_[p.rows_seg].size !=
        p.row_count * uint64_t(arity) * sizeof(Value)) {
      return Status::InvalidArgument(
          "snapshot payload segment size disagrees with row count");
    }
    StatusOr<uint64_t> block = get("payload block segment");
    if (!block.ok()) return block.status();
    if (*block != 0) {
      if (*block - 1 >= num_segments) {
        return Status::InvalidArgument(
            "snapshot manifest: block segment out of range");
      }
      p.block_seg = static_cast<int64_t>(*block - 1);
    }
    StatusOr<uint64_t> has_trie = get("trie flag");
    if (!has_trie.ok()) return has_trie.status();
    p.has_trie = *has_trie != 0;
    if (p.has_trie) {
      for (int l = 0; l < arity; ++l) {
        TrieLevelRef level;
        StatusOr<uint64_t> count = get("trie level count");
        if (!count.ok()) return count.status();
        level.values_count = *count;
        if (reader.version_ >= 3) {
          StatusOr<uint64_t> flag = get("trie level compressed flag");
          if (!flag.ok()) return flag.status();
          level.compressed = *flag != 0;
        }
        if (level.compressed) {
          StatusOr<uint64_t> mseg = get_seg("trie mins segment");
          if (!mseg.ok()) return mseg.status();
          StatusOr<uint64_t> sseg = get_seg("trie starts segment");
          if (!sseg.ok()) return sseg.status();
          StatusOr<uint64_t> bseg = get_seg("trie bytes segment");
          if (!bseg.ok()) return bseg.status();
          level.mins_seg = static_cast<int64_t>(*mseg);
          level.starts_seg = static_cast<int64_t>(*sseg);
          level.bytes_seg = static_cast<int64_t>(*bseg);
          // Skip-table sizes follow from the value count; the payload
          // structure itself is validated by Trie::FromMapped.
          const uint64_t blocks =
              (level.values_count + storage::blockcodec::kBlockValues - 1) /
              storage::blockcodec::kBlockValues;
          if (reader.segments_[*mseg].size != blocks * sizeof(Value) ||
              reader.segments_[*sseg].size !=
                  (blocks + 1) * sizeof(uint32_t)) {
            return Status::InvalidArgument(
                "snapshot compressed trie level skip table size disagrees "
                "with value count");
          }
        } else {
          StatusOr<uint64_t> vseg = get_seg("trie values segment");
          if (!vseg.ok()) return vseg.status();
          level.values_seg = static_cast<uint32_t>(*vseg);
          if (reader.segments_[level.values_seg].size !=
              level.values_count * sizeof(Value)) {
            return Status::InvalidArgument(
                "snapshot trie level size disagrees with value count");
          }
        }
        StatusOr<uint64_t> cseg = get("trie child segment");
        if (!cseg.ok()) return cseg.status();
        if (*cseg != 0) {
          if (*cseg - 1 >= num_segments) {
            return Status::InvalidArgument(
                "snapshot manifest: child segment out of range");
          }
          level.child_seg = static_cast<int64_t>(*cseg - 1);
        }
        const bool deepest = l + 1 == arity;
        if (deepest != (level.child_seg < 0)) {
          return Status::InvalidArgument(
              "snapshot trie child arrays malformed");
        }
        p.levels.push_back(level);
      }
      if (reader.version_ < 3) {
        StatusOr<uint64_t> tseg = get("trie block segment");
        if (!tseg.ok()) return tseg.status();
        if (*tseg != 0) {
          if (*tseg - 1 >= num_segments) {
            return Status::InvalidArgument(
                "snapshot manifest: trie block segment out of range");
          }
          p.trie_block_seg = static_cast<int64_t>(*tseg - 1);
        }
      }
    }
    StatusOr<uint64_t> num_bindings = get("binding count");
    if (!num_bindings.ok()) return num_bindings.status();
    for (uint64_t j = 0; j < *num_bindings; ++j) {
      StatusOr<uint64_t> with_trie = get("binding kind");
      if (!with_trie.ok()) return with_trie.status();
      StatusOr<Schema> schema = GetSchema(buf, &pos);
      if (!schema.ok()) return schema.status();
      if (schema->arity() != arity) {
        return Status::InvalidArgument(
            "snapshot binding schema arity mismatch");
      }
      p.bindings.push_back(storage::IndexCache::Binding{
          std::move(*schema), *with_trie != 0});
    }
    reader.payloads_.push_back(std::move(p));
  }
  return reader;
}

StatusOr<std::span<const uint8_t>> SnapshotReader::SegmentBytes(
    uint64_t index) const {
  const SegmentInfo& s = segments_[index];
  return file_->View(s.offset, s.size);
}

StatusOr<std::span<const Value>> SnapshotReader::SegmentValues(
    uint64_t index) const {
  StatusOr<std::span<const uint8_t>> bytes = SegmentBytes(index);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() % sizeof(Value) != 0) {
    return Status::InvalidArgument("snapshot value segment misaligned");
  }
  return std::span<const Value>(
      reinterpret_cast<const Value*>(bytes->data()),
      bytes->size() / sizeof(Value));
}

StatusOr<std::span<const uint32_t>> SnapshotReader::SegmentOffsets(
    uint64_t index) const {
  StatusOr<std::span<const uint8_t>> bytes = SegmentBytes(index);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() % sizeof(uint32_t) != 0) {
    return Status::InvalidArgument("snapshot offset segment misaligned");
  }
  return std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(bytes->data()),
      bytes->size() / sizeof(uint32_t));
}

StatusOr<std::vector<Trie::MappedLevel>> SnapshotReader::TrieLevels(
    const Payload& p, uint64_t* mapped_bytes) const {
  std::vector<Trie::MappedLevel> levels;
  levels.reserve(p.levels.size());
  uint64_t bytes = 0;
  for (const TrieLevelRef& ref : p.levels) {
    Trie::MappedLevel level;
    if (ref.compressed) {
      level.compressed = true;
      level.num_values = ref.values_count;
      StatusOr<std::span<const Value>> mins = SegmentValues(ref.mins_seg);
      if (!mins.ok()) return mins.status();
      StatusOr<std::span<const uint32_t>> starts =
          SegmentOffsets(ref.starts_seg);
      if (!starts.ok()) return starts.status();
      StatusOr<std::span<const uint8_t>> payload = SegmentBytes(ref.bytes_seg);
      if (!payload.ok()) return payload.status();
      level.block_mins = *mins;
      level.block_starts = *starts;
      level.block_bytes = *payload;
      bytes += mins->size_bytes() + starts->size_bytes() + payload->size();
    } else {
      StatusOr<std::span<const Value>> vals = SegmentValues(ref.values_seg);
      if (!vals.ok()) return vals.status();
      level.values = *vals;
      bytes += vals->size_bytes();
    }
    if (ref.child_seg >= 0) {
      StatusOr<std::span<const uint32_t>> kids = SegmentOffsets(ref.child_seg);
      if (!kids.ok()) return kids.status();
      level.child_begin = *kids;
      bytes += kids->size_bytes();
    }
    levels.push_back(level);
  }
  if (mapped_bytes != nullptr) *mapped_bytes += bytes;
  return levels;
}

Status SnapshotReader::VerifyChecksums() const {
  for (size_t i = 0; i < segments_.size(); ++i) {
    StatusOr<std::span<const uint8_t>> bytes = SegmentBytes(i);
    if (!bytes.ok()) return bytes.status();
    if (Checksum(bytes->data(), bytes->size()) != segments_[i].checksum) {
      return Status::InvalidArgument("snapshot segment " + std::to_string(i) +
                                     " checksum mismatch");
    }
  }
  return Status::OK();
}

namespace {

Status CompareValues(std::span<const Value> got, std::span<const Value> want,
                     const std::string& what) {
  if (got.size() != want.size() ||
      !std::equal(got.begin(), got.end(), want.begin())) {
    return Status::InvalidArgument("snapshot mirror disagrees with raw " +
                                   what);
  }
  return Status::OK();
}

/// Placeholder attribute labeling for decoding compressed mirrors —
/// the codecs only consult arity.
Schema AnonSchema(int arity) {
  std::vector<AttrId> attrs(arity);
  for (int i = 0; i < arity; ++i) attrs[i] = i;
  return Schema(std::move(attrs));
}

}  // namespace

Status SnapshotReader::Verify() const {
  ADJ_RETURN_IF_ERROR(VerifyChecksums());
  for (size_t i = 0; i < relations_.size(); ++i) {
    const PhysRel& rel = relations_[i];
    if (rel.dict_seg < 0) continue;
    StatusOr<std::span<const Value>> raw = SegmentValues(rel.rows_seg);
    if (!raw.ok()) return raw.status();
    StatusOr<std::span<const uint8_t>> comp = SegmentBytes(rel.dict_seg);
    if (!comp.ok()) return comp.status();
    StatusOr<std::vector<Value>> decoded =
        DictDecodeRows(std::vector<uint8_t>(comp->begin(), comp->end()));
    if (!decoded.ok()) return decoded.status();
    ADJ_RETURN_IF_ERROR(CompareValues(
        *decoded, *raw, "relation " + std::to_string(i) + " rows"));
  }
  for (size_t i = 0; i < payloads_.size(); ++i) {
    const Payload& p = payloads_[i];
    StatusOr<std::span<const Value>> raw = SegmentValues(p.rows_seg);
    if (!raw.ok()) return raw.status();
    const Schema schema = AnonSchema(static_cast<int>(p.perm.size()));
    if (p.block_seg >= 0) {
      StatusOr<std::span<const uint8_t>> comp = SegmentBytes(p.block_seg);
      if (!comp.ok()) return comp.status();
      StatusOr<Relation> decoded = storage::DecodeRelationBlock(
          std::vector<uint8_t>(comp->begin(), comp->end()), schema);
      if (!decoded.ok()) return decoded.status();
      ADJ_RETURN_IF_ERROR(CompareValues(
          decoded->raw(), *raw, "payload " + std::to_string(i) + " rows"));
    }
    if (p.trie_block_seg >= 0) {
      StatusOr<std::span<const uint8_t>> comp = SegmentBytes(p.trie_block_seg);
      if (!comp.ok()) return comp.status();
      // v2: the trie mirror decodes back to the tuple set it indexes;
      // the raw payload rows are exactly that set, so this
      // cross-checks trie levels against rows in one comparison.
      StatusOr<Relation> decoded = storage::DecodeTrieBlockToRelation(
          std::vector<uint8_t>(comp->begin(), comp->end()), schema);
      if (!decoded.ok()) return decoded.status();
      ADJ_RETURN_IF_ERROR(CompareValues(
          decoded->raw(), *raw, "payload " + std::to_string(i) + " trie"));
    }
    if (version_ >= 3 && p.has_trie) {
      // v3 has no trie mirror: the stored levels ARE the execution
      // format. FromMapped runs the full structural validation —
      // block skip tables, payload decodability, CSR shape, sorted
      // sibling runs — against the mapped segments.
      StatusOr<std::vector<Trie::MappedLevel>> levels =
          TrieLevels(p, nullptr);
      if (!levels.ok()) return levels.status();
      StatusOr<Trie> mapped = Trie::FromMapped(std::move(*levels), file_);
      if (!mapped.ok()) return mapped.status();
      if (mapped->NumTuples() != raw->size() / p.perm.size()) {
        return Status::InvalidArgument(
            "snapshot trie " + std::to_string(i) +
            " tuple count disagrees with payload rows");
      }
    }
  }
  return Status::OK();
}

StatusOr<SnapshotReader::LoadStats> SnapshotReader::LoadInto(
    storage::Catalog* catalog) const {
  if (catalog == nullptr) {
    return Status::InvalidArgument("LoadInto needs a catalog");
  }
  LoadStats stats;

  // Phase 1 — construct and validate everything without touching the
  // catalog, so a corrupt snapshot leaves it exactly as it was.
  // Physical relations alias the mapped file directly; the MappedFile
  // handle rides along as each relation's keepalive.
  std::vector<std::shared_ptr<const Relation>> phys;
  phys.reserve(relations_.size());
  for (const PhysRel& rel : relations_) {
    StatusOr<std::span<const Value>> rows = SegmentValues(rel.rows_seg);
    if (!rows.ok()) return rows.status();
    phys.push_back(std::make_shared<const Relation>(
        Relation::AliasSpan(rel.schema, *rows, file_)));
    stats.mapped_bytes += rows->size_bytes();
    ++stats.relations;
  }
  // Entry states: mapped base/effective plus the heap-resident delta
  // chain. The merge kernels assume sorted-unique delta sides; check
  // at the trust boundary.
  std::vector<storage::Catalog::EntryState> states;
  states.reserve(names_.size());
  for (const NameEntry& n : names_) {
    storage::Catalog::EntryState state;
    state.base = phys[n.base];
    state.effective = phys[n.effective];
    state.version = n.version;
    const Schema& schema = relations_[n.base].schema;
    for (const DeltaRows& d : n.deltas) {
      auto batch = std::make_shared<storage::DeltaBatch>();
      batch->inserts = Relation(schema);
      batch->inserts.mutable_raw() = d.inserts;
      batch->deletes = Relation(schema);
      batch->deletes.mutable_raw() = d.deletes;
      if (!batch->inserts.IsSortedUnique() ||
          !batch->deletes.IsSortedUnique()) {
        return Status::InvalidArgument("snapshot delta batch for '" + n.name +
                                       "' is not sorted-unique");
      }
      state.deltas.push_back(std::move(batch));
    }
    states.push_back(std::move(state));
  }
  struct Restored {
    std::shared_ptr<const Relation> canon;
    std::shared_ptr<const Trie> trie;
  };
  std::vector<Restored> restored;
  restored.reserve(payloads_.size());
  for (const Payload& p : payloads_) {
    Restored r;
    StatusOr<std::span<const Value>> rows = SegmentValues(p.rows_seg);
    if (!rows.ok()) return rows.status();
    r.canon = std::make_shared<const Relation>(
        Relation::AliasSpan(phys[p.phys]->schema(), *rows, file_));
    // The join kernels' galloping seeks assume sorted-unique rows:
    // check once at the trust boundary rather than crashing later.
    if (!r.canon->IsSortedUnique()) {
      return Status::InvalidArgument(
          "snapshot payload rows are not sorted-unique");
    }
    stats.mapped_bytes += rows->size_bytes();
    if (p.has_trie) {
      StatusOr<std::vector<Trie::MappedLevel>> levels =
          TrieLevels(p, &stats.mapped_bytes);
      if (!levels.ok()) return levels.status();
      StatusOr<Trie> mapped = Trie::FromMapped(std::move(*levels), file_);
      if (!mapped.ok()) return mapped.status();
      if (mapped->NumTuples() != r.canon->size()) {
        return Status::InvalidArgument(
            "snapshot trie tuple count disagrees with payload rows");
      }
      r.trie = std::make_shared<const Trie>(std::move(*mapped));
      ++stats.tries;
    }
    for (const auto& b : p.bindings) {
      if (b.with_trie && r.trie == nullptr) {
        return Status::InvalidArgument(
            "snapshot binding needs a trie the payload does not carry");
      }
    }
    restored.push_back(std::move(r));
  }

  // Phase 2 — commit. Restore entry states first: each Restore bumps
  // the catalog generation and the name's version, so a snapshot open
  // invalidates downstream plan caches exactly like any other reload.
  // Then adopt index payloads, coldest first, so the cache's LRU
  // order matches the saved one and a tight byte budget keeps the hot
  // tail.
  for (size_t i = 0; i < names_.size(); ++i) {
    stats.delta_batches += states[i].deltas.size();
    ADJ_RETURN_IF_ERROR(
        catalog->Restore(names_[i].name, std::move(states[i])));
    ++stats.names;
  }
  storage::IndexCache& cache = catalog->index_cache();
  for (size_t i = 0; i < payloads_.size(); ++i) {
    const Payload& p = payloads_[i];
    // Handles are moved in: coldest-first order plus released handles
    // let a byte budget evict the cold tail during adoption itself.
    ADJ_RETURN_IF_ERROR(cache.AdoptPermuted(phys[p.phys], p.perm,
                                            std::move(restored[i].canon),
                                            std::move(restored[i].trie),
                                            p.bindings));
    stats.bindings += p.bindings.size();
    ++stats.payloads;
  }
  // The last adoption's entries were referenced by its own arguments
  // while the budget ran; re-enforce now that nothing external holds
  // them.
  cache.EnforceBudget();
  return stats;
}

}  // namespace adj::persist
