#ifndef ADJ_PERSIST_SNAPSHOT_H_
#define ADJ_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/mmap_file.h"
#include "storage/catalog.h"
#include "storage/index_cache.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/trie.h"

namespace adj::persist {

/// Snapshot file format v3 — the build-once / mmap-many layer
/// (docs/PERSISTENCE.md has the full layout diagram):
///
///   header | segment* | manifest segment | TOC segment | footer
///
/// v2+ records each catalog name's full delta-aware entry state — the
/// immutable base relation, the ordered append/tombstone delta chain
/// (rows inline in the manifest; chains are bounded by the compaction
/// threshold), the effective relation, and the per-relation version —
/// so Save/Open round-trips a *written-to* catalog: a restored entry
/// keeps its mmap-backed base and re-applies only O(delta) heap rows.
/// v1 recorded one relation per name (the then-current content),
/// which folded any pending chain on save.
///
/// Trie storage is where v2 and v3 differ. v2 writes every trie level
/// twice: the raw value array (mmap-able) plus a delta+vbyte *mirror*
/// used only for deep verification — and cannot represent a
/// block-compressed level at all. v3 writes each level exactly once,
/// in its execution form: raw levels as the raw array, compressed
/// levels as their three blockcodec arrays (per-block minima, byte
/// offsets, packed payload) that `Trie::FromMapped` views in place —
/// a warm restart serves compressed tries with zero re-encode, and
/// the trie mirror segments are gone. Rows-layer payloads keep their
/// raw + mirror pair in both versions.
///
/// All raw array segments use the exact little-endian layout
/// `Relation::AliasSpan` and `Trie::FromMapped` can view in place,
/// 64-byte aligned so a reopened process serves from the page cache
/// with zero parsing. The footer points at a TOC listing every
/// segment's offset, size, and checksum, so individual segments can
/// be mapped (and later paged) on demand.
///
/// Versioning policy: `kVersion` bumps on any layout change; the
/// reader accepts v2 and v3 (the writer emits v3 by default, v2 on
/// request via WriteOptions), rejects anything else, and rejects
/// snapshots written on a platform with different endianness or Value
/// width.

inline constexpr char kMagic[8] = {'A', 'D', 'J', 'S', 'N', 'A', 'P', '1'};
inline constexpr char kFooterMagic[8] = {'A', 'D', 'J', 'S', 'E', 'O', 'F',
                                         '1'};
inline constexpr uint32_t kVersion = 3;
/// Oldest version the reader still accepts (and the writer still
/// emits, for size comparisons against the dual-encoded layout).
inline constexpr uint32_t kMinVersion = 2;
inline constexpr uint32_t kEndianTag = 0x01020304;
inline constexpr uint64_t kHeaderSize = 32;
inline constexpr uint64_t kFooterSize = 40;
inline constexpr uint64_t kSegmentAlign = 64;

/// Segment kinds recorded in the TOC (informative; the manifest is
/// what binds segments to structures).
enum class SegmentKind : uint8_t {
  kManifest = 0,
  kRelationRows = 1,   // raw rows of a catalog relation
  kPayloadRows = 2,    // raw rows of a permuted index payload
  kTrieValues = 3,     // raw value array of one trie level
  kTrieChild = 4,      // raw CSR child-offset array of one trie level
  kRelationDict = 5,   // compressed mirror: dictionary-encoded relation
  kPayloadBlock = 6,   // compressed mirror: delta+vbyte sorted rows
  kTrieBlock = 7,      // v2 compressed mirror: delta+vbyte trie levels
  // v3 block-compressed trie level (the execution format, mapped in
  // place by Trie::FromMapped — see storage/block_codec.h).
  kTrieLevelMins = 8,    // per-block first values (skip table)
  kTrieLevelStarts = 9,  // per-block payload byte offsets (skip table)
  kTrieLevelBytes = 10,  // packed zigzag-delta payload
};

/// One TOC row.
struct SegmentInfo {
  SegmentKind kind = SegmentKind::kManifest;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

/// Fast content checksum: Mix64-chained over 64-bit words (seeded with
/// the length, tail bytes folded in) — order-sensitive, ~word speed.
uint64_t Checksum(const uint8_t* data, size_t n);

/// What Write() put into the file, for logs and bench records.
struct WriteStats {
  uint64_t relations = 0;  // distinct physical relations (bases + effectives)
  uint64_t names = 0;      // name bindings (>= relations, aliases)
  uint64_t delta_batches = 0;  // pending chain batches across all names
  uint64_t delta_rows = 0;     // insert+tombstone rows in those batches
  uint64_t payloads = 0;   // perm-keyed index payloads
  uint64_t tries = 0;      // payloads carrying a trie
  uint64_t bindings = 0;   // labeled bind/rel entries across payloads
  uint64_t file_bytes = 0;
  uint64_t raw_bytes = 0;         // mmap-able array segments
  uint64_t compressed_bytes = 0;  // mirror segments (v2 dual encoding)
  uint64_t compressed_levels = 0;  // v3: trie levels stored block-compressed
};

/// Serializes a catalog — relations, name bindings, and every resident
/// permuted-index payload of its IndexCache — into one snapshot file.
class SnapshotWriter {
 public:
  /// `version` selects the file format: kVersion (v3, single trie
  /// encoding) or kMinVersion (v2, raw levels + trie mirror — kept so
  /// benches can measure what the dual encoding cost; compressed
  /// tries are re-materialized raw to fit it).
  struct WriteOptions {
    uint32_t version = kVersion;
  };

  /// Writes atomically (temp file + rename). Overwrites `path`.
  static StatusOr<WriteStats> Write(const storage::Catalog& catalog,
                                    const std::string& path,
                                    const WriteOptions& options);
  static StatusOr<WriteStats> Write(const storage::Catalog& catalog,
                                    const std::string& path);
};

/// Opens a snapshot and restores it into a catalog. Open() maps the
/// file and validates header, footer, TOC, and manifest structure
/// (every segment bounds-checked) without touching payload bytes;
/// VerifyChecksums() reads every segment once; LoadInto() aliases the
/// mapped arrays into relations/tries and adopts them into the
/// catalog's IndexCache. All failure paths are Status errors — a
/// corrupt file never crashes the process.
class SnapshotReader {
 public:
  SnapshotReader() = default;

  static StatusOr<SnapshotReader> Open(const std::string& path);

  const std::vector<SegmentInfo>& segments() const { return segments_; }
  const std::shared_ptr<const MappedFile>& file() const { return file_; }

  /// Format version of the opened file (kMinVersion..kVersion).
  uint32_t version() const { return version_; }

  /// Recomputes and compares every segment checksum (including the
  /// TOC's own, already checked at Open).
  Status VerifyChecksums() const;

  /// Deep verification: VerifyChecksums, then decodes every compressed
  /// mirror and compares it value-for-value against the raw segment it
  /// mirrors. The strongest offline integrity check; used by tests and
  /// `adj_cli --verify`-style tooling, not by the serving path.
  Status Verify() const;

  struct LoadStats {
    uint64_t relations = 0;
    uint64_t names = 0;
    uint64_t delta_batches = 0;  // chain batches re-attached to entries
    uint64_t payloads = 0;
    uint64_t tries = 0;
    uint64_t bindings = 0;
    uint64_t mapped_bytes = 0;  // raw bytes now viewed by the catalog
  };

  /// Restores the snapshot into `catalog`: Catalog::Restore every
  /// name's saved entry state — base, pending delta chain, effective,
  /// version (this bumps the catalog generation and the name's
  /// version, like any reload) — then adopts index payloads, hottest
  /// last, into the catalog's IndexCache under its byte budget.
  /// Relations and tries view the mapped file; the MappedFile handle
  /// is kept alive by them. Delta-chain rows are small (bounded by the
  /// compaction threshold) and live on the heap.
  StatusOr<LoadStats> LoadInto(storage::Catalog* catalog) const;

 private:
  struct PhysRel {
    storage::Schema schema;
    uint64_t row_count = 0;
    uint32_t rows_seg = 0;
    int64_t dict_seg = -1;  // -1: no compressed mirror
  };
  struct TrieLevelRef {
    uint64_t values_count = 0;
    bool compressed = false;  // v3: level stored in blockcodec form
    uint32_t values_seg = 0;  // raw levels only
    int64_t mins_seg = -1;    // compressed levels only
    int64_t starts_seg = -1;
    int64_t bytes_seg = -1;
    int64_t child_seg = -1;  // -1: deepest level
  };
  struct Payload {
    uint32_t phys = 0;
    std::vector<int> perm;
    uint64_t row_count = 0;
    uint32_t rows_seg = 0;
    int64_t block_seg = -1;
    bool has_trie = false;
    std::vector<TrieLevelRef> levels;
    int64_t trie_block_seg = -1;
    std::vector<storage::IndexCache::Binding> bindings;
  };

  StatusOr<std::span<const uint8_t>> SegmentBytes(uint64_t index) const;
  StatusOr<std::span<const Value>> SegmentValues(
      uint64_t index) const;
  StatusOr<std::span<const uint32_t>> SegmentOffsets(uint64_t index) const;

  /// Materializes one payload trie's MappedLevel views (raw or
  /// compressed per level), accumulating viewed bytes into
  /// `mapped_bytes` when given. Shared by Verify and LoadInto.
  StatusOr<std::vector<storage::Trie::MappedLevel>> TrieLevels(
      const Payload& p, uint64_t* mapped_bytes) const;

  /// One delta batch's rows as decoded from the manifest (row-major,
  /// base arity), turned into DeltaBatch relations at load time.
  struct DeltaRows {
    std::vector<Value> inserts;
    std::vector<Value> deletes;
  };
  /// One name's saved entry state, by physical-relation index.
  struct NameEntry {
    std::string name;
    uint32_t base = 0;
    uint32_t effective = 0;
    uint64_t version = 0;
    std::vector<DeltaRows> deltas;
  };

  std::shared_ptr<const MappedFile> file_;
  uint32_t version_ = kVersion;
  std::vector<SegmentInfo> segments_;
  std::vector<PhysRel> relations_;
  std::vector<NameEntry> names_;
  std::vector<Payload> payloads_;  // ascending hotness (LRU order)
};

}  // namespace adj::persist

#endif  // ADJ_PERSIST_SNAPSHOT_H_
